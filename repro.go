// Package repro is a Go reproduction of "Lazy Release Consistency for
// Software Distributed Shared Memory" (Keleher, Cox, Zwaenepoel, ISCA
// 1992).
//
// It provides two complementary artifacts:
//
//   - A trace-driven protocol simulator reproducing the paper's
//     evaluation: four release-consistency protocols — lazy invalidate
//     (LI), lazy update (LU), and the Munin-style eager invalidate (EI)
//     and eager update (EU) — plus an Ivy-style sequentially consistent
//     baseline (SC), replayed over synthetic 16-processor traces of the
//     five SPLASH programs the paper used, across page sizes 512..8192.
//     See Simulate and GenerateTrace.
//
//   - A live DSM runtime implementing the same protocol matrix end to
//     end (the implementation the paper's §7 promises): goroutine-backed
//     nodes exchanging write notices, twins, diffs, invalidations and
//     page ships over a pluggable interconnect, with the consistency
//     policy — LI, LU, EI, EU or SC — selected per instance, per page
//     (DSMConfig.ModeMap routes each page to its own resident engine,
//     several protocols coexisting in one cluster), or adaptively
//     (DSMConfig.AdaptEveryBarriers classifies each page's observed
//     sharing pattern at barrier epochs and re-routes it to the protocol
//     that pattern favors). See NewDSM.
//     Nodes are concurrently usable: any number of application
//     goroutines may drive one node (DSMConfig.GoroutinesPerNode sizes
//     the barrier rendezvous), with per-page sharded protocol state and
//     node-local lock handoff, so programs run oversubscribed —
//     threads-per-node — as well as one processor per node
//     (RuntimeConfig.GoroutinesPerNode for the SPLASH workloads,
//     lrcrun -gpn on the command line).
//
// The runtime's API is redesigned at both boundaries:
//
//   - Below, the interconnect is a Transport (see DSMConfig.Transport):
//     the default is a simulated in-process reliable FIFO network, and
//     NewTCPTransport runs the same protocols over real length-prefixed
//     TCP streams, one endpoint per OS process, so a DSM cluster spans
//     processes and machines (NewLoopbackTCPCluster builds an in-process
//     multi-listener cluster for tests and experiments).
//
//   - Above, applications program against the typed shared-memory façade
//     instead of raw byte offsets: an Arena bump-allocates the shared
//     space into Var[T] and Array[T] handles (uint64 and byte payloads)
//     and hands out Lock and Barrier objects; Locked brackets a critical
//     section. Handles are pure layout descriptions, so the same schema
//     works from every node — and, over TCP, from every process — as
//     long as each constructs it identically.
//
// The package re-exports the internal building blocks' primary types via
// aliases, so downstream code can use the library without reaching into
// internal packages.
package repro

import (
	"repro/internal/dsm"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/transport/fault"
	"repro/internal/transport/tcp"
	"repro/internal/workload"
)

// Identifier and configuration aliases.
type (
	// ProcID identifies a processor.
	ProcID = mem.ProcID
	// Addr is a byte offset into the shared address space.
	Addr = mem.Addr
	// LockID identifies an exclusive lock.
	LockID = mem.LockID
	// BarrierID identifies a barrier.
	BarrierID = mem.BarrierID
	// Layout describes a shared address space divided into pages.
	Layout = mem.Layout
	// Trace is a globally-ordered shared-memory execution trace.
	Trace = trace.Trace
	// TraceEvent is one trace record.
	TraceEvent = trace.Event
	// Options toggles protocol ablations (piggybacking, diffs,
	// multiple-writer).
	Options = proto.Options
	// Stats is a protocol engine's accumulated metrics.
	Stats = proto.Stats
	// Result is one (workload, protocol, page size) sweep point.
	Result = sim.Result
	// DSM is a live distributed-shared-memory instance running one of
	// the five consistency protocols.
	DSM = dsm.System
	// DSMConfig configures a live DSM instance.
	DSMConfig = dsm.Config
	// DSMMode selects the runtime's consistency protocol (LI, LU, EI,
	// EU or SC).
	DSMMode = dsm.Mode
	// FlushPolicy tunes when the runtime's outbox flushes a destination:
	// message/byte thresholds plus a Nagle-style requester-side hold.
	FlushPolicy = dsm.FlushPolicy
	// Node is one live DSM processor handle.
	Node = dsm.Node
	// NodeStats is a live node's accumulated protocol metrics, including
	// the per-kind traffic breakdown and per-page routing counters.
	NodeStats = dsm.Stats
	// PageStat is one page's routing and access-counter snapshot: the
	// protocol it is currently routed to, its last adaptive sharing
	// classification, and its access counters.
	PageStat = dsm.PageStat
	// Transport is the runtime's pluggable interconnect: the simulated
	// in-process network by default (DSMConfig.Transport nil), or a real
	// TCP cluster via NewTCPTransport.
	Transport = dsm.Transport
	// TransportStats is a snapshot of interconnect traffic counters.
	TransportStats = dsm.TransportStats
	// LatencyModel estimates communication time from message/byte counts.
	LatencyModel = dsm.LatencyModel
	// WorkloadResult is a lockstep workload execution: the trace plus the
	// reference memory image.
	WorkloadResult = workload.Result
	// RuntimeConfig configures a workload execution on the live runtime.
	RuntimeConfig = workload.RuntimeConfig
	// RuntimeResult is a completed workload execution on the live runtime.
	RuntimeResult = workload.RuntimeResult
	// MetricsRegistry collects live counters, gauges and histograms for
	// the Prometheus text endpoint (DSMConfig.Metrics, ObsServer).
	MetricsRegistry = obs.Registry
	// Tracer records protocol events into a bounded ring, dumpable as
	// Chrome trace_event JSON (DSMConfig.Tracer).
	Tracer = obs.Tracer
	// ObsServer serves /metrics, /statusz and /trace over HTTP.
	ObsServer = obs.Server
	// DSMStatus is a live DSM instance's /statusz snapshot.
	DSMStatus = dsm.Status
	// FaultPlan is a deterministic fault-injection schedule for a
	// transport: drop/duplicate/delay probabilities, a static partition,
	// and a fail-stop kill (see ParseFaultPlan, WrapFaultTransport).
	FaultPlan = fault.Plan
)

// Typed shared-memory façade aliases (package internal/shm): program
// against named handles, not hand-computed page offsets.
type (
	// SharedMem is the raw node surface the typed handles drive; *Node
	// satisfies it.
	SharedMem = shm.Mem
	// Arena bump-allocates a shared address space into typed handles and
	// synchronization objects. Every node (or process) must construct
	// the same schema in the same order.
	Arena = shm.Arena
	// Var is a typed handle to one shared value.
	Var[T shm.Value] = shm.Var[T]
	// Array is a typed handle to n shared values at a fixed stride.
	Array[T shm.Value] = shm.Array[T]
	// Bytes is a handle to a fixed-size raw byte region.
	Bytes = shm.Bytes
	// BytesArray is a handle to n raw byte regions at a fixed stride.
	BytesArray = shm.BytesArray
	// Lock is a first-class handle to an exclusive runtime lock.
	Lock = shm.Lock
	// Barrier is a first-class handle to a runtime barrier.
	Barrier = shm.Barrier
)

// NewArena returns an empty allocator over a layout (see DSM.Layout).
func NewArena(l *Layout) *Arena { return shm.NewArena(l) }

// NewVar allocates one naturally-aligned shared value.
func NewVar[T shm.Value](a *Arena) Var[T] { return shm.NewVar[T](a) }

// NewArray allocates n densely-packed shared values.
func NewArray[T shm.Value](a *Arena, n int) Array[T] { return shm.NewArray[T](a, n) }

// NewStridedArray allocates n shared values spaced stride bytes apart
// (pad hot elements apart to curb false sharing).
func NewStridedArray[T shm.Value](a *Arena, n, stride int) Array[T] {
	return shm.NewStridedArray[T](a, n, stride)
}

// NewBytes allocates one raw byte region.
func NewBytes(a *Arena, size int) Bytes { return shm.NewBytes(a, size) }

// NewBytesArray allocates n size-byte regions spaced stride bytes apart.
func NewBytesArray(a *Arena, n, size, stride int) BytesArray {
	return shm.NewBytesArray(a, n, size, stride)
}

// Locked runs body on m while holding l.
func Locked(m SharedMem, l Lock, body func() error) error { return shm.Locked(m, l, body) }

// Live DSM consistency modes: the full protocol matrix of the paper's
// evaluation runs on the runtime.
const (
	// LazyInvalidate is the LI protocol (§4.3.2).
	LazyInvalidate = dsm.LazyInvalidate
	// LazyUpdate is the LU protocol (§4.3.2).
	LazyUpdate = dsm.LazyUpdate
	// EagerInvalidate is the EI protocol (§3).
	EagerInvalidate = dsm.EagerInvalidate
	// EagerUpdate is the EU protocol (§3).
	EagerUpdate = dsm.EagerUpdate
	// SeqConsistent is the SC (Ivy-style) baseline (§6).
	SeqConsistent = dsm.SeqConsistent
)

// DSMModes lists every live runtime mode (LI, LU, EI, EU, SC).
var DSMModes = dsm.Modes

// ParseDSMMode maps a protocol name to its live runtime mode.
func ParseDSMMode(s string) (DSMMode, error) { return dsm.ParseMode(s) }

// ParseDSMModeMap parses a per-page protocol assignment like
// "pg0-31=SC,rest=LU" into a numPages-long mode slice for
// DSMConfig.ModeMap: protocols coexist in one cluster, each page routed
// to the engine named for it. Every page must be assigned exactly once.
func ParseDSMModeMap(spec string, numPages int) ([]DSMMode, error) {
	return dsm.ParseModeMap(spec, numPages)
}

// FormatDSMModeMap renders a mode slice back into the compact syntax
// ParseDSMModeMap accepts.
func FormatDSMModeMap(modes []DSMMode) string { return dsm.FormatModeMap(modes) }

// Protocols lists the four protocols of the paper's evaluation.
var Protocols = sim.ProtocolNames

// AllProtocols additionally includes the SC (Ivy) baseline.
var AllProtocols = sim.AllProtocolNames

// Workloads lists the workload generators: the five SPLASH-like
// kernels plus the writer-dominant partition pattern.
var Workloads = workload.Names

// PaperPageSizes lists the page sizes the paper sweeps (bytes).
var PaperPageSizes = mem.PaperPageSizes

// PaperProcs is the processor count of the paper's traces.
const PaperProcs = 16

// GenerateTrace produces (and memoizes) the named workload's execution
// trace: a legal, globally-ordered, page-size-independent event sequence
// with the SPLASH program's documented sharing structure. scale 1.0 is the
// repository's standard size; the paper's qualitative results hold at any
// scale.
func GenerateTrace(name string, procs int, scale float64, seed int64) (*Trace, error) {
	return workload.GenerateCached(name, procs, scale, seed)
}

// Simulate replays a trace against one protocol at one page size and
// returns the message/data statistics.
func Simulate(t *Trace, protocol string, pageSize int, opts Options) (*Stats, error) {
	return sim.Run(t, protocol, pageSize, opts)
}

// Sweep replays a trace against every (protocol, page size) combination —
// the computation behind each of the paper's figures — running the points
// in parallel.
func Sweep(t *Trace, protocols []string, pageSizes []int, opts Options) ([]Result, error) {
	return sim.Sweep(t, protocols, pageSizes, opts)
}

// Series extracts one protocol's metric ("messages" or "data") from sweep
// results in the given page-size order.
func Series(results []Result, protocol string, pageSizes []int, metric string) ([]int64, error) {
	return sim.Series(results, protocol, pageSizes, metric)
}

// NewDSM starts a live DSM over the configured transport (the simulated
// in-process interconnect when DSMConfig.Transport is nil).
func NewDSM(cfg DSMConfig) (*DSM, error) {
	return dsm.New(cfg)
}

// NewMetricsRegistry returns an empty metrics registry; pass it in
// DSMConfig.Metrics (or RuntimeConfig.Metrics) and serve it with
// StartObsServer.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns a protocol-event ring tracer holding the most recent
// capacity events; pass it in DSMConfig.Tracer (or RuntimeConfig.Tracer).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// StartObsServer serves the observability endpoints on addr: /metrics
// (Prometheus text), /statusz (JSON), /trace (Chrome trace_event JSON).
// Nil config pieces disable their endpoint.
func StartObsServer(addr string, r *MetricsRegistry, status func() any, t *Tracer) (*ObsServer, error) {
	return obs.StartServer(addr, obs.ServerConfig{Registry: r, Status: status, Tracer: t})
}

// NewSimNetTransport builds the simulated in-process interconnect
// explicitly — the same network DSMConfig.Transport nil selects — so it
// can be decorated (WrapFaultTransport) before handing it to NewDSM.
func NewSimNetTransport(n int) Transport { return simnet.New(n) }

// ParseFaultPlan parses a fault-injection spec like
// "drop=0.01,dup=0.005,delay=2ms,jitter=1ms,partition=2x2,kill=3@5000,seed=7".
func ParseFaultPlan(spec string) (FaultPlan, error) { return fault.Parse(spec) }

// WrapFaultTransport decorates a transport with a deterministic fault
// plan; the decorator owns the inner transport.
func WrapFaultTransport(tr Transport, p FaultPlan) Transport { return fault.Wrap(tr, p) }

// NewTCPTransport attaches this process to a TCP DSM cluster as endpoint
// self of the peer list (every entry a "host:port", identical in every
// process). Pass it in DSMConfig.Transport with Procs = len(peers); the
// resulting DSM hosts node self only, with the remaining nodes served by
// the peer processes.
func NewTCPTransport(self int, peers []string) (Transport, error) {
	return tcp.New(tcp.Config{Self: self, Peers: peers})
}

// NewLoopbackTCPCluster starts a full n-endpoint TCP cluster inside this
// process — one listener and one transport per endpoint on ephemeral
// 127.0.0.1 ports. Build one DSM per returned transport.
func NewLoopbackTCPCluster(n int) ([]Transport, error) {
	cluster, err := tcp.NewLoopbackCluster(n)
	if err != nil {
		return nil, err
	}
	trs := make([]Transport, len(cluster))
	for i, t := range cluster {
		trs[i] = t
	}
	return trs, nil
}

// ExecuteWorkload runs the named workload on the lockstep backend,
// returning (and memoizing) its trace and sequential-reference memory
// image.
func ExecuteWorkload(name string, procs int, scale float64, seed int64) (*WorkloadResult, error) {
	return workload.ExecuteCached(name, procs, scale, seed)
}

// RunWorkloadOnRuntime executes the named workload on the live DSM runtime
// — genuinely concurrent nodes under any of the five protocols, over the
// in-process interconnect or the transports in cfg.Transports — and
// returns the final memory image and traffic totals. For a
// properly-synchronized workload the image equals ExecuteWorkload's
// reference image.
func RunWorkloadOnRuntime(name string, procs int, scale float64, seed int64, cfg RuntimeConfig) (*RuntimeResult, error) {
	prog, err := workload.New(name, procs, scale, seed)
	if err != nil {
		return nil, err
	}
	return workload.RunOnRuntime(prog, cfg)
}
