package repro_test

import (
	"bytes"
	"sync"
	"testing"

	"repro"
)

func TestFacadeSimulation(t *testing.T) {
	tr, err := repro.GenerateTrace("water", 8, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := repro.Simulate(tr, "LI", 1024, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalMessages() <= 0 {
		t.Fatal("no messages simulated")
	}
	results, err := repro.Sweep(tr, repro.Protocols, []int{512, 4096}, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(repro.Protocols)*2 {
		t.Fatalf("results = %d", len(results))
	}
	series, err := repro.Series(results, "EU", []int{4096, 512}, "data")
	if err != nil || len(series) != 2 {
		t.Fatalf("series %v err %v", series, err)
	}
}

func TestFacadeConstants(t *testing.T) {
	if len(repro.Protocols) != 4 || len(repro.AllProtocols) != 5 {
		t.Error("protocol lists wrong")
	}
	if len(repro.Workloads) != 5 {
		t.Error("workload list wrong")
	}
	if len(repro.PaperPageSizes) != 5 || repro.PaperProcs != 16 {
		t.Error("paper constants wrong")
	}
}

func TestFacadeDSM(t *testing.T) {
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs: 4, SpaceSize: 16 * 1024, PageSize: 1024, Mode: repro.LazyUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := d.Node(i)
			for k := 0; k < 5; k++ {
				if errs[i] = n.Acquire(0); errs[i] != nil {
					return
				}
				v, err := n.ReadUint64(0)
				if err != nil {
					errs[i] = err
					return
				}
				if errs[i] = n.WriteUint64(0, v+1); errs[i] != nil {
					return
				}
				if errs[i] = n.Release(0); errs[i] != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	n := d.Node(0)
	if err := n.Acquire(0); err != nil {
		t.Fatal(err)
	}
	v, err := n.ReadUint64(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 20 {
		t.Fatalf("counter = %d, want 20", v)
	}
	if err := n.Release(0); err != nil {
		t.Fatal(err)
	}
	if d.NetStats().Messages == 0 {
		t.Error("no interconnect traffic")
	}
}

func TestFacadeWorkloadRuntime(t *testing.T) {
	ref, err := repro.ExecuteWorkload("cholesky", 4, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Trace == nil || len(ref.Image) == 0 {
		t.Fatal("reference execution incomplete")
	}
	res, err := repro.RunWorkloadOnRuntime("cholesky", 4, 0.05, 7, repro.RuntimeConfig{
		PageSize: 1024, Mode: repro.LazyUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Image, ref.Image) {
		t.Error("runtime image diverges from sequential reference")
	}
	if _, err := repro.RunWorkloadOnRuntime("bogus", 4, 1, 7, repro.RuntimeConfig{}); err == nil {
		t.Error("unknown workload accepted")
	}
}
