package repro_test

import (
	"bytes"
	"sync"
	"testing"

	"repro"
)

func TestFacadeSimulation(t *testing.T) {
	tr, err := repro.GenerateTrace("water", 8, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := repro.Simulate(tr, "LI", 1024, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalMessages() <= 0 {
		t.Fatal("no messages simulated")
	}
	results, err := repro.Sweep(tr, repro.Protocols, []int{512, 4096}, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(repro.Protocols)*2 {
		t.Fatalf("results = %d", len(results))
	}
	series, err := repro.Series(results, "EU", []int{4096, 512}, "data")
	if err != nil || len(series) != 2 {
		t.Fatalf("series %v err %v", series, err)
	}
}

func TestFacadeConstants(t *testing.T) {
	if len(repro.Protocols) != 4 || len(repro.AllProtocols) != 5 {
		t.Error("protocol lists wrong")
	}
	if len(repro.Workloads) != 6 {
		t.Error("workload list wrong")
	}
	if len(repro.PaperPageSizes) != 5 || repro.PaperProcs != 16 {
		t.Error("paper constants wrong")
	}
}

func TestFacadeDSM(t *testing.T) {
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs: 4, SpaceSize: 16 * 1024, PageSize: 1024, Mode: repro.LazyUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := d.Node(i)
			for k := 0; k < 5; k++ {
				if errs[i] = n.Acquire(0); errs[i] != nil {
					return
				}
				v, err := n.ReadUint64(0)
				if err != nil {
					errs[i] = err
					return
				}
				if errs[i] = n.WriteUint64(0, v+1); errs[i] != nil {
					return
				}
				if errs[i] = n.Release(0); errs[i] != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	n := d.Node(0)
	if err := n.Acquire(0); err != nil {
		t.Fatal(err)
	}
	v, err := n.ReadUint64(0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 20 {
		t.Fatalf("counter = %d, want 20", v)
	}
	if err := n.Release(0); err != nil {
		t.Fatal(err)
	}
	if d.NetStats().Messages == 0 {
		t.Error("no interconnect traffic")
	}
}

func TestFacadeWorkloadRuntime(t *testing.T) {
	ref, err := repro.ExecuteWorkload("cholesky", 4, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Trace == nil || len(ref.Image) == 0 {
		t.Fatal("reference execution incomplete")
	}
	res, err := repro.RunWorkloadOnRuntime("cholesky", 4, 0.05, 7, repro.RuntimeConfig{
		PageSize: 1024, Mode: repro.LazyUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Image, ref.Image) {
		t.Error("runtime image diverges from sequential reference")
	}
	if _, err := repro.RunWorkloadOnRuntime("bogus", 4, 1, 7, repro.RuntimeConfig{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestFacadeTypedSHM drives the public typed shared-memory surface: an
// Arena schema with Var/Array/Bytes handles, Locked critical sections
// and a Barrier, against a live DSM.
func TestFacadeTypedSHM(t *testing.T) {
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs: 3, SpaceSize: 32 * 1024, PageSize: 1024, Mode: repro.EagerUpdate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	a := repro.NewArena(d.Layout())
	total := repro.NewVar[uint64](a)
	flags := repro.NewArray[byte](a, 3)
	blob := repro.NewBytes(a, 16)
	lock := a.NewLock()
	done := a.NewBarrier()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := d.Node(i)
			errs[i] = repro.Locked(n, lock, func() error {
				if _, err := total.Add(n, uint64(i+1)); err != nil {
					return err
				}
				return flags.At(i).Store(n, 1)
			})
			if errs[i] != nil {
				return
			}
			if i == 0 {
				errs[i] = blob.Store(n, []byte("hello, shm"))
				if errs[i] != nil {
					return
				}
			}
			errs[i] = done.Wait(n)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}

	n := d.Node(1)
	if v, err := total.Load(n); err != nil || v != 1+2+3 {
		t.Errorf("total = %d, %v", v, err)
	}
	for i := 0; i < 3; i++ {
		if v, err := flags.At(i).Load(n); err != nil || v != 1 {
			t.Errorf("flag %d = %d, %v", i, v, err)
		}
	}
	buf := make([]byte, 10)
	if err := blob.Load(n, buf); err != nil || string(buf) != "hello, shm" {
		t.Errorf("blob = %q, %v", buf, err)
	}
}

// TestFacadeTCPTransport runs a workload through the public TCP cluster
// constructor — the full redesigned surface end to end: typed handles
// above, real sockets below.
func TestFacadeTCPTransport(t *testing.T) {
	trs, err := repro.NewLoopbackTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := repro.ExecuteWorkload("water", 3, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunWorkloadOnRuntime("water", 3, 0.05, 7, repro.RuntimeConfig{
		PageSize: 1024, Mode: repro.LazyInvalidate, Transports: trs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Image, ref.Image) {
		t.Error("runtime image over TCP diverges from sequential reference")
	}
	if res.Net.Messages == 0 {
		t.Error("no traffic crossed the TCP cluster")
	}
}
