package repro_test

import (
	"sort"
	"testing"

	"repro"
)

// Lazy-diff gate and benchmark: deferring diff creation from interval
// close to first demand earns its keep when, on a multi-reader SPLASH
// workload, some intervals' diffs are never asked for before GC covers
// them — those MakeDiff executions simply vanish — while the diffs
// that are demanded get their wire encoding computed once and replayed
// to every further requester. The toggle under test
// (RuntimeConfig.EagerDiffs) changes only *when* diffs are computed,
// never what moves on the wire, so the gate also pins the two modes to
// matching images and level message counts.

// lazyDiffRC is the diff-plane configuration under test for one
// protocol: default page size, periodic GC so covered deferred diffs
// actually get reclaimed without ever being materialized.
func lazyDiffRC(m repro.DSMMode, eager bool) repro.RuntimeConfig {
	return repro.RuntimeConfig{
		PageSize: adaptPageSize, Mode: m, GCEveryBarriers: 2, EagerDiffs: eager,
	}
}

// lazyDiffTrafficSlack bounds how far apart the lazy and eager runs'
// median message counts may drift. The toggle cannot change what moves
// on the wire — every piggybacked or requested diff is materialized
// before serving either way — but the live runtime's lock-acquisition
// order is scheduling-dependent, so two runs of the *same*
// configuration already differ by a few messages; exact equality would
// gate on scheduler noise, not on the diff plane.
const lazyDiffTrafficSlack = 0.05

// lazyDiffRepeats is how many runs per configuration feed the medians.
const lazyDiffRepeats = 3

// diffPlaneRun is one run's worth of gate evidence.
type diffPlaneRun struct {
	msgs                        int64
	created, deferred, cacheHits int64
}

// runDiffPlane executes one configuration, verifies the image against
// ref, and sums the diff-plane counters over the nodes.
func runDiffPlane(t *testing.T, name string, ref *repro.WorkloadResult, rc repro.RuntimeConfig) diffPlaneRun {
	t.Helper()
	res, err := repro.RunWorkloadOnRuntime(name, adaptProcs, adaptScale, adaptSeed, rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Image) != string(ref.Image) {
		t.Fatalf("%s/%s (eager=%v): runtime image diverges from reference", name, rc.Mode, rc.EagerDiffs)
	}
	r := diffPlaneRun{msgs: res.Net.Messages}
	for _, ns := range res.Nodes {
		r.created += ns.DiffsCreated
		r.deferred += ns.DiffsDeferred
		r.cacheHits += ns.DiffCacheHits
	}
	return r
}

// medianMsgs returns the median message count of a sample of runs.
func medianMsgs(runs []diffPlaneRun) int64 {
	msgs := make([]int64, len(runs))
	for i, r := range runs {
		msgs[i] = r.msgs
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i] < msgs[j] })
	return msgs[len(msgs)/2]
}

// TestLazyDiffCreationGate: on the water workload under both lazy
// protocols, lazy diff creation must (a) keep the image byte-identical
// to the reference and the median interconnect message count level
// with the eager baseline, (b) compute strictly fewer diffs than the
// baseline on every run, with at least one close actually deferred,
// and (c) serve at least one diff from the cached wire encoding.
func TestLazyDiffCreationGate(t *testing.T) {
	if testing.Short() {
		t.Skip("lazy-diff gate runs both lazy protocols several times; skipped in short mode")
	}
	const name = "water"
	for _, m := range []repro.DSMMode{repro.LazyInvalidate, repro.LazyUpdate} {
		ref, err := repro.ExecuteWorkload(name, adaptProcs, adaptScale, adaptSeed)
		if err != nil {
			t.Fatal(err)
		}
		var lazy, eager []diffPlaneRun
		for i := 0; i < lazyDiffRepeats; i++ {
			lazy = append(lazy, runDiffPlane(t, name, ref, lazyDiffRC(m, false)))
			eager = append(eager, runDiffPlane(t, name, ref, lazyDiffRC(m, true)))
		}
		lm, em := medianMsgs(lazy), medianMsgs(eager)
		if f := float64(lm); f < float64(em)*(1-lazyDiffTrafficSlack) || f > float64(em)*(1+lazyDiffTrafficSlack) {
			t.Errorf("%s/%s: lazy diff creation changed traffic: median %d msgs lazy vs %d eager (±%.0f%% allowed)",
				name, m, lm, em, 100*lazyDiffTrafficSlack)
		}
		// The counters, unlike the message totals, are stable across
		// scheduler orders: every run must beat every eager run.
		maxCreated, minDeferred, minHits := int64(0), int64(1<<62), int64(1<<62)
		for _, r := range lazy {
			maxCreated = max(maxCreated, r.created)
			minDeferred = min(minDeferred, r.deferred)
			minHits = min(minHits, r.cacheHits)
		}
		minEager := int64(1 << 62)
		for _, r := range eager {
			minEager = min(minEager, r.created)
		}
		t.Logf("%s/%s: ≤%d diffs created lazily vs ≥%d eagerly (≥%d deferred, ≥%d cache hits; median msgs %d vs %d)",
			name, m, maxCreated, minEager, minDeferred, minHits, lm, em)
		if maxCreated >= minEager {
			t.Errorf("%s/%s: lazy mode created %d diffs, want strictly fewer than eager's %d",
				name, m, maxCreated, minEager)
		}
		if minDeferred == 0 {
			t.Errorf("%s/%s: no interval close deferred its diff", name, m)
		}
		if minHits == 0 {
			t.Errorf("%s/%s: no diff served from the cached wire encoding", name, m)
		}
	}
}
