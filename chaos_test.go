package repro_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/dsm"
)

// chaos_test characterizes the runtime's behavior under injected
// transport faults: benign perturbations (delay, duplication) must not
// change the computed image, and fatal ones (fail-stop kill, partition)
// must surface as descriptive errors within Config.RPCTimeout instead of
// hanging the cluster.

// lockIncrementOutcome is one faulted lock-increment run: the joined
// protocol/teardown error (nil for a clean run) and the recorded final
// counter when the run completed.
type lockIncrementOutcome struct {
	runErrs   []error
	closeErrs []error
}

func (o *lockIncrementOutcome) all() error {
	return errors.Join(errors.Join(o.runErrs...), errors.Join(o.closeErrs...))
}

// runLockIncrement drives the migratory-counter pattern — every
// processor loops lock; increment; unlock on one shared counter — across
// the given transports (one system per transport, or a single in-process
// system when trs is nil). It returns after every processor goroutine
// has finished and every system is closed; the caller bounds the wall
// clock with a watchdog. An error from the victim node (-1 for none) is
// recorded but does not wind the others down: the point of a fail-stop
// characterization is what the survivors experience, so they keep
// running until one of them hits the fault.
func runLockIncrement(procs, iters int, m repro.DSMMode, rpcTimeout time.Duration, trs []repro.Transport, victim int) *lockIncrementOutcome {
	out := &lockIncrementOutcome{}
	if trs == nil {
		trs = []repro.Transport{nil}
	}
	systems := make([]*repro.DSM, 0, len(trs))
	for i, tr := range trs {
		d, err := repro.NewDSM(repro.DSMConfig{
			Procs:      procs,
			SpaceSize:  1 << 16,
			PageSize:   1024,
			Mode:       m,
			RPCTimeout: rpcTimeout,
			Transport:  tr,
		})
		if err != nil {
			out.runErrs = append(out.runErrs, err)
			for _, rest := range trs[i+1:] {
				if rest != nil {
					rest.Close()
				}
			}
			break
		}
		systems = append(systems, d)
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		stopOnce sync.Once
	)
	for _, d := range systems {
		// Every system builds the identical schema: one counter, one lock.
		a := repro.NewArena(d.Layout())
		counter := repro.NewVar[uint64](a)
		lock := a.NewLock()
		for _, n := range d.Local() {
			wg.Add(1)
			go func(n *repro.Node) {
				defer wg.Done()
				for k := 0; k < iters; k++ {
					// A fault may only sever part of the cluster; the
					// unaffected processors wind down on the first
					// surfaced error instead of looping forever.
					select {
					case <-stop:
						return
					default:
					}
					if err := repro.Locked(n, lock, func() error {
						_, err := counter.Add(n, 1)
						return err
					}); err != nil {
						mu.Lock()
						out.runErrs = append(out.runErrs, err)
						mu.Unlock()
						if int(n.ID()) != victim {
							stopOnce.Do(func() { close(stop) })
						}
						return
					}
				}
			}(n)
		}
	}
	wg.Wait()
	for _, d := range systems {
		if err := d.Close(); err != nil {
			out.closeErrs = append(out.closeErrs, err)
		}
	}
	return out
}

// withWatchdog fails the test if fn does not complete within limit — the
// point of the fault characterization is that nothing hangs.
func withWatchdog(t *testing.T, limit time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(limit):
		t.Fatalf("%s did not terminate within %v (protocol hang)", what, limit)
	}
}

// TestKillMidCriticalSectionAllModes is the fail-stop acceptance
// criterion: a loopback TCP cluster whose peer is killed mid-run — the
// lock loop guarantees it dies holding or requesting the critical
// section — must terminate within RPCTimeout for every protocol, with a
// descriptive error out of the run or System.Close, not a hang.
func TestKillMidCriticalSectionAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP kill matrix is not a -short test")
	}
	// The victim is node 0 — the manager of the demo lock (lockMgr is
	// id % procs) — so after the kill every survivor's next acquire
	// must confront the dead peer rather than route around it.
	const (
		procs      = 3
		victim     = 0
		rpcTimeout = 3 * time.Second
	)
	for _, m := range repro.DSMModes {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			trs, err := repro.NewLoopbackTCPCluster(procs)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := repro.ParseFaultPlan(fmt.Sprintf("kill=%d@80,seed=1", victim))
			if err != nil {
				t.Fatal(err)
			}
			trs[victim] = repro.WrapFaultTransport(trs[victim], plan)
			var out *lockIncrementOutcome
			// iters is unreachable by design: the run can only end
			// through the kill. Generous slack over RPCTimeout covers
			// -race TCP scheduling, not protocol waiting.
			withWatchdog(t, rpcTimeout+30*time.Second, "kill run", func() {
				out = runLockIncrement(procs, 1<<30, m, rpcTimeout, trs, victim)
			})
			err = out.all()
			if err == nil {
				t.Fatalf("killed peer produced no error: run and close both clean")
			}
			msg := err.Error()
			if !strings.Contains(msg, "node") {
				t.Errorf("error does not identify a node: %v", err)
			}
			descriptive := false
			for _, kw := range []string{"timeout", "unreachable", "killed", "peer", "broken", "connection"} {
				if strings.Contains(msg, kw) {
					descriptive = true
					break
				}
			}
			if !descriptive {
				t.Errorf("error does not describe the fault: %v", err)
			}
			t.Logf("mode %s surfaced: %v", m, firstLine(msg))
		})
	}
}

// runMigrationSweep drives the placement machinery under fire: every
// node repeatedly writes a slab page of its own (enough writes per
// barrier for the home migrator to claim it), takes one locked counter
// increment, and joins a cluster barrier — with AdaptEveryBarriers=1
// and MigrateHomes on, every barrier is a placement epoch, so a
// fail-stop kill lands amid the exchange/rendezvous traffic. Same
// outcome contract as runLockIncrement.
func runMigrationSweep(procs int, m repro.DSMMode, rpcTimeout time.Duration, trs []repro.Transport, victim int) *lockIncrementOutcome {
	out := &lockIncrementOutcome{}
	systems := make([]*repro.DSM, 0, len(trs))
	for i, tr := range trs {
		d, err := repro.NewDSM(repro.DSMConfig{
			Procs:              procs,
			SpaceSize:          1 << 16,
			PageSize:           1024,
			Mode:               m,
			RPCTimeout:         rpcTimeout,
			AdaptEveryBarriers: 1,
			MigrateHomes:       true,
			Transport:          tr,
		})
		if err != nil {
			out.runErrs = append(out.runErrs, err)
			for _, rest := range trs[i+1:] {
				if rest != nil {
					rest.Close()
				}
			}
			break
		}
		systems = append(systems, d)
	}
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		stopOnce sync.Once
	)
	for _, d := range systems {
		a := repro.NewArena(d.Layout())
		counter := repro.NewVar[uint64](a)
		lock := a.NewLock()
		for _, n := range d.Local() {
			wg.Add(1)
			go func(n *repro.Node) {
				defer wg.Done()
				buf := make([]byte, 64)
				// Each node's slab page sits past the counter's page.
				slab := repro.Addr((1 + int(n.ID())) * 1024)
				body := func() error {
					for j := repro.Addr(0); j < 8; j++ {
						if err := n.Write(slab+64*j, buf); err != nil {
							return err
						}
					}
					if err := repro.Locked(n, lock, func() error {
						_, err := counter.Add(n, 1)
						return err
					}); err != nil {
						return err
					}
					return n.Barrier(0)
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := body(); err != nil {
						mu.Lock()
						out.runErrs = append(out.runErrs, err)
						mu.Unlock()
						if int(n.ID()) != victim {
							stopOnce.Do(func() { close(stop) })
						}
						return
					}
				}
			}(n)
		}
	}
	wg.Wait()
	for _, d := range systems {
		if err := d.Close(); err != nil {
			out.closeErrs = append(out.closeErrs, err)
		}
	}
	return out
}

// TestKillMidMigrationEpochAllModes: a loopback TCP cluster running
// home migration on every barrier loses a node mid-epoch — the victim
// dies somewhere in the arrive/exit exchange or the reclassification
// rendezvous. For every protocol the survivors must surface a
// descriptive error within RPCTimeout, never hang in the rendezvous
// collect, and never apply a half-exchanged placement epoch.
func TestKillMidMigrationEpochAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP kill matrix is not a -short test")
	}
	// Node 0 is the victim: barrier master AND placement planner, so its
	// death hits the epoch machinery at its most central point.
	const (
		procs      = 3
		victim     = 0
		rpcTimeout = 3 * time.Second
	)
	for _, m := range repro.DSMModes {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			trs, err := repro.NewLoopbackTCPCluster(procs)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := repro.ParseFaultPlan(fmt.Sprintf("kill=%d@80,seed=1", victim))
			if err != nil {
				t.Fatal(err)
			}
			trs[victim] = repro.WrapFaultTransport(trs[victim], plan)
			var out *lockIncrementOutcome
			withWatchdog(t, rpcTimeout+30*time.Second, "mid-migration kill run", func() {
				out = runMigrationSweep(procs, m, rpcTimeout, trs, victim)
			})
			err = out.all()
			if err == nil {
				t.Fatalf("killed peer produced no error: run and close both clean")
			}
			msg := err.Error()
			if !strings.Contains(msg, "node") {
				t.Errorf("error does not identify a node: %v", err)
			}
			descriptive := false
			for _, kw := range []string{"timeout", "unreachable", "killed", "peer", "broken", "connection"} {
				if strings.Contains(msg, kw) {
					descriptive = true
					break
				}
			}
			if !descriptive {
				t.Errorf("error does not describe the fault: %v", err)
			}
			t.Logf("mode %s surfaced: %v", m, firstLine(msg))
		})
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}

// TestChaosDelayDifferential: delay and jitter reorder nothing (per-peer
// FIFO is preserved) and lose nothing, so every protocol must compute
// the identical image it computes on the pristine network.
func TestChaosDelayDifferential(t *testing.T) {
	const (
		name  = "water"
		procs = 4
		scale = 0.05
		seed  = int64(7)
	)
	ref, err := repro.ExecuteWorkload(name, procs, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := repro.ParseFaultPlan("delay=100us,jitter=100us,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range repro.DSMModes {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			tr := repro.WrapFaultTransport(repro.NewSimNetTransport(procs), plan)
			res, err := repro.RunWorkloadOnRuntime(name, procs, scale, seed, repro.RuntimeConfig{
				PageSize:   1024,
				Mode:       m,
				RPCTimeout: 2 * time.Minute,
				Transports: []repro.Transport{tr},
			})
			if err != nil {
				t.Fatalf("delay-only faults must not fail a run: %v", err)
			}
			if !bytes.Equal(res.Image, ref.Image) {
				t.Fatalf("image diverges from reference under delay-only faults")
			}
		})
	}
}

// TestChaosDropDupSafety characterizes lossy faults: dropped or
// duplicated protocol messages may legitimately abort the run (a lost
// grant times out; a replayed request trips protocol sanity checks), but
// the outcome must be bounded — either a clean run with the correct
// image or a surfaced error, never a hang or a silently wrong image.
func TestChaosDropDupSafety(t *testing.T) {
	const (
		name  = "water"
		procs = 4
		scale = 0.05
		seed  = int64(7)
	)
	ref, err := repro.ExecuteWorkload(name, procs, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{"drop=0.005,seed=11", "dup=0.01,seed=12"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			plan, err := repro.ParseFaultPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			tr := repro.WrapFaultTransport(repro.NewSimNetTransport(procs), plan)
			var res *repro.RuntimeResult
			var runErr error
			withWatchdog(t, 2*time.Minute, spec, func() {
				res, runErr = repro.RunWorkloadOnRuntime(name, procs, scale, seed, repro.RuntimeConfig{
					PageSize:   1024,
					Mode:       repro.LazyInvalidate,
					RPCTimeout: 5 * time.Second,
					Transports: []repro.Transport{tr},
				})
			})
			if runErr != nil {
				t.Logf("%s surfaced (safe outcome): %v", spec, firstLine(runErr.Error()))
				return
			}
			if !bytes.Equal(res.Image, ref.Image) {
				t.Fatalf("run completed under %s but image is wrong: faults must fail loudly or not at all", spec)
			}
		})
	}
}

// TestChaosPartitionCleanError: a static partition makes cross-group
// requests unanswerable; every node must come back with an RPCTimeout-
// bounded descriptive error, not deadlock on the first cross-partition
// lock transfer.
func TestChaosPartitionCleanError(t *testing.T) {
	const (
		procs      = 4
		rpcTimeout = 2 * time.Second
	)
	plan, err := repro.ParseFaultPlan("partition=2x2,seed=4")
	if err != nil {
		t.Fatal(err)
	}
	tr := repro.WrapFaultTransport(repro.NewSimNetTransport(procs), plan)
	var out *lockIncrementOutcome
	withWatchdog(t, rpcTimeout+30*time.Second, "partition run", func() {
		out = runLockIncrement(procs, 1<<30, repro.LazyInvalidate, rpcTimeout, []repro.Transport{tr}, -1)
	})
	err = out.all()
	if err == nil {
		t.Fatal("partitioned cluster completed an unbounded lock loop cleanly")
	}
	if !errors.Is(err, dsm.ErrRPCTimeout) && !strings.Contains(err.Error(), "timeout") {
		t.Errorf("partition error is not a bounded-wait timeout: %v", err)
	}
	t.Logf("partition surfaced: %v", firstLine(err.Error()))
}

// TestMetricsLiveDuringRun is the live-observability acceptance
// criterion: scraping /metrics while a run is in flight reports nonzero
// per-kind message counters, /statusz serves the live snapshot, and
// concurrent NetStats/Status snapshots race cleanly with the run.
func TestMetricsLiveDuringRun(t *testing.T) {
	reg := repro.NewMetricsRegistry()
	tracer := repro.NewTracer(1 << 14)
	var (
		statusMu sync.Mutex
		statusFn func() any
	)
	srv, err := repro.StartObsServer("127.0.0.1:0", reg, func() any {
		statusMu.Lock()
		defer statusMu.Unlock()
		if statusFn == nil {
			return map[string]string{"state": "starting"}
		}
		return statusFn()
	}, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var snapWG sync.WaitGroup
	stopSnap := make(chan struct{})
	done := make(chan struct{})
	var res *repro.RuntimeResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = repro.RunWorkloadOnRuntime("water", 4, 0.05, 7, repro.RuntimeConfig{
			PageSize: 1024,
			Mode:     repro.LazyUpdate,
			Metrics:  reg,
			Tracer:   tracer,
			OnSystems: func(systems []*dsm.System) {
				statusMu.Lock()
				statusFn = func() any {
					sts := make([]dsm.Status, len(systems))
					for i, s := range systems {
						sts[i] = s.Status()
					}
					return sts
				}
				statusMu.Unlock()
				// Satellite: hammer NetStats/Status concurrently with the
				// live run; -race verifies the snapshots are clean.
				for _, s := range systems {
					s := s
					snapWG.Add(1)
					go func() {
						defer snapWG.Done()
						for {
							select {
							case <-stopSnap:
								return
							default:
								_ = s.NetStats()
								_ = s.Status()
							}
						}
					}()
				}
			},
		})
	}()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(b)
	}

	// Poll /metrics while the run is live; a short workload may outrun
	// the poller, so one post-run scrape (the registry callbacks stay
	// valid) still satisfies the counter check, but we insist on having
	// gotten at least one scrape in.
	sawLive := false
	deadline := time.After(2 * time.Minute)
poll:
	for {
		select {
		case <-done:
			break poll
		case <-deadline:
			t.Fatal("run did not finish")
		case <-time.After(5 * time.Millisecond):
			if hasNonzeroKindCounter(get("/metrics")) {
				sawLive = true
				break poll
			}
		}
	}
	<-done
	close(stopSnap)
	snapWG.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res.Net.Messages == 0 {
		t.Fatal("run moved no messages; metrics assertion is vacuous")
	}
	body := get("/metrics")
	if !hasNonzeroKindCounter(body) {
		t.Fatalf("no nonzero dsm_node_kind_msgs_total series in /metrics:\n%s", body)
	}
	if !sawLive {
		t.Log("run finished before the first successful scrape; counters verified post-run")
	}
	if !strings.Contains(body, "dsm_net_messages_total") {
		t.Error("missing dsm_net_messages_total family")
	}
	if !strings.Contains(body, "dsm_node_rpc_seconds_bucket") {
		t.Error("missing rpc latency histogram")
	}
	statusz := get("/statusz")
	for _, want := range []string{`"procs"`, `"mode"`, `"nodes"`, `"net"`} {
		if !strings.Contains(statusz, want) {
			t.Errorf("/statusz missing %s:\n%s", want, statusz)
		}
	}
	trace := get("/trace")
	if !strings.Contains(trace, `"traceEvents"`) {
		t.Error("/trace is not Chrome trace_event JSON")
	}
}

// hasNonzeroKindCounter reports whether a /metrics body contains a
// per-kind message counter with a nonzero value.
func hasNonzeroKindCounter(body string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "dsm_node_kind_msgs_total{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" {
			return true
		}
	}
	return false
}
