package repro_test

import (
	"testing"

	"repro"
)

// Placement gate and benchmark: home migration earns its keep when, on
// a writer-dominant workload whose slabs are statically homed all over
// the cluster, re-homing each page to its dominant writer turns the
// recurring flush/directory exchanges with the home into free loopback.
// The partition workload is built for exactly this shape (see
// internal/workload/partition.go).

// migrationGateMargin is the required improvement: migration-on must
// move at least 15% fewer messages per critical section than the static
// block placement on at least one protocol.
const migrationGateMargin = 0.85

// migrateRC is the migration configuration under test for one protocol:
// static block placement, homes re-examined at every barrier.
func migrateRC(m repro.DSMMode) repro.RuntimeConfig {
	return repro.RuntimeConfig{
		PageSize: adaptPageSize, Mode: m, AdaptEveryBarriers: 1, MigrateHomes: true,
	}
}

// TestMigrationTrafficGate: on the writer-dominant partition workload,
// home migration must beat the static block placement by at least 15%
// messages per critical section on at least one protocol, and must
// actually migrate pages to get there.
func TestMigrationTrafficGate(t *testing.T) {
	if testing.Short() {
		t.Skip("migration gate sweeps every protocol twice; skipped in short mode")
	}
	const name = "partition"
	won := false
	for _, m := range repro.DSMModes {
		static := msgsPerCritsec(t, name, repro.RuntimeConfig{PageSize: adaptPageSize, Mode: m})
		res, err := repro.RunWorkloadOnRuntime(name, adaptProcs, adaptScale, adaptSeed, migrateRC(m))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := repro.ExecuteWorkload(name, adaptProcs, adaptScale, adaptSeed)
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Image) != string(ref.Image) {
			t.Fatalf("%s/%s: migrated runtime image diverges from reference", name, m)
		}
		var moved int64
		for _, ns := range res.Nodes {
			moved += ns.PageMigrations
		}
		migrated := float64(res.Net.Messages) / float64(ref.Trace.Count().Acquires)
		t.Logf("%s/%s: static block %.1f msgs/critsec, migrated %.1f (%.0f%%), %d pages re-homed",
			name, m, static, migrated, 100*migrated/static, moved)
		if migrated <= migrationGateMargin*static && moved > 0 {
			won = true
		}
	}
	if !won {
		t.Errorf("home migration beat static block placement by %.0f%% on no protocol",
			100*(1-migrationGateMargin))
	}
}

// BenchmarkPlacementPolicies emits the msgs/critsec series behind the
// gate — every placement policy with migration off and on, per protocol
// — as benchmark metrics for the BENCH_placement.json artifact.
func BenchmarkPlacementPolicies(b *testing.B) {
	const name = "partition"
	for _, m := range repro.DSMModes {
		for _, placement := range []string{"block", "rr", "first-touch"} {
			b.Run(name+"/"+m.String()+"/"+placement, func(b *testing.B) {
				var v float64
				for i := 0; i < b.N; i++ {
					v = msgsPerCritsec(b, name, repro.RuntimeConfig{
						PageSize: adaptPageSize, Mode: m, Placement: placement,
					})
				}
				b.ReportMetric(v, "msgs/critsec")
			})
		}
		b.Run(name+"/"+m.String()+"/migrate", func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = msgsPerCritsec(b, name, migrateRC(m))
			}
			b.ReportMetric(v, "msgs/critsec")
		})
	}
}
