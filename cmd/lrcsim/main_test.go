package main

import (
	"strings"
	"testing"
)

func TestRunTableOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "water", "-procs", "4", "-scale", "0.05",
		"-protocols", "LI,LU", "-pagesizes", "2048,512"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"== water", "Messages", "Data (kbytes)", "2048", "512", "LI", "LU"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "pthor", "-procs", "4", "-scale", "0.05",
		"-protocols", "SC", "-pagesizes", "1024", "-format", "csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "workload,protocol,pagesize,messages") {
		t.Fatalf("missing csv header:\n%s", got)
	}
	if !strings.Contains(got, "pthor,SC,1024,") {
		t.Errorf("missing csv row:\n%s", got)
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "bogus", "-procs", "4", "-scale", "0.05"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-app", "water", "-procs", "4", "-scale", "0.05", "-pagesizes", "abc"}, &out); err == nil {
		t.Error("bad page size accepted")
	}
	if err := run([]string{"-app", "water", "-procs", "4", "-scale", "0.05", "-format", "xml"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-app", "water", "-procs", "4", "-scale", "0.05", "-protocols", "ZZ"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
}
