// Command lrcsim regenerates the paper's evaluation: it generates (or
// loads) a workload trace and replays it against the LI, LU, EI and EU
// protocol engines across a range of page sizes, printing the message and
// data series behind Figures 5–14.
//
// Examples:
//
//	lrcsim -app locusroute                  # Figures 5 and 6
//	lrcsim -app all                         # every figure
//	lrcsim -app pthor -protocols LI,LU,SC   # with the Ivy SC baseline
//	lrcsim -app water -format csv
//	lrcsim -trace water.lrct                # replay a saved trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "lrcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrcsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		app       = fs.String("app", "locusroute", "workload name ("+strings.Join(workload.Names, ", ")+") or \"all\"")
		traceFile = fs.String("trace", "", "replay a saved trace file instead of generating a workload")
		procs     = fs.Int("procs", 16, "number of processors (the paper used 16)")
		scale     = fs.Float64("scale", 1.0, "workload scale factor")
		seed      = fs.Int64("seed", 42, "workload random seed")
		protocols = fs.String("protocols", "LI,LU,EI,EU", "comma-separated protocols (LI, LU, EI, EU, SC)")
		sizes     = fs.String("pagesizes", "8192,4096,2048,1024,512", "comma-separated page sizes in bytes")
		format    = fs.String("format", "table", "output format: table or csv")
		noPiggy   = fs.Bool("no-piggyback", false, "ablation: send write notices in separate messages")
		noDiffs   = fs.Bool("no-diffs", false, "ablation: ship whole pages instead of diffs")
		exclusive = fs.Bool("exclusive-writer", false, "ablation: disable the multiple-writer protocol")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := proto.Options{NoPiggyback: *noPiggy, NoDiffs: *noDiffs, ExclusiveWriter: *exclusive}
	protoList := splitList(*protocols)
	pageSizes, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	var traces []*trace.Trace
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		t, err := trace.ReadFrom(f)
		f.Close()
		if err != nil {
			return err
		}
		traces = append(traces, t)
	case *app == "all":
		for _, name := range workload.Names {
			t, err := workload.GenerateCached(name, *procs, *scale, *seed)
			if err != nil {
				return err
			}
			traces = append(traces, t)
		}
	default:
		t, err := workload.GenerateCached(*app, *procs, *scale, *seed)
		if err != nil {
			return err
		}
		traces = append(traces, t)
	}

	for _, t := range traces {
		results, err := sim.Sweep(t, protoList, pageSizes, opts)
		if err != nil {
			return err
		}
		switch *format {
		case "csv":
			printCSV(out, t, results)
		case "table":
			if err := printTables(out, t, results, protoList, pageSizes); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q (want table or csv)", *format)
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad page size %q: %v", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func printTables(out io.Writer, t *trace.Trace, results []sim.Result, protocols []string, pageSizes []int) error {
	c := t.Count()
	fmt.Fprintf(out, "== %s: %d procs, %d events (%d reads, %d writes, %d acquires, %d releases, %d barrier arrivals), %d KB shared ==\n",
		t.Name, t.NumProcs, len(t.Events), c.Reads, c.Writes, c.Acquires, c.Releases, c.BarrierArrivals, t.SpaceSize/1024)
	for _, metric := range []string{"messages", "data"} {
		unit := ""
		if metric == "data" {
			unit = " (kbytes)"
		}
		fmt.Fprintf(out, "\n%s%s\n", strings.ToUpper(metric[:1])+metric[1:], unit)
		fmt.Fprintf(out, "%-10s", "page")
		for _, p := range protocols {
			fmt.Fprintf(out, "%12s", p)
		}
		fmt.Fprintln(out)
		for _, ps := range pageSizes {
			fmt.Fprintf(out, "%-10d", ps)
			for _, p := range protocols {
				series, err := sim.Series(results, p, []int{ps}, metric)
				if err != nil {
					return err
				}
				v := series[0]
				if metric == "data" {
					v /= 1024
				}
				fmt.Fprintf(out, "%12d", v)
			}
			fmt.Fprintln(out)
		}
	}
	fmt.Fprintln(out)
	return nil
}

func printCSV(out io.Writer, t *trace.Trace, results []sim.Result) {
	fmt.Fprintln(out, "workload,protocol,pagesize,messages,databytes,misses,diffs,pages,notices")
	for _, r := range results {
		s := r.Stats
		fmt.Fprintf(out, "%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
			t.Name, r.Protocol, r.PageSize, r.Messages(), r.DataBytes(),
			s.AccessMisses, s.DiffsSent, s.PagesSent, s.WriteNoticesSent)
	}
}
