// Command lrcsim regenerates the paper's evaluation: it generates (or
// loads) a workload trace and replays it against the LI, LU, EI and EU
// protocol engines across a range of page sizes, printing the message and
// data series behind Figures 5–14.
//
// Examples:
//
//	lrcsim -app locusroute                  # Figures 5 and 6
//	lrcsim -app all                         # every figure
//	lrcsim -app pthor -protocols LI,LU,SC   # with the Ivy SC baseline
//	lrcsim -app water -format csv
//	lrcsim -trace water.lrct                # replay a saved trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "locusroute", "workload name ("+strings.Join(workload.Names, ", ")+") or \"all\"")
		traceFile = flag.String("trace", "", "replay a saved trace file instead of generating a workload")
		procs     = flag.Int("procs", 16, "number of processors (the paper used 16)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		seed      = flag.Int64("seed", 42, "workload random seed")
		protocols = flag.String("protocols", "LI,LU,EI,EU", "comma-separated protocols (LI, LU, EI, EU, SC)")
		sizes     = flag.String("pagesizes", "8192,4096,2048,1024,512", "comma-separated page sizes in bytes")
		format    = flag.String("format", "table", "output format: table or csv")
		noPiggy   = flag.Bool("no-piggyback", false, "ablation: send write notices in separate messages")
		noDiffs   = flag.Bool("no-diffs", false, "ablation: ship whole pages instead of diffs")
		exclusive = flag.Bool("exclusive-writer", false, "ablation: disable the multiple-writer protocol")
	)
	flag.Parse()

	opts := proto.Options{NoPiggyback: *noPiggy, NoDiffs: *noDiffs, ExclusiveWriter: *exclusive}
	protoList := splitList(*protocols)
	pageSizes, err := parseSizes(*sizes)
	if err != nil {
		fatal(err)
	}

	var traces []*trace.Trace
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		t, err := trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		traces = append(traces, t)
	case *app == "all":
		for _, name := range workload.Names {
			t, err := workload.GenerateCached(name, *procs, *scale, *seed)
			if err != nil {
				fatal(err)
			}
			traces = append(traces, t)
		}
	default:
		t, err := workload.GenerateCached(*app, *procs, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		traces = append(traces, t)
	}

	for _, t := range traces {
		results, err := sim.Sweep(t, protoList, pageSizes, opts)
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "csv":
			printCSV(t, results)
		default:
			printTables(t, results, protoList, pageSizes)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad page size %q: %v", f, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func printTables(t *trace.Trace, results []sim.Result, protocols []string, pageSizes []int) {
	c := t.Count()
	fmt.Printf("== %s: %d procs, %d events (%d reads, %d writes, %d acquires, %d releases, %d barrier arrivals), %d KB shared ==\n",
		t.Name, t.NumProcs, len(t.Events), c.Reads, c.Writes, c.Acquires, c.Releases, c.BarrierArrivals, t.SpaceSize/1024)
	for _, metric := range []string{"messages", "data"} {
		unit := ""
		if metric == "data" {
			unit = " (kbytes)"
		}
		fmt.Printf("\n%s%s\n", strings.ToUpper(metric[:1])+metric[1:], unit)
		fmt.Printf("%-10s", "page")
		for _, p := range protocols {
			fmt.Printf("%12s", p)
		}
		fmt.Println()
		for _, ps := range pageSizes {
			fmt.Printf("%-10d", ps)
			for _, p := range protocols {
				series, err := sim.Series(results, p, []int{ps}, metric)
				if err != nil {
					fatal(err)
				}
				v := series[0]
				if metric == "data" {
					v /= 1024
				}
				fmt.Printf("%12d", v)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}

func printCSV(t *trace.Trace, results []sim.Result) {
	fmt.Println("workload,protocol,pagesize,messages,databytes,misses,diffs,pages,notices")
	for _, r := range results {
		s := r.Stats
		fmt.Printf("%s,%s,%d,%d,%d,%d,%d,%d,%d\n",
			t.Name, r.Protocol, r.PageSize, r.Messages(), r.DataBytes(),
			s.AccessMisses, s.DiffsSent, s.PagesSent, s.WriteNoticesSent)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lrcsim:", err)
	os.Exit(1)
}
