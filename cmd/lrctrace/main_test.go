package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenerateAndStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "water", "-procs", "4", "-scale", "0.05"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"trace water", "4 procs", "reads ", "barrier arrivals"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSaveAndReload(t *testing.T) {
	file := filepath.Join(t.TempDir(), "w.lrct")
	var out strings.Builder
	if err := run([]string{"-app", "pthor", "-procs", "4", "-scale", "0.05", "-o", file}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote ") {
		t.Fatalf("no write confirmation:\n%s", out.String())
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
	out.Reset()
	if err := run([]string{"-in", file, "-dump"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace pthor") {
		t.Errorf("reload output:\n%.200s", out.String())
	}
	if !strings.Contains(out.String(), "p0 ") {
		t.Error("dump printed no events")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no -app/-in accepted")
	}
	if err := run([]string{"-app", "bogus"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.lrct"}, &out); err == nil {
		t.Error("missing input file accepted")
	}
	if err := run([]string{"-nonsense"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
