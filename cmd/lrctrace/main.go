// Command lrctrace generates, saves, and inspects workload traces — the
// equivalent of the paper's Tango tracing step (§5.1).
//
// Examples:
//
//	lrctrace -app pthor -o pthor.lrct          # generate and save
//	lrctrace -in pthor.lrct -stats             # event mix of a saved trace
//	lrctrace -app water -dump | head           # print events
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		app   = flag.String("app", "", "workload to generate (locusroute, cholesky, mp3d, water, pthor)")
		in    = flag.String("in", "", "read a saved trace instead of generating")
		out   = flag.String("o", "", "write the trace to this file")
		procs = flag.Int("procs", 16, "number of processors")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		seed  = flag.Int64("seed", 42, "workload random seed")
		dump  = flag.Bool("dump", false, "print every event")
		stats = flag.Bool("stats", true, "print the trace's event mix")
	)
	flag.Parse()

	var t *trace.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		t, err = trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *app != "":
		var err error
		t, err = workload.GenerateCached(*app, *procs, *scale, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -app or -in is required"))
	}

	if *stats {
		c := t.Count()
		fmt.Printf("trace %s: %d procs, %d locks, %d barriers, %d KB shared, %d events\n",
			t.Name, t.NumProcs, t.NumLocks, t.NumBarriers, t.SpaceSize/1024, len(t.Events))
		fmt.Printf("  reads %d, writes %d, acquires %d, releases %d, barrier arrivals %d\n",
			c.Reads, c.Writes, c.Acquires, c.Releases, c.BarrierArrivals)
	}
	if *dump {
		for _, e := range t.Events {
			fmt.Println(e)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		n, err := t.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", n, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lrctrace:", err)
	os.Exit(1)
}
