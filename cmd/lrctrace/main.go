// Command lrctrace generates, saves, and inspects workload traces — the
// equivalent of the paper's Tango tracing step (§5.1).
//
// Examples:
//
//	lrctrace -app pthor -o pthor.lrct          # generate and save
//	lrctrace -in pthor.lrct -stats             # event mix of a saved trace
//	lrctrace -app water -dump | head           # print events
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "lrctrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrctrace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		app   = fs.String("app", "", "workload to generate (locusroute, cholesky, mp3d, water, pthor)")
		in    = fs.String("in", "", "read a saved trace instead of generating")
		outF  = fs.String("o", "", "write the trace to this file")
		procs = fs.Int("procs", 16, "number of processors")
		scale = fs.Float64("scale", 1.0, "workload scale factor")
		seed  = fs.Int64("seed", 42, "workload random seed")
		dump  = fs.Bool("dump", false, "print every event")
		stats = fs.Bool("stats", true, "print the trace's event mix")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var t *trace.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		t, err = trace.ReadFrom(f)
		f.Close()
		if err != nil {
			return err
		}
	case *app != "":
		var err error
		t, err = workload.GenerateCached(*app, *procs, *scale, *seed)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -app or -in is required")
	}

	if *stats {
		c := t.Count()
		fmt.Fprintf(out, "trace %s: %d procs, %d locks, %d barriers, %d KB shared, %d events\n",
			t.Name, t.NumProcs, t.NumLocks, t.NumBarriers, t.SpaceSize/1024, len(t.Events))
		fmt.Fprintf(out, "  reads %d, writes %d, acquires %d, releases %d, barrier arrivals %d\n",
			c.Reads, c.Writes, c.Acquires, c.Releases, c.BarrierArrivals)
	}
	if *dump {
		for _, e := range t.Events {
			fmt.Fprintln(out, e)
		}
	}
	if *outF != "" {
		f, err := os.Create(*outF)
		if err != nil {
			return err
		}
		n, err := t.WriteTo(f)
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d bytes to %s\n", n, *outF)
	}
	return nil
}
