// Command lrcrun runs programs on the live DSM runtime (the
// implementation the paper's §7 promises) under any of the five
// protocols of the paper's evaluation — LI, LU, EI, EU or SC — and
// reports the interconnect traffic and estimated communication time.
//
// It runs either a small demonstration pattern (-demo) or one of the five
// SPLASH-structure workloads (-app). Workloads execute on genuinely
// concurrent nodes; the final shared-memory image is checked against the
// lockstep sequential reference, and the runtime's interconnect totals are
// printed next to the trace simulator's counts for the same program at the
// same page size and protocol.
//
// Examples:
//
//	lrcrun -demo counter -mode LU -procs 8
//	lrcrun -demo stencil -procs 4 -gc 2
//	lrcrun -app locusroute -mode EU -procs 8 -scale 0.25
//	lrcrun -app mp3d -mode SC
//	lrcrun -app all -pagesize 1024
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"repro"
	"repro/internal/dsm"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "lrcrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrcrun", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		demo     = fs.String("demo", "", "demo program: counter, stencil, queue")
		app      = fs.String("app", "", "workload to run on the runtime ("+strings.Join(workload.Names, ", ")+") or \"all\"")
		mode     = fs.String("mode", "LI", "protocol mode: "+dsm.ModeNames())
		procs    = fs.Int("procs", 8, "number of DSM nodes")
		iters    = fs.Int("iters", 100, "iterations per node (demos)")
		scale    = fs.Float64("scale", 0.1, "workload scale factor (-app)")
		seed     = fs.Int64("seed", 42, "workload random seed (-app)")
		pageSize = fs.Int("pagesize", 4096, "consistency page size in bytes")
		gc       = fs.Int("gc", 0, "garbage-collect every N barriers (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := dsm.ParseMode(*mode)
	if err != nil {
		return err
	}

	switch {
	case *app != "" && *demo != "":
		return fmt.Errorf("-demo and -app are mutually exclusive")
	case *app == "all":
		for _, name := range workload.Names {
			if err := runWorkload(out, name, *procs, *scale, *seed, m, *pageSize, *gc); err != nil {
				return err
			}
		}
		return nil
	case *app != "":
		return runWorkload(out, *app, *procs, *scale, *seed, m, *pageSize, *gc)
	default:
		if *demo == "" {
			*demo = "counter"
		}
		return runDemo(out, *demo, m, *procs, *iters, *pageSize, *gc)
	}
}

// runWorkload executes a SPLASH workload on the live runtime, verifies its
// final memory image against the lockstep reference, and reports the
// interconnect totals next to the simulator's counts for the same trace.
func runWorkload(out io.Writer, name string, procs int, scale float64, seed int64, m dsm.Mode, pageSize, gc int) error {
	prog, err := workload.New(name, procs, scale, seed)
	if err != nil {
		return err
	}
	ref, err := workload.ExecuteCached(name, procs, scale, seed)
	if err != nil {
		return err
	}
	res, err := workload.RunOnRuntime(prog, workload.RuntimeConfig{
		PageSize: pageSize, Mode: m, GCEveryBarriers: gc,
	})
	if err != nil {
		return err
	}
	verdict := "matches sequential reference"
	if !bytes.Equal(res.Image, ref.Image) {
		verdict = "DIVERGES from sequential reference (consistency violation!)"
	}
	st, err := sim.Run(ref.Trace, m.String(), pageSize, proto.Options{})
	if err != nil {
		return err
	}
	c := ref.Trace.Count()
	fmt.Fprintf(out, "== %s: %d procs, scale %g, mode %s, page %d ==\n", name, procs, scale, m, pageSize)
	fmt.Fprintf(out, "trace: %d events (%d reads, %d writes, %d acquires, %d barrier arrivals)\n",
		len(ref.Trace.Events), c.Reads, c.Writes, c.Acquires, c.BarrierArrivals)
	fmt.Fprintf(out, "image: %d bytes, %s\n", len(res.Image), verdict)
	fmt.Fprintf(out, "%-12s%14s%14s\n", "", "messages", "bytes")
	fmt.Fprintf(out, "%-12s%14d%14d   (live interconnect, incl. read-out; est. wire time %v)\n",
		"runtime", res.Net.Messages, res.Net.Bytes, res.Elapsed)
	fmt.Fprintf(out, "%-12s%14d%14d   (trace replay, %s)\n",
		"simulator", st.TotalMessages(), st.TotalBytes(), m)
	var misses, diffs, updates, intervals, invals, moves int64
	for _, ns := range res.Nodes {
		misses += ns.AccessMisses
		diffs += ns.DiffsApplied
		updates += ns.UpdatesReceived
		intervals += ns.IntervalsCreated
		invals += ns.InvalsReceived
		moves += ns.OwnershipMoves
	}
	fmt.Fprintf(out, "nodes: %d access misses, %d diffs applied, %d updates, %d intervals, %d invalidations, %d ownership moves\n\n",
		misses, diffs, updates, intervals, invals, moves)
	if !bytes.Equal(res.Image, ref.Image) {
		return fmt.Errorf("%s: runtime image diverges from sequential reference", name)
	}
	return nil
}

func runDemo(out io.Writer, demo string, m dsm.Mode, procs, iters, pageSize, gc int) error {
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs:           procs,
		SpaceSize:       1 << 20,
		PageSize:        pageSize,
		Mode:            m,
		GCEveryBarriers: gc,
	})
	if err != nil {
		return err
	}
	defer d.Close()

	var body func(out io.Writer, d *repro.DSM, iters int) error
	switch demo {
	case "counter":
		body = runCounter
	case "stencil":
		body = runStencil
	case "queue":
		body = runQueue
	default:
		return fmt.Errorf("unknown demo %q", demo)
	}
	if err := body(out, d, iters); err != nil {
		return err
	}
	st := d.NetStats()
	fmt.Fprintf(out, "demo=%s mode=%s procs=%d iters=%d\n", demo, m, procs, iters)
	fmt.Fprintf(out, "interconnect: %d messages, %d bytes, estimated serial wire time %v\n",
		st.Messages, st.Bytes, d.EstimateTime())
	for i := 0; i < d.NumProcs(); i++ {
		ns := d.Node(i).Stats()
		fmt.Fprintf(out, "  node %d: misses %d (cold %d), diffs applied %d, intervals %d, gc runs %d, invals %d, updates %d\n",
			i, ns.AccessMisses, ns.ColdMisses, ns.DiffsApplied, ns.IntervalsCreated, ns.GCRuns, ns.InvalsReceived, ns.UpdatesReceived)
	}
	return nil
}

// runCounter is the migratory-data pattern of the paper's Figures 3 and 4:
// every node repeatedly locks, increments, unlocks one shared counter.
func runCounter(out io.Writer, d *repro.DSM, iters int) error {
	errs := parallel(d, func(n *repro.Node, id int) error {
		for k := 0; k < iters; k++ {
			if err := n.Acquire(0); err != nil {
				return err
			}
			v, err := n.ReadUint64(0)
			if err != nil {
				return err
			}
			if err := n.WriteUint64(0, v+1); err != nil {
				return err
			}
			if err := n.Release(0); err != nil {
				return err
			}
		}
		return nil
	})
	if errs != nil {
		return errs
	}
	n := d.Node(0)
	if err := n.Acquire(0); err != nil {
		return err
	}
	v, err := n.ReadUint64(0)
	if err != nil {
		return err
	}
	if err := n.Release(0); err != nil {
		return err
	}
	want := uint64(d.NumProcs() * iters)
	if v != want {
		return fmt.Errorf("counter = %d, want %d (consistency violation!)", v, want)
	}
	fmt.Fprintf(out, "counter reached %d as required\n", v)
	return nil
}

// runStencil is a barrier-per-step grid relaxation (the barrier-heavy
// category of §5.3): each node owns a band of a grid, reads its
// neighbors' boundary rows, and synchronizes with barriers.
func runStencil(out io.Writer, d *repro.DSM, iters int) error {
	const rowBytes = 512
	procs := d.NumProcs()
	return parallel(d, func(n *repro.Node, id int) error {
		base := repro.Addr(id * 4 * rowBytes)
		row := make([]byte, rowBytes)
		for step := 0; step < iters; step++ {
			// Read the neighbor band's boundary row, then rewrite ours.
			nb := (id + 1) % procs
			if err := n.Read(row, repro.Addr(nb*4*rowBytes)); err != nil {
				return err
			}
			for i := range row {
				row[i] = byte(int(row[i]) + step + id)
			}
			if err := n.Write(base, row); err != nil {
				return err
			}
			if err := n.Barrier(0); err != nil {
				return err
			}
		}
		return nil
	})
}

// runQueue is the migratory task-queue pattern of LocusRoute/Cholesky: a
// lock-protected shared queue head with per-task data updates.
func runQueue(out io.Writer, d *repro.DSM, iters int) error {
	total := d.NumProcs() * iters
	err := parallel(d, func(n *repro.Node, id int) error {
		for {
			if err := n.Acquire(0); err != nil {
				return err
			}
			head, err := n.ReadUint64(0)
			if err != nil {
				return err
			}
			if head >= uint64(total) {
				return n.Release(0)
			}
			if err := n.WriteUint64(0, head+1); err != nil {
				return err
			}
			if err := n.Release(0); err != nil {
				return err
			}
			// "Process" the task: update its slot.
			slot := repro.Addr(4096 + 8*head)
			if err := n.WriteUint64(slot, head*head); err != nil {
				return err
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "queue drained %d tasks\n", total)
	return nil
}

func parallel(d *repro.DSM, f func(n *repro.Node, id int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, d.NumProcs())
	for i := 0; i < d.NumProcs(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(d.Node(i), i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
