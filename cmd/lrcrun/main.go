// Command lrcrun runs demonstration programs on the live lazy-release-
// consistency DSM runtime (the implementation the paper's §7 promises)
// and reports the interconnect traffic and estimated communication time.
//
// Examples:
//
//	lrcrun -demo counter -mode LU -procs 8
//	lrcrun -demo stencil -procs 4 -gc 2
//	lrcrun -demo queue -iters 200
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro"
)

func main() {
	var (
		demo  = flag.String("demo", "counter", "demo program: counter, stencil, queue")
		mode  = flag.String("mode", "LI", "protocol mode: LI or LU")
		procs = flag.Int("procs", 8, "number of DSM nodes")
		iters = flag.Int("iters", 100, "iterations per node")
		gc    = flag.Int("gc", 0, "garbage-collect every N barriers (0 = off)")
	)
	flag.Parse()

	m := repro.LazyInvalidate
	if *mode == "LU" {
		m = repro.LazyUpdate
	} else if *mode != "LI" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs:           *procs,
		SpaceSize:       1 << 20,
		PageSize:        4096,
		Mode:            m,
		GCEveryBarriers: *gc,
	})
	if err != nil {
		fatal(err)
	}
	defer d.Close()

	var run func(d *repro.DSM, iters int) error
	switch *demo {
	case "counter":
		run = runCounter
	case "stencil":
		run = runStencil
	case "queue":
		run = runQueue
	default:
		fatal(fmt.Errorf("unknown demo %q", *demo))
	}
	if err := run(d, *iters); err != nil {
		fatal(err)
	}
	st := d.NetStats()
	fmt.Printf("demo=%s mode=%s procs=%d iters=%d\n", *demo, *mode, *procs, *iters)
	fmt.Printf("interconnect: %d messages, %d bytes, estimated serial wire time %v\n",
		st.Messages, st.Bytes, d.EstimateTime())
	for i := 0; i < d.NumProcs(); i++ {
		ns := d.Node(i).Stats()
		fmt.Printf("  node %d: misses %d (cold %d), diffs applied %d, intervals %d, gc runs %d\n",
			i, ns.AccessMisses, ns.ColdMisses, ns.DiffsApplied, ns.IntervalsCreated, ns.GCRuns)
	}
}

// runCounter is the migratory-data pattern of the paper's Figures 3 and 4:
// every node repeatedly locks, increments, unlocks one shared counter.
func runCounter(d *repro.DSM, iters int) error {
	errs := parallel(d, func(n *repro.Node, id int) error {
		for k := 0; k < iters; k++ {
			if err := n.Acquire(0); err != nil {
				return err
			}
			v, err := n.ReadUint64(0)
			if err != nil {
				return err
			}
			if err := n.WriteUint64(0, v+1); err != nil {
				return err
			}
			if err := n.Release(0); err != nil {
				return err
			}
		}
		return nil
	})
	if errs != nil {
		return errs
	}
	n := d.Node(0)
	if err := n.Acquire(0); err != nil {
		return err
	}
	v, err := n.ReadUint64(0)
	if err != nil {
		return err
	}
	if err := n.Release(0); err != nil {
		return err
	}
	want := uint64(d.NumProcs() * iters)
	if v != want {
		return fmt.Errorf("counter = %d, want %d (consistency violation!)", v, want)
	}
	fmt.Printf("counter reached %d as required\n", v)
	return nil
}

// runStencil is a barrier-per-step grid relaxation (the barrier-heavy
// category of §5.3): each node owns a band of a grid, reads its
// neighbors' boundary rows, and synchronizes with barriers.
func runStencil(d *repro.DSM, iters int) error {
	const rowBytes = 512
	procs := d.NumProcs()
	return parallel(d, func(n *repro.Node, id int) error {
		base := repro.Addr(id * 4 * rowBytes)
		row := make([]byte, rowBytes)
		for step := 0; step < iters; step++ {
			// Read the neighbor band's boundary row, then rewrite ours.
			nb := (id + 1) % procs
			if err := n.Read(row, repro.Addr(nb*4*rowBytes)); err != nil {
				return err
			}
			for i := range row {
				row[i] = byte(int(row[i]) + step + id)
			}
			if err := n.Write(base, row); err != nil {
				return err
			}
			if err := n.Barrier(0); err != nil {
				return err
			}
		}
		return nil
	})
}

// runQueue is the migratory task-queue pattern of LocusRoute/Cholesky: a
// lock-protected shared queue head with per-task data updates.
func runQueue(d *repro.DSM, iters int) error {
	total := d.NumProcs() * iters
	err := parallel(d, func(n *repro.Node, id int) error {
		for {
			if err := n.Acquire(0); err != nil {
				return err
			}
			head, err := n.ReadUint64(0)
			if err != nil {
				return err
			}
			if head >= uint64(total) {
				return n.Release(0)
			}
			if err := n.WriteUint64(0, head+1); err != nil {
				return err
			}
			if err := n.Release(0); err != nil {
				return err
			}
			// "Process" the task: update its slot.
			slot := repro.Addr(4096 + 8*head)
			if err := n.WriteUint64(slot, head*head); err != nil {
				return err
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("queue drained %d tasks\n", total)
	return nil
}

func parallel(d *repro.DSM, f func(n *repro.Node, id int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, d.NumProcs())
	for i := 0; i < d.NumProcs(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(d.Node(i), i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lrcrun:", err)
	os.Exit(1)
}
