// Command lrcrun runs programs on the live DSM runtime (the
// implementation the paper's §7 promises) under any of the five
// protocols of the paper's evaluation — LI, LU, EI, EU or SC — and
// reports the interconnect traffic and estimated communication time.
//
// It runs either a small demonstration pattern (-demo) or one of the five
// SPLASH-structure workloads (-app). Workloads execute on genuinely
// concurrent nodes; the final shared-memory image is checked against the
// lockstep sequential reference, and the runtime's interconnect totals are
// printed next to the trace simulator's counts for the same program at the
// same page size and protocol.
//
// The interconnect is selected with -transport: "simnet" (default) runs
// the whole cluster over the simulated in-process network, "tcp" attaches
// this process to a real TCP cluster as one node — every participating
// process runs the same command with the same -peers list and its own
// -self index, and the process hosting node 0 verifies and prints the
// result.
//
// With -gpn k the logical processors are multiplexed onto procs/k
// oversubscribed nodes, k concurrent application goroutines each —
// node-local lock handoffs and two-level barriers replace most of the
// interconnect traffic, the threads-per-node shape the concurrent node
// core exists for.
//
// Examples:
//
//	lrcrun -demo counter -mode LU -procs 8
//	lrcrun -demo counter -mode LI -procs 8 -gpn 4
//	lrcrun -app water -mode LI -procs 8 -gpn 2
//	lrcrun -demo stencil -procs 4 -gc 2
//	lrcrun -app locusroute -mode EU -procs 8 -scale 0.25
//	lrcrun -app mp3d -mode SC
//	lrcrun -app all -pagesize 1024
//
//	# a 3-process TCP cluster on one machine (run each in its own shell):
//	lrcrun -transport tcp -peers :7070,:7071,:7072 -self 0 -app water
//	lrcrun -transport tcp -peers :7070,:7071,:7072 -self 1 -app water
//	lrcrun -transport tcp -peers :7070,:7071,:7072 -self 2 -app water
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dsm"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/transport/fault"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "lrcrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrcrun", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		demo       = fs.String("demo", "", "demo program: counter, stencil, queue")
		app        = fs.String("app", "", "workload to run on the runtime ("+strings.Join(workload.Names, ", ")+") or \"all\"")
		mode       = fs.String("mode", "LI", "protocol mode: "+dsm.ModeNames())
		modemap    = fs.String("modemap", "", "per-page protocol routing, e.g. pg0-31=SC,rest=LU (overrides -mode; modes: "+dsm.ModeNames()+")")
		adapt      = fs.Int("adapt", 0, "reclassify page sharing patterns and re-route pages every N barriers (0 = off)")
		placement  = fs.String("placement", "block", "page placement policy: "+dsm.PlacementNames()+"; with -app, a comma list runs a per-policy traffic comparison")
		migrate    = fs.Bool("migrate", false, "migrate page homes to their dominant writer on adaptive epochs (requires -adapt)")
		statsJSON  = fs.Bool("statsjson", false, "emit the run's dsm.Stats (per-kind traffic and per-page routing counters) as JSON")
		eagerDiffs = fs.Bool("eagerdiffs", false, "compute diffs eagerly at interval close in the lazy protocols (A/B baseline for the lazy diff pipeline; images and traffic identical)")
		procs      = fs.Int("procs", 8, "number of logical processors (with -transport tcp, fixed to peer count × -gpn)")
		gpn        = fs.Int("gpn", 1, "application goroutines per DSM node: gpn > 1 multiplexes the processors onto procs/gpn oversubscribed nodes")
		iters      = fs.Int("iters", 100, "iterations per node (demos)")
		scale      = fs.Float64("scale", 0.1, "workload scale factor (-app)")
		seed       = fs.Int64("seed", 42, "workload random seed (-app)")
		pageSize   = fs.Int("pagesize", 4096, "consistency page size in bytes")
		gc         = fs.Int("gc", 0, "garbage-collect every N barriers (0 = off)")
		transport  = fs.String("transport", "simnet", "interconnect: simnet (in-process) or tcp (cross-process; requires -peers)")
		nobatch    = fs.Bool("nobatch", false, "disable outbox frame batching (every message travels as its own frame)")
		flushMsgs  = fs.Int("flushmsgs", 0, "flush a destination's staged messages at this count (0 = structural flush points only)")
		flushBytes = fs.Int("flushbytes", 0, "flush a destination's staged messages at this estimated byte total (0 = off)")
		flushDelay = fs.Duration("flushdelay", 0, "Nagle-style hold: a requester keeps its destination open this long so concurrent traffic coalesces (0 = off)")
		compress   = fs.Int("compress", 0, "compress outbound frames of at least this many bytes (0 = off)")
		peers      = fs.String("peers", "", "comma-separated host:port of every node, in id order (-transport tcp)")
		self       = fs.Int("self", 0, "this process's index into -peers (-transport tcp)")
		metrics    = fs.String("metrics", "", "serve live observability on this address (host:port): /metrics Prometheus text, /statusz JSON, /trace Chrome JSON")
		tracePath  = fs.String("trace", "", "dump the protocol event ring as Chrome trace_event JSON to this file on exit (success or failure)")
		faultSpec  = fs.String("fault", "", "inject transport faults, e.g. drop=0.01,dup=0.005,delay=2ms,jitter=1ms,partition=2x2,kill=3@5000,seed=7")
		rpcTimeout = fs.Duration("rpctimeout", 0, "fail any remote wait (rpc response, master rendezvous) after this long instead of hanging (0 = wait forever)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := dsm.ParseMode(*mode)
	if err != nil {
		return err
	}
	if *gpn < 1 {
		return fmt.Errorf("-gpn %d must be at least 1", *gpn)
	}
	placements := strings.Split(*placement, ",")
	for i := range placements {
		placements[i] = strings.TrimSpace(placements[i])
		if _, err := dsm.ParsePlacement(placements[i]); err != nil {
			return err
		}
	}
	if *migrate && *adapt == 0 {
		return fmt.Errorf("-migrate needs -adapt N: home moves ride the adaptive exchange")
	}

	procsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "procs" {
			procsSet = true
		}
	})

	// Validate the transport selection before any sockets open, so flag
	// mistakes fail fast with a usable message.
	var peerList []string
	switch *transport {
	case "simnet":
		if *peers != "" {
			return fmt.Errorf("-peers requires -transport tcp")
		}
	case "tcp":
		peerList, err = parsePeers(*peers)
		if err != nil {
			return err
		}
		if len(placements) > 1 {
			return fmt.Errorf("a -placement comparison runs one cluster per policy; start each separately under -transport tcp")
		}
		if *self < 0 || *self >= len(peerList) {
			return fmt.Errorf("-self %d outside peer list [0,%d)", *self, len(peerList))
		}
		if procsSet && *procs != len(peerList)**gpn {
			return fmt.Errorf("-procs %d conflicts with the %d-entry peer list at -gpn %d (processor count is peers × gpn)",
				*procs, len(peerList), *gpn)
		}
		*procs = len(peerList) * *gpn
	default:
		return fmt.Errorf("unknown transport %q (supported: simnet, tcp)", *transport)
	}

	ob := &obsCfg{rpcTimeout: *rpcTimeout, tracePath: *tracePath}
	if *rpcTimeout < 0 {
		return fmt.Errorf("-rpctimeout %v must not be negative", *rpcTimeout)
	}
	if *faultSpec != "" {
		plan, err := fault.Parse(*faultSpec)
		if err != nil {
			return err
		}
		ob.plan = &plan
	}
	if *metrics != "" {
		ob.registry = obs.NewRegistry()
	}
	if *metrics != "" || *tracePath != "" {
		ob.tracer = obs.NewTracer(traceRingCap)
	}
	if *metrics != "" {
		srv, err := obs.StartServer(*metrics, obs.ServerConfig{
			Registry: ob.registry,
			Status:   ob.statusz,
			Tracer:   ob.tracer,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "observability: serving /metrics /statusz /trace on http://%s\n", srv.Addr())
	}
	if *tracePath != "" {
		// Dump the event ring whether the run succeeds or dies — a trace
		// of the ride into a failure is the point of having one.
		defer func() {
			if err := ob.dumpTrace(); err != nil {
				fmt.Fprintln(os.Stderr, "lrcrun: trace dump:", err)
			}
		}()
	}

	// mkTransport opens this process's endpoint; called once the program
	// to run is validated (nil transport selects the in-process network).
	// Fault injection needs a concrete transport to decorate, so with
	// -fault the in-process network is built explicitly.
	mkTransport := func() (repro.Transport, error) {
		var tr repro.Transport
		if peerList == nil {
			if ob.plan == nil {
				return nil, nil
			}
			tr = repro.NewSimNetTransport(*procs / *gpn)
		} else {
			t, err := repro.NewTCPTransport(*self, peerList)
			if err != nil {
				return nil, err
			}
			tr = t
		}
		if ob.plan != nil {
			tr = fault.Wrap(tr, *ob.plan)
		}
		return tr, nil
	}

	pipe := pipeCfg{
		noBatch:     *nobatch,
		flush:       dsm.FlushPolicy{MaxMsgs: *flushMsgs, MaxBytes: *flushBytes, Delay: *flushDelay},
		compressMin: *compress,
	}
	if *nobatch && (pipe.flush != dsm.FlushPolicy{} || *compress != 0) {
		return fmt.Errorf("-nobatch disables the outbox pipeline; -flushmsgs/-flushbytes/-flushdelay/-compress have no effect with it")
	}
	route := routeCfg{
		modeMap: *modemap, adapt: *adapt, statsJSON: *statsJSON,
		placements: placements, migrate: *migrate, eagerDiffs: *eagerDiffs,
	}

	switch {
	case *app != "" && *demo != "":
		return fmt.Errorf("-demo and -app are mutually exclusive")
	case *app == "all":
		if peerList != nil {
			return fmt.Errorf("-app all runs one cluster per workload; start each -app separately under -transport tcp")
		}
		for _, name := range workload.Names {
			if err := runWorkload(out, name, *procs, *gpn, *scale, *seed, m, *pageSize, *gc, pipe, route, ob, mkTransport); err != nil {
				return err
			}
		}
		return nil
	case *app != "":
		return runWorkload(out, *app, *procs, *gpn, *scale, *seed, m, *pageSize, *gc, pipe, route, ob, mkTransport)
	default:
		if *demo == "" {
			*demo = "counter"
		}
		return runDemo(out, *demo, m, *procs, *gpn, *iters, *pageSize, *gc, pipe, route, ob, mkTransport)
	}
}

// pipeCfg carries the outbound-pipeline tuning (batching, flush policy,
// compression) from the flags to the runtime configs.
type pipeCfg struct {
	noBatch     bool
	flush       dsm.FlushPolicy
	compressMin int
}

// routeCfg carries the per-page protocol routing and placement flags: a
// static mode map, the adaptive reclassification period, the placement
// policies to run (more than one means a per-policy comparison), the
// home-migration toggle, and the JSON stats toggle.
type routeCfg struct {
	modeMap    string
	adapt      int
	placements []string
	migrate    bool
	statsJSON  bool
	eagerDiffs bool
}

// traceRingCap bounds the protocol event ring: newest events win.
const traceRingCap = 1 << 16

// obsCfg carries the observability and fault-injection flags: the live
// metrics registry and tracer handed to every system the run builds, the
// transport fault plan, and the remote-wait timeout.
type obsCfg struct {
	registry   *obs.Registry
	tracer     *obs.Tracer
	plan       *fault.Plan
	rpcTimeout time.Duration
	tracePath  string
	// status holds a func() []dsm.Status once the run's systems exist;
	// /statusz serves a placeholder until then.
	status atomic.Value
}

// onSystems is the RuntimeConfig.OnSystems hook: once the run's systems
// are built, /statusz snapshots them live.
func (ob *obsCfg) onSystems(systems []*dsm.System) {
	ob.status.Store(func() []dsm.Status {
		sts := make([]dsm.Status, len(systems))
		for i, s := range systems {
			sts[i] = s.Status()
		}
		return sts
	})
}

// statusz is the /statusz payload: the systems' live snapshots, or a
// placeholder before the run has built them.
func (ob *obsCfg) statusz() any {
	if f, ok := ob.status.Load().(func() []dsm.Status); ok {
		return f()
	}
	return map[string]string{"state": "starting"}
}

// dumpTrace writes the event ring as Chrome trace_event JSON to the
// -trace path.
func (ob *obsCfg) dumpTrace() error {
	if ob.tracePath == "" || ob.tracer == nil {
		return nil
	}
	f, err := os.Create(ob.tracePath)
	if err != nil {
		return err
	}
	if err := ob.tracer.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// statsReport is the -statsjson output: the run's parameters, every local
// node's dsm.Stats — per-kind traffic breakdown and the per-page routing
// and access counters — the interconnect totals, and the latency model's
// wire-time estimate for that traffic.
type statsReport struct {
	Program        string             `json:"program"`
	Mode           string             `json:"mode"`
	ModeMap        string             `json:"modemap,omitempty"`
	Adapt          int                `json:"adaptEveryBarriers,omitempty"`
	Placement      string             `json:"placement,omitempty"`
	Migrate        bool               `json:"migrateHomes,omitempty"`
	HomeTable      string             `json:"homeTable,omitempty"`
	PageMigrations int64              `json:"pageMigrations"`
	Procs          int                `json:"procs"`
	Nodes          int                `json:"nodes"`
	Net            dsm.TransportStats `json:"net"`
	EstWireTime    string             `json:"estWireTime"`
	EstWireNS      int64              `json:"estWireNs"`
	Node           []dsm.Stats        `json:"nodeStats"`
}

func emitStatsJSON(out io.Writer, rep statsReport) error {
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", enc)
	return err
}

// parsePeers splits and validates a -peers list.
func parsePeers(s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-transport tcp requires -peers host:port,host:port,...")
	}
	list := strings.Split(s, ",")
	for i, p := range list {
		list[i] = strings.TrimSpace(p)
		if list[i] == "" {
			return nil, fmt.Errorf("bad peer list: empty address at position %d", i)
		}
	}
	return list, nil
}

// runWorkload executes a SPLASH workload on the live runtime, verifies its
// final memory image against the lockstep reference, and reports the
// interconnect totals next to the simulator's counts for the same trace.
// With gpn > 1 the program's processors are multiplexed onto procs/gpn
// oversubscribed nodes. Under TCP only the process hosting node 0 holds
// the image; the others report their own traffic.
func runWorkload(out io.Writer, name string, procs, gpn int, scale float64, seed int64, m dsm.Mode, pageSize, gc int, pipe pipeCfg, route routeCfg, ob *obsCfg, mkTransport func() (repro.Transport, error)) error {
	if procs%gpn != 0 {
		return fmt.Errorf("-gpn %d does not divide -procs %d", gpn, procs)
	}
	placements := route.placements
	if len(placements) == 0 {
		placements = []string{"block"}
	}

	// One run per placement policy; a single policy is the common case,
	// a comma list gives the per-policy traffic comparison rows.
	type polRun struct {
		policy string
		res    *workload.RuntimeResult
		report statsReport
	}
	runs := make([]polRun, 0, len(placements))
	for _, pol := range placements {
		prog, err := workload.New(name, procs, scale, seed)
		if err != nil {
			return err
		}
		tr, err := mkTransport()
		if err != nil {
			return err
		}
		rc := workload.RuntimeConfig{
			PageSize: pageSize, Mode: m, GCEveryBarriers: gc, GoroutinesPerNode: gpn,
			ModeMap: route.modeMap, AdaptEveryBarriers: route.adapt,
			Placement: pol, MigrateHomes: route.migrate, EagerDiffs: route.eagerDiffs,
			NoBatch: pipe.noBatch, Flush: pipe.flush, CompressMin: pipe.compressMin,
			RPCTimeout: ob.rpcTimeout, Metrics: ob.registry, Tracer: ob.tracer,
		}
		// Capture the run's systems so the report can include the final
		// home table (read from the routers' atomics after the run).
		var systems []*dsm.System
		rc.OnSystems = func(ss []*dsm.System) {
			systems = ss
			ob.onSystems(ss)
		}
		if tr != nil {
			rc.Transports = []repro.Transport{tr}
		}
		res, err := workload.RunOnRuntime(prog, rc)
		if err != nil {
			return err
		}
		report := statsReport{
			Program: name, Mode: m.String(), ModeMap: route.modeMap, Adapt: route.adapt,
			Placement: pol, Migrate: route.migrate,
			Procs: procs, Nodes: procs / gpn, Net: res.Net, Node: res.Nodes,
			EstWireTime: res.Elapsed.String(), EstWireNS: res.Elapsed.Nanoseconds(),
		}
		for _, ns := range res.Nodes {
			report.PageMigrations += ns.PageMigrations
		}
		if len(systems) > 0 {
			report.HomeTable = systems[0].Status().HomeTable
		}
		runs = append(runs, polRun{policy: pol, res: res, report: report})
	}

	first := runs[0]
	if first.res.Image == nil {
		// A TCP process hosting only non-zero nodes: node 0's process
		// verifies the image. (A placement comparison is simnet-only, so
		// there is exactly one run here.)
		fmt.Fprintf(out, "== %s: %d procs, mode %s, page %d: this process's nodes done ==\n", name, procs, m, pageSize)
		fmt.Fprintf(out, "%-28s%12d%12d%12d%14d%14d   (this process's sends; bytes then wire bytes)\n",
			"runtime", first.res.Net.Messages, first.res.Net.Frames, first.res.Net.Batches, first.res.Net.RawBytes, first.res.Net.Bytes)
		if route.statsJSON {
			return emitStatsJSON(out, first.report)
		}
		return nil
	}
	ref, err := workload.ExecuteCached(name, procs, scale, seed)
	if err != nil {
		return err
	}
	st, err := sim.Run(ref.Trace, m.String(), pageSize, proto.Options{})
	if err != nil {
		return err
	}
	c := ref.Trace.Count()
	fmt.Fprintf(out, "== %s: %d procs on %d nodes, scale %g, mode %s, page %d ==\n", name, procs, procs/gpn, scale, m, pageSize)
	fmt.Fprintf(out, "trace: %d events (%d reads, %d writes, %d acquires, %d barrier arrivals)\n",
		len(ref.Trace.Events), c.Reads, c.Writes, c.Acquires, c.BarrierArrivals)
	diverged := false
	for _, r := range runs {
		if !bytes.Equal(r.res.Image, ref.Image) {
			diverged = true
			fmt.Fprintf(out, "image (placement %s): %d bytes, DIVERGES from sequential reference (consistency violation!)\n",
				r.policy, len(r.res.Image))
		}
	}
	if !diverged {
		fmt.Fprintf(out, "image: %d bytes, matches sequential reference under every placement\n", len(first.res.Image))
	}
	// Traffic table: live transport counters (messages vs the physical
	// frames the outbox coalesced them into, logical bytes vs what frame
	// compression actually put on the wire) next to the simulator's
	// per-message model, normalized per critical section — one runtime
	// row per placement policy when several are compared.
	crit := int64(c.Acquires)
	perCrit := func(n int64) string {
		if crit == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", float64(n)/float64(crit))
	}
	fmt.Fprintf(out, "%-28s%12s%12s%12s%14s%14s%14s%14s\n",
		"", "msgs", "frames", "batches", "bytes", "wire bytes", "msgs/critsec", "wireB/critsec")
	for _, r := range runs {
		label := "runtime"
		if len(runs) > 1 {
			label = "runtime " + r.policy
			if route.migrate {
				label += "+migrate"
			}
		}
		extra := ""
		if r.report.PageMigrations > 0 {
			extra = fmt.Sprintf(", %d pages re-homed", r.report.PageMigrations)
		}
		fmt.Fprintf(out, "%-28s%12d%12d%12d%14d%14d%14s%14s   (est. wire time %v%s)\n",
			label, r.res.Net.Messages, r.res.Net.Frames, r.res.Net.Batches, r.res.Net.RawBytes, r.res.Net.Bytes,
			perCrit(r.res.Net.Messages), perCrit(r.res.Net.Bytes), r.res.Elapsed, extra)
	}
	fmt.Fprintf(out, "%-28s%12d%12s%12s%14d%14s%14s%14s   (trace replay, %s)\n",
		"simulator", st.TotalMessages(), "-", "-", st.TotalBytes(), "-", perCrit(st.TotalMessages()), perCrit(st.TotalBytes()), m)
	var misses, diffs, updates, intervals, invals, moves, migrations int64
	var created, deferred, cacheHits, flattened, twinBytes int64
	for _, ns := range first.res.Nodes {
		misses += ns.AccessMisses
		diffs += ns.DiffsApplied
		updates += ns.UpdatesReceived
		intervals += ns.IntervalsCreated
		invals += ns.InvalsReceived
		moves += ns.OwnershipMoves
		migrations += ns.PageMigrations
		created += ns.DiffsCreated
		deferred += ns.DiffsDeferred
		cacheHits += ns.DiffCacheHits
		flattened += ns.DiffsFlattened
		twinBytes += ns.TwinBytesLive
	}
	fmt.Fprintf(out, "nodes: %d access misses, %d diffs applied, %d updates, %d intervals, %d invalidations, %d ownership moves, %d page migrations\n",
		misses, diffs, updates, intervals, invals, moves, migrations)
	fmt.Fprintf(out, "diff plane: %d created, %d deferred, %d cache hits, %d flattened away, %d twin bytes live at exit\n\n",
		created, deferred, cacheHits, flattened, twinBytes)
	if route.statsJSON {
		for _, r := range runs {
			if err := emitStatsJSON(out, r.report); err != nil {
				return err
			}
		}
	}
	if diverged {
		return fmt.Errorf("%s: runtime image diverges from sequential reference", name)
	}
	return nil
}

func runDemo(out io.Writer, demo string, m dsm.Mode, procs, gpn, iters, pageSize, gc int, pipe pipeCfg, route routeCfg, ob *obsCfg, mkTransport func() (repro.Transport, error)) error {
	var body func(out io.Writer, d *repro.DSM, gpn, iters int) error
	switch demo {
	case "counter":
		body = runCounter
	case "stencil":
		body = runStencil
	case "queue":
		body = runQueue
	default:
		return fmt.Errorf("unknown demo %q", demo)
	}
	if procs%gpn != 0 {
		return fmt.Errorf("-gpn %d does not divide -procs %d", gpn, procs)
	}
	if len(route.placements) > 1 {
		return fmt.Errorf("-placement comparison needs -app; a demo runs one policy")
	}
	placement := dsm.PlaceBlock
	placementName := "block"
	if len(route.placements) == 1 {
		var err error
		if placement, err = dsm.ParsePlacement(route.placements[0]); err != nil {
			return err
		}
		placementName = route.placements[0]
	}
	const spaceSize = 1 << 20
	var modeMap []dsm.Mode
	if route.modeMap != "" {
		numPages := (spaceSize + pageSize - 1) / pageSize
		var err error
		modeMap, err = dsm.ParseModeMap(route.modeMap, numPages)
		if err != nil {
			return err
		}
	}
	tr, err := mkTransport()
	if err != nil {
		return err
	}
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs:              procs / gpn,
		SpaceSize:          spaceSize,
		PageSize:           pageSize,
		Mode:               m,
		ModeMap:            modeMap,
		AdaptEveryBarriers: route.adapt,
		Placement:          placement,
		MigrateHomes:       route.migrate,
		GCEveryBarriers:    gc,
		EagerDiffs:         route.eagerDiffs,
		GoroutinesPerNode:  gpn,
		NoBatch:            pipe.noBatch,
		Flush:              pipe.flush,
		CompressMin:        pipe.compressMin,
		RPCTimeout:         ob.rpcTimeout,
		Metrics:            ob.registry,
		Tracer:             ob.tracer,
		Transport:          tr,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	ob.onSystems([]*dsm.System{d})

	if err := body(out, d, gpn, iters); err != nil {
		return err
	}
	st := d.NetStats()
	fmt.Fprintf(out, "demo=%s mode=%s procs=%d nodes=%d gpn=%d iters=%d\n", demo, m, procs, procs/gpn, gpn, iters)
	fmt.Fprintf(out, "interconnect: %d messages in %d frames (%d batched), %d bytes (%d on the wire), estimated serial wire time %v\n",
		st.Messages, st.Frames, st.Batches, st.RawBytes, st.Bytes, d.EstimateTime())
	report := statsReport{
		Program: "demo:" + demo, Mode: m.String(), ModeMap: route.modeMap, Adapt: route.adapt,
		Placement: placementName, Migrate: route.migrate,
		HomeTable: d.Status().HomeTable,
		Procs:     procs, Nodes: procs / gpn, Net: st,
		EstWireTime: d.EstimateTime().String(), EstWireNS: int64(d.EstimateTime()),
	}
	for _, n := range d.Local() {
		ns := n.Stats()
		report.Node = append(report.Node, ns)
		report.PageMigrations += ns.PageMigrations
		fmt.Fprintf(out, "  node %d: misses %d (cold %d), diffs applied %d, intervals %d, gc runs %d, invals %d, updates %d\n",
			n.ID(), ns.AccessMisses, ns.ColdMisses, ns.DiffsApplied, ns.IntervalsCreated, ns.GCRuns, ns.InvalsReceived, ns.UpdatesReceived)
	}
	if route.statsJSON {
		return emitStatsJSON(out, report)
	}
	return nil
}

// demoSchema is the shared-state layout the demos allocate through the
// typed façade; every process of a TCP cluster builds it identically.
type demoSchema struct {
	arena *repro.Arena
	done  repro.Barrier // bodies finished; node 0 may verify
	fin   repro.Barrier // verification served; nodes may exit
}

func newDemoSchema(d *repro.DSM) *demoSchema {
	a := repro.NewArena(d.Layout())
	return &demoSchema{arena: a, done: a.NewBarrier(), fin: a.NewBarrier()}
}

// runCounter is the migratory-data pattern of the paper's Figures 3 and 4:
// every processor repeatedly locks, increments, unlocks one shared
// counter (with -gpn > 1 several processors share each node and the
// lock mostly hands off locally).
func runCounter(out io.Writer, d *repro.DSM, gpn, iters int) error {
	s := newDemoSchema(d)
	counter := repro.NewVar[uint64](s.arena)
	lock := s.arena.NewLock()
	procs := d.NumProcs() * gpn
	return parallel(d, gpn, func(n *repro.Node, id int) error {
		for k := 0; k < iters; k++ {
			if err := repro.Locked(n, lock, func() error {
				_, err := counter.Add(n, 1)
				return err
			}); err != nil {
				return err
			}
		}
		if err := s.done.Wait(n); err != nil {
			return err
		}
		if id == 0 {
			var v uint64
			if err := repro.Locked(n, lock, func() error {
				var err error
				v, err = counter.Load(n)
				return err
			}); err != nil {
				return err
			}
			want := uint64(procs * iters)
			if v != want {
				return fmt.Errorf("counter = %d, want %d (consistency violation!)", v, want)
			}
			fmt.Fprintf(out, "counter reached %d as required\n", v)
		}
		return s.fin.Wait(n)
	})
}

// runStencil is a barrier-per-step grid relaxation (the barrier-heavy
// category of §5.3): each node owns a band of a grid, reads its
// neighbors' boundary rows, and synchronizes with barriers.
func runStencil(out io.Writer, d *repro.DSM, gpn, iters int) error {
	const rowBytes = 512
	s := newDemoSchema(d)
	procs := d.NumProcs() * gpn
	step := s.arena.NewBarrier()
	// One boundary row per processor, padded a band apart like the
	// original grid layout, so neighbors share pages only at band
	// boundaries (and, oversubscribed, between co-located processors).
	rows := repro.NewBytesArray(s.arena, procs, rowBytes, 4*rowBytes)
	return parallel(d, gpn, func(n *repro.Node, id int) error {
		row := make([]byte, rowBytes)
		for k := 0; k < iters; k++ {
			// Read the neighbor band's boundary row, then rewrite ours.
			nb := (id + 1) % procs
			if err := rows.At(nb).Load(n, row); err != nil {
				return err
			}
			for i := range row {
				row[i] = byte(int(row[i]) + k + id)
			}
			if err := rows.At(id).Store(n, row); err != nil {
				return err
			}
			if err := step.Wait(n); err != nil {
				return err
			}
		}
		if err := s.done.Wait(n); err != nil {
			return err
		}
		return s.fin.Wait(n)
	})
}

// runQueue is the migratory task-queue pattern of LocusRoute/Cholesky: a
// lock-protected shared queue head with per-task data updates.
func runQueue(out io.Writer, d *repro.DSM, gpn, iters int) error {
	s := newDemoSchema(d)
	head := repro.NewVar[uint64](s.arena)
	lock := s.arena.NewLock()
	s.arena.PageAlign()
	total := d.NumProcs() * gpn * iters
	tasks := repro.NewArray[uint64](s.arena, total)
	err := parallel(d, gpn, func(n *repro.Node, id int) error {
		for {
			var task uint64
			claimed := false
			if err := repro.Locked(n, lock, func() error {
				v, err := head.Load(n)
				if err != nil {
					return err
				}
				if v >= uint64(total) {
					return nil
				}
				task, claimed = v, true
				return head.Store(n, v+1)
			}); err != nil {
				return err
			}
			if !claimed {
				break
			}
			// "Process" the task: update its slot.
			if err := tasks.At(int(task)).Store(n, task*task); err != nil {
				return err
			}
		}
		if err := s.done.Wait(n); err != nil {
			return err
		}
		if id == 0 {
			fmt.Fprintf(out, "queue drained %d tasks\n", total)
		}
		return s.fin.Wait(n)
	})
	return err
}

// parallel drives f with gpn concurrent goroutines on every node this
// process hosts (all nodes over the in-process network, this process's
// one under TCP). The id handed to f is the cluster-unique processor
// id: processor p runs on node p mod NumProcs, like the workload
// runtime's oversubscribed mapping.
func parallel(d *repro.DSM, gpn int, f func(n *repro.Node, id int) error) error {
	local := d.Local()
	nodes := d.NumProcs()
	var wg sync.WaitGroup
	errs := make([]error, len(local)*gpn)
	for i, n := range local {
		for g := 0; g < gpn; g++ {
			wg.Add(1)
			go func(slot int, n *repro.Node, id int) {
				defer wg.Done()
				errs[slot] = f(n, id)
			}(i*gpn+g, n, int(n.ID())+g*nodes)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
