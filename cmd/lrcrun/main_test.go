package main

import (
	"net"
	"strings"
	"sync"
	"testing"
)

func TestRunDemoCounter(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "counter", "-procs", "2", "-iters", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"counter reached 10", "interconnect:", "node 0:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunDemoCounterOversubscribed(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "counter", "-procs", "4", "-gpn", "2", "-iters", "5", "-mode", "SC"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"counter reached 20", "nodes=2 gpn=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunWorkloadTrafficTable: -app runs print the traffic table —
// msgs, frames, batches, bytes per critical section — and -nobatch
// collapses it back to one frame per message (the table still prints).
func TestRunWorkloadTrafficTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "mp3d", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024", "-mode", "LU"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"msgs", "frames", "batches", "wire bytes", "wireB/critsec", "runtime", "simulator"} {
		if !strings.Contains(got, want) {
			t.Errorf("traffic table missing %q:\n%s", want, got)
		}
	}

	var unbatched strings.Builder
	if err := run([]string{"-app", "mp3d", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024", "-mode", "LU", "-nobatch"}, &unbatched); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(unbatched.String(), "matches sequential reference") {
		t.Errorf("-nobatch run did not verify:\n%s", unbatched.String())
	}
}

func TestRunWorkloadOversubscribed(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "mp3d", "-procs", "4", "-gpn", "4", "-scale", "0.05",
		"-pagesize", "1024", "-mode", "EI"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"4 procs on 1 nodes", "matches sequential reference"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestGPNFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-demo", "counter", "-procs", "4", "-gpn", "3"},
		{"-app", "water", "-procs", "4", "-gpn", "3"},
		{"-demo", "counter", "-gpn", "0"},
		{"-transport", "tcp", "-peers", ":0,:0", "-self", "0", "-procs", "5", "-gpn", "2"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestRunDemoQueueLU(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "queue", "-mode", "LU", "-procs", "2", "-iters", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "queue drained 10 tasks") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunWorkloadOnRuntime(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "locusroute", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024", "-mode", "LU"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"== locusroute", "matches sequential reference",
		"runtime", "simulator", "access misses",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "DIVERGES") {
		t.Errorf("image diverged:\n%s", got)
	}
}

func TestRunWorkloadWithGC(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "mp3d", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024", "-gc", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches sequential reference") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestRunWorkloadSC runs a workload live under the SC baseline and checks
// that live interconnect totals are reported next to the simulator's.
func TestRunWorkloadSC(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "mp3d", "-mode", "SC", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"mode SC", "matches sequential reference",
		"runtime", "simulator", "ownership moves",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunDemoEagerModes smokes the demo programs under the eager engines.
func TestRunDemoEagerModes(t *testing.T) {
	for _, mode := range []string{"EI", "EU"} {
		var out strings.Builder
		if err := run([]string{"-demo", "counter", "-mode", mode, "-procs", "3", "-iters", "5"}, &out); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !strings.Contains(out.String(), "counter reached 15") {
			t.Errorf("%s output:\n%s", mode, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "XX"}, &out); err == nil {
		t.Error("unknown mode accepted")
	} else if !strings.Contains(err.Error(), "LI, LU, EI, EU, SC") {
		t.Errorf("mode error %v does not enumerate the supported set", err)
	}
	if err := run([]string{"-demo", "bogus"}, &out); err == nil {
		t.Error("unknown demo accepted")
	}
	if err := run([]string{"-app", "bogus"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-app", "water", "-demo", "counter"}, &out); err == nil {
		t.Error("-app with -demo accepted")
	}
}

// TestTransportFlagErrors mirrors the -mode validation style for the
// transport selection: every misuse fails fast, before any socket opens,
// with a message naming the fix.
func TestTransportFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown transport", []string{"-transport", "carrier-pigeon"}, "supported: simnet, tcp"},
		{"tcp without peers", []string{"-transport", "tcp"}, "requires -peers"},
		{"empty peer entry", []string{"-transport", "tcp", "-peers", "a:1,,b:2"}, "empty address at position 1"},
		{"self out of range", []string{"-transport", "tcp", "-peers", "a:1,b:2", "-self", "5"}, "-self 5 outside peer list [0,2)"},
		{"negative self", []string{"-transport", "tcp", "-peers", "a:1,b:2", "-self", "-1"}, "outside peer list"},
		{"procs conflicts with peers", []string{"-transport", "tcp", "-peers", "a:1,b:2", "-procs", "5"}, "conflicts with the 2-entry peer list"},
		{"peers without tcp", []string{"-peers", "a:1,b:2"}, "-peers requires -transport tcp"},
		{"app all over tcp", []string{"-transport", "tcp", "-peers", "a:1,b:2", "-app", "all"}, "start each -app separately"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// reservePorts grabs n ephemeral loopback ports and releases them for
// the cluster processes to re-bind (the window for another process to
// steal one is negligible in a test environment).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestTCPClusterEndToEnd runs the counter demo as a real two-process TCP
// cluster (two run() invocations, one per node, exactly as two shells
// would) and checks the node-0 process prints the verified result.
func TestTCPClusterEndToEnd(t *testing.T) {
	addrs := reservePorts(t, 2)
	peers := strings.Join(addrs, ",")
	var outs [2]strings.Builder
	var errs [2]error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{
				"-transport", "tcp", "-peers", peers, "-self", string(rune('0' + i)),
				"-demo", "counter", "-mode", "LU", "-iters", "5",
			}, &outs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v\noutput:\n%s", i, err, outs[i].String())
		}
	}
	if got := outs[0].String(); !strings.Contains(got, "counter reached 10") {
		t.Errorf("node 0 process output missing verification:\n%s", got)
	}
	for i, out := range outs {
		if !strings.Contains(out.String(), "interconnect:") {
			t.Errorf("process %d output missing traffic report:\n%s", i, out.String())
		}
	}
}

// TestTCPWorkloadEndToEnd runs a SPLASH workload as a TCP cluster inside
// one test process; the node-0 process verifies the image against the
// sequential reference, the other reports its own traffic.
func TestTCPWorkloadEndToEnd(t *testing.T) {
	addrs := reservePorts(t, 2)
	peers := strings.Join(addrs, ",")
	var outs [2]strings.Builder
	var errs [2]error
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{
				"-transport", "tcp", "-peers", peers, "-self", string(rune('0' + i)),
				"-app", "locusroute", "-scale", "0.05", "-pagesize", "1024", "-mode", "LI",
			}, &outs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v\noutput:\n%s", i, err, outs[i].String())
		}
	}
	if got := outs[0].String(); !strings.Contains(got, "matches sequential reference") {
		t.Errorf("node 0 process did not verify the image:\n%s", got)
	}
	if got := outs[1].String(); !strings.Contains(got, "this process's nodes done") {
		t.Errorf("node 1 process output:\n%s", got)
	}
}
