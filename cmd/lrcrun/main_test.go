package main

import (
	"strings"
	"testing"
)

func TestRunDemoCounter(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "counter", "-procs", "2", "-iters", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"counter reached 10", "interconnect:", "node 0:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunDemoQueueLU(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-demo", "queue", "-mode", "LU", "-procs", "2", "-iters", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "queue drained 10 tasks") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunWorkloadOnRuntime(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "locusroute", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024", "-mode", "LU"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"== locusroute", "matches sequential reference",
		"runtime", "simulator", "access misses",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "DIVERGES") {
		t.Errorf("image diverged:\n%s", got)
	}
}

func TestRunWorkloadWithGC(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "mp3d", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024", "-gc", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches sequential reference") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestRunWorkloadSC runs a workload live under the SC baseline and checks
// that live interconnect totals are reported next to the simulator's.
func TestRunWorkloadSC(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-app", "mp3d", "-mode", "SC", "-procs", "4", "-scale", "0.05",
		"-pagesize", "1024"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"mode SC", "matches sequential reference",
		"runtime", "simulator", "ownership moves",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunDemoEagerModes smokes the demo programs under the eager engines.
func TestRunDemoEagerModes(t *testing.T) {
	for _, mode := range []string{"EI", "EU"} {
		var out strings.Builder
		if err := run([]string{"-demo", "counter", "-mode", mode, "-procs", "3", "-iters", "5"}, &out); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !strings.Contains(out.String(), "counter reached 15") {
			t.Errorf("%s output:\n%s", mode, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "XX"}, &out); err == nil {
		t.Error("unknown mode accepted")
	} else if !strings.Contains(err.Error(), "LI, LU, EI, EU, SC") {
		t.Errorf("mode error %v does not enumerate the supported set", err)
	}
	if err := run([]string{"-demo", "bogus"}, &out); err == nil {
		t.Error("unknown demo accepted")
	}
	if err := run([]string{"-app", "bogus"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-app", "water", "-demo", "counter"}, &out); err == nil {
		t.Error("-app with -demo accepted")
	}
}
