package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/dsm"
	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vc"
	"repro/internal/workload"
)

// Benchmark configuration: each figure bench regenerates its paper figure
// at this scale (EXPERIMENTS.md records the series; shapes are
// scale-invariant, see TestPaperShapeClaims).
const (
	benchProcs = 16
	benchScale = 0.25
	benchSeed  = 42
)

func benchTrace(b *testing.B, app string) *trace.Trace {
	b.Helper()
	tr, err := workload.GenerateCached(app, benchProcs, benchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// benchFigure regenerates one figure: a full four-protocol page-size sweep
// over one workload, reporting the per-protocol totals at the extreme page
// sizes as custom metrics (the full series is printed by cmd/lrcsim).
func benchFigure(b *testing.B, app, metric string) {
	tr := benchTrace(b, app)
	var results []sim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		results, err = sim.Sweep(tr, sim.ProtocolNames, mem.PaperPageSizes, proto.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range sim.ProtocolNames {
		for _, ps := range []int{8192, 512} {
			series, err := sim.Series(results, p, []int{ps}, metric)
			if err != nil {
				b.Fatal(err)
			}
			v := float64(series[0])
			unit := fmt.Sprintf("%s@%d_msgs", p, ps)
			if metric == "data" {
				v /= 1024
				unit = fmt.Sprintf("%s@%d_kB", p, ps)
			}
			b.ReportMetric(v, unit)
		}
	}
}

// Figures 5 and 6: LocusRoute messages and data vs page size.
func BenchmarkFig05LocusRouteMessages(b *testing.B) { benchFigure(b, "locusroute", "messages") }
func BenchmarkFig06LocusRouteData(b *testing.B)     { benchFigure(b, "locusroute", "data") }

// Figures 7 and 8: Cholesky.
func BenchmarkFig07CholeskyMessages(b *testing.B) { benchFigure(b, "cholesky", "messages") }
func BenchmarkFig08CholeskyData(b *testing.B)     { benchFigure(b, "cholesky", "data") }

// Figures 9 and 10: MP3D.
func BenchmarkFig09MP3DMessages(b *testing.B) { benchFigure(b, "mp3d", "messages") }
func BenchmarkFig10MP3DData(b *testing.B)     { benchFigure(b, "mp3d", "data") }

// Figures 11 and 12: Water.
func BenchmarkFig11WaterMessages(b *testing.B) { benchFigure(b, "water", "messages") }
func BenchmarkFig12WaterData(b *testing.B)     { benchFigure(b, "water", "data") }

// Figures 13 and 14: Pthor.
func BenchmarkFig13PthorMessages(b *testing.B) { benchFigure(b, "pthor", "messages") }
func BenchmarkFig14PthorData(b *testing.B)     { benchFigure(b, "pthor", "data") }

// BenchmarkTable1 measures the per-operation message costs of Table 1 by
// replaying micro-traces (the exact-cost assertions live in
// internal/sim's Table 1 tests; this bench reports the measured costs).
func BenchmarkTable1(b *testing.B) {
	lockTransfer := &trace.Trace{
		NumProcs: 4, SpaceSize: 16384, NumLocks: 4, NumBarriers: 1, Name: "t1",
		Events: []trace.Event{
			{Kind: trace.Acquire, Proc: 0, Sync: 2},
			{Kind: trace.Release, Proc: 0, Sync: 2},
			{Kind: trace.Acquire, Proc: 3, Sync: 2},
			{Kind: trace.Release, Proc: 3, Sync: 2},
		},
	}
	barrier := &trace.Trace{
		NumProcs: 4, SpaceSize: 16384, NumLocks: 4, NumBarriers: 1, Name: "t1b",
		Events: []trace.Event{
			{Kind: trace.Barrier, Proc: 0, Sync: 0},
			{Kind: trace.Barrier, Proc: 1, Sync: 0},
			{Kind: trace.Barrier, Proc: 2, Sync: 0},
			{Kind: trace.Barrier, Proc: 3, Sync: 0},
		},
	}
	b.ResetTimer()
	var lockMsgs, barMsgs int64
	for i := 0; i < b.N; i++ {
		for _, p := range sim.ProtocolNames {
			st, err := sim.Run(lockTransfer, p, 1024, proto.Options{})
			if err != nil {
				b.Fatal(err)
			}
			lockMsgs = st.TotalMessages()
			st, err = sim.Run(barrier, p, 1024, proto.Options{})
			if err != nil {
				b.Fatal(err)
			}
			barMsgs = st.TotalMessages()
		}
	}
	b.ReportMetric(float64(lockMsgs), "lock_msgs")
	b.ReportMetric(float64(barMsgs), "barrier_msgs")
}

// --- ablation benches: quantify the design choices of §4 ---

func benchAblation(b *testing.B, opts proto.Options) {
	tr := benchTrace(b, "locusroute")
	var base, ablated *proto.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		base, err = sim.Run(tr, "LI", 2048, proto.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ablated, err = sim.Run(tr, "LI", 2048, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(base.TotalMessages()), "base_msgs")
	b.ReportMetric(float64(ablated.TotalMessages()), "ablated_msgs")
	b.ReportMetric(float64(base.TotalBytes())/1024, "base_kB")
	b.ReportMetric(float64(ablated.TotalBytes())/1024, "ablated_kB")
}

// BenchmarkAblationNoPiggyback quantifies carrying write notices on lock
// grants (§4.2, Figure 4) vs separate notice messages.
func BenchmarkAblationNoPiggyback(b *testing.B) {
	benchAblation(b, proto.Options{NoPiggyback: true})
}

// BenchmarkAblationNoDiffs quantifies diffs (§4.3) vs whole-page shipping.
func BenchmarkAblationNoDiffs(b *testing.B) {
	benchAblation(b, proto.Options{NoDiffs: true})
}

// BenchmarkAblationExclusiveWriter quantifies the multiple-writer protocol
// (§4.3.1) vs DASH-style exclusive writers under false sharing.
func BenchmarkAblationExclusiveWriter(b *testing.B) {
	benchAblation(b, proto.Options{ExclusiveWriter: true})
}

// BenchmarkAblationIvy compares the SC single-writer baseline (§6 related
// work) against LI on a migratory workload.
func BenchmarkAblationIvy(b *testing.B) {
	tr := benchTrace(b, "locusroute")
	var li, sc *proto.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		li, err = sim.Run(tr, "LI", 2048, proto.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sc, err = sim.Run(tr, "SC", 2048, proto.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(li.TotalMessages()), "LI_msgs")
	b.ReportMetric(float64(sc.TotalMessages()), "SC_msgs")
}

// --- live runtime benches ---

// BenchmarkRuntimeMigratoryCounter drives the Figure 3/4 pattern through
// the live DSM under every protocol engine, reporting interconnect
// traffic per critical section — the live counterpart of the paper's
// migratory-data comparison.
func BenchmarkRuntimeMigratoryCounter(b *testing.B) {
	for _, m := range repro.DSMModes {
		mode := repro.DSMConfig{Procs: 4, SpaceSize: 64 * 1024, PageSize: 1024, Mode: m}
		b.Run(mode.Mode.String(), func(b *testing.B) {
			d, err := repro.NewDSM(mode)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < mode.Procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					n := d.Node(i)
					for k := 0; k < b.N; k++ {
						if err := n.Acquire(0); err != nil {
							b.Error(err)
							return
						}
						v, err := n.ReadUint64(0)
						if err != nil {
							b.Error(err)
							return
						}
						if err := n.WriteUint64(0, v+1); err != nil {
							b.Error(err)
							return
						}
						if err := n.Release(0); err != nil {
							b.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			b.StopTimer()
			st := d.NetStats()
			crit := int64(mode.Procs) * int64(b.N)
			b.ReportMetric(float64(st.Messages)/float64(crit), "msgs/critsec")
			b.ReportMetric(float64(st.Bytes)/float64(crit), "B/critsec")
		})
	}
}

// benchRuntimeWorkload runs one SPLASH workload end to end on the live DSM
// runtime per iteration — the full life of an execution: node startup,
// concurrent program body, closing barrier, image read-out — under every
// protocol engine and node shape (gpn=1: one goroutine per node; gpn=2:
// two logical processors multiplexed onto each of two nodes; gpn=4: the
// whole program on one oversubscribed node), reporting interconnect
// traffic per run.
func benchRuntimeWorkload(b *testing.B, app string) {
	for _, mode := range dsm.Modes {
		for _, gpn := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/gpn=%d", mode, gpn), func(b *testing.B) {
				prog, err := workload.New(app, 4, 0.05, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				var res *workload.RuntimeResult
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err = workload.RunOnRuntime(prog, workload.RuntimeConfig{
						PageSize: 1024, Mode: mode, GoroutinesPerNode: gpn,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(res.Net.Messages), "msgs/run")
				b.ReportMetric(float64(res.Net.Bytes)/1024, "kB/run")
			})
		}
	}
}

// BenchmarkRuntimeCounter is the concurrency headline bench: the
// migratory-counter pattern at a fixed logical parallelism of eight
// processors, across node shapes — gpn=1 is eight single-goroutine
// nodes, gpn=4 two oversubscribed nodes of four goroutines, gpn=8 one
// node. Each processor performs b.N lock-protected increments, so ns/op
// is directly comparable across shapes; oversubscribed shapes resolve
// most lock transfers as node-local handoffs and must show the
// throughput gain (CI records gpn=1 vs gpn=4 in BENCH_runtime.json).
func BenchmarkRuntimeCounter(b *testing.B) {
	const procs = 8
	for _, gpn := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("gpn=%d", gpn), func(b *testing.B) {
			d, err := repro.NewDSM(repro.DSMConfig{
				Procs:             procs / gpn,
				SpaceSize:         64 * 1024,
				PageSize:          1024,
				Mode:              repro.LazyInvalidate,
				GoroutinesPerNode: gpn,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			a := repro.NewArena(d.Layout())
			counter := repro.NewVar[uint64](a)
			lock := a.NewLock()
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, n := range d.Local() {
				for g := 0; g < gpn; g++ {
					wg.Add(1)
					go func(n *repro.Node) {
						defer wg.Done()
						for k := 0; k < b.N; k++ {
							if err := repro.Locked(n, lock, func() error {
								_, err := counter.Add(n, 1)
								return err
							}); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
			}
			wg.Wait()
			b.StopTimer()
			st := d.NetStats()
			crit := int64(procs) * int64(b.N)
			b.ReportMetric(float64(st.Messages)/float64(crit), "msgs/critsec")
		})
	}
}

// BenchmarkRuntimeCounterObs is BenchmarkRuntimeCounter's gpn=1 shape
// with the observability surface toggled: "off" is the baseline, "on"
// registers every live metric series and attaches an enabled tracer. The
// hooks are scrape-time callbacks plus nil-checked emit sites, so the
// on/off ns/op gap is the hook overhead CI bounds (< 3%, recorded in
// BENCH_obs.json).
func BenchmarkRuntimeCounterObs(b *testing.B) {
	const procs = 8
	for _, obsOn := range []bool{false, true} {
		name := "metrics=off"
		if obsOn {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := repro.DSMConfig{
				Procs:     procs,
				SpaceSize: 64 * 1024,
				PageSize:  1024,
				Mode:      repro.LazyInvalidate,
			}
			if obsOn {
				cfg.Metrics = repro.NewMetricsRegistry()
				cfg.Tracer = repro.NewTracer(1 << 14)
			}
			d, err := repro.NewDSM(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			a := repro.NewArena(d.Layout())
			counter := repro.NewVar[uint64](a)
			lock := a.NewLock()
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, n := range d.Local() {
				wg.Add(1)
				go func(n *repro.Node) {
					defer wg.Done()
					for k := 0; k < b.N; k++ {
						if err := repro.Locked(n, lock, func() error {
							_, err := counter.Add(n, 1)
							return err
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
		})
	}
}

func BenchmarkRuntimeLocusRoute(b *testing.B) { benchRuntimeWorkload(b, "locusroute") }
func BenchmarkRuntimeCholesky(b *testing.B)   { benchRuntimeWorkload(b, "cholesky") }
func BenchmarkRuntimeMP3D(b *testing.B)       { benchRuntimeWorkload(b, "mp3d") }
func BenchmarkRuntimeWater(b *testing.B)      { benchRuntimeWorkload(b, "water") }
func BenchmarkRuntimePthor(b *testing.B)      { benchRuntimeWorkload(b, "pthor") }

// BenchmarkRuntimeBarrier measures a live all-write-then-barrier round.
func BenchmarkRuntimeBarrier(b *testing.B) {
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs: 4, SpaceSize: 64 * 1024, PageSize: 1024, Mode: repro.LazyInvalidate,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := d.Node(i)
			for k := 0; k < b.N; k++ {
				if err := n.WriteUint64(repro.Addr(i*2048), uint64(k)); err != nil {
					b.Error(err)
					return
				}
				if err := n.Barrier(0); err != nil {
					b.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// --- interconnect benches ---
// (BenchmarkTransport{Simnet,TCP}, the raw ping-pong comparison, lives
// in internal/transport — only that layer and dsm touch transport
// implementations directly.)

// BenchmarkRuntimeCounterTCP is BenchmarkRuntimeMigratoryCounter's hot
// pattern on a real TCP cluster: end-to-end protocol cost over sockets.
func BenchmarkRuntimeCounterTCP(b *testing.B) {
	for _, m := range []repro.DSMMode{repro.LazyInvalidate, repro.SeqConsistent} {
		b.Run(m.String(), func(b *testing.B) {
			const procs = 4
			trs, err := repro.NewLoopbackTCPCluster(procs)
			if err != nil {
				b.Fatal(err)
			}
			systems := make([]*repro.DSM, procs)
			for i, tr := range trs {
				systems[i], err = repro.NewDSM(repro.DSMConfig{
					Procs: procs, SpaceSize: 64 * 1024, PageSize: 1024, Mode: m, Transport: tr,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer systems[i].Close()
			}
			a := repro.NewArena(systems[0].Layout())
			counter := repro.NewVar[uint64](a)
			lock := a.NewLock()
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					n := systems[i].Node(i)
					for k := 0; k < b.N; k++ {
						if err := repro.Locked(n, lock, func() error {
							_, err := counter.Add(n, 1)
							return err
						}); err != nil {
							b.Error(err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

// BenchmarkRuntimeBatchedBarrierTCP is the outbox acceptance bench: a
// barrier-heavy write-share pattern — every node rewrites its four
// pages each round, takes one lock-protected critical section, and
// synchronizes at a barrier — on a real loopback TCP cluster, with
// frame batching on and off. Under LU every barrier episode makes each
// node revalidate the other nodes' twelve pages: the per-(page,creator)
// diff requests are identical either way (msgs/critsec must not move),
// but with batching on each creator's four requests leave in one frame,
// so frames/critsec must drop — CI records the series in
// BENCH_wire.json, where batch=true LU must show at least 30% fewer
// frames per critical section than batch=false.
func BenchmarkRuntimeBatchedBarrierTCP(b *testing.B) {
	const (
		procs        = 4
		pagesPerNode = 4
		pageSize     = 1024
		regionPage   = 16 // write-share region: pages 16..31, page p homed at p%procs
	)
	for _, m := range repro.DSMModes {
		for _, noBatch := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/batch=%t", m, !noBatch), func(b *testing.B) {
				trs, err := repro.NewLoopbackTCPCluster(procs)
				if err != nil {
					b.Fatal(err)
				}
				systems := make([]*repro.DSM, procs)
				for i, tr := range trs {
					systems[i], err = repro.NewDSM(repro.DSMConfig{
						Procs: procs, SpaceSize: 64 * 1024, PageSize: pageSize,
						Mode: m, NoBatch: noBatch, Transport: tr,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer systems[i].Close()
				}
				a := repro.NewArena(systems[0].Layout())
				counter := repro.NewVar[uint64](a)
				lock := a.NewLock()
				pageAddr := func(owner, j int) repro.Addr {
					return repro.Addr((regionPage + j*procs + owner) * pageSize)
				}
				var wg sync.WaitGroup
				run := func(body func(i int, n *repro.Node) error) {
					for i := 0; i < procs; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							if err := body(i, systems[i].Node(i)); err != nil {
								b.Error(err)
							}
						}(i)
					}
					wg.Wait()
				}
				// Warm-up round: every node writes its pages, then caches
				// every other node's, so the steady state measured below is
				// revalidation traffic, not cold misses.
				run(func(i int, n *repro.Node) error {
					for j := 0; j < pagesPerNode; j++ {
						if err := n.WriteUint64(pageAddr(i, j), 1); err != nil {
							return err
						}
					}
					if err := n.Barrier(0); err != nil {
						return err
					}
					for owner := 0; owner < procs; owner++ {
						for j := 0; j < pagesPerNode; j++ {
							if _, err := n.ReadUint64(pageAddr(owner, j)); err != nil {
								return err
							}
						}
					}
					return n.Barrier(0)
				})
				b.ResetTimer()
				run(func(i int, n *repro.Node) error {
					for k := 0; k < b.N; k++ {
						for j := 0; j < pagesPerNode; j++ {
							if err := n.WriteUint64(pageAddr(i, j), uint64(k)+2); err != nil {
								return err
							}
						}
						if err := repro.Locked(n, lock, func() error {
							_, err := counter.Add(n, 1)
							return err
						}); err != nil {
							return err
						}
						if err := n.Barrier(0); err != nil {
							return err
						}
					}
					return nil
				})
				b.StopTimer()
				var st repro.TransportStats
				for _, sys := range systems {
					st.Add(sys.NetStats())
				}
				crit := float64(procs) * float64(b.N)
				b.ReportMetric(float64(st.Messages)/crit, "msgs/critsec")
				b.ReportMetric(float64(st.Frames)/crit, "frames/critsec")
				b.ReportMetric(float64(st.Bytes)/crit, "B/critsec")
			})
		}
	}
}

// --- substrate micro-benches ---

func BenchmarkDiffCreate(b *testing.B) {
	data := make([]byte, 4096)
	tw := page.NewTwin(data)
	for i := 0; i < 4096; i += 64 {
		data[i] = 0xff
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := page.MakeDiff(tw, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiffApply(b *testing.B) {
	data := make([]byte, 4096)
	tw := page.NewTwin(data)
	for i := 0; i < 4096; i += 64 {
		data[i] = 0xff
	}
	d, err := page.MakeDiff(tw, data)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Apply(dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorClockMax(b *testing.B) {
	a := vc.New(16)
	c := vc.New(16)
	for i := range c {
		c[i] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Max(c)
	}
}

func BenchmarkRangeSetAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s page.RangeSet
		for k := 0; k < 32; k++ {
			s.Add((k*37)%4000, 16)
		}
	}
}

func BenchmarkOutstandingLookup(b *testing.B) {
	log := core.NewLog(16)
	clock := vc.New(16)
	for p := 0; p < 16; p++ {
		for k := int32(0); k < 64; k++ {
			clock[p] = k
			var mods page.RangeSet
			mods.Add(int(k)*8, 8)
			log.Append(&core.Interval{
				ID:    core.IntervalID{Proc: mem.ProcID(p), Index: k},
				VC:    clock.Clone(),
				Pages: []mem.PageID{mem.PageID(k % 8)},
				Mods:  []*page.RangeSet{&mods},
			})
		}
	}
	applied := vc.New(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		log.Outstanding(3, applied, clock, 0)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := workload.New("water", 8, 0.1, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.Generate(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayLI(b *testing.B) {
	tr := benchTrace(b, "water")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, "LI", 2048, proto.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(tr.Events)))
}
