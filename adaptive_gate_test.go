package repro_test

import (
	"math"
	"testing"

	"repro"
)

// Adaptive routing gate and benchmark: the sharing-pattern classifier
// earns its keep when, on a heterogeneous SPLASH workload — private
// per-processor regions next to false-shared and migratory ones — it
// routes each page to the protocol its pattern favors and ends up moving
// no more traffic per critical section than the best uniform protocol,
// without being told which protocol that is.

const (
	adaptProcs    = 4
	adaptScale    = 0.1
	adaptSeed     = 42
	adaptPageSize = 1024
)

// adaptiveWorkloads are the SPLASH workloads the gate sweeps; the gate
// requires the classifier to win (or tie) the single-mode field on at
// least one of them. pthor is the reliably heterogeneous one — private
// per-element state beside migratory event queues — where mixed routing
// clearly beats every uniform protocol; mp3d and water are kept in the
// sweep as honest context (mp3d's barrier-flush shape favors uniform
// EI, which the lazy-family classifier does not target).
var adaptiveWorkloads = []string{"pthor", "water", "mp3d"}

// adaptiveRC is the classifier configuration under test: start uniform
// LU (the strongest all-round protocol in the paper's evaluation),
// reclassify every second barrier.
func adaptiveRC() repro.RuntimeConfig {
	return repro.RuntimeConfig{
		PageSize: adaptPageSize, Mode: repro.LazyUpdate, AdaptEveryBarriers: 2,
	}
}

// msgsPerCritsec runs one workload configuration on the live runtime and
// returns logical interconnect messages per critical section (the
// trace's acquire count), verifying the image along the way.
func msgsPerCritsec(t testing.TB, name string, rc repro.RuntimeConfig) float64 {
	ref, err := repro.ExecuteWorkload(name, adaptProcs, adaptScale, adaptSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunWorkloadOnRuntime(name, adaptProcs, adaptScale, adaptSeed, rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Image) != string(ref.Image) {
		t.Fatalf("%s: runtime image diverges from reference", name)
	}
	crit := ref.Trace.Count().Acquires
	if crit == 0 {
		t.Fatalf("%s: trace has no critical sections", name)
	}
	return float64(res.Net.Messages) / float64(crit)
}

// TestAdaptiveTrafficGate: on at least one SPLASH workload, adaptive
// routing must move no more messages per critical section than the best
// protocol run uniformly. (Per-workload results are logged; the matching
// benchmark records them in BENCH_adaptive.json.)
func TestAdaptiveTrafficGate(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive gate sweeps every protocol over several workloads; skipped in short mode")
	}
	won := false
	for _, name := range adaptiveWorkloads {
		best, bestMode := math.Inf(1), ""
		for _, m := range repro.DSMModes {
			v := msgsPerCritsec(t, name, repro.RuntimeConfig{PageSize: adaptPageSize, Mode: m})
			t.Logf("%s/%s: %.1f msgs/critsec", name, m, v)
			if v < best {
				best, bestMode = v, m.String()
			}
		}
		ad := msgsPerCritsec(t, name, adaptiveRC())
		t.Logf("%s/adaptive: %.1f msgs/critsec (best single mode: %s at %.1f)", name, ad, bestMode, best)
		if ad <= best {
			won = true
		}
	}
	if !won {
		t.Error("adaptive routing beat the best single protocol on no workload")
	}
}

// BenchmarkAdaptiveWorkloads emits the msgs/critsec series behind the
// gate — every single-protocol run plus adaptive, per workload — as
// benchmark metrics for the BENCH_adaptive.json artifact.
func BenchmarkAdaptiveWorkloads(b *testing.B) {
	for _, name := range adaptiveWorkloads {
		for _, m := range repro.DSMModes {
			b.Run(name+"/"+m.String(), func(b *testing.B) {
				var v float64
				for i := 0; i < b.N; i++ {
					v = msgsPerCritsec(b, name, repro.RuntimeConfig{PageSize: adaptPageSize, Mode: m})
				}
				b.ReportMetric(v, "msgs/critsec")
			})
		}
		b.Run(name+"/adaptive", func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = msgsPerCritsec(b, name, adaptiveRC())
			}
			b.ReportMetric(v, "msgs/critsec")
		})
	}
}
