// Quickstart: the two faces of the library in ~60 lines.
//
//  1. Simulate the paper's evaluation for one workload (Figure 5's
//     LocusRoute messages series).
//  2. Run a real program on the live DSM through the typed
//     shared-memory façade: allocate named variables and locks from an
//     Arena instead of computing byte offsets, then drive them from
//     concurrent nodes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
)

func main() {
	// --- 1. Trace-driven simulation (the paper's methodology, §5.1) ---
	tr, err := repro.GenerateTrace("locusroute", repro.PaperProcs, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	results, err := repro.Sweep(tr, repro.Protocols, repro.PaperPageSizes, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LocusRoute messages by page size (Figure 5):")
	fmt.Printf("%-8s %10s %10s %10s %10s\n", "page", "LI", "LU", "EI", "EU")
	for _, ps := range repro.PaperPageSizes {
		fmt.Printf("%-8d", ps)
		for _, p := range repro.Protocols {
			series, err := repro.Series(results, p, []int{ps}, "messages")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10d", series[0])
		}
		fmt.Println()
	}

	// --- 2. The live DSM runtime, through the typed façade ---
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs:     4,
		SpaceSize: 1 << 20,
		PageSize:  4096,
		Mode:      repro.LazyUpdate,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// The shared schema: one counter behind one lock. Handles are plain
	// layout descriptions — share them across every node (and, with a
	// TCP transport, across every process building the same schema).
	arena := repro.NewArena(d.Layout())
	counter := repro.NewVar[uint64](arena)
	lock := arena.NewLock()

	const iters = 50
	var wg sync.WaitGroup
	for i := 0; i < d.NumProcs(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := d.Node(i)
			for k := 0; k < iters; k++ {
				check(repro.Locked(n, lock, func() error {
					_, err := counter.Add(n, 1)
					return err
				}))
			}
		}(i)
	}
	wg.Wait()

	n := d.Node(0)
	var v uint64
	check(repro.Locked(n, lock, func() error {
		var err error
		v, err = counter.Load(n)
		return err
	}))
	st := d.NetStats()
	fmt.Printf("\nlive DSM: 4 nodes × %d lock-protected increments -> counter = %d\n", iters, v)
	fmt.Printf("interconnect: %d messages, %d bytes (%.1f msgs per critical section)\n",
		st.Messages, st.Bytes, float64(st.Messages)/float64(4*iters))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
