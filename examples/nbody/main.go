// Nbody is a domain-specific example in the mold of the paper's Water
// (§5.2.4): a barrier-stepped molecular dynamics loop on the live DSM.
// Each node owns a band of molecules; every step it reads neighbor
// positions within a cutoff window, accumulates force contributions into
// neighbors' records under per-molecule locks, then integrates its own
// band between barriers. Garbage collection runs every other barrier,
// demonstrating bounded diff retention over a long run.
//
// Run with: go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
)

const (
	procs     = 8
	molecules = 128
	steps     = 10
	window    = 3
	recBytes  = 64 // per-molecule record: position + force + padding

	posBase   = repro.Addr(0)
	forceBase = repro.Addr(molecules * recBytes)
	sumAddr   = repro.Addr(2 * molecules * recBytes)

	sumLock  = repro.LockID(0)
	molLock0 = repro.LockID(1)
	molLocks = 16
)

func posAddr(i int) repro.Addr   { return posBase + repro.Addr(i*recBytes) }
func forceAddr(i int) repro.Addr { return forceBase + repro.Addr(i*recBytes) }
func molLock(i int) repro.LockID { return molLock0 + repro.LockID(i%molLocks) }

func main() {
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs:           procs,
		SpaceSize:       1 << 20,
		PageSize:        1024,
		Mode:            repro.LazyInvalidate,
		GCEveryBarriers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	per := molecules / procs
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := d.Node(p)
			lo, hi := p*per, (p+1)*per

			// Initialize the owned band, then the fork barrier.
			for i := lo; i < hi; i++ {
				check(n.WriteUint64(posAddr(i), uint64(i)))
				check(n.WriteUint64(forceAddr(i), 0))
			}
			check(n.Barrier(0))

			for step := 0; step < steps; step++ {
				// Force phase: read neighbors in the cutoff window and
				// push contributions into their force sums under locks.
				for i := lo; i < hi; i++ {
					self, err := n.ReadUint64(posAddr(i))
					check(err)
					for dIdx := 1; dIdx <= window; dIdx++ {
						j := (i + dIdx) % molecules
						pj, err := n.ReadUint64(posAddr(j))
						check(err)
						contrib := (self + pj) % 97
						check(n.Acquire(molLock(j)))
						f, err := n.ReadUint64(forceAddr(j))
						check(err)
						check(n.WriteUint64(forceAddr(j), f+contrib))
						check(n.Release(molLock(j)))
					}
				}
				check(n.Barrier(0))
				// Update phase: integrate owned molecules; fold into the
				// global sum.
				var local uint64
				for i := lo; i < hi; i++ {
					f, err := n.ReadUint64(forceAddr(i))
					check(err)
					pv, err := n.ReadUint64(posAddr(i))
					check(err)
					check(n.WriteUint64(posAddr(i), pv+f%7))
					check(n.WriteUint64(forceAddr(i), 0))
					local += f
				}
				check(n.Acquire(sumLock))
				s, err := n.ReadUint64(sumAddr)
				check(err)
				check(n.WriteUint64(sumAddr, s+local))
				check(n.Release(sumLock))
				check(n.Barrier(0))
			}
		}(p)
	}
	wg.Wait()

	n := d.Node(0)
	check(n.Acquire(sumLock))
	sum, err := n.ReadUint64(sumAddr)
	check(err)
	check(n.Release(sumLock))
	st := d.NetStats()
	var gcRuns, discarded int64
	for i := 0; i < procs; i++ {
		ns := d.Node(i).Stats()
		gcRuns += ns.GCRuns
		discarded += ns.DiffsDiscarded
	}
	fmt.Printf("nbody: %d molecules, %d steps on %d nodes\n", molecules, steps, procs)
	fmt.Printf("global potential sum: %d\n", sum)
	fmt.Printf("interconnect: %d messages, %d KB, estimated wire time %v\n",
		st.Messages, st.Bytes/1024, d.EstimateTime())
	fmt.Printf("gc: %d runs, %d diffs discarded\n", gcRuns, discarded)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
