// Nbody is a domain-specific example in the mold of the paper's Water
// (§5.2.4): a barrier-stepped molecular dynamics loop on the live DSM.
// Each node owns a band of molecules; every step it reads neighbor
// positions within a cutoff window, accumulates force contributions into
// neighbors' records under per-molecule locks, then integrates its own
// band between barriers. Garbage collection runs every other barrier,
// demonstrating bounded diff retention over a long run.
//
// Molecule state lives in strided typed arrays from the façade's Arena —
// one 64-byte record per molecule, like Water's padded molecule structs —
// instead of hand-computed record offsets.
//
// Run with: go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
)

const (
	procs     = 8
	molecules = 128
	steps     = 10
	window    = 3
	recBytes  = 64 // per-molecule record stride: value + padding
	molLocks  = 16
)

// schema is the simulation's shared layout: positions and forces as
// padded per-molecule records, a global potential sum, and the lock
// namespace (sum lock first, then the molecule-lock stripes).
type schema struct {
	pos, force repro.Array[uint64]
	sum        repro.Var[uint64]
	sumLock    repro.Lock
	molLock    []repro.Lock
	step       repro.Barrier
}

func newSchema(d *repro.DSM) *schema {
	a := repro.NewArena(d.Layout())
	s := &schema{
		pos:     repro.NewStridedArray[uint64](a, molecules, recBytes),
		force:   repro.NewStridedArray[uint64](a, molecules, recBytes),
		sum:     repro.NewVar[uint64](a),
		sumLock: a.NewLock(),
		step:    a.NewBarrier(),
	}
	for i := 0; i < molLocks; i++ {
		s.molLock = append(s.molLock, a.NewLock())
	}
	return s
}

func (s *schema) lockOf(mol int) repro.Lock { return s.molLock[mol%molLocks] }

func main() {
	d, err := repro.NewDSM(repro.DSMConfig{
		Procs:           procs,
		SpaceSize:       1 << 20,
		PageSize:        1024,
		Mode:            repro.LazyInvalidate,
		GCEveryBarriers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	s := newSchema(d)

	per := molecules / procs
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := d.Node(p)
			lo, hi := p*per, (p+1)*per

			// Initialize the owned band, then the fork barrier.
			for i := lo; i < hi; i++ {
				check(s.pos.At(i).Store(n, uint64(i)))
				check(s.force.At(i).Store(n, 0))
			}
			check(s.step.Wait(n))

			for step := 0; step < steps; step++ {
				// Force phase: read neighbors in the cutoff window and
				// push contributions into their force sums under locks.
				for i := lo; i < hi; i++ {
					self, err := s.pos.At(i).Load(n)
					check(err)
					for dIdx := 1; dIdx <= window; dIdx++ {
						j := (i + dIdx) % molecules
						pj, err := s.pos.At(j).Load(n)
						check(err)
						contrib := (self + pj) % 97
						check(repro.Locked(n, s.lockOf(j), func() error {
							_, err := s.force.At(j).Add(n, contrib)
							return err
						}))
					}
				}
				check(s.step.Wait(n))
				// Update phase: integrate owned molecules; fold into the
				// global sum.
				var local uint64
				for i := lo; i < hi; i++ {
					f, err := s.force.At(i).Load(n)
					check(err)
					if _, err := s.pos.At(i).Add(n, f%7); err != nil {
						check(err)
					}
					check(s.force.At(i).Store(n, 0))
					local += f
				}
				check(repro.Locked(n, s.sumLock, func() error {
					_, err := s.sum.Add(n, local)
					return err
				}))
				check(s.step.Wait(n))
			}
		}(p)
	}
	wg.Wait()

	n := d.Node(0)
	var sum uint64
	check(repro.Locked(n, s.sumLock, func() error {
		var err error
		sum, err = s.sum.Load(n)
		return err
	}))
	st := d.NetStats()
	var gcRuns, discarded int64
	for i := 0; i < procs; i++ {
		ns := d.Node(i).Stats()
		gcRuns += ns.GCRuns
		discarded += ns.DiffsDiscarded
	}
	fmt.Printf("nbody: %d molecules, %d steps on %d nodes\n", molecules, steps, procs)
	fmt.Printf("global potential sum: %d\n", sum)
	fmt.Printf("interconnect: %d messages, %d KB, estimated wire time %v\n",
		st.Messages, st.Bytes/1024, d.EstimateTime())
	fmt.Printf("gc: %d runs, %d diffs discarded\n", gcRuns, discarded)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
