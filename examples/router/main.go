// Router is a domain-specific example in the mold of the paper's
// LocusRoute (§5.2.1): a parallel VLSI wire router on the live DSM. A
// lock-protected central task queue hands out wires; routing a wire reads
// three candidate rows of a shared cost grid and increments the cells of
// the cheapest row under a row lock. The program runs under both LI and LU
// and prints the message/data comparison — migratory, lock-heavy sharing
// is exactly where the paper says lazy protocols shine.
//
// The shared state is declared through the typed façade: a Var for the
// queue head, an Array for the cost grid, Lock handles for the queue and
// the row-lock stripes — no hand-computed byte offsets.
//
// Run with: go run ./examples/router
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro"
)

const (
	procs    = 8
	wires    = 160
	gridRows = 32
	gridCols = 256
	spanLen  = 16
	rowLocks = 7
)

// schema is the router's shared-state layout; every node sees the same
// handles.
type schema struct {
	head  repro.Var[uint64]
	grid  repro.Array[uint64]
	queue repro.Lock
	rows  []repro.Lock
}

func newSchema(d *repro.DSM) *schema {
	a := repro.NewArena(d.Layout())
	s := &schema{
		head:  repro.NewVar[uint64](a),
		queue: a.NewLock(),
	}
	for i := 0; i < rowLocks; i++ {
		s.rows = append(s.rows, a.NewLock())
	}
	a.PageAlign() // keep the hot queue head off the grid's pages
	s.grid = repro.NewArray[uint64](a, gridRows*gridCols)
	return s
}

func (s *schema) cell(row, col int) repro.Var[uint64] {
	return s.grid.At(row*gridCols + col)
}

func main() {
	for _, mode := range []repro.DSMMode{repro.LazyInvalidate, repro.LazyUpdate} {
		msgs, bytes, routed := run(repro.DSMConfig{
			Procs: procs, SpaceSize: 1 << 20, PageSize: 2048, Mode: mode,
		})
		fmt.Printf("%s: routed %d wires, %d messages, %d KB on the interconnect\n",
			mode, routed, msgs, bytes/1024)
	}
}

func run(cfg repro.DSMConfig) (msgs, bytes int64, routed uint64) {
	d, err := repro.NewDSM(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	s := newSchema(d)

	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := d.Node(i)
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for {
				// Pop a wire from the central queue.
				claimed := false
				check(repro.Locked(n, s.queue, func() error {
					v, err := s.head.Load(n)
					if err != nil || v >= wires {
						return err
					}
					claimed = true
					return s.head.Store(n, v+1)
				}))
				if !claimed {
					return
				}

				// Evaluate three candidate rows over a random span.
				row := 1 + rng.Intn(gridRows-2)
				col := rng.Intn(gridCols - spanLen)
				best, bestCost := row, ^uint64(0)
				for dr := -1; dr <= 1; dr++ {
					var cost uint64
					for k := 0; k < spanLen; k++ {
						v, err := s.cell(row+dr, col+k).Load(n)
						check(err)
						cost += v
					}
					if cost < bestCost {
						bestCost, best = cost, row+dr
					}
				}
				// Route through the cheapest row: lock-arbitrated
				// increments of its cost cells.
				check(repro.Locked(n, s.rows[best%rowLocks], func() error {
					for k := 0; k < spanLen; k++ {
						if _, err := s.cell(best, col+k).Add(n, 1); err != nil {
							return err
						}
					}
					return nil
				}))
			}
		}(i)
	}
	wg.Wait()

	// Verify: total cost mass equals wires x span cells. Acquiring every
	// lock once synchronizes with each router's final release.
	n := d.Node(0)
	check(repro.Locked(n, s.queue, func() error {
		var err error
		routed, err = s.head.Load(n)
		return err
	}))
	for _, l := range s.rows {
		check(repro.Locked(n, l, func() error { return nil }))
	}
	var total uint64
	for i := 0; i < s.grid.Len(); i++ {
		v, err := s.grid.At(i).Load(n)
		check(err)
		total += v
	}
	if total != wires*spanLen {
		log.Fatalf("%s: cost mass %d, want %d — consistency violation",
			cfg.Mode, total, wires*spanLen)
	}
	st := d.NetStats()
	return st.Messages, st.Bytes, routed
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
