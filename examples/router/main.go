// Router is a domain-specific example in the mold of the paper's
// LocusRoute (§5.2.1): a parallel VLSI wire router on the live DSM. A
// lock-protected central task queue hands out wires; routing a wire reads
// three candidate rows of a shared cost grid and increments the cells of
// the cheapest row under a row lock. The program runs under both LI and LU
// and prints the message/data comparison — migratory, lock-heavy sharing
// is exactly where the paper says lazy protocols shine.
//
// Run with: go run ./examples/router
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro"
)

const (
	procs    = 8
	wires    = 160
	gridRows = 32
	gridCols = 256
	spanLen  = 16
	cellSize = 8

	queueLock = repro.LockID(0)
	rowLock0  = repro.LockID(1)

	headAddr = repro.Addr(0)
	gridBase = repro.Addr(4096)
)

func cellAddr(row, col int) repro.Addr {
	return gridBase + repro.Addr((row*gridCols+col)*cellSize)
}

func main() {
	for _, m := range []struct{ mode repro.DSMConfig }{
		{repro.DSMConfig{Procs: procs, SpaceSize: 1 << 20, PageSize: 2048, Mode: repro.LazyInvalidate}},
		{repro.DSMConfig{Procs: procs, SpaceSize: 1 << 20, PageSize: 2048, Mode: repro.LazyUpdate}},
	} {
		msgs, bytes, routed := run(m.mode)
		fmt.Printf("%s: routed %d wires, %d messages, %d KB on the interconnect\n",
			m.mode.Mode, routed, msgs, bytes/1024)
	}
}

func run(cfg repro.DSMConfig) (msgs, bytes int64, routed uint64) {
	d, err := repro.NewDSM(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := d.Node(i)
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for {
				// Pop a wire from the central queue.
				check(n.Acquire(queueLock))
				head, err := n.ReadUint64(headAddr)
				check(err)
				if head >= wires {
					check(n.Release(queueLock))
					return
				}
				check(n.WriteUint64(headAddr, head+1))
				check(n.Release(queueLock))

				// Evaluate three candidate rows over a random span.
				row := 1 + rng.Intn(gridRows-2)
				col := rng.Intn(gridCols - spanLen)
				best, bestCost := row, ^uint64(0)
				for dr := -1; dr <= 1; dr++ {
					var cost uint64
					for k := 0; k < spanLen; k++ {
						v, err := n.ReadUint64(cellAddr(row+dr, col+k))
						check(err)
						cost += v
					}
					if cost < bestCost {
						bestCost, best = cost, row+dr
					}
				}
				// Route through the cheapest row: lock-arbitrated
				// increments of its cost cells.
				check(n.Acquire(rowLock0 + repro.LockID(best%7)))
				for k := 0; k < spanLen; k++ {
					a := cellAddr(best, col+k)
					v, err := n.ReadUint64(a)
					check(err)
					check(n.WriteUint64(a, v+1))
				}
				check(n.Release(rowLock0 + repro.LockID(best%7)))
			}
		}(i)
	}
	wg.Wait()

	// Verify: total cost mass equals wires x span cells. Acquiring every
	// lock once synchronizes with each router's final release.
	n := d.Node(0)
	check(n.Acquire(queueLock))
	routed, err = n.ReadUint64(headAddr)
	check(err)
	check(n.Release(queueLock))
	for l := repro.LockID(0); l < 7; l++ {
		check(n.Acquire(rowLock0 + l))
		check(n.Release(rowLock0 + l))
	}
	var total uint64
	for r := 0; r < gridRows; r++ {
		for c := 0; c < gridCols; c++ {
			v, err := n.ReadUint64(cellAddr(r, c))
			check(err)
			total += v
		}
	}
	if total != wires*spanLen {
		log.Fatalf("%s: cost mass %d, want %d — consistency violation",
			cfg.Mode, total, wires*spanLen)
	}
	st := d.NetStats()
	return st.Messages, st.Bytes, routed
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
