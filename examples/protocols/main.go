// Protocols regenerates the paper's complete evaluation through the
// public API — every figure's message and data series for all five
// workloads, the SC baseline, and the three §4 design-choice ablations —
// and prints a compact report. This is the library-driven equivalent of
// cmd/lrcsim.
//
// Run with: go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Reproduction of Keleher/Cox/Zwaenepoel (ISCA 1992), Figures 5-14")
	fmt.Println()
	for _, app := range repro.Workloads {
		tr, err := repro.GenerateTrace(app, repro.PaperProcs, 0.25, 42)
		if err != nil {
			log.Fatal(err)
		}
		results, err := repro.Sweep(tr, repro.AllProtocols, repro.PaperPageSizes, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%d events) ==\n", app, len(tr.Events))
		for _, metric := range []string{"messages", "data"} {
			fmt.Printf("%-10s", metric)
			for _, p := range repro.AllProtocols {
				fmt.Printf("%12s", p)
			}
			fmt.Println()
			for _, ps := range repro.PaperPageSizes {
				fmt.Printf("%-10d", ps)
				for _, p := range repro.AllProtocols {
					s, err := repro.Series(results, p, []int{ps}, metric)
					if err != nil {
						log.Fatal(err)
					}
					v := s[0]
					if metric == "data" {
						v /= 1024
					}
					fmt.Printf("%12d", v)
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}

	// Ablations of the paper's §4 design choices, on the lock-heavy
	// LocusRoute at 2 KB pages.
	tr, err := repro.GenerateTrace("locusroute", repro.PaperProcs, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== design-choice ablations (LI, locusroute, 2048-byte pages) ==")
	base, err := repro.Simulate(tr, "LI", 2048, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10d msgs %10d KB\n", "as published", base.TotalMessages(), base.TotalBytes()/1024)
	for _, abl := range []struct {
		name string
		opts repro.Options
	}{
		{"no notice piggybacking", repro.Options{NoPiggyback: true}},
		{"no diffs (whole pages)", repro.Options{NoDiffs: true}},
		{"exclusive writer (no MW)", repro.Options{ExclusiveWriter: true}},
	} {
		st, err := repro.Simulate(tr, "LI", 2048, abl.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10d msgs %10d KB\n", abl.name, st.TotalMessages(), st.TotalBytes()/1024)
	}
}
