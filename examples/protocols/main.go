// Protocols regenerates the paper's complete evaluation through the
// public API — every figure's message and data series for all five
// workloads, the SC baseline, and the three §4 design-choice ablations —
// and then runs the same protocol matrix *live*: each workload executes
// on the DSM runtime under every engine (LI/LU/EI/EU/SC), both one
// processor per node and oversubscribed (several application goroutines
// multiplexed per node), with the final memory image verified against
// the sequential reference. This is the library-driven equivalent of
// cmd/lrcsim plus cmd/lrcrun, written entirely against the repro façade.
//
// Run with: go run ./examples/protocols
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("Reproduction of Keleher/Cox/Zwaenepoel (ISCA 1992), Figures 5-14")
	fmt.Println()
	for _, app := range repro.Workloads {
		tr, err := repro.GenerateTrace(app, repro.PaperProcs, 0.25, 42)
		if err != nil {
			log.Fatal(err)
		}
		results, err := repro.Sweep(tr, repro.AllProtocols, repro.PaperPageSizes, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%d events) ==\n", app, len(tr.Events))
		for _, metric := range []string{"messages", "data"} {
			fmt.Printf("%-10s", metric)
			for _, p := range repro.AllProtocols {
				fmt.Printf("%12s", p)
			}
			fmt.Println()
			for _, ps := range repro.PaperPageSizes {
				fmt.Printf("%-10d", ps)
				for _, p := range repro.AllProtocols {
					s, err := repro.Series(results, p, []int{ps}, metric)
					if err != nil {
						log.Fatal(err)
					}
					v := s[0]
					if metric == "data" {
						v /= 1024
					}
					fmt.Printf("%12d", v)
				}
				fmt.Println()
			}
		}
		fmt.Println()
	}

	// Ablations of the paper's §4 design choices, on the lock-heavy
	// LocusRoute at 2 KB pages.
	tr, err := repro.GenerateTrace("locusroute", repro.PaperProcs, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== design-choice ablations (LI, locusroute, 2048-byte pages) ==")
	base, err := repro.Simulate(tr, "LI", 2048, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10d msgs %10d KB\n", "as published", base.TotalMessages(), base.TotalBytes()/1024)
	for _, abl := range []struct {
		name string
		opts repro.Options
	}{
		{"no notice piggybacking", repro.Options{NoPiggyback: true}},
		{"no diffs (whole pages)", repro.Options{NoDiffs: true}},
		{"exclusive writer (no MW)", repro.Options{ExclusiveWriter: true}},
	} {
		st, err := repro.Simulate(tr, "LI", 2048, abl.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10d msgs %10d KB\n", abl.name, st.TotalMessages(), st.TotalBytes()/1024)
	}

	// --- the same matrix, live ---
	//
	// Every protocol engine moves real bytes on the runtime; the final
	// image must match the lockstep sequential reference. The second
	// column re-runs each engine oversubscribed: the same eight logical
	// processors multiplexed onto two nodes, four concurrent goroutines
	// each — lock handoffs and barrier rendezvous resolve node-locally,
	// so the interconnect moves far fewer messages for the same program.
	const procs, scale, seed, pageSize = 8, 0.05, 42, 1024
	fmt.Println()
	fmt.Println("== live runtime: all five engines, 1 and 4 goroutines per node ==")
	fmt.Printf("%-12s %-6s %14s %16s\n", "workload", "mode", "msgs @gpn=1", "msgs @gpn=4")
	for _, app := range repro.Workloads {
		ref, err := repro.ExecuteWorkload(app, procs, scale, seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, mode := range repro.DSMModes {
			var msgs [2]int64
			for i, gpn := range []int{1, 4} {
				res, err := repro.RunWorkloadOnRuntime(app, procs, scale, seed, repro.RuntimeConfig{
					PageSize:          pageSize,
					Mode:              mode,
					GoroutinesPerNode: gpn,
				})
				if err != nil {
					log.Fatal(err)
				}
				if !bytes.Equal(res.Image, ref.Image) {
					log.Fatalf("%s/%s gpn=%d: runtime image diverges from the sequential reference", app, mode, gpn)
				}
				msgs[i] = res.Net.Messages
			}
			fmt.Printf("%-12s %-6s %14d %16d\n", app, mode, msgs[0], msgs[1])
		}
	}
}
