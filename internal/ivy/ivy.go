// Package ivy implements a sequentially consistent, single-writer,
// write-invalidate page-based DSM in the style of Ivy (Li & Hudak, the
// paper's §6 related work), as a baseline ablation: it shows what release
// consistency — eager or lazy — buys over SC page shipping.
//
// Protocol: each page has a static directory manager (page % n) tracking
// the owner and copyset. A read miss fetches the page from the owner and
// joins the copyset. A write requires exclusive ownership: the writer
// fetches the page if needed and invalidates every other copy, each
// invalidation acknowledged. Locks and barriers cost the same messages as
// in the RC protocols, but carry no consistency payload.
package ivy

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/proto"
)

type pstatus uint8

const (
	psNoCopy pstatus = iota
	psRead           // read-only copy
	psWrite          // exclusively owned, writable
)

// Engine is the trace-driven simulation engine for the Ivy baseline.
type Engine struct {
	layout  *mem.Layout
	n       int
	stats   proto.Stats
	status  [][]pstatus // [proc][page]
	owner   []mem.ProcID
	copyset []uint64
	locks   map[mem.LockID]mem.ProcID
}

// NewEngine constructs an Ivy engine for n processors (n <= 64).
func NewEngine(layout *mem.Layout, n int) *Engine {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("ivy: processor count %d outside [1,64]", n))
	}
	e := &Engine{
		layout:  layout,
		n:       n,
		status:  make([][]pstatus, n),
		owner:   make([]mem.ProcID, layout.NumPages()),
		copyset: make([]uint64, layout.NumPages()),
		locks:   make(map[mem.LockID]mem.ProcID),
	}
	e.stats.Protocol = "SC"
	for i := range e.status {
		e.status[i] = make([]pstatus, layout.NumPages())
	}
	for pg := range e.owner {
		e.owner[pg] = mem.ProcID(pg % n)
	}
	return e
}

// Name implements proto.Protocol.
func (e *Engine) Name() string { return "SC" }

// PageStatus reports whether processor p holds a current copy of the page
// containing addr (read-only and owned copies are both current under SC).
func (e *Engine) PageStatus(p mem.ProcID, addr mem.Addr) (valid, present bool) {
	st := e.status[p][e.layout.PageOf(addr)]
	return st != psNoCopy, st != psNoCopy
}

// Stats implements proto.Protocol.
func (e *Engine) Stats() *proto.Stats { return &e.stats }

// fetch charges the 2-or-3-message page fetch through the directory
// manager.
func (e *Engine) fetch(p mem.ProcID, pg mem.PageID) {
	e.stats.AccessMisses++
	if e.status[p][pg] == psNoCopy {
		e.stats.ColdMisses++
	}
	mgr := mem.ProcID(int(pg) % e.n)
	owner := e.owner[pg]
	if owner == p {
		return // already authoritative; nothing travels
	}
	respBytes := proto.MsgHeaderBytes + e.layout.PageSize()
	if mgr != p && owner != mgr {
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes) // to manager
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes) // forward
	} else {
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes)
	}
	e.stats.Msg(proto.CatMiss, respBytes)
	e.stats.PagesSent++
	e.stats.PageBytes += int64(e.layout.PageSize())
}

// Read implements proto.Protocol.
func (e *Engine) Read(p mem.ProcID, addr mem.Addr, size int) {
	e.stats.Reads++
	for _, pg := range e.layout.PagesOf(addr, size) {
		if e.status[p][pg] != psNoCopy {
			continue // psRead or psWrite both satisfy reads
		}
		e.fetch(p, pg)
		// Previous exclusive owner downgrades to a read copy.
		if o := e.owner[pg]; e.status[o][pg] == psWrite {
			e.status[o][pg] = psRead
		}
		e.status[p][pg] = psRead
		e.copyset[pg] |= 1 << uint(p)
	}
}

// Write implements proto.Protocol: exclusive ownership is acquired,
// invalidating every other copy (2 messages per copy: invalidation + ack).
func (e *Engine) Write(p mem.ProcID, addr mem.Addr, size int) {
	e.stats.Writes++
	for _, pg := range e.layout.PagesOf(addr, size) {
		if e.status[p][pg] == psWrite {
			continue
		}
		if e.status[p][pg] == psNoCopy {
			e.fetch(p, pg)
		} else {
			// Upgrading a read copy still requires an ownership message
			// exchange with the manager.
			e.stats.AccessMisses++
			e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes)
			e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.AckBytes)
		}
		others := e.copyset[pg] &^ (1 << uint(p))
		for q := 0; others != 0; q++ {
			bit := uint64(1) << uint(q)
			if others&bit == 0 {
				continue
			}
			others &^= bit
			e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.InvalBytes)
			e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.AckBytes)
			e.stats.InvalidationsSent++
			e.status[q][pg] = psNoCopy
			e.copyset[pg] &^= bit
		}
		e.status[p][pg] = psWrite
		e.owner[pg] = p
		e.copyset[pg] = 1 << uint(p)
	}
}

// Acquire implements proto.Protocol.
func (e *Engine) Acquire(p mem.ProcID, l mem.LockID) {
	e.stats.Acquires++
	q, held := e.locks[l]
	if held && q == p {
		return
	}
	mgr := mem.ProcID(int(l) % e.n)
	if !held {
		if mgr != p {
			e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockReqBytes)
			e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockGrantBytes)
		}
		return
	}
	if mgr != p {
		e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockReqBytes)
	}
	if mgr != q {
		e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockReqBytes)
	}
	e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockGrantBytes)
}

// Release implements proto.Protocol: SC needs no release-time consistency
// work; the lock just records its holder.
func (e *Engine) Release(p mem.ProcID, l mem.LockID) {
	e.stats.Releases++
	e.locks[l] = p
}

// Barrier implements proto.Protocol: 2(n-1) arrival/exit messages.
func (e *Engine) Barrier(arrivals []mem.ProcID, b mem.BarrierID) {
	e.stats.Barriers++
	const master = mem.ProcID(0)
	for _, p := range arrivals {
		if p == master {
			continue
		}
		e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+proto.BarrierBytes)
		e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+proto.BarrierBytes)
	}
}
