package ivy

import (
	"testing"

	"repro/internal/mem"
)

func newTestEngine() *Engine {
	return NewEngine(mem.MustLayout(16384, 1024), 4)
}

func totalMsgs(e *Engine) int64 { return e.Stats().TotalMessages() }

func TestReadMissFetchesPage(t *testing.T) {
	e := newTestEngine()
	before := totalMsgs(e)
	e.Read(0, 1024, 4) // page 1, manager/owner p1: 2 messages
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("read miss = %d messages, want 2", got)
	}
	if e.Stats().PagesSent != 1 {
		t.Errorf("PagesSent = %d, want 1", e.Stats().PagesSent)
	}
	// Second read hits.
	before = totalMsgs(e)
	e.Read(0, 1024, 4)
	if got := totalMsgs(e) - before; got != 0 {
		t.Errorf("read hit = %d messages, want 0", got)
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	e := newTestEngine()
	e.Read(0, 1024, 4)
	e.Read(3, 1024, 4)
	e.Write(2, 1024, 4) // must invalidate p0 and p3
	if e.Stats().InvalidationsSent != 2 {
		t.Errorf("InvalidationsSent = %d, want 2", e.Stats().InvalidationsSent)
	}
	// Readers refetch.
	before := totalMsgs(e)
	e.Read(0, 1024, 4)
	if got := totalMsgs(e) - before; got == 0 {
		t.Error("invalidated reader did not miss")
	}
}

func TestWriterRetainsExclusiveAccess(t *testing.T) {
	e := newTestEngine()
	e.Write(2, 1024, 4)
	before := totalMsgs(e)
	for i := 0; i < 10; i++ {
		e.Write(2, mem.Addr(1024+4*i), 4)
		e.Read(2, 1024, 4)
	}
	if got := totalMsgs(e) - before; got != 0 {
		t.Errorf("exclusive owner paid %d messages for local accesses", got)
	}
}

func TestSingleWriterPingPong(t *testing.T) {
	// The false-sharing pathology the multiple-writer protocols avoid:
	// alternating writers to one page pay messages on every switch.
	e := newTestEngine()
	e.Write(0, 0, 4)
	e.Write(1, 512, 4)
	before := totalMsgs(e)
	for i := 0; i < 5; i++ {
		e.Write(0, 0, 4)
		e.Write(1, 512, 4)
	}
	if got := totalMsgs(e) - before; got == 0 {
		t.Error("alternating writers exchanged no messages: not a single-writer protocol")
	}
}

func TestReadDowngradesWriter(t *testing.T) {
	e := newTestEngine()
	e.Write(2, 1024, 4)
	e.Read(0, 1024, 4) // p2 downgrades to read-only copy
	// p2 writing again must re-acquire exclusivity.
	before := totalMsgs(e)
	e.Write(2, 1024, 4)
	if got := totalMsgs(e) - before; got == 0 {
		t.Error("downgraded owner wrote for free")
	}
}

func TestUpgradeFromReadCopy(t *testing.T) {
	e := newTestEngine()
	e.Read(0, 1024, 4)
	before := totalMsgs(e)
	pagesBefore := e.Stats().PagesSent
	e.Write(0, 1024, 4) // upgrade: ownership messages + invalidate owner
	if got := totalMsgs(e) - before; got == 0 {
		t.Error("upgrade was free")
	}
	if e.Stats().PagesSent != pagesBefore {
		t.Error("upgrade refetched a page the writer already holds")
	}
}

func TestLocksAndBarriersCostSyncMessagesOnly(t *testing.T) {
	e := newTestEngine()
	e.Acquire(0, 2)
	if got := totalMsgs(e); got != 2 {
		t.Errorf("first acquire = %d messages, want 2", got)
	}
	e.Release(0, 2)
	e.Acquire(3, 2)
	if got := totalMsgs(e); got != 2+3 {
		t.Errorf("remote acquire total = %d, want 5", got)
	}
	before := totalMsgs(e)
	e.Barrier([]mem.ProcID{0, 1, 2, 3}, 0)
	if got := totalMsgs(e) - before; got != 6 {
		t.Errorf("barrier = %d messages, want 6", got)
	}
}

func TestName(t *testing.T) {
	if newTestEngine().Name() != "SC" {
		t.Error("name wrong")
	}
}

func TestIvyRejectsTooManyProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("65 processors accepted")
		}
	}()
	NewEngine(mem.MustLayout(16384, 1024), 65)
}
