package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropFlattenEqualsSequentialApply: applying a flattened diff once must
// be byte-identical to applying the individual diffs in interval order,
// including overlapping runs where the later diff must win.
func TestPropFlattenEqualsSequentialApply(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 64 + r.Intn(200)
		base := make([]byte, size)
		r.Read(base)

		// Build a chain of diffs the way the engine does: each interval's
		// diff is MakeDiff(twin-at-interval-start, contents-at-close), so
		// successive diffs naturally overlap when writes revisit bytes.
		ndiffs := 2 + r.Intn(4)
		diffs := make([]*Diff, 0, ndiffs)
		cur := append([]byte(nil), base...)
		for i := 0; i < ndiffs; i++ {
			tw := NewTwin(cur)
			for j := 0; j < 1+r.Intn(6); j++ {
				off := r.Intn(size)
				n := 1 + r.Intn(size-off)
				for k := off; k < off+n; k++ {
					cur[k] = byte(r.Intn(256))
				}
			}
			d, err := MakeDiff(tw, cur)
			if err != nil {
				return false
			}
			diffs = append(diffs, d)
		}

		seq := append([]byte(nil), base...)
		for _, d := range diffs {
			if err := d.Apply(seq); err != nil {
				return false
			}
		}

		flat, err := FlattenDiffs(diffs, size)
		if err != nil {
			return false
		}
		once := append([]byte(nil), base...)
		if err := flat.Apply(once); err != nil {
			return false
		}
		return bytes.Equal(once, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Hand-built overlapping runs: the flattened diff must take the later
// diff's bytes wherever runs overlap (last-writer-wins) and the earlier
// diff's bytes where only it wrote.
func TestFlattenLastWriterWins(t *testing.T) {
	size := 32
	d1, err := DiffFromRuns(
		[]Run{{Off: 0, Len: 8}, {Off: 16, Len: 4}},
		[][]byte{bytes.Repeat([]byte{0x11}, 8), bytes.Repeat([]byte{0x22}, 4)},
	)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DiffFromRuns(
		[]Run{{Off: 4, Len: 8}}, // overlaps d1's first run at [4,8)
		[][]byte{bytes.Repeat([]byte{0x33}, 8)},
	)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := FlattenDiffs([]*Diff{d1, d2}, size)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]byte, size)
	if err := flat.Apply(got); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, size)
	for _, d := range []*Diff{d1, d2} {
		if err := d.Apply(want); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("flattened apply mismatch:\n got %x\nwant %x", got, want)
	}
	// The overlap region must carry d2's bytes.
	for k := 4; k < 12; k++ {
		if got[k] != 0x33 {
			t.Fatalf("byte %d = %#x, want later writer 0x33", k, got[k])
		}
	}
	// Runs [0,12) coalesce and [16,20) stays separate.
	if flat.NumRuns() != 2 {
		t.Fatalf("flat has %d runs, want 2 (%v)", flat.NumRuns(), flat.Runs())
	}
}

// A hostile diff inside the group must fail the flatten cleanly rather
// than panic or produce a partial merge.
func TestFlattenRejectsHostileRun(t *testing.T) {
	good, err := DiffFromRuns([]Run{{Off: 0, Len: 4}}, [][]byte{{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	bad := &Diff{runs: []Run{{Off: 60, Len: 8}}, data: [][]byte{bytes.Repeat([]byte{9}, 8)}}
	if _, err := FlattenDiffs([]*Diff{good, bad}, 64); err == nil {
		t.Fatal("out-of-page run in flatten group not rejected")
	}
}

func TestFlattenEmptyGroup(t *testing.T) {
	flat, err := FlattenDiffs(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.Empty() {
		t.Fatalf("flatten of no diffs produced %d runs", flat.NumRuns())
	}
}
