package page

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeSetAddSimple(t *testing.T) {
	var s RangeSet
	s.Add(10, 5)
	if got := s.Bytes(); got != 5 {
		t.Fatalf("Bytes = %d, want 5", got)
	}
	if s.NumRuns() != 1 {
		t.Fatalf("NumRuns = %d, want 1", s.NumRuns())
	}
}

func TestRangeSetCoalescesAdjacent(t *testing.T) {
	var s RangeSet
	s.Add(0, 4)
	s.Add(4, 4)
	if s.NumRuns() != 1 || s.Bytes() != 8 {
		t.Fatalf("adjacent runs not coalesced: %v", s.String())
	}
}

func TestRangeSetCoalescesOverlap(t *testing.T) {
	var s RangeSet
	s.Add(0, 10)
	s.Add(5, 10)
	if s.NumRuns() != 1 || s.Bytes() != 15 {
		t.Fatalf("overlapping runs not coalesced: %v", s.String())
	}
}

func TestRangeSetDisjointStaySeparate(t *testing.T) {
	var s RangeSet
	s.Add(0, 4)
	s.Add(8, 4)
	if s.NumRuns() != 2 || s.Bytes() != 8 {
		t.Fatalf("disjoint runs merged: %v", s.String())
	}
}

func TestRangeSetBridging(t *testing.T) {
	var s RangeSet
	s.Add(0, 4)
	s.Add(8, 4)
	s.Add(2, 8) // bridges both
	if s.NumRuns() != 1 || s.Bytes() != 12 {
		t.Fatalf("bridging add failed: %v", s.String())
	}
}

func TestRangeSetEmptyAdd(t *testing.T) {
	var s RangeSet
	s.Add(5, 0)
	s.Add(5, -3)
	if !s.Empty() {
		t.Fatalf("empty adds produced runs: %v", s.String())
	}
}

func TestRangeSetContains(t *testing.T) {
	var s RangeSet
	s.Add(4, 4)
	s.Add(16, 4)
	for _, c := range []struct {
		off  int
		want bool
	}{{3, false}, {4, true}, {7, true}, {8, false}, {16, true}, {19, true}, {20, false}} {
		if got := s.Contains(c.off); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.off, got, c.want)
		}
	}
}

func TestRangeSetOverlaps(t *testing.T) {
	var s RangeSet
	s.Add(10, 10)
	for _, c := range []struct {
		off, n int
		want   bool
	}{{0, 10, false}, {0, 11, true}, {19, 1, true}, {20, 5, false}, {5, 30, true}, {12, 0, false}} {
		if got := s.Overlaps(c.off, c.n); got != c.want {
			t.Errorf("Overlaps(%d,%d) = %v, want %v", c.off, c.n, got, c.want)
		}
	}
}

func TestRangeSetUnionAndClone(t *testing.T) {
	var a, b RangeSet
	a.Add(0, 4)
	b.Add(2, 6)
	c := a.Clone()
	c.Union(&b)
	if c.Bytes() != 8 || c.NumRuns() != 1 {
		t.Fatalf("union wrong: %v", c.String())
	}
	if a.Bytes() != 4 {
		t.Fatalf("union mutated the receiver's source: %v", a.String())
	}
}

func TestRangeSetClear(t *testing.T) {
	var s RangeSet
	s.Add(0, 4)
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left runs behind")
	}
	s.Add(8, 2)
	if s.Bytes() != 2 {
		t.Fatal("RangeSet unusable after Clear")
	}
}

// TestPropRangeSetMatchesBitmap checks the set against a reference bitmap
// implementation under random adds.
func TestPropRangeSetMatchesBitmap(t *testing.T) {
	const size = 256
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s RangeSet
		ref := make([]bool, size)
		for i := 0; i < 40; i++ {
			off := r.Intn(size)
			n := r.Intn(size - off)
			s.Add(off, n)
			for k := off; k < off+n; k++ {
				ref[k] = true
			}
		}
		// Bytes must match the bitmap population.
		pop := 0
		for _, b := range ref {
			if b {
				pop++
			}
		}
		if s.Bytes() != pop {
			return false
		}
		// Contains must match everywhere.
		for k := 0; k < size; k++ {
			if s.Contains(k) != ref[k] {
				return false
			}
		}
		// Runs must be sorted, non-empty, non-adjacent.
		runs := s.Runs()
		for i, run := range runs {
			if run.Len <= 0 {
				return false
			}
			if i > 0 && runs[i-1].End() >= run.Off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropUnionIsBitwiseOr(t *testing.T) {
	const size = 128
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b RangeSet
		ref := make([]bool, size)
		for i := 0; i < 10; i++ {
			off, n := r.Intn(size), 0
			n = r.Intn(size - off)
			a.Add(off, n)
			for k := off; k < off+n; k++ {
				ref[k] = true
			}
			off = r.Intn(size)
			n = r.Intn(size - off)
			b.Add(off, n)
			for k := off; k < off+n; k++ {
				ref[k] = true
			}
		}
		a.Union(&b)
		for k := 0; k < size; k++ {
			if a.Contains(k) != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
