package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeDiffEmpty(t *testing.T) {
	data := make([]byte, 64)
	tw := NewTwin(data)
	d, err := MakeDiff(tw, data)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || d.NumRuns() != 0 || d.PayloadBytes() != 0 {
		t.Fatalf("diff of identical data not empty: %d runs", d.NumRuns())
	}
	if got := d.WireSize(); got != DiffHeaderBytes {
		t.Errorf("empty diff WireSize = %d, want %d", got, DiffHeaderBytes)
	}
}

func TestMakeDiffSingleWord(t *testing.T) {
	data := make([]byte, 64)
	tw := NewTwin(data)
	data[9] = 0xff // within word [8,12)
	d, err := MakeDiff(tw, data)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRuns() != 1 {
		t.Fatalf("NumRuns = %d, want 1", d.NumRuns())
	}
	r := d.Runs()[0]
	if r.Off != 8 || r.Len != 4 {
		t.Errorf("run = [%d,%d), want word-dilated [8,12)", r.Off, r.End())
	}
}

func TestMakeDiffCoalescesAdjacentWords(t *testing.T) {
	data := make([]byte, 64)
	tw := NewTwin(data)
	data[4] = 1
	data[8] = 2 // adjacent words -> single run
	d, err := MakeDiff(tw, data)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRuns() != 1 || d.Runs()[0].Off != 4 || d.Runs()[0].Len != 8 {
		t.Fatalf("adjacent changed words did not coalesce: %v", d.Runs())
	}
}

func TestMakeDiffLengthMismatch(t *testing.T) {
	tw := NewTwin(make([]byte, 32))
	if _, err := MakeDiff(tw, make([]byte, 64)); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestMakeDiffShortTailWord(t *testing.T) {
	data := make([]byte, 10) // not a multiple of the word size
	tw := NewTwin(data)
	data[9] = 7
	d, err := MakeDiff(tw, data)
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]byte, 10)
	if err := d.Apply(fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, data) {
		t.Fatalf("short-tail diff did not roundtrip: %v vs %v", fresh, data)
	}
}

func TestApplyOutOfRange(t *testing.T) {
	d, err := DiffFromRuns([]Run{{Off: 60, Len: 8}}, [][]byte{make([]byte, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(make([]byte, 64)); err == nil {
		t.Fatal("out-of-range apply not rejected")
	}
}

func TestDiffFromRunsValidation(t *testing.T) {
	if _, err := DiffFromRuns([]Run{{0, 4}}, nil); err == nil {
		t.Error("run/payload count mismatch not rejected")
	}
	if _, err := DiffFromRuns([]Run{{0, 4}}, [][]byte{make([]byte, 3)}); err == nil {
		t.Error("run length / payload length mismatch not rejected")
	}
}

func TestPropDiffRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 32 + r.Intn(200)
		orig := make([]byte, size)
		r.Read(orig)
		tw := NewTwin(orig)
		cur := make([]byte, size)
		copy(cur, orig)
		for i := 0; i < 1+r.Intn(8); i++ {
			off := r.Intn(size)
			n := 1 + r.Intn(size-off)
			for k := off; k < off+n; k++ {
				cur[k] = byte(r.Intn(256))
			}
		}
		d, err := MakeDiff(tw, cur)
		if err != nil {
			return false
		}
		// Applying the diff to a fresh copy of the twin must reproduce
		// the current contents exactly.
		restored := make([]byte, size)
		copy(restored, orig)
		if err := d.Apply(restored); err != nil {
			return false
		}
		return bytes.Equal(restored, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropDiffRunsCoverExactlyChangedWords(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 64
		orig := make([]byte, size)
		cur := make([]byte, size)
		r.Read(orig)
		copy(cur, orig)
		changed := make([]bool, size)
		for i := 0; i < 5; i++ {
			k := r.Intn(size)
			cur[k] = orig[k] ^ 0x5a // guaranteed change, idempotent
			changed[k] = true
		}
		d, err := MakeDiff(NewTwin(orig), cur)
		if err != nil {
			return false
		}
		rs := d.Ranges()
		for k := 0; k < size; k++ {
			if changed[k] && !rs.Contains(k) {
				return false // a changed byte must be covered
			}
		}
		// Every covered word must contain at least one changed byte.
		for _, run := range rs.Runs() {
			for w := run.Off &^ 3; w < run.End(); w += 4 {
				wordChanged := false
				for k := w; k < w+4 && int(k) < size; k++ {
					if changed[k] {
						wordChanged = true
					}
				}
				if !wordChanged {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropSequentialDiffsComposeInOrder(t *testing.T) {
	// Applying diffs in happened-before order must reproduce the final
	// contents even when the diffs overlap (later writers win), the §4.3.3
	// ordering requirement.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 96
		base := make([]byte, size)
		r.Read(base)
		cur := make([]byte, size)
		copy(cur, base)
		var diffs []*Diff
		for step := 0; step < 4; step++ {
			tw := NewTwin(cur)
			for i := 0; i < 3; i++ {
				off := r.Intn(size)
				cur[off] = byte(r.Intn(256))
			}
			d, err := MakeDiff(tw, cur)
			if err != nil {
				return false
			}
			diffs = append(diffs, d)
		}
		restored := make([]byte, size)
		copy(restored, base)
		for _, d := range diffs {
			if err := d.Apply(restored); err != nil {
				return false
			}
		}
		return bytes.Equal(restored, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimateDiffWireSize(t *testing.T) {
	var s RangeSet
	if got := EstimateDiffWireSize(&s); got != DiffHeaderBytes {
		t.Errorf("empty estimate = %d, want %d", got, DiffHeaderBytes)
	}
	s.Add(2, 4) // word-dilates to [0,8): 8 payload bytes
	want := DiffHeaderBytes + RunHeaderBytes + 8
	if got := EstimateDiffWireSize(&s); got != want {
		t.Errorf("estimate = %d, want %d", got, want)
	}
}

func TestPropEstimateMatchesRealDiff(t *testing.T) {
	// The simulator's estimated wire size must equal the size of a real
	// diff whose writes exactly cover the same ranges (on a zeroed page
	// written with non-zero bytes, so every written word really changes).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		size := 128
		cur := make([]byte, size)
		tw := NewTwin(cur)
		var s RangeSet
		for i := 0; i < 4; i++ {
			off := r.Intn(size)
			n := 1 + r.Intn(size-off)
			s.Add(off, n)
		}
		for _, run := range s.Runs() {
			for k := run.Off; k < run.End(); k++ {
				cur[k] = 0xA5
			}
		}
		d, err := MakeDiff(tw, cur)
		if err != nil {
			return false
		}
		return d.WireSize() == EstimateDiffWireSize(&s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
