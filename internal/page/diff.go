package page

import (
	"fmt"
)

// Wire-size model for diffs, shared by the simulator's byte accounting and
// the live runtime's message encoder. A diff on the wire carries a 16-byte
// header (page id, creating interval, run count) plus, per run, an 8-byte
// (offset, length) descriptor and the run's payload bytes.
const (
	// DiffHeaderBytes is the fixed per-diff header size on the wire.
	DiffHeaderBytes = 16
	// RunHeaderBytes is the per-run descriptor size on the wire.
	RunHeaderBytes = 8
	// wordSize is the diffing granularity: diffs are computed word by
	// word, as in Munin and TreadMarks, so sub-word writes dilate to a
	// whole word.
	wordSize = 4
)

// Twin is a pristine copy of a page's contents, taken at the first write
// after the page became writable, so that the processor's modifications
// can later be recovered as a diff (current XOR twin, run-length encoded).
type Twin struct {
	data []byte
}

// NewTwin captures a twin of the given page contents.
func NewTwin(contents []byte) *Twin {
	t := &Twin{data: make([]byte, len(contents))}
	copy(t.data, contents)
	return t
}

// Len returns the page size the twin covers.
func (t *Twin) Len() int { return len(t.data) }

// Data exposes the twin's bytes; callers must not mutate them.
func (t *Twin) Data() []byte { return t.data }

// Diff is a run-length encoding of the difference between a twin and the
// current contents of a page: the set of word-aligned byte runs that
// changed, together with their new values.
type Diff struct {
	runs []Run
	data [][]byte
}

// MakeDiff computes the diff between twin and current, which must be the
// same length. Comparison is word-granular: any word containing a changed
// byte is included whole, and adjacent changed words coalesce into runs.
func MakeDiff(twin *Twin, current []byte) (*Diff, error) {
	if len(current) != len(twin.data) {
		return nil, fmt.Errorf("page: diff length mismatch: twin %d bytes, page %d bytes", len(twin.data), len(current))
	}
	d := &Diff{}
	n := len(current)
	i := 0
	for i < n {
		// Skip unchanged words.
		for i < n && wordEqual(twin.data, current, i, n) {
			i += wordSize
		}
		if i >= n {
			break
		}
		start := i
		for i < n && !wordEqual(twin.data, current, i, n) {
			i += wordSize
		}
		end := i
		if end > n {
			end = n
		}
		payload := make([]byte, end-start)
		copy(payload, current[start:end])
		d.runs = append(d.runs, Run{Off: int32(start), Len: int32(end - start)})
		d.data = append(d.data, payload)
	}
	return d, nil
}

// wordEqual reports whether the word starting at off matches between a and
// b, tolerating a short final word.
func wordEqual(a, b []byte, off, n int) bool {
	end := off + wordSize
	if end > n {
		end = n
	}
	for k := off; k < end; k++ {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.runs) == 0 }

// NumRuns returns the number of runs in the diff.
func (d *Diff) NumRuns() int { return len(d.runs) }

// Runs returns the diff's runs; callers must not mutate the slice.
func (d *Diff) Runs() []Run { return d.runs }

// RunData returns the payload of run i; callers must not mutate it.
func (d *Diff) RunData(i int) []byte { return d.data[i] }

// PayloadBytes returns the number of modified bytes the diff carries.
func (d *Diff) PayloadBytes() int {
	total := 0
	for _, r := range d.runs {
		total += int(r.Len)
	}
	return total
}

// WireSize returns the size of the diff on the wire under the package's
// size model.
func (d *Diff) WireSize() int {
	return DiffHeaderBytes + len(d.runs)*RunHeaderBytes + d.PayloadBytes()
}

// Apply merges the diff into the page contents in place. Later diffs
// applied on top overwrite earlier ones, which is how the happened-before
// ordering of modifications is realized (§4.3.3: diffs are applied in the
// order specified by hb1).
func (d *Diff) Apply(contents []byte) error {
	for i, r := range d.runs {
		if int(r.End()) > len(contents) {
			return fmt.Errorf("page: diff run [%d,%d) exceeds page size %d", r.Off, r.End(), len(contents))
		}
		copy(contents[r.Off:r.End()], d.data[i])
	}
	return nil
}

// Ranges returns the byte ranges the diff covers as a RangeSet.
func (d *Diff) Ranges() *RangeSet {
	s := &RangeSet{}
	for _, r := range d.runs {
		s.AddRun(r)
	}
	return s
}

// DiffFromRuns constructs a diff directly from runs and payloads; used by
// the wire decoder. Each payload must match its run's length.
func DiffFromRuns(runs []Run, data [][]byte) (*Diff, error) {
	if len(runs) != len(data) {
		return nil, fmt.Errorf("page: %d runs but %d payloads", len(runs), len(data))
	}
	for i, r := range runs {
		if int(r.Len) != len(data[i]) {
			return nil, fmt.Errorf("page: run %d declares %d bytes but payload has %d", i, r.Len, len(data[i]))
		}
	}
	return &Diff{runs: runs, data: data}, nil
}

// EstimateDiffWireSize returns the wire size a diff would have for a
// modification pattern described by a RangeSet, dilating each run to word
// alignment and coalescing runs that become adjacent, the same way
// MakeDiff would. The trace-driven simulator uses this to account bytes
// without materializing page contents.
func EstimateDiffWireSize(mods *RangeSet) int {
	if mods.Empty() {
		return DiffHeaderBytes
	}
	var dilated RangeSet
	for _, r := range mods.Runs() {
		start := int(r.Off) &^ (wordSize - 1)
		end := (int(r.End()) + wordSize - 1) &^ (wordSize - 1)
		dilated.Add(start, end-start)
	}
	return DiffHeaderBytes + dilated.NumRuns()*RunHeaderBytes + dilated.Bytes()
}
