package page

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Wire-size model for diffs, shared by the simulator's byte accounting and
// the live runtime's message encoder. A diff on the wire carries a 16-byte
// header (page id, creating interval, run count) plus, per run, an 8-byte
// (offset, length) descriptor and the run's payload bytes.
const (
	// DiffHeaderBytes is the fixed per-diff header size on the wire.
	DiffHeaderBytes = 16
	// RunHeaderBytes is the per-run descriptor size on the wire.
	RunHeaderBytes = 8
	// wordSize is the diffing granularity: diffs are computed word by
	// word, as in Munin and TreadMarks, so sub-word writes dilate to a
	// whole word.
	wordSize = 4
)

// Twin is a pristine copy of a page's contents, taken at the first write
// after the page became writable, so that the processor's modifications
// can later be recovered as a diff (current XOR twin, run-length encoded).
//
// Twins are reference-counted: the lazy engine shares one twin between
// the page table and a deferred diff (the snapshot a not-yet-computed
// diff will be computed against), and the buffer returns to the
// size-classed pool at the last Release. A twin that is never released
// is simply reclaimed by the garbage collector — Release is a recycling
// contract, not a correctness one — but after releasing its reference a
// holder must not touch the twin again.
type Twin struct {
	data []byte
	refs atomic.Int32
}

// NewTwin captures a twin of the given page contents with one reference.
func NewTwin(contents []byte) *Twin {
	t := &Twin{data: getBuf(len(contents))}
	copy(t.data, contents)
	t.refs.Store(1)
	return t
}

// Len returns the page size the twin covers.
func (t *Twin) Len() int { return len(t.data) }

// Data exposes the twin's bytes; callers must not mutate them.
func (t *Twin) Data() []byte { return t.data }

// Retain adds a reference and returns t.
func (t *Twin) Retain() *Twin {
	t.refs.Add(1)
	return t
}

// Release drops one reference. The last release recycles the buffer into
// the pool and returns true; the twin must not be used afterwards.
func (t *Twin) Release() bool {
	if t.refs.Add(-1) == 0 {
		putBuf(t.data)
		t.data = nil
		return true
	}
	return false
}

// Diff is a run-length encoding of the difference between a twin and the
// current contents of a page: the set of word-aligned byte runs that
// changed, together with their new values. A diff is immutable once
// built; the cached wire body (see EnsureWireBody) may be attached
// lazily, which is the one field with interior mutability.
type Diff struct {
	runs []Run
	data [][]byte
	// enc caches the diff's wire body — run count plus per-run headers
	// and payloads, exactly the bytes the message encoder would produce —
	// built at most once per diff and reused verbatim by every subsequent
	// serve. Atomic because concurrent handler workers may race to build
	// it; the first store wins and the losers drop their copy.
	enc atomic.Pointer[[]byte]
}

// MakeDiff computes the diff between twin and current, which must be the
// same length. Comparison is word-granular: any word containing a changed
// byte is included whole, and adjacent changed words coalesce into runs.
// The scan is word-wide — chunked equality for the long unchanged
// stretches, 64-bit compares refined to the 4-byte word boundary — and
// all run payloads share one pooled backing buffer.
func MakeDiff(twin *Twin, current []byte) (*Diff, error) {
	if len(current) != len(twin.data) {
		return nil, fmt.Errorf("page: diff length mismatch: twin %d bytes, page %d bytes", len(twin.data), len(current))
	}
	a, b := twin.data, current
	n := len(current)
	d := &Diff{}
	total := 0
	i := 0
	for i < n {
		i = nextChangedWord(a, b, i, n)
		if i >= n {
			break
		}
		start := i
		i = nextUnchangedWord(a, b, i+wordSize, n)
		d.runs = append(d.runs, Run{Off: int32(start), Len: int32(i - start)})
		total += i - start
	}
	if total > 0 {
		back := getBuf(total)
		d.data = make([][]byte, len(d.runs))
		off := 0
		for k, r := range d.runs {
			p := back[off : off+int(r.Len) : off+int(r.Len)]
			copy(p, b[r.Off:int(r.Off)+int(r.Len)])
			d.data[k] = p
			off += int(r.Len)
		}
	}
	return d, nil
}

// nextChangedWord returns the smallest word-aligned offset >= i whose
// word differs between a and b, or n when the remainder is equal. Long
// equal stretches are skipped a chunk at a time via bytes.Equal (which
// the runtime implements word-wide), then 64-bit loads locate the first
// differing pair and refine it to the 4-byte word boundary. A short
// final word (n not word-aligned) counts as one word.
func nextChangedWord(a, b []byte, i, n int) int {
	const chunk = 128
	for i+chunk <= n && bytes.Equal(a[i:i+chunk], b[i:i+chunk]) {
		i += chunk
	}
	for i+8 <= n {
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		if x != y {
			if uint32(x) == uint32(y) {
				return i + wordSize
			}
			return i
		}
		i += 8
	}
	for i+wordSize <= n {
		if binary.LittleEndian.Uint32(a[i:]) != binary.LittleEndian.Uint32(b[i:]) {
			return i
		}
		i += wordSize
	}
	if i < n && !bytes.Equal(a[i:n], b[i:n]) {
		return i
	}
	return n
}

// nextUnchangedWord returns the smallest word-aligned offset >= i whose
// word matches between a and b, or n when every remaining word (including
// a short tail) differs. Never returns past n, which is what lets
// MakeDiff's run loop drop the historical end-of-page clamp.
func nextUnchangedWord(a, b []byte, i, n int) int {
	for i+8 <= n {
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		if uint32(x) == uint32(y) {
			return i
		}
		if x>>32 == y>>32 {
			return i + wordSize
		}
		i += 8
	}
	for i+wordSize <= n {
		if binary.LittleEndian.Uint32(a[i:]) == binary.LittleEndian.Uint32(b[i:]) {
			return i
		}
		i += wordSize
	}
	if i < n && bytes.Equal(a[i:n], b[i:n]) {
		return i
	}
	return n
}

// wordEqual reports whether the word starting at off matches between a and
// b, tolerating a short final word. Word-wide: one 32-bit compare for a
// full word, bytes.Equal for the tail.
func wordEqual(a, b []byte, off, n int) bool {
	if off+wordSize <= n {
		return binary.LittleEndian.Uint32(a[off:]) == binary.LittleEndian.Uint32(b[off:])
	}
	return bytes.Equal(a[off:n], b[off:n])
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.runs) == 0 }

// NumRuns returns the number of runs in the diff.
func (d *Diff) NumRuns() int { return len(d.runs) }

// Runs returns the diff's runs; callers must not mutate the slice.
func (d *Diff) Runs() []Run { return d.runs }

// RunData returns the payload of run i; callers must not mutate it.
func (d *Diff) RunData(i int) []byte { return d.data[i] }

// PayloadBytes returns the number of modified bytes the diff carries.
func (d *Diff) PayloadBytes() int {
	total := 0
	for _, r := range d.runs {
		total += int(r.Len)
	}
	return total
}

// WireSize returns the size of the diff on the wire under the package's
// size model.
func (d *Diff) WireSize() int {
	return DiffHeaderBytes + len(d.runs)*RunHeaderBytes + d.PayloadBytes()
}

// WireBody returns the cached wire body, or nil when none has been built
// yet. The body is the run count followed by each run's (offset, length)
// descriptor and payload — everything the encoder writes after the
// per-record header.
func (d *Diff) WireBody() []byte {
	if p := d.enc.Load(); p != nil {
		return *p
	}
	return nil
}

// EnsureWireBody returns the diff's wire body, building and caching it on
// first use so every later serve of the same diff appends one immutable
// buffer instead of re-walking runs and payloads.
func (d *Diff) EnsureWireBody() []byte {
	if p := d.enc.Load(); p != nil {
		return *p
	}
	body := make([]byte, 0, 4+len(d.runs)*RunHeaderBytes+d.PayloadBytes())
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], uint32(len(d.runs)))
	body = append(body, t[:]...)
	for i, r := range d.runs {
		binary.LittleEndian.PutUint32(t[:], uint32(r.Off))
		body = append(body, t[:]...)
		binary.LittleEndian.PutUint32(t[:], uint32(r.Len))
		body = append(body, t[:]...)
		body = append(body, d.data[i]...)
	}
	if d.enc.CompareAndSwap(nil, &body) {
		return body
	}
	return *d.enc.Load()
}

// Apply merges the diff into the page contents in place. Later diffs
// applied on top overwrite earlier ones, which is how the happened-before
// ordering of modifications is realized (§4.3.3: diffs are applied in the
// order specified by hb1).
//
// Every run is validated before any byte moves, so a hostile diff — one
// whose runs a peer forged with negative or out-of-page coordinates — is
// rejected whole and leaves the page untouched rather than torn.
func (d *Diff) Apply(contents []byte) error {
	for _, r := range d.runs {
		if r.Off < 0 || r.Len < 0 || int(r.Off)+int(r.Len) > len(contents) {
			return fmt.Errorf("page: diff run [%d,%d) exceeds page size %d", r.Off, r.End(), len(contents))
		}
	}
	for i, r := range d.runs {
		copy(contents[r.Off:r.End()], d.data[i])
	}
	return nil
}

// Ranges returns the byte ranges the diff covers as a RangeSet.
func (d *Diff) Ranges() *RangeSet {
	s := &RangeSet{}
	for _, r := range d.runs {
		s.AddRun(r)
	}
	return s
}

// DiffFromRuns constructs a diff directly from runs and payloads; used by
// the wire decoder. Each payload must match its run's length and declare
// a non-negative offset (the same rejection the decoder applies, repeated
// here so no constructor path can build a diff Apply must refuse).
func DiffFromRuns(runs []Run, data [][]byte) (*Diff, error) {
	if len(runs) != len(data) {
		return nil, fmt.Errorf("page: %d runs but %d payloads", len(runs), len(data))
	}
	for i, r := range runs {
		if int(r.Len) != len(data[i]) {
			return nil, fmt.Errorf("page: run %d declares %d bytes but payload has %d", i, r.Len, len(data[i]))
		}
		if r.Off < 0 {
			return nil, fmt.Errorf("page: run %d has negative offset %d", i, r.Off)
		}
	}
	return &Diff{runs: runs, data: data}, nil
}

// EstimateDiffWireSize returns the wire size a diff would have for a
// modification pattern described by a RangeSet, dilating each run to word
// alignment and coalescing runs that become adjacent, the same way
// MakeDiff would. The trace-driven simulator uses this to account bytes
// without materializing page contents.
func EstimateDiffWireSize(mods *RangeSet) int {
	if mods.Empty() {
		return DiffHeaderBytes
	}
	var dilated RangeSet
	for _, r := range mods.Runs() {
		start := int(r.Off) &^ (wordSize - 1)
		end := (int(r.End()) + wordSize - 1) &^ (wordSize - 1)
		dilated.Add(start, end-start)
	}
	return DiffHeaderBytes + dilated.NumRuns()*RunHeaderBytes + dilated.Bytes()
}
