// Package page implements the per-page data machinery of a multiple-writer
// DSM: twins (pristine copies made at the first write after a protection
// downgrade), diffs (run-length encodings of the words a processor changed,
// computed twin-vs-current), and range sets (bookkeeping of which bytes of
// a page an interval modified, used by the simulator's byte accounting).
//
// Diffs are the paper's §4.3 mechanism for limiting the amount of data a
// release (eager) or an access miss / acquire (lazy) moves across the
// interconnect, and for letting concurrent writers to disjoint parts of a
// falsely-shared page merge without ping-ponging the whole page.
package page

import (
	"fmt"
	"sort"
)

// Run is a half-open byte range [Off, Off+Len) within one page.
type Run struct {
	Off int32
	Len int32
}

// End returns the exclusive end offset of the run.
func (r Run) End() int32 { return r.Off + r.Len }

// RangeSet is a normalized (sorted, coalesced, non-overlapping) set of byte
// runs within a single page. The zero value is an empty set ready for use.
type RangeSet struct {
	runs []Run
}

// Add inserts the range [off, off+n) into the set, coalescing with any
// overlapping or adjacent runs. Adding an empty or negative range is a
// no-op.
func (s *RangeSet) Add(off, n int) {
	if n <= 0 {
		return
	}
	nr := Run{Off: int32(off), Len: int32(n)}
	// Find insertion point: first run whose end is >= nr.Off (candidates
	// for coalescing are contiguous from there).
	i := sort.Search(len(s.runs), func(i int) bool {
		return s.runs[i].End() >= nr.Off
	})
	j := i
	for j < len(s.runs) && s.runs[j].Off <= nr.End() {
		if s.runs[j].Off < nr.Off {
			nr.Len += nr.Off - s.runs[j].Off
			nr.Off = s.runs[j].Off
		}
		if s.runs[j].End() > nr.End() {
			nr.Len = s.runs[j].End() - nr.Off
		}
		j++
	}
	s.runs = append(s.runs[:i], append([]Run{nr}, s.runs[j:]...)...)
}

// AddRun inserts r into the set.
func (s *RangeSet) AddRun(r Run) { s.Add(int(r.Off), int(r.Len)) }

// Union merges every run of o into s.
func (s *RangeSet) Union(o *RangeSet) {
	for _, r := range o.runs {
		s.AddRun(r)
	}
}

// Bytes returns the total number of bytes covered by the set.
func (s *RangeSet) Bytes() int {
	total := 0
	for _, r := range s.runs {
		total += int(r.Len)
	}
	return total
}

// NumRuns returns the number of distinct runs in the set.
func (s *RangeSet) NumRuns() int { return len(s.runs) }

// Runs returns the normalized runs in ascending order. The returned slice
// is owned by the set and must not be mutated.
func (s *RangeSet) Runs() []Run { return s.runs }

// Empty reports whether the set covers no bytes.
func (s *RangeSet) Empty() bool { return len(s.runs) == 0 }

// Contains reports whether the byte at offset off is covered.
func (s *RangeSet) Contains(off int) bool {
	i := sort.Search(len(s.runs), func(i int) bool {
		return s.runs[i].End() > int32(off)
	})
	return i < len(s.runs) && s.runs[i].Off <= int32(off)
}

// Overlaps reports whether the set shares any byte with [off, off+n).
func (s *RangeSet) Overlaps(off, n int) bool {
	if n <= 0 {
		return false
	}
	i := sort.Search(len(s.runs), func(i int) bool {
		return s.runs[i].End() > int32(off)
	})
	return i < len(s.runs) && int(s.runs[i].Off) < off+n
}

// Clear empties the set, retaining capacity.
func (s *RangeSet) Clear() { s.runs = s.runs[:0] }

// Clone returns an independent copy of the set.
func (s *RangeSet) Clone() *RangeSet {
	c := &RangeSet{runs: make([]Run, len(s.runs))}
	copy(c.runs, s.runs)
	return c
}

// String renders the set as "{[a,b) [c,d) ...}".
func (s *RangeSet) String() string {
	out := "{"
	for i, r := range s.runs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("[%d,%d)", r.Off, r.End())
	}
	return out + "}"
}
