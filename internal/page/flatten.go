package page

import "fmt"

// FlattenDiffs merges several diffs for the same page — ordered earliest
// interval first — into one diff that, applied once, yields the same
// bytes as applying the inputs in order. Overlapping runs resolve
// last-writer-wins, matching hb1 apply order (§4.3.3): the flattened
// run set is the RangeSet union of the inputs' runs, and each merged
// byte takes its value from the latest diff that wrote it.
//
// The merge replays the diffs onto a pooled scratch page and then reads
// the union ranges back out; stale scratch bytes outside the union are
// never read. The scratch is returned to the pool before FlattenDiffs
// returns; the output diff owns a fresh pooled backing.
func FlattenDiffs(diffs []*Diff, pageSize int) (*Diff, error) {
	scratch := getBuf(pageSize)
	defer putBuf(scratch)
	union := &RangeSet{}
	for k, d := range diffs {
		if err := d.Apply(scratch); err != nil {
			return nil, fmt.Errorf("page: flatten diff %d: %w", k, err)
		}
		for _, r := range d.runs {
			union.AddRun(r)
		}
	}
	out := &Diff{runs: append([]Run(nil), union.Runs()...)}
	total := union.Bytes()
	if total > 0 {
		back := getBuf(total)
		out.data = make([][]byte, len(out.runs))
		off := 0
		for k, r := range out.runs {
			p := back[off : off+int(r.Len) : off+int(r.Len)]
			copy(p, scratch[r.Off:int(r.Off)+int(r.Len)])
			out.data[k] = p
			off += int(r.Len)
		}
	}
	return out, nil
}
