package page

// Size-classed buffer freelists for the diff data plane, in the same
// typed-freelist idiom the wire codec uses for frame buffers: a buffered
// channel per class, non-blocking get/put, so recycling never contends
// harder than a failed channel operation. Twins dominate the traffic —
// every write-notice capture copies a full page, and the lazy engine
// returns each twin's buffer at its final release — so the pool mostly
// circulates page-sized buffers, with diff backings and flatten scratch
// drawing from the smaller classes.
//
// Ownership discipline: a buffer may be recycled only by its sole owner.
// Twins are refcounted (Twin.Release) and recycled at the last release;
// FlattenDiffs returns its scratch before returning; diff backings are
// drawn from the pool but retired to the garbage collector instead,
// because a served diff may still be referenced by a staged wire frame
// when the GC epoch discards it.

const (
	// minPoolShift..maxPoolShift bound the pooled classes: 64 B to 64 KiB
	// in powers of two, covering run payloads up to the largest page size
	// the runtime configures.
	minPoolShift = 6
	maxPoolShift = 16
	numClasses   = maxPoolShift - minPoolShift + 1

	// poolDepth bounds how many buffers each class retains.
	poolDepth = 128
)

var bufClasses [numClasses]chan []byte

func init() {
	for i := range bufClasses {
		bufClasses[i] = make(chan []byte, poolDepth)
	}
}

// classFor returns the pool class whose buffers hold n bytes, or -1 when
// n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxPoolShift {
		return -1
	}
	c := 0
	for 1<<(minPoolShift+c) < n {
		c++
	}
	return c
}

// getBuf returns a length-n slice, recycled from the pool when a buffer
// of the fitting class is available and freshly allocated otherwise.
// Contents are unspecified: every caller must overwrite the bytes it
// will later read.
func getBuf(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	select {
	case b := <-bufClasses[c]:
		return b[:n]
	default:
		return make([]byte, n, 1<<(minPoolShift+c))
	}
}

// putBuf recycles a buffer handed out by getBuf. Buffers whose capacity
// is not an exact class size (oversized allocations, foreign slices) are
// left to the garbage collector.
func putBuf(b []byte) {
	c := classFor(cap(b))
	if c < 0 || cap(b) != 1<<(minPoolShift+c) {
		return
	}
	select {
	case bufClasses[c] <- b[:cap(b)]:
	default:
	}
}
