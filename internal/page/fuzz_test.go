package page

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDiffApply feeds Apply hostile run tables — negative offsets,
// negative lengths, out-of-page spans, int32-overflowing Off+Len — as a
// forged peer could deliver them. Per the hostile-peer policy the diff
// must be rejected whole: no panic, and on error the page is untouched
// (no torn partial apply).
func FuzzDiffApply(f *testing.F) {
	// Seeds: benign, off-end, negative offset, negative length, and the
	// int32-overflow pair Off=Len=MaxInt32 whose naive sum goes negative.
	seed := func(runs ...int32) []byte {
		var b []byte
		for _, v := range runs {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
		return b
	}
	f.Add(seed(0, 4, 8, 4), byte(64))
	f.Add(seed(60, 8), byte(64))
	f.Add(seed(-4, 4), byte(64))
	f.Add(seed(4, -4), byte(64))
	f.Add(seed(1<<31-1, 1<<31-1), byte(64))
	f.Add(seed(0, 8, 4, 8), byte(16)) // overlapping runs are legal

	f.Fuzz(func(t *testing.T, raw []byte, pageSize byte) {
		size := int(pageSize)
		var runs []Run
		var data [][]byte
		for len(raw) >= 8 {
			off := int32(binary.LittleEndian.Uint32(raw))
			length := int32(binary.LittleEndian.Uint32(raw[4:]))
			raw = raw[8:]
			payload := 0
			if length > 0 && length < 1<<12 {
				payload = int(length)
			}
			runs = append(runs, Run{Off: off, Len: length})
			data = append(data, bytes.Repeat([]byte{0xAB}, payload))
		}
		// DiffFromRuns (the decoder's constructor) must reject negative
		// coordinates and payload mismatches without panicking.
		fromWire, wireErr := DiffFromRuns(runs, data)
		if wireErr == nil {
			for _, r := range fromWire.Runs() {
				if r.Off < 0 {
					t.Fatalf("DiffFromRuns accepted negative offset %d", r.Off)
				}
			}
		}
		// Then drive Apply directly on the raw run table, bypassing the
		// constructor: Apply's own validation is the last line of defense
		// and must hold even for diffs no decoder path would build (e.g.
		// Off+Len overflowing int32 with an undersized payload).
		d := &Diff{runs: runs, data: data}
		page := make([]byte, size)
		for i := range page {
			page[i] = byte(i)
		}
		before := append([]byte(nil), page...)
		if err := d.Apply(page); err != nil {
			if !bytes.Equal(page, before) {
				t.Fatalf("rejected diff tore the page: %x -> %x", before, page)
			}
			return
		}
		// Accepted: every run must have been in bounds.
		for _, r := range d.Runs() {
			if r.Off < 0 || r.Len < 0 || int(r.Off)+int(r.Len) > size {
				t.Fatalf("out-of-bounds run %+v accepted on %d-byte page", r, size)
			}
		}
	})
}
