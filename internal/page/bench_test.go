package page

import (
	"math/rand"
	"testing"
)

// byteLoopMakeDiff is the pre-kernel MakeDiff, kept verbatim as the
// baseline BenchmarkMakeDiff compares against: byte-at-a-time word
// comparison, per-run payload allocation, end-of-page clamp.
func byteLoopMakeDiff(twin *Twin, current []byte) (*Diff, error) {
	byteWordEqual := func(a, b []byte, off, n int) bool {
		end := off + wordSize
		if end > n {
			end = n
		}
		for k := off; k < end; k++ {
			if a[k] != b[k] {
				return false
			}
		}
		return true
	}
	a, b := twin.Data(), current
	n := len(current)
	d := &Diff{}
	i := 0
	for i < n {
		for i < n && byteWordEqual(a, b, i, n) {
			i += wordSize
		}
		if i >= n {
			break
		}
		start := i
		for i < n && !byteWordEqual(a, b, i, n) {
			i += wordSize
		}
		end := i
		if end > n {
			end = n
		}
		payload := make([]byte, end-start)
		copy(payload, b[start:end])
		d.runs = append(d.runs, Run{Off: int32(start), Len: int32(end - start)})
		d.data = append(d.data, payload)
	}
	return d, nil
}

// sparsePage builds a 4KB page pair with a handful of scattered word
// writes — the common SPLASH pattern MakeDiff sees at release.
func sparsePage(seed int64) (*Twin, []byte) {
	r := rand.New(rand.NewSource(seed))
	size := 4096
	orig := make([]byte, size)
	r.Read(orig)
	cur := append([]byte(nil), orig...)
	for i := 0; i < 8; i++ {
		off := r.Intn(size - 16)
		for k := 0; k < 4+r.Intn(12); k++ {
			cur[off+k] ^= 0x5a
		}
	}
	return NewTwin(orig), cur
}

func BenchmarkMakeDiff(b *testing.B) {
	tw, cur := sparsePage(42)
	b.Run("word", func(b *testing.B) {
		b.SetBytes(int64(len(cur)))
		for i := 0; i < b.N; i++ {
			d, err := MakeDiff(tw, cur)
			if err != nil {
				b.Fatal(err)
			}
			_ = d
		}
	})
	b.Run("byteloop-baseline", func(b *testing.B) {
		b.SetBytes(int64(len(cur)))
		for i := 0; i < b.N; i++ {
			d, err := byteLoopMakeDiff(tw, cur)
			if err != nil {
				b.Fatal(err)
			}
			_ = d
		}
	})
}

// BenchmarkDiffServe measures re-serving one diff to many requesters:
// cold rebuilds the wire body every time (the pre-cache behavior),
// cached reuses the one EnsureWireBody buffer.
func BenchmarkDiffServe(b *testing.B) {
	tw, cur := sparsePage(7)
	d, err := MakeDiff(tw, cur)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, d.WireSize())
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh, _ := DiffFromRuns(d.Runs(), d.data)
			buf = append(buf[:0], fresh.EnsureWireBody()...)
		}
	})
	b.Run("cached", func(b *testing.B) {
		d.EnsureWireBody()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = append(buf[:0], d.EnsureWireBody()...)
		}
	})
	_ = buf
}

// The serve-from-cache path must not allocate: once the wire body is
// built, every further serve is a single append into the frame buffer.
func TestDiffServeFromCacheAllocs(t *testing.T) {
	tw, cur := sparsePage(7)
	d, err := MakeDiff(tw, cur)
	if err != nil {
		t.Fatal(err)
	}
	d.EnsureWireBody()
	buf := make([]byte, 0, 2*d.WireSize())
	allocs := testing.AllocsPerRun(100, func() {
		buf = append(buf[:0], d.EnsureWireBody()...)
	})
	if allocs != 0 {
		t.Fatalf("serve-from-cache allocated %.1f objects per op, want 0", allocs)
	}
}
