package proto

// Message-size model. The paper measures "amount of data"; to reproduce it
// we need one explicit, documented model of what each protocol message
// carries on the wire. Both the trace-driven simulator (which never
// materializes page contents) and the live runtime's encoder
// (internal/wire, which does) use these constants, and a test asserts the
// encoder's real output sizes match the model.
//
// All messages carry a fixed header (source, destination, type, length,
// sequence number). Payloads:
//
//	lock request        lock id + requester + (lazy) acquirer's vector clock
//	lock forward        same as request (manager -> holder)
//	lock grant          lock id + (lazy) releaser's clock + write notices
//	write notice        (proc, interval, page) triple
//	invalidation        page id + epoch
//	diff request        page id + requester clock summary
//	diff response       diffs (page.DiffHeaderBytes + runs + payload)
//	page request        page id
//	page response       page id + page contents (+ piggybacked diffs)
//	barrier arrive      barrier id + (lazy) clock + notices
//	barrier exit        barrier id + (lazy) merged clock + notices
//	update (eager)      diffs
//	ack                 header only
const (
	// MsgHeaderBytes is the fixed wire header on every message.
	MsgHeaderBytes = 24

	// LockReqBytes is the payload of a lock request/forward, excluding the
	// acquirer's vector clock (lazy protocols append VCBytes(n)).
	LockReqBytes = 8

	// LockGrantBytes is the payload of a lock grant, excluding clock and
	// piggybacked notices/diffs.
	LockGrantBytes = 8

	// WriteNoticeBytes is the wire size of one write notice: creating
	// processor (2), interval index (4), page id (4), packed with the
	// creating interval's clock carried once per interval elsewhere.
	WriteNoticeBytes = 12

	// IntervalHeaderBytes is carried once per distinct interval whose
	// notices travel in a message (proc, index, plus the interval's clock
	// is reconstructible at the receiver from its own log, so only the
	// 8-byte id travels).
	IntervalHeaderBytes = 8

	// InvalBytes is the wire size of one eager invalidation record.
	InvalBytes = 8

	// DiffReqBytes is the payload of a diff request, excluding the
	// requester's clock.
	DiffReqBytes = 8

	// PageReqBytes is the payload of a page request.
	PageReqBytes = 8

	// BarrierBytes is the payload of a barrier arrive/exit message,
	// excluding piggybacked clocks and notices.
	BarrierBytes = 8

	// AckBytes is the payload of an acknowledgment.
	AckBytes = 0
)

// VCBytes returns the wire size of a vector clock for n processors.
func VCBytes(n int) int { return 4 * n }

// NoticesBytes returns the wire size of notices write notices spread over
// intervals distinct intervals.
func NoticesBytes(notices, intervals int) int {
	return notices*WriteNoticeBytes + intervals*IntervalHeaderBytes
}
