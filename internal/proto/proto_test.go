package proto

import "testing"

func TestStatsMsg(t *testing.T) {
	var s Stats
	s.Msg(CatLock, 100)
	s.Msg(CatLock, 50)
	s.Msg(CatMiss, 10)
	if s.Msgs[CatLock] != 2 || s.Bytes[CatLock] != 150 {
		t.Errorf("lock counters: %d msgs %d bytes", s.Msgs[CatLock], s.Bytes[CatLock])
	}
	if s.TotalMessages() != 3 || s.TotalBytes() != 160 {
		t.Errorf("totals: %d msgs %d bytes", s.TotalMessages(), s.TotalBytes())
	}
}

func TestStatsMsgN(t *testing.T) {
	var s Stats
	s.MsgN(CatBarrier, 6, 32)
	if s.Msgs[CatBarrier] != 6 || s.Bytes[CatBarrier] != 192 {
		t.Errorf("barrier counters: %d msgs %d bytes", s.Msgs[CatBarrier], s.Bytes[CatBarrier])
	}
}

func TestStatsAdd(t *testing.T) {
	var a, b Stats
	a.Msg(CatMiss, 10)
	a.AccessMisses = 1
	a.DiffsSent = 2
	b.Msg(CatMiss, 20)
	b.AccessMisses = 3
	b.PagesSent = 4
	a.Add(&b)
	if a.Msgs[CatMiss] != 2 || a.Bytes[CatMiss] != 30 {
		t.Errorf("merged miss counters: %d msgs %d bytes", a.Msgs[CatMiss], a.Bytes[CatMiss])
	}
	if a.AccessMisses != 4 || a.DiffsSent != 2 || a.PagesSent != 4 {
		t.Errorf("merged event counters: %+v", a)
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		CatMiss: "miss", CatLock: "lock", CatUnlock: "unlock", CatBarrier: "barrier",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if Category(99).String() != "other" {
		t.Error("unknown category name")
	}
}

func TestSizeModel(t *testing.T) {
	if VCBytes(16) != 64 {
		t.Errorf("VCBytes(16) = %d", VCBytes(16))
	}
	// 3 notices over 2 intervals: 3*12 + 2*8.
	if NoticesBytes(3, 2) != 52 {
		t.Errorf("NoticesBytes(3,2) = %d", NoticesBytes(3, 2))
	}
	if NoticesBytes(0, 0) != 0 {
		t.Errorf("NoticesBytes(0,0) = %d", NoticesBytes(0, 0))
	}
}
