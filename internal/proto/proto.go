// Package proto defines the interface every consistency-protocol engine
// implements for the trace-driven simulator, the statistics they report
// (message and data counts, the paper's two metrics), and the single
// message-size model shared by the simulator and the live runtime.
package proto

import (
	"repro/internal/mem"
)

// Protocol is a simulated consistency protocol. The simulator feeds it one
// event at a time in global trace order; the engine maintains full protocol
// state (caches, directories, interval logs) and accounts every message it
// would send on a real interconnect.
//
// Implementations: lazy invalidate and lazy update (internal/core), eager
// invalidate and eager update (internal/eager), and the sequentially
// consistent Ivy baseline (internal/ivy).
type Protocol interface {
	// Name returns the protocol's short name ("LI", "LU", "EI", "EU", ...).
	Name() string
	// Read simulates an ordinary read of [addr, addr+size) by processor p.
	Read(p mem.ProcID, addr mem.Addr, size int)
	// Write simulates an ordinary write of [addr, addr+size) by processor p.
	Write(p mem.ProcID, addr mem.Addr, size int)
	// Acquire simulates processor p acquiring lock l. The simulator
	// guarantees the lock is free (trace legality).
	Acquire(p mem.ProcID, l mem.LockID)
	// Release simulates processor p releasing lock l.
	Release(p mem.ProcID, l mem.LockID)
	// Barrier simulates one complete barrier episode: arrivals lists every
	// processor in arrival order (last entry is the last to arrive).
	Barrier(arrivals []mem.ProcID, b mem.BarrierID)
	// Stats returns the accumulated statistics. The returned pointer stays
	// live; the simulator reads it after the replay completes.
	Stats() *Stats
}

// Category classifies messages by the shared-memory operation that caused
// them, matching the columns of the paper's Table 1.
type Category int

const (
	// CatMiss covers messages caused by access misses (page and diff
	// fetches).
	CatMiss Category = iota
	// CatLock covers lock find/transfer messages and any consistency
	// traffic performed at acquire time (lazy write notices, LU diff
	// collection).
	CatLock
	// CatUnlock covers release-time traffic (eager invalidations/updates).
	CatUnlock
	// CatBarrier covers barrier arrival/exit messages and barrier-time
	// consistency traffic (updates, invalidation reconciliation).
	CatBarrier
	// NumCategories is the number of message categories.
	NumCategories
)

// String returns the category's column name.
func (c Category) String() string {
	switch c {
	case CatMiss:
		return "miss"
	case CatLock:
		return "lock"
	case CatUnlock:
		return "unlock"
	case CatBarrier:
		return "barrier"
	default:
		return "other"
	}
}

// Stats accumulates the two metrics of the paper's evaluation — message
// count and data volume — broken down by operation category, plus protocol
// event counters used by the tests to validate Table 1's cost formulas.
type Stats struct {
	Protocol string

	// Msgs and Bytes count messages and wire bytes per category.
	Msgs  [NumCategories]int64
	Bytes [NumCategories]int64

	// Event counters.
	Reads, Writes       int64
	Acquires, Releases  int64
	Barriers            int64
	AccessMisses        int64 // misses needing remote traffic
	ColdMisses          int64 // first-ever access with no remote version
	DiffsSent           int64
	DiffBytes           int64
	PagesSent           int64
	PageBytes           int64
	WriteNoticesSent    int64
	InvalidationsSent   int64
	IntervalsCreated    int64
	DiffRequestsBatched int64 // diff fetches answered by one proc for >1 interval
}

// Msg records one message of wire size bytes in category cat.
func (s *Stats) Msg(cat Category, bytes int) {
	s.Msgs[cat]++
	s.Bytes[cat] += int64(bytes)
}

// MsgN records n messages each of wire size bytes in category cat.
func (s *Stats) MsgN(cat Category, n, bytes int) {
	s.Msgs[cat] += int64(n)
	s.Bytes[cat] += int64(n) * int64(bytes)
}

// TotalMessages returns the total message count across categories.
func (s *Stats) TotalMessages() int64 {
	var t int64
	for _, m := range s.Msgs {
		t += m
	}
	return t
}

// TotalBytes returns the total wire bytes across categories.
func (s *Stats) TotalBytes() int64 {
	var t int64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// Add accumulates o into s (for aggregating shard results).
func (s *Stats) Add(o *Stats) {
	for c := Category(0); c < NumCategories; c++ {
		s.Msgs[c] += o.Msgs[c]
		s.Bytes[c] += o.Bytes[c]
	}
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Acquires += o.Acquires
	s.Releases += o.Releases
	s.Barriers += o.Barriers
	s.AccessMisses += o.AccessMisses
	s.ColdMisses += o.ColdMisses
	s.DiffsSent += o.DiffsSent
	s.DiffBytes += o.DiffBytes
	s.PagesSent += o.PagesSent
	s.PageBytes += o.PageBytes
	s.WriteNoticesSent += o.WriteNoticesSent
	s.InvalidationsSent += o.InvalidationsSent
	s.IntervalsCreated += o.IntervalsCreated
	s.DiffRequestsBatched += o.DiffRequestsBatched
}
