package proto

// Options toggles ablations of the design choices the paper motivates.
// The defaults (all false) are the protocols as published; each flag
// removes one optimization so benchmarks can quantify its contribution.
type Options struct {
	// NoPiggyback disables carrying write notices on lock-grant and
	// barrier messages (§4.2, Figure 4): notices travel in a separate
	// message + ack pair instead.
	NoPiggyback bool

	// NoDiffs disables diffs (§4.3): whole pages travel wherever a diff
	// would have, as in single-writer page-shipping protocols.
	NoDiffs bool

	// ExclusiveWriter disables the multiple-writer protocol (§4.3.1):
	// a processor must invalidate all other copies before writing a page,
	// as in DASH's exclusive-writer scheme, making false sharing
	// ping-pong.
	ExclusiveWriter bool
}
