package wire

import (
	"encoding/binary"
	"testing"
)

// Codec micro-benches: CI runs these into BENCH_wire.json to track the
// hot-path cost of the pooled append encoder and the batch framing
// (encode/decode per message, batched vs unbatched).

// benchMsg is a representative mid-size frame: a lock grant with a
// clock, two interval records and a diff — the LU hot-path message.
func benchMsg() *Msg {
	msgs := sampleMsgs()
	return msgs[1]
}

func BenchmarkWireEncodeAppendPooled(b *testing.B) {
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := m.EncodeAppend(GetBuf())
		PutBuf(buf)
	}
}

func BenchmarkWireEncodeAppendFresh(b *testing.B) {
	// The retired Msg.Encode allocated a fresh slice per message; this is
	// that cost, for comparison against the pooled path.
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.EncodeAppend(nil)
	}
}

func BenchmarkWireDecode(b *testing.B) {
	enc := benchMsg().EncodeAppend(nil)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeBatched: eight messages coalesced into one batch
// frame in one pooled buffer — the outbox flush path.
func BenchmarkWireEncodeBatched(b *testing.B) {
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := AppendBatchHeader(GetBuf(), 8)
		for k := 0; k < 8; k++ {
			start := len(buf)
			buf = append(buf, 0, 0, 0, 0)
			buf = m.EncodeAppend(buf)
			binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
		}
		PutBuf(buf)
	}
}

// BenchmarkWireEncodeUnbatched: the same eight messages as eight
// individually pooled frames — what the batched path replaces.
func BenchmarkWireEncodeUnbatched(b *testing.B) {
	m := benchMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			buf := m.EncodeAppend(GetBuf())
			PutBuf(buf)
		}
	}
}

func BenchmarkWireDecodeBatched(b *testing.B) {
	enc := appendBatch(nil, sampleMsgs()...)
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(enc); err != nil {
			b.Fatal(err)
		}
	}
}
