package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
)

func mkDiff(t *testing.T, size int, writes ...int) *page.Diff {
	t.Helper()
	base := make([]byte, size)
	tw := page.NewTwin(base)
	for _, off := range writes {
		base[off] = 0xAB
	}
	d, err := page.MakeDiff(tw, base)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func roundTrip(t *testing.T, m *Msg) *Msg {
	t.Helper()
	got, err := Decode(m.EncodeAppend(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestHeaderRoundTrip(t *testing.T) {
	m := &Msg{Kind: KLockReq, Seq: 12345, A: 7, B: -3}
	got := roundTrip(t, m)
	if got.Kind != KLockReq || got.Seq != 12345 || got.A != 7 || got.B != -3 {
		t.Fatalf("header mismatch: %+v", got)
	}
}

func TestVCRoundTrip(t *testing.T) {
	m := &Msg{Kind: KLockGrant, A: 1, VC: vc.VC{0, -1, 5, 2}}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.VC, m.VC) {
		t.Fatalf("VC = %v, want %v", got.VC, m.VC)
	}
}

func TestNilVCStaysNil(t *testing.T) {
	m := &Msg{Kind: KPageReq, A: 3}
	if got := roundTrip(t, m); got.VC != nil {
		t.Fatalf("VC = %v, want nil", got.VC)
	}
}

func TestIntervalsRoundTrip(t *testing.T) {
	m := &Msg{
		Kind: KBarrierArrive,
		A:    0,
		B:    2,
		VC:   vc.VC{1, 2},
		Intervals: []IntervalRec{
			{Proc: 0, Index: 1, VC: vc.VC{1, -1}, Pages: []mem.PageID{3, 9}},
			{Proc: 1, Index: 0, VC: vc.VC{0, 0}, Pages: nil},
		},
	}
	got := roundTrip(t, m)
	if len(got.Intervals) != 2 {
		t.Fatalf("intervals = %d", len(got.Intervals))
	}
	if got.Intervals[0].Proc != 0 || got.Intervals[0].Index != 1 ||
		!reflect.DeepEqual(got.Intervals[0].VC, vc.VC{1, -1}) ||
		!reflect.DeepEqual(got.Intervals[0].Pages, []mem.PageID{3, 9}) {
		t.Fatalf("interval 0 = %+v", got.Intervals[0])
	}
	if len(got.Intervals[1].Pages) != 0 {
		t.Fatalf("interval 1 pages = %v", got.Intervals[1].Pages)
	}
}

func TestDiffsRoundTrip(t *testing.T) {
	d := mkDiff(t, 64, 4, 5, 20)
	m := &Msg{
		Kind:  KDiffResp,
		Diffs: []DiffRec{{Page: 5, Proc: 2, Index: 3, Diff: d}},
	}
	got := roundTrip(t, m)
	if len(got.Diffs) != 1 {
		t.Fatalf("diffs = %d", len(got.Diffs))
	}
	rd := got.Diffs[0]
	if rd.Page != 5 || rd.Proc != 2 || rd.Index != 3 {
		t.Fatalf("diff rec = %+v", rd)
	}
	// The decoded diff must reproduce the same modification.
	a := make([]byte, 64)
	b := make([]byte, 64)
	if err := d.Apply(a); err != nil {
		t.Fatal(err)
	}
	if err := rd.Diff.Apply(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("decoded diff applies differently")
	}
}

// Encoding a diff whose wire body is cached must produce bytes identical
// to the direct encode path — the cache is a pure reuse, not a format.
func TestCachedWireBodyEncodesIdentically(t *testing.T) {
	mk := func() *Msg {
		d := mkDiff(t, 64, 4, 5, 20, 33)
		return &Msg{Kind: KDiffResp, Seq: 9, A: 1,
			Diffs: []DiffRec{{Page: 5, Proc: 2, Index: 3, Diff: d}}}
	}
	fresh := mk()
	cached := mk()
	cached.Diffs[0].Diff.EnsureWireBody()
	a := fresh.EncodeAppend(nil)
	b := cached.EncodeAppend(nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached-body encode differs:\n direct %x\n cached %x", a, b)
	}
	// And again from the same cached diff, to cover the repeat-serve path.
	if c := cached.EncodeAppend(nil); !bytes.Equal(b, c) {
		t.Fatal("second cached encode differs from first")
	}
}

func TestWantsAndDataRoundTrip(t *testing.T) {
	m := &Msg{
		Kind:  KDiffReq,
		Wants: []Want{{Page: 1, Proc: 2, Index: 3}, {Page: 4, Proc: 5, Index: 6}},
		Data:  []byte{1, 2, 3, 4, 5},
	}
	got := roundTrip(t, m)
	if !reflect.DeepEqual(got.Wants, m.Wants) {
		t.Fatalf("wants = %v", got.Wants)
	}
	if !reflect.DeepEqual(got.Data, m.Data) {
		t.Fatalf("data = %v", got.Data)
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	d := mkDiff(t, 64, 3, 17)
	m := &Msg{
		Kind: KLockGrant, Seq: 44, A: 2,
		Sections: []Section{
			{Mode: 1, VC: vc.VC{5, 6},
				Intervals: []IntervalRec{{Proc: 1, Index: 4, VC: vc.VC{0, 4}, Pages: []mem.PageID{2, 3}}},
				Diffs:     []DiffRec{{Page: 2, Proc: 1, Index: 4, Diff: d}}},
			{Mode: 4}, // an engine with nothing to say still owns its slot
		},
	}
	got := roundTrip(t, m)
	if len(got.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(got.Sections))
	}
	s := got.Sections[0]
	if s.Mode != 1 || !reflect.DeepEqual(s.VC, vc.VC{5, 6}) ||
		len(s.Intervals) != 1 || len(s.Diffs) != 1 {
		t.Fatalf("section 0 = %+v", s)
	}
	if !reflect.DeepEqual(s.Intervals[0].Pages, []mem.PageID{2, 3}) {
		t.Fatalf("section 0 interval pages = %v", s.Intervals[0].Pages)
	}
	if got.Sections[1].Mode != 4 || got.Sections[1].VC != nil ||
		got.Sections[1].Intervals != nil || got.Sections[1].Diffs != nil {
		t.Fatalf("empty section = %+v", got.Sections[1])
	}
	// Byte-level canonicality, including the empty trailing section.
	enc := m.EncodeAppend(nil)
	if !bytes.Equal(got.EncodeAppend(nil), enc) {
		t.Fatal("re-encoding a sectioned message changed bytes")
	}
	// A message without sections must not grow: the flag gates the block.
	plain := &Msg{Kind: KPageReq}
	if gotLen := len(plain.EncodeAppend(nil)); gotLen != 24+16 {
		t.Errorf("sectionless message = %d bytes, want 40", gotLen)
	}
	if rt := roundTrip(t, plain); rt.Sections != nil {
		t.Errorf("sectionless message decoded with Sections = %v", rt.Sections)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),               // short header
		make([]byte, 24),               // kind 0
		append((&Msg{Kind: KLockReq}).EncodeAppend(nil), 0xff), // trailing bytes
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncations of a real message must all fail cleanly.
	full := (&Msg{
		Kind: KLockGrant, VC: vc.VC{1, 2},
		Intervals: []IntervalRec{{Proc: 0, Index: 0, VC: vc.VC{0, 0}, Pages: []mem.PageID{1}}},
	}).EncodeAppend(nil)
	for cut := 24; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestKindString(t *testing.T) {
	if KLockGrant.String() != "lockgrant" {
		t.Error("kind name wrong")
	}
	if Kind(999).String() != "Kind(999)" {
		t.Error("unknown kind name wrong")
	}
}

func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := &Msg{
			// KBatch and KCompressed are frame-level kinds Decode rejects.
			Kind: Kind(1 + r.Intn(int(KBatch)-1)),
			Seq:  r.Uint64(),
			A:    int32(r.Intn(1000) - 500),
			B:    int32(r.Intn(1000) - 500),
		}
		if r.Intn(2) == 0 {
			m.VC = make(vc.VC, n)
			for i := range m.VC {
				m.VC[i] = int32(r.Intn(10)) - 1
			}
		}
		for i := 0; i < r.Intn(3); i++ {
			iv := IntervalRec{Proc: mem.ProcID(r.Intn(n)), Index: int32(r.Intn(10))}
			iv.VC = make(vc.VC, n)
			for k := range iv.VC {
				iv.VC[k] = int32(r.Intn(10)) - 1
			}
			for k := 0; k < r.Intn(4); k++ {
				iv.Pages = append(iv.Pages, mem.PageID(r.Intn(32)))
			}
			m.Intervals = append(m.Intervals, iv)
		}
		for i := 0; i < r.Intn(3); i++ {
			m.Wants = append(m.Wants, Want{
				Page: mem.PageID(r.Intn(32)), Proc: mem.ProcID(r.Intn(n)), Index: int32(r.Intn(10)),
			})
		}
		if r.Intn(2) == 0 {
			m.Data = make([]byte, r.Intn(256))
			r.Read(m.Data)
		}
		got, err := Decode(m.EncodeAppend(nil))
		if err != nil {
			return false
		}
		if got.Kind != m.Kind || got.Seq != m.Seq || got.A != m.A || got.B != m.B {
			return false
		}
		if !reflect.DeepEqual(got.VC, m.VC) {
			return false
		}
		if len(got.Intervals) != len(m.Intervals) || len(got.Wants) != len(m.Wants) {
			return false
		}
		for i := range m.Intervals {
			if !reflect.DeepEqual(got.Intervals[i], m.Intervals[i]) &&
				!(len(m.Intervals[i].Pages) == 0 && len(got.Intervals[i].Pages) == 0 &&
					got.Intervals[i].Proc == m.Intervals[i].Proc &&
					got.Intervals[i].Index == m.Intervals[i].Index &&
					reflect.DeepEqual(got.Intervals[i].VC, m.Intervals[i].VC)) {
				return false
			}
		}
		if !reflect.DeepEqual(got.Wants, m.Wants) {
			return false
		}
		if len(m.Data) == 0 {
			return got.Data == nil || len(got.Data) == 0
		}
		return reflect.DeepEqual(got.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHeaderSizeMatchesModel(t *testing.T) {
	// An empty message carries exactly the modeled header plus the four
	// empty section counts (16 bytes): the runtime's fixed framing.
	m := &Msg{Kind: KPageReq}
	if got := len(m.EncodeAppend(nil)); got != 24+16 {
		t.Errorf("empty message = %d bytes, want 40", got)
	}
}

// appendBatch builds a batch frame the way the runtime's outbox does:
// header, then each message length-prefixed, all appended into one
// buffer.
func appendBatch(buf []byte, msgs ...*Msg) []byte {
	buf = AppendBatchHeader(buf, len(msgs))
	for _, m := range msgs {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = m.EncodeAppend(buf)
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	}
	return buf
}

func TestBatchRoundTrip(t *testing.T) {
	msgs := []*Msg{
		{Kind: KLockReq, Seq: 1, A: 3, B: 2},
		{Kind: KDiffReq, Seq: 2, A: 1, Wants: []Want{{Page: 4, Proc: 1, Index: 2}}},
		{Kind: KPageResp, Seq: 3, A: 9, VC: vc.VC{1, 2}, Data: []byte{5, 6, 7}},
	}
	b := appendBatch(GetBuf(), msgs...)
	if !IsBatch(b) {
		t.Fatal("batch frame not recognized")
	}
	got, err := DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i, m := range msgs {
		if !bytes.Equal(got[i].EncodeAppend(nil), m.EncodeAppend(nil)) {
			t.Errorf("batched message %d changed across the codec", i)
		}
	}
	PutBuf(b)
}

func TestEncodeAppendComposes(t *testing.T) {
	// Appending into a shared buffer yields exactly the standalone
	// encodings back to back — the property the outbox batch builder and
	// the pooled single-frame path both rely on.
	a := &Msg{Kind: KLockReq, Seq: 1, A: 2, B: 3}
	b := &Msg{Kind: KInval, Seq: 4, A: 5}
	ae, be := a.EncodeAppend(nil), b.EncodeAppend(nil)
	joint := b.EncodeAppend(a.EncodeAppend(GetBuf()))
	if !bytes.Equal(joint, append(append([]byte(nil), ae...), be...)) {
		t.Fatal("EncodeAppend into a shared buffer diverges from standalone encodings")
	}
	PutBuf(joint)
}

func TestBufPoolRecycles(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned %d-byte buffer, want empty", len(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	// Oversized and zero-capacity buffers must be dropped, not pooled.
	PutBuf(nil)
	PutBuf(make([]byte, maxPooledBuf+1))
	if got := GetBuf(); len(got) != 0 {
		t.Fatalf("pooled buffer came back %d bytes long", len(got))
	}
}
