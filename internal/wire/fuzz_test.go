package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
)

// Decode hardening: frames now arrive from real sockets (the TCP
// transport), so every malformed prefix a peer — or anything that dials
// the listener — can produce must fail cleanly: an error, never a panic,
// and never an allocation sized by a hostile count.

// sampleMsgs covers every payload section for seeding and table tests.
func sampleMsgs() []*Msg {
	diff, err := page.DiffFromRuns(
		[]page.Run{{Off: 0, Len: 4}, {Off: 64, Len: 2}},
		[][]byte{{1, 2, 3, 4}, {9, 9}},
	)
	if err != nil {
		panic(err)
	}
	return []*Msg{
		{Kind: KLockReq, Seq: 7, A: 3, B: 1},
		{Kind: KLockGrant, Seq: 8, A: 3, VC: vc.VC{1, 2, 3, 4},
			Intervals: []IntervalRec{
				{Proc: 2, Index: 5, VC: vc.VC{0, 0, 5, 0}, Pages: []mem.PageID{1, 2, 9}},
				{Proc: 0, Index: 1, VC: vc.VC{2, 0, 0, 0}, Pages: nil},
			}},
		{Kind: KDiffReq, Seq: 9, A: 1, Wants: []Want{{Page: 4, Proc: 1, Index: 2}}},
		{Kind: KDiffResp, Seq: 9, Diffs: []DiffRec{{Page: 4, Proc: 1, Index: 2, Diff: diff}}},
		{Kind: KPageResp, Seq: 10, A: 4, Data: bytes.Repeat([]byte{0xab}, 128)},
		{Kind: KBarrierArrive, Seq: 11, A: 0, B: 2, VC: vc.VC{9, 9, 9, 9}},
		// Mode-tagged sections: a mixed-mode lock grant carrying two
		// engines' consistency payloads side by side.
		{Kind: KLockGrant, Seq: 12, A: 3, Sections: []Section{
			{Mode: 0, VC: vc.VC{1, 2, 3, 4},
				Intervals: []IntervalRec{{Proc: 1, Index: 2, VC: vc.VC{0, 2, 0, 0}, Pages: []mem.PageID{7}}}},
			{Mode: 1, VC: vc.VC{4, 3, 2, 1},
				Diffs: []DiffRec{{Page: 7, Proc: 1, Index: 2, Diff: diff}}},
		}},
		{Kind: KBarrierArrive, Seq: 13, A: 0, B: 1, Data: []byte{1, 2, 3},
			Sections: []Section{{Mode: 4}}},
	}
}

// TestDecodeMalformed: the table of hostile and truncated inputs the
// socket path must reject with a descriptive error.
func TestDecodeMalformed(t *testing.T) {
	grant := sampleMsgs()[1].EncodeAppend(nil)
	pageResp := sampleMsgs()[4].EncodeAppend(nil)
	diffResp := sampleMsgs()[3].EncodeAppend(nil)
	secGrant := sampleMsgs()[6].EncodeAppend(nil)

	corrupt := func(b []byte, off int, v uint32) []byte {
		c := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(c[off:], v)
		return c
	}
	corruptFlags := func(b []byte, bits uint32) []byte {
		c := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(c[20:], binary.LittleEndian.Uint32(c[20:])|bits)
		return c
	}

	cases := []struct {
		name string
		in   []byte
		want string // error substring
	}{
		{"empty", nil, "shorter than header"},
		{"short header", make([]byte, headerBytes-1), "shorter than header"},
		{"kind zero", make([]byte, headerBytes), "unknown message kind"},
		{"kind out of range", corrupt(make([]byte, headerBytes+4), 0, 999), "unknown message kind"},
		{"truncated after header", grant[:headerBytes], "truncated"},
		{"truncated mid-clock", grant[:headerBytes+6], "truncated"},
		{"truncated mid-intervals", grant[:len(grant)-7], "truncated"},
		{"trailing garbage", append(append([]byte(nil), grant...), 0xff), "trailing"},
		// Hostile counts: each claims far more items than the frame holds.
		{"hostile clock count", corrupt(grant, headerBytes, 1<<30), "implausible clock count"},
		{"negative clock count", corrupt(grant, headerBytes, 0xffffffff), "implausible clock count"},
		{"hostile interval count", corrupt(grant, headerBytes+4+4*4, 1<<24), "implausible interval count"},
		{"hostile data count", corrupt(pageResp[:len(pageResp)-128], len(pageResp)-132, 1<<31-1), "implausible data count"},
		{"hostile run count", corrupt(diffResp, headerBytes+4+4+12, 1<<26), "implausible run count"},
		{"negative run offset", corrupt(diffResp, headerBytes+4+4+12+4, 0x80000000), "negative run offset"},
		{"negative run length", corrupt(diffResp, headerBytes+4+4+12+4+4, 0x80000000), "truncated payload"},
		// Mode-tagged sections: forged header flags, hostile section
		// counts, out-of-range mode ids, truncations inside a section.
		{"unknown flag bits", corruptFlags(grant, 0x10), "unknown header flag bits"},
		// The sectioned grant carries no top-level VC, so its four empty
		// flat-section counts put the section count at headerBytes+16.
		{"hostile section count", corrupt(secGrant, headerBytes+16, 1<<28), "implausible section count"},
		{"negative section count", corrupt(secGrant, headerBytes+16, 0xffffffff), "implausible section count"},
		{"hostile section mode", corrupt(secGrant, headerBytes+20, 4096), "implausible section mode"},
		{"negative section mode", corrupt(secGrant, headerBytes+20, 0x80000000), "implausible section mode"},
		{"hostile section clock count", corrupt(secGrant, headerBytes+24, 1<<20), "implausible section clock count"},
		{"truncated mid-section", secGrant[:len(secGrant)-5], "truncated"},
		{"section flag without payload", corruptFlags(grant[:headerBytes+4+4*4+12], 0x2), "implausible"},
		{"trailing bytes after sections", append(append([]byte(nil), secGrant...), 0xcc), "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Decode(tc.in)
			if err == nil {
				t.Fatalf("decoded %v from malformed input", m.Kind)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDecodeBatchMalformed: the hostile-input table for batch frames —
// every way a batch header or sub-frame can lie about its contents must
// be rejected with a descriptive error, before any allocation sized by
// the lie.
func TestDecodeBatchMalformed(t *testing.T) {
	sane := appendBatch(nil, sampleMsgs()[0], sampleMsgs()[2])
	nested := appendBatch(nil, sampleMsgs()[0], sampleMsgs()[2])
	nested = appendBatchRaw(nil, [][]byte{sampleMsgs()[0].EncodeAppend(nil), nested})

	corrupt := func(b []byte, off int, v uint32) []byte {
		c := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(c[off:], v)
		return c
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"short header", sane[:headerBytes-1], "shorter than header"},
		{"not a batch", sampleMsgs()[0].EncodeAppend(nil), "not a batch"},
		{"count zero", corrupt(sane, 12, 0), "implausible batch count"},
		{"count one", corrupt(sane, 12, 1), "implausible batch count"},
		// The hostile header: 2^30 claimed sub-messages in a tiny frame
		// must fail the remaining-bytes bound, never size an allocation.
		{"hostile count", corrupt(sane, 12, 1<<30), "implausible batch count"},
		{"negative count", corrupt(sane, 12, 0xffffffff), "implausible batch count"},
		{"nonzero reserved", corrupt(sane, 4, 7), "non-zero reserved"},
		{"truncated sub-frame", sane[:len(sane)-3], "implausible batched frame length"},
		{"sub-frame length overrun", corrupt(sane, headerBytes, 1 << 28), "implausible batched frame length"},
		{"negative sub-frame length", corrupt(sane, headerBytes, 0xfffffff0), "implausible batched frame length"},
		{"garbage sub-message", corrupt(sane, headerBytes+4, 999), "batched message 0"},
		{"nested batch", nested, "batch frame in message position"},
		{"trailing bytes", append(append([]byte(nil), sane...), 0xff), "trailing bytes after batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msgs, err := DecodeBatch(tc.in)
			if err == nil {
				t.Fatalf("decoded %d messages from malformed batch", len(msgs))
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	// Decode must also refuse a whole batch frame in message position.
	if _, err := Decode(sane); err == nil || !strings.Contains(err.Error(), "batch frame in message position") {
		t.Errorf("Decode(batch) = %v, want batch-in-message-position error", err)
	}
}

// appendBatchRaw frames pre-encoded payloads as a batch without
// re-encoding them (for building hostile nested inputs).
func appendBatchRaw(buf []byte, subs [][]byte) []byte {
	buf = AppendBatchHeader(buf, len(subs))
	for _, sub := range subs {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = append(buf, sub...)
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(sub)))
	}
	return buf
}

// TestDecodeHostileCountAllocation: a tiny frame claiming 2^24 interval
// pages must be rejected by the remaining-bytes bound, not by attempting
// the allocation (this fails fast under the fuzzer's memory limits too).
func TestDecodeHostileCountAllocation(t *testing.T) {
	var b []byte
	var h [headerBytes]byte
	binary.LittleEndian.PutUint16(h[0:], uint16(KLockGrant))
	b = append(b, h[:]...)
	b = put32(b, 1)           // one interval
	b = put32(b, 0)           // proc
	b = put32(b, 0)           // index
	b = put32(b, 0)           // clock len
	b = put32(b, 1<<24-1)     // hostile page count
	b = append(b, 0, 0, 0, 0) // four bytes of "pages"
	_, err := Decode(b)
	if err == nil || !strings.Contains(err.Error(), "implausible interval page count") {
		t.Fatalf("err = %v, want implausible interval page count", err)
	}
}

// TestEncodeDecodeRoundTrip: every sample survives the codec unchanged
// at the byte level (the canonical-encoding property the fuzzer checks
// for arbitrary accepted inputs).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		enc := m.EncodeAppend(nil)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if !bytes.Equal(dec.EncodeAppend(nil), enc) {
			t.Errorf("%v: re-encoding changed bytes", m.Kind)
		}
	}
}

// FuzzDecode: Decode must never panic, and anything it accepts must
// re-encode into bytes Decode accepts again (a stable codec: accepted
// input implies a canonical representation).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(m.EncodeAppend(nil))
	}
	// Truncations and corruptions of a rich message as extra seeds.
	grant := sampleMsgs()[1].EncodeAppend(nil)
	f.Add(grant[:headerBytes])
	f.Add(grant[:len(grant)/2])
	f.Add(append(append([]byte(nil), grant...), 0))
	// Batch frames: a sane two-message batch and damaged variants, so the
	// fuzzer explores the batch framing too.
	batch := appendBatch(nil, sampleMsgs()[0], sampleMsgs()[3])
	f.Add(batch)
	f.Add(batch[:len(batch)-2])
	f.Add(append(append([]byte(nil), batch...), 0xfe))
	// Compressed frames: a compressed single and a compressed batch (the
	// zero pages guarantee the strictly-smaller gate passes) plus damaged
	// variants, so the fuzzer explores the expansion path the dispatch
	// loop runs first.
	big := &Msg{Kind: KPageResp, Seq: 12, A: 1, Data: make([]byte, 1024)}
	for _, frame := range [][]byte{big.EncodeAppend(nil), appendBatch(nil, sampleMsgs()[0], big)} {
		z, ok := Compress(frame)
		if !ok {
			f.Fatal("seed frame did not compress")
		}
		f.Add(append([]byte(nil), z...))
		f.Add(append([]byte(nil), z[:len(z)-3]...))
		flipped := append([]byte(nil), z...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
		PutBuf(z)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		if IsCompressed(b) {
			// Compressed frames expand first (the dispatch loop's routing):
			// Expand must never panic, and an accepted expansion is a
			// non-compressed frame that routes like any other.
			inner, err := Expand(b)
			if err != nil {
				return // rejected: fine, as long as it did not panic
			}
			if IsCompressed(inner) {
				t.Fatal("Expand returned a nested compressed frame")
			}
			b = append([]byte(nil), inner...)
			PutBuf(inner)
		}
		if IsBatch(b) {
			// Batch frames go through DecodeBatch (the dispatch loop's
			// routing): it must never panic, and anything it accepts must
			// rebuild into a batch it accepts again with a stable encoding
			// (the same canonical-form property as single frames).
			msgs, err := DecodeBatch(b)
			if err != nil {
				return
			}
			rebuild := func(ms []*Msg) []byte {
				re := AppendBatchHeader(nil, len(ms))
				for _, m := range ms {
					start := len(re)
					re = append(re, 0, 0, 0, 0)
					re = m.EncodeAppend(re)
					binary.LittleEndian.PutUint32(re[start:], uint32(len(re)-start-4))
				}
				return re
			}
			re := rebuild(msgs)
			msgs2, err := DecodeBatch(re)
			if err != nil {
				t.Fatalf("re-decoding own batch encoding failed: %v", err)
			}
			if !bytes.Equal(rebuild(msgs2), re) {
				t.Fatal("batch encoding is not a fixed point")
			}
			return
		}
		m, err := Decode(b)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		enc := m.EncodeAppend(nil)
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(m2.EncodeAppend(nil), enc) {
			t.Fatal("encoding is not a fixed point")
		}
	})
}
