package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
)

// Decode hardening: frames now arrive from real sockets (the TCP
// transport), so every malformed prefix a peer — or anything that dials
// the listener — can produce must fail cleanly: an error, never a panic,
// and never an allocation sized by a hostile count.

// sampleMsgs covers every payload section for seeding and table tests.
func sampleMsgs() []*Msg {
	diff, err := page.DiffFromRuns(
		[]page.Run{{Off: 0, Len: 4}, {Off: 64, Len: 2}},
		[][]byte{{1, 2, 3, 4}, {9, 9}},
	)
	if err != nil {
		panic(err)
	}
	return []*Msg{
		{Kind: KLockReq, Seq: 7, A: 3, B: 1},
		{Kind: KLockGrant, Seq: 8, A: 3, VC: vc.VC{1, 2, 3, 4},
			Intervals: []IntervalRec{
				{Proc: 2, Index: 5, VC: vc.VC{0, 0, 5, 0}, Pages: []mem.PageID{1, 2, 9}},
				{Proc: 0, Index: 1, VC: vc.VC{2, 0, 0, 0}, Pages: nil},
			}},
		{Kind: KDiffReq, Seq: 9, A: 1, Wants: []Want{{Page: 4, Proc: 1, Index: 2}}},
		{Kind: KDiffResp, Seq: 9, Diffs: []DiffRec{{Page: 4, Proc: 1, Index: 2, Diff: diff}}},
		{Kind: KPageResp, Seq: 10, A: 4, Data: bytes.Repeat([]byte{0xab}, 128)},
		{Kind: KBarrierArrive, Seq: 11, A: 0, B: 2, VC: vc.VC{9, 9, 9, 9}},
	}
}

// TestDecodeMalformed: the table of hostile and truncated inputs the
// socket path must reject with a descriptive error.
func TestDecodeMalformed(t *testing.T) {
	grant := sampleMsgs()[1].Encode()
	pageResp := sampleMsgs()[4].Encode()
	diffResp := sampleMsgs()[3].Encode()

	corrupt := func(b []byte, off int, v uint32) []byte {
		c := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(c[off:], v)
		return c
	}

	cases := []struct {
		name string
		in   []byte
		want string // error substring
	}{
		{"empty", nil, "shorter than header"},
		{"short header", make([]byte, headerBytes-1), "shorter than header"},
		{"kind zero", make([]byte, headerBytes), "unknown message kind"},
		{"kind out of range", corrupt(make([]byte, headerBytes+4), 0, 999), "unknown message kind"},
		{"truncated after header", grant[:headerBytes], "truncated"},
		{"truncated mid-clock", grant[:headerBytes+6], "truncated"},
		{"truncated mid-intervals", grant[:len(grant)-7], "truncated"},
		{"trailing garbage", append(append([]byte(nil), grant...), 0xff), "trailing"},
		// Hostile counts: each claims far more items than the frame holds.
		{"hostile clock count", corrupt(grant, headerBytes, 1<<30), "implausible clock count"},
		{"negative clock count", corrupt(grant, headerBytes, 0xffffffff), "implausible clock count"},
		{"hostile interval count", corrupt(grant, headerBytes+4+4*4, 1<<24), "implausible interval count"},
		{"hostile data count", corrupt(pageResp[:len(pageResp)-128], len(pageResp)-132, 1<<31-1), "implausible data count"},
		{"hostile run count", corrupt(diffResp, headerBytes+4+4+12, 1<<26), "implausible run count"},
		{"negative run offset", corrupt(diffResp, headerBytes+4+4+12+4, 0x80000000), "negative run offset"},
		{"negative run length", corrupt(diffResp, headerBytes+4+4+12+4+4, 0x80000000), "truncated payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Decode(tc.in)
			if err == nil {
				t.Fatalf("decoded %v from malformed input", m.Kind)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDecodeHostileCountAllocation: a tiny frame claiming 2^24 interval
// pages must be rejected by the remaining-bytes bound, not by attempting
// the allocation (this fails fast under the fuzzer's memory limits too).
func TestDecodeHostileCountAllocation(t *testing.T) {
	var b []byte
	var h [headerBytes]byte
	binary.LittleEndian.PutUint16(h[0:], uint16(KLockGrant))
	b = append(b, h[:]...)
	b = put32(b, 1)           // one interval
	b = put32(b, 0)           // proc
	b = put32(b, 0)           // index
	b = put32(b, 0)           // clock len
	b = put32(b, 1<<24-1)     // hostile page count
	b = append(b, 0, 0, 0, 0) // four bytes of "pages"
	_, err := Decode(b)
	if err == nil || !strings.Contains(err.Error(), "implausible interval page count") {
		t.Fatalf("err = %v, want implausible interval page count", err)
	}
}

// TestEncodeDecodeRoundTrip: every sample survives the codec unchanged
// at the byte level (the canonical-encoding property the fuzzer checks
// for arbitrary accepted inputs).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		enc := m.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Errorf("%v: re-encoding changed bytes", m.Kind)
		}
	}
}

// FuzzDecode: Decode must never panic, and anything it accepts must
// re-encode into bytes Decode accepts again (a stable codec: accepted
// input implies a canonical representation).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(m.Encode())
	}
	// Truncations and corruptions of a rich message as extra seeds.
	grant := sampleMsgs()[1].Encode()
	f.Add(grant[:headerBytes])
	f.Add(grant[:len(grant)/2])
	f.Add(append(append([]byte(nil), grant...), 0))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		enc := m.Encode()
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !bytes.Equal(m2.Encode(), enc) {
			t.Fatal("encoding is not a fixed point")
		}
	})
}
