package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// Frame compression: Compress/Expand wrap a complete encoded frame in a
// KCompressed frame. The sender-side gate (strictly smaller or nothing)
// and the receiver-side hostility bounds (claimed length capped, exact
// inflation, no nesting) are the contract the outbox and dispatch loop
// rely on.

func compressibleFrame() []byte {
	return (&Msg{Kind: KPageResp, Seq: 5, A: 2, Data: make([]byte, 4096)}).EncodeAppend(nil)
}

// TestCompressRoundTrip: a compressible frame shrinks and expands back
// to the identical bytes.
func TestCompressRoundTrip(t *testing.T) {
	frame := compressibleFrame()
	z, ok := Compress(frame)
	if !ok {
		t.Fatal("zero-page frame did not compress")
	}
	if len(z) >= len(frame) {
		t.Fatalf("compressed frame is %d bytes, original %d — not strictly smaller", len(z), len(frame))
	}
	if !IsCompressed(z) {
		t.Fatal("Compress output is not a compressed frame")
	}
	out, err := Expand(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, frame) {
		t.Fatal("expanded frame differs from the original")
	}
}

// TestCompressIncompressibleSkipped: dense (random) page data cannot
// shrink, so Compress emits nothing — the frame rides uncompressed, and
// no sender ever pays inflation on the wire.
func TestCompressIncompressibleSkipped(t *testing.T) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(42)).Read(data)
	frame := (&Msg{Kind: KPageResp, Seq: 5, A: 2, Data: data}).EncodeAppend(nil)
	if z, ok := Compress(frame); ok {
		t.Fatalf("random page data compressed from %d to %d bytes", len(frame), len(z))
	}
}

// TestCompressBatchRoundTrip: a batch frame survives the compression
// wrapper too — the whole physical frame is the unit, not the messages.
func TestCompressBatchRoundTrip(t *testing.T) {
	batch := appendBatch(nil, sampleMsgs()[1], sampleMsgs()[4])
	z, ok := Compress(batch)
	if !ok {
		t.Fatal("batch frame did not compress")
	}
	out, err := Expand(z)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, batch) {
		t.Fatal("expanded batch differs from the original")
	}
	if _, err := DecodeBatch(out); err != nil {
		t.Fatalf("expanded batch does not decode: %v", err)
	}
}

// TestExpandRejectsHostile: every way a compressed frame can lie must
// fail with a descriptive error before any allocation sized by the lie.
func TestExpandRejectsHostile(t *testing.T) {
	frame := compressibleFrame()
	z, ok := Compress(frame)
	if !ok {
		t.Fatal("sample frame did not compress")
	}
	corrupt32 := func(b []byte, off int, v uint32) []byte {
		c := append([]byte(nil), b...)
		binary.LittleEndian.PutUint32(c[off:], v)
		return c
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"short header", z[:headerBytes-1], "shorter than header"},
		{"not compressed", frame, "is not compressed"},
		{"reserved field set", corrupt32(z, 4, 7), "non-zero reserved"},
		{"inner length below header", corrupt32(z, 12, headerBytes-1), "implausible compressed frame inner length"},
		{"inner length bomb", corrupt32(z, 12, MaxExpandedBytes+1), "implausible compressed frame inner length"},
		{"inner length undershoots stream", corrupt32(z, 12, headerBytes), "inflates past its claimed"},
		{"garbage stream", append(append([]byte(nil), z[:headerBytes]...), 0xff, 0xff, 0xff, 0xff), "compressed frame"},
		{"truncated stream", z[:len(z)-4], "compressed frame"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := Expand(tc.in)
			if err == nil {
				t.Fatalf("expanded %d bytes from hostile input", len(out))
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestExpandRejectsNested: a compressed frame whose inner frame is
// itself compressed is hostile by construction (the sender never nests)
// and must be rejected, not recursed into.
func TestExpandRejectsNested(t *testing.T) {
	inner, ok := Compress(compressibleFrame())
	if !ok {
		t.Fatal("sample frame did not compress")
	}
	// Force the outer wrapper even though the inner frame is dense:
	// build it by hand the way Compress would.
	padded := append(append([]byte(nil), inner...), make([]byte, 4096)...)
	outer, ok := Compress(padded)
	if !ok {
		t.Fatal("padded nested frame did not compress")
	}
	if _, err := Expand(outer); err == nil || !strings.Contains(err.Error(), "nested compressed frame") {
		t.Fatalf("err = %v, want nested-compressed-frame rejection", err)
	}
}
