// Package wire defines the on-the-wire message format of the live DSM
// runtime (internal/dsm): a fixed 24-byte header followed by kind-specific
// payload sections, encoded little-endian with explicit counts, so every
// byte the runtime sends through simnet is accounted and decodable.
//
// The trace-driven simulator sizes messages with the closed-form model in
// internal/proto; the runtime encodes real messages. The two agree on
// header, lock, page, barrier and diff payload sizes; runtime interval
// blocks additionally carry each interval's vector timestamp (4n bytes),
// which the closed-form model's receiver is assumed to reconstruct — the
// difference is measured and documented in EXPERIMENTS.md rather than
// hidden.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/proto"
	"repro/internal/vc"
)

// Kind identifies a runtime message type.
type Kind uint16

const (
	// KLockReq: requester -> lock manager. A/B = lock id, requester.
	KLockReq Kind = iota + 1
	// KLockFwd: manager -> last holder, same payload as KLockReq.
	KLockFwd
	// KLockGrant: holder -> requester, with clock, intervals and (LU)
	// piggybacked diffs. A = lock id.
	KLockGrant
	// KDiffReq: requester -> responder, listing wanted (page, interval)
	// diffs. A = requester.
	KDiffReq
	// KDiffResp: responder -> requester with the diffs.
	KDiffResp
	// KPageReq: requester -> page home. A/B = page id, requester.
	KPageReq
	// KPageResp: home -> requester with page contents and the applied
	// clock of the copy. A = page id.
	KPageResp
	// KBarrierArrive: node -> barrier master with clock and intervals.
	// A/B = barrier id, arriving node.
	KBarrierArrive
	// KBarrierExit: master -> node with merged clock and intervals.
	// A = barrier id.
	KBarrierExit
	// KGCReady: node -> master after validating its pages for log
	// truncation; KGCDone: master -> nodes to truncate. A = barrier id.
	KGCReady
	KGCDone

	// Kinds below serve the eager (EI/EU) and sequentially-consistent (SC)
	// engines, whose directories live at each page's home.

	// KFetch: home -> current owner, asking for a page's committed
	// contents on behalf of a requester. A = page id. Under SC the owner
	// downgrades its copy to read mode as it serves.
	KFetch
	// KFetchResp: owner -> home with the page contents.
	KFetchResp
	// KInval: home -> cacher, invalidating its copy. A = page id.
	KInval
	// KInvalAck: cacher -> home; under EI it carries the cacher's own
	// buffered modifications back as a diff (Munin's false-sharing
	// write-back), so they are not lost with the invalidated copy.
	KInvalAck
	// KUpdate: home -> cacher with a releaser's diff (EU). A = page id.
	KUpdate
	// KUpdateAck: cacher -> home after applying the update.
	KUpdateAck
	// KFlushReq: releaser -> page home at an eager release or barrier
	// flush point. A/B = page id, flusher; EU carries the diff. A
	// non-empty Data section flags that the flusher's local copy is
	// invalid, so the reply must carry a reconciliation base even if the
	// flusher is still in the copyset.
	KFlushReq
	// KFlushDone: home -> releaser once every other cacher was invalidated
	// (EI) or updated (EU): Diffs carries EI write-backs, Data carries a
	// reconciliation base when the flusher's own copy had been invalidated
	// by a concurrent flush of the same page.
	KFlushDone
	// KWriteReq: requester -> page home asking for exclusive write
	// ownership (SC). A/B = page id, requester.
	KWriteReq
	// KWriteResp: home -> requester granting ownership; Data carries the
	// page contents unless the requester already holds a current copy.
	KWriteResp
	// KReclassReady: node -> barrier master during an adaptive
	// reclassification epoch, signalling the node finished the current
	// migration phase; KReclassGo: master -> nodes releasing the next
	// phase. A/B = barrier id, arriving node (ready only). Two
	// ready/go rounds bracket a protocol re-route so no node resumes
	// application work before every node has flipped its mode table.
	KReclassReady
	KReclassGo

	// KBatch is a frame-level kind, not a protocol message: one batch
	// frame carries A count-prefixed sub-messages coalesced by the
	// sender's outbox for one destination. It appears only at the top of
	// a received payload (DecodeBatch); Decode rejects it in message
	// position, which also forbids nested batches.
	KBatch
	// KCompressed is a frame-level kind wrapping one complete inner frame
	// (a plain message or a batch) as a flate stream: a standard header
	// with A = the inner frame's exact byte length, followed by the
	// compressed bytes. Senders emit it only when the compressed form is
	// strictly smaller (see Compress); receivers expand it back to the
	// inner frame before routing (Expand). Nesting is rejected, as is the
	// kind in message position.
	KCompressed
	kindLimit
)

// NumKinds bounds Kind values (exclusive); per-kind counter arrays are
// indexed by Kind below NumKinds.
const NumKinds = int(kindLimit)

var kindNames = map[Kind]string{
	KLockReq: "lockreq", KLockFwd: "lockfwd", KLockGrant: "lockgrant",
	KDiffReq: "diffreq", KDiffResp: "diffresp",
	KPageReq: "pagereq", KPageResp: "pageresp",
	KBarrierArrive: "arrive", KBarrierExit: "exit",
	KGCReady: "gcready", KGCDone: "gcdone",
	KFetch: "fetch", KFetchResp: "fetchresp",
	KInval: "inval", KInvalAck: "invalack",
	KUpdate: "update", KUpdateAck: "updateack",
	KFlushReq: "flushreq", KFlushDone: "flushdone",
	KWriteReq: "writereq", KWriteResp: "writeresp",
	KReclassReady: "reclassready", KReclassGo: "reclassgo",
	KBatch: "batch", KCompressed: "compressed",
}

// IsResponse reports whether the kind answers an outstanding request and
// is routed to the requester's waiter by its Seq.
func (k Kind) IsResponse() bool {
	switch k {
	case KLockGrant, KDiffResp, KPageResp, KBarrierExit, KGCDone,
		KFetchResp, KInvalAck, KUpdateAck, KFlushDone, KWriteResp,
		KReclassGo:
		return true
	}
	return false
}

// String returns the kind's mnemonic.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint16(k))
}

// IntervalRec carries one interval's identity, timestamp and write
// notices (the pages it modified).
type IntervalRec struct {
	Proc  mem.ProcID
	Index int32
	VC    vc.VC
	Pages []mem.PageID
}

// DiffRec carries one interval's diff for one page.
type DiffRec struct {
	Page  mem.PageID
	Proc  mem.ProcID
	Index int32
	Diff  *page.Diff
}

// Want names one (page, interval) diff a requester needs.
type Want struct {
	Page  mem.PageID
	Proc  mem.ProcID
	Index int32
}

// Section is one protocol engine's consistency payload on a shared
// synchronization message. With per-page protocol routing several engines
// coexist in one node, and a lock grant or barrier message carries each
// resident engine's state — lazy write notices and clocks next to
// eager/SC traffic — as mode-tagged sections instead of the flat
// VC/Intervals/Diffs fields. Mode is the dsm-layer protocol id (small;
// the decoder bounds it at 255 and the dsm layer rejects ids it does not
// host, recorded-error-then-drop).
type Section struct {
	Mode      uint16
	VC        vc.VC
	Intervals []IntervalRec
	Diffs     []DiffRec
}

// Msg is a runtime protocol message. Only the fields relevant to Kind are
// encoded; see the Kind constants for field meanings of A and B.
type Msg struct {
	Kind Kind
	Seq  uint64 // request/response correlation
	A, B int32  // kind-specific scalars (lock/page/barrier id, requester)

	VC        vc.VC
	Intervals []IntervalRec
	Diffs     []DiffRec
	Wants     []Want
	Data      []byte    // page contents (KPageResp)
	Sections  []Section // per-engine payloads on shared sync messages
}

// header layout: kind(2) reserved(2) seq(8) a(4) b(4) counts(4) = 24 bytes
// where counts packs presence bits; section counts are encoded inline.
const headerBytes = proto.MsgHeaderBytes

// maxPooledBuf caps the capacity of buffers the pool retains: a frame
// that grew to carry an unusually large batch of page-sized diffs must
// not pin that memory for the process lifetime.
const maxPooledBuf = 1 << 20

// bufFree is a typed free list of frame buffers: a buffered channel
// whose ring buffer stores the []byte headers directly. The previous
// sync.Pool boxed each non-pointer Put into an interface, re-allocating
// a 24-byte slice header per recycled frame; the channel moves the
// header by value, so the steady state is genuinely zero-alloc. The
// slot count bounds how many idle buffers stay pinned; overflow is
// dropped for the GC, underflow falls back to a fresh allocation.
var bufFree = make(chan []byte, 512)

// GetBuf returns an empty frame buffer from the free list. Encode into
// it with EncodeAppend; hand it to the transport (which takes ownership
// on Send) or return it with PutBuf. Steady-state the payload bytes are
// never reallocated — buffers cycle sender -> transport -> receiver ->
// free list — and recycling itself allocates nothing.
func GetBuf() []byte {
	select {
	case b := <-bufFree:
		return b
	default:
		return make([]byte, 0, 512)
	}
}

// PutBuf returns a frame buffer to the free list. The caller must not
// touch b afterwards. Any byte slice may be recycled here (received
// payloads included, whatever allocated them); oversized buffers are
// dropped, as is everything beyond the free list's capacity.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	select {
	case bufFree <- b[:0]:
	default:
	}
}

// EncodeAppend appends the message's encoding to buf and returns the
// extended slice — the append-style encoder of the hot send path: with a
// pooled buffer (GetBuf) the steady state is zero-alloc, and several
// messages append into one buffer to form a batch frame. (The former
// Msg.Encode, which allocated a fresh uniquely-owned slice per message
// even for tiny acks, is retired in its favor.)
func (m *Msg) EncodeAppend(buf []byte) []byte {
	if need := m.encodedSizeHint(); cap(buf)-len(buf) < need {
		grown := make([]byte, len(buf), len(buf)+need)
		copy(grown, buf)
		buf = grown
	}
	var h [headerBytes]byte
	binary.LittleEndian.PutUint16(h[0:], uint16(m.Kind))
	binary.LittleEndian.PutUint64(h[4:], m.Seq)
	binary.LittleEndian.PutUint32(h[12:], uint32(m.A))
	binary.LittleEndian.PutUint32(h[16:], uint32(m.B))
	flags := uint32(0)
	if m.VC != nil {
		flags |= flagVC
	}
	if m.Sections != nil {
		flags |= flagSections
	}
	binary.LittleEndian.PutUint32(h[20:], flags)
	buf = append(buf, h[:]...)

	if m.VC != nil {
		buf = put32(buf, int32(len(m.VC)))
		for _, x := range m.VC {
			buf = put32(buf, x)
		}
	}
	buf = appendIntervalList(buf, m.Intervals)
	buf = appendDiffList(buf, m.Diffs)
	buf = put32(buf, int32(len(m.Wants)))
	for _, w := range m.Wants {
		buf = put32(buf, int32(w.Page))
		buf = put32(buf, int32(w.Proc))
		buf = put32(buf, w.Index)
	}
	buf = put32(buf, int32(len(m.Data)))
	buf = append(buf, m.Data...)
	if m.Sections != nil {
		buf = put32(buf, int32(len(m.Sections)))
		for _, s := range m.Sections {
			buf = put32(buf, int32(s.Mode))
			buf = put32(buf, int32(len(s.VC)))
			for _, x := range s.VC {
				buf = put32(buf, x)
			}
			buf = appendIntervalList(buf, s.Intervals)
			buf = appendDiffList(buf, s.Diffs)
		}
	}
	return buf
}

// Header flag bits. Anything else set is a decode error: an accepted
// frame must have exactly one encoding, and unknown bits would otherwise
// be silently dropped on the re-encode.
const (
	flagVC       = 1 << 0 // the top-level VC section is present
	flagSections = 1 << 1 // the mode-tagged Sections block is present
)

// appendIntervalList encodes a count-prefixed interval block (shared by
// the flat message body and each mode-tagged section).
func appendIntervalList(buf []byte, ivs []IntervalRec) []byte {
	buf = put32(buf, int32(len(ivs)))
	for _, iv := range ivs {
		buf = put32(buf, int32(iv.Proc))
		buf = put32(buf, iv.Index)
		buf = put32(buf, int32(len(iv.VC)))
		for _, x := range iv.VC {
			buf = put32(buf, x)
		}
		buf = put32(buf, int32(len(iv.Pages)))
		for _, p := range iv.Pages {
			buf = put32(buf, int32(p))
		}
	}
	return buf
}

// appendDiffList encodes a count-prefixed diff block (shared by the flat
// message body and each mode-tagged section).
func appendDiffList(buf []byte, diffs []DiffRec) []byte {
	buf = put32(buf, int32(len(diffs)))
	for _, d := range diffs {
		buf = put32(buf, int32(d.Page))
		buf = put32(buf, int32(d.Proc))
		buf = put32(buf, d.Index)
		// A diff served before carries its wire body pre-encoded (run
		// count + run headers + payloads, byte-identical to the loop
		// below); append it verbatim instead of re-walking the runs. The
		// engine decides which diffs are worth caching via EnsureWireBody;
		// one-shot encodes take the direct path with no caching side
		// effect.
		if body := d.Diff.WireBody(); body != nil {
			buf = append(buf, body...)
			continue
		}
		runs := d.Diff.Runs()
		buf = put32(buf, int32(len(runs)))
		for i, r := range runs {
			buf = put32(buf, r.Off)
			buf = put32(buf, r.Len)
			buf = append(buf, d.Diff.RunData(i)...)
		}
	}
	return buf
}

func (m *Msg) encodedSizeHint() int {
	n := headerBytes + 64
	for _, d := range m.Diffs {
		n += d.Diff.WireSize()
	}
	n += len(m.Data)
	n += len(m.Intervals) * 64
	for _, s := range m.Sections {
		n += 16 + 4*len(s.VC) + len(s.Intervals)*64
		for _, d := range s.Diffs {
			n += d.Diff.WireSize()
		}
	}
	return n
}

// SizeHint is a cheap upper-bound estimate of the message's encoded
// size, for byte-thresholded flush policies. It over-counts small
// messages slightly (fixed slack instead of exact section sums) but
// tracks the dominant payload terms — diffs, page data, intervals.
func (m *Msg) SizeHint() int { return m.encodedSizeHint() }

func put32(b []byte, v int32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], uint32(v))
	return append(b, t[:]...)
}

// decoder walks an encoded buffer with bounds checking.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) i32() int32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.err = fmt.Errorf("wire: truncated at offset %d", d.off)
		return 0
	}
	v := int32(binary.LittleEndian.Uint32(d.b[d.off:]))
	d.off += 4
	return v
}

func (d *decoder) count(what string, limit int32) int32 {
	n := d.i32()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > limit {
		// Return 0, not n: callers size allocations by this value, and a
		// hostile count must never reach a make().
		d.err = fmt.Errorf("wire: implausible %s count %d", what, n)
		return 0
	}
	return n
}

// countItems reads a section count and rejects any value whose items
// could not possibly fit in the remaining bytes. Once frames arrive from
// a real socket this is the allocation bound: a 30-byte hostile message
// must not be able to claim 2^24 entries and make the decoder allocate
// gigabytes before the truncation is noticed.
func (d *decoder) countItems(what string, itemBytes int) int32 {
	n := d.i32()
	if d.err != nil {
		return 0
	}
	if n < 0 || int64(n)*int64(itemBytes) > int64(len(d.b)-d.off) {
		d.err = fmt.Errorf("wire: implausible %s count %d for %d remaining bytes", what, n, len(d.b)-d.off)
		return 0
	}
	return n
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = fmt.Errorf("wire: truncated payload at offset %d (want %d bytes)", d.off, n)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// Decode parses an encoded message.
func Decode(b []byte) (*Msg, error) {
	if len(b) < headerBytes {
		return nil, fmt.Errorf("wire: message of %d bytes shorter than header", len(b))
	}
	m := &Msg{
		Kind: Kind(binary.LittleEndian.Uint16(b[0:])),
		Seq:  binary.LittleEndian.Uint64(b[4:]),
		A:    int32(binary.LittleEndian.Uint32(b[12:])),
		B:    int32(binary.LittleEndian.Uint32(b[16:])),
	}
	if m.Kind == 0 || m.Kind >= kindLimit {
		return nil, fmt.Errorf("wire: unknown message kind %d", m.Kind)
	}
	if m.Kind == KBatch {
		// A batch is a frame, not a message: it is only legal at the top
		// of a payload (DecodeBatch), which also forbids nested batches.
		return nil, fmt.Errorf("wire: batch frame in message position")
	}
	if m.Kind == KCompressed {
		// Same frame-not-message rule: compressed frames are expanded by
		// the dispatch loop (Expand) before anything decodes messages, and
		// Expand itself rejects a nested compressed frame.
		return nil, fmt.Errorf("wire: compressed frame in message position")
	}
	flags := binary.LittleEndian.Uint32(b[20:])
	if flags&^uint32(flagVC|flagSections) != 0 {
		// Unknown flag bits would be silently dropped on re-encode; an
		// accepted frame must have exactly one encoding.
		return nil, fmt.Errorf("wire: unknown header flag bits %#x", flags)
	}
	d := &decoder{b: b, off: headerBytes}
	if flags&flagVC != 0 {
		n := d.count("clock", 64)
		m.VC = make(vc.VC, n)
		for i := range m.VC {
			m.VC[i] = d.i32()
		}
	}
	// Section counts are bounded by the bytes actually present (each
	// interval is at least 16 bytes on the wire, each run 8, and so on),
	// so hostile counts fail before any allocation sized by them.
	m.Intervals = d.intervalList()
	m.Diffs = d.diffList()
	if d.err != nil {
		return nil, d.err
	}
	nwants := d.countItems("want", 12)
	for i := int32(0); i < nwants && d.err == nil; i++ {
		m.Wants = append(m.Wants, Want{
			Page:  mem.PageID(d.i32()),
			Proc:  mem.ProcID(d.i32()),
			Index: d.i32(),
		})
	}
	ndata := d.countItems("data", 1)
	if ndata > 0 {
		payload := d.bytes(int(ndata))
		if d.err == nil {
			m.Data = make([]byte, ndata)
			copy(m.Data, payload)
		}
	}
	if flags&flagSections != 0 {
		nsecs := d.countItems("section", 16)
		if d.err == nil {
			m.Sections = make([]Section, 0, nsecs)
		}
		for i := int32(0); i < nsecs && d.err == nil; i++ {
			var s Section
			mode := d.i32()
			if d.err == nil && (mode < 0 || mode > 255) {
				// Engine mode ids are tiny; anything bigger is a forgery or
				// corruption. Semantically-unknown small ids decode fine and
				// are rejected at the dsm layer (recorded-error-then-drop).
				d.err = fmt.Errorf("wire: implausible section mode %d", mode)
				break
			}
			s.Mode = uint16(mode)
			if vn := d.count("section clock", 64); vn > 0 {
				s.VC = make(vc.VC, vn)
				for k := range s.VC {
					s.VC[k] = d.i32()
				}
			}
			s.Intervals = d.intervalList()
			s.Diffs = d.diffList()
			if d.err != nil {
				break
			}
			m.Sections = append(m.Sections, s)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(b)-d.off)
	}
	return m, nil
}

// intervalList decodes a count-prefixed interval block (the inverse of
// appendIntervalList), with the same hostile-count bounds as before.
func (d *decoder) intervalList() []IntervalRec {
	nivs := d.countItems("interval", 16)
	var out []IntervalRec
	for i := int32(0); i < nivs && d.err == nil; i++ {
		var iv IntervalRec
		iv.Proc = mem.ProcID(d.i32())
		iv.Index = d.i32()
		vn := d.count("interval clock", 64)
		iv.VC = make(vc.VC, vn)
		for k := range iv.VC {
			iv.VC[k] = d.i32()
		}
		pn := d.countItems("interval page", 4)
		iv.Pages = make([]mem.PageID, pn)
		for k := range iv.Pages {
			iv.Pages[k] = mem.PageID(d.i32())
		}
		if d.err != nil {
			break
		}
		out = append(out, iv)
	}
	return out
}

// diffList decodes a count-prefixed diff block (the inverse of
// appendDiffList).
func (d *decoder) diffList() []DiffRec {
	ndiffs := d.countItems("diff", 16)
	var out []DiffRec
	for i := int32(0); i < ndiffs && d.err == nil; i++ {
		var rec DiffRec
		rec.Page = mem.PageID(d.i32())
		rec.Proc = mem.ProcID(d.i32())
		rec.Index = d.i32()
		nruns := d.countItems("run", 8)
		runs := make([]page.Run, 0, nruns)
		data := make([][]byte, 0, nruns)
		for k := int32(0); k < nruns && d.err == nil; k++ {
			off := d.i32()
			length := d.i32()
			if d.err == nil && off < 0 {
				// A negative offset would index backwards when the diff is
				// applied; nothing legitimate encodes one.
				d.err = fmt.Errorf("wire: negative run offset %d", off)
			}
			payload := d.bytes(int(length))
			if d.err != nil {
				break
			}
			cp := make([]byte, length)
			copy(cp, payload)
			runs = append(runs, page.Run{Off: off, Len: length})
			data = append(data, cp)
		}
		if d.err == nil {
			df, err := page.DiffFromRuns(runs, data)
			if err != nil {
				d.err = fmt.Errorf("wire: %v", err)
				break
			}
			rec.Diff = df
			out = append(out, rec)
		}
	}
	return out
}

// --- batch frames ---
//
// A batch frame coalesces several messages for one destination into one
// physical frame: a standard 24-byte header with Kind KBatch and A = the
// sub-message count, followed by exactly A sub-frames, each a u32 length
// prefix and one encoded message. The sender's outbox builds batches
// append-style into one pooled buffer; the receiver's dispatch loop
// unpacks them with DecodeBatch before routing each sub-message.

// minBatchedBytes is the smallest possible sub-frame: the length prefix
// plus an encoded message with four empty section counts. It bounds the
// batch count a hostile header can claim, countItems-style.
const minBatchedBytes = 4 + headerBytes + 16

// AppendBatchHeader appends a batch frame header for count sub-messages.
func AppendBatchHeader(buf []byte, count int) []byte {
	var h [headerBytes]byte
	binary.LittleEndian.PutUint16(h[0:], uint16(KBatch))
	binary.LittleEndian.PutUint32(h[12:], uint32(count))
	return append(buf, h[:]...)
}

// IsBatch reports whether the payload is a batch frame.
func IsBatch(b []byte) bool {
	return len(b) >= 2 && Kind(binary.LittleEndian.Uint16(b)) == KBatch
}

// DecodeBatch parses a batch frame into its messages. It enforces the
// same hostility bounds as Decode: the claimed count must fit the bytes
// actually present before anything is allocated by it, every sub-frame
// must lie within the payload, nested batches are rejected (Decode
// refuses KBatch in message position), and trailing bytes are an error.
func DecodeBatch(b []byte) ([]*Msg, error) {
	if len(b) < headerBytes {
		return nil, fmt.Errorf("wire: batch frame of %d bytes shorter than header", len(b))
	}
	if !IsBatch(b) {
		return nil, fmt.Errorf("wire: frame of kind %v is not a batch", Kind(binary.LittleEndian.Uint16(b)))
	}
	// The fixed header fields a batch does not use must be zero, so an
	// accepted batch has exactly one encoding (the canonical-form
	// property the fuzzer checks).
	if binary.LittleEndian.Uint16(b[2:]) != 0 || binary.LittleEndian.Uint64(b[4:]) != 0 ||
		binary.LittleEndian.Uint32(b[16:]) != 0 || binary.LittleEndian.Uint32(b[20:]) != 0 {
		return nil, fmt.Errorf("wire: batch header carries non-zero reserved fields")
	}
	count := int32(binary.LittleEndian.Uint32(b[12:]))
	if count < 2 || int64(count)*minBatchedBytes > int64(len(b)-headerBytes) {
		// A batch of one would be a plain frame; a hostile count must
		// never size an allocation.
		return nil, fmt.Errorf("wire: implausible batch count %d for %d remaining bytes", count, len(b)-headerBytes)
	}
	msgs := make([]*Msg, 0, count)
	off := headerBytes
	for i := int32(0); i < count; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("wire: batch truncated at sub-message %d", i)
		}
		size := int32(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if size < 0 || int64(off)+int64(size) > int64(len(b)) {
			return nil, fmt.Errorf("wire: implausible batched frame length %d at sub-message %d", size, i)
		}
		m, err := Decode(b[off : off+int(size)])
		if err != nil {
			return nil, fmt.Errorf("wire: batched message %d: %w", i, err)
		}
		msgs = append(msgs, m)
		off += int(size)
	}
	if off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch", len(b)-off)
	}
	return msgs, nil
}

// --- compressed frames ---
//
// A compressed frame wraps one complete inner frame — a plain encoded
// message or a whole batch frame — as a flate stream behind a standard
// header: Kind KCompressed, A = the inner frame's exact length, every
// other fixed field zero (the same canonical-form rule as batches). The
// outbox compresses a built frame only when it is at least the
// configured threshold AND the compressed form is strictly smaller, so
// incompressible payloads (already-dense page data) ride uncompressed;
// the receiver's dispatch loop expands the frame back before routing.
// Transport byte counters see the compressed length, so the latency
// model charges post-compression bytes.

// MaxExpandedBytes bounds the inner-frame length a compressed header
// may claim — the decompression-bomb bound, aligned with the TCP
// transport's frame cap.
const MaxExpandedBytes = 64 << 20

var flateWriters = sync.Pool{New: func() any {
	w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		panic(err) // only fails for an invalid level constant
	}
	return w
}}

var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// sliceWriter adapts an append-slice to io.Writer for the flate encoder.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// IsCompressed reports whether the payload is a compressed frame.
func IsCompressed(b []byte) bool {
	return len(b) >= 2 && Kind(binary.LittleEndian.Uint16(b)) == KCompressed
}

// Compress wraps a complete encoded frame into a compressed frame in a
// pooled buffer. It returns (nil, false) — emitting nothing — when the
// compressed form would not be strictly smaller than the original, so a
// sender can always prefer the returned frame when ok. The caller keeps
// ownership of frame either way.
func Compress(frame []byte) (compressed []byte, ok bool) {
	sw := &sliceWriter{b: appendCompressedHeader(GetBuf(), len(frame))}
	zw := flateWriters.Get().(*flate.Writer)
	zw.Reset(sw)
	_, err := zw.Write(frame)
	if err == nil {
		err = zw.Close()
	}
	flateWriters.Put(zw)
	if err != nil || len(sw.b) >= len(frame) {
		// sliceWriter never fails, so err is theoretical; the size gate is
		// the common exit for dense payloads.
		PutBuf(sw.b)
		return nil, false
	}
	return sw.b, true
}

func appendCompressedHeader(buf []byte, innerLen int) []byte {
	var h [headerBytes]byte
	binary.LittleEndian.PutUint16(h[0:], uint16(KCompressed))
	binary.LittleEndian.PutUint32(h[12:], uint32(innerLen))
	return append(buf, h[:]...)
}

// Expand inflates a compressed frame back into its inner frame, in a
// pooled buffer the caller owns (recycle with PutBuf). It enforces the
// hostility bounds of the other decoders: the claimed inner length is
// capped (MaxExpandedBytes), the stream must inflate to exactly that
// length, allocation grows with bytes actually produced rather than the
// claim, reserved header fields must be zero, and a nested compressed
// frame is rejected.
func Expand(b []byte) ([]byte, error) {
	if len(b) < headerBytes {
		return nil, fmt.Errorf("wire: compressed frame of %d bytes shorter than header", len(b))
	}
	if !IsCompressed(b) {
		return nil, fmt.Errorf("wire: frame of kind %v is not compressed", Kind(binary.LittleEndian.Uint16(b)))
	}
	if binary.LittleEndian.Uint16(b[2:]) != 0 || binary.LittleEndian.Uint64(b[4:]) != 0 ||
		binary.LittleEndian.Uint32(b[16:]) != 0 || binary.LittleEndian.Uint32(b[20:]) != 0 {
		return nil, fmt.Errorf("wire: compressed header carries non-zero reserved fields")
	}
	want := int(binary.LittleEndian.Uint32(b[12:]))
	if want < headerBytes || want > MaxExpandedBytes {
		return nil, fmt.Errorf("wire: implausible compressed frame inner length %d", want)
	}
	zr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(zr)
	if err := zr.(flate.Resetter).Reset(bytes.NewReader(b[headerBytes:]), nil); err != nil {
		return nil, fmt.Errorf("wire: compressed frame: %v", err)
	}
	out := GetBuf()
	for {
		if len(out) == cap(out) {
			out = append(out, 0)[:len(out)]
		}
		n, err := zr.Read(out[len(out):cap(out)])
		out = out[:len(out)+n]
		if len(out) > want {
			PutBuf(out)
			return nil, fmt.Errorf("wire: compressed frame inflates past its claimed %d bytes", want)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			PutBuf(out)
			return nil, fmt.Errorf("wire: compressed frame: %v", err)
		}
	}
	if len(out) != want {
		got := len(out)
		PutBuf(out)
		return nil, fmt.Errorf("wire: compressed frame inflates to %d bytes, header claims %d", got, want)
	}
	if IsCompressed(out) {
		PutBuf(out)
		return nil, fmt.Errorf("wire: nested compressed frame")
	}
	return out, nil
}
