package eager

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/proto"
)

func newTestEngine(f Flavor) *Engine {
	return NewEngine(mem.MustLayout(16384, 1024), 4, f, proto.Options{})
}

const testLock = mem.LockID(2) // manager p2

func totalMsgs(e *Engine) int64 { return e.Stats().TotalMessages() }

func TestAcquireHasNoConsistencyActions(t *testing.T) {
	// §3: "No consistency-related operations occur on an acquire."
	e := newTestEngine(Invalidate)
	e.Read(3, 100, 4)
	e.Acquire(0, testLock)
	e.Write(0, 104, 4)
	e.Release(0, testLock) // invalidates p3
	e.Read(3, 100, 4)      // p3 refetches
	before := totalMsgs(e)
	e.Acquire(3, testLock)
	if got := totalMsgs(e) - before; got != 3 {
		t.Errorf("eager acquire = %d messages, want exactly the 3 lock messages", got)
	}
	if valid, _ := e.PageStatus(3, 100); !valid {
		t.Error("acquire disturbed p3's valid copy")
	}
}

func TestEIReleaseInvalidatesOtherCachers(t *testing.T) {
	// Table 1: unlock = 2c. One other cacher -> 2 messages.
	e := newTestEngine(Invalidate)
	e.Read(3, 100, 4)
	e.Acquire(0, testLock)
	e.Write(0, 104, 4)
	before := totalMsgs(e)
	e.Release(0, testLock)
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("EI release with c=1: %d messages, want 2", got)
	}
	valid, present := e.PageStatus(3, 100)
	if valid || !present {
		t.Errorf("other cacher after EI release: valid=%v present=%v, want invalidated", valid, present)
	}
	if e.Stats().InvalidationsSent != 1 {
		t.Errorf("InvalidationsSent = %d, want 1", e.Stats().InvalidationsSent)
	}
}

func TestEUReleaseUpdatesOtherCachers(t *testing.T) {
	e := newTestEngine(Update)
	e.Read(3, 100, 4)
	e.Acquire(0, testLock)
	e.Write(0, 104, 4)
	before := totalMsgs(e)
	e.Release(0, testLock)
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("EU release with c=1: %d messages, want 2", got)
	}
	if valid, _ := e.PageStatus(3, 100); !valid {
		t.Error("other cacher lost validity after EU release")
	}
	if e.Stats().DiffsSent == 0 {
		t.Error("EU release moved no diffs")
	}
	// The updated cacher reads without a miss.
	before = totalMsgs(e)
	e.Read(3, 100, 4)
	if got := totalMsgs(e) - before; got != 0 {
		t.Errorf("read after EU update missed: %d messages", got)
	}
}

func TestEUReleaseMergesPerDestination(t *testing.T) {
	// Munin's merge: p0 dirties two pages both cached by p3; the release
	// sends one message + ack, not two pairs.
	e := newTestEngine(Update)
	e.Read(3, 100, 4)
	e.Read(3, 1100, 4)
	e.Acquire(0, testLock)
	e.Write(0, 104, 4)
	e.Write(0, 1104, 4)
	before := totalMsgs(e)
	e.Release(0, testLock)
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("EU release to one destination with two dirty pages: %d messages, want 2", got)
	}
}

func TestReleaseWithNoOtherCachersIsFree(t *testing.T) {
	for _, f := range []Flavor{Invalidate, Update} {
		e := newTestEngine(f)
		e.Acquire(0, testLock)
		e.Write(0, 100, 4)
		before := totalMsgs(e)
		e.Release(0, testLock)
		if got := totalMsgs(e) - before; got != 0 {
			t.Errorf("%v: sole-cacher release sent %d messages, want 0", f, got)
		}
	}
}

func TestMissCostsTwoOrThreeMessages(t *testing.T) {
	// Table 1: eager miss = 2 or 3 messages depending on whether the
	// directory manager has a valid copy.
	e := newTestEngine(Invalidate)
	// Page 1 (addr 1024): manager p1 owns it initially -> p0's miss is a
	// 2-message exchange with the manager.
	before := totalMsgs(e)
	e.Read(0, 1024, 4)
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("miss with manager-owned page = %d messages, want 2", got)
	}
	// p0 modifies page 1 under a lock and releases: p0 becomes owner.
	e.Acquire(0, testLock)
	e.Write(0, 1028, 4)
	e.Release(0, testLock) // invalidates p1's initial... (manager had no copy yet)
	// p3's miss now goes requester -> manager p1 -> owner p0: 3 messages.
	before = totalMsgs(e)
	e.Read(3, 1024, 4)
	if got := totalMsgs(e) - before; got != 3 {
		t.Errorf("forwarded miss = %d messages, want 3", got)
	}
	if e.Stats().PagesSent != 2 {
		t.Errorf("PagesSent = %d, want 2 (eager misses move whole pages)", e.Stats().PagesSent)
	}
}

func TestEIFalseSharingDiffRidesAck(t *testing.T) {
	// p0 and p3 write disjoint parts of one page; p0's release invalidates
	// p3, whose buffered modification rides back on the ack and is not
	// lost (merged into p0's dirty set, flushed at p0's next release).
	e := newTestEngine(Invalidate)
	e.Write(3, 512, 4) // p3 writes its half (cold miss first)
	e.Acquire(0, testLock)
	e.Write(0, 4, 4)
	e.Release(0, testLock)
	st := e.Stats()
	if st.DiffsSent != 1 {
		t.Errorf("DiffsSent = %d, want 1 (loser's diff on the ack)", st.DiffsSent)
	}
	if valid, _ := e.PageStatus(3, 512); valid {
		t.Error("p3 still valid after invalidation")
	}
}

func TestBarrierBaseCost(t *testing.T) {
	// No modifications: barrier = 2(n-1) for both flavors.
	for _, f := range []Flavor{Invalidate, Update} {
		e := newTestEngine(f)
		before := totalMsgs(e)
		e.Barrier([]mem.ProcID{0, 1, 2, 3}, 0)
		if got := totalMsgs(e) - before; got != 6 {
			t.Errorf("%v: empty barrier = %d messages, want 6", f, got)
		}
	}
}

func TestEIBarrierReconciliation(t *testing.T) {
	// Two processors modified the same page: one reconciliation pair (the
	// 2v term), and everyone but the winner ends invalid.
	e := newTestEngine(Invalidate)
	e.Write(0, 4, 4)
	e.Write(1, 512, 4)
	before := totalMsgs(e)
	e.Barrier([]mem.ProcID{0, 1, 2, 3}, 0)
	if got := totalMsgs(e) - before; got != 6+2 {
		t.Errorf("EI barrier with v=1: %d messages, want 8", got)
	}
	if valid, _ := e.PageStatus(0, 4); !valid {
		t.Error("winner's copy invalid after barrier")
	}
	if valid, _ := e.PageStatus(1, 512); valid {
		t.Error("loser's copy still valid after barrier")
	}
}

func TestEUBarrierUpdates(t *testing.T) {
	// One modifier, one other cacher: u=1 -> 2(n-1) + 2 messages.
	e := newTestEngine(Update)
	e.Read(3, 100, 4)
	e.Write(1, 100, 4)
	before := totalMsgs(e)
	e.Barrier([]mem.ProcID{0, 1, 2, 3}, 0)
	if got := totalMsgs(e) - before; got != 6+2 {
		t.Errorf("EU barrier with u=1: %d messages, want 8", got)
	}
	if valid, _ := e.PageStatus(3, 100); !valid {
		t.Error("cacher not updated at EU barrier")
	}
}

func TestEagerFlavorNames(t *testing.T) {
	if Invalidate.String() != "EI" || Update.String() != "EU" {
		t.Error("flavor names wrong")
	}
	if newTestEngine(Update).Name() != "EU" {
		t.Error("engine name wrong")
	}
}

func TestEagerRejectsTooManyProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("65 processors accepted")
		}
	}()
	NewEngine(mem.MustLayout(16384, 1024), 65, Invalidate, proto.Options{})
}
