// Package eager implements eager release consistency modeled on Munin's
// write-shared protocol (paper §3): a processor buffers its modifications
// until a release, then propagates them — invalidations (EI) or diffs (EU)
// — to every other cacher of each modified page, blocking until all
// acknowledgments arrive. Access misses go through a static directory
// manager that forwards to the page's current owner.
package eager

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/proto"
)

// Flavor selects the release-time propagation policy.
type Flavor int

const (
	// Invalidate sends invalidations to other cachers at release (EI).
	Invalidate Flavor = iota
	// Update sends diffs to other cachers at release (EU).
	Update
)

// String returns the protocol's short name for the flavor.
func (f Flavor) String() string {
	if f == Update {
		return "EU"
	}
	return "EI"
}

type pstatus uint8

const (
	psNoCopy pstatus = iota
	psValid
	psInvalid
)

type procState struct {
	status []pstatus
	// dirty holds the byte ranges modified per page since this
	// processor's last release point (unlock or barrier).
	dirty map[mem.PageID]*page.RangeSet
}

// Engine is the trace-driven simulation engine for the eager protocols EI
// and EU.
type Engine struct {
	layout *mem.Layout
	n      int
	flavor Flavor
	opts   proto.Options
	stats  proto.Stats
	procs  []procState
	// owner is the processor holding the authoritative copy of each page
	// (the last releaser of a modification, or the manager before any
	// release). copyset is the bitmask of processors with a valid copy.
	owner   []mem.ProcID
	copyset []uint64
	locks   map[mem.LockID]mem.ProcID
}

// NewEngine constructs an eager engine for n processors (n <= 64) over the
// given layout.
func NewEngine(layout *mem.Layout, n int, flavor Flavor, opts proto.Options) *Engine {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("eager: processor count %d outside [1,64]", n))
	}
	e := &Engine{
		layout:  layout,
		n:       n,
		flavor:  flavor,
		opts:    opts,
		procs:   make([]procState, n),
		owner:   make([]mem.ProcID, layout.NumPages()),
		copyset: make([]uint64, layout.NumPages()),
		locks:   make(map[mem.LockID]mem.ProcID),
	}
	e.stats.Protocol = flavor.String()
	for i := range e.procs {
		e.procs[i] = procState{
			status: make([]pstatus, layout.NumPages()),
			dirty:  make(map[mem.PageID]*page.RangeSet),
		}
	}
	for pg := range e.owner {
		e.owner[pg] = mem.ProcID(pg % n) // manager owns pages initially
	}
	return e
}

// Name implements proto.Protocol.
func (e *Engine) Name() string { return e.flavor.String() }

// Stats implements proto.Protocol.
func (e *Engine) Stats() *proto.Stats { return &e.stats }

// PageStatus reports whether processor p holds a valid copy of the page
// containing addr (for tests).
func (e *Engine) PageStatus(p mem.ProcID, addr mem.Addr) (valid, present bool) {
	st := e.procs[p].status[e.layout.PageOf(addr)]
	return st == psValid, st != psNoCopy
}

// Read implements proto.Protocol.
func (e *Engine) Read(p mem.ProcID, addr mem.Addr, size int) {
	e.stats.Reads++
	ps := &e.procs[p]
	for _, pg := range e.layout.PagesOf(addr, size) {
		if ps.status[pg] != psValid {
			e.miss(p, ps, pg)
		}
	}
}

// Write implements proto.Protocol. Munin's write-shared pages accept
// concurrent writers: no ownership is acquired, modifications are buffered
// in the dirty set until the next release.
func (e *Engine) Write(p mem.ProcID, addr mem.Addr, size int) {
	e.stats.Writes++
	ps := &e.procs[p]
	e.layout.SplitRange(addr, size, func(pg mem.PageID, off, n int) {
		if ps.status[pg] != psValid {
			e.miss(p, ps, pg)
		}
		if e.opts.ExclusiveWriter {
			e.evictOtherCopies(p, pg)
		}
		mods := ps.dirty[pg]
		if mods == nil {
			mods = &page.RangeSet{}
			ps.dirty[pg] = mods
		}
		mods.Add(off, n)
	})
}

func (e *Engine) evictOtherCopies(p mem.ProcID, pg mem.PageID) {
	others := e.copyset[pg] &^ (1 << uint(p))
	for q := 0; others != 0; q++ {
		bit := uint64(1) << uint(q)
		if others&bit == 0 {
			continue
		}
		others &^= bit
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.InvalBytes)
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.AckBytes)
		e.stats.InvalidationsSent++
		e.procs[q].status[pg] = psInvalid
		e.copyset[pg] &^= bit
	}
}

// miss services an access miss: a request to the page's directory manager,
// forwarded to the current owner unless the manager holds a valid copy —
// 2 or 3 messages (§3, Table 1) — and the full page travels back.
func (e *Engine) miss(p mem.ProcID, ps *procState, pg mem.PageID) {
	e.stats.AccessMisses++
	if ps.status[pg] == psNoCopy {
		e.stats.ColdMisses++
	}
	mgr := mem.ProcID(int(pg) % e.n)
	owner := e.owner[pg]
	respBytes := proto.MsgHeaderBytes + e.layout.PageSize()
	switch {
	case mgr == p && owner == p:
		// Degenerate: we are manager and owner yet miss (first touch of an
		// unowned page). Materialize locally, no traffic.
	case mgr == p:
		// Local directory lookup, remote owner: request + page.
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes)
		e.stats.Msg(proto.CatMiss, respBytes)
		e.countPage()
	case owner == mgr || owner == p:
		// Manager can satisfy the request itself: 2 messages.
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes)
		e.stats.Msg(proto.CatMiss, respBytes)
		e.countPage()
	default:
		// Request, forward, page from owner: 3 messages.
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes)
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes)
		e.stats.Msg(proto.CatMiss, respBytes)
		e.countPage()
	}
	ps.status[pg] = psValid
	e.copyset[pg] |= 1 << uint(p)
}

func (e *Engine) countPage() {
	e.stats.PagesSent++
	e.stats.PageBytes += int64(e.layout.PageSize())
}

// Acquire implements proto.Protocol: only lock location and transfer, no
// consistency actions (§3: "no consistency-related operations occur on an
// acquire").
func (e *Engine) Acquire(p mem.ProcID, l mem.LockID) {
	e.stats.Acquires++
	q, held := e.locks[l]
	if held && q == p {
		return
	}
	mgr := mem.ProcID(int(l) % e.n)
	reqBytes := proto.MsgHeaderBytes + proto.LockReqBytes
	if !held {
		if mgr != p {
			e.stats.Msg(proto.CatLock, reqBytes)
			e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockGrantBytes)
		}
		return
	}
	if mgr != p {
		e.stats.Msg(proto.CatLock, reqBytes)
	}
	if mgr != q {
		e.stats.Msg(proto.CatLock, reqBytes)
	}
	e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockGrantBytes)
}

// Release implements proto.Protocol: the releaser propagates every dirty
// page to all other cachers — invalidations (EI) or diffs (EU) — and
// blocks for acknowledgments: the 2c messages of Table 1.
func (e *Engine) Release(p mem.ProcID, l mem.LockID) {
	e.stats.Releases++
	e.flush(p, proto.CatUnlock)
	e.locks[l] = p
}

// flush propagates processor p's dirty pages, charging messages to
// category cat. All traffic to one destination is merged into a single
// message + acknowledgment, Munin's key optimization (§1: "all writes
// going to the same destination are merged into a single message"). It
// clears the dirty set.
func (e *Engine) flush(p mem.ProcID, cat proto.Category) {
	ps := &e.procs[p]
	if len(ps.dirty) == 0 {
		return
	}
	pages := make([]mem.PageID, 0, len(ps.dirty))
	for pg := range ps.dirty {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	// Per-destination merged payload.
	payload := make([]int, e.n)
	touched := make([]bool, e.n)
	for _, pg := range pages {
		mods := ps.dirty[pg]
		others := e.copyset[pg] &^ (1 << uint(p))
		for q := 0; others != 0; q++ {
			bit := uint64(1) << uint(q)
			if others&bit == 0 {
				continue
			}
			others &^= bit
			qs := &e.procs[q]
			touched[q] = true
			switch e.flavor {
			case Invalidate:
				payload[q] += proto.InvalBytes
				e.stats.InvalidationsSent++
				// If the cacher has its own buffered modifications to the
				// page (false sharing), its acknowledgment carries them
				// back as a diff so they are not lost; it is then no
				// longer responsible for flushing this page.
				if qmods, ok := qs.dirty[pg]; ok {
					db := page.EstimateDiffWireSize(qmods)
					payload[q] += db // rides the ack
					e.stats.DiffsSent++
					e.stats.DiffBytes += int64(db)
					mods.Union(qmods)
					delete(qs.dirty, pg)
				}
				qs.status[pg] = psInvalid
				e.copyset[pg] &^= bit
			case Update:
				if e.opts.NoDiffs {
					payload[q] += e.layout.PageSize()
					e.countPage()
				} else {
					db := page.EstimateDiffWireSize(mods)
					payload[q] += db
					e.stats.DiffsSent++
					e.stats.DiffBytes += int64(db)
				}
			}
		}
		e.owner[pg] = p
		delete(ps.dirty, pg)
	}
	for q := 0; q < e.n; q++ {
		if !touched[q] {
			continue
		}
		e.stats.Msg(cat, proto.MsgHeaderBytes+payload[q])
		e.stats.Msg(cat, proto.MsgHeaderBytes+proto.AckBytes)
	}
}

// Barrier implements proto.Protocol. Arrival and exit messages cost
// 2(n-1); EI piggybacks invalidations on them, paying only 2v extra
// messages to reconcile pages invalidated by multiple processors; EU sends
// its updates as separate message pairs (the 2u term).
func (e *Engine) Barrier(arrivals []mem.ProcID, b mem.BarrierID) {
	e.stats.Barriers++
	const master = mem.ProcID(0)

	// Episode modification map: page -> modifiers in arrival order.
	modifiers := make(map[mem.PageID][]mem.ProcID)
	for _, p := range arrivals {
		for pg := range e.procs[p].dirty {
			modifiers[pg] = append(modifiers[pg], p)
		}
	}
	pages := make([]mem.PageID, 0, len(modifiers))
	for pg := range modifiers {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		sort.Slice(modifiers[pg], func(i, j int) bool { return modifiers[pg][i] < modifiers[pg][j] })
	}

	// Arrival and exit messages. EI piggybacks each arriver's dirty-page
	// list inward and the merged invalidation list outward.
	for _, p := range arrivals {
		if p == master {
			continue
		}
		arriveBytes := proto.MsgHeaderBytes + proto.BarrierBytes
		exitBytes := proto.MsgHeaderBytes + proto.BarrierBytes
		if e.flavor == Invalidate {
			arriveBytes += len(e.procs[p].dirty) * proto.InvalBytes
			exitBytes += len(pages) * proto.InvalBytes
		}
		e.stats.Msg(proto.CatBarrier, arriveBytes)
		e.stats.Msg(proto.CatBarrier, exitBytes)
	}

	switch e.flavor {
	case Invalidate:
		e.invalidateAtBarrier(pages, modifiers)
	case Update:
		e.updateAtBarrier(pages, modifiers)
	}
}

// invalidateAtBarrier applies the piggybacked invalidations: every page
// modified this episode survives only at one "winner" modifier. When a
// page has k > 1 modifiers, the k-1 losers each exchange a message pair
// with the winner to merge their diffs (the 2v term of Table 1).
func (e *Engine) invalidateAtBarrier(pages []mem.PageID, modifiers map[mem.PageID][]mem.ProcID) {
	// Reconciliation traffic merges per (loser, winner) pair across pages.
	type pair struct{ loser, winner mem.ProcID }
	reconBytes := make(map[pair]int)
	for _, pg := range pages {
		mods := modifiers[pg]
		winner := mods[0]
		wmods := e.procs[winner].dirty[pg]
		for _, loser := range mods[1:] {
			ls := &e.procs[loser]
			db := page.EstimateDiffWireSize(ls.dirty[pg])
			reconBytes[pair{loser, winner}] += db
			e.stats.DiffsSent++
			e.stats.DiffBytes += int64(db)
			wmods.Union(ls.dirty[pg])
			delete(ls.dirty, pg)
		}
		// Everyone but the winner drops to invalid.
		set := e.copyset[pg]
		for q := 0; set != 0; q++ {
			bit := uint64(1) << uint(q)
			if set&bit == 0 {
				continue
			}
			set &^= bit
			if mem.ProcID(q) == winner {
				continue
			}
			e.procs[q].status[pg] = psInvalid
			e.copyset[pg] &^= bit
			e.stats.InvalidationsSent++
		}
		e.owner[pg] = winner
		delete(e.procs[winner].dirty, pg)
	}
	pairs := make([]pair, 0, len(reconBytes))
	for pr := range reconBytes {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].loser != pairs[j].loser {
			return pairs[i].loser < pairs[j].loser
		}
		return pairs[i].winner < pairs[j].winner
	})
	for _, pr := range pairs {
		e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+reconBytes[pr])
		e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+proto.AckBytes)
	}
}

// updateAtBarrier sends each modifier's diffs to every other cacher of its
// modified pages (the 2u messages of Table 1); traffic from one modifier
// to one destination merges into a single message pair (Munin's
// per-destination merge). All copies stay valid.
func (e *Engine) updateAtBarrier(pages []mem.PageID, modifiers map[mem.PageID][]mem.ProcID) {
	payload := make([][]int, e.n) // [modifier][destination] merged bytes
	sent := make([][]bool, e.n)
	for i := range payload {
		payload[i] = make([]int, e.n)
		sent[i] = make([]bool, e.n)
	}
	for _, pg := range pages {
		for _, i := range modifiers[pg] {
			is := &e.procs[i]
			mods := is.dirty[pg]
			others := e.copyset[pg] &^ (1 << uint(i))
			for q := 0; others != 0; q++ {
				bit := uint64(1) << uint(q)
				if others&bit == 0 {
					continue
				}
				others &^= bit
				sent[i][q] = true
				if e.opts.NoDiffs {
					payload[i][q] += e.layout.PageSize()
					e.countPage()
				} else {
					db := page.EstimateDiffWireSize(mods)
					payload[i][q] += db
					e.stats.DiffsSent++
					e.stats.DiffBytes += int64(db)
				}
			}
			delete(is.dirty, pg)
		}
		e.owner[pg] = modifiers[pg][len(modifiers[pg])-1]
	}
	for i := 0; i < e.n; i++ {
		for q := 0; q < e.n; q++ {
			if !sent[i][q] {
				continue
			}
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+payload[i][q])
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+proto.AckBytes)
		}
	}
}
