package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestSendRecv(t *testing.T) {
	net := New(2)
	defer net.Close()
	a, b := net.Endpoint(0), net.Endpoint(1)
	if err := a.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	f, ok := b.Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	if f.Src != 0 || f.Dst != 1 || string(f.Payload) != "hello" {
		t.Fatalf("frame = %+v", f)
	}
}

func TestFIFOPerSender(t *testing.T) {
	net := New(2)
	defer net.Close()
	a, b := net.Endpoint(0), net.Endpoint(1)
	for i := 0; i < 100; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		f, ok := b.Recv()
		if !ok || f.Payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: %+v ok=%v", i, f, ok)
		}
	}
}

func TestAccounting(t *testing.T) {
	net := New(3)
	defer net.Close()
	a := net.Endpoint(0)
	if err := a.Send(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	tot := net.Totals()
	if tot.Messages != 2 || tot.Bytes != 150 {
		t.Fatalf("totals = %+v", tot)
	}
	by := net.SentBy(0)
	if by.Messages != 2 || by.Bytes != 150 {
		t.Fatalf("SentBy = %+v", by)
	}
	if s := net.SentBy(1); s.Messages != 0 {
		t.Fatalf("endpoint 1 sent nothing but counted %+v", s)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	net := New(2)
	defer net.Close()
	a := net.Endpoint(0)
	if err := a.Send(0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if tot := net.Totals(); tot.Messages != 0 {
		t.Fatalf("loopback counted: %+v", tot)
	}
	if f, ok := a.Recv(); !ok || string(f.Payload) != "self" {
		t.Fatal("loopback frame lost")
	}
}

func TestSendValidation(t *testing.T) {
	net := New(2)
	defer net.Close()
	if err := net.Endpoint(0).Send(5, nil); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	net := New(1)
	done := make(chan bool)
	go func() {
		_, ok := net.Endpoint(0).Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	net.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned a frame after close")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := net.Endpoint(0).Send(0, nil); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
}

func TestTryRecv(t *testing.T) {
	net := New(1)
	defer net.Close()
	e := net.Endpoint(0)
	if _, ok := e.TryRecv(); ok {
		t.Fatal("TryRecv returned a frame from an empty queue")
	}
	if err := e.Send(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if f, ok := e.TryRecv(); !ok || string(f.Payload) != "x" {
		t.Fatal("TryRecv missed a queued frame")
	}
}

func TestConcurrentSenders(t *testing.T) {
	net := New(4)
	defer net.Close()
	const per = 200
	var wg sync.WaitGroup
	for src := 1; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			e := net.Endpoint(src)
			for i := 0; i < per; i++ {
				if err := e.Send(0, []byte{byte(src), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}
	recvd := make(map[byte]int)
	e := net.Endpoint(0)
	for i := 0; i < 3*per; i++ {
		f, ok := e.Recv()
		if !ok {
			t.Fatal("Recv failed mid-stream")
		}
		// Per-sender FIFO: sequence numbers ascend within a source.
		if int(f.Payload[1]) != recvd[f.Payload[0]] {
			t.Fatalf("per-sender order violated: src %d got %d want %d",
				f.Payload[0], f.Payload[1], recvd[f.Payload[0]])
		}
		recvd[f.Payload[0]]++
	}
	wg.Wait()
	if tot := net.Totals(); tot.Messages != 3*per {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestLatencyModel(t *testing.T) {
	m := LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}
	if got := m.Cost(2048); got != time.Millisecond+200*time.Microsecond {
		t.Errorf("Cost = %v", got)
	}
	if got := m.Estimate(10, 10240); got != 10*time.Millisecond+time.Millisecond {
		t.Errorf("Estimate = %v", got)
	}
	net := New(2, WithLatency(m))
	defer net.Close()
	if err := net.Endpoint(0).Send(1, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if got := net.EstimateTime(); got != time.Millisecond+100*time.Microsecond {
		t.Errorf("EstimateTime = %v", got)
	}
}

func TestBadEndpointPanics(t *testing.T) {
	net := New(2)
	defer net.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("bad endpoint index accepted")
		}
	}()
	net.Endpoint(9)
}
