package simnet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// Network must satisfy the runtime's transport abstraction.
var _ transport.Transport = (*Network)(nil)

func TestSendRecv(t *testing.T) {
	net := New(2)
	defer net.Close()
	a, b := net.Endpoint(0), net.Endpoint(1)
	if err := a.Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	src, payload, ok := b.Recv()
	if !ok {
		t.Fatal("Recv failed")
	}
	if src != 0 || string(payload) != "hello" {
		t.Fatalf("frame = src %d payload %q", src, payload)
	}
}

func TestLocalCoversAllEndpoints(t *testing.T) {
	net := New(3)
	defer net.Close()
	if n := net.NumEndpoints(); n != 3 {
		t.Fatalf("NumEndpoints = %d", n)
	}
	local := net.Local()
	if len(local) != 3 {
		t.Fatalf("Local = %v, want all 3 endpoints", local)
	}
	for i, id := range local {
		if id != i {
			t.Fatalf("Local = %v, want ascending ids", local)
		}
		if got := net.Endpoint(id).ID(); got != id {
			t.Fatalf("Endpoint(%d).ID() = %d", id, got)
		}
	}
}

func TestFIFOPerSender(t *testing.T) {
	net := New(2)
	defer net.Close()
	a, b := net.Endpoint(0), net.Endpoint(1)
	for i := 0; i < 100; i++ {
		if err := a.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		_, payload, ok := b.Recv()
		if !ok || payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: %v ok=%v", i, payload, ok)
		}
	}
}

func TestAccounting(t *testing.T) {
	net := New(3)
	defer net.Close()
	a := net.Endpoint(0)
	if err := a.Send(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	tot := net.Totals()
	if tot.Messages != 2 || tot.Bytes != 150 {
		t.Fatalf("totals = %+v", tot)
	}
	by := net.SentBy(0)
	if by.Messages != 2 || by.Bytes != 150 {
		t.Fatalf("SentBy = %+v", by)
	}
	if s := net.SentBy(1); s.Messages != 0 {
		t.Fatalf("endpoint 1 sent nothing but counted %+v", s)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	net := New(2)
	defer net.Close()
	a := net.Endpoint(0)
	if err := a.Send(0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if tot := net.Totals(); tot.Messages != 0 {
		t.Fatalf("loopback counted: %+v", tot)
	}
	if _, payload, ok := a.Recv(); !ok || string(payload) != "self" {
		t.Fatal("loopback frame lost")
	}
}

func TestSendValidation(t *testing.T) {
	net := New(2)
	defer net.Close()
	if err := net.Endpoint(0).Send(5, nil); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	net := New(1)
	done := make(chan bool)
	go func() {
		_, _, ok := net.Endpoint(0).Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	if err := net.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned a frame after close")
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := net.Endpoint(0).Send(0, nil); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if err := net.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestTryRecv(t *testing.T) {
	net := New(1)
	defer net.Close()
	e := net.Endpoint(0).(*Endpoint)
	if _, _, ok := e.TryRecv(); ok {
		t.Fatal("TryRecv returned a frame from an empty queue")
	}
	if err := e.Send(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, payload, ok := e.TryRecv(); !ok || string(payload) != "x" {
		t.Fatal("TryRecv missed a queued frame")
	}
}

func TestConcurrentSenders(t *testing.T) {
	net := New(4)
	defer net.Close()
	const per = 200
	var wg sync.WaitGroup
	for src := 1; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			e := net.Endpoint(src)
			for i := 0; i < per; i++ {
				if err := e.Send(0, []byte{byte(src), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}
	recvd := make(map[byte]int)
	e := net.Endpoint(0)
	for i := 0; i < 3*per; i++ {
		_, payload, ok := e.Recv()
		if !ok {
			t.Fatal("Recv failed mid-stream")
		}
		// Per-sender FIFO: sequence numbers ascend within a source.
		if int(payload[1]) != recvd[payload[0]] {
			t.Fatalf("per-sender order violated: src %d got %d want %d",
				payload[0], payload[1], recvd[payload[0]])
		}
		recvd[payload[0]]++
	}
	wg.Wait()
	if tot := net.Totals(); tot.Messages != 3*per {
		t.Fatalf("totals = %+v", tot)
	}
}

func TestBadEndpointPanics(t *testing.T) {
	net := New(2)
	defer net.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("bad endpoint index accepted")
		}
	}()
	net.Endpoint(9)
}

// TestBatchedDeliveryOneHop pins the batched latency model: a batch of k
// messages is delivered as ONE network hop — one Recv payload (the
// concatenation), counted as k messages in one frame — so the latency
// model charges one fixed per-frame cost plus the byte cost, not k
// per-frame costs. This is where the paper's message-count savings
// become simulated wall-clock savings.
func TestBatchedDeliveryOneHop(t *testing.T) {
	net := New(2)
	defer net.Close()
	a, b := net.Endpoint(0), net.Endpoint(1)
	bs, ok := a.(transport.BatchSender)
	if !ok {
		t.Fatal("simnet endpoint does not implement BatchSender")
	}
	hdr := []byte("batchhdr")
	m1 := make([]byte, 100)
	m2 := make([]byte, 200)
	m3 := make([]byte, 724)
	if err := bs.SendBatch(1, [][]byte{hdr, m1, m2, m3}); err != nil {
		t.Fatal(err)
	}
	src, payload, ok := b.Recv()
	if !ok || src != 0 {
		t.Fatalf("Recv = src %d ok %v", src, ok)
	}
	if len(payload) != len(hdr)+1024 {
		t.Fatalf("batch delivered as %d bytes, want %d (one concatenated hop)", len(payload), len(hdr)+1024)
	}
	tot := net.Totals()
	want := transport.Stats{Messages: 3, Frames: 1, Batches: 1, Bytes: int64(len(hdr)) + 1024, RawBytes: int64(len(hdr)) + 1024}
	if tot != want {
		t.Fatalf("totals = %+v, want %+v", tot, want)
	}

	// The latency model must charge the per-message cost ONCE for the
	// batch: 1 frame and ~1KB, not 3 fixed costs.
	model := transport.LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}
	got := model.EstimateStats(tot)
	want1 := 1*time.Millisecond + 100*time.Microsecond
	if got != want1 {
		t.Fatalf("batched estimate = %v, want %v (one per-frame cost + per-byte cost)", got, want1)
	}
	if unbatched := model.Estimate(tot.Messages, tot.Bytes); unbatched <= got {
		t.Fatalf("unbatched estimate %v should exceed batched %v", unbatched, got)
	}

	// A loopback batch moves no counters, like loopback sends.
	if err := bs.SendBatch(0, [][]byte{hdr, m1}); err != nil {
		t.Fatal(err)
	}
	if tot2 := net.Totals(); tot2 != want {
		t.Fatalf("loopback batch counted traffic: %+v", tot2)
	}
	if _, payload, ok := a.Recv(); !ok || len(payload) != len(hdr)+100 {
		t.Fatalf("loopback batch payload = %d bytes ok=%v", len(payload), ok)
	}
}
