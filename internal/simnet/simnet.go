// Package simnet provides the simulated interconnect for the live DSM
// runtime: reliable, FIFO, point-to-point message channels between n
// endpoints (the paper's §5.1 network assumptions — no broadcast or
// multicast), with per-endpoint message and byte accounting and an
// optional latency/bandwidth model for estimating communication time.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Frame is one message in flight.
type Frame struct {
	Src, Dst int
	Payload  []byte
}

// LatencyModel estimates the wire time of messages: a fixed per-message
// latency plus a bandwidth term. The defaults approximate the 1992-era
// networks the paper targets (kernel traps, interrupts and protocol stacks
// make software DSM messages expensive, §1).
type LatencyModel struct {
	// PerMessage is the fixed cost of any message.
	PerMessage time.Duration
	// PerKByte is the additional cost per 1024 payload bytes.
	PerKByte time.Duration
}

// DefaultLatency is a millisecond-class software DSM message cost.
var DefaultLatency = LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}

// Cost returns the estimated time on the wire for one message of the
// given size.
func (m LatencyModel) Cost(bytes int) time.Duration {
	return m.PerMessage + time.Duration(int64(m.PerKByte)*int64(bytes)/1024)
}

// Estimate returns the estimated serial wire time for a message/byte
// total (messages do overlap in a real system; this is the upper bound
// used in EXPERIMENTS.md when relating counts to time).
func (m LatencyModel) Estimate(messages, bytes int64) time.Duration {
	return time.Duration(messages)*m.PerMessage + time.Duration(bytes/1024)*m.PerKByte
}

// Stats is a snapshot of traffic counters.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Network connects n endpoints with reliable FIFO delivery.
type Network struct {
	n       int
	queues  []chan Frame
	latency LatencyModel

	msgs  atomic.Int64
	bytes atomic.Int64
	// per-endpoint sent counters
	sentMsgs  []atomic.Int64
	sentBytes []atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the latency model used by EstimateTime.
func WithLatency(m LatencyModel) Option {
	return func(n *Network) { n.latency = m }
}

// WithQueueDepth is reserved for tests that want tiny queues; depth must
// be positive.
func WithQueueDepth(depth int) Option {
	return func(n *Network) {
		for i := range n.queues {
			n.queues[i] = make(chan Frame, depth)
		}
	}
}

// New creates a network of n endpoints.
func New(n int, opts ...Option) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: endpoint count %d must be positive", n))
	}
	net := &Network{
		n:         n,
		queues:    make([]chan Frame, n),
		latency:   DefaultLatency,
		sentMsgs:  make([]atomic.Int64, n),
		sentBytes: make([]atomic.Int64, n),
		closed:    make(chan struct{}),
	}
	for i := range net.queues {
		net.queues[i] = make(chan Frame, 4096)
	}
	for _, o := range opts {
		o(net)
	}
	return net
}

// NumEndpoints returns the endpoint count.
func (net *Network) NumEndpoints() int { return net.n }

// Endpoint returns endpoint i's handle.
func (net *Network) Endpoint(i int) *Endpoint {
	if i < 0 || i >= net.n {
		panic(fmt.Sprintf("simnet: endpoint %d outside [0,%d)", i, net.n))
	}
	return &Endpoint{net: net, id: i}
}

// ErrClosed is returned by Send after the network is closed.
var ErrClosed = errors.New("simnet: network closed")

// Close shuts the network down; pending and future Recv calls return
// ok=false, future Sends fail.
func (net *Network) Close() {
	net.closeOnce.Do(func() { close(net.closed) })
}

// Totals returns the global traffic counters.
func (net *Network) Totals() Stats {
	return Stats{Messages: net.msgs.Load(), Bytes: net.bytes.Load()}
}

// SentBy returns endpoint i's send counters.
func (net *Network) SentBy(i int) Stats {
	return Stats{Messages: net.sentMsgs[i].Load(), Bytes: net.sentBytes[i].Load()}
}

// EstimateTime applies the latency model to the current totals.
func (net *Network) EstimateTime() time.Duration {
	return net.latency.Estimate(net.msgs.Load(), net.bytes.Load())
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	net *Network
	id  int
}

// ID returns the endpoint's index.
func (e *Endpoint) ID() int { return e.id }

// Send delivers payload to dst, reliably and in FIFO order with respect to
// other sends from this endpoint to the same destination. Sending to
// oneself is allowed (loopback counts no traffic — local operations are
// free in the paper's cost model).
func (e *Endpoint) Send(dst int, payload []byte) error {
	if dst < 0 || dst >= e.net.n {
		return fmt.Errorf("simnet: destination %d outside [0,%d)", dst, e.net.n)
	}
	select {
	case <-e.net.closed:
		return ErrClosed
	default:
	}
	if dst != e.id {
		e.net.msgs.Add(1)
		e.net.bytes.Add(int64(len(payload)))
		e.net.sentMsgs[e.id].Add(1)
		e.net.sentBytes[e.id].Add(int64(len(payload)))
	}
	select {
	case e.net.queues[dst] <- Frame{Src: e.id, Dst: dst, Payload: payload}:
		return nil
	case <-e.net.closed:
		return ErrClosed
	}
}

// Recv blocks until a frame arrives for this endpoint or the network
// closes (ok=false).
func (e *Endpoint) Recv() (Frame, bool) {
	select {
	case f := <-e.net.queues[e.id]:
		return f, true
	case <-e.net.closed:
		// Drain anything already queued before reporting closure, so
		// shutdown does not lose frames racing with Close.
		select {
		case f := <-e.net.queues[e.id]:
			return f, true
		default:
			return Frame{}, false
		}
	}
}

// TryRecv returns immediately with ok=false if nothing is queued.
func (e *Endpoint) TryRecv() (Frame, bool) {
	select {
	case f := <-e.net.queues[e.id]:
		return f, true
	default:
		return Frame{}, false
	}
}
