// Package simnet provides the simulated in-process interconnect for the
// live DSM runtime — the default transport.Transport implementation:
// reliable, FIFO, point-to-point message channels between n endpoints
// (the paper's §5.1 network assumptions — no broadcast or multicast),
// with per-endpoint message and byte accounting. All n endpoints are
// local to the process; internal/transport/tcp is the cross-process
// counterpart.
package simnet

import (
	"fmt"
	stdnet "net"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
)

// Stats is a snapshot of traffic counters.
type Stats = transport.Stats

// ErrClosed is returned by Send after the network is closed.
var ErrClosed = transport.ErrClosed

// frame is one message in flight.
type frame struct {
	src     int
	payload []byte
}

// Network connects n endpoints with reliable FIFO delivery. It
// implements transport.Transport, serving every endpoint in-process.
type Network struct {
	n      int
	queues []chan frame

	msgs     atomic.Int64
	frames   atomic.Int64
	batches  atomic.Int64
	bytes    atomic.Int64
	rawBytes atomic.Int64
	// per-endpoint sent counters
	sentMsgs     []atomic.Int64
	sentFrames   []atomic.Int64
	sentBatches  []atomic.Int64
	sentBytes    []atomic.Int64
	sentRawBytes []atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

// Option configures a Network.
type Option func(*Network)

// WithQueueDepth is reserved for tests that want tiny queues; depth must
// be positive.
func WithQueueDepth(depth int) Option {
	return func(n *Network) {
		for i := range n.queues {
			n.queues[i] = make(chan frame, depth)
		}
	}
}

// New creates a network of n endpoints.
func New(n int, opts ...Option) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("simnet: endpoint count %d must be positive", n))
	}
	net := &Network{
		n:            n,
		queues:       make([]chan frame, n),
		sentMsgs:     make([]atomic.Int64, n),
		sentFrames:   make([]atomic.Int64, n),
		sentBatches:  make([]atomic.Int64, n),
		sentBytes:    make([]atomic.Int64, n),
		sentRawBytes: make([]atomic.Int64, n),
		closed:       make(chan struct{}),
	}
	for i := range net.queues {
		net.queues[i] = make(chan frame, 4096)
	}
	for _, o := range opts {
		o(net)
	}
	return net
}

// NumEndpoints returns the endpoint count.
func (net *Network) NumEndpoints() int { return net.n }

// Local returns every endpoint id: the whole cluster lives in-process.
func (net *Network) Local() []int {
	ids := make([]int, net.n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Endpoint returns endpoint i's handle.
func (net *Network) Endpoint(i int) transport.Endpoint {
	if i < 0 || i >= net.n {
		panic(fmt.Sprintf("simnet: endpoint %d outside [0,%d)", i, net.n))
	}
	return &Endpoint{net: net, id: i}
}

// Close shuts the network down; pending and future Recv calls return
// ok=false, future Sends fail. The in-process network has no teardown
// failure modes, so the error is always nil.
func (net *Network) Close() error {
	net.closeOnce.Do(func() { close(net.closed) })
	return nil
}

// Totals returns the global traffic counters.
func (net *Network) Totals() Stats {
	return Stats{
		Messages: net.msgs.Load(),
		Frames:   net.frames.Load(),
		Batches:  net.batches.Load(),
		Bytes:    net.bytes.Load(),
		RawBytes: net.rawBytes.Load(),
	}
}

// SentBy returns endpoint i's send counters.
func (net *Network) SentBy(i int) Stats {
	return Stats{
		Messages: net.sentMsgs[i].Load(),
		Frames:   net.sentFrames[i].Load(),
		Batches:  net.sentBatches[i].Load(),
		Bytes:    net.sentBytes[i].Load(),
		RawBytes: net.sentRawBytes[i].Load(),
	}
}

// Endpoint is one node's attachment to the network.
type Endpoint struct {
	net *Network
	id  int
}

// ID returns the endpoint's index.
func (e *Endpoint) ID() int { return e.id }

// Send delivers payload to dst, reliably and in FIFO order with respect to
// other sends from this endpoint to the same destination. Sending to
// oneself is allowed (loopback counts no traffic — local operations are
// free in the paper's cost model). Ownership of payload transfers: the
// buffer itself is enqueued for the receiver, zero-copy.
func (e *Endpoint) Send(dst int, payload []byte) error {
	if dst < 0 || dst >= e.net.n {
		return fmt.Errorf("simnet: destination %d outside [0,%d)", dst, e.net.n)
	}
	select {
	case <-e.net.closed:
		return ErrClosed
	default:
	}
	if dst != e.id {
		e.net.msgs.Add(1)
		e.net.frames.Add(1)
		e.net.bytes.Add(int64(len(payload)))
		e.net.rawBytes.Add(int64(len(payload)))
		e.net.sentMsgs[e.id].Add(1)
		e.net.sentFrames[e.id].Add(1)
		e.net.sentBytes[e.id].Add(int64(len(payload)))
		e.net.sentRawBytes[e.id].Add(int64(len(payload)))
	}
	select {
	case e.net.queues[dst] <- frame{src: e.id, payload: payload}:
		return nil
	case <-e.net.closed:
		return ErrClosed
	}
}

// SendBatch delivers a batch — frames[0] the caller's batch header, each
// later element one logical message — to dst as ONE network hop: the
// concatenation arrives as a single Recv payload, and the traffic
// counters record len(frames)-1 messages in one frame, so the latency
// model charges the fixed per-message cost once for the whole batch (the
// frame buffers are borrowed; the delivered payload is a copy).
func (e *Endpoint) SendBatch(dst int, frames stdnet.Buffers) error {
	if dst < 0 || dst >= e.net.n {
		return fmt.Errorf("simnet: destination %d outside [0,%d)", dst, e.net.n)
	}
	if len(frames) < 2 {
		return fmt.Errorf("simnet: batch of %d buffers (need header plus messages)", len(frames))
	}
	select {
	case <-e.net.closed:
		return ErrClosed
	default:
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	payload := make([]byte, 0, total)
	for _, f := range frames {
		payload = append(payload, f...)
	}
	if dst != e.id {
		msgs := int64(len(frames) - 1)
		e.net.msgs.Add(msgs)
		e.net.frames.Add(1)
		e.net.batches.Add(1)
		e.net.bytes.Add(int64(total))
		e.net.rawBytes.Add(int64(total))
		e.net.sentMsgs[e.id].Add(msgs)
		e.net.sentFrames[e.id].Add(1)
		e.net.sentBatches[e.id].Add(1)
		e.net.sentBytes[e.id].Add(int64(total))
		e.net.sentRawBytes[e.id].Add(int64(total))
	}
	select {
	case e.net.queues[dst] <- frame{src: e.id, payload: payload}:
		return nil
	case <-e.net.closed:
		return ErrClosed
	}
}

var _ transport.BatchSender = (*Endpoint)(nil)

// SendCompressed delivers one compressed frame carrying msgs logical
// messages whose pre-compression encoding was rawBytes long. The wire
// byte counters see the compressed length; RawBytes records the logical
// size, so RawBytes-Bytes is the saving compression bought. Ownership
// of payload transfers like Send.
func (e *Endpoint) SendCompressed(dst, msgs, rawBytes int, payload []byte) error {
	if dst < 0 || dst >= e.net.n {
		return fmt.Errorf("simnet: destination %d outside [0,%d)", dst, e.net.n)
	}
	select {
	case <-e.net.closed:
		return ErrClosed
	default:
	}
	if dst != e.id {
		e.net.msgs.Add(int64(msgs))
		e.net.frames.Add(1)
		if msgs > 1 {
			e.net.batches.Add(1)
		}
		e.net.bytes.Add(int64(len(payload)))
		e.net.rawBytes.Add(int64(rawBytes))
		e.net.sentMsgs[e.id].Add(int64(msgs))
		e.net.sentFrames[e.id].Add(1)
		if msgs > 1 {
			e.net.sentBatches[e.id].Add(1)
		}
		e.net.sentBytes[e.id].Add(int64(len(payload)))
		e.net.sentRawBytes[e.id].Add(int64(rawBytes))
	}
	select {
	case e.net.queues[dst] <- frame{src: e.id, payload: payload}:
		return nil
	case <-e.net.closed:
		return ErrClosed
	}
}

var _ transport.CompressedSender = (*Endpoint)(nil)

// Recv blocks until a payload arrives for this endpoint or the network
// closes (ok=false).
func (e *Endpoint) Recv() (src int, payload []byte, ok bool) {
	select {
	case f := <-e.net.queues[e.id]:
		return f.src, f.payload, true
	case <-e.net.closed:
		// Drain anything already queued before reporting closure, so
		// shutdown does not lose frames racing with Close.
		select {
		case f := <-e.net.queues[e.id]:
			return f.src, f.payload, true
		default:
			return 0, nil, false
		}
	}
}

// TryRecv returns immediately with ok=false if nothing is queued.
func (e *Endpoint) TryRecv() (src int, payload []byte, ok bool) {
	select {
	case f := <-e.net.queues[e.id]:
		return f.src, f.payload, true
	default:
		return 0, nil, false
	}
}
