package sim

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/trace"
)

// randomLegalTrace builds a structurally legal trace with random accesses,
// lock critical sections and barrier episodes — a fuzz driver for every
// protocol engine.
func randomLegalTrace(seed int64, events int) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	const procs = 8
	tr := &trace.Trace{
		NumProcs:    procs,
		SpaceSize:   64 * 1024,
		NumLocks:    6,
		NumBarriers: 2,
		Name:        "fuzz",
	}
	held := make(map[int]int32) // proc -> held lock (single depth)
	for i := 0; i < events; i++ {
		p := r.Intn(procs)
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			addr := mem.Addr(r.Intn(64*1024 - 64))
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.Read, Proc: mem.ProcID(p), Addr: addr, Size: int32(1 + r.Intn(64)),
			})
		case 4, 5, 6:
			addr := mem.Addr(r.Intn(64*1024 - 64))
			tr.Events = append(tr.Events, trace.Event{
				Kind: trace.Write, Proc: mem.ProcID(p), Addr: addr, Size: int32(1 + r.Intn(64)),
			})
		case 7, 8:
			if l, ok := held[p]; ok {
				tr.Events = append(tr.Events, trace.Event{Kind: trace.Release, Proc: mem.ProcID(p), Sync: l})
				delete(held, p)
			} else {
				// Pick a lock nobody holds.
				l := int32(r.Intn(6))
				free := true
				for _, hl := range held {
					if hl == l {
						free = false
					}
				}
				if free {
					tr.Events = append(tr.Events, trace.Event{Kind: trace.Acquire, Proc: mem.ProcID(p), Sync: l})
					held[p] = l
				}
			}
		case 9:
			if len(held) == 0 && r.Intn(4) == 0 {
				// Full barrier episode (everyone must be outside critical
				// sections for trace legality here).
				b := int32(r.Intn(2))
				for q := 0; q < procs; q++ {
					tr.Events = append(tr.Events, trace.Event{Kind: trace.Barrier, Proc: mem.ProcID(q), Sync: b})
				}
			}
		}
	}
	// Release everything still held.
	for p, l := range held {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.Release, Proc: mem.ProcID(p), Sync: l})
	}
	return tr
}

// TestRandomTracesAllProtocols replays randomized legal traces through
// every protocol at every paper page size: no panics, sane stats, and
// deterministic replay.
func TestRandomTracesAllProtocols(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tr := randomLegalTrace(seed, 800)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid trace: %v", seed, err)
		}
		for _, name := range AllProtocolNames {
			for _, ps := range mem.PaperPageSizes {
				a, err := Run(tr, name, ps, proto.Options{})
				if err != nil {
					t.Fatalf("seed %d %s/%d: %v", seed, name, ps, err)
				}
				b, err := Run(tr, name, ps, proto.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if a.TotalMessages() != b.TotalMessages() || a.TotalBytes() != b.TotalBytes() {
					t.Errorf("seed %d %s/%d: nondeterministic replay", seed, name, ps)
				}
				if a.TotalBytes() < a.TotalMessages()*proto.MsgHeaderBytes {
					t.Errorf("seed %d %s/%d: bytes %d below header floor for %d messages",
						seed, name, ps, a.TotalBytes(), a.TotalMessages())
				}
			}
		}
	}
}

// TestRandomTracesAblations replays randomized traces with every ablation
// combination through the lazy engines.
func TestRandomTracesAblations(t *testing.T) {
	tr := randomLegalTrace(99, 600)
	combos := []proto.Options{
		{NoPiggyback: true},
		{NoDiffs: true},
		{ExclusiveWriter: true},
		{NoPiggyback: true, NoDiffs: true, ExclusiveWriter: true},
	}
	for _, opts := range combos {
		for _, name := range ProtocolNames {
			base, err := Run(tr, name, 1024, proto.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ablated, err := Run(tr, name, 1024, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			// Ablations remove optimizations: they can only add traffic.
			if ablated.TotalBytes() < base.TotalBytes() && ablated.TotalMessages() < base.TotalMessages() {
				t.Errorf("%s %+v: ablation reduced both messages (%d<%d) and bytes (%d<%d)",
					name, opts, ablated.TotalMessages(), base.TotalMessages(),
					ablated.TotalBytes(), base.TotalBytes())
			}
		}
	}
}

// TestColdMissesBounded: every (proc, page) pair cold-misses at most once.
func TestColdMissesBounded(t *testing.T) {
	tr := randomLegalTrace(7, 1000)
	layout, _ := mem.NewLayout(tr.SpaceSize, 512)
	bound := int64(tr.NumProcs * layout.NumPages())
	for _, name := range AllProtocolNames {
		st, err := Run(tr, name, 512, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st.ColdMisses > bound {
			t.Errorf("%s: %d cold misses exceeds procs*pages = %d", name, st.ColdMisses, bound)
		}
	}
}

// TestLazyReleasesNeverSend is the paper's defining property (§4.2):
// replaying any trace, the lazy engines charge zero messages to the
// unlock category.
func TestLazyReleasesNeverSend(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := randomLegalTrace(seed, 700)
		for _, name := range []string{"LI", "LU"} {
			st, err := Run(tr, name, 1024, proto.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Msgs[proto.CatUnlock] != 0 {
				t.Errorf("seed %d %s: %d unlock messages, want 0", seed, name, st.Msgs[proto.CatUnlock])
			}
		}
	}
}

// TestEagerNoticesNeverRideLocks: eager engines perform no consistency
// work at acquire time, so their lock-category bytes are exactly the
// fixed lock messages (no piggybacked payload).
func TestEagerLockBytesAreFixed(t *testing.T) {
	tr := randomLegalTrace(3, 700)
	for _, name := range []string{"EI", "EU"} {
		st, err := Run(tr, name, 1024, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		maxPerMsg := int64(proto.MsgHeaderBytes + proto.LockReqBytes)
		if st.Msgs[proto.CatLock] > 0 && st.Bytes[proto.CatLock] > st.Msgs[proto.CatLock]*maxPerMsg {
			t.Errorf("%s: lock bytes %d exceed fixed-size bound %d",
				name, st.Bytes[proto.CatLock], st.Msgs[proto.CatLock]*maxPerMsg)
		}
	}
}
