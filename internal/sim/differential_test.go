package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dsm"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/workload"
)

// Cross-protocol differential fuzz: randomized data-race-free programs are
// executed on the lockstep backend, and the resulting trace is replayed
// under every protocol engine — LRC (LI, LU), eager RC (EI, EU) and the
// Ivy SC baseline — with the value plane running beside each engine; the
// same programs then run for real on the live runtime in both modes. The
// protocols differ in traffic, never in values: every final memory image
// must equal the lockstep reference, and for the invalidate-family engines
// every synchronized read must observe current bytes.

// fuzzMix is an independent deterministic stream per (seed, lane).
func fuzzMix(seed, lane int64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(lane)*0xd1342543de82ef95 + 1
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// fuzzProg is a randomized data-race-free program. Its shared state is a
// set of lock-guarded regions (one per lock, plus an 8-byte cursor each)
// and per-processor private slices; barriers separate phases. Within one
// phase each guarded region is touched by a single commuting operation
// family (fill-writes, updates, or fetch-adds) chosen from a structure
// stream shared by all processors, so the final image is independent of
// the interleaving — and every read is synchronized, so the value plane's
// read-currency asserts must hold under the invalidate protocols.
type fuzzProg struct {
	procs, locks, phases, ops int
	seed                      int64

	counters workload.Region   // one 8-byte cursor per lock
	shared   []workload.Region // one guarded region per lock
	private  []workload.Region // one slice per processor
	space    mem.Addr
}

func newFuzzProg(seed int64, procs int) *fuzzProg {
	p := &fuzzProg{procs: procs, locks: 4, phases: 5, ops: 80, seed: seed}
	var s workload.Space
	p.counters = s.AllocArray(p.locks, 8)
	for l := 0; l < p.locks; l++ {
		p.shared = append(p.shared, s.AllocArray(48, 16))
	}
	for q := 0; q < procs; q++ {
		p.private = append(p.private, s.AllocArray(40, 16))
	}
	p.space = s.Used()
	return p
}

func (p *fuzzProg) Name() string { return "fuzz" }

func (p *fuzzProg) Config() workload.Config {
	return workload.Config{
		NumProcs:    p.procs,
		SpaceSize:   p.space,
		NumLocks:    p.locks,
		NumBarriers: 2,
	}
}

func (p *fuzzProg) Proc(c workload.Ctx) {
	me := c.Proc()
	mine := p.private[me]
	for phase := 0; phase < p.phases; phase++ {
		// Operation family per guarded region this phase — identical on
		// every processor (derived from (seed, phase), not the proc).
		structR := rand.New(rand.NewSource(fuzzMix(p.seed, int64(phase))))
		family := make([]int, p.locks)
		for l := range family {
			family[l] = structR.Intn(3)
		}
		r := rand.New(rand.NewSource(fuzzMix(p.seed, int64(1000+phase*64+me))))
		for op := 0; op < p.ops; op++ {
			switch r.Intn(8) {
			case 0, 1:
				// Private writes: single-writer, program-ordered.
				off := mem.Addr(r.Intn(int(mine.Size) - 16))
				if r.Intn(2) == 0 {
					c.Write(mine.At(off), 8+r.Intn(8))
				} else {
					c.Update(mine.At(off), 4+r.Intn(8))
				}
			case 2:
				c.Read(mine.At(mem.Addr(r.Intn(int(mine.Size)-16))), 16)
			default:
				l := r.Intn(p.locks)
				reg := p.shared[l]
				workload.Locked(c, l, func() {
					off := mem.Addr(r.Intn(int(reg.Size) - 16))
					switch family[l] {
					case 0:
						c.Write(reg.At(off), 8+r.Intn(8))
					case 1:
						c.Update(reg.At(off), 4+r.Intn(8))
					case 2:
						c.FetchAddUint64(p.counters.Elem(l, 8), uint64(1+r.Intn(5)))
					}
					c.Read(reg.At(off), 8)
				})
			}
		}
		c.Barrier(phase % 2)
	}
}

func TestCrossProtocolDifferentialFuzz(t *testing.T) {
	seeds, pageSizes := []int64{1, 2, 3, 4, 5, 6}, []int{512, 2048}
	if testing.Short() {
		seeds, pageSizes = seeds[:2], pageSizes[:1]
	}
	for _, seed := range seeds {
		prog := newFuzzProg(seed, 5)
		ref, err := workload.Execute(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(ref.Trace.Image(), ref.Image) {
			t.Fatalf("seed %d: trace value replay diverges from lockstep image", seed)
		}
		for _, name := range AllProtocolNames {
			// LI and SC move data exclusively at access misses, so the
			// value plane can additionally assert that every synchronized
			// read observes current bytes. EI's false-sharing ack-merge
			// and the update protocols' pushes move data outside misses,
			// invisible to the plane; the lazy pair's value paths are
			// checked for real on the live runtime below.
			checkReads := name == "LI" || name == "SC"
			for _, ps := range pageSizes {
				img, err := ReplayImage(ref.Trace, name, ps, proto.Options{}, checkReads)
				if err != nil {
					t.Fatalf("seed %d %s/%d: %v", seed, name, ps, err)
				}
				if !bytes.Equal(img, ref.Image) {
					t.Errorf("seed %d %s/%d: final image diverges from reference", seed, name, ps)
				}
			}
		}
		for _, mode := range []dsm.Mode{dsm.LazyInvalidate, dsm.LazyUpdate} {
			res, err := workload.RunOnRuntime(prog, workload.RuntimeConfig{PageSize: pageSizes[0], Mode: mode})
			if err != nil {
				t.Fatalf("seed %d runtime %s: %v", seed, mode, err)
			}
			if !bytes.Equal(res.Image, ref.Image) {
				t.Errorf("seed %d runtime %s: final image diverges from reference", seed, mode)
			}
		}
	}
}

// TestReplayImageMatchesWorkloadTraces replays every SPLASH workload trace
// through every protocol engine's value plane: the images agree with the
// lockstep reference across all five protocols and page sizes.
func TestReplayImageMatchesWorkloadTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-protocol image sweep skipped in short mode")
	}
	for _, name := range workload.Names {
		ref, err := workload.ExecuteCached(name, 8, 0.1, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, protoName := range AllProtocolNames {
			img, err := ReplayImage(ref.Trace, protoName, 1024, proto.Options{}, false)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, protoName, err)
			}
			if !bytes.Equal(img, ref.Image) {
				t.Errorf("%s/%s: image diverges from reference", name, protoName)
			}
		}
	}
}
