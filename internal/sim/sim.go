// Package sim is the trace-driven protocol simulator of the paper's §5.1:
// it replays a globally-ordered execution trace against a consistency
// protocol engine under a chosen page size and reports message and data
// totals. Sweeps run every (protocol, page size) combination — in
// parallel, since each run is independent — producing the series behind
// the paper's figures.
package sim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/eager"
	"repro/internal/ivy"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/trace"
)

// ProtocolNames lists the four protocols of the paper's evaluation, in its
// presentation order.
var ProtocolNames = []string{"LI", "LU", "EI", "EU"}

// AllProtocolNames additionally includes the SC (Ivy) baseline ablation.
var AllProtocolNames = []string{"LI", "LU", "EI", "EU", "SC"}

// NewProtocol constructs a protocol engine by name for n processors over
// layout, with the given ablation options. Valid names are LI, LU, EI,
// EU and SC.
func NewProtocol(name string, layout *mem.Layout, n int, opts proto.Options) (proto.Protocol, error) {
	switch name {
	case "LI":
		return core.NewEngine(layout, n, core.Invalidate, opts), nil
	case "LU":
		return core.NewEngine(layout, n, core.Update, opts), nil
	case "EI":
		return eager.NewEngine(layout, n, eager.Invalidate, opts), nil
	case "EU":
		return eager.NewEngine(layout, n, eager.Update, opts), nil
	case "SC":
		return ivy.NewEngine(layout, n), nil
	default:
		return nil, fmt.Errorf("sim: unknown protocol %q (want one of LI, LU, EI, EU, SC)", name)
	}
}

// Replay feeds every event of t to p in order, buffering barrier arrivals
// into complete episodes. The trace must be valid (trace.Validate).
func Replay(t *trace.Trace, p proto.Protocol) error {
	pending := make(map[int32][]mem.ProcID)
	for i, e := range t.Events {
		switch e.Kind {
		case trace.Read:
			p.Read(e.Proc, e.Addr, int(e.Size))
		case trace.Write, trace.SetVal:
			p.Write(e.Proc, e.Addr, int(e.Size))
		case trace.Update, trace.AddVal:
			// Read-modify-writes cost a protocol exactly a read plus a
			// write of the same range.
			p.Read(e.Proc, e.Addr, int(e.Size))
			p.Write(e.Proc, e.Addr, int(e.Size))
		case trace.Acquire:
			p.Acquire(e.Proc, mem.LockID(e.Sync))
		case trace.Release:
			p.Release(e.Proc, mem.LockID(e.Sync))
		case trace.Barrier:
			arr := append(pending[e.Sync], e.Proc)
			if len(arr) == t.NumProcs {
				p.Barrier(arr, mem.BarrierID(e.Sync))
				delete(pending, e.Sync)
			} else {
				pending[e.Sync] = arr
			}
		default:
			return fmt.Errorf("sim: event %d has invalid kind %d", i, e.Kind)
		}
	}
	if len(pending) != 0 {
		return fmt.Errorf("sim: trace ended with %d incomplete barrier episodes", len(pending))
	}
	return nil
}

// Run replays trace t against protocol name under the given page size and
// returns the resulting statistics.
func Run(t *trace.Trace, name string, pageSize int, opts proto.Options) (*proto.Stats, error) {
	layout, err := mem.NewLayout(t.SpaceSize, pageSize)
	if err != nil {
		return nil, err
	}
	p, err := NewProtocol(name, layout, t.NumProcs, opts)
	if err != nil {
		return nil, err
	}
	if err := Replay(t, p); err != nil {
		return nil, err
	}
	return p.Stats(), nil
}

// Result is one point of a sweep: a protocol at a page size.
type Result struct {
	Workload string
	Protocol string
	PageSize int
	Stats    *proto.Stats
}

// Messages returns the total message count at this point.
func (r Result) Messages() int64 { return r.Stats.TotalMessages() }

// DataBytes returns the total wire bytes at this point.
func (r Result) DataBytes() int64 { return r.Stats.TotalBytes() }

// Sweep replays t against each named protocol at each page size,
// one goroutine per (protocol, page size) point, and returns the results
// ordered by protocol (in the given order) then descending page size (the
// paper's figure x-axis runs 8192 down to 512).
func Sweep(t *trace.Trace, protocols []string, pageSizes []int, opts proto.Options) ([]Result, error) {
	type job struct {
		proto    string
		pageSize int
	}
	jobs := make([]job, 0, len(protocols)*len(pageSizes))
	for _, p := range protocols {
		for _, s := range pageSizes {
			jobs = append(jobs, job{p, s})
		}
	}
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			st, err := Run(t, j.proto, j.pageSize, opts)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = Result{Workload: t.Name, Protocol: j.proto, PageSize: j.pageSize, Stats: st}
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	order := make(map[string]int, len(protocols))
	for i, p := range protocols {
		order[p] = i
	}
	sort.SliceStable(results, func(a, b int) bool {
		if order[results[a].Protocol] != order[results[b].Protocol] {
			return order[results[a].Protocol] < order[results[b].Protocol]
		}
		return results[a].PageSize > results[b].PageSize
	})
	return results, nil
}

// Series extracts, for one protocol, the metric values ordered by the
// given page sizes; metric is "messages" or "data".
func Series(results []Result, protocol string, pageSizes []int, metric string) ([]int64, error) {
	byPS := make(map[int]Result)
	for _, r := range results {
		if r.Protocol == protocol {
			byPS[r.PageSize] = r
		}
	}
	out := make([]int64, 0, len(pageSizes))
	for _, ps := range pageSizes {
		r, ok := byPS[ps]
		if !ok {
			return nil, fmt.Errorf("sim: no result for protocol %s at page size %d", protocol, ps)
		}
		switch metric {
		case "messages":
			out = append(out, r.Messages())
		case "data":
			out = append(out, r.DataBytes())
		default:
			return nil, fmt.Errorf("sim: unknown metric %q (want messages or data)", metric)
		}
	}
	return out, nil
}
