package sim

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/trace"
)

// Table 1 of the paper gives the per-operation message costs:
//
//	        Access Miss   Locks    Unlocks   Barriers
//	LI      2m            3        0         2(n-1)
//	LU      2m            3+2h     0         2(n-1)+2u
//	EI      2 or 3        3        2c        2(n-1)+2v
//	EU      2 or 3        3        2c        2(n-1)+2u
//
// These tests drive each engine through micro-traces that pin m, h, c, u
// and v to known values and assert the exact message deltas. They
// complement the per-engine unit tests by exercising the costs through the
// trace-replay path used by the benchmarks.

const t1Procs = 4

// t1Trace wraps events into a validated trace over 16 pages of 1 KB.
func t1Trace(t *testing.T, events []trace.Event) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{
		NumProcs:    t1Procs,
		SpaceSize:   16384,
		NumLocks:    4,
		NumBarriers: 1,
		Name:        "table1",
		Events:      events,
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("bad micro-trace: %v", err)
	}
	return tr
}

// msgsAfterPrefix returns total messages for the full trace minus the
// total for the prefix, isolating the cost of the suffix operations.
func msgsAfterPrefix(t *testing.T, name string, events []trace.Event, split int) int64 {
	t.Helper()
	full, err := Run(t1Trace(t, events), name, 1024, proto.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The prefix must itself be a valid trace (balanced locks/barriers).
	prefix, err := Run(t1Trace(t, events[:split]), name, 1024, proto.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return full.TotalMessages() - prefix.TotalMessages()
}

func TestTable1LockTransfer(t *testing.T) {
	// Remote lock transfer: requester -> manager -> holder -> grant.
	events := []trace.Event{
		{Kind: trace.Acquire, Proc: 0, Sync: 2},
		{Kind: trace.Release, Proc: 0, Sync: 2},
		// -- split --
		{Kind: trace.Acquire, Proc: 3, Sync: 2},
		{Kind: trace.Release, Proc: 3, Sync: 2},
	}
	for _, name := range ProtocolNames {
		if got := msgsAfterPrefix(t, name, events, 2); got != 3 {
			t.Errorf("%s: lock transfer = %d messages, want 3", name, got)
		}
	}
}

func TestTable1UnlockCost(t *testing.T) {
	// c = 2: processors 1 and 2 cache the page p0 dirties. Lazy unlocks
	// are free; eager unlocks cost 2c = 4.
	events := []trace.Event{
		{Kind: trace.Read, Proc: 1, Addr: 0, Size: 8},
		{Kind: trace.Read, Proc: 2, Addr: 0, Size: 8},
		{Kind: trace.Acquire, Proc: 0, Sync: 2},
		{Kind: trace.Write, Proc: 0, Addr: 16, Size: 8},
		// -- split --
		{Kind: trace.Release, Proc: 0, Sync: 2},
	}
	// The prefix for the release-only suffix isn't lock-balanced, so
	// compute deltas against a manually completed prefix instead.
	for _, c := range []struct {
		name string
		want int64
	}{{"LI", 0}, {"LU", 0}, {"EI", 4}, {"EU", 4}} {
		full, err := Run(t1Trace(t, events), c.name, 1024, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Prefix trace with a free release (no dirty pages) to stay
		// balanced: p0 acquires and releases without writing.
		prefixEvents := []trace.Event{
			{Kind: trace.Read, Proc: 1, Addr: 0, Size: 8},
			{Kind: trace.Read, Proc: 2, Addr: 0, Size: 8},
			{Kind: trace.Acquire, Proc: 0, Sync: 2},
			{Kind: trace.Release, Proc: 0, Sync: 2},
		}
		prefix, err := Run(t1Trace(t, prefixEvents), c.name, 1024, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := full.TotalMessages() - prefix.TotalMessages()
		// got also includes p0's cold write miss; measure that separately
		// and subtract it, leaving the pure unlock cost.
		missOnly := []trace.Event{
			{Kind: trace.Read, Proc: 1, Addr: 0, Size: 8},
			{Kind: trace.Read, Proc: 2, Addr: 0, Size: 8},
			{Kind: trace.Write, Proc: 0, Addr: 16, Size: 8},
		}
		withMiss, err := Run(t1Trace(t, missOnly), c.name, 1024, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		noMiss, err := Run(t1Trace(t, missOnly[:2]), c.name, 1024, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		missCost := withMiss.TotalMessages() - noMiss.TotalMessages()
		if got-missCost != c.want {
			t.Errorf("%s: unlock with c=2 = %d messages, want %d", c.name, got-missCost, c.want)
		}
	}
}

func TestTable1LazyMissCost(t *testing.T) {
	// m = 2 concurrent last modifiers: p0 and p1 write the same page
	// under different locks; p3 (which cached the page) synchronizes with
	// both and misses: 2m = 4 messages.
	events := []trace.Event{
		{Kind: trace.Read, Proc: 3, Addr: 0, Size: 8},
		{Kind: trace.Acquire, Proc: 0, Sync: 1},
		{Kind: trace.Write, Proc: 0, Addr: 16, Size: 8},
		{Kind: trace.Release, Proc: 0, Sync: 1},
		{Kind: trace.Acquire, Proc: 1, Sync: 2},
		{Kind: trace.Write, Proc: 1, Addr: 32, Size: 8},
		{Kind: trace.Release, Proc: 1, Sync: 2},
		{Kind: trace.Acquire, Proc: 3, Sync: 1},
		{Kind: trace.Release, Proc: 3, Sync: 1},
		{Kind: trace.Acquire, Proc: 3, Sync: 2},
		{Kind: trace.Release, Proc: 3, Sync: 2},
		// -- split --
		{Kind: trace.Read, Proc: 3, Addr: 0, Size: 8},
	}
	if got := msgsAfterPrefix(t, "LI", events, 11); got != 4 {
		t.Errorf("LI miss with m=2: %d messages, want 4", got)
	}
}

func TestTable1EagerMissCost(t *testing.T) {
	// Eager miss: 2 messages when the manager can satisfy it, 3 when it
	// forwards to the owner.
	twoMsg := []trace.Event{
		// -- split at 0 --
		{Kind: trace.Read, Proc: 0, Addr: 1024, Size: 8}, // page 1, manager p1 owns
	}
	for _, name := range []string{"EI", "EU"} {
		full, err := Run(t1Trace(t, twoMsg), name, 1024, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := full.TotalMessages(); got != 2 {
			t.Errorf("%s: manager-satisfied miss = %d messages, want 2", name, got)
		}
	}
	threeMsg := []trace.Event{
		{Kind: trace.Acquire, Proc: 0, Sync: 1},
		{Kind: trace.Write, Proc: 0, Addr: 1024, Size: 8}, // p0 becomes owner
		{Kind: trace.Release, Proc: 0, Sync: 1},
		// -- split --
		{Kind: trace.Read, Proc: 3, Addr: 1024, Size: 8}, // p3 -> mgr p1 -> owner p0
	}
	for _, name := range []string{"EI", "EU"} {
		if got := msgsAfterPrefix(t, name, threeMsg, 3); got != 3 {
			t.Errorf("%s: forwarded miss = %d messages, want 3", name, got)
		}
	}
}

func TestTable1BarrierCost(t *testing.T) {
	// Clean barrier (no modifications): 2(n-1) for every protocol.
	events := []trace.Event{
		{Kind: trace.Barrier, Proc: 0, Sync: 0},
		{Kind: trace.Barrier, Proc: 1, Sync: 0},
		{Kind: trace.Barrier, Proc: 2, Sync: 0},
		{Kind: trace.Barrier, Proc: 3, Sync: 0},
	}
	for _, name := range ProtocolNames {
		st, err := Run(t1Trace(t, events), name, 1024, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.TotalMessages(); got != 2*(t1Procs-1) {
			t.Errorf("%s: clean barrier = %d messages, want %d", name, got, 2*(t1Procs-1))
		}
	}
}
