package sim

import (
	"bytes"
	"fmt"

	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/trace"
)

// pageStater is implemented by protocol engines that can report whether a
// processor holds a current copy of a page (core.Engine, eager.Engine and
// ivy.Engine all do).
type pageStater interface {
	PageStatus(p mem.ProcID, addr mem.Addr) (valid, present bool)
}

// valuePlane tracks, alongside a protocol replay, the memory values each
// processor's cached pages would hold. The truth image applies every write
// in trace order (the trace is one total order, so truth is what any
// correct protocol delivers on a fetch); a processor's copy of a page is
// refreshed from truth exactly when the engine takes a miss on it, and is
// written through by the processor's own writes — the twin model. Between
// refreshes a copy goes stale precisely where remote writes landed, so
// comparing the bytes a processor actually reads against truth detects
// missing or late invalidations.
type valuePlane struct {
	layout *mem.Layout
	truth  []byte
	copies [][][]byte // [proc][page], nil until first refresh
}

func newValuePlane(layout *mem.Layout, procs int) *valuePlane {
	vp := &valuePlane{
		layout: layout,
		truth:  make([]byte, layout.SpaceSize()),
		copies: make([][][]byte, procs),
	}
	for i := range vp.copies {
		vp.copies[i] = make([][]byte, layout.NumPages())
	}
	return vp
}

// refresh overwrites p's copy of pg with the current truth (a fetch).
func (vp *valuePlane) refresh(p mem.ProcID, pg mem.PageID) {
	c := vp.copies[p][pg]
	if c == nil {
		c = make([]byte, vp.layout.PageSize())
		vp.copies[p][pg] = c
	}
	copy(c, vp.truth[vp.layout.Base(pg):])
}

// checkRead verifies that the bytes p reads are current in its copies.
func (vp *valuePlane) checkRead(p mem.ProcID, addr mem.Addr, size int) error {
	var err error
	vp.layout.SplitRange(addr, size, func(pg mem.PageID, off, n int) {
		if err != nil {
			return
		}
		c := vp.copies[p][pg]
		if c == nil {
			err = fmt.Errorf("p%d reads page %d with no copy materialized", p, pg)
			return
		}
		base := vp.layout.Base(pg)
		if !bytes.Equal(c[off:off+n], vp.truth[base+mem.Addr(off):base+mem.Addr(off+n)]) {
			err = fmt.Errorf("p%d reads stale bytes at [%d,%d)", p, base+mem.Addr(off), base+mem.Addr(off)+mem.Addr(n))
		}
	})
	return err
}

// applyWrite applies e's value semantics to truth and writes it through to
// p's own copy.
func (vp *valuePlane) applyWrite(e trace.Event) {
	trace.ApplyEvent(vp.truth, e)
	vp.layout.SplitRange(e.Addr, int(e.Size), func(pg mem.PageID, off, n int) {
		c := vp.copies[e.Proc][pg]
		if c == nil {
			return
		}
		base := vp.layout.Base(pg)
		copy(c[off:off+n], vp.truth[base+mem.Addr(off):base+mem.Addr(off+n)])
	})
}

// ReplayImage replays t against protocol name at pageSize while running a
// value plane beside the engine, and returns the final memory image
// (t.SpaceSize bytes). checkReads additionally asserts — the trace must
// then be free of read races — that every byte a processor reads is
// current in its cached copy: the engine must have invalidated and
// re-fetched wherever a happened-before-ordered remote write landed.
// checkReads is sound only for protocols whose every data movement is an
// access-miss fetch (LI and SC): LU and EU push updates at synchronization
// points, and EI's false-sharing ack-merge hands a cacher's buffered
// modifications to the releaser — movements this plane cannot observe.
// The lazy protocols' full value paths are exercised for real on the live
// runtime (workload.RunOnRuntime) instead.
func ReplayImage(t *trace.Trace, name string, pageSize int, opts proto.Options, checkReads bool) ([]byte, error) {
	layout, err := mem.NewLayout(t.SpaceSize, pageSize)
	if err != nil {
		return nil, err
	}
	eng, err := NewProtocol(name, layout, t.NumProcs, opts)
	if err != nil {
		return nil, err
	}
	var ps pageStater
	if checkReads {
		var ok bool
		ps, ok = eng.(pageStater)
		if !ok {
			return nil, fmt.Errorf("sim: protocol %s does not expose page status", name)
		}
	}
	vp := newValuePlane(layout, t.NumProcs)

	// touch refreshes every accessed page on which the engine just took a
	// miss (it was not current before the engine call).
	touch := func(p mem.ProcID, addr mem.Addr, size int, wasValid map[mem.PageID]bool) {
		for _, pg := range layout.PagesOf(addr, size) {
			if !wasValid[pg] {
				vp.refresh(p, pg)
			}
		}
	}
	validity := func(p mem.ProcID, addr mem.Addr, size int) map[mem.PageID]bool {
		if ps == nil {
			return nil
		}
		m := make(map[mem.PageID]bool)
		for _, pg := range layout.PagesOf(addr, size) {
			valid, _ := ps.PageStatus(p, layout.Base(pg))
			m[pg] = valid
		}
		return m
	}

	pending := make(map[int32][]mem.ProcID)
	for i, e := range t.Events {
		doRead := e.Kind == trace.Read || e.Kind == trace.Update || e.Kind == trace.AddVal
		doWrite := e.Kind == trace.Write || e.Kind == trace.SetVal ||
			e.Kind == trace.Update || e.Kind == trace.AddVal
		if doRead || doWrite {
			was := validity(e.Proc, e.Addr, int(e.Size))
			if doRead {
				eng.Read(e.Proc, e.Addr, int(e.Size))
			}
			if doWrite {
				eng.Write(e.Proc, e.Addr, int(e.Size))
			}
			if ps != nil {
				touch(e.Proc, e.Addr, int(e.Size), was)
				if doRead {
					if err := vp.checkRead(e.Proc, e.Addr, int(e.Size)); err != nil {
						return nil, fmt.Errorf("sim: %s event %d (%s): %w", name, i, e, err)
					}
				}
			}
			if doWrite {
				vp.applyWrite(e)
			}
			continue
		}
		switch e.Kind {
		case trace.Acquire:
			eng.Acquire(e.Proc, mem.LockID(e.Sync))
		case trace.Release:
			eng.Release(e.Proc, mem.LockID(e.Sync))
		case trace.Barrier:
			arr := append(pending[e.Sync], e.Proc)
			if len(arr) == t.NumProcs {
				eng.Barrier(arr, mem.BarrierID(e.Sync))
				delete(pending, e.Sync)
			} else {
				pending[e.Sync] = arr
			}
		default:
			return nil, fmt.Errorf("sim: event %d has invalid kind %d", i, e.Kind)
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("sim: trace ended with %d incomplete barrier episodes", len(pending))
	}
	return vp.truth[:t.SpaceSize], nil
}
