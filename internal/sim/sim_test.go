package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/trace"
)

func microTrace() *trace.Trace {
	return &trace.Trace{
		NumProcs:    4,
		SpaceSize:   16384,
		NumLocks:    4,
		NumBarriers: 1,
		Name:        "micro",
		Events: []trace.Event{
			{Kind: trace.Write, Proc: 0, Addr: 0, Size: 64},
			{Kind: trace.Barrier, Proc: 0, Sync: 0},
			{Kind: trace.Barrier, Proc: 1, Sync: 0},
			{Kind: trace.Barrier, Proc: 2, Sync: 0},
			{Kind: trace.Barrier, Proc: 3, Sync: 0},
			{Kind: trace.Acquire, Proc: 1, Sync: 2},
			{Kind: trace.Read, Proc: 1, Addr: 0, Size: 64},
			{Kind: trace.Write, Proc: 1, Addr: 64, Size: 8},
			{Kind: trace.Release, Proc: 1, Sync: 2},
			{Kind: trace.Acquire, Proc: 2, Sync: 2},
			{Kind: trace.Read, Proc: 2, Addr: 64, Size: 8},
			{Kind: trace.Release, Proc: 2, Sync: 2},
		},
	}
}

func TestNewProtocolNames(t *testing.T) {
	layout := mem.MustLayout(16384, 1024)
	for _, name := range AllProtocolNames {
		p, err := NewProtocol(name, layout, 4, proto.Options{})
		if err != nil {
			t.Fatalf("NewProtocol(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("engine for %s names itself %s", name, p.Name())
		}
	}
	if _, err := NewProtocol("bogus", layout, 4, proto.Options{}); err == nil {
		t.Error("bogus protocol accepted")
	}
}

func TestReplayCountsEvents(t *testing.T) {
	tr := microTrace()
	for _, name := range AllProtocolNames {
		st, err := Run(tr, name, 1024, proto.Options{})
		if err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if st.Reads != 2 || st.Writes != 2 || st.Acquires != 2 || st.Releases != 2 || st.Barriers != 1 {
			t.Errorf("%s: event counters = reads %d writes %d acq %d rel %d barriers %d",
				name, st.Reads, st.Writes, st.Acquires, st.Releases, st.Barriers)
		}
		if st.TotalMessages() <= 0 {
			t.Errorf("%s: no messages counted", name)
		}
		if st.TotalBytes() <= st.TotalMessages()*int64(proto.MsgHeaderBytes)-1 {
			t.Errorf("%s: total bytes %d below header floor", name, st.TotalBytes())
		}
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	tr := microTrace()
	for _, name := range ProtocolNames {
		a, err := Run(tr, name, 512, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(tr, name, 512, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two replays differ", name)
		}
	}
}

func TestReplayIncompleteBarrier(t *testing.T) {
	tr := microTrace()
	tr.Events = tr.Events[:2] // one barrier arrival, never completed
	layout := mem.MustLayout(16384, 1024)
	p, _ := NewProtocol("LI", layout, 4, proto.Options{})
	err := Replay(tr, p)
	if err == nil || !strings.Contains(err.Error(), "incomplete barrier") {
		t.Fatalf("incomplete barrier not reported: %v", err)
	}
}

func TestRunRejectsBadPageSize(t *testing.T) {
	if _, err := Run(microTrace(), "LI", 1000, proto.Options{}); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
}

func TestSweepOrdering(t *testing.T) {
	tr := microTrace()
	sizes := []int{2048, 512, 1024}
	results, err := Sweep(tr, []string{"LU", "LI"}, sizes, proto.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	// Ordered by given protocol order, then descending page size.
	wantOrder := []struct {
		p  string
		ps int
	}{{"LU", 2048}, {"LU", 1024}, {"LU", 512}, {"LI", 2048}, {"LI", 1024}, {"LI", 512}}
	for i, w := range wantOrder {
		if results[i].Protocol != w.p || results[i].PageSize != w.ps {
			t.Errorf("result %d = %s/%d, want %s/%d", i, results[i].Protocol, results[i].PageSize, w.p, w.ps)
		}
	}
	for _, r := range results {
		if r.Workload != "micro" {
			t.Errorf("workload label = %q", r.Workload)
		}
	}
}

func TestSweepMatchesIndividualRuns(t *testing.T) {
	tr := microTrace()
	results, err := Sweep(tr, ProtocolNames, []int{512, 4096}, proto.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		want, err := Run(tr, r.Protocol, r.PageSize, proto.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Messages() != want.TotalMessages() || r.DataBytes() != want.TotalBytes() {
			t.Errorf("%s/%d: sweep %d msgs %d bytes, individual run %d msgs %d bytes",
				r.Protocol, r.PageSize, r.Messages(), r.DataBytes(),
				want.TotalMessages(), want.TotalBytes())
		}
	}
}

func TestSeries(t *testing.T) {
	tr := microTrace()
	results, err := Sweep(tr, []string{"LI"}, []int{512, 1024}, proto.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := Series(results, "LI", []int{1024, 512}, "messages")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 {
		t.Fatalf("series length %d", len(msgs))
	}
	if _, err := Series(results, "LI", []int{2048}, "messages"); err == nil {
		t.Error("missing page size not reported")
	}
	if _, err := Series(results, "LI", []int{512}, "bogus"); err == nil {
		t.Error("bogus metric accepted")
	}
	data, err := Series(results, "LI", []int{512}, "data")
	if err != nil || len(data) != 1 {
		t.Errorf("data series: %v %v", data, err)
	}
}

// TestSequentialReuseAcrossProtocols checks the engines share no hidden
// state: interleaving two replays gives the same totals as fresh runs.
func TestEnginesAreIndependent(t *testing.T) {
	tr := microTrace()
	layout := mem.MustLayout(16384, 1024)
	a1, _ := NewProtocol("LI", layout, 4, proto.Options{})
	a2, _ := NewProtocol("LI", layout, 4, proto.Options{})
	if err := Replay(tr, a1); err != nil {
		t.Fatal(err)
	}
	if err := Replay(tr, a2); err != nil {
		t.Fatal(err)
	}
	if a1.Stats().TotalMessages() != a2.Stats().TotalMessages() {
		t.Error("two engines over the same trace disagree")
	}
}
