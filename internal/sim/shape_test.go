package sim

import (
	"testing"

	"repro/internal/proto"
	"repro/internal/workload"
)

// TestPaperShapeClaims is the repository's acceptance test for the paper's
// qualitative results (§5.2–5.3). Absolute counts depend on workload scale
// and the message-size model; the *orderings* below are the claims the
// paper's figures and summary make, and they must hold for the synthetic
// workloads at every asserted page size.
func TestPaperShapeClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep in -short mode")
	}
	// Scale 0.5 is the smallest size at which MP3D's update-protocol
	// advantage (claim 2) is fully established; the other claims hold
	// from 0.25 up.
	const (
		procs = 16
		scale = 0.5
		seed  = 42
	)
	pageSizes := []int{8192, 4096, 2048, 1024, 512}

	type point struct{ msgs, bytes int64 }
	all := map[string]map[string]map[int]point{} // workload -> protocol -> pagesize

	for _, name := range workload.Names {
		tr, err := workload.GenerateCached(name, procs, scale, seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results, err := Sweep(tr, ProtocolNames, pageSizes, proto.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		all[name] = map[string]map[int]point{}
		for _, r := range results {
			if all[name][r.Protocol] == nil {
				all[name][r.Protocol] = map[int]point{}
			}
			all[name][r.Protocol][r.PageSize] = point{r.Messages(), r.DataBytes()}
		}
	}

	msgs := func(w, p string, ps int) int64 { return all[w][p][ps].msgs }
	data := func(w, p string, ps int) int64 { return all[w][p][ps].bytes }

	// Claim 1 (§5.3): for the migratory, lock-synchronized programs —
	// LocusRoute, Cholesky, Pthor — the lazy protocols exchange fewer
	// messages than both eager protocols at every page size.
	for _, w := range []string{"locusroute", "cholesky", "pthor"} {
		for _, ps := range pageSizes {
			for _, lazy := range []string{"LI", "LU"} {
				for _, eager := range []string{"EI", "EU"} {
					if msgs(w, lazy, ps) >= msgs(w, eager, ps) {
						t.Errorf("%s @%d: %s messages (%d) not below %s (%d)",
							w, ps, lazy, msgs(w, lazy, ps), eager, msgs(w, eager, ps))
					}
				}
			}
		}
	}

	// Claim 2 (§5.2.3): MP3D — the update protocols exchange fewer
	// messages than their invalidate counterparts.
	for _, ps := range pageSizes {
		if msgs("mp3d", "LU", ps) >= msgs("mp3d", "LI", ps) {
			t.Errorf("mp3d @%d: LU messages (%d) not below LI (%d)",
				ps, msgs("mp3d", "LU", ps), msgs("mp3d", "LI", ps))
		}
		if msgs("mp3d", "EU", ps) >= msgs("mp3d", "EI", ps) {
			t.Errorf("mp3d @%d: EU messages (%d) not below EI (%d)",
				ps, msgs("mp3d", "EU", ps), msgs("mp3d", "EI", ps))
		}
	}

	// Claim 3 (§5.3 summary): lazy protocols reduce messages relative to
	// the corresponding eager protocol for every program.
	for _, w := range workload.Names {
		for _, ps := range pageSizes {
			if msgs(w, "LI", ps) >= msgs(w, "EI", ps) {
				t.Errorf("%s @%d: LI messages (%d) not below EI (%d)",
					w, ps, msgs(w, "LI", ps), msgs(w, "EI", ps))
			}
			if msgs(w, "LU", ps) >= msgs(w, "EU", ps) {
				t.Errorf("%s @%d: LU messages (%d) not below EU (%d)",
					w, ps, msgs(w, "LU", ps), msgs(w, "EU", ps))
			}
		}
	}

	// Claim 4 (§5.2.5): Pthor — EI's data volume is the outlier (frequent
	// whole-page reloads), far above the lazy protocols at large pages.
	for _, ps := range []int{8192, 4096, 2048} {
		if data("pthor", "EI", ps) < 2*data("pthor", "LI", ps) {
			t.Errorf("pthor @%d: EI data (%d) not well above LI (%d)",
				ps, data("pthor", "EI", ps), data("pthor", "LI", ps))
		}
	}

	// Claim 5 (§5.2.5): Pthor — LI's message count exceeds LU's (more
	// access misses).
	for _, ps := range pageSizes {
		if msgs("pthor", "LI", ps) <= msgs("pthor", "LU", ps) {
			t.Errorf("pthor @%d: LI messages (%d) not above LU (%d)",
				ps, msgs("pthor", "LI", ps), msgs("pthor", "LU", ps))
		}
	}

	// Claim 6 (§5.2.4): Water — lazy protocols move less data than EI at
	// the largest page size (diffs instead of whole pages on misses).
	// The margin is modest because Water's lock traffic is dense relative
	// to its tiny critical sections; EXPERIMENTS.md discusses the
	// small-page convergence.
	if data("water", "EI", 8192) <= data("water", "LI", 8192) {
		t.Errorf("water @8192: EI data (%d) not above LI (%d)",
			data("water", "EI", 8192), data("water", "LI", 8192))
	}

	// Claim 7 (figures, all programs): EI's data volume grows steeply
	// with page size (whole-page reloads), so its 8192-byte point is the
	// per-workload maximum among protocols.
	for _, w := range workload.Names {
		for _, p := range []string{"LI", "LU", "EU"} {
			if data(w, "EI", 8192) <= data(w, p, 8192) {
				t.Errorf("%s: EI data at 8192 (%d) not above %s (%d)",
					w, data(w, "EI", 8192), p, data(w, p, 8192))
			}
		}
	}
}

// TestIvyVsRC checks the related-work expectation motivating release
// consistency: on a false-sharing workload, the single-writer SC protocol
// ping-pongs pages and exchanges far more messages than any RC protocol.
func TestIvyVsRC(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep in -short mode")
	}
	tr, err := workload.GenerateCached("locusroute", 16, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Sweep(tr, AllProtocolNames, []int{4096}, proto.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]int64{}
	for _, r := range results {
		byProto[r.Protocol] = r.Messages()
	}
	for _, p := range []string{"LI", "LU", "EI"} {
		if byProto["SC"] <= byProto[p] {
			t.Errorf("SC messages (%d) not above %s (%d) on a false-sharing workload",
				byProto["SC"], p, byProto[p])
		}
	}
}
