package shm

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/dsm"
	"repro/internal/mem"
)

// flatMem is a single-process Mem over a plain byte slice, for testing
// the handle arithmetic and encoding without a runtime.
type flatMem struct {
	b    []byte
	fail error
}

func (f *flatMem) Read(buf []byte, addr mem.Addr) error {
	if f.fail != nil {
		return f.fail
	}
	copy(buf, f.b[addr:])
	return nil
}

func (f *flatMem) Write(addr mem.Addr, data []byte) error {
	if f.fail != nil {
		return f.fail
	}
	copy(f.b[addr:], data)
	return nil
}

func (f *flatMem) Acquire(mem.LockID) error    { return f.fail }
func (f *flatMem) Release(mem.LockID) error    { return f.fail }
func (f *flatMem) Barrier(mem.BarrierID) error { return f.fail }

func testArena(t *testing.T, space mem.Addr, page int) *Arena {
	t.Helper()
	return NewArena(mem.MustLayout(space, page))
}

func TestVarRoundTrip(t *testing.T) {
	a := testArena(t, 4096, 512)
	m := &flatMem{b: make([]byte, 4096)}
	u := NewVar[uint64](a)
	bt := NewVar[byte](a)
	if err := u.Store(m, 0xdeadbeefcafe); err != nil {
		t.Fatal(err)
	}
	if err := bt.Store(m, 0x7f); err != nil {
		t.Fatal(err)
	}
	if v, err := u.Load(m); err != nil || v != 0xdeadbeefcafe {
		t.Fatalf("uint64 = %#x, %v", v, err)
	}
	if v, err := bt.Load(m); err != nil || v != 0x7f {
		t.Fatalf("byte = %#x, %v", v, err)
	}
	if old, err := u.Add(m, 2); err != nil || old != 0xdeadbeefcafe {
		t.Fatalf("Add = %#x, %v", old, err)
	}
	if v, _ := u.Load(m); v != 0xdeadbeefcafe+2 {
		t.Fatalf("after Add = %#x", v)
	}
	// The byte var must not have been clobbered by its 8-byte neighbor.
	if v, _ := bt.Load(m); v != 0x7f {
		t.Fatalf("byte neighbor clobbered: %#x", v)
	}
}

func TestArenaLayout(t *testing.T) {
	a := testArena(t, 8192, 1024)
	v1 := NewVar[byte](a)
	v2 := NewVar[uint64](a) // must skip to 8-byte alignment
	if v1.Addr() != 0 {
		t.Errorf("first alloc at %d", v1.Addr())
	}
	if v2.Addr() != 8 {
		t.Errorf("uint64 after byte at %d, want aligned 8", v2.Addr())
	}
	arr := NewArray[uint64](a, 4)
	if arr.Base() != 16 || arr.Len() != 4 || arr.Stride() != 8 {
		t.Errorf("array = base %d len %d stride %d", arr.Base(), arr.Len(), arr.Stride())
	}
	if got := arr.At(3).Addr(); got != 16+24 {
		t.Errorf("At(3) = %d", got)
	}
	a.PageAlign()
	padded := NewStridedArray[uint64](a, 3, 1024)
	if padded.Base() != 1024 {
		t.Errorf("page-aligned array at %d", padded.Base())
	}
	if got := padded.At(2).Addr(); got != 1024+2048 {
		t.Errorf("strided At(2) = %d", got)
	}
	if a.Used() != 1024+2*1024+8 {
		t.Errorf("Used = %d", a.Used())
	}
	// Deterministic replay: an identical construction sequence yields
	// identical addresses — the property cross-process schemas rely on.
	b := testArena(t, 8192, 1024)
	NewVar[byte](b)
	if got := NewVar[uint64](b); got != v2 {
		t.Errorf("replayed schema diverged: %v vs %v", got, v2)
	}
}

func TestArenaIDs(t *testing.T) {
	a := testArena(t, 4096, 512)
	if l := a.NewLock(); l.ID() != 0 {
		t.Errorf("first lock id %d", l.ID())
	}
	if l := a.NewLock(); l.ID() != 1 {
		t.Errorf("second lock id %d", l.ID())
	}
	if b := a.NewBarrier(); b.ID() != 0 {
		t.Errorf("first barrier id %d", b.ID())
	}
}

func TestArenaPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"exhausted": func() { testArena(t, 1024, 512).Alloc(2048, 1) },
		"bad align": func() { testArena(t, 1024, 512).Alloc(8, 3) },
		"zero size": func() { testArena(t, 1024, 512).Alloc(0, 1) },
		"thin stride": func() {
			NewStridedArray[uint64](testArena(t, 1024, 512), 2, 4)
		},
		"index oob": func() {
			a := testArena(t, 1024, 512)
			NewArray[uint64](a, 2).At(2)
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		})
	}
}

func TestErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	m := &flatMem{b: make([]byte, 64), fail: boom}
	v := VarAt[uint64](0)
	if err := v.Store(m, 1); !errors.Is(err, boom) {
		t.Errorf("Store = %v", err)
	}
	if _, err := v.Load(m); !errors.Is(err, boom) {
		t.Errorf("Load = %v", err)
	}
	if _, err := v.Add(m, 1); !errors.Is(err, boom) {
		t.Errorf("Add = %v", err)
	}
	if err := LockAt(0).Acquire(m); !errors.Is(err, boom) {
		t.Errorf("Acquire = %v", err)
	}
	if err := BarrierAt(0).Wait(m); !errors.Is(err, boom) {
		t.Errorf("Wait = %v", err)
	}
	if err := Locked(m, LockAt(0), func() error { return nil }); !errors.Is(err, boom) {
		t.Errorf("Locked = %v", err)
	}
}

func TestLockedReleasesOnBodyError(t *testing.T) {
	m := &flatMem{b: make([]byte, 64)}
	bodyErr := errors.New("body failed")
	if err := Locked(m, LockAt(0), func() error { return bodyErr }); !errors.Is(err, bodyErr) {
		t.Errorf("Locked = %v, want the body's error", err)
	}
}

// TestFacadeOnLiveRuntime drives the typed handles against a real DSM
// under every protocol engine: a lock-arbitrated counter plus a
// barrier-phased per-node array, with the handles shared across nodes.
func TestFacadeOnLiveRuntime(t *testing.T) {
	for _, mode := range dsm.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			const procs, iters = 4, 20
			sys, err := dsm.New(dsm.Config{
				Procs: procs, SpaceSize: 64 * 1024, PageSize: 1024, Mode: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			a := NewArena(sys.Layout())
			counter := NewVar[uint64](a)
			a.PageAlign()
			slots := NewStridedArray[uint64](a, procs, 1024)
			lock := a.NewLock()
			phase := a.NewBarrier()

			var wg sync.WaitGroup
			errs := make([]error, procs)
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					n := sys.Node(i)
					for k := 0; k < iters; k++ {
						errs[i] = Locked(n, lock, func() error {
							_, err := counter.Add(n, 1)
							return err
						})
						if errs[i] != nil {
							return
						}
					}
					if errs[i] = slots.At(i).Store(n, uint64(100+i)); errs[i] != nil {
						return
					}
					errs[i] = phase.Wait(n)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
			}

			n := sys.Node(0)
			var total uint64
			if err := Locked(n, lock, func() error {
				v, err := counter.Load(n)
				total = v
				return err
			}); err != nil {
				t.Fatal(err)
			}
			if total != procs*iters {
				t.Fatalf("counter = %d, want %d", total, procs*iters)
			}
			for i := 0; i < procs; i++ {
				if v, err := slots.At(i).Load(n); err != nil || v != uint64(100+i) {
					t.Fatalf("slot %d = %d, %v", i, v, err)
				}
			}
		})
	}
}
