// Package shm is the typed shared-memory façade of the live DSM runtime:
// the layer applications program against instead of hand-computing byte
// offsets into the shared address space.
//
// It provides a deterministic bump allocator (Arena) over the runtime's
// address-space layout, typed variable and array handles (Var, Array)
// for the runtime's value payloads (uint64 and byte), and first-class
// Lock and Barrier objects — so a program names its shared state
//
//	a := shm.NewArena(layout)
//	head := shm.NewVar[uint64](a)
//	grid := shm.NewArray[uint64](a, rows*cols)
//	queue := a.NewLock()
//
// rather than scattering magic addresses like 4096 + 8*i through its
// body.
//
// Handles are pure descriptions of layout — an address, an element
// count, a lock id — and carry no connection to any node. Every
// operation takes the Mem it should run against, so the same handle
// value works from every node of the cluster (and, under the TCP
// transport, from every OS process). For that to be sound the schema
// must be deterministic: every process constructs the same Arena
// allocations in the same order, exactly like the static data layout of
// the SPLASH programs the paper traces. Arenas are not concurrency-safe;
// build the schema up front, then share the handles.
//
// Handles are safe to share between any number of goroutines: they are
// immutable values, and the runtime node behind Mem (*dsm.Node) is safe
// for concurrent use — several application goroutines may drive one
// node's handles at once (size dsm.Config.GoroutinesPerNode when more
// than one uses Barrier), contending for Locks by node-local handoff.
//
// Mem is satisfied by *dsm.Node. The allocator panics on exhaustion:
// schema construction is deterministic start-up code, and an address
// space that cannot hold the program's data is a configuration bug, not
// a runtime condition.
package shm

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"repro/internal/mem"
)

// Mem is the raw access surface the typed handles drive: the subset of
// the runtime node API (dsm.Node) the façade needs. Operations move real
// bytes through whichever consistency protocol and transport the node's
// system runs.
type Mem interface {
	// Read copies len(buf) bytes of the shared space at addr into buf.
	Read(buf []byte, addr mem.Addr) error
	// Write copies data into the shared space at addr.
	Write(addr mem.Addr, data []byte) error
	// Acquire obtains lock l with the protocol's acquire-time actions.
	Acquire(l mem.LockID) error
	// Release releases lock l with the protocol's release-time actions.
	Release(l mem.LockID) error
	// Barrier blocks until every node arrives at barrier b.
	Barrier(b mem.BarrierID) error
}

// Value constrains the payload types the runtime's deterministic value
// semantics know how to move: bytes and little-endian uint64s.
type Value interface {
	~byte | ~uint64
}

// valueSize returns T's encoded size in shared memory.
func valueSize[T Value]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// Var is a typed handle to one shared value at a fixed address.
type Var[T Value] struct {
	addr mem.Addr
}

// VarAt returns a handle to the value at an explicit address — the
// bridge for code that owns its layout (the workload programs' fixed
// space maps). Allocator-managed code uses NewVar.
func VarAt[T Value](addr mem.Addr) Var[T] { return Var[T]{addr: addr} }

// Addr returns the variable's address.
func (v Var[T]) Addr() mem.Addr { return v.addr }

// Load reads the value through m.
func (v Var[T]) Load(m Mem) (T, error) {
	var buf [8]byte
	b := buf[:valueSize[T]()]
	if err := m.Read(b, v.addr); err != nil {
		var zero T
		return zero, err
	}
	return decode[T](b), nil
}

// Store writes the value through m.
func (v Var[T]) Store(m Mem, x T) error {
	var buf [8]byte
	b := buf[:valueSize[T]()]
	encode(b, x)
	return m.Write(v.addr, b)
}

// Add performs a read-modify-write, returning the previous value. The
// caller must hold a lock ordering every mutation of this variable (the
// runtime provides release consistency, not hardware atomics — an
// unsynchronized Add is a data race in the program, exactly as in the
// paper's model).
func (v Var[T]) Add(m Mem, delta T) (T, error) {
	old, err := v.Load(m)
	if err != nil {
		return old, err
	}
	return old, v.Store(m, old+delta)
}

func encode[T Value](b []byte, x T) {
	switch len(b) {
	case 1:
		b[0] = byte(x)
	default:
		binary.LittleEndian.PutUint64(b, uint64(x))
	}
}

func decode[T Value](b []byte) T {
	switch len(b) {
	case 1:
		return T(b[0])
	default:
		return T(binary.LittleEndian.Uint64(b))
	}
}

// Array is a typed handle to n shared values at a fixed stride. With the
// natural stride elements pack densely; a page-sized stride gives every
// element a private page (the classic DSM defense against false
// sharing).
type Array[T Value] struct {
	base   mem.Addr
	n      int
	stride int
}

// ArrayAt returns a handle to n densely-packed values at an explicit
// base address; see VarAt.
func ArrayAt[T Value](base mem.Addr, n int) Array[T] {
	return Array[T]{base: base, n: n, stride: valueSize[T]()}
}

// Len returns the element count.
func (a Array[T]) Len() int { return a.n }

// Base returns the first element's address.
func (a Array[T]) Base() mem.Addr { return a.base }

// Stride returns the distance in bytes between consecutive elements.
func (a Array[T]) Stride() int { return a.stride }

// At returns the handle of element i.
func (a Array[T]) At(i int) Var[T] {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("shm: array index %d outside [0,%d)", i, a.n))
	}
	return Var[T]{addr: a.base + mem.Addr(i*a.stride)}
}

// Bytes is a handle to a fixed-size raw byte region, for bulk data the
// typed handles do not model (grid rows, records, serialized blobs).
type Bytes struct {
	base mem.Addr
	size int
}

// BytesAt returns a handle to an explicit region; see VarAt.
func BytesAt(base mem.Addr, size int) Bytes { return Bytes{base: base, size: size} }

// Addr returns the region's base address.
func (b Bytes) Addr() mem.Addr { return b.base }

// Size returns the region's size in bytes.
func (b Bytes) Size() int { return b.size }

// Load reads the region's first len(buf) bytes through m.
func (b Bytes) Load(m Mem, buf []byte) error {
	if len(buf) > b.size {
		panic(fmt.Sprintf("shm: loading %d bytes from a %d-byte region", len(buf), b.size))
	}
	return m.Read(buf, b.base)
}

// Store writes data at the region's base through m.
func (b Bytes) Store(m Mem, data []byte) error {
	if len(data) > b.size {
		panic(fmt.Sprintf("shm: storing %d bytes into a %d-byte region", len(data), b.size))
	}
	return m.Write(b.base, data)
}

// NewBytes allocates one raw region.
func NewBytes(a *Arena, size int) Bytes {
	return Bytes{base: a.Alloc(size, 1), size: size}
}

// BytesArray is a handle to n raw regions at a fixed stride.
type BytesArray struct {
	base   mem.Addr
	n      int
	size   int
	stride int
}

// NewBytesArray allocates n size-byte regions spaced stride bytes apart
// (stride > size pads neighbors apart, the false-sharing defense).
func NewBytesArray(a *Arena, n, size, stride int) BytesArray {
	if n < 0 || size <= 0 || stride < size {
		panic(fmt.Sprintf("shm: bytes array of %d regions size %d stride %d", n, size, stride))
	}
	if n == 0 {
		return BytesArray{base: a.next, n: 0, size: size, stride: stride}
	}
	base := a.Alloc((n-1)*stride+size, 1)
	return BytesArray{base: base, n: n, size: size, stride: stride}
}

// Len returns the region count.
func (ba BytesArray) Len() int { return ba.n }

// At returns the handle of region i.
func (ba BytesArray) At(i int) Bytes {
	if i < 0 || i >= ba.n {
		panic(fmt.Sprintf("shm: bytes array index %d outside [0,%d)", i, ba.n))
	}
	return Bytes{base: ba.base + mem.Addr(i*ba.stride), size: ba.size}
}

// Lock is a first-class handle to one of the runtime's exclusive locks.
type Lock struct {
	id mem.LockID
}

// LockAt returns a handle to an explicit lock id; see VarAt.
func LockAt(id mem.LockID) Lock { return Lock{id: id} }

// ID returns the lock's id.
func (l Lock) ID() mem.LockID { return l.id }

// Acquire obtains the lock through m.
func (l Lock) Acquire(m Mem) error { return m.Acquire(l.id) }

// Release releases the lock through m.
func (l Lock) Release(m Mem) error { return m.Release(l.id) }

// Locked runs body while holding l. The lock is released even when body
// fails; body's error wins over the release's.
func Locked(m Mem, l Lock, body func() error) error {
	if err := l.Acquire(m); err != nil {
		return err
	}
	err := body()
	if rerr := l.Release(m); err == nil {
		err = rerr
	}
	return err
}

// Barrier is a first-class handle to one of the runtime's barriers.
type Barrier struct {
	id mem.BarrierID
}

// BarrierAt returns a handle to an explicit barrier id; see VarAt.
func BarrierAt(id mem.BarrierID) Barrier { return Barrier{id: id} }

// ID returns the barrier's id.
func (b Barrier) ID() mem.BarrierID { return b.id }

// Wait blocks until every node of the cluster arrives at this barrier.
func (b Barrier) Wait(m Mem) error { return m.Barrier(b.id) }

// Arena is a deterministic bump allocator over a shared address space
// layout, handing out variable/array addresses and lock/barrier ids.
type Arena struct {
	pageSize int
	size     mem.Addr
	next     mem.Addr
	locks    mem.LockID
	barriers mem.BarrierID
}

// NewArena returns an empty arena over the layout's address space.
func NewArena(l *mem.Layout) *Arena {
	return &Arena{pageSize: l.PageSize(), size: l.SpaceSize()}
}

// Alloc reserves size bytes at the given power-of-two alignment and
// returns their base address. It panics when the space is exhausted or
// the alignment is invalid: the schema is deterministic start-up code,
// so either is a configuration bug.
func (a *Arena) Alloc(size, align int) mem.Addr {
	if size <= 0 {
		panic(fmt.Sprintf("shm: allocation of %d bytes", size))
	}
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("shm: alignment %d is not a positive power of two", align))
	}
	base := (a.next + mem.Addr(align-1)) &^ mem.Addr(align-1)
	if base+mem.Addr(size) > a.size {
		panic(fmt.Sprintf("shm: arena exhausted: allocating %d bytes at %d exceeds space of %d", size, base, a.size))
	}
	a.next = base + mem.Addr(size)
	return base
}

// PageAlign advances the allocation cursor to the next page boundary, so
// the following allocation starts on its own consistency unit.
func (a *Arena) PageAlign() {
	a.next = (a.next + mem.Addr(a.pageSize-1)) &^ mem.Addr(a.pageSize-1)
}

// Used returns the bytes allocated so far (including alignment padding).
func (a *Arena) Used() mem.Addr { return a.next }

// NewLock hands out the next lock id.
func (a *Arena) NewLock() Lock {
	l := Lock{id: a.locks}
	a.locks++
	return l
}

// NewBarrier hands out the next barrier id.
func (a *Arena) NewBarrier() Barrier {
	b := Barrier{id: a.barriers}
	a.barriers++
	return b
}

// NewVar allocates one naturally-aligned value.
func NewVar[T Value](a *Arena) Var[T] {
	sz := valueSize[T]()
	return Var[T]{addr: a.Alloc(sz, sz)}
}

// NewArray allocates n densely-packed values.
func NewArray[T Value](a *Arena, n int) Array[T] {
	return NewStridedArray[T](a, n, valueSize[T]())
}

// NewStridedArray allocates n values spaced stride bytes apart — padding
// hot elements onto separate cache lines or pages to curb the false
// sharing the paper's multiple-writer protocol exists to tolerate.
func NewStridedArray[T Value](a *Arena, n, stride int) Array[T] {
	sz := valueSize[T]()
	if n < 0 {
		panic(fmt.Sprintf("shm: array of %d elements", n))
	}
	if stride < sz {
		panic(fmt.Sprintf("shm: stride %d below element size %d", stride, sz))
	}
	if n == 0 {
		return Array[T]{base: a.next, n: 0, stride: stride}
	}
	base := a.Alloc((n-1)*stride+sz, sz)
	return Array[T]{base: base, n: n, stride: stride}
}
