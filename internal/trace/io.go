package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format:
//
//	magic    uint32  'L','R','C','T'
//	version  uint32  1
//	numProcs uint32
//	space    uint64
//	locks    uint32
//	barriers uint32
//	nameLen  uint32, name bytes
//	count    uint64
//	events   count × record
//
// Each record is packed little-endian:
//
//	kind uint8, proc uint8 (pad to keep records self-describing),
//	sync int32, addr int64, size int32, val uint64
//
// Version 2 added the value-carrying event kinds (Update, SetVal, AddVal)
// and the val operand; version-1 traces predate the value semantics and
// are not readable.
const (
	traceMagic   = 0x4c524354 // "LRCT"
	traceVersion = 2
)

const recordBytes = 26

// WriteTo serializes the trace in the package's binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	hdr := []any{
		uint32(traceMagic), uint32(traceVersion),
		uint32(t.NumProcs), uint64(t.SpaceSize),
		uint32(t.NumLocks), uint32(t.NumBarriers),
		uint32(len(t.Name)),
	}
	for _, v := range hdr {
		if err := put(v); err != nil {
			return n, fmt.Errorf("trace: writing header: %w", err)
		}
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return n, fmt.Errorf("trace: writing name: %w", err)
	}
	n += int64(len(t.Name))
	if err := put(uint64(len(t.Events))); err != nil {
		return n, fmt.Errorf("trace: writing event count: %w", err)
	}
	var rec [recordBytes]byte
	for _, e := range t.Events {
		rec[0] = byte(e.Kind)
		rec[1] = byte(e.Proc)
		binary.LittleEndian.PutUint32(rec[2:], uint32(e.Sync))
		binary.LittleEndian.PutUint64(rec[6:], uint64(e.Addr))
		binary.LittleEndian.PutUint32(rec[14:], uint32(e.Size))
		binary.LittleEndian.PutUint64(rec[18:], e.Val)
		if _, err := bw.Write(rec[:]); err != nil {
			return n, fmt.Errorf("trace: writing event: %w", err)
		}
		n += int64(len(rec))
	}
	return n, bw.Flush()
}

// ReadFrom deserializes a trace written by WriteTo and validates it.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic, version, procs, locks, barriers, nameLen uint32
	var space, count uint64
	for _, v := range []any{&magic, &version} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x (want %#x)", magic, traceMagic)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", version, traceVersion)
	}
	for _, v := range []any{&procs, &space, &locks, &barriers, &nameLen} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if procs == 0 || procs > 256 {
		return nil, fmt.Errorf("trace: implausible processor count %d", procs)
	}
	if nameLen > 4096 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading event count: %w", err)
	}
	const maxEvents = 1 << 30
	if count > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", count)
	}
	t := &Trace{
		NumProcs:    int(procs),
		SpaceSize:   mem.Addr(space),
		NumLocks:    int(locks),
		NumBarriers: int(barriers),
		Name:        string(name),
		Events:      make([]Event, count),
	}
	var rec [recordBytes]byte
	for i := range t.Events {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		t.Events[i] = Event{
			Kind: Kind(rec[0]),
			Proc: mem.ProcID(rec[1]),
			Sync: int32(binary.LittleEndian.Uint32(rec[2:])),
			Addr: mem.Addr(binary.LittleEndian.Uint64(rec[6:])),
			Size: int32(binary.LittleEndian.Uint32(rec[14:])),
			Val:  binary.LittleEndian.Uint64(rec[18:]),
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: stored trace invalid: %w", err)
	}
	return t, nil
}
