package trace

import (
	"encoding/binary"

	"repro/internal/mem"
)

// Value semantics. A trace is a total order over one legal interleaving of
// the application, so the final memory image it denotes is a pure function
// of the event sequence. Every execution backend — the lockstep trace
// generator, the trace replayer, and the live DSM runtime — applies the
// same deterministic semantics:
//
//   - Write stores Fill(a) at every byte a of the range (a pure function
//     of the absolute address, so any set of properly-synchronized writers
//     commutes);
//   - Update increments every byte of the range by one (wrapping), so
//     lost or double-applied diffs change the image;
//   - SetVal stores an explicit little-endian uint64;
//   - AddVal adds Val to the little-endian uint64 at Addr (a fetch-and-add
//     — the shared task-queue cursor of the queue-based workloads).
//
// Because every cross-processor pair of conflicting operations either
// commutes (fill-writes with fill-writes, adds with adds) or is ordered by
// the program's own synchronization, the final image is independent of the
// legal interleaving — which is exactly what makes differential testing
// between the lockstep scheduler and the genuinely concurrent runtime
// possible.

// Fill returns the canonical byte a Write event stores at address a.
func Fill(a mem.Addr) byte {
	z := uint64(a)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	z ^= z >> 29
	z *= 0x94d049bb133111eb
	return byte(z >> 56)
}

// FillRange fills buf with the canonical write pattern for the range
// starting at addr, i.e. buf[i] = Fill(addr+i).
func FillRange(buf []byte, addr mem.Addr) {
	for i := range buf {
		buf[i] = Fill(addr + mem.Addr(i))
	}
}

// ApplyEvent applies e's value semantics to the flat memory image img
// (indexed by absolute address). Synchronization events and Reads leave the
// image unchanged. It returns the uint64 an AddVal observed before adding
// (zero for every other kind).
func ApplyEvent(img []byte, e Event) uint64 {
	switch e.Kind {
	case Write:
		FillRange(img[e.Addr:e.Addr+mem.Addr(e.Size)], e.Addr)
	case Update:
		for a := e.Addr; a < e.Addr+mem.Addr(e.Size); a++ {
			img[a]++
		}
	case SetVal:
		binary.LittleEndian.PutUint64(img[e.Addr:], e.Val)
	case AddVal:
		old := binary.LittleEndian.Uint64(img[e.Addr:])
		binary.LittleEndian.PutUint64(img[e.Addr:], old+e.Val)
		return old
	}
	return 0
}

// Image replays the trace's value semantics in order and returns the final
// shared-memory image (SpaceSize bytes, initially zero). Differential tests
// compare it against the images produced by live executions of the same
// program: for a properly-synchronized program every legal execution must
// converge to this image.
func (t *Trace) Image() []byte {
	img := make([]byte, t.SpaceSize)
	for _, e := range t.Events {
		ApplyEvent(img, e)
	}
	return img
}
