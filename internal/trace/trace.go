// Package trace defines the shared-memory access traces consumed by the
// protocol simulator, mirroring the paper's methodology (§5.1): a
// 16-processor execution trace of each application is generated once and
// then replayed against every protocol and page size.
//
// A trace is a globally-ordered sequence of events that corresponds to one
// legal interleaving of the application: per-processor subsequences respect
// program order, lock acquire/release pairs nest correctly, and barrier
// episodes group one arrival per processor. Traces are page-size
// independent: events carry byte addresses, and the simulator maps them to
// pages under each swept page size.
package trace

import (
	"fmt"

	"repro/internal/mem"
)

// Kind enumerates trace event types.
type Kind uint8

const (
	// Read is an ordinary shared-memory read of [Addr, Addr+Size).
	Read Kind = iota
	// Write is an ordinary shared-memory write of [Addr, Addr+Size).
	Write
	// Acquire is a lock acquisition (special access, sync/acquire label).
	Acquire
	// Release is a lock release (special access, sync/release label).
	Release
	// Barrier is a barrier arrival; the event is ordered at the point the
	// processor arrives. A barrier episode consists of one Barrier event
	// per processor with the same Sync id; the last arrival releases all.
	Barrier
	// Update is a read-modify-write of [Addr, Addr+Size): every byte in the
	// range is incremented by one (wrapping). Protocol engines treat it as
	// a Read followed by a Write; the value semantics make lost or
	// double-applied modifications visible in the replayed memory image.
	Update
	// SetVal stores Val at Addr as a little-endian uint64 (Size is 8).
	SetVal
	// AddVal is a fetch-and-add: the little-endian uint64 at Addr is
	// incremented by Val (Size is 8). Protocol engines treat it as a Read
	// followed by a Write.
	AddVal
	numKinds
)

// String returns the event kind's mnemonic.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	case Barrier:
		return "barrier"
	case Update:
		return "update"
	case SetVal:
		return "setval"
	case AddVal:
		return "addval"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k < numKinds }

// Event is one record of a trace.
type Event struct {
	Kind Kind
	Proc mem.ProcID
	// Addr and Size describe the byte range of an ordinary access (Read,
	// Write, Update, SetVal, AddVal).
	Addr mem.Addr
	Size int32
	// Sync is the lock id (Acquire/Release) or barrier id (Barrier).
	Sync int32
	// Val is the explicit operand of a SetVal or AddVal event.
	Val uint64
}

// String renders the event for diagnostics.
func (e Event) String() string {
	switch e.Kind {
	case Read, Write, Update:
		return fmt.Sprintf("p%d %s [%d,%d)", e.Proc, e.Kind, e.Addr, e.Addr+mem.Addr(e.Size))
	case SetVal, AddVal:
		return fmt.Sprintf("p%d %s [%d,%d) val %d", e.Proc, e.Kind, e.Addr, e.Addr+mem.Addr(e.Size), e.Val)
	case Acquire, Release:
		return fmt.Sprintf("p%d %s lock%d", e.Proc, e.Kind, e.Sync)
	case Barrier:
		return fmt.Sprintf("p%d barrier%d", e.Proc, e.Sync)
	default:
		return fmt.Sprintf("p%d %s", e.Proc, e.Kind)
	}
}

// Trace is a complete globally-ordered execution trace.
type Trace struct {
	// NumProcs is the number of processors in the traced execution.
	NumProcs int
	// SpaceSize is the extent of the shared address space the trace
	// touches, in bytes.
	SpaceSize mem.Addr
	// NumLocks and NumBarriers bound the Sync ids used.
	NumLocks    int
	NumBarriers int
	// Name identifies the workload that generated the trace.
	Name string
	// Events is the globally-ordered event sequence.
	Events []Event
}

// Counts summarizes a trace's event mix.
type Counts struct {
	Reads, Writes, Acquires, Releases, BarrierArrivals int
}

// Count tallies the trace's event mix.
func (t *Trace) Count() Counts {
	var c Counts
	for _, e := range t.Events {
		switch e.Kind {
		case Read:
			c.Reads++
		case Write, SetVal:
			c.Writes++
		case Update, AddVal:
			// Read-modify-writes count as one read plus one write, exactly
			// what they cost a protocol engine.
			c.Reads++
			c.Writes++
		case Acquire:
			c.Acquires++
		case Release:
			c.Releases++
		case Barrier:
			c.BarrierArrivals++
		}
	}
	return c
}

// Validate checks the structural legality of the trace: event fields in
// range, per-processor lock nesting (acquire before release, no double
// acquire of one lock by one holder, release by the holder), and complete
// barrier episodes (each barrier id is arrived-at exactly once per
// processor per episode, and episodes do not interleave with one another
// for the same id).
func (t *Trace) Validate() error {
	if t.NumProcs <= 0 {
		return fmt.Errorf("trace: NumProcs %d must be positive", t.NumProcs)
	}
	if t.SpaceSize <= 0 {
		return fmt.Errorf("trace: SpaceSize %d must be positive", t.SpaceSize)
	}
	lockHolder := make(map[int32]mem.ProcID)
	barArrived := make(map[int32]map[mem.ProcID]bool)
	for i, e := range t.Events {
		if !e.Kind.Valid() {
			return fmt.Errorf("trace: event %d: invalid kind %d", i, e.Kind)
		}
		if e.Proc < 0 || int(e.Proc) >= t.NumProcs {
			return fmt.Errorf("trace: event %d: processor %d out of range [0,%d)", i, e.Proc, t.NumProcs)
		}
		switch e.Kind {
		case Read, Write, Update, SetVal, AddVal:
			if e.Size <= 0 {
				return fmt.Errorf("trace: event %d: access size %d must be positive", i, e.Size)
			}
			if (e.Kind == SetVal || e.Kind == AddVal) && e.Size != 8 {
				return fmt.Errorf("trace: event %d: %s size %d, want 8", i, e.Kind, e.Size)
			}
			if e.Addr < 0 || e.Addr+mem.Addr(e.Size) > t.SpaceSize {
				return fmt.Errorf("trace: event %d: access [%d,%d) outside space [0,%d)", i, e.Addr, e.Addr+mem.Addr(e.Size), t.SpaceSize)
			}
		case Acquire:
			if e.Sync < 0 || int(e.Sync) >= t.NumLocks {
				return fmt.Errorf("trace: event %d: lock %d out of range [0,%d)", i, e.Sync, t.NumLocks)
			}
			if h, held := lockHolder[e.Sync]; held {
				return fmt.Errorf("trace: event %d: p%d acquires lock %d already held by p%d", i, e.Proc, e.Sync, h)
			}
			lockHolder[e.Sync] = e.Proc
		case Release:
			if e.Sync < 0 || int(e.Sync) >= t.NumLocks {
				return fmt.Errorf("trace: event %d: lock %d out of range [0,%d)", i, e.Sync, t.NumLocks)
			}
			h, held := lockHolder[e.Sync]
			if !held {
				return fmt.Errorf("trace: event %d: p%d releases unheld lock %d", i, e.Proc, e.Sync)
			}
			if h != e.Proc {
				return fmt.Errorf("trace: event %d: p%d releases lock %d held by p%d", i, e.Proc, e.Sync, h)
			}
			delete(lockHolder, e.Sync)
		case Barrier:
			if e.Sync < 0 || int(e.Sync) >= t.NumBarriers {
				return fmt.Errorf("trace: event %d: barrier %d out of range [0,%d)", i, e.Sync, t.NumBarriers)
			}
			arr := barArrived[e.Sync]
			if arr == nil {
				arr = make(map[mem.ProcID]bool)
				barArrived[e.Sync] = arr
			}
			if arr[e.Proc] {
				return fmt.Errorf("trace: event %d: p%d arrives twice at barrier %d within one episode", i, e.Proc, e.Sync)
			}
			arr[e.Proc] = true
			if len(arr) == t.NumProcs {
				delete(barArrived, e.Sync) // episode complete
			}
		}
	}
	for l, h := range lockHolder {
		return fmt.Errorf("trace: lock %d still held by p%d at end of trace", l, h)
	}
	for b, arr := range barArrived {
		return fmt.Errorf("trace: barrier %d episode incomplete: %d of %d processors arrived", b, len(arr), t.NumProcs)
	}
	return nil
}
