package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func validTrace() *Trace {
	return &Trace{
		NumProcs:    2,
		SpaceSize:   4096,
		NumLocks:    2,
		NumBarriers: 1,
		Name:        "t",
		Events: []Event{
			{Kind: Write, Proc: 0, Addr: 0, Size: 8},
			{Kind: SetVal, Proc: 0, Addr: 8, Size: 8, Val: 41},
			{Kind: Barrier, Proc: 0, Sync: 0},
			{Kind: Barrier, Proc: 1, Sync: 0},
			{Kind: Acquire, Proc: 0, Sync: 1},
			{Kind: Read, Proc: 0, Addr: 100, Size: 4},
			{Kind: Update, Proc: 0, Addr: 200, Size: 4},
			{Kind: AddVal, Proc: 0, Addr: 8, Size: 8, Val: 1},
			{Kind: Release, Proc: 0, Sync: 1},
			{Kind: Acquire, Proc: 1, Sync: 1},
			{Kind: Write, Proc: 1, Addr: 100, Size: 4},
			{Kind: AddVal, Proc: 1, Addr: 8, Size: 8, Val: 2},
			{Kind: Release, Proc: 1, Sync: 1},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"bad proc", func(tr *Trace) { tr.Events[0].Proc = 7 }, "out of range"},
		{"zero size access", func(tr *Trace) { tr.Events[0].Size = 0 }, "must be positive"},
		{"access out of space", func(tr *Trace) { tr.Events[0].Addr = 4090 }, "outside space"},
		{"release unheld", func(tr *Trace) { tr.Events = []Event{{Kind: Release, Proc: 0, Sync: 0}} }, "unheld"},
		{"double acquire", func(tr *Trace) {
			tr.Events = []Event{{Kind: Acquire, Proc: 0, Sync: 0}, {Kind: Acquire, Proc: 1, Sync: 0}}
		}, "already held"},
		{"release by non-holder", func(tr *Trace) {
			tr.Events = []Event{{Kind: Acquire, Proc: 0, Sync: 0}, {Kind: Release, Proc: 1, Sync: 0}}
		}, "held by"},
		{"held at end", func(tr *Trace) { tr.Events = []Event{{Kind: Acquire, Proc: 0, Sync: 0}} }, "still held"},
		{"double barrier arrival", func(tr *Trace) {
			tr.Events = []Event{{Kind: Barrier, Proc: 0, Sync: 0}, {Kind: Barrier, Proc: 0, Sync: 0}}
		}, "arrives twice"},
		{"incomplete barrier", func(tr *Trace) { tr.Events = []Event{{Kind: Barrier, Proc: 0, Sync: 0}} }, "incomplete"},
		{"bad lock id", func(tr *Trace) { tr.Events = []Event{{Kind: Acquire, Proc: 0, Sync: 9}} }, "out of range"},
		{"bad barrier id", func(tr *Trace) { tr.Events = []Event{{Kind: Barrier, Proc: 0, Sync: 9}} }, "out of range"},
		{"bad kind", func(tr *Trace) { tr.Events[0].Kind = Kind(99) }, "invalid kind"},
	}
	for _, c := range cases {
		tr := validTrace()
		c.mutate(tr)
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCount(t *testing.T) {
	// Update and AddVal each count as a read plus a write; SetVal as a
	// write.
	c := validTrace().Count()
	if c.Reads != 4 || c.Writes != 6 || c.Acquires != 2 || c.Releases != 2 || c.BarrierArrivals != 2 {
		t.Errorf("Count = %+v", c)
	}
}

func TestValidateRejectsBadValSize(t *testing.T) {
	for _, k := range []Kind{SetVal, AddVal} {
		tr := validTrace()
		tr.Events = []Event{{Kind: k, Proc: 0, Addr: 0, Size: 4, Val: 1}}
		if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "want 8") {
			t.Errorf("%s with size 4: err = %v", k, err)
		}
	}
}

func TestImageSemantics(t *testing.T) {
	tr := validTrace()
	img := tr.Image()
	if len(img) != int(tr.SpaceSize) {
		t.Fatalf("image is %d bytes, want %d", len(img), tr.SpaceSize)
	}
	// Write fills with the canonical pattern.
	for i := 0; i < 8; i++ {
		if img[i] != Fill(mem.Addr(i)) {
			t.Errorf("img[%d] = %#x, want fill %#x", i, img[i], Fill(mem.Addr(i)))
		}
	}
	// SetVal 41 then AddVal 1 and 2 leave 44 at address 8.
	var got uint64
	for i := 7; i >= 0; i-- {
		got = got<<8 | uint64(img[8+i])
	}
	if got != 44 {
		t.Errorf("counter at 8 = %d, want 44", got)
	}
	// One update incremented bytes [200,204) from zero.
	for a := 200; a < 204; a++ {
		if img[a] != 1 {
			t.Errorf("img[%d] = %d, want 1", a, img[a])
		}
	}
	// Reads and synchronization leave no trace in the image.
	if img[100] != Fill(100) {
		t.Errorf("img[100] = %#x, want fill", img[100])
	}
}

func TestFillRangeMatchesFill(t *testing.T) {
	buf := make([]byte, 32)
	FillRange(buf, 100)
	for i, b := range buf {
		if b != Fill(mem.Addr(100 + i)) {
			t.Fatalf("FillRange[%d] = %#x, want %#x", i, b, Fill(mem.Addr(100+i)))
		}
	}
	// The pattern must actually vary with the address (a constant fill
	// would mask misdirected diffs).
	distinct := map[byte]bool{}
	for _, b := range buf {
		distinct[b] = true
	}
	if len(distinct) < 8 {
		t.Errorf("fill pattern has only %d distinct bytes in 32", len(distinct))
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: Read, Proc: 1, Addr: 8, Size: 4}, "p1 read [8,12)"},
		{Event{Kind: Acquire, Proc: 0, Sync: 3}, "p0 acquire lock3"},
		{Event{Kind: Barrier, Proc: 2, Sync: 0}, "p2 barrier0"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestIORoundTrip(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProcs != tr.NumProcs || got.SpaceSize != tr.SpaceSize ||
		got.NumLocks != tr.NumLocks || got.NumBarriers != tr.NumBarriers || got.Name != tr.Name {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("event count %d, want %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a trace at all......."))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated valid prefix.
	tr := validTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadFrom(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestPropIORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := &Trace{
			NumProcs:    1 + r.Intn(8),
			SpaceSize:   mem.Addr(1024 * (1 + r.Intn(64))),
			NumLocks:    1 + r.Intn(4),
			NumBarriers: 1,
			Name:        "prop",
		}
		// Random reads/writes plus balanced lock pairs.
		for i := 0; i < r.Intn(200); i++ {
			p := mem.ProcID(r.Intn(tr.NumProcs))
			l := int32(r.Intn(tr.NumLocks))
			switch r.Intn(3) {
			case 0:
				a := mem.Addr(r.Int63n(int64(tr.SpaceSize) - 8))
				tr.Events = append(tr.Events, Event{Kind: Read, Proc: p, Addr: a, Size: 8})
			case 1:
				a := mem.Addr(r.Int63n(int64(tr.SpaceSize) - 8))
				tr.Events = append(tr.Events, Event{Kind: Write, Proc: p, Addr: a, Size: 8})
			case 2:
				tr.Events = append(tr.Events,
					Event{Kind: Acquire, Proc: p, Sync: l},
					Event{Kind: Release, Proc: p, Sync: l})
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Read: "read", Write: "write", Acquire: "acquire", Release: "release", Barrier: "barrier"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
		if !k.Valid() {
			t.Errorf("Kind %s reported invalid", s)
		}
	}
	if Kind(99).Valid() {
		t.Error("Kind(99) reported valid")
	}
}
