package transport

import (
	"testing"
	"time"
)

// TestEstimateStatsCompressedFrames pins the charging rules for
// snapshots produced by the batching+compression pipeline: the fixed
// per-message cost is paid once per physical frame (not per coalesced
// message), and the byte cost is paid on the wire bytes a compressed
// frame actually moved (not the logical RawBytes it encoded).
func TestEstimateStatsCompressedFrames(t *testing.T) {
	m := LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}
	s := Stats{
		Messages: 100,
		Frames:   10,
		Batches:  10,
		Bytes:    8 * 1024,    // post-compression wire bytes
		RawBytes: 1024 * 1024, // pre-compression logical bytes
	}
	got := m.EstimateStats(s)
	want := m.Estimate(s.Frames, s.Bytes)
	if got != want {
		t.Fatalf("EstimateStats = %v, want %v (frames × PerMessage + wire bytes)", got, want)
	}
	if perMsg := m.Estimate(s.Messages, s.Bytes); got >= perMsg {
		t.Errorf("EstimateStats %v not cheaper than per-message charging %v: batching must buy wall-clock", got, perMsg)
	}
	if raw := m.Estimate(s.Frames, s.RawBytes); got >= raw {
		t.Errorf("EstimateStats %v not cheaper than raw-byte charging %v: compression must buy wall-clock", got, raw)
	}

	// Snapshots from sources that predate frame counting carry Frames=0
	// and fall back to the message count.
	legacy := Stats{Messages: 100, Bytes: 8 * 1024}
	if got, want := m.EstimateStats(legacy), m.Estimate(100, 8*1024); got != want {
		t.Fatalf("legacy snapshot EstimateStats = %v, want %v", got, want)
	}
}
