package transport

import (
	"testing"
	"time"
)

func TestLatencyModel(t *testing.T) {
	m := LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}
	if got := m.Cost(2048); got != time.Millisecond+200*time.Microsecond {
		t.Errorf("Cost = %v", got)
	}
	if got := m.Estimate(10, 10240); got != 10*time.Millisecond+time.Millisecond {
		t.Errorf("Estimate = %v", got)
	}
}

func TestStatsAdd(t *testing.T) {
	s := Stats{Messages: 3, Bytes: 100}
	s.Add(Stats{Messages: 2, Bytes: 50})
	if s.Messages != 5 || s.Bytes != 150 {
		t.Errorf("Add = %+v", s)
	}
}

func TestEstimateStats(t *testing.T) {
	m := LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}
	// Frames gate the fixed cost: 8 messages coalesced into 2 frames pay
	// 2 fixed costs.
	s := Stats{Messages: 8, Frames: 2, Bytes: 2048}
	if got, want := m.EstimateStats(s), 2*time.Millisecond+200*time.Microsecond; got != want {
		t.Errorf("EstimateStats = %v, want %v", got, want)
	}
	// Pre-frame-counting snapshots fall back to the message count.
	old := Stats{Messages: 8, Bytes: 2048}
	if got, want := m.EstimateStats(old), 8*time.Millisecond+200*time.Microsecond; got != want {
		t.Errorf("EstimateStats fallback = %v, want %v", got, want)
	}
}

// fallbackEndpoint implements only the core Endpoint interface, so the
// SendBatch adapter must concatenate and fall back to Send.
type fallbackEndpoint struct {
	dst     int
	payload []byte
}

func (f *fallbackEndpoint) ID() int { return 0 }
func (f *fallbackEndpoint) Send(dst int, payload []byte) error {
	f.dst, f.payload = dst, payload
	return nil
}
func (f *fallbackEndpoint) Recv() (int, []byte, bool) { return 0, nil, false }

func TestSendBatchAdapterFallback(t *testing.T) {
	ep := &fallbackEndpoint{}
	frames := [][]byte{[]byte("hdr"), []byte("one"), []byte("two")}
	if err := SendBatch(ep, 3, frames); err != nil {
		t.Fatal(err)
	}
	if ep.dst != 3 || string(ep.payload) != "hdronetwo" {
		t.Fatalf("fallback sent %q to %d", ep.payload, ep.dst)
	}
}

func TestStatsAddFramesBatches(t *testing.T) {
	s := Stats{Messages: 3, Frames: 2, Batches: 1, Bytes: 100}
	s.Add(Stats{Messages: 5, Frames: 1, Batches: 1, Bytes: 50})
	want := Stats{Messages: 8, Frames: 3, Batches: 2, Bytes: 150}
	if s != want {
		t.Fatalf("Add = %+v, want %+v", s, want)
	}
}
