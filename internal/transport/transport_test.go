package transport

import (
	"testing"
	"time"
)

func TestLatencyModel(t *testing.T) {
	m := LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}
	if got := m.Cost(2048); got != time.Millisecond+200*time.Microsecond {
		t.Errorf("Cost = %v", got)
	}
	if got := m.Estimate(10, 10240); got != 10*time.Millisecond+time.Millisecond {
		t.Errorf("Estimate = %v", got)
	}
}

func TestStatsAdd(t *testing.T) {
	s := Stats{Messages: 3, Bytes: 100}
	s.Add(Stats{Messages: 2, Bytes: 50})
	if s.Messages != 5 || s.Bytes != 150 {
		t.Errorf("Add = %+v", s)
	}
}
