package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
)

func TestParse(t *testing.T) {
	p, err := Parse("drop=0.01,dup=0.005,delay=2ms,jitter=1ms,partition=2x2,kill=3@5000,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, Drop: 0.01, Dup: 0.005, Delay: 2 * time.Millisecond,
		Jitter: time.Millisecond, PartA: 2, PartB: 2, KillPeer: 3, KillAfter: 5000}
	if p != want {
		t.Errorf("Parse = %+v, want %+v", p, want)
	}
	if !p.Active() {
		t.Error("parsed plan reports inactive")
	}

	if p, err := Parse(""); err != nil || p.Active() {
		t.Errorf("empty spec: plan %+v, err %v", p, err)
	}
	for _, bad := range []string{
		"drop=1.5", "drop=x", "nope=1", "partition=2", "partition=0x3",
		"kill=3", "kill=-1@5", "kill=3@0", "delay=-1ms", "drop",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestZeroPlanInert(t *testing.T) {
	tr := Wrap(simnet.New(2), Plan{})
	defer tr.Close()
	ep0 := tr.Endpoint(0)
	if err := ep0.Send(1, []byte("hello")); err != nil {
		t.Fatalf("zero plan faulted a send: %v", err)
	}
	src, payload, ok := tr.Endpoint(1).Recv()
	if !ok || src != 0 || string(payload) != "hello" {
		t.Fatalf("Recv = %d %q %v", src, payload, ok)
	}
}

func TestDropAndDupDeterministic(t *testing.T) {
	run := func(seed int64) (delivered int) {
		tr := Wrap(simnet.New(2), Plan{Seed: seed, Drop: 0.3})
		defer tr.Close()
		ep := tr.Endpoint(0)
		for i := 0; i < 200; i++ {
			if err := ep.Send(1, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		tr.Close()
		rx := tr.Endpoint(1)
		for {
			_, _, ok := rx.Recv()
			if !ok {
				return delivered
			}
			delivered++
		}
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed delivered %d then %d frames", a, b)
	}
	if a == 200 || a == 0 {
		t.Errorf("drop=0.3 delivered %d of 200", a)
	}
	if c := run(43); c == a {
		t.Logf("different seeds delivered identically (%d) — possible but unlikely", c)
	}

	// Duplication delivers extra frames.
	tr := Wrap(simnet.New(2), Plan{Seed: 1, Dup: 0.5})
	ep := tr.Endpoint(0)
	for i := 0; i < 100; i++ {
		if err := ep.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	got := 0
	rx := tr.Endpoint(1)
	for {
		_, _, ok := rx.Recv()
		if !ok {
			break
		}
		got++
	}
	if got <= 100 {
		t.Errorf("dup=0.5 delivered %d frames for 100 sends", got)
	}
}

func TestPartitionDropsCrossTraffic(t *testing.T) {
	tr := Wrap(simnet.New(4), Plan{PartA: 2, PartB: 2})
	// Same-group traffic flows.
	if err := tr.Endpoint(0).Send(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tr.Endpoint(1).Recv(); !ok {
		t.Fatal("same-group frame lost")
	}
	// Cross-group traffic is silently dropped.
	if err := tr.Endpoint(0).Send(2, []byte("cut")); err != nil {
		t.Fatalf("partitioned send errored: %v", err)
	}
	tr.Close()
	if _, _, ok := tr.Endpoint(2).Recv(); ok {
		t.Fatal("cross-group frame delivered through partition")
	}
}

func TestKillFailStop(t *testing.T) {
	tr := Wrap(simnet.New(3), Plan{KillPeer: 1, KillAfter: 3})
	defer tr.Close()
	victim := tr.Endpoint(1)
	survivor := tr.Endpoint(0)

	// The victim's first two remote frames pass, the third kills it.
	for i := 0; i < 2; i++ {
		if err := victim.Send(0, []byte{1}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	err := victim.Send(0, []byte{1})
	if !errors.Is(err, ErrKilled) || !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("killing send: %v", err)
	}
	if err := victim.Send(2, []byte{1}); !errors.Is(err, ErrKilled) {
		t.Fatalf("post-kill send: %v", err)
	}

	// The victim's Recv unblocks with closure.
	done := make(chan bool, 1)
	go func() {
		_, _, ok := victim.Recv()
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			// Drain frames delivered before death, then expect closure.
			for {
				if _, _, ok := victim.Recv(); !ok {
					break
				}
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("killed endpoint's Recv did not unblock")
	}

	// Survivors' sends to the dead peer fail with a non-shutdown error.
	serr := survivor.Send(1, []byte{1})
	if !errors.Is(serr, ErrPeerDown) {
		t.Fatalf("send to killed peer: %v", serr)
	}
	if errors.Is(serr, transport.ErrClosed) {
		t.Fatal("peer-down error must not look like local shutdown")
	}
	// Survivor-to-survivor traffic still flows.
	if err := survivor.Send(2, []byte{9}); err != nil {
		t.Fatalf("survivor send: %v", err)
	}
	if _, _, ok := tr.Endpoint(2).Recv(); !ok {
		t.Fatal("survivor frame lost")
	}
}

func TestDelayPreservesOrder(t *testing.T) {
	tr := Wrap(simnet.New(2), Plan{Delay: time.Millisecond, Jitter: time.Millisecond, Seed: 5})
	ep := tr.Endpoint(0)
	const n = 20
	for i := 0; i < n; i++ {
		if err := ep.Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	rx := tr.Endpoint(1)
	for i := 0; i < n; i++ {
		_, payload, ok := rx.Recv()
		if !ok {
			t.Fatalf("lost frame %d", i)
		}
		if payload[0] != byte(i) {
			t.Fatalf("frame %d arrived with payload %d: reordered", i, payload[0])
		}
	}
}
