// Package fault is a chaos decorator over any transport.Transport: it
// deterministically (seeded) drops, delays and duplicates frames,
// partitions the cluster, and can fail-stop-kill an endpoint after a
// chosen number of sent frames — so the runtime's liveness and error
// reporting under network faults and peer death can be tested against
// both interconnects without touching either.
//
// All faults are applied on the send side, which keeps the transport
// contract's per-sender FIFO ordering trivially intact: a delayed frame
// delays everything behind it (like a slow link), a dropped frame
// simply never enters the stream, and a duplicated frame is sent twice
// back to back. Loopback sends (dst == self) are never faulted — the
// runtime treats them as free local operations, not network traffic.
//
// Kill semantics are fail-stop: once the configured endpoint has sent
// its N-th frame, its sends fail with ErrKilled (which wraps
// transport.ErrClosed, so the dying node treats its own demise as a
// shutdown, not a protocol fault), its Recv unblocks and reports
// closure, and — when the inner transport serves only that endpoint,
// i.e. one endpoint per process as under TCP — the whole inner
// transport is closed, so surviving peers' connections break exactly
// as they would if the process had died. When the inner transport
// serves the whole cluster in-process (simnet), survivors' sends to the
// killed endpoint fail with ErrPeerDown instead, modeling the
// connection reset a real network would eventually deliver.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	stdnet "net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// ErrKilled is the error a killed endpoint's own sends fail with. It
// wraps transport.ErrClosed: from the dying node's perspective the
// interconnect is simply gone.
var ErrKilled = fmt.Errorf("fault: endpoint killed (fail-stop): %w", transport.ErrClosed)

// ErrPeerDown is the error a send to a killed peer fails with (when the
// decorator can see the peer's death locally, i.e. over an in-process
// inner transport). It does NOT wrap transport.ErrClosed: for the
// surviving sender this is a real fault, not its own shutdown.
var ErrPeerDown = errors.New("fault: peer killed (fail-stop)")

// Plan describes the faults to inject. The zero value injects nothing.
type Plan struct {
	// Seed makes the probabilistic faults (Drop, Dup) deterministic;
	// each endpoint derives its own stream from Seed and its id.
	Seed int64
	// Drop is the probability in [0,1) that a frame is silently dropped.
	Drop float64
	// Dup is the probability in [0,1) that a frame is delivered twice.
	Dup float64
	// Delay stalls every send by this long (plus up to Jitter, seeded),
	// modeling a slow link; FIFO order is preserved.
	Delay  time.Duration
	Jitter time.Duration
	// PartA/PartB split the cluster into endpoints [0,PartA) and
	// [PartA,PartA+PartB): frames crossing the two groups are silently
	// dropped. Both zero disables; endpoints beyond the groups are
	// unaffected.
	PartA, PartB int
	// KillPeer fail-stop-kills that endpoint as it attempts its
	// KillAfter-th remote frame. The kill is active only when
	// KillAfter >= 1, so the zero Plan injects nothing.
	KillPeer  int
	KillAfter int64
}

// killActive reports whether the plan kills an endpoint.
func (p Plan) killActive() bool { return p.KillPeer >= 0 && p.KillAfter >= 1 }

// Active reports whether the plan injects any fault.
func (p Plan) Active() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Delay > 0 || p.Jitter > 0 ||
		p.PartA > 0 || p.PartB > 0 || p.killActive()
}

// group maps an endpoint to its partition side: 0, 1, or -1 (outside
// the partition, never cut off).
func (p Plan) group(id int) int {
	switch {
	case p.PartA <= 0 || p.PartB <= 0:
		return -1
	case id < p.PartA:
		return 0
	case id < p.PartA+p.PartB:
		return 1
	default:
		return -1
	}
}

func (p Plan) partitioned(src, dst int) bool {
	a, b := p.group(src), p.group(dst)
	return a >= 0 && b >= 0 && a != b
}

// Parse builds a Plan from a comma-separated spec, e.g.
//
//	drop=0.01,dup=0.005,delay=2ms,jitter=1ms,partition=2x2,kill=3@5000,seed=7
//
// Unknown keys are errors. An empty spec is the inactive plan.
func Parse(spec string) (Plan, error) {
	p := Plan{KillPeer: -1}
	if spec == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return p, fmt.Errorf("fault: malformed spec element %q (want key=value)", part)
		}
		var err error
		switch k {
		case "drop":
			p.Drop, err = parseProb(v)
		case "dup":
			p.Dup, err = parseProb(v)
		case "delay":
			p.Delay, err = time.ParseDuration(v)
		case "jitter":
			p.Jitter, err = time.ParseDuration(v)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "partition":
			a, b, ok := strings.Cut(v, "x")
			if !ok {
				return p, fmt.Errorf("fault: partition %q (want AxB)", v)
			}
			if p.PartA, err = strconv.Atoi(a); err == nil {
				p.PartB, err = strconv.Atoi(b)
			}
			if err == nil && (p.PartA <= 0 || p.PartB <= 0) {
				err = fmt.Errorf("non-positive group size")
			}
		case "kill":
			peer, after, ok := strings.Cut(v, "@")
			if !ok {
				return p, fmt.Errorf("fault: kill %q (want PEER@COUNT)", v)
			}
			if p.KillPeer, err = strconv.Atoi(peer); err == nil {
				p.KillAfter, err = strconv.ParseInt(after, 10, 64)
			}
			if err == nil && (p.KillPeer < 0 || p.KillAfter < 1) {
				err = fmt.Errorf("want PEER >= 0 and COUNT >= 1")
			}
		default:
			return p, fmt.Errorf("fault: unknown spec key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("fault: %s=%s: %v", k, v, err)
		}
	}
	if p.Delay < 0 || p.Jitter < 0 {
		return p, fmt.Errorf("fault: negative delay")
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f >= 1 {
		return 0, fmt.Errorf("probability %v outside [0,1)", f)
	}
	return f, nil
}

// Transport decorates an inner transport with the plan's faults. It
// implements transport.Transport; its endpoints implement BatchSender
// and CompressedSender by delegation, so the decorated stack keeps the
// inner transport's framing and accounting (dropped frames never reach
// the inner transport and are not accounted).
type Transport struct {
	inner transport.Transport
	plan  Plan

	mu  sync.Mutex
	eps map[int]*Endpoint
}

// Wrap decorates tr with the plan's faults. Wrap takes ownership of tr
// the way dsm.New does: closing the returned transport closes tr.
func Wrap(tr transport.Transport, plan Plan) *Transport {
	return &Transport{inner: tr, plan: plan, eps: make(map[int]*Endpoint)}
}

// NumEndpoints returns the inner cluster size.
func (t *Transport) NumEndpoints() int { return t.inner.NumEndpoints() }

// Local returns the inner transport's local endpoint ids.
func (t *Transport) Local() []int { return t.inner.Local() }

// Totals returns the inner transport's counters: what actually crossed
// the (decorated) wire — dropped frames are absent, duplicated frames
// counted twice.
func (t *Transport) Totals() transport.Stats { return t.inner.Totals() }

// Close closes the inner transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Endpoint returns the decorated endpoint i.
func (t *Transport) Endpoint(i int) transport.Endpoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.eps[i]; ok {
		return e
	}
	e := &Endpoint{
		t:     t,
		inner: t.inner.Endpoint(i),
		id:    i,
		rng:   rand.New(rand.NewSource(t.plan.Seed*1_000_003 + int64(i))),
	}
	if t.plan.killActive() && t.plan.KillPeer == i {
		e.killCh = make(chan struct{})
	}
	t.eps[i] = e
	return e
}

// peerKilled reports whether endpoint id is a locally-visible killed
// endpoint (only possible when the inner transport serves it in this
// process).
func (t *Transport) peerKilled(id int) bool {
	t.mu.Lock()
	e := t.eps[id]
	t.mu.Unlock()
	return e != nil && e.killed.Load()
}

// recvItem is one delivery forwarded by the kill-aware receive pump.
type recvItem struct {
	src     int
	payload []byte
}

// Endpoint decorates one endpoint with the plan's send-side faults.
type Endpoint struct {
	t     *Transport
	inner transport.Endpoint
	id    int

	mu   sync.Mutex
	rng  *rand.Rand
	sent int64

	// Kill state: killCh is non-nil iff this endpoint is the plan's
	// kill target; it is closed at death. The receive pump exists so a
	// killed endpoint's Recv unblocks even though the inner transport
	// (when shared in-process) stays up for the survivors.
	killed   atomic.Bool
	killOnce sync.Once
	killCh   chan struct{}
	pumpOnce sync.Once
	inCh     chan recvItem
}

// ID returns the endpoint's id.
func (e *Endpoint) ID() int { return e.id }

// action is one send's fault decision.
type action struct {
	drop  bool
	dup   bool
	delay time.Duration
}

// decide rolls this send's faults. It returns an error when the sender
// is dead or the destination is known dead.
func (e *Endpoint) decide(dst int) (action, error) {
	var act action
	if e.killed.Load() {
		return act, ErrKilled
	}
	p := e.t.plan
	if p.killActive() && p.KillPeer == dst && e.t.peerKilled(dst) {
		return act, fmt.Errorf("send to endpoint %d: %w", dst, ErrPeerDown)
	}
	e.mu.Lock()
	e.sent++
	if p.killActive() && p.KillPeer == e.id && e.sent >= p.KillAfter {
		e.mu.Unlock()
		e.kill()
		return act, ErrKilled
	}
	if p.partitioned(e.id, dst) {
		e.mu.Unlock()
		act.drop = true
		return act, nil
	}
	if p.Drop > 0 && e.rng.Float64() < p.Drop {
		act.drop = true
	}
	if p.Dup > 0 && e.rng.Float64() < p.Dup {
		act.dup = true
	}
	act.delay = p.Delay
	if p.Jitter > 0 {
		act.delay += time.Duration(e.rng.Int63n(int64(p.Jitter)))
	}
	e.mu.Unlock()
	return act, nil
}

// kill fail-stops this endpoint (see the package comment for the
// split between per-process and in-process inner transports).
func (e *Endpoint) kill() {
	e.killOnce.Do(func() {
		e.killed.Store(true)
		if e.killCh != nil {
			close(e.killCh)
		}
		if len(e.t.inner.Local()) == 1 {
			// One endpoint per process: the process is dead, take its
			// listener and connections with it so peers see broken
			// streams. Async because Close may block on in-flight IO.
			go e.t.inner.Close()
		}
	})
}

// Send applies the plan and forwards to the inner endpoint. Ownership
// of payload transfers here as with any transport: a dropped frame is
// simply abandoned.
func (e *Endpoint) Send(dst int, payload []byte) error {
	if dst == e.id {
		return e.inner.Send(dst, payload)
	}
	act, err := e.decide(dst)
	if err != nil {
		return err
	}
	if act.drop {
		return nil
	}
	var dup []byte
	if act.dup {
		dup = append([]byte(nil), payload...)
	}
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if err := e.inner.Send(dst, payload); err != nil {
		return err
	}
	if dup != nil {
		return e.inner.Send(dst, dup)
	}
	return nil
}

// SendBatch applies the plan to the whole batch frame (the faults are
// frame-granular, matching what a real network does to a physical
// frame). The borrowed buffers are forwarded within the call, so a
// duplicate is a second vectored send of the same buffers.
func (e *Endpoint) SendBatch(dst int, frames stdnet.Buffers) error {
	if dst == e.id {
		return transport.SendBatch(e.inner, dst, frames)
	}
	act, err := e.decide(dst)
	if err != nil {
		return err
	}
	if act.drop {
		return nil
	}
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if err := transport.SendBatch(e.inner, dst, frames); err != nil {
		return err
	}
	if act.dup {
		return transport.SendBatch(e.inner, dst, frames)
	}
	return nil
}

// SendCompressed applies the plan to a compressed frame.
func (e *Endpoint) SendCompressed(dst, msgs, rawBytes int, payload []byte) error {
	if dst == e.id {
		return transport.SendCompressed(e.inner, dst, msgs, rawBytes, payload)
	}
	act, err := e.decide(dst)
	if err != nil {
		return err
	}
	if act.drop {
		return nil
	}
	var dup []byte
	if act.dup {
		dup = append([]byte(nil), payload...)
	}
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if err := transport.SendCompressed(e.inner, dst, msgs, rawBytes, payload); err != nil {
		return err
	}
	if dup != nil {
		return transport.SendCompressed(e.inner, dst, msgs, rawBytes, dup)
	}
	return nil
}

// Recv forwards the inner receive stream. For the kill target it runs
// through a pump goroutine so the endpoint's dispatch loop unblocks the
// moment the endpoint dies, even though the shared inner transport is
// still alive for the survivors.
func (e *Endpoint) Recv() (int, []byte, bool) {
	if e.killCh == nil {
		return e.inner.Recv()
	}
	e.pumpOnce.Do(func() {
		e.inCh = make(chan recvItem)
		go func() {
			for {
				src, payload, ok := e.inner.Recv()
				if !ok {
					close(e.inCh)
					return
				}
				select {
				case e.inCh <- recvItem{src, payload}:
				case <-e.killCh:
					return
				}
			}
		}()
	})
	select {
	case it, ok := <-e.inCh:
		if !ok {
			return 0, nil, false
		}
		return it.src, it.payload, true
	case <-e.killCh:
		return 0, nil, false
	}
}
