// Package transport defines the interconnect abstraction beneath the
// live DSM runtime (internal/dsm): a Transport connects the cluster's n
// endpoints with reliable, per-sender-FIFO, point-to-point delivery of
// opaque payloads (encoded wire.Msg frames), and accounts every message
// and byte it moves.
//
// Two implementations exist:
//
//   - internal/simnet — the default in-process interconnect (the paper's
//     §5.1 network assumptions: reliable FIFO channels, no broadcast),
//     serving all n endpoints inside one process;
//   - internal/transport/tcp — a real interconnect framing payloads over
//     length-prefixed TCP streams with one connection per peer, serving
//     one endpoint per OS process so a DSM cluster spans processes and
//     machines.
//
// The consistency protocols never see which one they run over: dsm.System
// consumes this interface only, so every engine (LI/LU/EI/EU/SC) works
// identically across transports — the cross-transport differential tests
// in internal/workload assert exactly that.
package transport

import (
	"errors"
	"net"
	"time"
)

// Stats is a snapshot of traffic counters for the endpoints a Transport
// instance serves. Loopback (an endpoint sending to itself) is free,
// matching the paper's cost model where local operations cost nothing.
//
// Messages counts logical protocol messages; Frames counts physical
// network hops. A plain Send moves one message in one frame; a SendBatch
// of k messages moves k messages in one frame (and counts one Batch), so
// Messages-vs-Frames is exactly the saving the outbox's coalescing buys:
// each frame pays the fixed per-message network cost once.
//
// Bytes counts what actually crossed the wire; RawBytes counts the
// logical (pre-compression) encoding. For uncompressed traffic the two
// are equal, so RawBytes-vs-Bytes is exactly the saving frame
// compression buys — and since the latency model charges Bytes, that
// saving shows up in estimated wire time too.
type Stats struct {
	Messages int64
	Frames   int64
	Batches  int64
	Bytes    int64
	RawBytes int64
}

// Add accumulates other into s (for aggregating multi-instance clusters).
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Frames += other.Frames
	s.Batches += other.Batches
	s.Bytes += other.Bytes
	s.RawBytes += other.RawBytes
}

// ErrClosed is returned by Send, and wrapped by blocked protocol
// operations, after a transport shuts down.
var ErrClosed = errors.New("transport: closed")

// Endpoint is one node's attachment to the interconnect.
type Endpoint interface {
	// ID returns the endpoint's index in [0, NumEndpoints).
	ID() int
	// Send delivers payload to endpoint dst, reliably and in FIFO order
	// with respect to other Sends (and SendBatches) from this endpoint to
	// the same destination. Sending to oneself is allowed and free. Send
	// may be called concurrently from multiple goroutines.
	//
	// Ownership of payload transfers to the transport: the caller must
	// not read or modify it after Send returns. (In-process transports
	// deliver the buffer itself to the receiver; the receiver owns what
	// Recv returns and may recycle it.)
	Send(dst int, payload []byte) error
	// Recv blocks until a payload arrives for this endpoint, returning
	// the sender's id, or until the transport closes (ok=false). Payloads
	// already delivered when the transport closes are drained first. The
	// returned payload is owned by the caller.
	Recv() (src int, payload []byte, ok bool)
}

// BatchSender is the vectored-send extension an Endpoint may implement:
// the frames together form ONE wire payload (the caller's batch-frame
// format — frames[0] is the batch header, every later element exactly
// one length-prefixed logical message), delivered to dst as a single
// physical hop: one Recv payload at the receiver, one length-prefixed
// write syscall on a real transport, one fixed latency cost on the
// simulated one. Accounting: len(frames)-1 messages, one frame, one
// batch.
//
// Unlike Send, the frame buffers are only borrowed: the transport must
// copy or write them before returning, and the caller may reuse them
// afterwards (they are typically sub-slices of one pooled buffer).
type BatchSender interface {
	SendBatch(dst int, frames net.Buffers) error
}

// SendBatch is the default adapter over the optional BatchSender
// interface: endpoints that implement it get a true vectored single-hop
// send; for any other endpoint the frames are concatenated into one
// payload and delivered with Send (still one hop, though such a
// transport accounts it as a single message).
func SendBatch(ep Endpoint, dst int, frames net.Buffers) error {
	if bs, ok := ep.(BatchSender); ok {
		return bs.SendBatch(dst, frames)
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	buf := make([]byte, 0, total)
	for _, f := range frames {
		buf = append(buf, f...)
	}
	return ep.Send(dst, buf)
}

// CompressedSender is the compressed-frame extension an Endpoint may
// implement: payload is ONE physical frame (a wire.KCompressed frame)
// carrying msgs logical messages whose pre-compression encoding was
// rawBytes long. Accounting: msgs messages, one frame, one batch when
// msgs > 1, len(payload) wire bytes, rawBytes raw bytes — so the
// latency model charges post-compression bytes. Ownership of payload
// transfers like Send.
type CompressedSender interface {
	SendCompressed(dst, msgs, rawBytes int, payload []byte) error
}

// SendCompressed is the default adapter over the optional
// CompressedSender interface. An endpoint that does not implement it
// still delivers the frame correctly via plain Send (the receiver
// expands it regardless) but accounts it as one message of its wire
// size, like any other opaque payload.
func SendCompressed(ep Endpoint, dst, msgs, rawBytes int, payload []byte) error {
	if cs, ok := ep.(CompressedSender); ok {
		return cs.SendCompressed(dst, msgs, rawBytes, payload)
	}
	return ep.Send(dst, payload)
}

// Transport connects a DSM cluster's endpoints. One instance serves the
// endpoints local to this process: the in-process simnet serves all of
// them, a TCP transport serves exactly one.
type Transport interface {
	// NumEndpoints returns the cluster size.
	NumEndpoints() int
	// Local returns the ids of the endpoints this instance serves in this
	// process, in ascending order.
	Local() []int
	// Endpoint returns endpoint i's handle; i must be local.
	Endpoint(i int) Endpoint
	// Totals returns traffic counters for this instance's endpoints.
	Totals() Stats
	// Close shuts the transport down — pending and future Recvs return
	// ok=false, future Sends fail with ErrClosed — and returns any
	// teardown or connection error accumulated while it ran, so a dead
	// peer surfaces instead of vanishing. Close is idempotent; every call
	// returns the same error.
	Close() error
}

// LatencyModel estimates the wire time of messages: a fixed per-message
// latency plus a bandwidth term. The defaults approximate the 1992-era
// networks the paper targets (kernel traps, interrupts and protocol
// stacks make software DSM messages expensive, §1).
type LatencyModel struct {
	// PerMessage is the fixed cost of any message.
	PerMessage time.Duration
	// PerKByte is the additional cost per 1024 payload bytes.
	PerKByte time.Duration
}

// DefaultLatency is a millisecond-class software DSM message cost.
var DefaultLatency = LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}

// Cost returns the estimated time on the wire for one message of the
// given size.
func (m LatencyModel) Cost(bytes int) time.Duration {
	return m.PerMessage + time.Duration(int64(m.PerKByte)*int64(bytes)/1024)
}

// Estimate returns the estimated serial wire time for a message/byte
// total (messages do overlap in a real system; this is the upper bound
// used in EXPERIMENTS.md when relating counts to time).
func (m LatencyModel) Estimate(messages, bytes int64) time.Duration {
	return time.Duration(messages)*m.PerMessage + time.Duration(bytes/1024)*m.PerKByte
}

// EstimateStats estimates the serial wire time of a traffic snapshot,
// charging the fixed per-message cost once per physical frame: a batch
// of k coalesced messages pays one fixed cost plus its bytes — how
// message-count savings become wall-clock savings in simulated time.
// Snapshots from sources that predate frame counting fall back to the
// message count.
func (m LatencyModel) EstimateStats(s Stats) time.Duration {
	frames := s.Frames
	if frames == 0 {
		frames = s.Messages
	}
	return m.Estimate(frames, s.Bytes)
}
