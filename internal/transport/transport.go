// Package transport defines the interconnect abstraction beneath the
// live DSM runtime (internal/dsm): a Transport connects the cluster's n
// endpoints with reliable, per-sender-FIFO, point-to-point delivery of
// opaque payloads (encoded wire.Msg frames), and accounts every message
// and byte it moves.
//
// Two implementations exist:
//
//   - internal/simnet — the default in-process interconnect (the paper's
//     §5.1 network assumptions: reliable FIFO channels, no broadcast),
//     serving all n endpoints inside one process;
//   - internal/transport/tcp — a real interconnect framing payloads over
//     length-prefixed TCP streams with one connection per peer, serving
//     one endpoint per OS process so a DSM cluster spans processes and
//     machines.
//
// The consistency protocols never see which one they run over: dsm.System
// consumes this interface only, so every engine (LI/LU/EI/EU/SC) works
// identically across transports — the cross-transport differential tests
// in internal/workload assert exactly that.
package transport

import (
	"errors"
	"time"
)

// Stats is a snapshot of traffic counters: messages and payload bytes
// sent by the endpoints a Transport instance serves. Loopback (an
// endpoint sending to itself) is free, matching the paper's cost model
// where local operations cost nothing.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Add accumulates other into s (for aggregating multi-instance clusters).
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Bytes += other.Bytes
}

// ErrClosed is returned by Send, and wrapped by blocked protocol
// operations, after a transport shuts down.
var ErrClosed = errors.New("transport: closed")

// Endpoint is one node's attachment to the interconnect.
type Endpoint interface {
	// ID returns the endpoint's index in [0, NumEndpoints).
	ID() int
	// Send delivers payload to endpoint dst, reliably and in FIFO order
	// with respect to other Sends from this endpoint to the same
	// destination. Sending to oneself is allowed and free. Send may be
	// called concurrently from multiple goroutines.
	Send(dst int, payload []byte) error
	// Recv blocks until a payload arrives for this endpoint, returning
	// the sender's id, or until the transport closes (ok=false). Payloads
	// already delivered when the transport closes are drained first.
	Recv() (src int, payload []byte, ok bool)
}

// Transport connects a DSM cluster's endpoints. One instance serves the
// endpoints local to this process: the in-process simnet serves all of
// them, a TCP transport serves exactly one.
type Transport interface {
	// NumEndpoints returns the cluster size.
	NumEndpoints() int
	// Local returns the ids of the endpoints this instance serves in this
	// process, in ascending order.
	Local() []int
	// Endpoint returns endpoint i's handle; i must be local.
	Endpoint(i int) Endpoint
	// Totals returns traffic counters for this instance's endpoints.
	Totals() Stats
	// Close shuts the transport down — pending and future Recvs return
	// ok=false, future Sends fail with ErrClosed — and returns any
	// teardown or connection error accumulated while it ran, so a dead
	// peer surfaces instead of vanishing. Close is idempotent; every call
	// returns the same error.
	Close() error
}

// LatencyModel estimates the wire time of messages: a fixed per-message
// latency plus a bandwidth term. The defaults approximate the 1992-era
// networks the paper targets (kernel traps, interrupts and protocol
// stacks make software DSM messages expensive, §1).
type LatencyModel struct {
	// PerMessage is the fixed cost of any message.
	PerMessage time.Duration
	// PerKByte is the additional cost per 1024 payload bytes.
	PerKByte time.Duration
}

// DefaultLatency is a millisecond-class software DSM message cost.
var DefaultLatency = LatencyModel{PerMessage: time.Millisecond, PerKByte: 100 * time.Microsecond}

// Cost returns the estimated time on the wire for one message of the
// given size.
func (m LatencyModel) Cost(bytes int) time.Duration {
	return m.PerMessage + time.Duration(int64(m.PerKByte)*int64(bytes)/1024)
}

// Estimate returns the estimated serial wire time for a message/byte
// total (messages do overlap in a real system; this is the upper bound
// used in EXPERIMENTS.md when relating counts to time).
func (m LatencyModel) Estimate(messages, bytes int64) time.Duration {
	return time.Duration(messages)*m.PerMessage + time.Duration(bytes/1024)*m.PerKByte
}
