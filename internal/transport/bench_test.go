package transport_test

import (
	"testing"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
	"repro/internal/wire"
)

// benchPingPong measures one round trip of a realistic runtime frame (an
// encoded page-response message) between two endpoints — the
// interconnect cost every protocol operation pays. CI runs these with
// -bench 'BenchmarkTransport' into BENCH_transport.json to track
// simnet-vs-TCP overhead.
func benchPingPong(b *testing.B, a, z transport.Endpoint) {
	payload := (&wire.Msg{
		Kind: wire.KPageResp, Seq: 1, A: 7, Data: make([]byte, 4096),
	}).EncodeAppend(nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			src, p, ok := z.Recv()
			if !ok {
				return
			}
			if err := z.Send(src, p); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(2 * len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(z.ID(), payload); err != nil {
			b.Fatal(err)
		}
		if _, _, ok := a.Recv(); !ok {
			b.Fatal("recv failed")
		}
	}
	b.StopTimer()
}

// BenchmarkTransportSimnet: the in-process interconnect's round trip.
func BenchmarkTransportSimnet(b *testing.B) {
	net := simnet.New(2)
	defer net.Close()
	benchPingPong(b, net.Endpoint(0), net.Endpoint(1))
}

// BenchmarkTransportTCP: the same round trip over real loopback TCP
// streams — the per-message overhead a cross-process DSM deployment adds.
func BenchmarkTransportTCP(b *testing.B) {
	cluster, err := tcp.NewLoopbackCluster(2)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, t := range cluster {
			t.Close()
		}
	}()
	benchPingPong(b, cluster[0].Endpoint(0), cluster[1].Endpoint(1))
}
