// Package tcp is the live DSM runtime's real interconnect: a
// transport.Transport implementation that frames the runtime's encoded
// wire.Msg payloads over length-prefixed TCP streams, so a DSM cluster
// — under any of the five consistency protocols — runs across OS
// processes and machines instead of inside one process.
//
// Topology: every endpoint of the cluster is one Transport instance
// (normally one per OS process), identified by its index into the shared
// peer address list. Connections are simplex and lazy: an instance dials
// a peer the first time it sends to it and uses that connection for
// sending only; connections accepted from its listener are used for
// receiving only. One TCP stream per (sender, receiver) pair preserves
// the per-sender FIFO order the protocol engines rely on, exactly like
// the simulated interconnect.
//
// Stream format: a 12-byte hello (magic, cluster size, sender id) when a
// connection opens, then one frame per message — a 4-byte little-endian
// payload length followed by the payload bytes (an encoded wire.Msg,
// opaque to this layer). Hostile or corrupt prefixes are bounded by
// MaxFrameBytes; decoding hardening for the payloads themselves lives in
// wire.Decode.
package tcp

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

const (
	// helloMagic opens every stream ("LRCT"), so a stray connection from
	// something that is not a peer is rejected before any framing.
	helloMagic = 0x4C524354
	// helloBytes is the stream preamble size: magic(4) size(4) src(4).
	helloBytes = 12
	// MaxFrameBytes bounds one framed message. Runtime messages carry at
	// most a few pages plus diffs; a length prefix beyond this is treated
	// as a corrupt or hostile stream and the connection is dropped.
	MaxFrameBytes = 64 << 20
)

// Config describes one endpoint's attachment to a TCP DSM cluster.
type Config struct {
	// Self is this instance's endpoint id: its index in Peers.
	Self int
	// Peers lists every endpoint's listen address ("host:port"), in
	// endpoint-id order. Every instance of the cluster must be built from
	// the same list.
	Peers []string
	// Listener optionally supplies a pre-bound listener for Peers[Self]
	// (the loopback harness binds ephemeral ports first so the peer list
	// can be completed before any instance starts). When nil, New listens
	// on Peers[Self].
	Listener net.Listener
	// DialTimeout is the total budget for reaching a peer, covering
	// startup races where the peer's listener is not up yet (dial
	// attempts are retried until the budget expires). Default 10s.
	DialTimeout time.Duration
	// QueueDepth is the incoming frame queue capacity. Default 4096.
	QueueDepth int
}

type frame struct {
	src     int
	payload []byte
}

// sender is the lazily-dialed send-side connection to one peer. Its
// mutex serializes concurrent sends (application and handler goroutines
// of one node both send), preserving per-pair FIFO on the stream. A
// failed send poisons the sender permanently: the failing frame is
// gone, so silently re-dialing would deliver later frames after a gap —
// a per-sender FIFO violation the protocol engines cannot detect.
// Fail-stop (every later send returns the original error) keeps a dead
// peer loud instead of corrupting directory order.
//
// prefix and bufs are the vectored-write scratch (guarded by mu): each
// frame goes out as one writev of the length prefix plus the payload
// buffers, so the hot path copies nothing and issues one syscall per
// frame — batched or not.
type sender struct {
	addr   string
	mu     sync.Mutex
	conn   net.Conn
	broken error
	prefix [4]byte
	bufs   net.Buffers
}

// Transport is one endpoint of a TCP DSM cluster. It implements both
// transport.Transport (serving exactly one local endpoint) and
// transport.Endpoint (its own).
type Transport struct {
	self        int
	peers       []string
	ln          net.Listener
	dialTimeout time.Duration

	recvq chan frame

	ctx       context.Context
	cancel    context.CancelFunc
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error

	msgs     atomic.Int64
	frames   atomic.Int64
	batches  atomic.Int64
	bytes    atomic.Int64
	rawBytes atomic.Int64

	senders []*sender

	wg       sync.WaitGroup
	connMu   sync.Mutex
	accepted []net.Conn

	errMu sync.Mutex
	errs  []error
}

var _ transport.Transport = (*Transport)(nil)
var _ transport.Endpoint = (*Transport)(nil)

// New starts endpoint cfg.Self of the cluster cfg.Peers: it listens for
// peer connections immediately and dials peers on first send. Callers
// must Close the transport; Close reports receive-side connection errors
// accumulated while it ran.
func New(cfg Config) (*Transport, error) {
	n := len(cfg.Peers)
	if n == 0 {
		return nil, errors.New("tcp: empty peer list")
	}
	if cfg.Self < 0 || cfg.Self >= n {
		return nil, fmt.Errorf("tcp: self index %d outside peer list [0,%d)", cfg.Self, n)
	}
	for i, addr := range cfg.Peers {
		if addr == "" {
			return nil, fmt.Errorf("tcp: empty address for peer %d", i)
		}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Peers[cfg.Self])
		if err != nil {
			return nil, fmt.Errorf("tcp: endpoint %d listen: %w", cfg.Self, err)
		}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &Transport{
		self:        cfg.Self,
		peers:       cfg.Peers,
		ln:          ln,
		dialTimeout: cfg.DialTimeout,
		recvq:       make(chan frame, cfg.QueueDepth),
		ctx:         ctx,
		cancel:      cancel,
		closed:      make(chan struct{}),
		senders:     make([]*sender, n),
	}
	for i, addr := range cfg.Peers {
		if i != cfg.Self {
			t.senders[i] = &sender{addr: addr}
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// NumEndpoints returns the cluster size.
func (t *Transport) NumEndpoints() int { return len(t.peers) }

// Local returns the single endpoint id this process serves.
func (t *Transport) Local() []int { return []int{t.self} }

// Endpoint returns endpoint i's handle; only the instance's own endpoint
// is local.
func (t *Transport) Endpoint(i int) transport.Endpoint {
	if i != t.self {
		panic(fmt.Sprintf("tcp: endpoint %d is not local (this instance serves endpoint %d)", i, t.self))
	}
	return t
}

// ID returns the endpoint's index.
func (t *Transport) ID() int { return t.self }

// Addr returns the listener's actual address (useful when the peer list
// was built from ephemeral ports).
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Totals returns this endpoint's send counters. Loopback sends are free,
// matching the simulated interconnect's accounting.
func (t *Transport) Totals() transport.Stats {
	return transport.Stats{
		Messages: t.msgs.Load(),
		Frames:   t.frames.Load(),
		Batches:  t.batches.Load(),
		Bytes:    t.bytes.Load(),
		RawBytes: t.rawBytes.Load(),
	}
}

// noteErr records a receive-side connection failure for Close to report:
// a peer dying mid-frame must surface, not vanish with the connection.
func (t *Transport) noteErr(err error) {
	select {
	case <-t.closed:
		// Teardown-induced read failures are expected.
		return
	default:
	}
	t.errMu.Lock()
	t.errs = append(t.errs, err)
	t.errMu.Unlock()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.connMu.Lock()
		select {
		case <-t.closed:
			t.connMu.Unlock()
			c.Close()
			return
		default:
		}
		t.accepted = append(t.accepted, c)
		t.connMu.Unlock()
		setNoDelay(c)
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

// serveConn demultiplexes one peer's send stream into the receive queue.
func (t *Transport) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	var hello [helloBytes]byte
	if _, err := io.ReadFull(c, hello[:]); err != nil {
		t.noteErr(fmt.Errorf("tcp: endpoint %d: reading stream hello: %w", t.self, err))
		return
	}
	if magic := binary.LittleEndian.Uint32(hello[0:]); magic != helloMagic {
		t.noteErr(fmt.Errorf("tcp: endpoint %d: connection from non-peer (magic %#x)", t.self, magic))
		return
	}
	if size := int(binary.LittleEndian.Uint32(hello[4:])); size != len(t.peers) {
		t.noteErr(fmt.Errorf("tcp: endpoint %d: peer configured for cluster size %d, ours is %d", t.self, size, len(t.peers)))
		return
	}
	src := int(binary.LittleEndian.Uint32(hello[8:]))
	if src < 0 || src >= len(t.peers) || src == t.self {
		t.noteErr(fmt.Errorf("tcp: endpoint %d: stream claims invalid source %d", t.self, src))
		return
	}
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenbuf[:]); err != nil {
			if err != io.EOF {
				t.noteErr(fmt.Errorf("tcp: endpoint %d: stream from %d: %w", t.self, src, err))
			}
			return
		}
		size := binary.LittleEndian.Uint32(lenbuf[:])
		if size > MaxFrameBytes {
			t.noteErr(fmt.Errorf("tcp: endpoint %d: stream from %d: frame of %d bytes exceeds limit %d", t.self, src, size, MaxFrameBytes))
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(c, payload); err != nil {
			t.noteErr(fmt.Errorf("tcp: endpoint %d: stream from %d truncated mid-frame: %w", t.self, src, err))
			return
		}
		select {
		case t.recvq <- frame{src: src, payload: payload}:
		case <-t.closed:
			return
		}
	}
}

// setNoDelay disables Nagle's algorithm: the runtime's traffic is
// request/response chains of small frames, exactly the pattern where
// Nagle and delayed ACKs conspire into 40ms stalls per exchange (the SC
// engine's ownership ping-pong slows by orders of magnitude without
// this).
func setNoDelay(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// dial reaches addr, retrying connection-refused until the dial budget
// expires: peers of a cluster start in arbitrary order, so the first
// send to a peer may race its listener coming up.
func (t *Transport) dial(addr string) (net.Conn, error) {
	deadline := time.Now().Add(t.dialTimeout)
	d := net.Dialer{Timeout: time.Second}
	var lastErr error
	for {
		select {
		case <-t.closed:
			return nil, transport.ErrClosed
		default:
		}
		c, err := d.DialContext(t.ctx, "tcp", addr)
		if err == nil {
			setNoDelay(c)
			return c, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, lastErr
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// poison records a send failure on s and makes it sticky (see sender).
// Failures racing our own shutdown report plain closure instead. Caller
// holds s.mu.
func (t *Transport) poison(s *sender, err error) error {
	select {
	case <-t.closed:
		return transport.ErrClosed
	default:
	}
	s.broken = err
	return err
}

// connLocked returns the sender's live stream, dialing the peer and
// writing the hello on first use. Caller holds s.mu.
func (t *Transport) connLocked(s *sender, dst int) (net.Conn, error) {
	if s.conn != nil {
		return s.conn, nil
	}
	c, err := t.dial(s.addr)
	if err != nil {
		return nil, t.poison(s, fmt.Errorf("tcp: endpoint %d: dial peer %d (%s): %w", t.self, dst, s.addr, err))
	}
	var hello [helloBytes]byte
	binary.LittleEndian.PutUint32(hello[0:], helloMagic)
	binary.LittleEndian.PutUint32(hello[4:], uint32(len(t.peers)))
	binary.LittleEndian.PutUint32(hello[8:], uint32(t.self))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return nil, t.poison(s, fmt.Errorf("tcp: endpoint %d: hello to peer %d: %w", t.self, dst, err))
	}
	s.conn = c
	return c, nil
}

// writeFrame sends one length-prefixed frame — the payload buffers, in
// order — as a single vectored write: the mutex keeps another
// goroutine's frame from interleaving, writev keeps it one syscall, and
// nothing is copied. Caller holds s.mu; size is the total payload
// length.
func (t *Transport) writeFrame(s *sender, dst int, size int, payload ...[]byte) error {
	c, err := t.connLocked(s, dst)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(s.prefix[:], uint32(size))
	s.bufs = append(s.bufs[:0], s.prefix[:])
	s.bufs = append(s.bufs, payload...)
	if _, err := s.bufs.WriteTo(c); err != nil {
		c.Close()
		s.conn = nil
		return t.poison(s, fmt.Errorf("tcp: endpoint %d: send to peer %d: %w", t.self, dst, err))
	}
	return nil
}

// Send delivers payload to endpoint dst over the per-peer stream,
// dialing it on first use. Loopback delivery bypasses the socket and
// counts no traffic. Ownership of payload transfers to the transport
// (the loopback path enqueues the buffer itself).
func (t *Transport) Send(dst int, payload []byte) error {
	if dst < 0 || dst >= len(t.peers) {
		return fmt.Errorf("tcp: destination %d outside [0,%d)", dst, len(t.peers))
	}
	select {
	case <-t.closed:
		return transport.ErrClosed
	default:
	}
	if dst == t.self {
		select {
		case t.recvq <- frame{src: t.self, payload: payload}:
			return nil
		case <-t.closed:
			return transport.ErrClosed
		}
	}
	s := t.senders[dst]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if err := t.writeFrame(s, dst, len(payload), payload); err != nil {
		return err
	}
	t.msgs.Add(1)
	t.frames.Add(1)
	t.bytes.Add(int64(len(payload)))
	t.rawBytes.Add(int64(len(payload)))
	return nil
}

// SendBatch delivers a batch — frames[0] the caller's batch header, each
// later element one logical message — as ONE length-prefixed stream
// frame in one writev syscall; the peer receives the concatenation as a
// single payload. The frame buffers are borrowed (written before
// return), unlike Send's owned payload. Loopback concatenates into one
// queued payload and counts no traffic.
func (t *Transport) SendBatch(dst int, frames net.Buffers) error {
	if dst < 0 || dst >= len(t.peers) {
		return fmt.Errorf("tcp: destination %d outside [0,%d)", dst, len(t.peers))
	}
	if len(frames) < 2 {
		return fmt.Errorf("tcp: batch of %d buffers (need header plus messages)", len(frames))
	}
	select {
	case <-t.closed:
		return transport.ErrClosed
	default:
	}
	total := 0
	for _, f := range frames {
		total += len(f)
	}
	if dst == t.self {
		payload := make([]byte, 0, total)
		for _, f := range frames {
			payload = append(payload, f...)
		}
		select {
		case t.recvq <- frame{src: t.self, payload: payload}:
			return nil
		case <-t.closed:
			return transport.ErrClosed
		}
	}
	s := t.senders[dst]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if err := t.writeFrame(s, dst, total, frames...); err != nil {
		return err
	}
	t.msgs.Add(int64(len(frames) - 1))
	t.frames.Add(1)
	t.batches.Add(1)
	t.bytes.Add(int64(total))
	t.rawBytes.Add(int64(total))
	return nil
}

var _ transport.BatchSender = (*Transport)(nil)

// SendCompressed delivers one compressed frame carrying msgs logical
// messages whose pre-compression encoding was rawBytes long, as a
// single length-prefixed stream frame. The wire byte counter sees the
// compressed length; RawBytes records the logical size. Ownership of
// payload transfers like Send. Loopback enqueues the buffer itself and
// counts no traffic.
func (t *Transport) SendCompressed(dst, msgs, rawBytes int, payload []byte) error {
	if dst < 0 || dst >= len(t.peers) {
		return fmt.Errorf("tcp: destination %d outside [0,%d)", dst, len(t.peers))
	}
	select {
	case <-t.closed:
		return transport.ErrClosed
	default:
	}
	if dst == t.self {
		select {
		case t.recvq <- frame{src: t.self, payload: payload}:
			return nil
		case <-t.closed:
			return transport.ErrClosed
		}
	}
	s := t.senders[dst]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if err := t.writeFrame(s, dst, len(payload), payload); err != nil {
		return err
	}
	t.msgs.Add(int64(msgs))
	t.frames.Add(1)
	if msgs > 1 {
		t.batches.Add(1)
	}
	t.bytes.Add(int64(len(payload)))
	t.rawBytes.Add(int64(rawBytes))
	return nil
}

var _ transport.CompressedSender = (*Transport)(nil)

// Recv blocks until a payload arrives for this endpoint or the transport
// closes (ok=false), draining frames already delivered first.
func (t *Transport) Recv() (src int, payload []byte, ok bool) {
	select {
	case f := <-t.recvq:
		return f.src, f.payload, true
	case <-t.closed:
		select {
		case f := <-t.recvq:
			return f.src, f.payload, true
		default:
			return 0, nil, false
		}
	}
}

// Close shuts the endpoint down: the listener and every connection are
// closed, pending Recvs drain and return ok=false, and any teardown or
// accumulated receive-side error is returned. Idempotent.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.cancel()
		var errs []error
		if err := t.ln.Close(); err != nil {
			errs = append(errs, fmt.Errorf("tcp: endpoint %d: closing listener: %w", t.self, err))
		}
		for i, s := range t.senders {
			if s == nil {
				continue
			}
			s.mu.Lock()
			if s.conn != nil {
				if err := s.conn.Close(); err != nil {
					errs = append(errs, fmt.Errorf("tcp: endpoint %d: closing stream to peer %d: %w", t.self, i, err))
				}
				s.conn = nil
			}
			s.mu.Unlock()
		}
		t.connMu.Lock()
		for _, c := range t.accepted {
			c.Close() // unblocks serveConn readers; teardown errors expected
		}
		t.connMu.Unlock()
		t.wg.Wait()
		t.errMu.Lock()
		errs = append(errs, t.errs...)
		t.errMu.Unlock()
		t.closeErr = errors.Join(errs...)
	})
	return t.closeErr
}

// NewLoopbackCluster starts a full n-endpoint cluster in this process,
// one Transport per endpoint, listening on ephemeral 127.0.0.1 ports —
// the multi-listener harness the cross-transport differential tests and
// benchmarks drive the DSM over. Callers own each transport's lifecycle
// (normally one dsm.System per transport closes it).
func NewLoopbackCluster(n int) ([]*Transport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tcp: cluster size %d must be positive", n)
	}
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	fail := func(err error) ([]*Transport, error) {
		for _, ln := range listeners {
			if ln != nil {
				ln.Close()
			}
		}
		return nil, err
	}
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("tcp: loopback listener %d: %w", i, err))
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	ts := make([]*Transport, n)
	for i := range ts {
		tr, err := New(Config{Self: i, Peers: peers, Listener: listeners[i]})
		if err != nil {
			for _, prev := range ts[:i] {
				prev.Close()
			}
			for _, ln := range listeners[i:] {
				ln.Close()
			}
			return nil, err
		}
		listeners[i] = nil // owned by the transport now
		ts[i] = tr
	}
	return ts, nil
}
