package tcp

import (
	"encoding/binary"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

func cluster(t *testing.T, n int) []*Transport {
	t.Helper()
	ts, err := NewLoopbackCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, tr := range ts {
			tr.Close()
		}
	})
	return ts
}

func TestSendRecv(t *testing.T) {
	ts := cluster(t, 2)
	if err := ts[0].Send(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	src, payload, ok := ts[1].Recv()
	if !ok || src != 0 || string(payload) != "hello" {
		t.Fatalf("Recv = %d %q %v", src, payload, ok)
	}
	// And the reverse direction, over a fresh dial.
	if err := ts[1].Send(0, []byte("back")); err != nil {
		t.Fatal(err)
	}
	src, payload, ok = ts[0].Recv()
	if !ok || src != 1 || string(payload) != "back" {
		t.Fatalf("Recv = %d %q %v", src, payload, ok)
	}
}

func TestTransportShape(t *testing.T) {
	ts := cluster(t, 3)
	for i, tr := range ts {
		if tr.NumEndpoints() != 3 {
			t.Errorf("NumEndpoints = %d", tr.NumEndpoints())
		}
		if local := tr.Local(); len(local) != 1 || local[0] != i {
			t.Errorf("instance %d Local = %v", i, local)
		}
		if tr.Endpoint(i).ID() != i {
			t.Errorf("instance %d wrong endpoint id", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("remote endpoint handle handed out")
		}
	}()
	ts[0].Endpoint(1)
}

func TestFIFOPerSender(t *testing.T) {
	ts := cluster(t, 2)
	const msgs = 500
	for i := 0; i < msgs; i++ {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(i))
		if err := ts[0].Send(1, b[:]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		src, payload, ok := ts[1].Recv()
		if !ok || src != 0 {
			t.Fatalf("frame %d: src %d ok %v", i, src, ok)
		}
		if got := binary.LittleEndian.Uint32(payload); got != uint32(i) {
			t.Fatalf("frame %d arrived as %d: FIFO violated", i, got)
		}
	}
}

func TestConcurrentSendersManyPeers(t *testing.T) {
	ts := cluster(t, 4)
	const per = 200
	var wg sync.WaitGroup
	for src := 1; src < 4; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ts[src].Send(0, []byte{byte(src), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}
	recvd := make(map[byte]int)
	for i := 0; i < 3*per; i++ {
		src, payload, ok := ts[0].Recv()
		if !ok {
			t.Fatal("Recv failed mid-stream")
		}
		if int(payload[0]) != src {
			t.Fatalf("frame source %d arrived on stream from %d", payload[0], src)
		}
		if int(payload[1]) != recvd[payload[0]] {
			t.Fatalf("per-sender order violated: src %d got %d want %d",
				payload[0], payload[1], recvd[payload[0]])
		}
		recvd[payload[0]]++
	}
	wg.Wait()
}

func TestLoopbackIsFree(t *testing.T) {
	ts := cluster(t, 2)
	if err := ts[0].Send(0, []byte("self")); err != nil {
		t.Fatal(err)
	}
	if tot := ts[0].Totals(); tot.Messages != 0 {
		t.Fatalf("loopback counted: %+v", tot)
	}
	if src, payload, ok := ts[0].Recv(); !ok || src != 0 || string(payload) != "self" {
		t.Fatal("loopback frame lost")
	}
}

func TestAccounting(t *testing.T) {
	ts := cluster(t, 2)
	if err := ts[0].Send(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := ts[0].Send(1, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if tot := ts[0].Totals(); tot.Messages != 2 || tot.Bytes != 150 {
		t.Fatalf("sender totals = %+v", tot)
	}
	if tot := ts[1].Totals(); tot.Messages != 0 {
		t.Fatalf("receiver counted sends: %+v", tot)
	}
}

func TestCloseUnblocksRecvAndFailsSend(t *testing.T) {
	ts := cluster(t, 2)
	done := make(chan bool)
	go func() {
		_, _, ok := ts[0].Recv()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ts[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned a frame after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
	if err := ts[0].Send(1, nil); err != transport.ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	if err := ts[0].Close(); err != nil {
		t.Fatalf("second Close changed its answer: %v", err)
	}
}

// TestDeadPeerSurfacesOnSend: sending to a peer that is gone (listener
// closed, no retry window left) fails with a descriptive error rather
// than hanging.
func TestDeadPeerSurfacesOnSend(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	ts, err := New(Config{
		Self:        0,
		Peers:       []string{"127.0.0.1:0", deadAddr},
		Listener:    mustListen(t),
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	err = ts.Send(1, []byte("x"))
	if err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if !strings.Contains(err.Error(), "dial peer 1") {
		t.Errorf("error %v does not name the dead peer", err)
	}
	// The sender is poisoned: the failing frame is gone, so re-dialing
	// would deliver later frames after a gap (a FIFO violation). The
	// same error must come back immediately, with no new dial budget.
	start := time.Now()
	if err2 := ts.Send(1, []byte("y")); err2 != err {
		t.Errorf("second send = %v, want the sticky failure %v", err2, err)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("poisoned send took %v, want immediate failure", elapsed)
	}
}

// TestPeerDeathMidStreamSurfacesOnClose: a peer that dies after
// handshaking leaves a truncated stream; the receiver's Close must
// report it (the error path System.Close folds into its result).
func TestPeerDeathMidStreamSurfacesOnClose(t *testing.T) {
	ts, err := New(Config{Self: 0, Peers: []string{"127.0.0.1:0", "unused:1"}, Listener: mustListen(t)})
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hello [helloBytes]byte
	binary.LittleEndian.PutUint32(hello[0:], helloMagic)
	binary.LittleEndian.PutUint32(hello[4:], 2)
	binary.LittleEndian.PutUint32(hello[8:], 1)
	if _, err := c.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	var frame [6]byte
	// Announce an 8-byte frame but deliver only 2 bytes, then die.
	binary.LittleEndian.PutUint32(frame[0:], 8)
	frame[4], frame[5] = 0xde, 0xad
	if _, err := c.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Give the serve goroutine a moment to hit the truncated read.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ts.errMu.Lock()
		n := len(ts.errs)
		ts.errMu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	err = ts.Close()
	if err == nil || !strings.Contains(err.Error(), "truncated mid-frame") {
		t.Fatalf("Close = %v, want truncated-stream error", err)
	}
}

// TestHostileStreamsRejected: non-peer magic, wrong cluster size, bogus
// source ids and oversized length prefixes all drop the connection and
// are reported at Close.
func TestHostileStreamsRejected(t *testing.T) {
	cases := []struct {
		name  string
		hello func() []byte
		frame []byte
		want  string
	}{
		{"bad magic", func() []byte {
			h := validHello(2, 1)
			binary.LittleEndian.PutUint32(h[0:], 0xbadc0de)
			return h
		}, nil, "non-peer"},
		{"wrong cluster size", func() []byte { return validHello(9, 1) }, nil, "cluster size 9"},
		{"source out of range", func() []byte { return validHello(2, 7) }, nil, "invalid source"},
		{"source claims self", func() []byte { return validHello(2, 0) }, nil, "invalid source"},
		{"oversized frame", func() []byte { return validHello(2, 1) },
			binary.LittleEndian.AppendUint32(nil, MaxFrameBytes+1), "exceeds limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, err := New(Config{Self: 0, Peers: []string{"127.0.0.1:0", "unused:1"}, Listener: mustListen(t)})
			if err != nil {
				t.Fatal(err)
			}
			c, err := net.Dial("tcp", ts.Addr())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Write(tc.hello()); err != nil {
				t.Fatal(err)
			}
			if tc.frame != nil {
				if _, err := c.Write(tc.frame); err != nil {
					t.Fatal(err)
				}
			}
			// The transport closes the hostile connection; observe EOF.
			c.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := c.Read(make([]byte, 1)); err == nil {
				t.Error("hostile connection not dropped")
			}
			c.Close()
			err = ts.Close()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Close = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: 0, Peers: nil}); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := New(Config{Self: 3, Peers: []string{"a:1", "b:2"}}); err == nil {
		t.Error("out-of-range self accepted")
	}
	if _, err := New(Config{Self: 0, Peers: []string{"127.0.0.1:0", ""}}); err == nil {
		t.Error("empty peer address accepted")
	}
}

func validHello(size, src uint32) []byte {
	h := make([]byte, helloBytes)
	binary.LittleEndian.PutUint32(h[0:], helloMagic)
	binary.LittleEndian.PutUint32(h[4:], size)
	binary.LittleEndian.PutUint32(h[8:], src)
	return h
}

func mustListen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// TestSendBatchOneFrame: a batch goes out as ONE length-prefixed stream
// frame (the peer receives the concatenation as a single payload), is
// accounted as its message count in one frame, and interleaves in FIFO
// order with plain sends on the same stream. The frame buffers are only
// borrowed: reusing them after SendBatch must not corrupt the stream.
func TestSendBatchOneFrame(t *testing.T) {
	ts := cluster(t, 2)
	hdr := []byte("HH")
	m1 := []byte("first-message")
	m2 := []byte("second")
	if err := ts[0].Send(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := ts[0].SendBatch(1, [][]byte{hdr, m1, m2}); err != nil {
		t.Fatal(err)
	}
	// Borrowed buffers: scribble over them after the call returns.
	hdr[0], m1[0], m2[0] = 'x', 'x', 'x'
	if err := ts[0].Send(1, []byte("after")); err != nil {
		t.Fatal(err)
	}

	if _, p, ok := ts[1].Recv(); !ok || string(p) != "before" {
		t.Fatalf("first frame = %q ok=%v", p, ok)
	}
	_, p, ok := ts[1].Recv()
	if !ok || string(p) != "HHfirst-messagesecond" {
		t.Fatalf("batch frame = %q ok=%v, want concatenation in one payload", p, ok)
	}
	if _, p, ok := ts[1].Recv(); !ok || string(p) != "after" {
		t.Fatalf("frame after batch = %q ok=%v", p, ok)
	}

	tot := ts[0].Totals()
	want := transport.Stats{
		Messages: 2 + 2, Frames: 3, Batches: 1,
		Bytes:    int64(len("before") + len("after") + len("HHfirst-messagesecond")),
		RawBytes: int64(len("before") + len("after") + len("HHfirst-messagesecond")),
	}
	if tot != want {
		t.Fatalf("totals = %+v, want %+v", tot, want)
	}

	// Loopback batches are free and still deliver one concatenated hop.
	if err := ts[1].SendBatch(1, [][]byte{[]byte("A"), []byte("B"), []byte("C")}); err != nil {
		t.Fatal(err)
	}
	if tot := ts[1].Totals(); tot.Messages != 0 || tot.Batches != 0 {
		t.Fatalf("loopback batch counted: %+v", tot)
	}
	if _, p, ok := ts[1].Recv(); !ok || string(p) != "ABC" {
		t.Fatalf("loopback batch = %q ok=%v", p, ok)
	}
}
