package vc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewStartsAtMinusOne(t *testing.T) {
	v := New(4)
	if v.Len() != 4 {
		t.Fatalf("Len = %d, want 4", v.Len())
	}
	for i, x := range v {
		if x != -1 {
			t.Errorf("entry %d = %d, want -1", i, x)
		}
	}
}

func TestTick(t *testing.T) {
	v := New(3)
	if got := v.Tick(1); got != 0 {
		t.Fatalf("first Tick = %d, want 0", got)
	}
	if got := v.Tick(1); got != 1 {
		t.Fatalf("second Tick = %d, want 1", got)
	}
	if v[0] != -1 || v[2] != -1 {
		t.Errorf("Tick(1) disturbed other entries: %v", v)
	}
}

func TestCovers(t *testing.T) {
	v := VC{2, -1, 0}
	cases := []struct {
		p    int
		idx  int32
		want bool
	}{
		{0, 0, true}, {0, 2, true}, {0, 3, false},
		{1, 0, false},
		{2, 0, true}, {2, 1, false},
	}
	for _, c := range cases {
		if got := v.Covers(c.p, c.idx); got != c.want {
			t.Errorf("Covers(%d, %d) = %v, want %v", c.p, c.idx, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b VC
		want Ordering
	}{
		{VC{0, 0}, VC{0, 0}, Equal},
		{VC{0, 0}, VC{1, 0}, Before},
		{VC{2, 3}, VC{1, 3}, After},
		{VC{1, 0}, VC{0, 1}, Concurrent},
		{VC{-1, -1}, VC{0, -1}, Before},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDominates(t *testing.T) {
	if !(VC{1, 2}).Dominates(VC{1, 2}) {
		t.Error("a clock must dominate itself")
	}
	if !(VC{2, 2}).Dominates(VC{1, 2}) {
		t.Error("{2,2} must dominate {1,2}")
	}
	if (VC{2, 1}).Dominates(VC{1, 2}) {
		t.Error("{2,1} must not dominate {1,2}")
	}
}

func TestMax(t *testing.T) {
	a := VC{1, 5, -1}
	b := VC{3, 2, -1}
	a.Max(b)
	if !reflect.DeepEqual(a, VC{3, 5, -1}) {
		t.Errorf("Max = %v, want {3,5,-1}", a)
	}
	if !reflect.DeepEqual(b, VC{3, 2, -1}) {
		t.Errorf("Max mutated its argument: %v", b)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := VC{1, 2}
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("mutating a clone changed the original")
	}
}

func TestMismatchedSizesPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dominates": func() { VC{1}.Dominates(VC{1, 2}) },
		"Compare":   func() { VC{1}.Compare(VC{1, 2}) },
		"Max":       func() { VC{1}.Max(VC{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on mismatched sizes did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStringAndWireSize(t *testing.T) {
	v := VC{0, -1, 7}
	if got := v.String(); got != "<0,-1,7>" {
		t.Errorf("String = %q", got)
	}
	if got := v.WireSize(); got != 12 {
		t.Errorf("WireSize = %d, want 12", got)
	}
	if got := Concurrent.String(); got != "concurrent" {
		t.Errorf("Ordering.String = %q", got)
	}
	if got := Ordering(42).String(); got != "Ordering(42)" {
		t.Errorf("Ordering.String = %q", got)
	}
}

// randVC generates a random clock of fixed size for property tests.
func randVC(r *rand.Rand, n int) VC {
	v := make(VC, n)
	for i := range v {
		v[i] = int32(r.Intn(8)) - 1
	}
	return v
}

func TestPropMaxDominatesBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r, 6), randVC(r, 6)
		m := a.Clone().Max(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMaxIsLeastUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r, 5), randVC(r, 5)
		m := a.Clone().Max(b)
		// Any clock dominating both a and b dominates m.
		u := randVC(r, 5)
		if u.Dominates(a) && u.Dominates(b) && !u.Dominates(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r, 4), randVC(r, 4)
		ab, ba := a.Compare(b), b.Compare(a)
		switch ab {
		case Equal:
			return ba == Equal
		case Before:
			return ba == After
		case After:
			return ba == Before
		case Concurrent:
			return ba == Concurrent
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropDominatesIffBeforeOrEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVC(r, 4), randVC(r, 4)
		ord := a.Compare(b)
		return a.Dominates(b) == (ord == After || ord == Equal)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMaxCommutativeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randVC(r, 5), randVC(r, 5), randVC(r, 5)
		ab := a.Clone().Max(b)
		ba := b.Clone().Max(a)
		if !reflect.DeepEqual(ab, ba) {
			return false
		}
		abc1 := a.Clone().Max(b).Max(c)
		abc2 := a.Clone().Max(b.Clone().Max(c))
		return reflect.DeepEqual(abc1, abc2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
