// Package vc implements the vector timestamps that order intervals under
// the happened-before-1 partial order of Adve & Hill, as used by lazy
// release consistency (paper §4.1–4.2).
//
// A vector clock V held by processor p has one entry per processor; V[q]
// is the index of the most recent interval of processor q that has
// performed at p (and V[p] is p's own current interval index).
package vc

import (
	"fmt"
	"strings"
)

// VC is a vector clock with one int32 entry per processor. The zero-length
// VC is valid and compares as dominated-by-everything of its size class;
// clocks of different lengths must never be mixed.
type VC []int32

// New returns a zero vector clock for n processors. All entries start at
// -1, meaning "no interval of that processor has performed here yet";
// interval indices are numbered from 0.
func New(n int) VC {
	v := make(VC, n)
	for i := range v {
		v[i] = -1
	}
	return v
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Len returns the number of processors covered by the clock.
func (v VC) Len() int { return len(v) }

// Covers reports whether v already includes interval idx of processor p,
// i.e. whether that interval has performed at the clock's holder.
func (v VC) Covers(p int, idx int32) bool {
	return int(v[p]) >= int(idx)
}

// Dominates reports whether v >= o entrywise. A clock dominates itself.
func (v VC) Dominates(o VC) bool {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vc: comparing clocks of different sizes %d and %d", len(v), len(o)))
	}
	for i := range v {
		if v[i] < o[i] {
			return false
		}
	}
	return true
}

// Ordering is the result of comparing two vector clocks.
type Ordering int

const (
	// Equal means the clocks are identical.
	Equal Ordering = iota
	// Before means the receiver happened-before the argument (strictly
	// dominated by it).
	Before
	// After means the argument happened-before the receiver.
	After
	// Concurrent means neither dominates the other.
	Concurrent
)

// String returns a readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// Compare classifies the relationship between v and o under hb1.
func (v VC) Compare(o VC) Ordering {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vc: comparing clocks of different sizes %d and %d", len(v), len(o)))
	}
	less, greater := false, false
	for i := range v {
		switch {
		case v[i] < o[i]:
			less = true
		case v[i] > o[i]:
			greater = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Max merges o into v in place, taking the entrywise maximum. It returns v
// for chaining.
func (v VC) Max(o VC) VC {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vc: merging clocks of different sizes %d and %d", len(v), len(o)))
	}
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Tick advances processor p's own entry by one and returns the new
// interval index.
func (v VC) Tick(p int) int32 {
	v[p]++
	return v[p]
}

// String renders the clock as "<v0,v1,...>".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte('>')
	return b.String()
}

// WireSize returns the number of bytes the clock occupies in a message
// (4 bytes per entry); used by the message size model.
func (v VC) WireSize() int { return 4 * len(v) }
