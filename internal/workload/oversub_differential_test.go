package workload

import (
	"bytes"
	"testing"

	"repro/internal/dsm"
)

// Oversubscribed differential harness: the same SPLASH programs run
// with GoroutinesPerNode > 1 — several logical processors multiplexed
// onto each DSM node as genuinely concurrent goroutines — under every
// consistency protocol, and the final images must stay byte-identical
// to the sequential reference. This is the acceptance proof for the
// concurrent node core: the striped page state, the per-page shard
// queues and the two-level lock/barrier machinery must preserve every
// protocol's guarantees when N goroutines drive one node.

func oversubParams(t *testing.T) (procs, gpn int, scale float64, pageSize int) {
	t.Helper()
	if testing.Short() {
		return 4, 2, 0.05, 1024
	}
	return 8, 4, 0.1, 1024
}

func TestWorkloadsOnRuntimeOversubscribed(t *testing.T) {
	procs, gpn, scale, pageSize := oversubParams(t)
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref, err := ExecuteCached(name, procs, scale, diffSeed)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range dsm.Modes {
				prog, err := New(name, procs, scale, diffSeed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunOnRuntime(prog, RuntimeConfig{
					PageSize:          pageSize,
					Mode:              mode,
					GoroutinesPerNode: gpn,
				})
				if err != nil {
					t.Fatalf("%s/gpn=%d: %v", mode, gpn, err)
				}
				if !bytes.Equal(res.Image, ref.Image) {
					t.Errorf("%s/gpn=%d: runtime image diverges from reference (first diff at byte %d)",
						mode, gpn, firstDiff(res.Image, ref.Image))
				}
				if want := procs / gpn; len(res.Nodes) != want {
					t.Errorf("%s/gpn=%d: stats for %d nodes, want %d", mode, gpn, len(res.Nodes), want)
				}
			}
		})
	}
}

// TestWorkloadsOversubscribedOverTCP runs the oversubscribed shape over
// the real TCP transport: a loopback cluster of NumProcs/gpn listeners,
// every node driving gpn concurrent program goroutines, every protocol
// message crossing an actual socket.
func TestWorkloadsOversubscribedOverTCP(t *testing.T) {
	const procs, gpn, scale, pageSize = 4, 2, 0.05, 1024
	names := Names
	if testing.Short() {
		names = []string{"locusroute"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref, err := ExecuteCached(name, procs, scale, diffSeed)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range dsm.Modes {
				prog, err := New(name, procs, scale, diffSeed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := RunOnRuntime(prog, RuntimeConfig{
					PageSize:          pageSize,
					Mode:              mode,
					GoroutinesPerNode: gpn,
					Transports:        tcpTransports(t, procs/gpn),
				})
				if err != nil {
					t.Fatalf("%s/gpn=%d over tcp: %v", mode, gpn, err)
				}
				if !bytes.Equal(res.Image, ref.Image) {
					t.Errorf("%s/gpn=%d over tcp: image diverges from reference (first diff at byte %d)",
						mode, gpn, firstDiff(res.Image, ref.Image))
				}
			}
		})
	}
}

// TestOversubscribedSingleNode collapses the whole program onto one node
// (gpn = NumProcs): every synchronization operation resolves locally —
// lock handoffs, the two-level barrier with no cluster exchange — and
// the image must still match.
func TestOversubscribedSingleNode(t *testing.T) {
	const procs, scale = 4, 0.05
	ref, err := ExecuteCached("mp3d", procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range dsm.Modes {
		prog, err := New("mp3d", procs, scale, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOnRuntime(prog, RuntimeConfig{
			PageSize:          1024,
			Mode:              mode,
			GoroutinesPerNode: procs,
		})
		if err != nil {
			t.Fatalf("%s/gpn=%d: %v", mode, procs, err)
		}
		if !bytes.Equal(res.Image, ref.Image) {
			t.Errorf("%s/gpn=%d: single-node image diverges from reference", mode, procs)
		}
	}
}

// TestOversubscribedRejectsBadShape: a goroutine count that does not
// divide the processor count is a configuration error, not a hang.
func TestOversubscribedRejectsBadShape(t *testing.T) {
	prog, err := New("water", 8, 0.05, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOnRuntime(prog, RuntimeConfig{GoroutinesPerNode: 3}); err == nil {
		t.Fatal("gpn=3 over 8 processors accepted")
	}
	if _, err := RunOnRuntime(prog, RuntimeConfig{GoroutinesPerNode: -1}); err == nil {
		t.Fatal("negative gpn accepted")
	}
}
