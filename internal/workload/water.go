package workload

import (
	"math/rand"

	"repro/internal/mem"
)

// Water models the SPLASH N-body molecular dynamics simulation (paper
// §5.2.4): barrier-separated timesteps; each molecule's force is computed
// from neighbors within a spherical cutoff (reads of other processors'
// molecule positions), inter-molecule force contributions are accumulated
// under per-molecule locks, and a global running sum is lock-protected.
// Of the five programs it communicates least: positions are stable within
// a step, and most writes are to a processor's own molecules. Lazy
// protocols' data advantage here comes from moving diffs instead of whole
// pages on read misses (§5.2.4).
type Water struct {
	Procs     int
	Molecules int
	Steps     int
	Window    int // half-width of the cutoff neighborhood, in molecules
	MolLocks  int
	Seed      int64

	positions Region // Molecules x 24 bytes
	forces    Region // Molecules x 24 bytes
	velo      Region // Molecules x 24 bytes, only owner-written
	sum       Region // global running sum
	space     mem.Addr
}

// NewWater returns the workload at the given scale (scales molecules and
// steps).
func NewWater(procs int, scale float64, seed int64) *Water {
	w := &Water{
		Procs:     procs,
		Molecules: int(512 * scale),
		Steps:     3,
		Window:    5,
		MolLocks:  32,
		Seed:      seed,
	}
	// The original's per-molecule record is large (positions and five
	// higher-order derivatives, ~680 bytes); 256-byte strides keep the
	// number of molecules sharing even a 512-byte page small, which is
	// what bounds the concurrent-last-modifier sets on the lock-updated
	// force array.
	var s Space
	w.positions = s.AllocArray(w.Molecules, 256)
	w.forces = s.AllocArray(w.Molecules, 256)
	w.velo = s.AllocArray(w.Molecules, 256)
	w.sum = s.AllocArray(1, 8)
	w.space = s.Used()
	return w
}

// Name implements Program.
func (w *Water) Name() string { return "water" }

// Config implements Program.
func (w *Water) Config() Config {
	return Config{
		NumProcs:    w.Procs,
		SpaceSize:   w.space,
		NumLocks:    1 + w.MolLocks,
		NumBarriers: 2,
	}
}

const waSumLock = 0

func (w *Water) molLock(i int) int { return 1 + i%w.MolLocks }

// Proc implements Program.
func (w *Water) Proc(c Ctx) {
	p := c.Proc()
	rng := rand.New(rand.NewSource(splitRNG(w.Seed, int64(p))))

	perProc := (w.Molecules + w.Procs - 1) / w.Procs
	lo := p * perProc
	hi := lo + perProc
	if hi > w.Molecules {
		hi = w.Molecules
	}

	// Partitioned initialization and the fork barrier.
	for i := lo; i < hi; i++ {
		c.Write(w.positions.Elem(i, 256), 24)
		c.Write(w.forces.Elem(i, 256), 24)
		c.Write(w.velo.Elem(i, 256), 24)
	}
	if p == 0 {
		c.Write(w.sum.At(0), 8)
	}
	c.Barrier(0)

	for step := 0; step < w.Steps; step++ {
		// Force phase: for each owned molecule, read neighbors within the
		// cutoff window; roughly half the pairs interact, adding a
		// lock-protected contribution to the neighbor's force sum.
		for i := lo; i < hi; i++ {
			c.Read(w.positions.Elem(i, 256), 24)
			for d := 1; d <= w.Window; d++ {
				j := (i + d) % w.Molecules
				c.Read(w.positions.Elem(j, 256), 24)
				if rng.Intn(2) == 0 {
					c.Acquire(w.molLock(j))
					c.Update(w.forces.Elem(j, 256), 24)
					c.Release(w.molLock(j))
				}
			}
			// The owner's own contribution takes the molecule lock too (as
			// the original does): neighbors may be accumulating into the
			// same force record concurrently.
			c.Acquire(w.molLock(i))
			c.Update(w.forces.Elem(i, 256), 24)
			c.Release(w.molLock(i))
		}
		c.Barrier(1)
		// Update phase: integrate owned molecules and fold the local
		// potential into the global running sum.
		for i := lo; i < hi; i++ {
			c.Read(w.forces.Elem(i, 256), 24)
			c.Write(w.positions.Elem(i, 256), 24)
			c.Write(w.velo.Elem(i, 256), 24)
		}
		c.Acquire(waSumLock)
		c.Update(w.sum.At(0), 8)
		c.Release(waSumLock)
		c.Barrier(1)
	}
}
