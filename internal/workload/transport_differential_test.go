package workload

import (
	"bytes"
	"testing"

	"repro/internal/dsm"
	"repro/internal/transport/tcp"
)

// Cross-transport differential harness: the same SPLASH programs that
// run over the in-process interconnect (differential_test.go) run over
// the real TCP transport — a full loopback cluster, one listener and one
// dsm.System per node, every message crossing an actual socket — and
// must still produce final images byte-identical to the sequential
// reference under every consistency protocol. This is the acceptance
// proof that the protocol engines never depended on the simulated
// network's specifics.

// tcpTransports builds a loopback cluster and hands it to RunOnRuntime.
func tcpTransports(t *testing.T, procs int) []dsm.Transport {
	t.Helper()
	cluster, err := tcp.NewLoopbackCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	// The dsm.Systems own and close the transports; nothing to clean up
	// here beyond what RunOnRuntime already does.
	trs := make([]dsm.Transport, len(cluster))
	for i, tr := range cluster {
		trs[i] = tr
	}
	return trs
}

func runOverTCP(t *testing.T, name string, mode dsm.Mode, procs int, scale float64, pageSize int) {
	t.Helper()
	ref, err := ExecuteCached(name, procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := New(name, procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnRuntime(prog, RuntimeConfig{
		PageSize:   pageSize,
		Mode:       mode,
		Transports: tcpTransports(t, procs),
	})
	if err != nil {
		t.Fatalf("%s/%s over tcp: %v", name, mode, err)
	}
	if !bytes.Equal(res.Image, ref.Image) {
		t.Errorf("%s/%s over tcp: image diverges from sequential reference (first diff at byte %d)",
			name, mode, firstDiff(res.Image, ref.Image))
	}
	if res.Net.Messages == 0 {
		t.Errorf("%s/%s over tcp: no messages crossed the sockets", name, mode)
	}
}

// TestWorkloadsOverTCPTransport: all five protocols over real TCP
// streams on one workload — the acceptance matrix's second transport
// column — plus, for the miss-only protocols LI and SC, the full
// workload suite.
func TestWorkloadsOverTCPTransport(t *testing.T) {
	const procs, scale, pageSize = 4, 0.05, 1024
	for _, mode := range dsm.Modes {
		t.Run("locusroute/"+mode.String(), func(t *testing.T) {
			t.Parallel()
			runOverTCP(t, "locusroute", mode, procs, scale, pageSize)
		})
	}
	extra := Names
	if testing.Short() {
		extra = []string{"mp3d"}
	}
	for _, mode := range []dsm.Mode{dsm.LazyInvalidate, dsm.SeqConsistent} {
		for _, name := range extra {
			if name == "locusroute" {
				continue // covered above
			}
			mode, name := mode, name
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				runOverTCP(t, name, mode, procs, scale, pageSize)
			})
		}
	}
}

// TestTCPTransportWithGC exercises barrier-time garbage collection with
// its collective gcready/gcdone round crossing real sockets.
func TestTCPTransportWithGC(t *testing.T) {
	ref, err := ExecuteCached("mp3d", 4, 0.05, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := New("mp3d", 4, 0.05, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnRuntime(prog, RuntimeConfig{
		PageSize:        1024,
		Mode:            dsm.LazyUpdate,
		GCEveryBarriers: 2,
		Transports:      tcpTransports(t, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Image, ref.Image) {
		t.Error("image with GC over tcp diverges from reference")
	}
}
