package workload

import (
	"math/rand"

	"repro/internal/mem"
)

// Cholesky models the SPLASH sparse Cholesky factorization (paper §5.2.2):
// a lock-protected global task queue hands out supernodes; completing a
// column applies updates to a few later columns, arbitrated by per-column
// locks. No barriers are used (the original relies on fork/join ordering,
// modeled here by one initial barrier). Data motion is migratory, like
// LocusRoute, and lock-driven — the category where lazy protocols win most.
type Cholesky struct {
	Procs    int
	Cols     int
	ColBytes int // bytes of numeric data per column
	Fanout   int // columns updated per completed column
	ColLocks int
	Seed     int64

	queue  Region
	matrix Region
	space  mem.Addr
	// affected[j] lists the later columns column j updates (fixed sparse
	// structure, chosen at construction).
	affected [][]int
}

// NewCholesky returns the workload at the given scale (scales the number
// of columns).
func NewCholesky(procs int, scale float64, seed int64) *Cholesky {
	w := &Cholesky{
		Procs:    procs,
		Cols:     int(384 * scale),
		ColBytes: 1024,
		Fanout:   3,
		ColLocks: 32,
		Seed:     seed,
	}
	var s Space
	w.queue = s.AllocArray(1+w.Cols, 8)
	w.matrix = s.AllocArray(w.Cols, w.ColBytes)
	w.space = s.Used()
	rng := rand.New(rand.NewSource(splitRNG(seed, -1)))
	w.affected = make([][]int, w.Cols)
	for j := 0; j < w.Cols; j++ {
		n := 1 + rng.Intn(w.Fanout)
		for k := 0; k < n; k++ {
			if t := j + 1 + rng.Intn(16); t < w.Cols {
				w.affected[j] = append(w.affected[j], t)
			}
		}
	}
	return w
}

// Name implements Program.
func (w *Cholesky) Name() string { return "cholesky" }

// Config implements Program.
func (w *Cholesky) Config() Config {
	return Config{
		NumProcs:    w.Procs,
		SpaceSize:   w.space,
		NumLocks:    1 + w.ColLocks,
		NumBarriers: 1,
	}
}

const chQueueLock = 0

func (w *Cholesky) colLock(j int) int { return 1 + j%w.ColLocks }

// Proc implements Program.
func (w *Cholesky) Proc(c Ctx) {
	p := c.Proc()

	// Partitioned initialization of the matrix; processor 0 sets up the
	// queue. One barrier models the original's fork ordering.
	if p == 0 {
		c.WriteUint64(w.queue.At(0), 0)
	}
	colsPer := (w.Cols + w.Procs - 1) / w.Procs
	for j := p * colsPer; j < (p+1)*colsPer && j < w.Cols; j++ {
		for off := 0; off < w.ColBytes; off += 256 {
			c.Write(w.matrix.Elem(j, w.ColBytes)+mem.Addr(off), 256)
		}
	}
	c.Barrier(0)

	for {
		// Pop the next column task: a fetch-and-add on the shared cursor
		// under the queue lock. The column's work is entirely determined
		// by j (the sparse structure is fixed at construction), so the
		// final matrix image is independent of which processor pops it.
		c.Acquire(chQueueLock)
		j := int(c.FetchAddUint64(w.queue.At(0), 1))
		if j >= w.Cols {
			c.Release(chQueueLock)
			return
		}
		c.Release(chQueueLock)

		// Numeric factorization of column j: read it whole, write the
		// factored result back.
		colBase := w.matrix.Elem(j, w.ColBytes)
		for off := 0; off < w.ColBytes; off += 256 {
			c.Read(colBase+mem.Addr(off), 256)
		}
		for off := 0; off < w.ColBytes; off += 256 {
			c.Write(colBase+mem.Addr(off), 256)
		}

		// Supernodal updates to affected later columns, arbitrated by
		// per-column locks (simultaneous modifications of one column are
		// serialized, §5.2.2).
		for _, t := range w.affected[j] {
			tBase := w.matrix.Elem(t, w.ColBytes)
			c.Acquire(w.colLock(t))
			for off := 0; off < w.ColBytes/2; off += 256 {
				c.Read(tBase+mem.Addr(off), 256)
				c.Write(tBase+mem.Addr(off), 256)
			}
			c.Release(w.colLock(t))
		}
	}
}
