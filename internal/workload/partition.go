package workload

import (
	"math/rand"

	"repro/internal/mem"
)

// partitionSlabAlign keeps every processor's slab page-pure at any page
// size the runtime is configured with (the largest size the tests use).
const partitionSlabAlign = 4096

// Partition is the writer-dominant placement workload: each processor
// owns a contiguous slab of the shared space and sweeps it with writes
// every step, with a handful of lock-protected global counter updates
// per step for the critical-section denominator. No processor ever
// touches another's slab, so every slab page has exactly one (dominant)
// writer — but under the static block placement the slab's pages are
// homed round the whole cluster, and the eager protocols pay a
// flush-request/flush-done exchange with each dirty page's home at
// every release and barrier even though there is no other cacher to
// invalidate. Re-homing the slabs to their writers (first-touch
// placement, or home migration under any placement) turns that
// recurring exchange into free loopback — the workload exists to make
// that difference measurable, and is what the migration traffic gate
// runs on.
//
// The per-step sweep writes every other 64-byte chunk, so a 1KiB page
// sees 8 writes per step: enough for the home migrator
// (migrateMinWrites) while staying under the protocol classifier's
// adaptMinAccesses — on the gate's configuration the slabs migrate
// without being re-routed, isolating placement's contribution.
type Partition struct {
	Procs  int
	Chunks int // 64-byte chunks per processor slab
	Steps  int
	Seed   int64

	slabs    Region // Procs x Chunks x 64 bytes, slab i written only by processor i
	counters Region // global event counters, lock-protected
	space    mem.Addr
}

// NewPartition returns the workload at the given scale (scales the slab
// size).
func NewPartition(procs int, scale float64, seed int64) *Partition {
	slabBytes := int(32768 * scale)
	if slabBytes < 2*partitionSlabAlign {
		slabBytes = 2 * partitionSlabAlign
	}
	slabBytes = (slabBytes + partitionSlabAlign - 1) / partitionSlabAlign * partitionSlabAlign
	w := &Partition{
		Procs:  procs,
		Chunks: slabBytes / 64,
		Steps:  12,
		Seed:   seed,
	}
	var s Space
	w.slabs = s.AllocArray(procs*w.Chunks, 64)
	w.counters = s.AllocArray(4, 8)
	w.space = s.Used()
	return w
}

// Name implements Program.
func (w *Partition) Name() string { return "partition" }

// Config implements Program.
func (w *Partition) Config() Config {
	return Config{
		NumProcs:    w.Procs,
		SpaceSize:   w.space,
		NumLocks:    4,
		NumBarriers: 2,
	}
}

// Proc implements Program.
func (w *Partition) Proc(c Ctx) {
	p := c.Proc()
	rng := rand.New(rand.NewSource(splitRNG(w.Seed, int64(p))))
	lo := p * w.Chunks
	hi := lo + w.Chunks

	// Partitioned initialization — under the first-touch placement these
	// writes are the claims that home each slab at its writer — then the
	// fork barrier.
	for i := lo; i < hi; i++ {
		c.Write(w.slabs.Elem(i, 64), 64)
	}
	if p == 0 {
		for i := 0; i < 4; i++ {
			c.Write(w.counters.Elem(i, 8), 8)
		}
	}
	c.Barrier(0)

	for step := 0; step < w.Steps; step++ {
		// Sweep the owned slab: every other chunk, write-only.
		for i := lo; i < hi; i += 2 {
			c.Write(w.slabs.Elem(i, 64), 64)
		}
		// Global event counters under locks: the critical sections the
		// traffic is normalized by. Byte-increments commute, so the
		// image is schedule-independent.
		for k := 0; k < 4; k++ {
			lock := rng.Intn(4)
			c.Acquire(lock)
			c.Update(w.counters.Elem(lock, 8), 8)
			c.Release(lock)
		}
		c.Barrier(1)
	}
}
