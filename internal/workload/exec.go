// Package workload defines the five SPLASH-structure programs of the
// paper's evaluation (§5.3) and executes them on interchangeable backends.
// The original study traced five SPLASH programs on 16 processors with the
// Tango simulator; those traces are not available, so this package
// re-creates each program's *sharing and synchronization structure* (as
// documented in the paper's §5.2) as a deterministic synthetic program.
//
// A Program's per-processor body runs against the abstract access
// interface Ctx, which has two backends:
//
//   - the lockstep trace generator (Execute/Generate in this file): every
//     "processor" is a goroutine resumed one at a time by a miniature
//     scheduler that serializes all shared accesses into one legal,
//     globally-ordered trace for the protocol simulator (internal/sim),
//     while materializing the value semantics of package trace into a flat
//     reference memory image;
//
//   - the live DSM runtime adapter (RunOnRuntime in runtime.go): every
//     processor is a genuinely concurrent goroutine driving a dsm.Node,
//     with locks and barriers mapped to the runtime's synchronization
//     operations and ordinary accesses moving real bytes through the lazy
//     release consistency protocol.
//
// Both backends apply identical deterministic value semantics
// (trace.ApplyEvent), and the programs are written so that every pair of
// conflicting operations either commutes or is ordered by the program's
// own synchronization — so the final shared-memory image is independent of
// the interleaving, and the two backends (plus a replay of the generated
// trace) must converge to byte-identical images. The differential tests
// rely on exactly that.
package workload

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Config describes a synthetic program's shape.
type Config struct {
	NumProcs    int
	SpaceSize   mem.Addr
	NumLocks    int
	NumBarriers int
}

// Ctx is the abstract per-processor access interface a Program's body runs
// against. Methods block until the backend grants the operation, exactly
// like the real DSM API; value-returning operations observe the backend's
// shared memory under the value semantics of package trace.
type Ctx interface {
	// Proc returns this processor's id, 0..NumProcs-1.
	Proc() int
	// NumProcs returns the number of processors in the execution.
	NumProcs() int
	// Read performs an ordinary shared read of [addr, addr+size).
	Read(addr mem.Addr, size int)
	// Write performs an ordinary shared write of [addr, addr+size),
	// storing the canonical fill pattern (trace.Fill).
	Write(addr mem.Addr, size int)
	// Update performs a read-modify-write of [addr, addr+size),
	// incrementing every byte by one.
	Update(addr mem.Addr, size int)
	// WriteUint64 stores v at addr as a little-endian uint64.
	WriteUint64(addr mem.Addr, v uint64)
	// ReadUint64 loads the little-endian uint64 at addr.
	ReadUint64(addr mem.Addr) uint64
	// FetchAddUint64 atomically (under the caller's synchronization — the
	// caller must hold a lock ordering all mutations of addr) adds delta
	// to the little-endian uint64 at addr and returns the previous value.
	FetchAddUint64(addr mem.Addr, delta uint64) uint64
	// Acquire blocks until lock l is granted to this processor.
	Acquire(l int)
	// Release releases lock l, which the processor must hold.
	Release(l int)
	// Barrier blocks until every processor has arrived at barrier b.
	Barrier(b int)
}

// Locked runs body while holding lock l.
func Locked(c Ctx, l int, body func()) {
	c.Acquire(l)
	body()
	c.Release(l)
}

// Program is a synthetic shared-memory application.
type Program interface {
	// Name identifies the workload ("locusroute", ...).
	Name() string
	// Config returns the program's shape. It is called once, before any
	// processor starts.
	Config() Config
	// Proc is the per-processor body; it runs concurrently on
	// Config().NumProcs backend-controlled goroutines and must perform
	// every shared access through ctx. Bodies must not share mutable Go
	// state across processors: the runtime backend runs them genuinely
	// concurrently.
	Proc(ctx Ctx)
}

// Result is a lockstep execution's outcome: the validated trace and the
// final shared-memory image it denotes (the sequential reference of the
// differential tests).
type Result struct {
	Trace *trace.Trace
	Image []byte
}

type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opUpdate
	opSet64
	opGet64
	opAdd64
	opAcquire
	opRelease
	opBarrier
	opDone
)

type yieldMsg struct {
	proc int
	kind opKind
	addr mem.Addr
	size int32
	sync int32
	val  uint64
}

// genCtx is the lockstep backend's Ctx: operations are handed to the
// scheduler and block until granted; replies carry observed values.
type genCtx struct {
	proc int
	g    *generator
}

func (c *genCtx) Proc() int     { return c.proc }
func (c *genCtx) NumProcs() int { return c.g.cfg.NumProcs }

func (c *genCtx) op(k opKind, addr mem.Addr, size int32, sync int32, val uint64) uint64 {
	c.g.yield <- yieldMsg{proc: c.proc, kind: k, addr: addr, size: size, sync: sync, val: val}
	return <-c.g.resume[c.proc]
}

func (c *genCtx) Read(addr mem.Addr, size int)   { c.op(opRead, addr, int32(size), 0, 0) }
func (c *genCtx) Write(addr mem.Addr, size int)  { c.op(opWrite, addr, int32(size), 0, 0) }
func (c *genCtx) Update(addr mem.Addr, size int) { c.op(opUpdate, addr, int32(size), 0, 0) }
func (c *genCtx) WriteUint64(addr mem.Addr, v uint64) {
	c.op(opSet64, addr, 8, 0, v)
}
func (c *genCtx) ReadUint64(addr mem.Addr) uint64 {
	return c.op(opGet64, addr, 8, 0, 0)
}
func (c *genCtx) FetchAddUint64(addr mem.Addr, delta uint64) uint64 {
	return c.op(opAdd64, addr, 8, 0, delta)
}
func (c *genCtx) Acquire(l int) { c.op(opAcquire, 0, 0, int32(l), 0) }
func (c *genCtx) Release(l int) { c.op(opRelease, 0, 0, int32(l), 0) }
func (c *genCtx) Barrier(b int) { c.op(opBarrier, 0, 0, int32(b), 0) }

type generator struct {
	cfg    Config
	resume []chan uint64
	yield  chan yieldMsg
}

// Generate executes the program on the lockstep scheduler and returns the
// resulting validated trace.
func Generate(p Program) (*trace.Trace, error) {
	r, err := Execute(p)
	if err != nil {
		return nil, err
	}
	return r.Trace, nil
}

// Execute runs the program on the lockstep scheduler, returning both the
// validated trace and the reference memory image. The scheduler resumes
// exactly one processor at a time (round-robin among runnable processors),
// parks processors that block on held locks or barriers, and emits events
// — applying their value semantics to the image — in the order operations
// are granted, so lock nesting and barrier episodes in the trace are
// correct by construction. Given a fixed seed, execution is fully
// deterministic.
func Execute(p Program) (*Result, error) {
	cfg := p.Config()
	if cfg.NumProcs <= 0 || cfg.NumProcs > 64 {
		return nil, fmt.Errorf("workload %s: processor count %d outside [1,64]", p.Name(), cfg.NumProcs)
	}
	g := &generator{
		cfg:    cfg,
		resume: make([]chan uint64, cfg.NumProcs),
		yield:  make(chan yieldMsg),
	}
	for i := range g.resume {
		g.resume[i] = make(chan uint64)
	}
	for i := 0; i < cfg.NumProcs; i++ {
		go func(id int) {
			ctx := &genCtx{proc: id, g: g}
			<-g.resume[id] // wait for first scheduling slot
			p.Proc(ctx)
			g.yield <- yieldMsg{proc: id, kind: opDone}
		}(i)
	}

	t := &trace.Trace{
		NumProcs:    cfg.NumProcs,
		SpaceSize:   cfg.SpaceSize,
		NumLocks:    cfg.NumLocks,
		NumBarriers: cfg.NumBarriers,
		Name:        p.Name(),
	}
	image := make([]byte, cfg.SpaceSize)

	// emit appends the event and applies its value semantics to the image,
	// returning the value observed (AddVal's previous value).
	emit := func(e trace.Event) uint64 {
		t.Events = append(t.Events, e)
		return trace.ApplyEvent(image, e)
	}

	const (
		stRunnable = iota
		stBlocked  // waiting on a lock or barrier
		stDone
	)
	state := make([]int, cfg.NumProcs)
	reply := make([]uint64, cfg.NumProcs) // value delivered on next resume
	lockHolder := make(map[int32]int)     // lock -> holder
	lockQueue := make(map[int32][]int)    // lock -> FIFO waiters
	barWaiters := make(map[int32][]int)   // barrier -> arrived & parked
	active := cfg.NumProcs

	// The resumed processor runs until its next yield; operations are
	// granted (and their events emitted) here, in scheduling order.
	next := 0
	for active > 0 {
		// Pick the next runnable processor, round-robin.
		picked := -1
		for i := 0; i < cfg.NumProcs; i++ {
			cand := (next + i) % cfg.NumProcs
			if state[cand] == stRunnable {
				picked = cand
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("workload %s: deadlock: %d processors active but none runnable", p.Name(), active)
		}
		next = (picked + 1) % cfg.NumProcs
		g.resume[picked] <- reply[picked]
		reply[picked] = 0
		y := <-g.yield
		if y.proc != picked {
			return nil, fmt.Errorf("workload %s: scheduler resumed p%d but p%d yielded", p.Name(), picked, y.proc)
		}
		if y.kind <= opAdd64 {
			// Bounds-check ordinary accesses before touching the image, so
			// a workload bug surfaces as a descriptive error rather than a
			// slice panic.
			if y.size <= 0 || y.addr < 0 || y.addr+mem.Addr(y.size) > cfg.SpaceSize {
				return nil, fmt.Errorf("workload %s: p%d access [%d,%d) outside space [0,%d)",
					p.Name(), y.proc, y.addr, y.addr+mem.Addr(y.size), cfg.SpaceSize)
			}
		}
		switch y.kind {
		case opRead:
			emit(trace.Event{Kind: trace.Read, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: y.size})
		case opWrite:
			emit(trace.Event{Kind: trace.Write, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: y.size})
		case opUpdate:
			emit(trace.Event{Kind: trace.Update, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: y.size})
		case opSet64:
			emit(trace.Event{Kind: trace.SetVal, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: 8, Val: y.val})
		case opGet64:
			emit(trace.Event{Kind: trace.Read, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: 8})
			// The value is delivered on the proc's next scheduling slot.
			reply[y.proc] = binary.LittleEndian.Uint64(image[y.addr:])
		case opAdd64:
			reply[y.proc] = emit(trace.Event{Kind: trace.AddVal, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: 8, Val: y.val})
		case opAcquire:
			if _, held := lockHolder[y.sync]; held {
				lockQueue[y.sync] = append(lockQueue[y.sync], y.proc)
				state[y.proc] = stBlocked
			} else {
				lockHolder[y.sync] = y.proc
				emit(trace.Event{Kind: trace.Acquire, Proc: mem.ProcID(y.proc), Sync: y.sync})
			}
		case opRelease:
			if h, held := lockHolder[y.sync]; !held || h != y.proc {
				return nil, fmt.Errorf("workload %s: p%d releases lock %d it does not hold", p.Name(), y.proc, y.sync)
			}
			emit(trace.Event{Kind: trace.Release, Proc: mem.ProcID(y.proc), Sync: y.sync})
			delete(lockHolder, y.sync)
			if q := lockQueue[y.sync]; len(q) > 0 {
				w := q[0]
				lockQueue[y.sync] = q[1:]
				lockHolder[y.sync] = w
				emit(trace.Event{Kind: trace.Acquire, Proc: mem.ProcID(w), Sync: y.sync})
				state[w] = stRunnable
			}
		case opBarrier:
			emit(trace.Event{Kind: trace.Barrier, Proc: mem.ProcID(y.proc), Sync: y.sync})
			arr := append(barWaiters[y.sync], y.proc)
			if len(arr) == cfg.NumProcs {
				for _, w := range arr {
					state[w] = stRunnable
				}
				delete(barWaiters, y.sync)
			} else {
				barWaiters[y.sync] = arr
				state[y.proc] = stBlocked
			}
		case opDone:
			state[y.proc] = stDone
			active--
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid trace: %w", p.Name(), err)
	}
	return &Result{Trace: t, Image: image}, nil
}
