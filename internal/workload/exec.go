// Package workload generates the traces of the paper's evaluation. The
// original study traced five SPLASH programs on 16 processors with the
// Tango simulator; those traces are not available, so this package
// re-creates each program's *sharing and synchronization structure* (as
// documented in the paper's §5.3) as a deterministic synthetic program and
// executes it on a miniature lockstep scheduler that serializes all shared
// accesses into one legal, globally-ordered trace.
//
// Each "processor" is a goroutine running the program body against a Ctx;
// the scheduler resumes exactly one processor at a time (round-robin among
// runnable processors), parks processors that block on held locks or
// barriers, and emits events in the order operations are granted — so lock
// nesting and barrier episodes in the trace are correct by construction.
// Given a fixed seed, generation is fully deterministic.
package workload

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Config describes a synthetic program's shape.
type Config struct {
	NumProcs    int
	SpaceSize   mem.Addr
	NumLocks    int
	NumBarriers int
}

// Program is a synthetic shared-memory application.
type Program interface {
	// Name identifies the workload ("locusroute", ...).
	Name() string
	// Config returns the program's shape. It is called once, before any
	// processor starts.
	Config() Config
	// Proc is the per-processor body; it runs concurrently on
	// Config().NumProcs scheduler-controlled goroutines and must perform
	// every shared access through ctx.
	Proc(ctx *Ctx)
}

type opKind uint8

const (
	opRead opKind = iota
	opWrite
	opAcquire
	opRelease
	opBarrier
	opDone
)

type yieldMsg struct {
	proc int
	kind opKind
	addr mem.Addr
	size int32
	sync int32
}

// Ctx is a processor's handle for performing shared-memory and
// synchronization operations during trace generation. Methods block until
// the scheduler grants the operation, exactly like the real DSM API.
type Ctx struct {
	proc int
	g    *generator
}

// Proc returns this processor's id, 0..NumProcs-1.
func (c *Ctx) Proc() int { return c.proc }

// NumProcs returns the number of processors in the execution.
func (c *Ctx) NumProcs() int { return c.g.cfg.NumProcs }

func (c *Ctx) op(k opKind, addr mem.Addr, size int32, sync int32) {
	c.g.yield <- yieldMsg{proc: c.proc, kind: k, addr: addr, size: size, sync: sync}
	<-c.g.resume[c.proc]
}

// Read performs an ordinary shared read of [addr, addr+size).
func (c *Ctx) Read(addr mem.Addr, size int) { c.op(opRead, addr, int32(size), 0) }

// Write performs an ordinary shared write of [addr, addr+size).
func (c *Ctx) Write(addr mem.Addr, size int) { c.op(opWrite, addr, int32(size), 0) }

// Update performs a read-modify-write of [addr, addr+size).
func (c *Ctx) Update(addr mem.Addr, size int) {
	c.Read(addr, size)
	c.Write(addr, size)
}

// Acquire blocks until lock l is granted to this processor.
func (c *Ctx) Acquire(l int) { c.op(opAcquire, 0, 0, int32(l)) }

// Release releases lock l, which the processor must hold.
func (c *Ctx) Release(l int) { c.op(opRelease, 0, 0, int32(l)) }

// Barrier blocks until every processor has arrived at barrier b.
func (c *Ctx) Barrier(b int) { c.op(opBarrier, 0, 0, int32(b)) }

// Locked runs body while holding lock l.
func (c *Ctx) Locked(l int, body func()) {
	c.Acquire(l)
	body()
	c.Release(l)
}

type generator struct {
	cfg    Config
	resume []chan struct{}
	yield  chan yieldMsg
}

// Generate executes the program on the lockstep scheduler and returns the
// resulting validated trace.
func Generate(p Program) (*trace.Trace, error) {
	cfg := p.Config()
	if cfg.NumProcs <= 0 || cfg.NumProcs > 64 {
		return nil, fmt.Errorf("workload %s: processor count %d outside [1,64]", p.Name(), cfg.NumProcs)
	}
	g := &generator{
		cfg:    cfg,
		resume: make([]chan struct{}, cfg.NumProcs),
		yield:  make(chan yieldMsg),
	}
	for i := range g.resume {
		g.resume[i] = make(chan struct{})
	}
	for i := 0; i < cfg.NumProcs; i++ {
		go func(id int) {
			ctx := &Ctx{proc: id, g: g}
			<-g.resume[id] // wait for first scheduling slot
			p.Proc(ctx)
			g.yield <- yieldMsg{proc: id, kind: opDone}
		}(i)
	}

	t := &trace.Trace{
		NumProcs:    cfg.NumProcs,
		SpaceSize:   cfg.SpaceSize,
		NumLocks:    cfg.NumLocks,
		NumBarriers: cfg.NumBarriers,
		Name:        p.Name(),
	}

	const (
		stRunnable = iota
		stBlocked  // waiting on a lock or barrier
		stDone
	)
	state := make([]int, cfg.NumProcs)
	lockHolder := make(map[int32]int)   // lock -> holder
	lockQueue := make(map[int32][]int)  // lock -> FIFO waiters
	barWaiters := make(map[int32][]int) // barrier -> arrived & parked
	active := cfg.NumProcs

	// The resumed processor runs until its next yield; operations are
	// granted (and their events emitted) here, in scheduling order.
	next := 0
	for active > 0 {
		// Pick the next runnable processor, round-robin.
		picked := -1
		for i := 0; i < cfg.NumProcs; i++ {
			cand := (next + i) % cfg.NumProcs
			if state[cand] == stRunnable {
				picked = cand
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("workload %s: deadlock: %d processors active but none runnable", p.Name(), active)
		}
		next = (picked + 1) % cfg.NumProcs
		g.resume[picked] <- struct{}{}
		y := <-g.yield
		if y.proc != picked {
			return nil, fmt.Errorf("workload %s: scheduler resumed p%d but p%d yielded", p.Name(), picked, y.proc)
		}
		switch y.kind {
		case opRead:
			t.Events = append(t.Events, trace.Event{Kind: trace.Read, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: y.size})
		case opWrite:
			t.Events = append(t.Events, trace.Event{Kind: trace.Write, Proc: mem.ProcID(y.proc), Addr: y.addr, Size: y.size})
		case opAcquire:
			if _, held := lockHolder[y.sync]; held {
				lockQueue[y.sync] = append(lockQueue[y.sync], y.proc)
				state[y.proc] = stBlocked
			} else {
				lockHolder[y.sync] = y.proc
				t.Events = append(t.Events, trace.Event{Kind: trace.Acquire, Proc: mem.ProcID(y.proc), Sync: y.sync})
			}
		case opRelease:
			if h, held := lockHolder[y.sync]; !held || h != y.proc {
				return nil, fmt.Errorf("workload %s: p%d releases lock %d it does not hold", p.Name(), y.proc, y.sync)
			}
			t.Events = append(t.Events, trace.Event{Kind: trace.Release, Proc: mem.ProcID(y.proc), Sync: y.sync})
			delete(lockHolder, y.sync)
			if q := lockQueue[y.sync]; len(q) > 0 {
				w := q[0]
				lockQueue[y.sync] = q[1:]
				lockHolder[y.sync] = w
				t.Events = append(t.Events, trace.Event{Kind: trace.Acquire, Proc: mem.ProcID(w), Sync: y.sync})
				state[w] = stRunnable
			}
		case opBarrier:
			t.Events = append(t.Events, trace.Event{Kind: trace.Barrier, Proc: mem.ProcID(y.proc), Sync: y.sync})
			arr := append(barWaiters[y.sync], y.proc)
			if len(arr) == cfg.NumProcs {
				for _, w := range arr {
					state[w] = stRunnable
				}
				delete(barWaiters, y.sync)
			} else {
				barWaiters[y.sync] = arr
				state[y.proc] = stBlocked
			}
		case opDone:
			state[y.proc] = stDone
			active--
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid trace: %w", p.Name(), err)
	}
	return t, nil
}
