package workload

import (
	"fmt"

	"repro/internal/mem"
)

// Region is a named extent of the shared address space.
type Region struct {
	Base mem.Addr
	Size mem.Addr
}

// At returns the address off bytes into the region, panicking on overflow
// (a workload bug).
func (r Region) At(off mem.Addr) mem.Addr {
	if off < 0 || off >= r.Size {
		panic(fmt.Sprintf("workload: offset %d outside region of %d bytes", off, r.Size))
	}
	return r.Base + off
}

// Elem returns the address of element i of an array of stride-byte
// elements starting at the region base.
func (r Region) Elem(i int, stride int) mem.Addr {
	return r.At(mem.Addr(i) * mem.Addr(stride))
}

// Space is a bump allocator for laying out a workload's shared data
// structures. Allocations are aligned so that logically distinct
// structures never share a smallest-granularity (512-byte) page unless a
// workload deliberately co-locates them.
type Space struct {
	next mem.Addr
}

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the region.
func (s *Space) Alloc(size mem.Addr, align mem.Addr) Region {
	if align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("workload: alignment %d is not a positive power of two", align))
	}
	base := (s.next + align - 1) &^ (align - 1)
	s.next = base + size
	return Region{Base: base, Size: size}
}

// AllocArray reserves count elements of stride bytes, page-aligned to the
// smallest simulated page size so arrays start on page boundaries.
func (s *Space) AllocArray(count, stride int) Region {
	return s.Alloc(mem.Addr(count)*mem.Addr(stride), 512)
}

// Used returns the total bytes allocated so far.
func (s *Space) Used() mem.Addr { return s.next }

// splitRNG returns a deterministic 64-bit mix of seed and lane, for giving
// each processor (or structure) an independent reproducible random stream.
func splitRNG(seed int64, lane int64) int64 {
	z := uint64(seed) + uint64(lane)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
