package workload

import (
	"math/rand"

	"repro/internal/mem"
)

// MP3D models the SPLASH rarefied-fluid-flow Monte Carlo simulation (paper
// §5.2.3): each timestep moves particles through a space-cell array and is
// separated by barriers, with locks guarding global event counters. The
// particles are partitioned per processor, but a moved particle updates
// whichever space cell it lands in — so the cell array is written by every
// processor and read back in the collision phase, making access misses the
// dominant traffic (the paper's explanation for why the update protocols
// send fewer messages here and why lazy protocols send less data: diffs,
// not whole pages).
type MP3D struct {
	Procs     int
	Particles int
	Cells     int
	Steps     int
	Seed      int64

	particles Region // Particles x 32 bytes, partitioned by processor
	cells     Region // Cells x 16 bytes, written by all
	counters  Region // global event counters
	space     mem.Addr
}

// NewMP3D returns the workload at the given scale (scales particles and
// steps).
func NewMP3D(procs int, scale float64, seed int64) *MP3D {
	w := &MP3D{
		Procs:     procs,
		Particles: int(3200 * scale),
		Cells:     2048,
		Steps:     4,
		Seed:      seed,
	}
	var s Space
	w.particles = s.AllocArray(w.Particles, 32)
	w.cells = s.AllocArray(w.Cells, 16)
	w.counters = s.AllocArray(4, 8)
	w.space = s.Used()
	return w
}

// Name implements Program.
func (w *MP3D) Name() string { return "mp3d" }

// Config implements Program.
func (w *MP3D) Config() Config {
	return Config{
		NumProcs:    w.Procs,
		SpaceSize:   w.space,
		NumLocks:    4,
		NumBarriers: 2,
	}
}

// Proc implements Program.
func (w *MP3D) Proc(c Ctx) {
	p := c.Proc()
	rng := rand.New(rand.NewSource(splitRNG(w.Seed, int64(p))))

	perProc := (w.Particles + w.Procs - 1) / w.Procs
	lo := p * perProc
	hi := lo + perProc
	if hi > w.Particles {
		hi = w.Particles
	}
	cellsPer := (w.Cells + w.Procs - 1) / w.Procs
	clo := p * cellsPer
	chi := clo + cellsPer
	if chi > w.Cells {
		chi = w.Cells
	}

	// Partitioned initialization, then the fork barrier.
	for i := lo; i < hi; i++ {
		c.Write(w.particles.Elem(i, 32), 32)
	}
	for i := clo; i < chi; i++ {
		c.Write(w.cells.Elem(i, 16), 16)
	}
	if p == 0 {
		for i := 0; i < 4; i++ {
			c.Write(w.counters.Elem(i, 8), 8)
		}
	}
	c.Barrier(0)

	// Particle positions: the original assigns particles to processors
	// round-robin with no spatial correlation, so most of a processor's
	// particles sit in cells scattered across the whole tunnel; a
	// boundary-layer fraction stays clustered near the processor's own
	// cell partition. Per-step movement is a local drift. The scattered
	// majority is what makes every cell page multi-writer and misses
	// dominate the traffic (§5.2.3).
	pos := make([]int, hi-lo)
	for i := range pos {
		if (lo+i)%4 == 0 {
			pos[i] = (lo + i) * w.Cells / w.Particles // boundary layer
		} else {
			pos[i] = int((uint32(lo+i) * 2654435761) % uint32(w.Cells))
		}
	}

	for step := 0; step < w.Steps; step++ {
		// Move phase: each particle is read, drifts to a nearby cell, and
		// the destination cell's population is updated.
		for i := lo; i < hi; i++ {
			c.Read(w.particles.Elem(i, 32), 32)
			c.Write(w.particles.Elem(i, 32), 32)
			pp := pos[i-lo] + rng.Intn(65) - 28 // drift, biased downstream
			if pp < 0 {
				pp += w.Cells
			}
			if pp >= w.Cells {
				pp -= w.Cells
			}
			pos[i-lo] = pp
			// Every move examines the destination cell; only collisions
			// (a fraction of moves, as in the original's Monte Carlo
			// collision step) update it.
			c.Read(w.cells.Elem(pp, 16), 16)
			if rng.Intn(4) == 0 {
				c.Write(w.cells.Elem(pp, 16), 16)
			}
			if rng.Intn(32) == 0 {
				lock := rng.Intn(4)
				c.Acquire(lock)
				c.Update(w.counters.Elem(lock, 8), 8)
				c.Release(lock)
			}
		}
		c.Barrier(1)
		// Collision phase: each processor sweeps its slice of the cell
		// array — reading state written by every other processor — and
		// resets it.
		for i := clo; i < chi; i++ {
			c.Read(w.cells.Elem(i, 16), 16)
			c.Write(w.cells.Elem(i, 16), 16)
		}
		c.Barrier(1)
	}
}
