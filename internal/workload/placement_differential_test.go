package workload

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dsm"
)

// Placement differential matrix: page placement and home migration are
// pure performance machinery — under every placement policy, with homes
// migrating or pinned, every protocol must still produce a final image
// byte-identical to the sequential reference. The matrix runs mp3d (the
// multi-writer workload, the hardest on directory state) over the
// in-process interconnect for every {placement} × {migration} ×
// {protocol} × {goroutines-per-node} combination, and a TCP leg repeats
// a slice of it over real sockets.

var placementNames = []string{"block", "rr", "first-touch"}

func runPlacement(t *testing.T, name string, rc RuntimeConfig, procs int, scale float64) {
	t.Helper()
	ref, err := ExecuteCached(name, procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := New(name, procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnRuntime(prog, rc)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !bytes.Equal(res.Image, ref.Image) {
		t.Errorf("%s: image diverges from sequential reference (first diff at byte %d)",
			name, firstDiff(res.Image, ref.Image))
	}
}

// TestPlacementDifferential: {block, rr, first-touch} × {migration
// off, on} × all five protocols × one and four goroutines per node,
// byte-identical images throughout. Short mode trims the sweep to one
// goroutine per node and the LI/EI/SC protocols.
func TestPlacementDifferential(t *testing.T) {
	const procs, scale, pageSize = 4, 0.05, 1024
	modes := dsm.Modes
	gpns := []int{1, 4}
	if testing.Short() {
		modes = []dsm.Mode{dsm.LazyInvalidate, dsm.EagerInvalidate, dsm.SeqConsistent}
		gpns = []int{1}
	}
	for _, placement := range placementNames {
		for _, migrate := range []bool{false, true} {
			for _, mode := range modes {
				for _, gpn := range gpns {
					rc := RuntimeConfig{
						PageSize:          pageSize,
						Mode:              mode,
						Placement:         placement,
						GoroutinesPerNode: gpn,
					}
					if migrate {
						rc.AdaptEveryBarriers = 2
						rc.MigrateHomes = true
					}
					t.Run(fmt.Sprintf("%s/migrate=%v/%s/gpn%d", placement, migrate, mode, gpn), func(t *testing.T) {
						t.Parallel()
						runPlacement(t, "mp3d", rc, procs, scale)
					})
				}
			}
		}
	}
}

// TestPlacementOverTCPTransport repeats the placement matrix's
// migration-on slice over real loopback TCP sockets: with one System
// (and one home table) per process, cluster-wide placement agreement
// has to hold purely through the exchanged barrier payloads.
func TestPlacementOverTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP placement sweep crosses real sockets; skipped in short mode")
	}
	const procs, scale, pageSize = 4, 0.05, 1024
	for _, placement := range placementNames {
		for _, mode := range []dsm.Mode{dsm.LazyUpdate, dsm.EagerInvalidate} {
			placement, mode := placement, mode
			t.Run(fmt.Sprintf("%s/%s", placement, mode), func(t *testing.T) {
				t.Parallel()
				runPlacement(t, "mp3d", RuntimeConfig{
					PageSize:           pageSize,
					Mode:               mode,
					Placement:          placement,
					AdaptEveryBarriers: 2,
					MigrateHomes:       true,
					Transports:         tcpTransports(t, procs),
				}, procs, scale)
			})
		}
	}
}
