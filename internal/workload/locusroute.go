package workload

import (
	"math/rand"

	"repro/internal/mem"
)

// LocusRoute models the SPLASH VLSI standard-cell router (paper §5.2.1):
// the dominant shared structure is a cost grid (a cell's cost is the
// number of wires through it); work is handed out a wire at a time from a
// central task queue protected by a lock, and synchronization is almost
// entirely lock-based. Data motion is migratory — the task-queue and cost
// pages follow the lock from processor to processor — and false sharing on
// the grid grows with page size (adjacent rows land on one page), the two
// factors the paper says favor lazy protocols.
//
// Each popped wire evaluates three candidate rows over a column span
// (reads) and then routes through the cheapest (read-modify-writes). An
// initial barrier stands in for the original program's fork ordering.
type LocusRoute struct {
	Procs    int
	Wires    int // total wires to route
	GridRows int
	GridCols int
	SpanLen  int // cells per route segment
	Seed     int64

	queue Region // head counter + wire descriptors
	grid  Region // GridRows x GridCols x 4-byte cost cells
	space mem.Addr
}

// lrRowLocks is the number of locks hashing the grid rows; the paper's
// §5.3 notes LocusRoute's locks protect individual cost-array elements, so
// cost updates are lock-arbitrated (and thereby happened-before-ordered).
const lrRowLocks = 16

// NewLocusRoute returns the workload at the given scale (1.0 reproduces
// the repository's standard configuration; larger scales add wires).
func NewLocusRoute(procs int, scale float64, seed int64) *LocusRoute {
	w := &LocusRoute{
		Procs:    procs,
		Wires:    int(1200 * scale),
		GridRows: 64,
		GridCols: 256,
		SpanLen:  24,
		Seed:     seed,
	}
	var s Space
	w.queue = s.AllocArray(1+w.Wires, 16)
	w.grid = s.AllocArray(w.GridRows*w.GridCols, 4)
	w.space = s.Used()
	return w
}

// Name implements Program.
func (w *LocusRoute) Name() string { return "locusroute" }

// Config implements Program.
func (w *LocusRoute) Config() Config {
	return Config{
		NumProcs:    w.Procs,
		SpaceSize:   w.space,
		NumLocks:    1 + lrRowLocks,
		NumBarriers: 1,
	}
}

const lrQueueLock = 0

func (w *LocusRoute) rowLock(row int) int { return 1 + row%lrRowLocks }

func (w *LocusRoute) cell(row, col int) mem.Addr {
	return w.grid.Elem(row*w.GridCols+col, 4)
}

// Proc implements Program.
func (w *LocusRoute) Proc(c Ctx) {
	p := c.Proc()

	// Initialization: processor 0 sets up the task queue; the grid is
	// zero-initialized in partitioned fashion (each processor clears a
	// band of rows), as the original does.
	if p == 0 {
		c.WriteUint64(w.queue.At(0), 0) // head cursor
		for i := 0; i < w.Wires; i++ {
			c.Write(w.queue.Elem(1+i, 16), 16)
		}
	}
	rowsPer := (w.GridRows + w.Procs - 1) / w.Procs
	for r := p * rowsPer; r < (p+1)*rowsPer && r < w.GridRows; r++ {
		// Clear a whole row with chunked writes.
		for col := 0; col < w.GridCols; col += 64 {
			c.Write(w.cell(r, col), 64*4)
		}
	}
	c.Barrier(0)

	for {
		// Pop one wire from the central queue: a fetch-and-add on the
		// shared head cursor under the queue lock, so the cursor itself
		// lives in DSM memory and the pop order is whatever the lock
		// grants.
		c.Acquire(lrQueueLock)
		wire := int(c.FetchAddUint64(w.queue.At(0), 1))
		if wire >= w.Wires {
			c.Release(lrQueueLock)
			return
		}
		c.Read(w.queue.Elem(1+wire, 16), 16)
		c.Release(lrQueueLock)

		// Evaluate three candidate rows over the span, then route through
		// the cheapest. The route is derived from the wire id, not the
		// popping processor, so the work a wire performs — and therefore
		// the final cost-grid image — is independent of which processor
		// happens to pop it (the cost values are not materialized, only
		// the access pattern and the update counts matter).
		rng := rand.New(rand.NewSource(splitRNG(w.Seed, int64(1+wire))))
		row := 1 + rng.Intn(w.GridRows-2)
		col0 := rng.Intn(w.GridCols - w.SpanLen)
		for dr := -1; dr <= 1; dr++ {
			for k := 0; k < w.SpanLen; k += 4 {
				c.Read(w.cell(row+dr, col0+k), 16)
			}
		}
		best := row + rng.Intn(3) - 1
		c.Acquire(w.rowLock(best))
		for k := 0; k < w.SpanLen; k += 2 {
			c.Update(w.cell(best, col0+k), 8)
		}
		c.Release(w.rowLock(best))
	}
}
