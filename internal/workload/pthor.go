package workload

import (
	"math/rand"

	"repro/internal/mem"
)

// Pthor models the SPLASH distributed-time logic simulator (paper §5.2.5):
// logic elements, wires between them, and per-processor work queues, all
// lock-protected. Each processor has a set of pages it modifies (its own
// elements, output wires and queue) that are frequently read by other
// processors — the producer/consumer pattern that makes invalidation
// protocols reload entire pages over and over (the paper calls out EI's
// data volume as particularly high, and LI's message count exceeds LU's
// because LI takes more access misses). Barriers appear only for the
// (rare) deadlock-recovery phases.
type Pthor struct {
	Procs       int
	ElemsPerPrc int
	Evals       int // element evaluations per processor
	Phases      int // deadlock-recovery episodes (barrier pairs)
	Seed        int64

	elements Region // per-processor element blocks, 32 bytes each
	wires    Region // one output wire per element, 16 bytes, owner-stored
	queues   Region // per-processor queue: 16-byte header + entries
	space    mem.Addr
	qBytes   int
}

// NewPthor returns the workload at the given scale (scales evaluations).
func NewPthor(procs int, scale float64, seed int64) *Pthor {
	w := &Pthor{
		Procs:       procs,
		ElemsPerPrc: 96,
		Evals:       int(500 * scale),
		Phases:      2,
		Seed:        seed,
	}
	total := procs * w.ElemsPerPrc
	w.qBytes = 16 + 8*64
	var s Space
	w.elements = s.AllocArray(total, 32)
	w.wires = s.AllocArray(total, 16)
	w.queues = s.AllocArray(procs, w.qBytes)
	w.space = s.Used()
	return w
}

// Name implements Program.
func (w *Pthor) Name() string { return "pthor" }

// Config implements Program.
func (w *Pthor) Config() Config {
	return Config{
		NumProcs:    w.Procs,
		SpaceSize:   w.space,
		NumLocks:    w.Procs, // one lock per work queue
		NumBarriers: 1,
	}
}

// elem returns the address of owner's k-th element.
func (w *Pthor) elem(owner, k int) mem.Addr {
	return w.elements.Elem(owner*w.ElemsPerPrc+k, 32)
}

// wire returns the address of the output wire of owner's k-th element;
// wires are stored grouped by owner, so a processor's outputs share pages.
func (w *Pthor) wire(owner, k int) mem.Addr {
	return w.wires.Elem(owner*w.ElemsPerPrc+k, 16)
}

// Proc implements Program.
func (w *Pthor) Proc(c Ctx) {
	p := c.Proc()
	rng := rand.New(rand.NewSource(splitRNG(w.Seed, int64(p))))

	// Partitioned initialization and the fork barrier.
	for k := 0; k < w.ElemsPerPrc; k++ {
		c.Write(w.elem(p, k), 32)
		c.Write(w.wire(p, k), 16)
	}
	c.Write(w.queues.Elem(p, w.qBytes), 16)
	c.Barrier(0)

	evalsPerPhase := w.Evals / w.Phases
	for phase := 0; phase < w.Phases; phase++ {
		for ev := 0; ev < evalsPerPhase; ev++ {
			// Pop an event for one of our elements from our queue.
			k := rng.Intn(w.ElemsPerPrc)
			c.Acquire(p)
			c.Read(w.queues.Elem(p, w.qBytes), 16)
			c.Write(w.queues.Elem(p, w.qBytes), 16)
			c.Release(p)

			// Evaluate the element: read its state and its two input
			// wires — usually outputs of elements owned by other
			// processors (the cross-processor reads that hammer
			// invalidation protocols).
			c.Read(w.elem(p, k), 32)
			for in := 0; in < 2; in++ {
				src := rng.Intn(w.Procs - 1)
				if src >= p {
					src++
				}
				c.Read(w.wire(src, rng.Intn(w.ElemsPerPrc)), 16)
			}

			// Write the element's new state and its output wire (pages
			// this processor owns and others read).
			c.Write(w.elem(p, k), 32)
			c.Write(w.wire(p, k), 16)

			// Schedule downstream events on one or two other processors'
			// queues (producer side of the queues).
			fanout := 1 + rng.Intn(2)
			for f := 0; f < fanout; f++ {
				tgt := rng.Intn(w.Procs - 1)
				if tgt >= p {
					tgt++
				}
				c.Acquire(tgt)
				c.Read(w.queues.Elem(tgt, w.qBytes), 16)
				c.Write(w.queues.Elem(tgt, w.qBytes)+16+mem.Addr(8*rng.Intn(64)), 8)
				c.Write(w.queues.Elem(tgt, w.qBytes), 16)
				c.Release(tgt)
			}
		}
		// Deadlock recovery: all queues drained, everyone synchronizes.
		c.Barrier(0)
	}
}
