package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/dsm"
	"repro/internal/mem"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Differential correctness harness: every workload is executed on the
// lockstep backend (the sequential reference: one legal interleaving on a
// flat memory), replayed through the trace simulator's value plane, and
// executed for real on the live DSM runtime under all five protocols —
// LI, LU, EI, EU and SC — on genuinely concurrent goroutines. A
// properly-synchronized program must observe exactly the values its
// consistency model promises, so all final shared-memory images must be
// byte-identical.

func diffParams(t *testing.T) (procs int, scale float64, pageSizes []int) {
	t.Helper()
	if testing.Short() {
		return 4, 0.05, []int{1024}
	}
	return 8, 0.1, []int{512, 4096}
}

const diffSeed = 42

func TestWorkloadsOnRuntimeMatchReference(t *testing.T) {
	procs, scale, pageSizes := diffParams(t)
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref, err := ExecuteCached(name, procs, scale, diffSeed)
			if err != nil {
				t.Fatal(err)
			}

			// Leg 1: the trace's value replay must reproduce the lockstep
			// execution's image (the trace faithfully denotes the run).
			if !bytes.Equal(ref.Trace.Image(), ref.Image) {
				t.Fatal("trace value replay diverges from lockstep execution image")
			}

			// Leg 2: the simulator's replay — the protocol engines replay
			// the trace with the value plane running beside them. Read
			// currency is not asserted here (the workloads contain benign
			// racy reads whose values they ignore); the DRF fuzz programs
			// in internal/sim exercise those asserts.
			for _, protoName := range sim.AllProtocolNames {
				img, err := sim.ReplayImage(ref.Trace, protoName, pageSizes[0], proto.Options{}, false)
				if err != nil {
					t.Fatalf("simulator replay %s: %v", protoName, err)
				}
				if !bytes.Equal(img, ref.Image) {
					t.Errorf("simulator replay %s image diverges from reference", protoName)
				}
			}

			// Leg 3: the live runtime under every protocol engine, across
			// page sizes.
			for _, mode := range dsm.Modes {
				for _, ps := range pageSizes {
					prog, err := New(name, procs, scale, diffSeed)
					if err != nil {
						t.Fatal(err)
					}
					res, err := RunOnRuntime(prog, RuntimeConfig{PageSize: ps, Mode: mode})
					if err != nil {
						t.Fatalf("%s/%d: %v", mode, ps, err)
					}
					if !bytes.Equal(res.Image, ref.Image) {
						t.Errorf("%s/%d: runtime image diverges from reference (first diff at byte %d)",
							mode, ps, firstDiff(res.Image, ref.Image))
					}
					if res.Net.Messages == 0 {
						t.Errorf("%s/%d: runtime moved no messages", mode, ps)
					}
				}
			}
		})
	}
}

// TestRuntimeDifferentialWithGC re-runs the barrier-heavy workload with the
// runtime's barrier-time garbage collection enabled: discarding covered
// diffs must not change the values any node observes.
func TestRuntimeDifferentialWithGC(t *testing.T) {
	procs, scale, pageSizes := diffParams(t)
	ref, err := ExecuteCached("mp3d", procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []dsm.Mode{dsm.LazyInvalidate, dsm.LazyUpdate} {
		prog, err := New("mp3d", procs, scale, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOnRuntime(prog, RuntimeConfig{PageSize: pageSizes[0], Mode: mode, GCEveryBarriers: 2})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !bytes.Equal(res.Image, ref.Image) {
			t.Errorf("%s: image with GC diverges from reference", mode)
		}
	}
}

// TestBatchingDifferential: the outbox pipeline — frame coalescing, the
// configurable flush policy (thresholds plus the Nagle hold) and
// per-frame compression — is a framing optimization only: all five
// protocols must produce byte-identical images with every pipeline
// configuration, at one goroutine per node and oversubscribed, over
// simnet and (non-short) loopback TCP. The framing invariants are
// checked too: with batching off every message is its own frame and the
// logical bytes equal the physical; with compression on the physical
// bytes never exceed the logical.
func TestBatchingDifferential(t *testing.T) {
	const procs, scale = 4, 0.05
	ref, err := ExecuteCached("mp3d", procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	policy := dsm.FlushPolicy{MaxMsgs: 3, MaxBytes: 4096, Delay: 200 * time.Microsecond}
	pipes := []struct {
		name        string
		noBatch     bool
		flush       dsm.FlushPolicy
		compressMin int
	}{
		{name: "nobatch", noBatch: true},
		{name: "batch"},
		{name: "policy", flush: policy},
		{name: "compress", compressMin: 64},
		{name: "policy+compress", flush: policy, compressMin: 64},
	}
	for _, mode := range dsm.Modes {
		for _, gpn := range []int{1, 4} {
			for _, pipe := range pipes {
				prog, err := New("mp3d", procs, scale, diffSeed)
				if err != nil {
					t.Fatal(err)
				}
				rc := RuntimeConfig{PageSize: 1024, Mode: mode, GoroutinesPerNode: gpn,
					NoBatch: pipe.noBatch, Flush: pipe.flush, CompressMin: pipe.compressMin}
				res, err := RunOnRuntime(prog, rc)
				if err != nil {
					t.Fatalf("%s/gpn=%d/%s: %v", mode, gpn, pipe.name, err)
				}
				if !bytes.Equal(res.Image, ref.Image) {
					t.Errorf("%s/gpn=%d/%s: image diverges from reference (first diff at byte %d)",
						mode, gpn, pipe.name, firstDiff(res.Image, ref.Image))
				}
				switch {
				case pipe.noBatch && (res.Net.Frames != res.Net.Messages || res.Net.Batches != 0):
					t.Errorf("%s/gpn=%d: NoBatch framing violated: %+v", mode, gpn, res.Net)
				case !pipe.noBatch && res.Net.Frames > res.Net.Messages:
					t.Errorf("%s/gpn=%d/%s: more frames than messages: %+v", mode, gpn, pipe.name, res.Net)
				}
				switch {
				case pipe.compressMin == 0 && res.Net.RawBytes != res.Net.Bytes:
					t.Errorf("%s/gpn=%d/%s: logical bytes %d != physical %d without compression",
						mode, gpn, pipe.name, res.Net.RawBytes, res.Net.Bytes)
				case pipe.compressMin > 0 && res.Net.Bytes > res.Net.RawBytes:
					t.Errorf("%s/gpn=%d/%s: compression inflated the wire: %+v", mode, gpn, pipe.name, res.Net)
				}
			}
		}
	}
	if testing.Short() {
		return
	}
	// TCP leg: same images over a real loopback cluster with the full
	// pipeline on — batching, flush policy and compression — one
	// goroutine per node and oversubscribed.
	for _, mode := range dsm.Modes {
		for _, gpn := range []int{1, 4} {
			prog, err := New("mp3d", procs, scale, diffSeed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunOnRuntime(prog, RuntimeConfig{
				PageSize: 1024, Mode: mode, GoroutinesPerNode: gpn,
				Flush: policy, CompressMin: 64,
				Transports: tcpTransports(t, procs/gpn),
			})
			if err != nil {
				t.Fatalf("tcp %s/gpn=%d: %v", mode, gpn, err)
			}
			if !bytes.Equal(res.Image, ref.Image) {
				t.Errorf("tcp %s/gpn=%d: image diverges from reference", mode, gpn)
			}
			if res.Net.Bytes > res.Net.RawBytes {
				t.Errorf("tcp %s/gpn=%d: compression inflated the wire: %+v", mode, gpn, res.Net)
			}
		}
	}
}

// TestRuntimeResultShape checks the runtime execution's reporting surface:
// per-node stats are populated and the interconnect estimate is positive.
func TestRuntimeResultShape(t *testing.T) {
	procs, scale, pageSizes := diffParams(t)
	prog, err := New("water", procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnRuntime(prog, RuntimeConfig{PageSize: pageSizes[0], Mode: dsm.LazyUpdate})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "water" {
		t.Errorf("Name = %q", res.Name)
	}
	if len(res.Nodes) != procs {
		t.Fatalf("node stats for %d nodes, want %d", len(res.Nodes), procs)
	}
	var intervals int64
	for _, ns := range res.Nodes {
		intervals += ns.IntervalsCreated
	}
	if intervals == 0 {
		t.Error("no intervals created across all nodes")
	}
	if res.Elapsed <= 0 {
		t.Error("non-positive interconnect time estimate")
	}
}

// outOfRange is a buggy program whose processor 1 accesses past the end of
// the shared space after the barrier.
type outOfRange struct{ procs int }

func (o *outOfRange) Name() string { return "oob" }
func (o *outOfRange) Config() Config {
	return Config{NumProcs: o.procs, SpaceSize: 4096, NumLocks: 1, NumBarriers: 1}
}
func (o *outOfRange) Proc(c Ctx) {
	c.Write(mem.Addr(c.Proc()*8), 8)
	c.Barrier(0)
	if c.Proc() == 1 {
		c.Read(4092, 8) // 4 bytes past the end
	}
}

// TestExecuteRejectsOutOfRangeAccess: a workload bug surfaces as a
// descriptive error from the lockstep backend, not a panic.
func TestExecuteRejectsOutOfRangeAccess(t *testing.T) {
	_, err := Execute(&outOfRange{procs: 2})
	if err == nil || !strings.Contains(err.Error(), "outside space") {
		t.Fatalf("err = %v, want out-of-range access error", err)
	}
}

// TestRuntimeErrorPropagation: the same bug on the live runtime must
// surface the failing node's root-cause error — including when the barrier
// master (node 0) is already parked collecting arrivals and has to be
// unblocked by the shutdown.
func TestRuntimeErrorPropagation(t *testing.T) {
	_, err := RunOnRuntime(&outOfRange{procs: 3}, RuntimeConfig{PageSize: 512})
	if err == nil {
		t.Fatal("out-of-range access on the runtime succeeded")
	}
	if !strings.Contains(err.Error(), "processor 1") || !strings.Contains(err.Error(), "outside space") {
		t.Fatalf("err = %v, want processor 1's out-of-range error as the root cause", err)
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return -1
}
