package workload

import (
	"bytes"
	"testing"

	"repro/internal/dsm"
)

// Mixed-mode differentials: per-page protocol routing is a performance
// knob, not a semantics change. A properly-synchronized workload must
// produce the same final shared-memory image whether the whole space runs
// under one engine, pages are statically striped across several resident
// engines, or the adaptive classifier re-routes pages between engines at
// barrier epochs — at one goroutine per node and oversubscribed, over
// simnet and (non-short) loopback TCP.

// mixedMaps are static per-page assignments exercised by the differential:
// an SC/lazy split, all five protocols resident at once, and an
// eager/lazy mix with no SC pages.
var mixedMaps = []struct{ name, spec string }{
	{"sc+lu", "pg0-7=SC,rest=LU"},
	{"five-way", "pg0-3=LI,pg4-7=LU,pg8-11=EI,pg12-15=EU,rest=SC"},
	{"eager+lazy", "pg0-9=EU,pg10-19=EI,rest=LI"},
}

func TestMixedModeDifferential(t *testing.T) {
	const procs, scale = 4, 0.05
	ref, err := ExecuteCached("mp3d", procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, mm := range mixedMaps {
		for _, gpn := range []int{1, 4} {
			prog, err := New("mp3d", procs, scale, diffSeed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunOnRuntime(prog, RuntimeConfig{
				PageSize: 1024, ModeMap: mm.spec, GoroutinesPerNode: gpn,
			})
			if err != nil {
				t.Fatalf("%s/gpn=%d: %v", mm.name, gpn, err)
			}
			if !bytes.Equal(res.Image, ref.Image) {
				t.Errorf("%s/gpn=%d: image diverges from reference (first diff at byte %d)",
					mm.name, gpn, firstDiff(res.Image, ref.Image))
			}
			if res.Net.Messages == 0 && procs/gpn > 1 {
				t.Errorf("%s/gpn=%d: runtime moved no messages", mm.name, gpn)
			}
		}
	}
	if testing.Short() {
		return
	}
	// TCP leg: the same maps over a real loopback cluster, one goroutine
	// per node and oversubscribed.
	for _, mm := range mixedMaps {
		for _, gpn := range []int{1, 4} {
			prog, err := New("mp3d", procs, scale, diffSeed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunOnRuntime(prog, RuntimeConfig{
				PageSize: 1024, ModeMap: mm.spec, GoroutinesPerNode: gpn,
				Transports: tcpTransports(t, procs/gpn),
			})
			if err != nil {
				t.Fatalf("tcp %s/gpn=%d: %v", mm.name, gpn, err)
			}
			if !bytes.Equal(res.Image, ref.Image) {
				t.Errorf("tcp %s/gpn=%d: image diverges from reference (first diff at byte %d)",
					mm.name, gpn, firstDiff(res.Image, ref.Image))
			}
		}
	}
}

// TestAdaptiveDifferential runs the classifier live: every second cluster
// barrier becomes a classification epoch that may re-route pages between
// engines mid-run. The final image must still match the sequential
// reference, the per-page stats must surface the classifications, and on
// mp3d — whose particle region is partitioned by processor — at least one
// privately-written page must have moved off the initial protocol.
func TestAdaptiveDifferential(t *testing.T) {
	const procs, scale = 4, 0.05
	ref, err := ExecuteCached("mp3d", procs, scale, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, gpn := range []int{1, 4} {
		prog, err := New("mp3d", procs, scale, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOnRuntime(prog, RuntimeConfig{
			PageSize: 1024, Mode: dsm.LazyInvalidate,
			AdaptEveryBarriers: 2, GoroutinesPerNode: gpn,
		})
		if err != nil {
			t.Fatalf("gpn=%d: %v", gpn, err)
		}
		if !bytes.Equal(res.Image, ref.Image) {
			t.Errorf("gpn=%d: adaptive image diverges from reference (first diff at byte %d)",
				gpn, firstDiff(res.Image, ref.Image))
		}
		assertClassified(t, res, "gpn", gpn)
	}
	if testing.Short() {
		return
	}
	// TCP leg: classification epochs and page migrations over a real
	// loopback cluster.
	for _, gpn := range []int{1, 4} {
		prog, err := New("mp3d", procs, scale, diffSeed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOnRuntime(prog, RuntimeConfig{
			PageSize: 1024, Mode: dsm.LazyInvalidate,
			AdaptEveryBarriers: 2, GoroutinesPerNode: gpn,
			Transports: tcpTransports(t, procs/gpn),
		})
		if err != nil {
			t.Fatalf("tcp gpn=%d: %v", gpn, err)
		}
		if !bytes.Equal(res.Image, ref.Image) {
			t.Errorf("tcp gpn=%d: adaptive image diverges from reference (first diff at byte %d)",
				gpn, firstDiff(res.Image, ref.Image))
		}
		assertClassified(t, res, "tcp gpn", gpn)
	}
}

// assertClassified checks the classifier's observable effects on the
// barrier master's stats: some pages carry a sharing-pattern label and
// some page left the initial LI protocol (mp3d's per-processor particle
// pages classify as private and move to SC).
func assertClassified(t *testing.T, res *RuntimeResult, leg string, gpn int) {
	t.Helper()
	classified, moved := 0, 0
	for _, ps := range res.Nodes[0].Pages {
		if ps.Class != "unknown" {
			classified++
		}
		if ps.Mode != dsm.LazyInvalidate.String() {
			moved++
		}
	}
	if classified == 0 {
		t.Errorf("%s=%d: no page carries a sharing classification on the barrier master", leg, gpn)
	}
	if moved == 0 {
		t.Errorf("%s=%d: classifier re-routed no page off the initial protocol", leg, gpn)
	}
}
