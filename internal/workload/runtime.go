package workload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dsm"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/shm"
	"repro/internal/trace"
	"repro/internal/transport"
)

// RuntimeConfig configures a workload execution on the live DSM runtime.
type RuntimeConfig struct {
	// PageSize is the consistency granularity (default 4096).
	PageSize int
	// Mode selects the consistency protocol (LI, LU, EI, EU or SC).
	Mode dsm.Mode
	// ModeMap, when non-empty, routes each page to its own protocol
	// instead of running everything under Mode: a dsm.ParseModeMap spec
	// like "pg0-31=SC,rest=LU" over the space's pages.
	ModeMap string
	// AdaptEveryBarriers turns every k-th cluster barrier into an
	// adaptive classification epoch re-routing pages by their observed
	// sharing pattern (see dsm.Config.AdaptEveryBarriers; 0 disables).
	AdaptEveryBarriers int
	// Placement names the initial page→home policy ("block", "rr",
	// "first-touch"; empty means block — see dsm.ParsePlacement).
	Placement string
	// MigrateHomes re-homes pages to their dominant writer on adaptive
	// epochs (requires AdaptEveryBarriers > 0; see
	// dsm.Config.MigrateHomes).
	MigrateHomes bool
	// GCEveryBarriers enables the runtime's barrier-time garbage
	// collection every k-th episode (0 disables).
	GCEveryBarriers int
	// EagerDiffs restores eager diff creation at interval close in the
	// lazy engines (see dsm.Config.EagerDiffs). Images and message
	// counts are identical either way.
	EagerDiffs bool
	// Latency configures the interconnect time model (zero value uses the
	// runtime default).
	Latency dsm.LatencyModel
	// NoBatch disables the runtime's outbox frame coalescing (see
	// dsm.Config.NoBatch); message counts and program semantics are
	// identical either way.
	NoBatch bool
	// Flush tunes when the outbox flushes a destination beyond the
	// structural flush points (see dsm.FlushPolicy). Zero value keeps
	// the structural points only; ignored with NoBatch.
	Flush dsm.FlushPolicy
	// CompressMin compresses outbound physical frames of at least this
	// many bytes (see dsm.Config.CompressMin). 0 disables; ignored with
	// NoBatch.
	CompressMin int
	// GoroutinesPerNode multiplexes the program's logical processors over
	// fewer DSM nodes: with k > 1 the cluster has NumProcs/k nodes
	// (NumProcs must be divisible by k) and logical processor p runs as
	// an application goroutine on node p mod (NumProcs/k) — the
	// oversubscribed-node shape. 0 and 1 mean one goroutine per node.
	// Lock contention between co-located processors resolves by local
	// handoff and barriers rendezvous locally before the node arrives at
	// the cluster barrier, so the program observes identical consistency
	// semantics at any k.
	GoroutinesPerNode int
	// RPCTimeout bounds every remote wait (rpc responses and master
	// rendezvous collection) in the underlying systems; see
	// dsm.Config.RPCTimeout. 0 waits forever.
	RPCTimeout time.Duration
	// Metrics, when non-nil, has every system publish its live counters
	// into the registry (see dsm.Config.Metrics).
	Metrics *obs.Registry
	// Tracer, when non-nil, records protocol events from every system
	// into the shared ring (see dsm.Config.Tracer).
	Tracer *obs.Tracer
	// OnSystems, when non-nil, is called with the run's systems after
	// they are built and before any program goroutine starts — the hook
	// for serving live status (obs.StartServer with the first system's
	// Status) or installing watchdogs. The systems are owned by the run;
	// do not Close them from the hook.
	OnSystems func([]*dsm.System)
	// Transports supplies the interconnect. Nil runs the whole cluster
	// over the default in-process network. Otherwise one dsm.System is
	// built per transport instance and program bodies run on every local
	// node of every instance — a loopback TCP cluster passes all of its
	// transports here; a genuinely multi-process run passes just this
	// process's. Each transport must span exactly the cluster's node
	// count (NumProcs/GoroutinesPerNode), and across processes their
	// local endpoints must partition it. The final image is read by node
	// 0, so only the run hosting node 0 reports one.
	Transports []dsm.Transport
}

// RuntimeResult is a completed runtime execution.
type RuntimeResult struct {
	// Name is the workload's name.
	Name string
	// Image is the final shared-memory image (Config().SpaceSize bytes),
	// read out by node 0 after a closing barrier — for a properly-
	// synchronized program it must equal the lockstep reference image.
	// Nil when node 0 lives in another process (its run reports it).
	Image []byte
	// Net is the interconnect's message/byte totals across this run's
	// transports, including the closing barriers and the image read-out.
	Net dsm.TransportStats
	// Elapsed is the interconnect time model's estimate for the traffic.
	Elapsed time.Duration
	// Nodes holds each node's protocol counters, indexed by node id
	// (zero-valued for nodes hosted by other processes). With
	// GoroutinesPerNode > 1 there are NumProcs/GoroutinesPerNode nodes,
	// each serving its co-located logical processors.
	Nodes []dsm.Stats
}

// nodeErr carries a DSM error out of a Program body through panic; the
// runtime driver recovers it. Ctx has no error returns (program bodies are
// written against an infallible shared memory), and DSM operations only
// fail when the interconnect shuts down.
type nodeErr struct{ err error }

// nodeCtx adapts one dsm.Node to the Ctx interface through the typed
// shared-memory façade: value-carrying operations go through shm handles
// at the trace's addresses, so the encoding lives in one place. Each
// logical processor gets its own nodeCtx (driven by exactly one
// goroutine); with GoroutinesPerNode > 1 several share one node.
type nodeCtx struct {
	n     *dsm.Node
	proc  int
	procs int
	buf   []byte
}

func (c *nodeCtx) Proc() int     { return c.proc }
func (c *nodeCtx) NumProcs() int { return c.procs }

func (c *nodeCtx) check(err error) {
	if err != nil {
		panic(nodeErr{err})
	}
}

func (c *nodeCtx) scratch(size int) []byte {
	if cap(c.buf) < size {
		c.buf = make([]byte, size)
	}
	return c.buf[:size]
}

func (c *nodeCtx) Read(addr mem.Addr, size int) {
	c.check(c.n.Read(c.scratch(size), addr))
}

func (c *nodeCtx) Write(addr mem.Addr, size int) {
	b := c.scratch(size)
	trace.FillRange(b, addr)
	c.check(c.n.Write(addr, b))
}

func (c *nodeCtx) Update(addr mem.Addr, size int) {
	b := c.scratch(size)
	c.check(c.n.Read(b, addr))
	for i := range b {
		b[i]++
	}
	c.check(c.n.Write(addr, b))
}

func (c *nodeCtx) WriteUint64(addr mem.Addr, v uint64) {
	c.check(shm.VarAt[uint64](addr).Store(c.n, v))
}

func (c *nodeCtx) ReadUint64(addr mem.Addr) uint64 {
	v, err := shm.VarAt[uint64](addr).Load(c.n)
	c.check(err)
	return v
}

func (c *nodeCtx) FetchAddUint64(addr mem.Addr, delta uint64) uint64 {
	v, err := shm.VarAt[uint64](addr).Add(c.n, delta)
	c.check(err)
	return v
}

func (c *nodeCtx) Acquire(l int) { c.check(shm.LockAt(mem.LockID(l)).Acquire(c.n)) }
func (c *nodeCtx) Release(l int) { c.check(shm.LockAt(mem.LockID(l)).Release(c.n)) }
func (c *nodeCtx) Barrier(b int) { c.check(shm.BarrierAt(mem.BarrierID(b)).Wait(c.n)) }

// RunOnRuntime executes the program on the live DSM runtime: one genuinely
// concurrent goroutine per logical processor, driving its node (its own
// with the default GoroutinesPerNode of one, a shared one when
// oversubscribed), with locks and barriers mapped to the runtime's
// synchronization operations. After every body returns, all processors
// run one closing barrier (id Config().NumBarriers, outside the
// program's range) so node 0's vector clock covers every interval,
// processor 0 reads the whole space out as the final image, and a second
// closing barrier holds every node alive — in this process or another —
// until the read-out has been served.
func RunOnRuntime(p Program, rc RuntimeConfig) (*RuntimeResult, error) {
	cfg := p.Config()
	if rc.PageSize == 0 {
		rc.PageSize = 4096
	}
	gpn := rc.GoroutinesPerNode
	if gpn == 0 {
		gpn = 1
	}
	if gpn < 0 || cfg.NumProcs%gpn != 0 {
		return nil, fmt.Errorf("workload %s on runtime (%s): %d goroutines per node does not divide %d processors",
			p.Name(), rc.Mode, gpn, cfg.NumProcs)
	}
	nodes := cfg.NumProcs / gpn
	transports := rc.Transports
	if transports == nil {
		transports = []dsm.Transport{nil} // default in-process network
	} else if len(transports) == 0 {
		// An accidentally-emptied slice must not "succeed" with zero
		// systems, a nil image and no traffic.
		return nil, fmt.Errorf("workload %s on runtime (%s): empty transport list", p.Name(), rc.Mode)
	}
	placement, err := dsm.ParsePlacement(rc.Placement)
	if err != nil {
		for _, tr := range transports {
			if tr != nil {
				tr.Close()
			}
		}
		return nil, fmt.Errorf("workload %s on runtime (%s): %w", p.Name(), rc.Mode, err)
	}
	var modeMap []dsm.Mode
	if rc.ModeMap != "" {
		numPages := (cfg.SpaceSize + mem.Addr(rc.PageSize) - 1) / mem.Addr(rc.PageSize)
		var err error
		modeMap, err = dsm.ParseModeMap(rc.ModeMap, int(numPages))
		if err != nil {
			for _, tr := range transports {
				if tr != nil {
					tr.Close()
				}
			}
			return nil, fmt.Errorf("workload %s on runtime (%s): %w", p.Name(), rc.Mode, err)
		}
	}
	systems := make([]*dsm.System, 0, len(transports))
	closeAll := func() {
		for _, sys := range systems {
			sys.Close()
		}
	}
	for i, tr := range transports {
		sys, err := dsm.New(dsm.Config{
			Procs:              nodes,
			SpaceSize:          cfg.SpaceSize,
			PageSize:           rc.PageSize,
			Mode:               rc.Mode,
			ModeMap:            modeMap,
			AdaptEveryBarriers: rc.AdaptEveryBarriers,
			Placement:          placement,
			MigrateHomes:       rc.MigrateHomes,
			GCEveryBarriers:    rc.GCEveryBarriers,
			EagerDiffs:         rc.EagerDiffs,
			Latency:            rc.Latency,
			NoBatch:            rc.NoBatch,
			Flush:              rc.Flush,
			CompressMin:        rc.CompressMin,
			GoroutinesPerNode:  gpn,
			RPCTimeout:         rc.RPCTimeout,
			Metrics:            rc.Metrics,
			Tracer:             rc.Tracer,
			Transport:          tr,
		})
		if err != nil {
			// dsm.New closed tr; close the systems already built and the
			// transports not yet handed over.
			closeAll()
			for _, rest := range transports[i+1:] {
				if rest != nil {
					rest.Close()
				}
			}
			return nil, err
		}
		systems = append(systems, sys)
	}
	defer closeAll()
	if rc.OnSystems != nil {
		rc.OnSystems(systems)
	}

	res := &RuntimeResult{Name: p.Name()}
	syncBarrier := mem.BarrierID(cfg.NumBarriers)        // all writes visible
	readoutBarrier := mem.BarrierID(cfg.NumBarriers + 1) // image read served
	errs := make([]error, cfg.NumProcs)
	var wg sync.WaitGroup
	for _, sys := range systems {
		for _, node := range sys.Local() {
			// Logical processor p runs on node p mod nodes: every node
			// hosts exactly gpn concurrent program goroutines.
			for lp := int(node.ID()); lp < cfg.NumProcs; lp += nodes {
				wg.Add(1)
				go func(node *dsm.Node, proc int) {
					defer wg.Done()
					ctx := &nodeCtx{n: node, proc: proc, procs: cfg.NumProcs}
					err := func() (err error) {
						defer func() {
							if r := recover(); r != nil {
								ne, ok := r.(nodeErr)
								if !ok {
									panic(r) // workload bug, not a DSM failure
								}
								err = ne.err
							}
						}()
						p.Proc(ctx)
						// Closing barrier: every processor's modifications
						// become visible to node 0 before the image
						// read-out.
						if err := node.Barrier(syncBarrier); err != nil {
							return err
						}
						if proc == 0 {
							img := make([]byte, cfg.SpaceSize)
							if err := node.Read(img, 0); err != nil {
								return err
							}
							res.Image = img
						}
						// Read-out barrier: peers — possibly in other
						// processes — stay alive serving pages and diffs
						// until node 0 has the image.
						return node.Barrier(readoutBarrier)
					}()
					if err != nil {
						errs[proc] = err
						closeAll() // unblock peers stuck in protocol operations
					}
				}(node, lp)
			}
		}
	}
	wg.Wait()
	// Prefer a root-cause error over the secondary "transport closed"
	// failures the shutdown induces on the other nodes.
	failed, first := -1, -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if first == -1 {
			first = i
		}
		if failed == -1 && !errors.Is(err, dsm.ErrClosed) {
			failed = i
		}
	}
	if failed == -1 {
		failed = first
	}
	if failed != -1 {
		return nil, fmt.Errorf("workload %s on runtime (%s): processor %d: %w", p.Name(), rc.Mode, failed, errs[failed])
	}
	res.Nodes = make([]dsm.Stats, nodes)
	for _, sys := range systems {
		res.Net.Add(sys.NetStats())
		for _, node := range sys.Local() {
			res.Nodes[node.ID()] = node.Stats()
		}
	}
	lat := rc.Latency
	if lat == (dsm.LatencyModel{}) {
		lat = transport.DefaultLatency
	}
	// Charged per physical frame: batching's message coalescing shows up
	// in the wire-time estimate, not just the frame counts.
	res.Elapsed = lat.EstimateStats(res.Net)
	// Surface protocol and transport teardown errors (e.g. an
	// undeliverable lock grant, a peer's broken stream): a clean run must
	// close cleanly.
	var closeErrs []error
	for _, sys := range systems {
		if err := sys.Close(); err != nil {
			closeErrs = append(closeErrs, err)
		}
	}
	if err := errors.Join(closeErrs...); err != nil {
		return nil, fmt.Errorf("workload %s on runtime (%s): %w", p.Name(), rc.Mode, err)
	}
	return res, nil
}
