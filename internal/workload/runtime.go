package workload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dsm"
	"repro/internal/mem"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// RuntimeConfig configures a workload execution on the live DSM runtime.
type RuntimeConfig struct {
	// PageSize is the consistency granularity (default 4096).
	PageSize int
	// Mode selects the consistency protocol (LI, LU, EI, EU or SC).
	Mode dsm.Mode
	// GCEveryBarriers enables the runtime's barrier-time garbage
	// collection every k-th episode (0 disables).
	GCEveryBarriers int
	// Latency configures the interconnect time model (zero value uses the
	// runtime default).
	Latency simnet.LatencyModel
}

// RuntimeResult is a completed runtime execution.
type RuntimeResult struct {
	// Name is the workload's name.
	Name string
	// Image is the final shared-memory image (Config().SpaceSize bytes),
	// read out by node 0 after a closing barrier — for a properly-
	// synchronized program it must equal the lockstep reference image.
	Image []byte
	// Net is the interconnect's global message/byte totals, including the
	// closing barrier and the image read-out.
	Net simnet.Stats
	// Elapsed is the interconnect time model's estimate for the traffic.
	Elapsed time.Duration
	// Nodes holds each node's protocol counters.
	Nodes []dsm.Stats
}

// nodeErr carries a DSM error out of a Program body through panic; the
// runtime driver recovers it. Ctx has no error returns (program bodies are
// written against an infallible shared memory), and DSM operations only
// fail when the interconnect shuts down.
type nodeErr struct{ err error }

// nodeCtx adapts one dsm.Node to the Ctx interface. It is driven by
// exactly one goroutine.
type nodeCtx struct {
	n     *dsm.Node
	procs int
	buf   []byte
}

func (c *nodeCtx) Proc() int     { return int(c.n.ID()) }
func (c *nodeCtx) NumProcs() int { return c.procs }

func (c *nodeCtx) check(err error) {
	if err != nil {
		panic(nodeErr{err})
	}
}

func (c *nodeCtx) scratch(size int) []byte {
	if cap(c.buf) < size {
		c.buf = make([]byte, size)
	}
	return c.buf[:size]
}

func (c *nodeCtx) Read(addr mem.Addr, size int) {
	c.check(c.n.Read(c.scratch(size), addr))
}

func (c *nodeCtx) Write(addr mem.Addr, size int) {
	b := c.scratch(size)
	trace.FillRange(b, addr)
	c.check(c.n.Write(addr, b))
}

func (c *nodeCtx) Update(addr mem.Addr, size int) {
	b := c.scratch(size)
	c.check(c.n.Read(b, addr))
	for i := range b {
		b[i]++
	}
	c.check(c.n.Write(addr, b))
}

func (c *nodeCtx) WriteUint64(addr mem.Addr, v uint64) {
	c.check(c.n.WriteUint64(addr, v))
}

func (c *nodeCtx) ReadUint64(addr mem.Addr) uint64 {
	v, err := c.n.ReadUint64(addr)
	c.check(err)
	return v
}

func (c *nodeCtx) FetchAddUint64(addr mem.Addr, delta uint64) uint64 {
	v := c.ReadUint64(addr)
	c.WriteUint64(addr, v+delta)
	return v
}

func (c *nodeCtx) Acquire(l int) { c.check(c.n.Acquire(mem.LockID(l))) }
func (c *nodeCtx) Release(l int) { c.check(c.n.Release(mem.LockID(l))) }
func (c *nodeCtx) Barrier(b int) { c.check(c.n.Barrier(mem.BarrierID(b))) }

// RunOnRuntime executes the program on the live DSM runtime: one genuinely
// concurrent goroutine per processor, each driving its own dsm.Node, with
// locks and barriers mapped to the runtime's synchronization operations.
// After every body returns, the nodes run one closing barrier (id
// Config().NumBarriers, outside the program's range) so node 0's vector
// clock covers every interval, and node 0 reads the whole space out as the
// final image.
func RunOnRuntime(p Program, rc RuntimeConfig) (*RuntimeResult, error) {
	cfg := p.Config()
	if rc.PageSize == 0 {
		rc.PageSize = 4096
	}
	sys, err := dsm.New(dsm.Config{
		Procs:           cfg.NumProcs,
		SpaceSize:       cfg.SpaceSize,
		PageSize:        rc.PageSize,
		Mode:            rc.Mode,
		GCEveryBarriers: rc.GCEveryBarriers,
		Latency:         rc.Latency,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()

	res := &RuntimeResult{Name: p.Name()}
	finalBarrier := mem.BarrierID(cfg.NumBarriers)
	errs := make([]error, cfg.NumProcs)
	var wg sync.WaitGroup
	for i := 0; i < cfg.NumProcs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := &nodeCtx{n: sys.Node(id), procs: cfg.NumProcs}
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						ne, ok := r.(nodeErr)
						if !ok {
							panic(r) // workload bug, not a DSM failure
						}
						err = ne.err
					}
				}()
				p.Proc(ctx)
				// Closing barrier: every node's modifications become
				// visible to node 0 before the image read-out.
				return ctx.n.Barrier(finalBarrier)
			}()
			if err != nil {
				errs[id] = err
				// Unblock peers stuck in protocol operations.
				sys.Close()
				return
			}
			if id == 0 {
				img := make([]byte, cfg.SpaceSize)
				if err := ctx.n.Read(img, 0); err != nil {
					errs[id] = err
					sys.Close()
					return
				}
				res.Image = img
			}
		}(i)
	}
	wg.Wait()
	// Prefer a root-cause error over the secondary "network closed"
	// failures the shutdown induces on the other nodes.
	failed, first := -1, -1
	for i, err := range errs {
		if err == nil {
			continue
		}
		if first == -1 {
			first = i
		}
		if failed == -1 && !errors.Is(err, simnet.ErrClosed) {
			failed = i
		}
	}
	if failed == -1 {
		failed = first
	}
	if failed != -1 {
		return nil, fmt.Errorf("workload %s on runtime (%s): node %d: %w", p.Name(), rc.Mode, failed, errs[failed])
	}
	res.Net = sys.NetStats()
	res.Elapsed = sys.EstimateTime()
	for i := 0; i < cfg.NumProcs; i++ {
		res.Nodes = append(res.Nodes, sys.Node(i).Stats())
	}
	// Surface protocol errors the handler goroutines recorded (e.g. an
	// undeliverable lock grant): a clean run must close cleanly.
	if err := sys.Close(); err != nil {
		return nil, fmt.Errorf("workload %s on runtime (%s): %w", p.Name(), rc.Mode, err)
	}
	return res, nil
}
