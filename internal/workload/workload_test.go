package workload

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

const (
	testProcs = 8
	testScale = 0.1
	testSeed  = 7
)

func genAll(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	out := map[string]*trace.Trace{}
	for _, name := range Names {
		tr, err := GenerateCached(name, testProcs, testScale, testSeed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tr
	}
	return out
}

func TestAllWorkloadsGenerateValidTraces(t *testing.T) {
	for name, tr := range genAll(t) {
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", name, err)
		}
		if tr.Name != name {
			t.Errorf("%s: trace named %q", name, tr.Name)
		}
		if tr.NumProcs != testProcs {
			t.Errorf("%s: NumProcs = %d", name, tr.NumProcs)
		}
		c := tr.Count()
		ops := c.Reads + c.Writes + c.Acquires + c.Releases + c.BarrierArrivals
		if ops < 1000 {
			t.Errorf("%s: only %d operations", name, ops)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	for _, name := range Names {
		p1, err := New(name, testProcs, testScale, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := Generate(p1)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := New(name, testProcs, testScale, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := Generate(p2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t1.Events, t2.Events) {
			t.Errorf("%s: two generations with the same seed differ", name)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	p1, _ := New("locusroute", testProcs, testScale, 1)
	t1, err := Generate(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := New("locusroute", testProcs, testScale, 2)
	t2, err := Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(t1.Events, t2.Events) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateCachedReturnsSameTrace(t *testing.T) {
	a, err := GenerateCached("water", testProcs, testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCached("water", testProcs, testScale, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned distinct traces for identical parameters")
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New("bogus", 8, 1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := New("water", 0, 1, 1); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := New("water", 8, -1, 1); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := Generate(&LocusRoute{Procs: 100}); err == nil {
		t.Error("processor count above 64 accepted")
	}
}

func TestWorkloadCharacters(t *testing.T) {
	// Each program's synchronization mix must match its §5.2 description.
	traces := genAll(t)

	lr := traces["locusroute"].Count()
	if lr.Acquires < 50 || lr.BarrierArrivals > testProcs {
		t.Errorf("locusroute: lock-dominated expected: %+v", lr)
	}

	ch := traces["cholesky"].Count()
	if ch.BarrierArrivals > testProcs { // only the fork barrier
		t.Errorf("cholesky: should use no barriers beyond the fork: %+v", ch)
	}
	if ch.Acquires < 30 {
		t.Errorf("cholesky: lock-based task queue expected: %+v", ch)
	}

	mp := traces["mp3d"].Count()
	if mp.BarrierArrivals < 4*testProcs {
		t.Errorf("mp3d: barrier-per-phase expected: %+v", mp)
	}

	wa := traces["water"].Count()
	if wa.BarrierArrivals < 4*testProcs || wa.Acquires < 20 {
		t.Errorf("water: barriers plus molecule locks expected: %+v", wa)
	}

	pt := traces["pthor"].Count()
	perEvent := float64(pt.Acquires) / float64(len(traces["pthor"].Events))
	if perEvent < 0.05 {
		t.Errorf("pthor: lock-heavy expected, acquires are %.1f%% of events", 100*perEvent)
	}

	// Water communicates least: fewest shared accesses per processor.
	if len(traces["water"].Events) >= len(traces["pthor"].Events) {
		t.Error("water trace not smaller than pthor's")
	}
}

func TestLockContentionProducesFIFOGrants(t *testing.T) {
	// A program where every processor fights over one lock: grants must
	// alternate (FIFO), never granting a held lock.
	tr, err := Generate(&contended{procs: 4, iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	c := tr.Count()
	if c.Acquires != 40 || c.Releases != 40 {
		t.Errorf("contended counts: %+v", c)
	}
}

// contended is a minimal test program: all processors hammer one lock.
type contended struct {
	procs, iters int
}

func (c *contended) Name() string { return "contended" }
func (c *contended) Config() Config {
	return Config{NumProcs: c.procs, SpaceSize: 4096, NumLocks: 1, NumBarriers: 1}
}
func (c *contended) Proc(ctx Ctx) {
	for i := 0; i < c.iters; i++ {
		Locked(ctx, 0, func() {
			ctx.Update(0, 8)
		})
	}
	ctx.Barrier(0)
}

// barrierHeavy exercises repeated barrier episodes with the same id.
type barrierHeavy struct {
	procs, rounds int
}

func (b *barrierHeavy) Name() string { return "barrierheavy" }
func (b *barrierHeavy) Config() Config {
	return Config{NumProcs: b.procs, SpaceSize: 4096, NumLocks: 1, NumBarriers: 1}
}
func (b *barrierHeavy) Proc(ctx Ctx) {
	for i := 0; i < b.rounds; i++ {
		ctx.Write(mem.Addr(ctx.Proc()*64), 8)
		ctx.Barrier(0)
	}
}

func TestRepeatedBarrierEpisodes(t *testing.T) {
	tr, err := Generate(&barrierHeavy{procs: 4, rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Count()
	if c.BarrierArrivals != 20 {
		t.Errorf("BarrierArrivals = %d, want 20", c.BarrierArrivals)
	}
}

func TestCtxHelpers(t *testing.T) {
	r, err := Execute(&helperProg{})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Trace.Count()
	if c.Reads != 5 || c.Writes != 4 { // Update/AddVal = read+write each
		t.Errorf("helper counts: %+v", c)
	}
	// The image reflects the value semantics: the update incremented bytes
	// [0,8), the fill write landed at [16,24), and the counter at 32 holds
	// its two fetch-add deltas.
	img := r.Image
	if img[0] != 1 {
		t.Errorf("img[0] = %d after one update, want 1", img[0])
	}
	for i := 16; i < 24; i++ {
		if img[i] != trace.Fill(mem.Addr(i)) {
			t.Errorf("img[%d] = %#x, want fill %#x", i, img[i], trace.Fill(mem.Addr(i)))
		}
	}
	if got := binary.LittleEndian.Uint64(img[32:]); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
	if !reflect.DeepEqual(r.Trace.Image(), img) {
		t.Error("trace value replay diverges from execution image")
	}
}

type helperProg struct{}

func (h *helperProg) Name() string { return "helper" }
func (h *helperProg) Config() Config {
	return Config{NumProcs: 1, SpaceSize: 4096, NumLocks: 1, NumBarriers: 1}
}
func (h *helperProg) Proc(ctx Ctx) {
	if ctx.NumProcs() != 1 || ctx.Proc() != 0 {
		panic("ctx identity wrong")
	}
	ctx.Update(0, 8)
	ctx.Read(8, 8)
	ctx.Write(16, 8)
	if got := ctx.FetchAddUint64(32, 3); got != 0 {
		panic("fetch-add did not start at zero")
	}
	if got := ctx.FetchAddUint64(32, 4); got != 3 {
		panic("fetch-add lost the first delta")
	}
	if got := ctx.ReadUint64(32); got != 7 {
		panic("read-back of counter wrong")
	}
}

func TestSpaceAllocator(t *testing.T) {
	var s Space
	r1 := s.AllocArray(10, 8)
	r2 := s.AllocArray(3, 512)
	if r1.Base != 0 || r1.Size != 80 {
		t.Errorf("r1 = %+v", r1)
	}
	if r2.Base%512 != 0 {
		t.Errorf("r2 not page-aligned: %+v", r2)
	}
	if r2.Base < r1.Base+r1.Size {
		t.Error("regions overlap")
	}
	if got := r1.Elem(2, 8); got != 16 {
		t.Errorf("Elem = %d", got)
	}
}

func TestRegionAtPanicsOutside(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-region offset accepted")
		}
	}()
	Region{Base: 0, Size: 8}.At(8)
}

func TestSpaceAllocBadAlign(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad alignment accepted")
		}
	}()
	var s Space
	s.Alloc(8, 3)
}

func TestSplitRNGIsStable(t *testing.T) {
	if splitRNG(1, 2) != splitRNG(1, 2) {
		t.Error("splitRNG not deterministic")
	}
	if splitRNG(1, 2) == splitRNG(1, 3) || splitRNG(1, 2) == splitRNG(2, 2) {
		t.Error("splitRNG collides on adjacent lanes")
	}
}
