package workload

import (
	"fmt"
	"sync"

	"repro/internal/trace"
)

// Names lists the five workloads in the paper's presentation order,
// plus the synthetic writer-dominant placement workload.
var Names = []string{"locusroute", "cholesky", "mp3d", "water", "pthor", "partition"}

// New constructs a workload by name. procs is the processor count (the
// paper used 16), scale multiplies the workload size (1.0 is this
// repository's standard configuration), and seed fixes the pseudo-random
// structure.
func New(name string, procs int, scale float64, seed int64) (Program, error) {
	if procs <= 0 {
		return nil, fmt.Errorf("workload: processor count %d must be positive", procs)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale %g must be positive", scale)
	}
	switch name {
	case "locusroute":
		return NewLocusRoute(procs, scale, seed), nil
	case "cholesky":
		return NewCholesky(procs, scale, seed), nil
	case "mp3d":
		return NewMP3D(procs, scale, seed), nil
	case "water":
		return NewWater(procs, scale, seed), nil
	case "pthor":
		return NewPthor(procs, scale, seed), nil
	case "partition":
		return NewPartition(procs, scale, seed), nil
	default:
		return nil, fmt.Errorf("workload: unknown workload %q (want one of %v)", name, Names)
	}
}

type cacheKey struct {
	name  string
	procs int
	scale float64
	seed  int64
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*Result{}
)

// ExecuteCached runs the named workload on the lockstep backend, memoizing
// the result: the simulator replays one trace against many (protocol, page
// size) combinations, exactly as the paper generated each application's
// trace once, and the differential tests compare many runtime executions
// against one reference image. Callers must not mutate the returned
// Result.
func ExecuteCached(name string, procs int, scale float64, seed int64) (*Result, error) {
	key := cacheKey{name, procs, scale, seed}
	cacheMu.Lock()
	r, ok := cache[key]
	cacheMu.Unlock()
	if ok {
		return r, nil
	}
	prog, err := New(name, procs, scale, seed)
	if err != nil {
		return nil, err
	}
	r, err = Execute(prog)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	cache[key] = r
	cacheMu.Unlock()
	return r, nil
}

// GenerateCached generates the named workload's trace, memoized (see
// ExecuteCached).
func GenerateCached(name string, procs int, scale float64, seed int64) (*trace.Trace, error) {
	r, err := ExecuteCached(name, procs, scale, seed)
	if err != nil {
		return nil, err
	}
	return r.Trace, nil
}
