package dsm

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/vc"
	"repro/internal/wire"
)

// router is the per-page protocol dispatcher: it implements the engine
// interface the Node drives, holds one constructed engine per resident
// protocol, and routes every page access, every page-keyed handler
// message and every synchronization payload to the engine owning that
// page. A single-mode system is simply a router with one resident.
//
// The mode table is the only mutable routing state. Reads are atomic and
// lock-free (every access and handler dispatch consults it); writes
// happen only inside the barrier-time reclassification rendezvous, while
// every application goroutine cluster-wide is parked, so no page ever has
// traffic in flight under two modes at once (see adaptive.go).
//
// On shared synchronization messages (lock requests/grants, barrier
// arrivals/exits) each resident engine's consistency payload travels as a
// mode-tagged wire.Section: the router fans the hook out to every
// resident in canonical Mode order, collects each engine's scratch
// payload into its section, and on receive hands each engine a view of
// exactly its own section. Canonical order matters: engines that
// rendezvous inside their hooks (two resident lazy engines each running a
// GC exchange) must do so in the same order on every node.
type router struct {
	n *Node
	// modeTab[pg] is the page's current protocol (a Mode), read on every
	// access and handler dispatch.
	modeTab []atomic.Int32
	// homeTab[pg] is the page's current home node, read on every
	// protocol operation that addresses a home (directory transactions,
	// cold fetches, flush targets). Initialized by Config.Placement and
	// re-written only inside the quiescent reclassification rendezvous
	// (first-touch finalization, home migration) — the mode table's
	// exact discipline.
	homeTab []atomic.Int32
	// classTab[pg] is the page's last classification (a pageClass), for
	// stats; classUnknown before the first adaptive epoch.
	classTab []atomic.Int32
	// engines is indexed by Mode; nil entries are not resident. residents
	// lists the non-nil ones in canonical order.
	engines   [8]engine
	order     []Mode
	residents []engine

	// ctr is the per-page access counter table feeding the adaptive
	// classifier and the per-page stats surface.
	ctr []pageCounter
	// prevCtr is the previous classification epoch's counter snapshot
	// (leader-only: touched by the barrier leader inside the adaptive
	// exchange, never concurrently).
	prevCtr []counterDelta
	// epoch is the classification epoch, bumped in lockstep cluster-wide
	// whenever a reclassification actually re-routes or re-homes pages.
	// The barrier master validates every node reports the same epoch
	// before trusting its counters.
	epoch atomic.Uint32
	// ftDone is set once the first-touch exchange has run (leader-only:
	// touched by the barrier leader inside the cluster barrier, never
	// concurrently). Always true for the static placements.
	ftDone bool
}

// pageCounter is one page's live access counters. All fields are atomics:
// application goroutines tick the local side, shard workers and directory
// transactions tick the remote side, and snapshots never block protocol
// work.
type pageCounter struct {
	localReads   atomic.Int64
	localWrites  atomic.Int64
	remoteReads  atomic.Int64 // reads served here for other nodes
	remoteWrites atomic.Int64 // writes/flushes/notices from other nodes
	diffs        atomic.Int64 // diffs and write-backs applied to this page
	// writers is the bitmask of nodes observed writing since the last
	// classification snapshot (swapped to zero there); writersEver is the
	// cumulative mask for the stats surface.
	writers     atomic.Uint64
	writersEver atomic.Uint64
}

// counterDelta is one page's counter values over one classification
// epoch, as shipped to the barrier master.
type counterDelta struct {
	localReads, localWrites   int64
	remoteReads, remoteWrites int64
	diffs                     int64
	writers                   uint64
}

// newRouter builds the node's engine set for a per-page mode table.
// With adaptation enabled the classifier's target protocols are resident
// from the start even if no page initially routes to them, so a re-route
// never has to construct (and somehow synchronize) a new engine
// mid-run.
func newRouter(n *Node, modes []Mode, adaptive bool) *router {
	numPages := n.sys.layout.NumPages()
	r := &router{
		n:        n,
		modeTab:  make([]atomic.Int32, numPages),
		homeTab:  make([]atomic.Int32, numPages),
		classTab: make([]atomic.Int32, numPages),
		ctr:      make([]pageCounter, numPages),
		prevCtr:  make([]counterDelta, numPages),
		ftDone:   n.sys.cfg.Placement != PlaceFirstTouch,
	}
	for pg, m := range modes {
		r.modeTab[pg].Store(int32(m))
	}
	for pg, h := range initialHomes(n.sys.cfg.Placement, numPages, n.sys.cfg.Procs) {
		r.homeTab[pg].Store(int32(h))
	}
	// The engine constructors below read the home table through
	// n.homeOf (directory init), so the router must be reachable from
	// the node before any engine is built.
	n.rt = r
	need := distinctModes(modes)
	if adaptive {
		need = append(need, adaptTargets...)
		need = distinctModes(need)
	}
	r.order = need
	for _, m := range need {
		var e engine
		switch m {
		case LazyInvalidate, LazyUpdate:
			e = newLazyEngine(n, m == LazyUpdate)
		case EagerInvalidate, EagerUpdate:
			e = newEagerEngine(n, m == EagerUpdate)
		case SeqConsistent:
			e = newSCEngine(n)
		default:
			panic(fmt.Sprintf("dsm: node %d: unvalidated mode %d in mode map", n.id, m))
		}
		r.engines[m] = e
		r.residents = append(r.residents, e)
	}
	return r
}

// modeOf returns page pg's current protocol.
func (r *router) modeOf(pg mem.PageID) Mode {
	return Mode(r.modeTab[pg].Load())
}

// engineFor returns the engine currently owning page pg.
func (r *router) engineFor(pg mem.PageID) engine {
	return r.engines[r.modeOf(pg)]
}

// homeOf returns page pg's current home node.
func (r *router) homeOf(pg mem.PageID) mem.ProcID {
	return mem.ProcID(r.homeTab[pg].Load())
}

// homes snapshots the current home table.
func (r *router) homes() []mem.ProcID {
	out := make([]mem.ProcID, len(r.homeTab))
	for pg := range r.homeTab {
		out[pg] = mem.ProcID(r.homeTab[pg].Load())
	}
	return out
}

// snapshotClaims builds this node's first-touch claims: every page with
// local activity before the first cluster barrier, scored by access
// count. Called by the barrier leader goroutine only.
func (r *router) snapshotClaims() []homeClaim {
	var out []homeClaim
	for pg := range r.ctr {
		c := &r.ctr[pg]
		n := c.localReads.Load() + c.localWrites.Load()
		if n <= 0 {
			continue
		}
		score := uint32(n)
		if n > int64(^uint32(0)) {
			score = ^uint32(0)
		}
		out = append(out, homeClaim{pg: mem.PageID(pg), score: score})
	}
	return out
}

// lazyResident returns mode's engine if it is a resident lazy engine
// (the KDiffReq routing tag), nil otherwise.
func (r *router) lazyResident(m Mode) engine {
	if m == LazyInvalidate || m == LazyUpdate {
		return r.engines[m]
	}
	return nil
}

// --- access routing ---

func (r *router) readPage(pg mem.PageID, off int, dst []byte) error {
	r.ctr[pg].localReads.Add(1)
	return r.engineFor(pg).readPage(pg, off, dst)
}

func (r *router) writePage(pg mem.PageID, off int, src []byte) error {
	c := &r.ctr[pg]
	c.localWrites.Add(1)
	bit := uint64(1) << r.n.id
	c.writers.Or(bit)
	c.writersEver.Or(bit)
	return r.engineFor(pg).writePage(pg, off, src)
}

// --- handler routing ---

// handle routes engine traffic. Page-keyed kinds go to the engine that
// owns the page (its verdict is final: a kind the owner does not speak is
// recorded by the caller, exactly as a single-mode node would); diff
// requests route by the requesting engine's mode tag (B), so two
// resident lazy engines keep separate diff stores; anything else — an
// invalid page id included — falls through to the residents in canonical
// order, preserving each engine's own handler-side validation errors.
func (r *router) handle(m *wire.Msg, src mem.ProcID) bool {
	switch m.Kind {
	case wire.KPageReq, wire.KPageResp, wire.KFetch, wire.KInval, wire.KUpdate,
		wire.KFlushReq, wire.KFlushDone, wire.KWriteReq, wire.KWriteResp:
		if pg, ok := pageOf(r.n.sys.layout, m.A); ok {
			r.notePageTraffic(pg, m)
			return r.engineFor(pg).handle(m, src)
		}
	case wire.KDiffReq:
		if e := r.lazyResident(Mode(m.B)); e != nil {
			return e.handle(m, src)
		}
	}
	for _, e := range r.residents {
		if e.handle(m, src) {
			return true
		}
	}
	return false
}

// notePageTraffic ticks the remote-side access counters for an incoming
// page-keyed message (ids already bounds-checked by the caller; the
// writer id B is engine-validated later, so an out-of-range forgery is
// merely not counted).
func (r *router) notePageTraffic(pg mem.PageID, m *wire.Msg) {
	c := &r.ctr[pg]
	switch m.Kind {
	case wire.KPageReq, wire.KFetch:
		c.remoteReads.Add(1)
	case wire.KWriteReq, wire.KFlushReq:
		c.remoteWrites.Add(1)
		if r.n.validProc(mem.ProcID(m.B)) {
			bit := uint64(1) << uint(m.B)
			c.writers.Or(bit)
			c.writersEver.Or(bit)
		}
	}
}

// noteRemoteWriter records a write notice observed for page pg from
// proc, for the classifier (called by the lazy engines while absorbing
// interval records).
func (r *router) noteRemoteWriter(pg mem.PageID, proc mem.ProcID) {
	c := &r.ctr[pg]
	c.remoteWrites.Add(1)
	bit := uint64(1) << uint(proc)
	c.writers.Or(bit)
	c.writersEver.Or(bit)
}

// noteDiffApplied records a diff (or eager write-back/update) applied to
// page pg — the false-sharing traffic signal.
func (r *router) noteDiffApplied(pg mem.PageID) {
	r.ctr[pg].diffs.Add(1)
}

// --- mode-tagged section fan-out ---

// sectionView builds engine mode's view of a received shared message:
// header fields shared, consistency payload from exactly its section
// (empty when the sender's engine had nothing to say — identical to the
// pre-section single-mode message with no payload).
func sectionView(m *wire.Msg, mode Mode) *wire.Msg {
	v := &wire.Msg{Kind: m.Kind, Seq: m.Seq, A: m.A, B: m.B}
	for i := range m.Sections {
		if s := &m.Sections[i]; Mode(s.Mode) == mode {
			v.VC, v.Intervals, v.Diffs = s.VC, s.Intervals, s.Diffs
			break
		}
	}
	return v
}

// collectSection appends engine mode's scratch payload to out's sections
// if the engine produced one.
func collectSection(out *wire.Msg, mode Mode, scratch *wire.Msg) {
	if scratch.VC == nil && len(scratch.Intervals) == 0 && len(scratch.Diffs) == 0 {
		return
	}
	out.Sections = append(out.Sections, wire.Section{
		Mode: uint16(mode), VC: scratch.VC,
		Intervals: scratch.Intervals, Diffs: scratch.Diffs,
	})
}

// checkSections validates a received message's mode tags: a section for
// a protocol this node does not host, a duplicated mode, or a clock whose
// length does not match the cluster is a forgery or corruption — recorded
// and dropped (the remaining sections still apply; op names the message
// for the error).
func (r *router) checkSections(op string, m *wire.Msg, src mem.ProcID) {
	var seen [256]bool
	kept := m.Sections[:0]
	for _, s := range m.Sections {
		switch {
		case int(s.Mode) >= len(r.engines) || r.engines[s.Mode] == nil:
			r.n.noteErr(op, fmt.Errorf("section for non-resident mode %d from %d", s.Mode, src))
		case seen[s.Mode]:
			r.n.noteErr(op, fmt.Errorf("duplicate section for mode %v from %d", Mode(s.Mode), src))
		case len(s.VC) != 0 && len(s.VC) != r.n.sys.cfg.Procs:
			r.n.noteErr(op, fmt.Errorf("section for mode %v from %d carries a %d-entry clock (cluster has %d)",
				Mode(s.Mode), src, len(s.VC), r.n.sys.cfg.Procs))
		default:
			seen[s.Mode] = true
			kept = append(kept, s)
		}
	}
	m.Sections = kept
}

// --- synchronization hooks (fan out to every resident, in order) ---

func (r *router) acquireStart(req *wire.Msg) {
	for _, m := range r.order {
		scratch := &wire.Msg{Kind: req.Kind, Seq: req.Seq, A: req.A, B: req.B}
		r.engines[m].acquireStart(scratch)
		collectSection(req, m, scratch)
	}
}

func (r *router) grant(req, grant *wire.Msg) {
	r.checkSections("lock grant build", req, mem.ProcID(req.B))
	for _, m := range r.order {
		scratch := &wire.Msg{Kind: grant.Kind, Seq: grant.Seq, A: grant.A, B: grant.B}
		r.engines[m].grant(sectionView(req, m), scratch)
		collectSection(grant, m, scratch)
	}
}

func (r *router) onGrant(grant *wire.Msg) error {
	r.checkSections("lock grant", grant, mem.ProcID(grant.B))
	var first error
	for _, m := range r.order {
		if err := r.engines[m].onGrant(sectionView(grant, m)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *router) preRelease() error {
	for _, e := range r.residents {
		if err := e.preRelease(); err != nil {
			return err
		}
	}
	return nil
}

func (r *router) release() {
	for _, e := range r.residents {
		e.release()
	}
}

func (r *router) preBarrier() error {
	for _, e := range r.residents {
		if err := e.preBarrier(); err != nil {
			return err
		}
	}
	return nil
}

func (r *router) barrierEntry() {
	for _, e := range r.residents {
		e.barrierEntry()
	}
}

func (r *router) arrive(arrive *wire.Msg) {
	for _, m := range r.order {
		scratch := &wire.Msg{Kind: arrive.Kind, Seq: arrive.Seq, A: arrive.A, B: arrive.B}
		r.engines[m].arrive(scratch)
		collectSection(arrive, m, scratch)
	}
}

func (r *router) masterAbsorb(m *wire.Msg) {
	r.checkSections("barrier arrival", m, mem.ProcID(m.B))
	for _, mode := range r.order {
		r.engines[mode].masterAbsorb(sectionView(m, mode))
	}
}

func (r *router) exit(m, exit *wire.Msg) {
	for _, mode := range r.order {
		scratch := &wire.Msg{Kind: exit.Kind, Seq: exit.Seq, A: exit.A, B: exit.B}
		r.engines[mode].exit(sectionView(m, mode), scratch)
		collectSection(exit, mode, scratch)
	}
}

func (r *router) onExit(exit *wire.Msg) error {
	r.checkSections("barrier exit", exit, mem.ProcID(exit.B))
	var first error
	for _, m := range r.order {
		if err := r.engines[m].onExit(sectionView(exit, m)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (r *router) postBarrier(b mem.BarrierID) error {
	var first error
	for _, e := range r.residents {
		if err := e.postBarrier(b); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- page migration hooks ---

func (r *router) dropPage(pg mem.PageID) {
	r.engineFor(pg).dropPage(pg)
}

func (r *router) adoptPage(pg mem.PageID, data []byte) {
	r.engineFor(pg).adoptPage(pg, data)
}

// clock merges the resident engines' vector times (non-causal engines
// report zeros, so a mixed node's clock is its lazy engines' joint
// time).
func (r *router) clock() vc.VC {
	out := r.residents[0].clock()
	for _, e := range r.residents[1:] {
		out = out.Max(e.clock())
	}
	return out
}

// --- stats surface ---

// PageStat is one page's routing state and access counters in a Stats
// snapshot (pages with no recorded activity are omitted).
type PageStat struct {
	Page         int
	Mode         string
	Class        string
	Home         int // current home node (directory / cold-copy server)
	LocalReads   int64
	LocalWrites  int64
	RemoteReads  int64
	RemoteWrites int64
	DiffsApplied int64
	Writers      uint64 // bitmask of nodes ever observed writing
}

// fillPageStats appends the per-page counter snapshot to a Stats value.
func (r *router) fillPageStats(st *Stats) {
	for pg := range r.ctr {
		c := &r.ctr[pg]
		ps := PageStat{
			Page:         pg,
			Mode:         r.modeOf(mem.PageID(pg)).String(),
			Class:        pageClass(r.classTab[pg].Load()).String(),
			Home:         int(r.homeOf(mem.PageID(pg))),
			LocalReads:   c.localReads.Load(),
			LocalWrites:  c.localWrites.Load(),
			RemoteReads:  c.remoteReads.Load(),
			RemoteWrites: c.remoteWrites.Load(),
			DiffsApplied: c.diffs.Load(),
			Writers:      c.writersEver.Load(),
		}
		if ps.LocalReads == 0 && ps.LocalWrites == 0 && ps.RemoteReads == 0 &&
			ps.RemoteWrites == 0 && ps.DiffsApplied == 0 && ps.Writers == 0 {
			continue
		}
		st.Pages = append(st.Pages, ps)
	}
}

// pageModes snapshots the current mode table.
func (r *router) pageModes() []Mode {
	out := make([]Mode, len(r.modeTab))
	for pg := range r.modeTab {
		out[pg] = Mode(r.modeTab[pg].Load())
	}
	return out
}
