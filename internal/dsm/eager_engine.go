package dsm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
	"repro/internal/wire"
)

// eagerEngine implements eager release consistency in the style of
// Munin's write-shared protocol (paper §3): a processor buffers its
// modifications as twins until a release or barrier, then pushes them to
// every other cacher of each dirty page — invalidations (EI) or diffs
// (EU) — and blocks until all are acknowledged. Each page has a static
// directory at its home tracking the owner (the last flusher) and the
// copyset; access misses ship the whole page from the owner through the
// home.
//
// The home serializes all directory transactions for a page under a
// per-page mutex and sends every message of a transaction while holding
// it. The transport's FIFO order plus the receiver's per-page shard
// queue then guarantee a cacher observes a page ship before any
// invalidation or update that follows it. Page grants are installed by
// the shard worker as they arrive (installPage), never on the
// application goroutine after its rpc wakeup — so installs happen in
// directory order, are never abandoned, and the home's copyset always
// reflects what each node actually holds (the pre-refactor design
// installed application-side behind a generation guard; with several
// application goroutines an abandoned install left the node a copyset
// member holding stale data, which a later flush would promote to the
// owner copy).
//
// Concurrency: page copies, twins and generations are per-page state
// under the node's striped lock table; the dirty-page set and the
// in-flight flush bookkeeping live under small dedicated mutexes. With
// multiple application goroutines per node a flush point must cover not
// only the pages its own snapshot took but also every flush another
// local goroutine already has in flight (the twin is node-level, so a
// concurrent flusher may be carrying this goroutine's writes): flushes
// take a ticket on entry and a release completes only after every
// earlier-ticketed flush has been acknowledged. Two local flushes of
// the same page additionally serialize through a per-page slot so their
// diffs reach the home in write order (EU cachers apply them in arrival
// order).
type eagerEngine struct {
	n      *Node
	update bool // EU: push diffs; EI: push invalidations

	// pages[i] is guarded by n.pageLock(i).
	pages []*eagerPage

	// dirtyMu guards the current critical section's dirty-page set. Leaf
	// lock after a page stripe.
	dirtyMu sync.Mutex
	dirty   map[mem.PageID]struct{}

	// flightMu guards the flush bookkeeping: in-flight flush payloads by
	// request Seq (for the handler-side reconciliation), per-page flush
	// slots, and the ticket counters ordering concurrent flush points.
	flightMu sync.Mutex
	flightCv *sync.Cond
	inflight map[uint64]flushState
	flushing map[mem.PageID]chan struct{}
	// Ticket scheme: nextTicket numbers flush points in snapshot order;
	// doneTickets records finished ones; lowTicket is the first ticket
	// not yet known finished. A flush with ticket t may return once
	// lowTicket > t (every earlier flush — which may carry this
	// goroutine's writes — has been acknowledged).
	nextTicket  uint64
	lowTicket   uint64
	doneTickets map[uint64]bool

	dir []eagerDir // directory entries; used only for pages homed here
}

// eagerPage is a node's local copy of one page, guarded by its stripe.
type eagerPage struct {
	data  []byte
	valid bool
	twin  *page.Twin
}

type flushState struct {
	pg   mem.PageID
	diff *page.Diff
}

// eagerDir is one page's directory entry at its home.
type eagerDir struct {
	mu      sync.Mutex
	owner   mem.ProcID
	copyset uint64
}

func newEagerEngine(n *Node, update bool) *eagerEngine {
	e := &eagerEngine{
		n:           n,
		update:      update,
		pages:       make([]*eagerPage, n.sys.layout.NumPages()),
		dirty:       make(map[mem.PageID]struct{}),
		inflight:    make(map[uint64]flushState),
		flushing:    make(map[mem.PageID]chan struct{}),
		doneTickets: make(map[uint64]bool),
		dir:         make([]eagerDir, n.sys.layout.NumPages()),
	}
	e.flightCv = sync.NewCond(&e.flightMu)
	for pg := range e.dir {
		e.dir[pg].owner = n.homeOf(mem.PageID(pg))
	}
	return e
}

func (e *eagerEngine) clock() vc.VC { return vc.New(e.n.sys.cfg.Procs) }

// --- accesses ---

// ensureValid obtains a copy of pg, fetching it from the owner through
// the home's directory on a miss. All misses go through the message
// path, including the home's own (loopback is free), so the directory
// transaction order is the single source of truth. Miss service
// serializes per page under the miss lock, and the granted page is
// installed by the page's shard worker as the response arrives — in
// directory order, never abandoned — so the home's copyset always
// matches what this node actually holds. An invalidation that lands
// directly behind the install leaves the copy invalid again; that is
// the same staleness window an eagerly-consistent access always had
// between validation and use, and the flush path reports it (see
// flushPages' needBase).
func (e *eagerEngine) ensureValid(pg mem.PageID) error {
	n := e.n
	pmu := n.pageLock(pg)
	pmu.Lock()
	pc := e.pages[pg]
	if pc != nil && pc.valid {
		pmu.Unlock()
		return nil
	}
	pmu.Unlock()

	mmu := n.missLock(pg)
	mmu.Lock()
	defer mmu.Unlock()

	pmu.Lock()
	pc = e.pages[pg]
	if pc != nil && pc.valid {
		pmu.Unlock()
		return nil
	}
	n.stats.accessMisses.Add(1)
	if pc == nil {
		n.stats.coldMisses.Add(1)
	}
	pmu.Unlock()

	// The response is intercepted in handle: by the time rpc returns,
	// the shard worker has installed the granted page.
	_, err := n.rpc(n.homeOf(pg), &wire.Msg{
		Kind: wire.KPageReq, Seq: n.nextSeq(), A: int32(pg), B: int32(n.id),
	})
	return err
}

// installPage applies a granted page at the requester, on the page's
// shard worker, so the install happens in directory order: every
// invalidation or update the home sent before this ship has already
// been applied, and any sent after will be. If a concurrent local
// critical section is mid-flight on the stale copy, its uncommitted
// writes are lifted off and reinstated on top of the fetched data with
// the twin rebased beneath them — the words belong to locks that
// section holds, so no newer committed values for them can exist.
//
// Returns false (recording the cause) for a grant that cannot be
// installed — bad page id or wrong-size data — so the caller fails the
// waiter instead of delivering a response that installed nothing.
func (e *eagerEngine) installPage(m *wire.Msg) bool {
	n := e.n
	pg := mem.PageID(m.A)
	if !n.validPage(pg) || len(m.Data) != n.sys.layout.PageSize() {
		n.noteErr("page install",
			fmt.Errorf("bad page grant: page %d, %d data bytes", pg, len(m.Data)))
		return false
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	defer pmu.Unlock()
	pc := e.pages[pg]
	if pc == nil {
		pc = &eagerPage{}
		e.pages[pg] = pc
	}
	if pc.twin != nil {
		du, err := page.MakeDiff(pc.twin, pc.data)
		if err != nil {
			panic(fmt.Sprintf("dsm: node %d: lifting uncommitted writes off page %d: %v", n.id, pg, err))
		}
		n.stats.diffsCreated.Add(1)
		pc.twin = page.NewTwin(m.Data)
		pc.data = m.Data
		if err := du.Apply(pc.data); err != nil {
			panic(fmt.Sprintf("dsm: node %d: reinstating uncommitted writes on page %d: %v", n.id, pg, err))
		}
	} else {
		pc.data = m.Data
	}
	pc.valid = true
	n.stats.pagesFetched.Add(1)
	return true
}

func (e *eagerEngine) readPage(pg mem.PageID, off int, dst []byte) error {
	if err := e.ensureValid(pg); err != nil {
		return err
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	copy(dst, e.pages[pg].data[off:off+len(dst)])
	pmu.Unlock()
	return nil
}

func (e *eagerEngine) writePage(pg mem.PageID, off int, src []byte) error {
	if err := e.ensureValid(pg); err != nil {
		return err
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	pc := e.pages[pg]
	created := false
	if pc.twin == nil {
		pc.twin = page.NewTwin(pc.data)
		created = true
	}
	copy(pc.data[off:off+len(src)], src)
	pmu.Unlock()
	if created {
		e.dirtyMu.Lock()
		e.dirty[pg] = struct{}{}
		e.dirtyMu.Unlock()
	}
	return nil
}

// --- flush: the release/barrier-time propagation of §3 ---

// flush commits this node's buffered modifications and pushes them
// through each dirty page's home to every other cacher, blocking until
// the home has invalidated (EI) or updated (EU) them all — and until
// every flush an earlier local flush point still has in flight is
// acknowledged too, so a release never completes while any write made
// on this node before it is still propagating. Called from an
// application goroutine without locks.
func (e *eagerEngine) flush() error {
	// Snapshot the dirty set and take a ticket atomically: every page a
	// local goroutine dirtied before this point is either in our
	// snapshot or owned by an earlier-ticketed flush we will wait for.
	e.flightMu.Lock()
	ticket := e.nextTicket
	e.nextTicket++
	e.dirtyMu.Lock()
	cand := make([]mem.PageID, 0, len(e.dirty))
	for pg := range e.dirty {
		cand = append(cand, pg)
	}
	e.dirty = make(map[mem.PageID]struct{})
	e.dirtyMu.Unlock()
	e.flightMu.Unlock()
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })

	err := e.flushPages(cand)
	e.finishTicket(ticket)
	if err != nil {
		return err
	}

	// Wait for every earlier-ticketed flush point to finish.
	e.flightMu.Lock()
	for e.lowTicket <= ticket {
		e.flightCv.Wait()
	}
	e.flightMu.Unlock()
	return nil
}

// finishTicket marks a flush point done and advances the low-water mark
// past every consecutively finished ticket.
func (e *eagerEngine) finishTicket(t uint64) {
	e.flightMu.Lock()
	e.doneTickets[t] = true
	for e.doneTickets[e.lowTicket] {
		delete(e.doneTickets, e.lowTicket)
		e.lowTicket++
	}
	e.flightCv.Broadcast()
	e.flightMu.Unlock()
}

// flushPages diffs and pushes every candidate page through its home as
// ONE grouped burst: each page's flush slot is claimed (pages in sorted
// order, so concurrent local flush points cannot deadlock on each
// other's slots), its diff taken while the slot is held, and then all
// KFlushReqs are staged before a single outbox flush — so a release
// that dirtied several pages with a common home sends them in one
// batch frame, and every home's directory transaction runs
// concurrently instead of one blocking round trip per page.
func (e *eagerEngine) flushPages(cand []mem.PageID) error {
	n := e.n
	type pend struct {
		fs   flushState
		slot chan struct{}
		req  *wire.Msg
	}
	var pends []pend
	// releaseSlots frees every claimed slot; called once whether the
	// burst succeeds, fails, or is abandoned mid-claim.
	releaseSlots := func() {
		e.flightMu.Lock()
		for _, p := range pends {
			delete(e.flushing, p.fs.pg)
		}
		e.flightMu.Unlock()
		for _, p := range pends {
			close(p.slot)
		}
	}

	for _, pg := range cand {
		// Claim the page's flush slot, waiting out any earlier local
		// flush of the same page so diffs reach the home in the order
		// they were taken.
		var slot chan struct{}
		for slot == nil {
			e.flightMu.Lock()
			if ch := e.flushing[pg]; ch != nil {
				e.flightMu.Unlock()
				select {
				case <-ch:
				case <-n.closedCh:
					releaseSlots()
					return fmt.Errorf("dsm: node %d: flush of page %d: %w", n.id, pg, ErrClosed)
				}
				continue
			}
			slot = make(chan struct{})
			e.flushing[pg] = slot
			e.flightMu.Unlock()
		}
		unclaim := func() {
			e.flightMu.Lock()
			delete(e.flushing, pg)
			e.flightMu.Unlock()
			close(slot)
		}

		// Take the diff under the slot. If our copy is invalid at flush
		// time (a critical section may keep writing through an
		// invalidation, exactly as in the single-threaded engine), the
		// reconciliation must carry a base: becoming owner with stale
		// data would silently revert other processors' committed words.
		// Shard-ordered installs keep the home's copyset equal to what
		// we actually hold, so the home's own check covers this too —
		// the explicit flag (a non-empty Data section on KFlushReq) is
		// defense in depth at one byte of cost.
		pmu := n.pageLock(pg)
		pmu.Lock()
		pc := e.pages[pg]
		if pc == nil || pc.twin == nil {
			pmu.Unlock()
			unclaim()
			continue
		}
		needBase := !pc.valid
		d, err := page.MakeDiff(pc.twin, pc.data)
		pc.twin = nil
		pmu.Unlock()
		if err != nil {
			unclaim()
			releaseSlots()
			return err
		}
		n.stats.diffsCreated.Add(1)
		if d.Empty() {
			unclaim()
			continue
		}
		req := &wire.Msg{Kind: wire.KFlushReq, Seq: n.nextSeq(), A: int32(pg), B: int32(n.id)}
		if needBase {
			req.Data = []byte{1}
		}
		if e.update {
			req.Diffs = []wire.DiffRec{{Page: pg, Diff: d}}
		}
		pends = append(pends, pend{fs: flushState{pg: pg, diff: d}, slot: slot, req: req})
	}
	if len(pends) == 0 {
		return nil
	}

	// Stage the whole burst, flush once, await every reconciliation.
	// The shard workers apply each KFlushDone payload (write-backs, base
	// data) before delivering it here; by the time rpcAll returns, this
	// node's copies are the pages' authoritative state.
	reqs := make([]outMsg, len(pends))
	e.flightMu.Lock()
	for i, p := range pends {
		e.inflight[p.req.Seq] = p.fs
		reqs[i] = outMsg{dst: n.homeOf(p.fs.pg), m: p.req}
	}
	e.flightMu.Unlock()
	_, err := n.rpcAll(reqs)
	if err != nil {
		// Unacknowledged flushes will never reconcile; drop their
		// in-flight entries (acknowledged ones were already consumed by
		// applyFlushDone, for which delete is a no-op).
		e.flightMu.Lock()
		for _, p := range pends {
			delete(e.inflight, p.req.Seq)
		}
		e.flightMu.Unlock()
	}
	releaseSlots()
	if err != nil {
		return err
	}
	n.stats.flushedPages.Add(int64(len(pends)))
	return nil
}

// --- lock and barrier hooks: flush at every release point ---

func (e *eagerEngine) acquireStart(req *wire.Msg)    {}
func (e *eagerEngine) grant(req, grant *wire.Msg)    {}
func (e *eagerEngine) onGrant(grant *wire.Msg) error { return nil }
func (e *eagerEngine) preRelease() error             { return e.flush() }
func (e *eagerEngine) release()                      {}

// dropPage and adoptPage run only in the quiescent reclassification
// rendezvous: no flush, fetch or directory transaction for the page is
// in flight anywhere, so resetting the directory entry alongside the
// copy cannot strand a peer.
func (e *eagerEngine) dropPage(pg mem.PageID) {
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	e.pages[pg] = nil
	pmu.Unlock()
	e.dirtyMu.Lock()
	delete(e.dirty, pg)
	e.dirtyMu.Unlock()
	d := &e.dir[pg]
	d.mu.Lock()
	d.owner = e.n.homeOf(pg)
	d.copyset = 0
	d.mu.Unlock()
}

func (e *eagerEngine) adoptPage(pg mem.PageID, data []byte) {
	d := &e.dir[pg]
	d.mu.Lock()
	d.owner = e.n.homeOf(pg)
	d.copyset = 0
	d.mu.Unlock()
	if data == nil {
		// Non-home: fault through the home's directory on first use.
		return
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	e.pages[pg] = &eagerPage{data: append([]byte(nil), data...), valid: true}
	pmu.Unlock()
	d.mu.Lock()
	d.copyset = 1 << uint(e.n.id)
	d.mu.Unlock()
}

func (e *eagerEngine) preBarrier() error                 { return e.flush() }
func (e *eagerEngine) barrierEntry()                     {}
func (e *eagerEngine) arrive(arrive *wire.Msg)           {}
func (e *eagerEngine) masterAbsorb(m *wire.Msg)          {}
func (e *eagerEngine) exit(m, exit *wire.Msg)            {}
func (e *eagerEngine) onExit(exit *wire.Msg) error       { return nil }
func (e *eagerEngine) postBarrier(b mem.BarrierID) error { return nil }

// --- handler side ---

func (e *eagerEngine) handle(m *wire.Msg, src mem.ProcID) bool {
	switch m.Kind {
	case wire.KPageReq:
		go e.servePageReq(m)
	case wire.KFlushReq:
		go e.serveFlushReq(m)
	case wire.KFetch:
		e.serveFetch(m, src)
	case wire.KInval:
		e.applyInval(m, src)
	case wire.KUpdate:
		e.applyUpdate(m, src)
	case wire.KPageResp:
		// Intercepted response: install the granted page on the page's
		// shard worker, in directory order, then wake the faulting
		// application goroutine. A rejected grant fails the waiter
		// instead (the cause is already in noteErr).
		if e.installPage(m) {
			e.n.deliverResponse(m)
		} else {
			e.n.failWaiter(m.Seq)
		}
	case wire.KFlushDone:
		// Intercepted response: apply the home's reconciliation on the
		// page's shard worker so it is in place before any later
		// directory message for the page arrives, then wake the
		// flushing application goroutine.
		if e.applyFlushDone(m) {
			e.n.deliverResponse(m)
		} else {
			e.n.failWaiter(m.Seq)
		}
	default:
		return false
	}
	return true
}

// committedLocked returns a copy of this node's committed contents of
// pg: the twin if a critical section is mid-write, the page data
// otherwise. Caller holds the page stripe; the page must be present.
func (e *eagerEngine) committedLocked(pg mem.PageID) []byte {
	pc := e.pages[pg]
	if pc.twin != nil {
		return append([]byte(nil), pc.twin.Data()...)
	}
	return append([]byte(nil), pc.data...)
}

// ownerData obtains the committed contents of pg from its current owner
// via Node.fetchFromOwner (see there for the loopback ordering rule).
func (e *eagerEngine) ownerData(d *eagerDir, pg mem.PageID) ([]byte, error) {
	return e.n.fetchFromOwner(d.owner, pg)
}

// servePageReq runs the home's miss transaction on its own goroutine:
// owner data travels home -> requester, and the requester joins the
// copyset. The directory lock is held across the reply send so any
// later invalidation or update follows the page ship in FIFO order.
func (e *eagerEngine) servePageReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	requester := mem.ProcID(m.B)
	if !n.validPage(pg) || !n.validProc(requester) {
		n.noteErr("page request",
			fmt.Errorf("bad ids in request: page %d requester %d", pg, requester))
		return
	}
	d := &e.dir[pg]
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := e.ownerData(d, pg)
	if err != nil {
		n.noteErr(fmt.Sprintf("page %d owner fetch", pg), err)
		return
	}
	d.copyset |= 1 << uint(requester)
	resp := &wire.Msg{Kind: wire.KPageResp, Seq: m.Seq, A: m.A, Data: data}
	n.noteErr(fmt.Sprintf("page response to %d", requester), n.send(requester, resp))
}

// serveFlushReq runs the home's release transaction for one dirty page:
// every other copyset member is invalidated (EI, their own buffered
// modifications riding back on the acks) or updated (EU), the flusher
// becomes the owner, and the reply carries the reconciliation the
// flusher must apply. The directory lock is held across all of it.
func (e *eagerEngine) serveFlushReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	flusher := mem.ProcID(m.B)
	if !n.validPage(pg) || !n.validProc(flusher) {
		n.noteErr("flush request",
			fmt.Errorf("bad ids in request: page %d flusher %d", pg, flusher))
		return
	}
	d := &e.dir[pg]
	d.mu.Lock()
	defer d.mu.Unlock()

	done := &wire.Msg{Kind: wire.KFlushDone, Seq: m.Seq, A: m.A}
	if d.copyset&(1<<uint(flusher)) == 0 || len(m.Data) > 0 {
		// The flusher's copy cannot be trusted as the new owner copy:
		// either a concurrent flush of the same page invalidated it after
		// it snapshotted its modifications (EI false sharing, it dropped
		// out of the copyset), or the flusher itself reported the copy
		// invalid (a co-located goroutine's fetch joined the copyset but
		// its install was abandoned). Ship the current owner's data as a
		// base; the flusher re-applies its own diff on top and every
		// committed word survives.
		base, err := e.ownerData(d, pg)
		if err != nil {
			n.noteErr(fmt.Sprintf("flush %d base fetch", pg), err)
			return
		}
		done.Data = base
	}

	// Fan the invalidations (EI) or updates (EU) out as one grouped
	// burst: all requests staged before a single flush, all cachers
	// acknowledging concurrently — the directory lock is held across
	// the whole exchange either way, so the transaction's position in
	// each cacher's stream is unchanged.
	others := d.copyset &^ (1 << uint(flusher))
	var targets []mem.ProcID
	var reqs []outMsg
	for q := 0; others != 0; q++ {
		bit := uint64(1) << uint(q)
		if others&bit == 0 {
			continue
		}
		others &^= bit
		kind := wire.KInval
		var diffs []wire.DiffRec
		if e.update {
			kind = wire.KUpdate
			diffs = m.Diffs
		}
		targets = append(targets, mem.ProcID(q))
		reqs = append(reqs, outMsg{dst: mem.ProcID(q), m: &wire.Msg{
			Kind: kind, Seq: n.nextSeq(), A: m.A, Diffs: diffs,
		}})
	}
	if len(reqs) > 0 {
		acks, err := n.rpcAll(reqs)
		if err != nil {
			n.noteErr(fmt.Sprintf("flush fan-out for page %d", pg), err)
			return
		}
		if !e.update {
			for i, ack := range acks {
				// The invalidated cachers' own buffered modifications
				// ride the acks back to the new owner, in fixed cacher
				// order.
				done.Diffs = append(done.Diffs, ack.Diffs...)
				d.copyset &^= 1 << uint(targets[i])
			}
		}
	}
	if d.owner != flusher {
		d.owner = flusher
		n.stats.ownershipMoves.Add(1)
	}
	d.copyset |= 1 << uint(flusher)
	n.noteErr(fmt.Sprintf("flush done to %d", flusher), n.send(flusher, done))
}

// serveFetch answers the home's request for this owner's committed page
// contents. Runs inline on the page's shard worker (it never blocks).
func (e *eagerEngine) serveFetch(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	if !n.validPage(pg) {
		n.noteErr("owner fetch", fmt.Errorf("fetch of invalid page %d", pg))
		return
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	var data []byte
	switch {
	case e.pages[pg] == nil && n.homeOf(pg) == n.id:
		// We are the page's initial owner and nobody ever wrote it: the
		// committed state is the zero page.
		data = make([]byte, n.sys.layout.PageSize())
	case e.pages[pg] == nil:
		// The home thinks we own a page we never held — its directory and
		// our state disagree, which only a misbehaving (or hostile) peer
		// can cause. Drop the fetch; the record surfaces via Close.
		pmu.Unlock()
		n.noteErr("owner fetch", fmt.Errorf("fetch of page %d this node never held", pg))
		return
	default:
		data = e.committedLocked(pg)
	}
	pmu.Unlock()
	n.stage(src, &wire.Msg{Kind: wire.KFetchResp, Seq: m.Seq, A: m.A, Data: data})
}

// applyInval drops this node's copy (EI). If a critical section has
// buffered modifications to the page, their diff rides the ack back to
// the home — this node is no longer responsible for flushing them.
func (e *eagerEngine) applyInval(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	if !n.validPage(pg) {
		n.noteErr("invalidate", fmt.Errorf("invalidation of invalid page %d", pg))
		return
	}
	ack := &wire.Msg{Kind: wire.KInvalAck, Seq: m.Seq, A: m.A}
	pmu := n.pageLock(pg)
	pmu.Lock()
	if pc := e.pages[pg]; pc != nil {
		if pc.twin != nil {
			d, err := page.MakeDiff(pc.twin, pc.data)
			if err == nil && !d.Empty() {
				ack.Diffs = append(ack.Diffs, wire.DiffRec{Page: pg, Diff: d})
			}
			pc.twin = nil
			n.stats.diffsCreated.Add(1)
		}
		pc.valid = false
	}
	pmu.Unlock()
	n.stats.invalsReceived.Add(1)
	n.stage(src, ack)
}

// applyUpdate applies a releaser's diff to this node's copy (EU). The
// diff also lands on the twin, if one exists, so a concurrent critical
// section's own eventual diff carries only its own modifications.
func (e *eagerEngine) applyUpdate(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	if !n.validPage(pg) {
		n.noteErr("update", fmt.Errorf("update of invalid page %d", pg))
		return
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	pc := e.pages[pg]
	if pc == nil || !pc.valid {
		// Unreachable with shard-ordered installs (an EU copy in the
		// copyset is always installed before the home can send it an
		// update); tolerated defensively — the ack still flows.
	} else {
		for _, rec := range m.Diffs {
			// The diffs came off the wire: one that does not fit the page
			// is the sender's corruption, not our invariant — record it,
			// stop applying this update, and still ack so the releaser's
			// transaction completes.
			if err := rec.Diff.Apply(pc.data); err != nil {
				n.noteErr("update", fmt.Errorf("diff for page %d does not apply: %w", pg, err))
				break
			}
			if pc.twin != nil {
				// Land the diff on the twin too, so a concurrent critical
				// section's own eventual diff carries only its own
				// modifications (the update's words must not re-register
				// as ours).
				patched := append([]byte(nil), pc.twin.Data()...)
				if err := rec.Diff.Apply(patched); err != nil {
					n.noteErr("update", fmt.Errorf("diff for page %d twin does not apply: %w", pg, err))
					break
				}
				pc.twin = page.NewTwin(patched)
			}
			n.stats.updatesReceived.Add(1)
			n.rt.noteDiffApplied(pg)
		}
	}
	pmu.Unlock()
	n.stage(src, &wire.Msg{Kind: wire.KUpdateAck, Seq: m.Seq, A: m.A})
}

// applyFlushDone installs the home's reconciliation at the flusher: an
// optional fresh base (when a concurrent flush had invalidated this
// node's copy), this node's own flushed diff on top, then any
// write-backs recovered from invalidated cachers.
//
// With multiple application goroutines another critical section may
// already have a fresh twin for the page when the reconciliation lands.
// Its uncommitted writes live only in pc.data, so they are lifted off
// as a diff first, the reconciliation builds the new committed state,
// and the uncommitted writes are reinstated on top with the twin
// rebased beneath them — otherwise a base copy would erase them, and
// write-backs would later re-register as that critical section's own
// modifications.
// Returns false (recording the cause) for a reconciliation that matches
// no in-flight flush — a remote peer's stray or forged KFlushDone — so
// the caller fails rather than wakes any waiter on that seq.
func (e *eagerEngine) applyFlushDone(m *wire.Msg) bool {
	n := e.n
	e.flightMu.Lock()
	fs, ok := e.inflight[m.Seq]
	if !ok {
		e.flightMu.Unlock()
		n.noteErr("flush reconcile", fmt.Errorf("flush done for unknown seq %d", m.Seq))
		return false
	}
	delete(e.inflight, m.Seq)
	e.flightMu.Unlock()

	pmu := n.pageLock(fs.pg)
	pmu.Lock()
	defer pmu.Unlock()
	pc := e.pages[fs.pg]

	fail := func(what string, err error) {
		panic(fmt.Sprintf("dsm: node %d: %s page %d: %v", n.id, what, fs.pg, err))
	}
	var uncommitted *page.Diff
	committed := pc.data
	if pc.twin != nil {
		// A concurrent critical section started after our flush snapshot:
		// its writes sit in pc.data, its twin holds the committed state
		// they started from (which already includes our flushed writes).
		du, err := page.MakeDiff(pc.twin, pc.data)
		if err != nil {
			fail("lifting uncommitted writes off", err)
		}
		n.stats.diffsCreated.Add(1)
		uncommitted = du
		committed = append([]byte(nil), pc.twin.Data()...)
	}
	if m.Data != nil {
		copy(committed, m.Data)
	}
	// Reassert the flushed diff unconditionally, not just over a fresh
	// base: our flush transaction is the latest directory event for
	// these words, but the local copy may have been replaced while the
	// flush was in flight — a co-located goroutine, invalidated by an
	// unrelated flush of the same page, can refetch and install
	// directory-older owner data that predates our (EI: never shipped)
	// modifications. Everything processed before this KFlushDone is
	// directory-ordered before our transaction, so putting our words
	// back is always correct — and without it they would be silently
	// lost.
	if err := fs.diff.Apply(committed); err != nil {
		fail("reapplying flushed diff to", err)
	}
	for _, rec := range m.Diffs {
		// Write-backs are other cachers' diffs relayed by the home — wire
		// data, not a local invariant. One that does not fit the page is
		// recorded and skipped; the rest of the reconciliation stands.
		if err := rec.Diff.Apply(committed); err != nil {
			n.noteErr("flush reconcile",
				fmt.Errorf("write-back to page %d does not apply: %w", fs.pg, err))
			continue
		}
		n.stats.writeBacks.Add(1)
		n.rt.noteDiffApplied(fs.pg)
	}
	if pc.twin != nil {
		copy(pc.data, committed)
		if uncommitted != nil {
			if err := uncommitted.Apply(pc.data); err != nil {
				fail("reinstating uncommitted writes on", err)
			}
		}
		pc.twin = page.NewTwin(committed)
	}
	pc.valid = true
	return true
}
