package dsm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
	"repro/internal/wire"
)

// eagerEngine implements eager release consistency in the style of
// Munin's write-shared protocol (paper §3): a processor buffers its
// modifications as twins until a release or barrier, then pushes them to
// every other cacher of each dirty page — invalidations (EI) or diffs
// (EU) — and blocks until all are acknowledged. Each page has a static
// directory at its home tracking the owner (the last flusher) and the
// copyset; access misses ship the whole page from the owner through the
// home.
//
// The home serializes all directory transactions for a page under a
// per-page mutex and sends every message of a transaction while holding
// it. The transport's FIFO order then guarantees a cacher observes a page ship
// before any invalidation or update that follows it; the only remaining
// race — an invalidation arriving at a requester whose fetch response
// has been delivered but not yet installed — is closed by a per-page
// generation counter: the install is abandoned and the fetch retried
// whenever the generation moved while the request was in flight.
type eagerEngine struct {
	n      *Node
	update bool // EU: push diffs; EI: push invalidations

	// Guarded by n.mu.
	pages []*eagerPage
	twins map[mem.PageID]*page.Twin
	gen   []uint64 // per-page invalidation generation (fetch-race guard)
	// inflight maps a flush request's Seq to the flushed diff, so the
	// handler can apply the home's reconciliation (write-backs, base
	// data) synchronously on receipt — before any later directory
	// message for the same page can arrive.
	inflight map[uint64]flushState

	dir []eagerDir // directory entries; used only for pages homed here
}

type eagerPage struct {
	data  []byte
	valid bool
}

type flushState struct {
	pg   mem.PageID
	diff *page.Diff
}

// eagerDir is one page's directory entry at its home.
type eagerDir struct {
	mu      sync.Mutex
	owner   mem.ProcID
	copyset uint64
}

func newEagerEngine(n *Node, update bool) *eagerEngine {
	e := &eagerEngine{
		n:        n,
		update:   update,
		pages:    make([]*eagerPage, n.sys.layout.NumPages()),
		twins:    make(map[mem.PageID]*page.Twin),
		gen:      make([]uint64, n.sys.layout.NumPages()),
		inflight: make(map[uint64]flushState),
		dir:      make([]eagerDir, n.sys.layout.NumPages()),
	}
	for pg := range e.dir {
		e.dir[pg].owner = n.sys.home(mem.PageID(pg))
	}
	return e
}

func (e *eagerEngine) clock() vc.VC { return vc.New(e.n.sys.cfg.Procs) }

// --- accesses ---

// ensureValid obtains a valid copy of pg, fetching it from the owner
// through the home's directory on a miss. All misses go through the
// message path, including the home's own (loopback is free), so the
// directory transaction order is the single source of truth.
func (e *eagerEngine) ensureValid(pg mem.PageID) error {
	n := e.n
	for {
		n.mu.Lock()
		pc := e.pages[pg]
		if pc != nil && pc.valid {
			n.mu.Unlock()
			return nil
		}
		n.stats.AccessMisses++
		if pc == nil {
			n.stats.ColdMisses++
		}
		g := e.gen[pg]
		n.mu.Unlock()

		resp, err := n.rpc(n.sys.home(pg), &wire.Msg{
			Kind: wire.KPageReq, Seq: n.nextSeq(), A: int32(pg), B: int32(n.id),
		})
		if err != nil {
			return err
		}

		n.mu.Lock()
		if e.gen[pg] != g {
			// Invalidated (or updated past us) while the fetch was in
			// flight: the data in hand may already be stale. Retry.
			n.mu.Unlock()
			continue
		}
		if pc == nil {
			pc = &eagerPage{}
			e.pages[pg] = pc
		}
		pc.data = resp.Data
		pc.valid = true
		n.stats.PagesFetched++
		n.mu.Unlock()
		return nil
	}
}

func (e *eagerEngine) readPage(pg mem.PageID, off int, dst []byte) error {
	if err := e.ensureValid(pg); err != nil {
		return err
	}
	e.n.mu.Lock()
	copy(dst, e.pages[pg].data[off:off+len(dst)])
	e.n.mu.Unlock()
	return nil
}

func (e *eagerEngine) writePage(pg mem.PageID, off int, src []byte) error {
	if err := e.ensureValid(pg); err != nil {
		return err
	}
	e.n.mu.Lock()
	pc := e.pages[pg]
	if _, ok := e.twins[pg]; !ok {
		e.twins[pg] = page.NewTwin(pc.data)
	}
	copy(pc.data[off:off+len(src)], src)
	e.n.mu.Unlock()
	return nil
}

// --- flush: the release/barrier-time propagation of §3 ---

// flush commits this node's buffered modifications and pushes them
// through each dirty page's home to every other cacher, blocking until
// the home has invalidated (EI) or updated (EU) them all. Called from
// the application goroutine without mu.
func (e *eagerEngine) flush() error {
	n := e.n
	n.mu.Lock()
	dirty := make([]flushState, 0, len(e.twins))
	for pg, tw := range e.twins {
		d, err := page.MakeDiff(tw, e.pages[pg].data)
		if err != nil {
			n.mu.Unlock()
			return err
		}
		delete(e.twins, pg)
		if d.Empty() {
			continue
		}
		dirty = append(dirty, flushState{pg: pg, diff: d})
	}
	n.stats.FlushedPages += int64(len(dirty))
	n.mu.Unlock()
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].pg < dirty[j].pg })

	for _, fs := range dirty {
		req := &wire.Msg{Kind: wire.KFlushReq, Seq: n.nextSeq(), A: int32(fs.pg), B: int32(n.id)}
		if e.update {
			req.Diffs = []wire.DiffRec{{Page: fs.pg, Diff: fs.diff}}
		}
		n.mu.Lock()
		e.inflight[req.Seq] = fs
		n.mu.Unlock()
		// The handler applies the KFlushDone payload (write-backs, base
		// data) before delivering it here; by then this node's copy is
		// the page's authoritative state.
		if _, err := n.rpc(n.sys.home(fs.pg), req); err != nil {
			return err
		}
	}
	return nil
}

// --- lock and barrier hooks: flush at every release point ---

func (e *eagerEngine) acquireStartLocked(req *wire.Msg) {}
func (e *eagerEngine) grantLocked(req, grant *wire.Msg) {}
func (e *eagerEngine) onGrant(grant *wire.Msg) error    { return nil }
func (e *eagerEngine) preRelease() error                { return e.flush() }
func (e *eagerEngine) releaseLocked()                   {}

func (e *eagerEngine) preBarrier() error                 { return e.flush() }
func (e *eagerEngine) barrierEntryLocked()               {}
func (e *eagerEngine) arriveLocked(arrive *wire.Msg)     {}
func (e *eagerEngine) masterAbsorbLocked(m *wire.Msg)    {}
func (e *eagerEngine) exitLocked(m, exit *wire.Msg)      {}
func (e *eagerEngine) onExit(exit *wire.Msg) error       { return nil }
func (e *eagerEngine) postBarrier(b mem.BarrierID) error { return nil }

// --- handler side ---

func (e *eagerEngine) handle(m *wire.Msg, src mem.ProcID) bool {
	switch m.Kind {
	case wire.KPageReq:
		go e.servePageReq(m)
	case wire.KFlushReq:
		go e.serveFlushReq(m)
	case wire.KFetch:
		e.serveFetch(m, src)
	case wire.KInval:
		e.applyInval(m, src)
	case wire.KUpdate:
		e.applyUpdate(m, src)
	case wire.KFlushDone:
		// Intercepted response: apply the home's reconciliation on the
		// handler goroutine so it is in place before any later
		// directory message for the page arrives, then wake the
		// flushing application goroutine.
		e.applyFlushDone(m)
		e.n.deliverResponse(m)
	default:
		return false
	}
	return true
}

// committedLocked returns a copy of this node's committed contents of
// pg: the twin if the current critical section is mid-write, the page
// data otherwise. Caller holds mu; the page must be present.
func (e *eagerEngine) committedLocked(pg mem.PageID) []byte {
	if tw := e.twins[pg]; tw != nil {
		return append([]byte(nil), tw.Data()...)
	}
	return append([]byte(nil), e.pages[pg].data...)
}

// ownerData obtains the committed contents of pg from its current owner
// via Node.fetchFromOwner (see there for the loopback ordering rule).
func (e *eagerEngine) ownerData(d *eagerDir, pg mem.PageID) ([]byte, error) {
	return e.n.fetchFromOwner(d.owner, pg)
}

// servePageReq runs the home's miss transaction on its own goroutine:
// owner data travels home -> requester, and the requester joins the
// copyset. The directory lock is held across the reply send so any
// later invalidation or update follows the page ship in FIFO order.
func (e *eagerEngine) servePageReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	requester := mem.ProcID(m.B)
	d := &e.dir[pg]
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := e.ownerData(d, pg)
	if err != nil {
		n.noteErr(fmt.Sprintf("page %d owner fetch", pg), err)
		return
	}
	d.copyset |= 1 << uint(requester)
	resp := &wire.Msg{Kind: wire.KPageResp, Seq: m.Seq, A: m.A, Data: data}
	n.noteErr(fmt.Sprintf("page response to %d", requester), n.send(requester, resp))
}

// serveFlushReq runs the home's release transaction for one dirty page:
// every other copyset member is invalidated (EI, their own buffered
// modifications riding back on the acks) or updated (EU), the flusher
// becomes the owner, and the reply carries the reconciliation the
// flusher must apply. The directory lock is held across all of it.
func (e *eagerEngine) serveFlushReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	flusher := mem.ProcID(m.B)
	d := &e.dir[pg]
	d.mu.Lock()
	defer d.mu.Unlock()

	done := &wire.Msg{Kind: wire.KFlushDone, Seq: m.Seq, A: m.A}
	if d.copyset&(1<<uint(flusher)) == 0 {
		// A concurrent flush of the same page invalidated the flusher
		// after it snapshotted its modifications (EI false sharing).
		// Ship the current owner's data as a base; the flusher re-applies
		// its own diff on top and the concurrent writes survive.
		base, err := e.ownerData(d, pg)
		if err != nil {
			n.noteErr(fmt.Sprintf("flush %d base fetch", pg), err)
			return
		}
		done.Data = base
	}

	others := d.copyset &^ (1 << uint(flusher))
	for q := 0; others != 0; q++ {
		bit := uint64(1) << uint(q)
		if others&bit == 0 {
			continue
		}
		others &^= bit
		if e.update {
			req := &wire.Msg{Kind: wire.KUpdate, Seq: n.nextSeq(), A: m.A, Diffs: m.Diffs}
			if _, err := n.rpc(mem.ProcID(q), req); err != nil {
				n.noteErr(fmt.Sprintf("update of page %d at %d", pg, q), err)
				return
			}
		} else {
			req := &wire.Msg{Kind: wire.KInval, Seq: n.nextSeq(), A: m.A}
			ack, err := n.rpc(mem.ProcID(q), req)
			if err != nil {
				n.noteErr(fmt.Sprintf("invalidation of page %d at %d", pg, q), err)
				return
			}
			// The invalidated cacher's own buffered modifications ride
			// the ack back to the new owner.
			done.Diffs = append(done.Diffs, ack.Diffs...)
			d.copyset &^= bit
		}
	}
	if d.owner != flusher {
		d.owner = flusher
		n.mu.Lock()
		n.stats.OwnershipMoves++
		n.mu.Unlock()
	}
	d.copyset |= 1 << uint(flusher)
	n.noteErr(fmt.Sprintf("flush done to %d", flusher), n.send(flusher, done))
}

// serveFetch answers the home's request for this owner's committed page
// contents. Runs inline on the handler goroutine (it never blocks).
func (e *eagerEngine) serveFetch(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	n.mu.Lock()
	var data []byte
	switch {
	case e.pages[pg] == nil && n.sys.home(pg) == n.id:
		// We are the page's initial owner and nobody ever wrote it: the
		// committed state is the zero page.
		data = make([]byte, n.sys.layout.PageSize())
	case e.pages[pg] == nil:
		n.mu.Unlock()
		panic(fmt.Sprintf("dsm: node %d: fetch of page %d it never held", n.id, pg))
	default:
		data = e.committedLocked(pg)
	}
	n.mu.Unlock()
	resp := &wire.Msg{Kind: wire.KFetchResp, Seq: m.Seq, A: m.A, Data: data}
	n.noteErr(fmt.Sprintf("fetch response to %d", src), n.send(src, resp))
}

// applyInval drops this node's copy (EI). If a critical section has
// buffered modifications to the page, their diff rides the ack back to
// the home — this node is no longer responsible for flushing them.
func (e *eagerEngine) applyInval(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	ack := &wire.Msg{Kind: wire.KInvalAck, Seq: m.Seq, A: m.A}
	n.mu.Lock()
	e.gen[pg]++
	if pc := e.pages[pg]; pc != nil {
		if tw := e.twins[pg]; tw != nil {
			d, err := page.MakeDiff(tw, pc.data)
			if err == nil && !d.Empty() {
				ack.Diffs = append(ack.Diffs, wire.DiffRec{Page: pg, Diff: d})
			}
			delete(e.twins, pg)
		}
		pc.valid = false
	}
	n.stats.InvalsReceived++
	n.mu.Unlock()
	n.noteErr(fmt.Sprintf("inval ack to %d", src), n.send(src, ack))
}

// applyUpdate applies a releaser's diff to this node's copy (EU). The
// diff also lands on the twin, if one exists, so a concurrent critical
// section's own eventual diff carries only its own modifications.
func (e *eagerEngine) applyUpdate(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	n.mu.Lock()
	pc := e.pages[pg]
	if pc == nil || !pc.valid {
		// Mid-fetch (in the copyset but nothing installed yet): the
		// in-flight fetch will be retried and served post-update data.
		e.gen[pg]++
	} else {
		for _, rec := range m.Diffs {
			if err := rec.Diff.Apply(pc.data); err != nil {
				n.mu.Unlock()
				panic(fmt.Sprintf("dsm: node %d: update of page %d: %v", n.id, pg, err))
			}
			if tw := e.twins[pg]; tw != nil {
				// Land the diff on the twin too, so a concurrent critical
				// section's own eventual diff carries only its own
				// modifications (the update's words must not re-register
				// as ours).
				patched := append([]byte(nil), tw.Data()...)
				if err := rec.Diff.Apply(patched); err != nil {
					n.mu.Unlock()
					panic(fmt.Sprintf("dsm: node %d: update of page %d twin: %v", n.id, pg, err))
				}
				e.twins[pg] = page.NewTwin(patched)
			}
			n.stats.UpdatesReceived++
		}
	}
	n.mu.Unlock()
	ack := &wire.Msg{Kind: wire.KUpdateAck, Seq: m.Seq, A: m.A}
	n.noteErr(fmt.Sprintf("update ack to %d", src), n.send(src, ack))
}

// applyFlushDone installs the home's reconciliation at the flusher: an
// optional fresh base (when a concurrent flush had invalidated this
// node's copy), this node's own flushed diff on top, then any
// write-backs recovered from invalidated cachers.
func (e *eagerEngine) applyFlushDone(m *wire.Msg) {
	n := e.n
	n.mu.Lock()
	defer n.mu.Unlock()
	fs, ok := e.inflight[m.Seq]
	if !ok {
		panic(fmt.Sprintf("dsm: node %d: flush done for unknown seq %d", n.id, m.Seq))
	}
	delete(e.inflight, m.Seq)
	pc := e.pages[fs.pg]
	if m.Data != nil {
		copy(pc.data, m.Data)
		if err := fs.diff.Apply(pc.data); err != nil {
			panic(fmt.Sprintf("dsm: node %d: reapplying flushed diff to page %d: %v", n.id, fs.pg, err))
		}
	}
	for _, rec := range m.Diffs {
		if err := rec.Diff.Apply(pc.data); err != nil {
			panic(fmt.Sprintf("dsm: node %d: write-back to page %d: %v", n.id, fs.pg, err))
		}
		n.stats.WriteBacks++
	}
	pc.valid = true
}
