package dsm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/wire"
)

// The synchronization machinery below is protocol-independent: locks
// migrate through a static manager to their last holder (§4.2's lock
// transfer), barriers rendezvous through a master. What the messages
// carry — write notices, clocks, piggybacked diffs, or nothing at all —
// is the engine's business, hooked in at the *Locked payload methods.

// --- application API: locks ---

func (n *Node) lockLocalState(l mem.LockID) *lockLocal {
	ll := n.locks[l]
	if ll == nil {
		ll = &lockLocal{}
		n.locks[l] = ll
	}
	return ll
}

// Acquire obtains lock l and performs the engine's acquire-time
// consistency actions: under the lazy protocols the grant message
// carries the releaser's clock and the write notices the acquirer lacks
// (§4.2), and LU additionally revalidates the cached pages they name;
// the eager and SC engines move no consistency payload at acquires.
func (n *Node) Acquire(l mem.LockID) error {
	n.mu.Lock()
	ll := n.lockLocalState(l)
	if ll.held {
		n.mu.Unlock()
		return fmt.Errorf("dsm: node %d: acquire of lock %d already held", n.id, l)
	}
	req := &wire.Msg{
		Kind: wire.KLockReq,
		Seq:  n.nextSeq(),
		A:    int32(l),
		B:    int32(n.id),
	}
	n.e.acquireStartLocked(req)
	if ll.cached {
		ll.held = true
		n.mu.Unlock()
		return nil
	}
	ll.acquiring = true
	n.mu.Unlock()

	grant, err := n.rpc(n.sys.lockMgr(l), req)
	if err != nil {
		return err
	}

	n.mu.Lock()
	ll.held = true
	ll.acquiring = false
	ll.cached = true
	n.mu.Unlock()
	return n.e.onGrant(grant)
}

// Release releases lock l. Under the lazy protocols releases are purely
// local (§4.2) unless a forwarded request is pending, in which case the
// grant — clock, notices, and for LU the retained diffs — goes straight
// to the next acquirer. The eager engines first push the critical
// section's modifications to every other cacher (preRelease), so the
// next holder can never observe pre-release data.
func (n *Node) Release(l mem.LockID) error {
	n.mu.Lock()
	ll := n.lockLocalState(l)
	if !ll.held {
		n.mu.Unlock()
		return fmt.Errorf("dsm: node %d: release of lock %d not held", n.id, l)
	}
	n.mu.Unlock()

	// Eager flush point: blocking message exchanges, so outside mu. The
	// held flag cannot change concurrently (only the application
	// goroutine mutates it).
	if err := n.e.preRelease(); err != nil {
		return err
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	n.e.releaseLocked()
	ll.held = false
	if ll.pending != nil {
		req := ll.pending
		ll.pending = nil
		ll.cached = false
		return n.sendGrantLocked(req)
	}
	return nil
}

// sendGrantLocked builds and sends the lock grant for a forwarded
// request, with the engine's consistency payload. Caller holds mu.
func (n *Node) sendGrantLocked(req *wire.Msg) error {
	grant := &wire.Msg{
		Kind: wire.KLockGrant,
		Seq:  req.Seq,
		A:    req.A,
	}
	n.e.grantLocked(req, grant)
	return n.send(mem.ProcID(req.B), grant)
}

// --- application API: barriers ---

// Barrier blocks until every node has arrived at barrier b, exchanging
// the engine's consistency payload through the master (node 0) —
// 2(n-1) messages, §4.2 — and running the engine's post-barrier episode
// work (data movement, garbage collection). The eager engines flush
// buffered modifications before arriving, so every pre-barrier write is
// propagated before any node exits.
func (n *Node) Barrier(b mem.BarrierID) error {
	if err := n.e.preBarrier(); err != nil {
		return err
	}

	const master = mem.ProcID(0)
	if n.id == master {
		n.mu.Lock()
		n.e.barrierEntryLocked()
		n.mu.Unlock()
		// Collect the other nodes' arrivals.
		arrivals := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
		for len(arrivals) < n.sys.cfg.Procs-1 {
			m, ok := <-n.barCh
			if !ok || m == nil {
				return fmt.Errorf("dsm: master: barrier %d: %w", b, ErrClosed)
			}
			if mem.BarrierID(m.A) != b {
				return fmt.Errorf("dsm: master: arrival for barrier %d during barrier %d", m.A, b)
			}
			arrivals = append(arrivals, m)
		}
		n.mu.Lock()
		for _, m := range arrivals {
			n.e.masterAbsorbLocked(m)
		}
		n.mu.Unlock()
		// Exit messages carry what each arriver lacks.
		for _, m := range arrivals {
			exit := &wire.Msg{Kind: wire.KBarrierExit, Seq: m.Seq, A: int32(b)}
			n.mu.Lock()
			n.e.exitLocked(m, exit)
			n.mu.Unlock()
			if err := n.send(mem.ProcID(m.B), exit); err != nil {
				return err
			}
		}
	} else {
		arrive := &wire.Msg{
			Kind: wire.KBarrierArrive,
			Seq:  n.nextSeq(),
			A:    int32(b),
			B:    int32(n.id),
		}
		n.mu.Lock()
		n.e.barrierEntryLocked()
		n.e.arriveLocked(arrive)
		n.mu.Unlock()
		exit, err := n.rpc(master, arrive)
		if err != nil {
			return err
		}
		if err := n.e.onExit(exit); err != nil {
			return err
		}
	}
	return n.e.postBarrier(b)
}

// --- handler-side lock processing ---

func (n *Node) handleLockReq(m *wire.Msg) {
	l := mem.LockID(m.A)
	requester := mem.ProcID(m.B)
	n.mu.Lock()
	prev, known := n.mgrLast[l]
	n.mgrLast[l] = requester
	if !known {
		// First acquisition anywhere: grant directly from the manager
		// with no consistency payload.
		grant := &wire.Msg{Kind: wire.KLockGrant, Seq: m.Seq, A: m.A}
		n.mu.Unlock()
		n.noteErr(fmt.Sprintf("lock %d first grant to %d", l, requester), n.send(requester, grant))
		return
	}
	n.mu.Unlock()
	fwd := &wire.Msg{Kind: wire.KLockFwd, Seq: m.Seq, A: m.A, B: m.B, VC: m.VC}
	n.noteErr(fmt.Sprintf("lock %d forward to %d", l, prev), n.send(prev, fwd))
}

func (n *Node) handleLockFwd(m *wire.Msg) {
	l := mem.LockID(m.A)
	n.mu.Lock()
	ll := n.lockLocalState(l)
	ll.cached = false
	if ll.held || ll.acquiring {
		// We hold the lock (or our own grant is still in flight): the
		// successor waits for our release.
		if ll.pending != nil {
			panic(fmt.Sprintf("dsm: node %d: two pending requests for lock %d", n.id, l))
		}
		ll.pending = m
		n.mu.Unlock()
		return
	}
	err := n.sendGrantLocked(m)
	n.mu.Unlock()
	n.noteErr(fmt.Sprintf("lock %d grant to %d", l, mem.ProcID(m.B)), err)
}
