package dsm

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/simnet"
	"repro/internal/vc"
	"repro/internal/wire"
)

// --- application API: synchronization ---

func (n *Node) lockLocalState(l mem.LockID) *lockLocal {
	ll := n.locks[l]
	if ll == nil {
		ll = &lockLocal{}
		n.locks[l] = ll
	}
	return ll
}

// Acquire obtains lock l, bringing this node's view of shared memory up
// to date with everything that happened-before the matching release
// (§4.2): the grant message carries the releaser's clock and the write
// notices the acquirer lacks; LU additionally revalidates the cached
// pages they name.
func (n *Node) Acquire(l mem.LockID) error {
	n.mu.Lock()
	n.closeIntervalLocked()
	ll := n.lockLocalState(l)
	if ll.held {
		n.mu.Unlock()
		return fmt.Errorf("dsm: node %d: acquire of lock %d already held", n.id, l)
	}
	if ll.cached {
		ll.held = true
		n.mu.Unlock()
		return nil
	}
	ll.acquiring = true
	req := &wire.Msg{
		Kind: wire.KLockReq,
		Seq:  n.nextSeq(),
		A:    int32(l),
		B:    int32(n.id),
		VC:   n.v.Clone(),
	}
	n.mu.Unlock()

	grant, err := n.rpc(n.sys.lockMgr(l), req)
	if err != nil {
		return err
	}

	n.mu.Lock()
	fresh := n.absorbIntervalsLocked(grant.Intervals)
	// Piggybacked diffs (LU grants) enter the retained-diff store; the
	// revalidation below then fetches only what is still missing.
	for _, rec := range grant.Diffs {
		id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
		if n.diffs[id] == nil {
			n.diffs[id] = make(map[mem.PageID]*page.Diff)
		}
		if _, ok := n.diffs[id][rec.Page]; !ok {
			n.diffs[id][rec.Page] = rec.Diff
		}
	}
	affected := n.invalidateForLocked(fresh)
	ll.held = true
	ll.acquiring = false
	ll.cached = true
	n.mu.Unlock()

	if n.sys.cfg.Mode == LazyUpdate {
		return n.revalidate(affected)
	}
	return nil
}

// Release releases lock l. Releases are purely local (§4.2) unless a
// forwarded request is pending, in which case the grant — clock, notices,
// and for LU the retained diffs — goes straight to the next acquirer.
func (n *Node) Release(l mem.LockID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	ll := n.lockLocalState(l)
	if !ll.held {
		return fmt.Errorf("dsm: node %d: release of lock %d not held", n.id, l)
	}
	n.closeIntervalLocked()
	ll.held = false
	if ll.pending != nil {
		req := ll.pending
		ll.pending = nil
		ll.cached = false
		return n.sendGrantLocked(req)
	}
	return nil
}

// sendGrantLocked builds and sends the lock grant for a forwarded request.
// Caller holds mu.
func (n *Node) sendGrantLocked(req *wire.Msg) error {
	recs := n.intervalsSinceLocked(req.VC)
	grant := &wire.Msg{
		Kind:      wire.KLockGrant,
		Seq:       req.Seq,
		A:         req.A,
		VC:        n.v.Clone(),
		Intervals: recs,
	}
	if n.sys.cfg.Mode == LazyUpdate {
		// Piggyback every retained diff for the noticed intervals — the
		// releaser supplies what it has (Figure 4's "l and x in a single
		// message"); the acquirer fetches any remainder from creators.
		for _, rec := range recs {
			id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
			byPage := n.diffs[id]
			pages := make([]mem.PageID, 0, len(byPage))
			for pg := range byPage {
				pages = append(pages, pg)
			}
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			for _, pg := range pages {
				grant.Diffs = append(grant.Diffs, wire.DiffRec{
					Page: pg, Proc: id.Proc, Index: id.Index, Diff: byPage[pg],
				})
			}
		}
	}
	return n.send(mem.ProcID(req.B), grant)
}

// Barrier blocks until every node has arrived at barrier b, exchanging
// clocks and write notices through the master (node 0) — 2(n-1) messages,
// §4.2 — and running the configured garbage collection epoch afterwards.
func (n *Node) Barrier(b mem.BarrierID) error {
	n.mu.Lock()
	n.closeIntervalLocked()
	myVC := n.v.Clone()
	recs := n.intervalsSinceLocked(n.lastEpoch)
	n.mu.Unlock()

	const master = mem.ProcID(0)
	var fresh []wire.IntervalRec
	if n.id == master {
		// Collect the other nodes' arrivals.
		arrivals := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
		for len(arrivals) < n.sys.cfg.Procs-1 {
			m, ok := <-n.barCh
			if !ok || m == nil {
				return fmt.Errorf("dsm: master: barrier %d: %w", b, simnet.ErrClosed)
			}
			if mem.BarrierID(m.A) != b {
				return fmt.Errorf("dsm: master: arrival for barrier %d during barrier %d", m.A, b)
			}
			arrivals = append(arrivals, m)
		}
		n.mu.Lock()
		for _, m := range arrivals {
			fresh = append(fresh, n.absorbIntervalsLocked(m.Intervals)...)
		}
		merged := n.v.Clone()
		n.mu.Unlock()
		// Exit messages carry what each arriver lacks.
		for _, m := range arrivals {
			n.mu.Lock()
			lack := n.intervalsSinceLocked(m.VC)
			n.mu.Unlock()
			exit := &wire.Msg{
				Kind:      wire.KBarrierExit,
				Seq:       m.Seq,
				A:         int32(b),
				VC:        merged,
				Intervals: lack,
			}
			if err := n.send(mem.ProcID(m.B), exit); err != nil {
				return err
			}
		}
	} else {
		arrive := &wire.Msg{
			Kind:      wire.KBarrierArrive,
			Seq:       n.nextSeq(),
			A:         int32(b),
			B:         int32(n.id),
			VC:        myVC,
			Intervals: recs,
		}
		exit, err := n.rpc(master, arrive)
		if err != nil {
			return err
		}
		n.mu.Lock()
		fresh = n.absorbIntervalsLocked(exit.Intervals)
		n.mu.Unlock()
	}

	n.mu.Lock()
	affected := n.invalidateForLocked(fresh)
	n.lastEpoch = n.v.Clone()
	n.episodes++
	gcDue := n.sys.cfg.GCEveryBarriers > 0 && n.episodes%n.sys.cfg.GCEveryBarriers == 0
	n.mu.Unlock()

	if n.sys.cfg.Mode == LazyUpdate {
		if err := n.revalidate(affected); err != nil {
			return err
		}
	}
	if gcDue {
		return n.runGC(b)
	}
	return nil
}

// runGC is the barrier-time garbage collection epoch: every node validates
// each page it caches (and, as a page's home, materializes pages with
// history so later cold misses can be served), confirms readiness through
// the master, then discards the diffs of every interval the epoch clock
// covers. Interval records are retained (they are small); diff payloads
// are the memory that matters.
func (n *Node) runGC(b mem.BarrierID) error {
	n.mu.Lock()
	epoch := n.lastEpoch.Clone()
	var toValidate []mem.PageID
	for pg := range n.pages {
		pgid := mem.PageID(pg)
		pc := n.pages[pg]
		switch {
		case pc != nil && !pc.valid:
			toValidate = append(toValidate, pgid)
		case pc == nil && n.sys.home(pgid) == n.id && len(n.log.ModifiersOf(pgid)) > 0:
			toValidate = append(toValidate, pgid)
		case pc != nil && pc.valid && !pc.applied.Dominates(epoch):
			toValidate = append(toValidate, pgid)
		}
	}
	n.mu.Unlock()

	if err := n.revalidate(toValidate); err != nil {
		return err
	}

	// Readiness round through the master, so no node truncates while
	// another still needs pre-epoch diffs.
	const master = mem.ProcID(0)
	if n.id == master {
		readies := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
		for len(readies) < n.sys.cfg.Procs-1 {
			m, ok := <-n.gcCh
			if !ok || m == nil {
				return fmt.Errorf("dsm: master: GC round: %w", simnet.ErrClosed)
			}
			if mem.BarrierID(m.A) != b {
				return fmt.Errorf("dsm: master: GC ready for barrier %d during %d", m.A, b)
			}
			readies = append(readies, m)
		}
		for _, m := range readies {
			done := &wire.Msg{Kind: wire.KGCDone, Seq: m.Seq, A: int32(b)}
			if err := n.send(mem.ProcID(m.B), done); err != nil {
				return err
			}
		}
	} else {
		ready := &wire.Msg{Kind: wire.KGCReady, Seq: n.nextSeq(), A: int32(b), B: int32(n.id)}
		if _, err := n.rpc(master, ready); err != nil {
			return err
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	for id := range n.diffs {
		if epoch.Covers(int(id.Proc), id.Index) {
			n.stats.DiffsDiscarded += int64(len(n.diffs[id]))
			delete(n.diffs, id)
		}
	}
	n.stats.GCRuns++
	return nil
}

// --- handler-side request processing ---

func (n *Node) handleLockReq(m *wire.Msg) {
	l := mem.LockID(m.A)
	requester := mem.ProcID(m.B)
	n.mu.Lock()
	prev, known := n.mgrLast[l]
	n.mgrLast[l] = requester
	if !known {
		// First acquisition anywhere: grant directly from the manager
		// with no consistency payload.
		grant := &wire.Msg{Kind: wire.KLockGrant, Seq: m.Seq, A: m.A}
		n.mu.Unlock()
		if err := n.send(requester, grant); err != nil {
			return
		}
		return
	}
	n.mu.Unlock()
	fwd := &wire.Msg{Kind: wire.KLockFwd, Seq: m.Seq, A: m.A, B: m.B, VC: m.VC}
	_ = n.send(prev, fwd)
}

func (n *Node) handleLockFwd(m *wire.Msg) {
	l := mem.LockID(m.A)
	n.mu.Lock()
	ll := n.lockLocalState(l)
	ll.cached = false
	if ll.held || ll.acquiring {
		// We hold the lock (or our own grant is still in flight): the
		// successor waits for our release.
		if ll.pending != nil {
			panic(fmt.Sprintf("dsm: node %d: two pending requests for lock %d", n.id, l))
		}
		ll.pending = m
		n.mu.Unlock()
		return
	}
	err := n.sendGrantLocked(m)
	n.mu.Unlock()
	_ = err
}

func (n *Node) handleDiffReq(m *wire.Msg, src mem.ProcID) {
	n.mu.Lock()
	resp := &wire.Msg{Kind: wire.KDiffResp, Seq: m.Seq}
	for _, w := range m.Wants {
		id := core.IntervalID{Proc: w.Proc, Index: w.Index}
		d := n.diffs[id][w.Page]
		if d == nil {
			n.mu.Unlock()
			panic(fmt.Sprintf("dsm: node %d: asked for diff %v page %d it does not hold", n.id, id, w.Page))
		}
		resp.Diffs = append(resp.Diffs, wire.DiffRec{Page: w.Page, Proc: w.Proc, Index: w.Index, Diff: d})
	}
	n.mu.Unlock()
	_ = n.send(src, resp)
}

func (n *Node) handlePageReq(m *wire.Msg) {
	pg := mem.PageID(m.A)
	requester := mem.ProcID(m.B)
	n.mu.Lock()
	resp := &wire.Msg{Kind: wire.KPageResp, Seq: m.Seq, A: m.A}
	pc := n.pages[pg]
	switch {
	case pc == nil:
		// Never materialized here: the committed state is the zero page.
		resp.Data = make([]byte, n.sys.layout.PageSize())
		resp.VC = vc.New(n.sys.cfg.Procs)
	case n.twins[pg] != nil:
		// Uncommitted writes in the current interval must not leak: the
		// twin holds the committed contents.
		resp.Data = append([]byte(nil), n.twins[pg].Data()...)
		resp.VC = pc.applied.Clone()
	default:
		resp.Data = append([]byte(nil), pc.data...)
		resp.VC = pc.applied.Clone()
	}
	n.mu.Unlock()
	_ = n.send(requester, resp)
}
