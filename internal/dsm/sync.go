package dsm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/wire"
)

// The synchronization machinery below is protocol-independent: locks
// migrate through a static manager to their last holder (§4.2's lock
// transfer), barriers rendezvous through a master. What the messages
// carry — write notices, clocks, piggybacked diffs, or nothing at all —
// is the engine's business, hooked in at the engine payload methods.
//
// With Config.GoroutinesPerNode > 1 both primitives are two-level: the
// node presents one identity to the distributed protocol, and local
// goroutines rendezvous in front of it. Lock contention between local
// goroutines resolves by local handoff (the cached-reacquire fast path
// of §4.2 — no protocol traffic); a barrier's last local arriver runs
// the cluster exchange on behalf of the node and releases the rest.

// --- application API: locks ---

// lockLocalState returns (creating if needed) lock l's local record.
// Caller holds lockMu.
func (n *Node) lockLocalState(l mem.LockID) *lockLocal {
	ll := n.locks[l]
	if ll == nil {
		ll = &lockLocal{}
		n.locks[l] = ll
	}
	return ll
}

// Acquire obtains lock l and performs the engine's acquire-time
// consistency actions: under the lazy protocols the grant message
// carries the releaser's clock and the write notices the acquirer lacks
// (§4.2), and LU additionally revalidates the cached pages they name;
// the eager and SC engines move no consistency payload at acquires.
//
// Any number of goroutines on the node may contend for the same lock:
// while one holds it the others park on a local queue and are handed
// the lock at release without touching the interconnect. A goroutine
// must not re-acquire a lock it already holds (self-deadlock, exactly
// as with a real mutex).
func (n *Node) Acquire(l mem.LockID) error {
	for {
		n.lockMu.Lock()
		ll := n.lockLocalState(l)
		if !ll.held && !ll.acquiring {
			req := &wire.Msg{
				Kind: wire.KLockReq,
				Seq:  n.nextSeq(),
				A:    int32(l),
				B:    int32(n.id),
			}
			// The acquire-time engine hook runs on every successful
			// acquisition path, local handoffs included: under the lazy
			// protocols an acquire delimits the current interval.
			n.e.acquireStart(req)
			if ll.cached {
				ll.held = true
				n.lockMu.Unlock()
				n.emit("sync", "cs-enter", int64(l))
				return nil
			}
			ll.acquiring = true
			n.lockMu.Unlock()

			grant, err := n.rpc(n.sys.lockMgr(l), req)
			if err != nil {
				n.lockMu.Lock()
				ll.acquiring = false
				// Wake parked goroutines so they observe the failure (or
				// retry) instead of waiting for a release that never comes.
				for _, ch := range ll.waiters {
					close(ch)
				}
				ll.waiters = nil
				n.lockMu.Unlock()
				return err
			}

			n.lockMu.Lock()
			ll.held = true
			ll.acquiring = false
			ll.cached = true
			n.lockMu.Unlock()
			n.emit("sync", "cs-enter", int64(l))
			return n.e.onGrant(grant)
		}
		// Held (or being acquired) by another local goroutine: park until
		// a release hands the lock over or sends it away, then retry.
		ch := make(chan struct{})
		ll.waiters = append(ll.waiters, ch)
		n.lockMu.Unlock()
		select {
		case <-ch:
		case <-n.closedCh:
			return fmt.Errorf("dsm: node %d: acquire of lock %d: %w", n.id, l, ErrClosed)
		}
	}
}

// Release releases lock l. Under the lazy protocols releases are purely
// local (§4.2) unless a forwarded request is pending, in which case the
// grant — clock, notices, and for LU the retained diffs — goes straight
// to the next acquirer. The eager engines first push the critical
// section's modifications to every other cacher (preRelease), so the
// next holder can never observe pre-release data. A remote requester
// already waiting takes precedence over parked local goroutines (they
// re-contend through the manager), keeping the distributed protocol
// starvation-free.
func (n *Node) Release(l mem.LockID) error {
	n.lockMu.Lock()
	ll := n.lockLocalState(l)
	if !ll.held {
		n.lockMu.Unlock()
		return fmt.Errorf("dsm: node %d: release of lock %d not held", n.id, l)
	}
	n.lockMu.Unlock()
	n.emit("sync", "cs-exit", int64(l))

	// Eager flush point: blocking message exchanges, so outside lockMu.
	// Only the holding goroutine calls Release, so held cannot flip
	// underneath us; a concurrent local Acquire parks on the waiter
	// queue, and a remote request parks in ll.pending.
	if err := n.e.preRelease(); err != nil {
		return err
	}

	n.lockMu.Lock()
	defer n.lockMu.Unlock()
	n.e.release()
	ll.held = false
	var err error
	if ll.pending != nil {
		req := ll.pending
		ll.pending = nil
		ll.cached = false
		err = n.sendGrant(req)
	}
	if len(ll.waiters) > 0 {
		if ll.cached {
			// Local handoff: wake exactly one parked goroutine; it takes
			// the cached fast path.
			close(ll.waiters[0])
			ll.waiters = ll.waiters[1:]
		} else {
			// The lock left the node: every parked goroutine re-contends
			// through the manager.
			for _, ch := range ll.waiters {
				close(ch)
			}
			ll.waiters = nil
		}
	}
	return err
}

// sendGrant builds and sends the lock grant for a forwarded request,
// with the engine's consistency payload. Caller holds lockMu.
func (n *Node) sendGrant(req *wire.Msg) error {
	grant := &wire.Msg{
		Kind: wire.KLockGrant,
		Seq:  req.Seq,
		A:    req.A,
	}
	n.e.grant(req, grant)
	return n.send(mem.ProcID(req.B), grant)
}

// --- application API: barriers ---

// Barrier blocks until every participant has arrived at barrier b: the
// node's GoroutinesPerNode local goroutines first, then every node of
// the cluster, exchanging the engine's consistency payload through the
// master (node 0) — 2(n-1) messages, §4.2 — and running the engine's
// post-barrier episode work (data movement, garbage collection) once
// per node. The eager engines flush buffered modifications before
// arriving, so every pre-barrier write is propagated before any
// participant exits. All local participants must name the same barrier
// id within one episode.
func (n *Node) Barrier(b mem.BarrierID) error {
	k := n.sys.cfg.GoroutinesPerNode
	if k <= 1 {
		return n.clusterBarrier(b)
	}
	n.barMu.Lock()
	ep := n.bar
	if ep == nil {
		ep = &barEpisode{id: b, done: make(chan struct{})}
		n.bar = ep
	}
	if ep.id != b {
		n.barMu.Unlock()
		return fmt.Errorf("dsm: node %d: barrier %d entered while barrier %d is rendezvousing", n.id, b, ep.id)
	}
	ep.arrived++
	if ep.arrived == k {
		// Leader: run the cluster exchange on behalf of the node. The
		// episode slot is cleared first so released participants can
		// immediately start the next rendezvous.
		n.bar = nil
		n.barMu.Unlock()
		ep.err = n.clusterBarrier(b)
		close(ep.done)
		return ep.err
	}
	n.barMu.Unlock()
	select {
	case <-ep.done:
		return ep.err
	case <-n.closedCh:
		return fmt.Errorf("dsm: node %d: barrier %d: %w", n.id, b, ErrClosed)
	}
}

// clusterBarrier is the node-level barrier: the distributed rendezvous
// through the master plus the engine's pre/post episode work. On
// classification epochs (every AdaptEveryBarriers-th barrier) the
// arrival and exit messages additionally carry the adaptive exchange in
// their Data payload — per-page counter deltas up, the master's re-route
// decision down — and a non-empty re-route set is applied in a dedicated
// rendezvous before any application goroutine leaves the barrier (see
// adaptive.go).
func (n *Node) clusterBarrier(b mem.BarrierID) error {
	n.emit("sync", "barrier-enter", int64(b))
	if err := n.e.preBarrier(); err != nil {
		return err
	}

	n.barCount++
	adaptDue := n.sys.cfg.AdaptEveryBarriers > 0 &&
		n.barCount%n.sys.cfg.AdaptEveryBarriers == 0
	// The first-touch exchange rides the first cluster barrier only;
	// every node computes ftDue from its own synchronized barrier count,
	// so the whole cluster agrees which barrier carries the claims.
	ftDue := !n.rt.ftDone
	exchangeDue := adaptDue || ftDue

	var routes []reroute
	var homes []homeDelta
	newEpoch := uint32(0)

	const master = mem.ProcID(0)
	if n.id == master {
		n.e.barrierEntry()
		// Collect the other nodes' arrivals.
		arrivals := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
		for len(arrivals) < n.sys.cfg.Procs-1 {
			m, err := n.collect(n.barCh, fmt.Sprintf("master: barrier %d", b))
			if err != nil {
				return err
			}
			if mem.BarrierID(m.A) != b {
				return fmt.Errorf("dsm: master: arrival for barrier %d during barrier %d", m.A, b)
			}
			arrivals = append(arrivals, m)
		}
		for _, m := range arrivals {
			n.e.masterAbsorb(m)
		}
		var exitData []byte
		if exchangeDue {
			st := &adaptState{epoch: n.rt.epoch.Load()}
			for _, m := range arrivals {
				n.absorbPeerExchange(st, m, adaptDue, ftDue)
			}
			newEpoch = st.epoch
			if adaptDue {
				st.nodes = append(st.nodes, n.id)
				st.deltas = append(st.deltas, n.rt.snapshotDeltas())
				newEpoch, routes = n.rt.classifyRoutes(st)
			}
			if ftDue {
				for _, c := range n.rt.snapshotClaims() {
					st.claims = append(st.claims, ftClaim{pg: c.pg, node: n.id, score: c.score})
				}
				homes = n.rt.planFirstTouch(st)
			} else if adaptDue && n.sys.cfg.MigrateHomes {
				homes = n.rt.planHomeMoves(st)
			}
			if len(homes) > 0 && newEpoch == st.epoch {
				newEpoch = st.epoch + 1
			}
			exitData = encodeExitPlan(newEpoch, routes, homes)
		}
		// Exit messages carry what each arriver lacks.
		for _, m := range arrivals {
			exit := &wire.Msg{Kind: wire.KBarrierExit, Seq: m.Seq, A: int32(b), Data: exitData}
			n.e.exit(m, exit)
			if err := n.send(mem.ProcID(m.B), exit); err != nil {
				return err
			}
		}
	} else {
		arrive := &wire.Msg{
			Kind: wire.KBarrierArrive,
			Seq:  n.nextSeq(),
			A:    int32(b),
			B:    int32(n.id),
		}
		if exchangeDue {
			var deltas []counterDelta
			if adaptDue {
				deltas = n.rt.snapshotDeltas()
			}
			var claims []homeClaim
			if ftDue {
				claims = n.rt.snapshotClaims()
			}
			arrive.Data = encodeExchange(n.rt.epoch.Load(), deltas, claims)
		}
		n.e.barrierEntry()
		n.e.arrive(arrive)
		exit, err := n.rpc(master, arrive)
		if err != nil {
			return err
		}
		if exchangeDue {
			// An undecodable plan — or an invalid re-route set — must fail
			// the barrier loudly: a node that silently skipped it would
			// route pages differently from the rest of the cluster. An
			// invalid home-delta section is merely recorded and dropped
			// (see decodeExitPlan); a home is a placement hint, and a
			// dropped move leaves every table consistent.
			var homeErr error
			newEpoch, routes, homes, homeErr, err = decodeExitPlan(
				exit.Data, n.sys.layout.NumPages(), n.sys.cfg.Procs)
			if err != nil {
				return fmt.Errorf("dsm: node %d: barrier %d: %w", n.id, b, err)
			}
			if homeErr != nil {
				n.noteErr("home delta", homeErr)
				homes = nil
			}
		}
		if err := n.e.onExit(exit); err != nil {
			return err
		}
	}
	if ftDue {
		n.rt.ftDone = true
	}
	if err := n.e.postBarrier(b); err != nil {
		return err
	}
	if len(routes) > 0 || len(homes) > 0 {
		if err := n.applyReclass(b, routes, homes, newEpoch); err != nil {
			return err
		}
	}
	n.emit("sync", "barrier-exit", int64(b))
	return nil
}

// --- handler-side lock processing ---

// handleLockReq runs on the lock's shard worker: its sends are staged
// on the outbox and leave at the worker's drain point, so a burst of
// lock traffic through this manager coalesces per destination.
func (n *Node) handleLockReq(m *wire.Msg) {
	l := mem.LockID(m.A)
	requester := mem.ProcID(m.B)
	if !n.validProc(requester) {
		n.noteErr("lock request",
			fmt.Errorf("lock %d request from invalid requester %d", l, requester))
		return
	}
	n.lockMu.Lock()
	prev, known := n.mgrLast[l]
	n.mgrLast[l] = requester
	if !known {
		// First acquisition anywhere: grant directly from the manager
		// with no consistency payload.
		grant := &wire.Msg{Kind: wire.KLockGrant, Seq: m.Seq, A: m.A}
		n.lockMu.Unlock()
		n.stage(requester, grant)
		return
	}
	n.lockMu.Unlock()
	// The forward carries the requester's consistency payload through —
	// both the flat VC (legacy single-payload form) and the mode-tagged
	// sections each resident engine stamped in acquireStart.
	fwd := &wire.Msg{Kind: wire.KLockFwd, Seq: m.Seq, A: m.A, B: m.B, VC: m.VC, Sections: m.Sections}
	n.stage(prev, fwd)
}

func (n *Node) handleLockFwd(m *wire.Msg) {
	l := mem.LockID(m.A)
	if !n.validProc(mem.ProcID(m.B)) {
		n.noteErr("lock forward",
			fmt.Errorf("lock %d forwarded for invalid requester %d", l, m.B))
		return
	}
	n.lockMu.Lock()
	ll := n.lockLocalState(l)
	ll.cached = false
	if ll.held || ll.acquiring {
		// A local goroutine holds the lock (or our own grant is still in
		// flight): the successor waits for our release.
		if ll.pending != nil {
			// The manager forwards each lock to exactly one successor at a
			// time, so a second pending request can only come from a
			// confused or hostile peer: keep the first, record and drop
			// the duplicate.
			n.lockMu.Unlock()
			n.noteErr("lock forward",
				fmt.Errorf("two pending requests for lock %d", l))
			return
		}
		ll.pending = m
		n.lockMu.Unlock()
		return
	}
	err := n.sendGrant(m)
	n.lockMu.Unlock()
	n.noteErr(fmt.Sprintf("lock %d grant to %d", l, mem.ProcID(m.B)), err)
}
