package dsm

import (
	"encoding/binary"
	stdnet "net"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/transport"
	"repro/internal/wire"
)

// outbox is the node's unified outbound message pipeline: every protocol
// message leaves through it. Senders stage typed messages per
// destination and flush at well-defined points — immediately for
// latency-critical singles (send), after a group of requests is staged
// (rpcAll), or at the end of a shard-worker dispatch burst (the worker's
// queue-empty transition) — and a flush coalesces everything staged for
// one peer into a single batch frame: one physical hop, one fixed
// network cost, paid once instead of per message.
//
// Ordering: each destination has one FIFO stage queue, flushed while its
// lock is held, so the per-(sender,receiver) FIFO order the directory
// and install invariants rely on is exactly the staging order — mixing
// deferred (worker) and immediate (application) sends to one peer can
// never reorder them, it only decides how many frames they share.
//
// Encoding is pooled and append-style: a flush encodes its messages
// back to back into one wire.GetBuf buffer (steady-state the payload
// bytes are never reallocated) and hands it to the transport — ownership transfers on a single-frame
// Send; a batch is lent to SendBatch as vectored sub-slices and
// recycled here after the transport has written or copied it.
//
// Every staged message must be followed by a flush its stager is
// responsible for: application-side paths flush inline (send, rpcAll),
// and shard workers flush at their drain point. Staging from a
// goroutine with no such flush point would strand the message.
type outbox struct {
	n     *Node
	batch bool // coalesce multi-message flushes into batch frames
	dsts  []outDest
}

// outDest is one destination's stage queue plus flush scratch, all
// guarded by mu (a leaf lock: nothing else is acquired under it except
// the transport's own internals inside Send).
type outDest struct {
	mu   sync.Mutex
	pend []*wire.Msg
	// count mirrors len(pend) for flushAll's lock-free skip of clean
	// destinations; it is maintained under mu, so a staged message is
	// always visible to its stager's own later flush.
	count atomic.Int32
	// broken makes a flush failure sticky, mirroring the TCP sender's
	// fail-stop: once a send to this destination errors, every later
	// flush returns the same error. This routes the failure to whoever
	// staged for the destination, not just whoever happened to flush it
	// — a shard worker's drain-point flushAll may race into the window
	// between an rpc's stage and its own flush, and without the sticky
	// error the requester would see an empty queue, return nil, and
	// park in await forever while the failure sat in the worker's
	// noteErr.
	broken error
	// flush scratch, reused across flushes: the batch frame slices and
	// sub-message end offsets. After a flush returns, bufs may hold
	// stale references into a recycled buffer; the next flush overwrites
	// them before any use.
	bufs stdnet.Buffers
	ends []int
}

func newOutbox(n *Node, batch bool) *outbox {
	return &outbox{n: n, batch: batch, dsts: make([]outDest, n.sys.cfg.Procs)}
}

// stage queues m for dst without sending it. The caller must guarantee
// a flush follows: its own send/flushDst/flushAll, or — on a shard
// worker — the worker's end-of-dispatch flush point.
func (o *outbox) stage(dst mem.ProcID, m *wire.Msg) {
	d := &o.dsts[dst]
	d.mu.Lock()
	d.pend = append(d.pend, m)
	d.count.Store(int32(len(d.pend)))
	d.mu.Unlock()
}

// send stages m and immediately flushes its destination — the
// latency-critical single-message path (requests about to block, lock
// grants). Anything staged earlier for dst rides the same flush, ahead
// of m in FIFO order.
func (o *outbox) send(dst mem.ProcID, m *wire.Msg) error {
	o.stage(dst, m)
	return o.flushDst(dst)
}

// flushAll flushes every destination with staged messages. All
// destinations are attempted even after an error (other peers' traffic
// must not be stranded by one dead stream); the first error is
// returned.
func (o *outbox) flushAll() error {
	var first error
	for i := range o.dsts {
		if o.dsts[i].count.Load() == 0 {
			continue
		}
		if err := o.flushDst(mem.ProcID(i)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushDst encodes and sends everything staged for dst: one plain frame
// for a single message (or with batching disabled), one batch frame for
// several. The destination lock is held across the transport send, so
// concurrent flushes cannot reorder the stream.
func (o *outbox) flushDst(dst mem.ProcID) error {
	n := o.n
	d := &o.dsts[dst]
	d.mu.Lock()
	defer d.mu.Unlock()
	pend := d.pend
	// The queue empties before the send: a failed send drops its
	// messages (exactly like a failed Endpoint.Send always has) rather
	// than leaving them staged for an accidental resend.
	d.pend = pend[:0]
	d.count.Store(0)
	defer func() {
		for i := range pend {
			pend[i] = nil // release Msg references held by the reused array
		}
	}()
	if d.broken != nil {
		return d.broken
	}
	if len(pend) == 0 {
		return nil
	}
	// poison records a send failure and makes it sticky (see broken).
	poison := func(err error) error {
		if err != nil {
			d.broken = err
		}
		return err
	}
	remote := dst != n.id

	if !o.batch || len(pend) == 1 {
		for _, m := range pend {
			buf := m.EncodeAppend(wire.GetBuf())
			if remote {
				n.stats.countSent(m.Kind, len(buf))
				n.stats.sentFrames.Add(1)
			}
			// Ownership of buf passes to the transport (in-process
			// delivery hands it to the receiver, which recycles it).
			if err := n.ep.Send(int(dst), buf); err != nil {
				return poison(err)
			}
		}
		return nil
	}

	// Batch frame: header plus every message length-prefixed, encoded
	// back to back into one pooled buffer, then lent to the transport as
	// one vectored send — frames[0] the header, each later element one
	// message, so the transport accounts the batch without parsing it.
	buf := wire.AppendBatchHeader(wire.GetBuf(), len(pend))
	hdrEnd := len(buf)
	ends := d.ends[:0]
	for _, m := range pend {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = m.EncodeAppend(buf)
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
		ends = append(ends, len(buf))
		if remote {
			n.stats.countSent(m.Kind, len(buf)-start-4)
		}
	}
	d.ends = ends
	frames := d.bufs[:0]
	frames = append(frames, buf[:hdrEnd])
	prev := hdrEnd
	for _, e := range ends {
		frames = append(frames, buf[prev:e])
		prev = e
	}
	d.bufs = frames
	if remote {
		n.stats.sentFrames.Add(1)
		n.stats.sentBatches.Add(1)
	}
	err := transport.SendBatch(n.ep, int(dst), frames)
	// The batch buffer was only lent (the transport wrote or copied it);
	// recycle it.
	wire.PutBuf(buf)
	return poison(err)
}
