package dsm

import (
	"encoding/binary"
	stdnet "net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mem"
	"repro/internal/transport"
	"repro/internal/wire"
)

// outbox is the node's unified outbound message pipeline: every protocol
// message leaves through it. Senders stage typed messages per
// destination and flush at well-defined points — immediately for
// latency-critical singles (send), after a group of requests is staged
// (rpcAll), or at the end of a shard-worker dispatch burst (the worker's
// queue-empty transition) — and a flush coalesces everything staged for
// one peer into a single batch frame: one physical hop, one fixed
// network cost, paid once instead of per message.
//
// On top of the structural flush points sits a configurable policy
// engine (Config.Flush):
//
//   - Thresholds: crossing MaxMsgs staged messages or MaxBytes of
//     estimated encoding flushes the destination at once, bounding
//     batch size and staging memory.
//   - Nagle-style delay: an rpc requester — which is about to block for
//     its response anyway — holds its destination open for up to Delay
//     before flushing, so concurrent request traffic from other
//     application goroutines on the same node (the gpn>1 pattern)
//     coalesces into the same frame instead of only at worker drain
//     points. The hold ends early on a threshold kick, when another
//     flusher empties the destination, or at shutdown; the requester
//     then flushes its own destination itself, preserving the sticky
//     error routing below.
//   - Request-burst collector: replies a burst of requests from one
//     peer produces are keyed to that peer — the dispatch loop counts
//     each worker-bound frame against its source, workers count them
//     back off as they complete, and the drain-point flushAll skips a
//     peer while its count is up; the completion that takes it to zero
//     performs the flush. A k-message request burst's replies therefore
//     leave as one deterministic frame regardless of how the shard
//     workers interleaved, instead of splitting on whichever worker
//     drained first.
//
// A built physical frame of at least Config.CompressMin bytes is
// flate-compressed (wire.Compress) and sent as one compressed frame
// when that is strictly smaller; transports account post-compression
// bytes as Bytes and the logical size as RawBytes, so the latency model
// charges what actually crossed the wire.
//
// Ordering: each destination has one FIFO stage queue, flushed while its
// lock is held, so the per-(sender,receiver) FIFO order the directory
// and install invariants rely on is exactly the staging order — mixing
// deferred (worker) and immediate (application) sends to one peer can
// never reorder them, it only decides how many frames they share. The
// policy engine decides when a flush happens, never the order within
// the queue.
//
// Encoding is pooled and append-style: a flush encodes its messages
// back to back into one wire.GetBuf buffer (steady-state the payload
// bytes are never reallocated) and hands it to the transport — ownership
// transfers on a single-frame Send; a batch is lent to SendBatch as
// vectored sub-slices and recycled here after the transport has written
// or copied it.
//
// Every staged message must be followed by a flush its stager is
// responsible for: application-side paths flush inline (send, rpcAll),
// and shard workers flush at their drain point (collector-gated
// destinations hand that responsibility to the completion that zeroes
// the gate). Staging from a goroutine with no such flush point would
// strand the message.
type outbox struct {
	n     *Node
	batch bool // coalesce multi-message flushes into batch frames
	// policy and compressMin are Config.Flush and Config.CompressMin,
	// zeroed when batching is off (NoBatch disables the whole policy
	// engine: every message is its own immediate frame).
	policy      FlushPolicy
	compressMin int
	dsts        []outDest
}

// outDest is one destination's stage queue plus flush scratch, all
// guarded by mu (a leaf lock: nothing else is acquired under it except
// the transport's own internals inside Send).
type outDest struct {
	mu   sync.Mutex
	pend []*wire.Msg
	// staged estimates the pending messages' total encoded size
	// (wire.Msg.SizeHint), maintained under mu for the MaxBytes
	// threshold.
	staged int
	// kickCh broadcasts "stop holding this destination" to Nagle
	// sleepers: created lazily by the first sleeper, closed (and
	// cleared) when a threshold trips or a flush takes the queue.
	kickCh chan struct{}
	// count mirrors len(pend) for flushAll's lock-free skip of clean
	// destinations; it is maintained under mu, so a staged message is
	// always visible to its stager's own later flush.
	count atomic.Int32
	// inflight is the collector gate: frames from THIS peer currently
	// dispatched to shard workers and not yet processed. While it is
	// up, drain-point flushes skip the peer (its burst's replies are
	// still accumulating); the completion that drops it to zero
	// flushes. Maintained outside mu — the dispatch loop increments
	// before enqueueing, workers decrement after processing.
	inflight atomic.Int32
	// broken makes a flush failure sticky, mirroring the TCP sender's
	// fail-stop: once a send to this destination errors, every later
	// flush returns the same error. This routes the failure to whoever
	// staged for the destination, not just whoever happened to flush it
	// — a shard worker's drain-point flushAll may race into the window
	// between an rpc's stage and its own flush, and without the sticky
	// error the requester would see an empty queue, return nil, and
	// park in await forever while the failure sat in the worker's
	// noteErr.
	broken error
	// flush scratch, reused across flushes: the batch frame slices and
	// sub-message end offsets. After a flush returns, bufs may hold
	// stale references into a recycled buffer; the next flush overwrites
	// them before any use.
	bufs stdnet.Buffers
	ends []int
}

func newOutbox(n *Node, batch bool) *outbox {
	o := &outbox{n: n, batch: batch, dsts: make([]outDest, n.sys.cfg.Procs)}
	if batch {
		o.policy = n.sys.cfg.Flush
		o.compressMin = n.sys.cfg.CompressMin
	}
	return o
}

// stage queues m for dst without sending it. The caller must guarantee
// a flush follows: its own send/flushDst/flushAll, or — on a shard
// worker — the worker's end-of-dispatch flush point. Crossing a policy
// threshold flushes the destination inline (errors stay sticky for the
// structural flush that follows) after kicking any Nagle sleepers.
func (o *outbox) stage(dst mem.ProcID, m *wire.Msg) {
	d := &o.dsts[dst]
	d.mu.Lock()
	d.pend = append(d.pend, m)
	d.staged += m.SizeHint()
	d.count.Store(int32(len(d.pend)))
	hit := (o.policy.MaxMsgs > 0 && len(d.pend) >= o.policy.MaxMsgs) ||
		(o.policy.MaxBytes > 0 && d.staged >= o.policy.MaxBytes)
	if hit {
		d.kickLocked()
	}
	d.mu.Unlock()
	if hit {
		// The threshold flush bounds batch size mid-burst. Its error (if
		// any) is made sticky by flushDst, so the stager's own guaranteed
		// flush point still observes it; nothing to handle here.
		o.flushDst(dst)
	}
}

// kickLocked wakes every Nagle sleeper holding this destination open.
// Caller holds d.mu.
func (d *outDest) kickLocked() {
	if d.kickCh != nil {
		close(d.kickCh)
		d.kickCh = nil
	}
}

// send stages m and immediately flushes its destination — the
// latency-critical single-message path (requests about to block, lock
// grants). Anything staged earlier for dst rides the same flush, ahead
// of m in FIFO order.
func (o *outbox) send(dst mem.ProcID, m *wire.Msg) error {
	o.stage(dst, m)
	return o.flushDst(dst)
}

// sendRPC stages a request and flushes its destination after the
// Nagle-style hold (see FlushPolicy.Delay): the requester is the
// flusher, so a failed flush surfaces to it directly — no waiter can be
// stranded by a failed background flush, because there is none.
func (o *outbox) sendRPC(dst mem.ProcID, m *wire.Msg) error {
	o.stage(dst, m)
	o.nagleWait(dst)
	return o.flushDst(dst)
}

// nagleWait holds dst open for up to the policy delay so concurrent
// traffic coalesces, returning early when a threshold kick fires, when
// another flusher has already taken the queue (our message is on the
// wire — waiting longer buys nothing), or at shutdown.
func (o *outbox) nagleWait(dst mem.ProcID) {
	if o.policy.Delay <= 0 || dst == o.n.id {
		return
	}
	d := &o.dsts[dst]
	d.mu.Lock()
	if len(d.pend) == 0 || d.broken != nil {
		d.mu.Unlock()
		return
	}
	if d.kickCh == nil {
		d.kickCh = make(chan struct{})
	}
	ch := d.kickCh
	d.mu.Unlock()
	t := time.NewTimer(o.policy.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ch:
	case <-o.n.closedCh:
	}
}

// noteDispatched counts a worker-bound frame from src against the
// collector gate (see outDest.inflight). The dispatch loop calls it
// before enqueueing, so the count can never go negative.
func (o *outbox) noteDispatched(src mem.ProcID) {
	if o.batch {
		o.dsts[src].inflight.Add(1)
	}
}

// noteCompleted counts a processed frame back off src's collector gate;
// the completion that zeroes the gate flushes the burst's accumulated
// replies as one frame. Errors are recorded like any drain-point flush.
func (o *outbox) noteCompleted(src mem.ProcID) {
	if !o.batch {
		return
	}
	if o.dsts[src].inflight.Add(-1) == 0 {
		o.n.noteErr("outbox flush", o.flushDst(src))
	}
}

// flushAll flushes every destination with staged messages. All
// destinations are attempted even after an error (other peers' traffic
// must not be stranded by one dead stream); the first error is
// returned. Collector-gated destinations are skipped: their peer's
// request burst is still being processed, and the completion that
// zeroes the gate will flush them (inflight > 0 always implies such a
// completion is pending).
func (o *outbox) flushAll() error {
	var first error
	for i := range o.dsts {
		if o.dsts[i].count.Load() == 0 {
			continue
		}
		if o.batch && o.dsts[i].inflight.Load() > 0 {
			continue
		}
		if err := o.flushDst(mem.ProcID(i)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushDst encodes and sends everything staged for dst: one plain frame
// for a single message (or with batching disabled), one batch frame for
// several — compressed when the policy's size gate passes. The
// destination lock is held across the transport send, so concurrent
// flushes cannot reorder the stream.
func (o *outbox) flushDst(dst mem.ProcID) error {
	n := o.n
	d := &o.dsts[dst]
	d.mu.Lock()
	defer d.mu.Unlock()
	pend := d.pend
	// The queue empties before the send: a failed send drops its
	// messages (exactly like a failed Endpoint.Send always has) rather
	// than leaving them staged for an accidental resend.
	d.pend = pend[:0]
	d.staged = 0
	d.count.Store(0)
	// Whatever was held for is leaving (or was already gone): sleepers
	// holding this destination open can stop.
	d.kickLocked()
	defer func() {
		for i := range pend {
			pend[i] = nil // release Msg references held by the reused array
		}
	}()
	if d.broken != nil {
		return d.broken
	}
	if len(pend) == 0 {
		return nil
	}
	if remote := dst != n.id; remote && n.traceOn() {
		n.emit("send", "frame", int64(len(pend)))
	}
	// poison records a send failure and makes it sticky (see broken).
	// The first failure also propagates the peer's death to the node:
	// rpc waiters parked on this destination are failed immediately —
	// their responses can never arrive over a broken stream — instead
	// of waiting out the rpc timeout (or forever without one).
	poison := func(err error) error {
		if err != nil {
			d.broken = err
			n.peerFailed(dst, err)
		}
		return err
	}
	remote := dst != n.id

	if !o.batch || len(pend) == 1 {
		for _, m := range pend {
			buf := m.EncodeAppend(wire.GetBuf())
			if remote {
				n.stats.countSent(m.Kind, len(buf))
				n.stats.sentFrames.Add(1)
			}
			if z, ok := o.compress(remote, buf); ok {
				// Ownership of z passes to the transport; buf stays ours.
				err := transport.SendCompressed(n.ep, int(dst), 1, len(buf), z)
				wire.PutBuf(buf)
				if err != nil {
					return poison(err)
				}
				continue
			}
			// Ownership of buf passes to the transport (in-process
			// delivery hands it to the receiver, which recycles it).
			if err := n.ep.Send(int(dst), buf); err != nil {
				return poison(err)
			}
		}
		return nil
	}

	// Batch frame: header plus every message length-prefixed, encoded
	// back to back into one pooled buffer, then lent to the transport as
	// one vectored send — frames[0] the header, each later element one
	// message, so the transport accounts the batch without parsing it.
	buf := wire.AppendBatchHeader(wire.GetBuf(), len(pend))
	hdrEnd := len(buf)
	ends := d.ends[:0]
	for _, m := range pend {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = m.EncodeAppend(buf)
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
		ends = append(ends, len(buf))
		if remote {
			n.stats.countSent(m.Kind, len(buf)-start-4)
		}
	}
	d.ends = ends
	if remote {
		n.stats.sentFrames.Add(1)
		n.stats.sentBatches.Add(1)
	}
	if z, ok := o.compress(remote, buf); ok {
		err := transport.SendCompressed(n.ep, int(dst), len(pend), len(buf), z)
		wire.PutBuf(buf)
		return poison(err)
	}
	frames := d.bufs[:0]
	frames = append(frames, buf[:hdrEnd])
	prev := hdrEnd
	for _, e := range ends {
		frames = append(frames, buf[prev:e])
		prev = e
	}
	d.bufs = frames
	err := transport.SendBatch(n.ep, int(dst), frames)
	// The batch buffer was only lent (the transport wrote or copied it);
	// recycle it.
	wire.PutBuf(buf)
	return poison(err)
}

// compress applies the compression gate to a built frame: remote
// destination, at least compressMin bytes, and strictly smaller
// compressed. The returned frame (when ok) is a pooled buffer the
// caller hands to the transport; the input frame remains the caller's.
func (o *outbox) compress(remote bool, frame []byte) ([]byte, bool) {
	if !remote || o.compressMin <= 0 || len(frame) < o.compressMin {
		return nil, false
	}
	return wire.Compress(frame)
}
