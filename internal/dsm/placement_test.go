package dsm

import (
	"strings"
	"testing"

	"repro/internal/transport/tcp"
	"repro/internal/wire"
)

// Placement unit coverage and hostile home-delta hardening. The live
// tests puppet one side of a two-node TCP cluster: the real System under
// test runs a genuine barrier while the test plays its peer over the raw
// endpoint, which is the only way to put a forged placement payload in
// front of the real decode path.

func TestParsePlacement(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Placement
	}{
		{"", PlaceBlock}, {"block", PlaceBlock}, {"rr", PlaceRR}, {"first-touch", PlaceFirstTouch},
	} {
		got, err := ParsePlacement(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePlacement(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePlacement("best-fit"); err == nil {
		t.Error("ParsePlacement accepted an unknown policy")
	}
}

func TestInitialHomes(t *testing.T) {
	block := initialHomes(PlaceBlock, 8, 3)
	for pg, h := range block {
		if int(h) != pg%3 {
			t.Fatalf("block home(%d) = %d, want %d", pg, h, pg%3)
		}
	}
	rr := initialHomes(PlaceRR, 16, 2)
	for pg, h := range rr {
		if want := (pg / rrRunPages) % 2; int(h) != want {
			t.Fatalf("rr home(%d) = %d, want %d", pg, h, want)
		}
	}
	// First-touch starts from the block table; the exchange refines it.
	ft := initialHomes(PlaceFirstTouch, 8, 3)
	for pg := range ft {
		if ft[pg] != block[pg] {
			t.Fatalf("first-touch initial home(%d) = %d, want block's %d", pg, ft[pg], block[pg])
		}
	}
	if got, want := FormatHomeTable(rr[:8]), "pg0-3=0,pg4-7=1"; got != want {
		t.Errorf("FormatHomeTable = %q, want %q", got, want)
	}
}

// TestExitPlanDecodeSeverities: a structurally broken plan (or a bad
// re-route) is a hard error; a bad home section is the soft, recorded-
// and-dropped kind, with the re-routes surviving.
func TestExitPlanDecodeSeverities(t *testing.T) {
	const numPages, procs = 8, 2
	// Hard: truncation and hostile counts.
	if _, _, _, _, err := decodeExitPlan([]byte{1, 2}, numPages, procs); err == nil {
		t.Error("truncated plan decoded")
	}
	if _, _, _, _, err := decodeExitPlan(encodeExitPlan(1, []reroute{{pg: 99, mode: SeqConsistent}}, nil), numPages, procs); err == nil {
		t.Error("out-of-range re-route decoded")
	}
	// Soft: home sections naming impossible pages/nodes or overlapping.
	for name, homes := range map[string][]homeDelta{
		"page beyond the space": {{pg: 99, home: 1}},
		"node beyond the ring":  {{pg: 1, home: 7}},
		"overlapping deltas":    {{pg: 1, home: 1}, {pg: 1, home: 0}},
	} {
		routes := []reroute{{pg: 2, mode: SeqConsistent, cls: classPrivate}}
		epoch, gotRoutes, gotHomes, homeErr, err := decodeExitPlan(encodeExitPlan(7, routes, homes), numPages, procs)
		if err != nil {
			t.Fatalf("%s: hard error %v, want soft homeErr", name, err)
		}
		if homeErr == nil || gotHomes != nil {
			t.Errorf("%s: homeErr=%v homes=%v, want recorded-and-dropped", name, homeErr, gotHomes)
		}
		if epoch != 7 || len(gotRoutes) != 1 || gotRoutes[0].pg != 2 {
			t.Errorf("%s: re-routes did not survive the dropped home section", name)
		}
	}
}

// puppetCluster builds a two-endpoint TCP loopback cluster where the
// test holds endpoint `puppet` raw and a real System owns the other.
func puppetCluster(t *testing.T, puppet int, cfg Config) (*System, *tcp.Transport) {
	t.Helper()
	cluster, err := tcp.NewLoopbackCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Procs = 2
	cfg.Transport = cluster[1-puppet]
	s, err := New(cfg)
	if err != nil {
		cluster[puppet].Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster[puppet].Close() })
	return s, cluster[puppet]
}

// recvMsgs reads one physical frame off the raw endpoint and expands it.
func recvMsgs(t *testing.T, ep interface {
	Recv() (int, []byte, bool)
}) []*wire.Msg {
	t.Helper()
	_, payload, ok := ep.Recv()
	if !ok {
		t.Fatal("transport closed under the puppet endpoint")
	}
	if wire.IsBatch(payload) {
		msgs, err := wire.DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		return msgs
	}
	m, err := wire.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	return []*wire.Msg{m}
}

// TestForgedHomeDeltasRecordedNotApplied: a barrier exit whose home
// section overlaps (page 0 assigned twice) reaches a real non-master
// node's decode path. The node must record the forgery, drop the home
// section without touching its home table, and complete the barrier —
// a placement hint is never worth failing the run over, but silently
// applying a forged one would split the cluster's directories.
func TestForgedHomeDeltasRecordedNotApplied(t *testing.T) {
	s, master := puppetCluster(t, 0, Config{
		SpaceSize: 8192, PageSize: 1024, Mode: EagerInvalidate, Placement: PlaceFirstTouch,
	})
	n := s.Node(1)
	before := n.rt.homes()

	barErr := make(chan error, 1)
	go func() { barErr <- n.Barrier(0) }()

	var arrive *wire.Msg
	for arrive == nil {
		for _, m := range recvMsgs(t, master.Endpoint(0)) {
			if m.Kind == wire.KBarrierArrive {
				arrive = m
			}
		}
	}
	// The forged exit: valid epoch and framing, overlapping home deltas.
	exit := &wire.Msg{
		Kind: wire.KBarrierExit, Seq: arrive.Seq, A: arrive.A,
		Data: encodeExitPlan(1, nil, []homeDelta{{pg: 0, home: 1}, {pg: 0, home: 0}}),
	}
	if err := master.Endpoint(0).Send(1, exit.EncodeAppend(wire.GetBuf())); err != nil {
		t.Fatal(err)
	}
	if err := <-barErr; err != nil {
		t.Fatalf("barrier failed over a droppable home section: %v", err)
	}
	waitNodeErr(t, n, "overlapping home deltas")
	after := n.rt.homes()
	for pg := range before {
		if before[pg] != after[pg] {
			t.Fatalf("forged home delta applied: page %d moved %d -> %d", pg, before[pg], after[pg])
		}
	}
	if cerr := s.Close(); cerr == nil || !strings.Contains(cerr.Error(), "overlapping home deltas") {
		t.Fatalf("Close = %v, want the recorded forged-home cause", cerr)
	}
}

// TestForgedClaimsRecordedNotApplied: the arrival side of the same
// boundary — a peer's exchange payload claiming one page twice is
// recorded at the master and the whole placement epoch skipped, leaving
// the home table untouched.
func TestForgedClaimsRecordedNotApplied(t *testing.T) {
	s, peer := puppetCluster(t, 1, Config{
		SpaceSize: 8192, PageSize: 1024, Mode: EagerInvalidate, Placement: PlaceFirstTouch,
	})
	n := s.Node(0)
	before := n.rt.homes()

	barErr := make(chan error, 1)
	go func() { barErr <- n.Barrier(0) }()

	// A genuine node's claim snapshot has one entry per page;
	// encodeExchange encodes whatever it is handed, so the forgery is
	// simply a duplicated claim.
	arrive := &wire.Msg{
		Kind: wire.KBarrierArrive, Seq: 5, A: 0, B: 1,
		Data: encodeExchange(0, nil, []homeClaim{{pg: 0, score: 9}, {pg: 0, score: 2}}),
	}
	if err := peer.Endpoint(1).Send(0, arrive.EncodeAppend(wire.GetBuf())); err != nil {
		t.Fatal(err)
	}
	if err := <-barErr; err != nil {
		t.Fatalf("master barrier failed over a droppable claim payload: %v", err)
	}
	waitNodeErr(t, n, "claims page 0 twice")
	after := n.rt.homes()
	for pg := range before {
		if before[pg] != after[pg] {
			t.Fatalf("forged claim applied: page %d moved %d -> %d", pg, before[pg], after[pg])
		}
	}
	if cerr := s.Close(); cerr == nil || !strings.Contains(cerr.Error(), "claims page 0 twice") {
		t.Fatalf("Close = %v, want the recorded forged-claim cause", cerr)
	}
}
