package dsm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mem"
)

func newSys(t *testing.T, procs int, mode Mode) *System {
	t.Helper()
	s, err := New(Config{Procs: procs, SpaceSize: 64 * 1024, PageSize: 1024, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// bothModes runs f under the two lazy protocols (for LRC-specific
// machinery: intervals, diffs, write notices, GC).
func bothModes(t *testing.T, f func(t *testing.T, mode Mode)) {
	for _, mode := range []Mode{LazyInvalidate, LazyUpdate} {
		t.Run(mode.String(), func(t *testing.T) { f(t, mode) })
	}
}

// allModes runs f under every live protocol engine: properly-synchronized
// programs must behave identically under all five.
func allModes(t *testing.T, f func(t *testing.T, mode Mode)) {
	for _, mode := range Modes {
		t.Run(mode.String(), func(t *testing.T) { f(t, mode) })
	}
}

func TestSingleNodeRoundTrip(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSys(t, 1, mode)
		n := s.Node(0)
		if err := n.WriteUint64(100, 0xdeadbeef); err != nil {
			t.Fatal(err)
		}
		v, err := n.ReadUint64(100)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0xdeadbeef {
			t.Fatalf("read %x", v)
		}
	})
}

func TestValuePropagatesThroughLock(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSys(t, 4, mode)
		p0, p3 := s.Node(0), s.Node(3)
		if err := p0.Acquire(1); err != nil {
			t.Fatal(err)
		}
		if err := p0.WriteUint64(2048, 42); err != nil {
			t.Fatal(err)
		}
		if err := p0.Release(1); err != nil {
			t.Fatal(err)
		}
		if err := p3.Acquire(1); err != nil {
			t.Fatal(err)
		}
		v, err := p3.ReadUint64(2048)
		if err != nil {
			t.Fatal(err)
		}
		if v != 42 {
			t.Fatalf("p3 read %d, want 42", v)
		}
		if err := p3.Release(1); err != nil {
			t.Fatal(err)
		}
	})
}

func TestTransitivePropagation(t *testing.T) {
	// The paper's §1 "preceding in the transitive sense": p0's write under
	// l1 must be visible to p2, which synchronized only through l2 via p1.
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSys(t, 3, mode)
		p0, p1, p2 := s.Node(0), s.Node(1), s.Node(2)

		must(t, p0.Acquire(1))
		must(t, p0.WriteUint64(0, 7))
		must(t, p0.Release(1))

		must(t, p1.Acquire(1))
		v, err := p1.ReadUint64(0)
		must(t, err)
		must(t, p1.WriteUint64(1024, v+1))
		must(t, p1.Release(1))
		must(t, p1.Acquire(2))
		must(t, p1.Release(2))

		must(t, p2.Acquire(2))
		x, err := p2.ReadUint64(0)
		must(t, err)
		y, err := p2.ReadUint64(1024)
		must(t, err)
		if x != 7 || y != 8 {
			t.Fatalf("p2 read x=%d y=%d, want 7, 8", x, y)
		}
		must(t, p2.Release(2))
	})
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierPropagatesWrites(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSys(t, 4, mode)
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				// Everyone writes its slot, synchronizes, then checks all.
				if err := n.WriteUint64(mem.Addr(i*2048), uint64(100+i)); err != nil {
					errs[i] = err
					return
				}
				if err := n.Barrier(0); err != nil {
					errs[i] = err
					return
				}
				for k := 0; k < 4; k++ {
					v, err := n.ReadUint64(mem.Addr(k * 2048))
					if err != nil {
						errs[i] = err
						return
					}
					if v != uint64(100+k) {
						errs[i] = fmt.Errorf("node %d read slot %d = %d, want %d", i, k, v, 100+k)
						return
					}
				}
				errs[i] = n.Barrier(0)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("node %d: %v", i, err)
			}
		}
	})
}

func TestMultipleWritersFalseSharing(t *testing.T) {
	// Two nodes write disjoint halves of the SAME page concurrently; after
	// a barrier both halves must be visible everywhere (§4.3.1's diff
	// merge).
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSys(t, 2, mode)
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				if err := n.WriteUint64(mem.Addr(i*512), uint64(i+1)); err != nil {
					errs[i] = err
					return
				}
				if err := n.Barrier(0); err != nil {
					errs[i] = err
					return
				}
				a, err := n.ReadUint64(0)
				if err != nil {
					errs[i] = err
					return
				}
				b, err := n.ReadUint64(512)
				if err != nil {
					errs[i] = err
					return
				}
				if a != 1 || b != 2 {
					errs[i] = fmt.Errorf("node %d sees %d,%d, want 1,2", i, a, b)
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("node %d: %v", i, err)
			}
		}
	})
}

func TestMigratoryCounter(t *testing.T) {
	// The paper's Figure 3/4 pattern: every node repeatedly locks,
	// increments a shared counter, unlocks. The final value proves every
	// increment saw its predecessor.
	allModes(t, func(t *testing.T, mode Mode) {
		const procs, iters = 8, 25
		s := newSys(t, procs, mode)
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				for k := 0; k < iters; k++ {
					if err := n.Acquire(3); err != nil {
						errs[i] = err
						return
					}
					v, err := n.ReadUint64(4096)
					if err != nil {
						errs[i] = err
						return
					}
					if err := n.WriteUint64(4096, v+1); err != nil {
						errs[i] = err
						return
					}
					if err := n.Release(3); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
		must(t, s.Node(0).Acquire(3))
		v, err := s.Node(0).ReadUint64(4096)
		must(t, err)
		if v != procs*iters {
			t.Fatalf("counter = %d, want %d", v, procs*iters)
		}
		must(t, s.Node(0).Release(3))
		if s.NetStats().Messages == 0 {
			t.Error("no messages counted on the interconnect")
		}
	})
}

func TestLaterWriterWinsThroughLockChain(t *testing.T) {
	// Sequential writers to the same location through one lock: the last
	// value must win at a third node (diffs applied in hb order, §4.3.3).
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSys(t, 3, mode)
		for round := 0; round < 5; round++ {
			w := s.Node(round % 2)
			must(t, w.Acquire(0))
			must(t, w.WriteUint64(8192, uint64(1000+round)))
			must(t, w.Release(0))
		}
		p2 := s.Node(2)
		must(t, p2.Acquire(0))
		v, err := p2.ReadUint64(8192)
		must(t, err)
		if v != 1004 {
			t.Fatalf("reader saw %d, want 1004 (the last write)", v)
		}
		must(t, p2.Release(0))
	})
}

func TestGarbageCollectionPreservesCorrectness(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const procs = 4
		s, err := New(Config{
			Procs: procs, SpaceSize: 64 * 1024, PageSize: 1024,
			Mode: mode, GCEveryBarriers: 2,
		})
		must(t, err)
		defer s.Close()
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				for round := 0; round < 6; round++ {
					if err := n.WriteUint64(mem.Addr(i*1024+round*8), uint64(round*10+i)); err != nil {
						errs[i] = err
						return
					}
					if err := n.Barrier(0); err != nil {
						errs[i] = err
						return
					}
					// Check a neighbor's latest value.
					j := (i + 1) % procs
					v, err := n.ReadUint64(mem.Addr(j*1024 + round*8))
					if err != nil {
						errs[i] = err
						return
					}
					if v != uint64(round*10+j) {
						errs[i] = fmt.Errorf("node %d round %d: neighbor value %d, want %d", i, round, v, round*10+j)
						return
					}
					if err := n.Barrier(0); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
		var gcRuns, discarded int64
		for i := 0; i < procs; i++ {
			st := s.Node(i).Stats()
			gcRuns += st.GCRuns
			discarded += st.DiffsDiscarded
		}
		if gcRuns == 0 {
			t.Error("GC never ran")
		}
		if discarded == 0 {
			t.Error("GC discarded no diffs")
		}
	})
}

func TestColdReadAfterGC(t *testing.T) {
	// A node that never touched a page before GC must still be able to
	// read it afterwards (served by the page home + post-epoch diffs).
	bothModes(t, func(t *testing.T, mode Mode) {
		const procs = 3
		s, err := New(Config{
			Procs: procs, SpaceSize: 32 * 1024, PageSize: 1024,
			Mode: mode, GCEveryBarriers: 1,
		})
		must(t, err)
		defer s.Close()
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				if i == 0 {
					if err := n.WriteUint64(9*1024, 777); err != nil { // page 9, home = node 0
						errs[i] = err
						return
					}
					if err := n.WriteUint64(10*1024, 888); err != nil { // page 10, home = node 1
						errs[i] = err
						return
					}
				}
				if err := n.Barrier(0); err != nil { // GC epoch
					errs[i] = err
					return
				}
				if i == 2 { // node 2 cold-reads both pages after GC
					v, err := n.ReadUint64(9 * 1024)
					if err != nil {
						errs[i] = err
						return
					}
					w, err := n.ReadUint64(10 * 1024)
					if err != nil {
						errs[i] = err
						return
					}
					if v != 777 || w != 888 {
						errs[i] = fmt.Errorf("cold read after GC: %d, %d, want 777, 888", v, w)
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
	})
}

func TestLockContentionQueues(t *testing.T) {
	// Many nodes race for one lock simultaneously; every critical section
	// must be atomic.
	allModes(t, func(t *testing.T, mode Mode) {
		const procs, iters = 6, 10
		s := newSys(t, procs, mode)
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				for k := 0; k < iters; k++ {
					if err := n.Acquire(5); err != nil {
						errs[i] = err
						return
					}
					v, err := n.ReadUint64(0)
					if err != nil {
						errs[i] = err
						return
					}
					if err := n.WriteUint64(0, v+1); err != nil {
						errs[i] = err
						return
					}
					if err := n.Release(5); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
		n := s.Node(procs - 1)
		must(t, n.Acquire(5))
		v, err := n.ReadUint64(0)
		must(t, err)
		if v != procs*iters {
			t.Fatalf("counter = %d, want %d", v, procs*iters)
		}
		must(t, n.Release(5))
	})
}

func TestAPIErrors(t *testing.T) {
	s := newSys(t, 2, LazyInvalidate)
	n := s.Node(0)
	if err := n.Release(0); err == nil {
		t.Error("release of unheld lock accepted")
	}
	// A second acquire of a held lock parks on the node's local handoff
	// queue (it no longer errors: multiple application goroutines may
	// contend for one lock) and proceeds at release.
	must(t, n.Acquire(0))
	entered := make(chan struct{})
	reacquired := make(chan error, 1)
	go func() {
		close(entered)
		err := n.Acquire(0)
		if err == nil {
			err = n.Release(0)
		}
		reacquired <- err
	}()
	<-entered
	must(t, n.Release(0))
	must(t, <-reacquired)
	if err := n.WriteUint64(1<<40, 1); err == nil {
		t.Error("out-of-space write accepted")
	}
	var b [8]byte
	if err := n.Read(b[:], -4); err == nil {
		t.Error("negative-address read accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, SpaceSize: 4096, PageSize: 512}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := New(Config{Procs: 100, SpaceSize: 4096, PageSize: 512}); err == nil {
		t.Error("100 procs accepted")
	}
	if _, err := New(Config{Procs: 2, SpaceSize: 4096, PageSize: 1000}); err == nil {
		t.Error("bad page size accepted")
	}
}

func TestStatsAndClock(t *testing.T) {
	s := newSys(t, 2, LazyInvalidate)
	p0, p1 := s.Node(0), s.Node(1)
	// Page 1's home is node 1 (the reader), so the cold read cannot be
	// satisfied by a home fetch and must pull node 0's diff.
	must(t, p0.Acquire(0))
	must(t, p0.WriteUint64(1024, 5))
	must(t, p0.Release(0))
	must(t, p1.Acquire(0))
	if _, err := p1.ReadUint64(1024); err != nil {
		t.Fatal(err)
	}
	must(t, p1.Release(0))
	st := p1.Stats()
	if st.AccessMisses == 0 || st.DiffsFetched == 0 || st.DiffsApplied == 0 {
		t.Errorf("p1 stats: %+v", st)
	}
	if p0.Stats().IntervalsCreated != 1 {
		t.Errorf("p0 intervals: %+v", p0.Stats())
	}
	// p1's clock must cover p0's interval.
	if c := p1.Clock(); c[0] != 0 {
		t.Errorf("p1 clock = %v", c)
	}
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Error("IDs wrong")
	}
	if s.NumProcs() != 2 || s.Layout().PageSize() != 1024 {
		t.Error("system accessors wrong")
	}
	if s.EstimateTime() <= 0 {
		t.Error("EstimateTime not positive after traffic")
	}
}

func TestWriteSpanningPages(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSys(t, 2, mode)
		p0, p1 := s.Node(0), s.Node(1)
		data := make([]byte, 3000) // spans three 1K pages
		for i := range data {
			data[i] = byte(i * 7)
		}
		must(t, p0.Acquire(0))
		must(t, p0.Write(500, data))
		must(t, p0.Release(0))
		must(t, p1.Acquire(0))
		got := make([]byte, 3000)
		must(t, p1.Read(got, 500))
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
			}
		}
		must(t, p1.Release(0))
	})
}
