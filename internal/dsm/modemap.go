package dsm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mem"
)

// ParseModeMap parses a per-page protocol assignment like
//
//	pg0-31=SC,pg32=EI,rest=LU
//
// into a numPages-long mode slice (Config.ModeMap). Entries are
// comma-separated; each assigns one page ("pg7"), an inclusive page range
// ("pg0-31"), or every page not named by another entry ("rest") to a
// protocol name from ModeNames. Every page must be assigned exactly once:
// overlapping entries, pages left unassigned without a rest entry, and a
// rest entry with nothing left to cover are all errors, so a typo cannot
// silently route a page to the wrong protocol.
func ParseModeMap(spec string, numPages int) ([]Mode, error) {
	if numPages <= 0 {
		return nil, fmt.Errorf("dsm: mode map needs a positive page count, got %d", numPages)
	}
	modes := make([]Mode, numPages)
	covered := make([]bool, numPages)
	assigned := 0
	restMode, haveRest := Mode(0), false
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("dsm: mode map %q has an empty entry", spec)
		}
		rng, name, ok := strings.Cut(entry, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("dsm: mode map entry %q is not range=MODE (supported modes: %s)", entry, ModeNames())
		}
		mode, err := ParseMode(name)
		if err != nil {
			return nil, fmt.Errorf("dsm: mode map entry %q: %w", entry, err)
		}
		if rng == "rest" {
			if haveRest {
				return nil, fmt.Errorf("dsm: mode map %q has more than one rest entry", spec)
			}
			restMode, haveRest = mode, true
			continue
		}
		lo, hi, err := parsePageRange(rng, numPages)
		if err != nil {
			return nil, fmt.Errorf("dsm: mode map entry %q: %w", entry, err)
		}
		for pg := lo; pg <= hi; pg++ {
			if covered[pg] {
				return nil, fmt.Errorf("dsm: mode map entry %q reassigns page %d", entry, pg)
			}
			covered[pg] = true
			modes[pg] = mode
			assigned++
		}
	}
	if haveRest {
		if assigned == numPages {
			return nil, fmt.Errorf("dsm: mode map %q has an empty rest: every page is already assigned", spec)
		}
		for pg := range modes {
			if !covered[pg] {
				modes[pg] = restMode
			}
		}
	} else if assigned != numPages {
		return nil, fmt.Errorf("dsm: mode map %q leaves %d of %d pages unassigned (add a rest=MODE entry)",
			spec, numPages-assigned, numPages)
	}
	return modes, nil
}

// parsePageRange parses "pgN" or "pgN-M" (inclusive) against the page
// count.
func parsePageRange(rng string, numPages int) (lo, hi int, err error) {
	s, ok := strings.CutPrefix(rng, "pg")
	if !ok {
		return 0, 0, fmt.Errorf("page range %q does not start with pg", rng)
	}
	loS, hiS, dashed := strings.Cut(s, "-")
	lo, err = strconv.Atoi(loS)
	if err != nil {
		return 0, 0, fmt.Errorf("bad page number %q", loS)
	}
	hi = lo
	if dashed {
		hi, err = strconv.Atoi(hiS)
		if err != nil {
			return 0, 0, fmt.Errorf("bad page number %q", hiS)
		}
	}
	if lo < 0 || hi < lo || hi >= numPages {
		return 0, 0, fmt.Errorf("page range %d-%d outside [0,%d)", lo, hi, numPages)
	}
	return lo, hi, nil
}

// FormatModeMap renders a mode slice back into the compact run-length
// syntax ParseModeMap accepts ("pg0-31=SC,pg32-63=LU"), for logs and
// stats output.
func FormatModeMap(modes []Mode) string {
	var b strings.Builder
	for lo := 0; lo < len(modes); {
		hi := lo
		for hi+1 < len(modes) && modes[hi+1] == modes[lo] {
			hi++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if lo == hi {
			fmt.Fprintf(&b, "pg%d=%s", lo, modes[lo])
		} else {
			fmt.Fprintf(&b, "pg%d-%d=%s", lo, hi, modes[lo])
		}
		lo = hi + 1
	}
	return b.String()
}

// uniformModeMap expands a single mode over every page.
func uniformModeMap(m Mode, numPages int) []Mode {
	modes := make([]Mode, numPages)
	for i := range modes {
		modes[i] = m
	}
	return modes
}

// distinctModes returns the set of modes present in a map, in canonical
// (paper presentation) order — the order engines are constructed and
// iterated in, which every node must agree on.
func distinctModes(modes []Mode) []Mode {
	var present [8]bool // indexed by Mode; validated maps stay in range
	for _, m := range modes {
		present[m] = true
	}
	out := make([]Mode, 0, len(Modes))
	for _, m := range Modes {
		if present[m] {
			out = append(out, m)
		}
	}
	return out
}

// validModeMap checks a configured per-page map against the layout.
func validModeMap(modes []Mode, numPages int) error {
	if len(modes) != numPages {
		return fmt.Errorf("dsm: mode map covers %d pages, layout has %d", len(modes), numPages)
	}
	for pg, m := range modes {
		if !m.Valid() {
			return fmt.Errorf("dsm: mode map assigns page %d unknown mode %d (supported: %s)", pg, int(m), ModeNames())
		}
	}
	return nil
}

// pageOf bounds-checks a wire page id against the layout.
func pageOf(l *mem.Layout, raw int32) (mem.PageID, bool) {
	if raw < 0 || int(raw) >= l.NumPages() {
		return 0, false
	}
	return mem.PageID(raw), true
}
