package dsm

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/wire"
)

// Adaptive per-page protocol selection and home placement.
//
// Every AdaptEveryBarriers-th cluster barrier doubles as a classification
// epoch: each node ships its per-page access counter deltas to the
// barrier master inside its KBarrierArrive payload (opaque bytes in
// Msg.Data — the consistency sections are untouched). The master checks
// every node reports the same classification epoch, aggregates the
// deltas, classifies each active page by its observed sharing pattern,
// and broadcasts the resulting re-route set in every KBarrierExit. With
// Config.MigrateHomes the same exchange also re-homes pages to their
// dominant writer, and under the first-touch placement the very first
// cluster barrier carries each node's touch claims up and the agreed
// home table down — home deltas ride the exit payload beside the
// re-routes either way. Nodes then apply the whole plan in a dedicated
// two-round ready/go rendezvous (KReclassReady/KReclassGo, mirroring
// the GC rendezvous) before any application goroutine leaves the
// barrier:
//
//	round 1 — every node brings the pages it will home AFTER the plan
//	          current under the OLD engine (a whole-page read pulls
//	          outstanding diffs or the owner copy while every peer's
//	          old engine — and old home — is still routable);
//	round 2 — purely local: each node drops the page from the old
//	          engine, flips its mode and home table entries, and hands
//	          the new home's bytes to the new engine. The master
//	          releases the cluster only after all nodes confirm, so no
//	          node ever sees a page under two protocols — or two homes
//	          — at once.
//
// The rendezvous costs 4(Procs-1) small messages and runs only on epochs
// that actually move at least one page.

// adaptTargets are the protocols the classifier routes pages to; their
// engines are always resident when adaptation is enabled.
var adaptTargets = []Mode{LazyInvalidate, LazyUpdate, SeqConsistent}

// adaptMinAccesses is the minimum aggregate local activity (reads+writes
// cluster-wide) a page must show in an epoch before the classifier will
// move it; quieter pages keep their current protocol.
const adaptMinAccesses = 16

// migrateMinWrites is the minimum epoch write count the dominant writer
// must show before its page's home migrates; quieter pages stay put. The
// bar is deliberately lower than adaptMinAccesses: a protocol flip
// changes a page's whole consistency machinery and wants strong
// evidence, while a home move is a pure placement hint — every protocol
// stays correct under any home — so it may act on traffic the
// classifier still considers too quiet to re-route.
const migrateMinWrites = 8

// pageClass is the classifier's verdict on a page's sharing pattern over
// one epoch.
type pageClass int32

const (
	classUnknown      pageClass = iota // not yet classified
	classIdle                          // no activity this epoch
	classReadOnly                      // read, never written
	classPrivate                       // one writer, no outside readers
	classSingleWriter                  // one writer, outside readers
	classMigratory                     // several writers taking turns
	classFalseShared                   // several writers, diff-heavy
)

var classNames = [...]string{"unknown", "idle", "readonly", "private", "single-writer", "migratory", "false-shared"}

func (c pageClass) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int32(c))
	}
	return classNames[c]
}

// classify maps one page's cluster-aggregated epoch counters to a
// sharing class and the protocol that serves it best. readerMask is the
// set of nodes that read the page locally this epoch.
//
// The heuristics follow the paper's taxonomy: a page written by exactly
// one node and read only by that node is private — sequential
// consistency serves it with zero messages once the writer owns it, and
// it stops contributing write notices to every lock grant and barrier.
// One writer with outside readers is the classic single-writer producer/
// consumer page: an update protocol pushes the producer's diffs to the
// consumers on the synchronization they already perform, where
// invalidate makes every consumer miss and re-fetch (§5.3's update
// advantage). Several writers — falsely shared (diff traffic well above
// the writer count) or migratory (writers taking turns under locks) —
// route to lazy update: its diffs ride lock grants the handoff already
// pays for, where invalidate costs the next holder a separate diff
// fetch round-trip per handoff. The migratory/false-shared split is
// reported in the per-page stats but routes identically; the classes
// differ in bytes (whole-page history vs disjoint diffs), not message
// count, and message count is what the classifier minimizes.
func classify(d counterDelta, readerMask uint64) (pageClass, Mode, bool) {
	writers := bits.OnesCount64(d.writers)
	if d.localReads+d.localWrites < adaptMinAccesses {
		if d.localReads+d.localWrites+d.remoteReads+d.remoteWrites == 0 {
			return classIdle, 0, false
		}
		return classUnknown, 0, false
	}
	switch {
	case writers == 0:
		return classReadOnly, 0, false
	case writers == 1:
		if readerMask&^d.writers == 0 {
			return classPrivate, SeqConsistent, true
		}
		return classSingleWriter, LazyUpdate, true
	case d.diffs >= int64(2*writers):
		return classFalseShared, LazyUpdate, true
	default:
		return classMigratory, LazyUpdate, true
	}
}

// reroute is one page's protocol change, as broadcast in the barrier
// exit.
type reroute struct {
	pg   mem.PageID
	mode Mode
	cls  pageClass
}

// --- counter snapshotting ---

// snapshotDeltas captures this node's per-page counter deltas since the
// last classification epoch and advances the snapshot. Called by the
// barrier leader goroutine only; concurrent remote-side ticks from shard
// workers at worst slide one epoch over, which the heuristics tolerate.
func (r *router) snapshotDeltas() []counterDelta {
	out := make([]counterDelta, len(r.ctr))
	for pg := range r.ctr {
		c, prev := &r.ctr[pg], &r.prevCtr[pg]
		d := counterDelta{
			localReads:   c.localReads.Load() - prev.localReads,
			localWrites:  c.localWrites.Load() - prev.localWrites,
			remoteReads:  c.remoteReads.Load() - prev.remoteReads,
			remoteWrites: c.remoteWrites.Load() - prev.remoteWrites,
			diffs:        c.diffs.Load() - prev.diffs,
			writers:      c.writers.Swap(0),
		}
		prev.localReads += d.localReads
		prev.localWrites += d.localWrites
		prev.remoteReads += d.remoteReads
		prev.remoteWrites += d.remoteWrites
		prev.diffs += d.diffs
		out[pg] = d
	}
	return out
}

// --- wire payloads (opaque Msg.Data blobs, defensively decoded) ---

// encodeExchange packs a barrier arrival's placement/classification
// payload: epoch, delta count, claim count, then the non-zero 48-byte
// counter entries and the 8-byte first-touch claims. Deltas are present
// on classification epochs, claims only on the first-touch exchange
// barrier; either list may be empty.
func encodeExchange(epoch uint32, deltas []counterDelta, claims []homeClaim) []byte {
	active := 0
	for pg := range deltas {
		if deltas[pg] != (counterDelta{}) {
			active++
		}
	}
	buf := make([]byte, 0, 12+48*active+8*len(claims))
	buf = binary.LittleEndian.AppendUint32(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(active))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(claims)))
	for pg := range deltas {
		d := &deltas[pg]
		if *d == (counterDelta{}) {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pg))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.localReads))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.localWrites))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.remoteWrites))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.diffs))
		buf = binary.LittleEndian.AppendUint64(buf, d.writers)
	}
	for _, c := range claims {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.pg))
		buf = binary.LittleEndian.AppendUint32(buf, c.score)
	}
	return buf
}

// decodeExchange unpacks a peer's arrival payload into a full-size
// delta slice and its first-touch claims, plus the reported epoch.
// Malformed payloads (truncated, hostile counts, out-of-range or
// duplicated pages) return an error; the caller records it and treats
// the peer as reporting nothing.
func decodeExchange(data []byte, numPages int) (uint32, []counterDelta, []homeClaim, error) {
	if len(data) < 12 {
		return 0, nil, nil, fmt.Errorf("dsm: adaptive payload truncated at %d bytes", len(data))
	}
	epoch := binary.LittleEndian.Uint32(data)
	nDeltas := binary.LittleEndian.Uint32(data[4:])
	nClaims := binary.LittleEndian.Uint32(data[8:])
	if int(nDeltas) > numPages || int(nClaims) > numPages {
		return 0, nil, nil, fmt.Errorf("dsm: adaptive payload claims %d deltas + %d claims for %d pages", nDeltas, nClaims, numPages)
	}
	want := 12 + 48*int(nDeltas) + 8*int(nClaims)
	if len(data) != want {
		return 0, nil, nil, fmt.Errorf("dsm: adaptive payload is %d bytes, want %d for %d deltas + %d claims", len(data), want, nDeltas, nClaims)
	}
	deltas := make([]counterDelta, numPages)
	off := 12
	for i := 0; i < int(nDeltas); i++ {
		pg := binary.LittleEndian.Uint64(data[off:])
		if pg >= uint64(numPages) {
			return 0, nil, nil, fmt.Errorf("dsm: adaptive payload delta %d names page %d of %d", i, pg, numPages)
		}
		d := &deltas[pg]
		d.localReads = int64(binary.LittleEndian.Uint64(data[off+8:]))
		d.localWrites = int64(binary.LittleEndian.Uint64(data[off+16:]))
		d.remoteWrites = int64(binary.LittleEndian.Uint64(data[off+24:]))
		d.diffs = int64(binary.LittleEndian.Uint64(data[off+32:]))
		d.writers = binary.LittleEndian.Uint64(data[off+40:])
		off += 48
	}
	var claims []homeClaim
	seen := make(map[uint32]bool, nClaims)
	for i := 0; i < int(nClaims); i++ {
		pg := binary.LittleEndian.Uint32(data[off:])
		score := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		if int(pg) >= numPages {
			return 0, nil, nil, fmt.Errorf("dsm: adaptive payload claim %d names page %d of %d", i, pg, numPages)
		}
		if seen[pg] {
			return 0, nil, nil, fmt.Errorf("dsm: adaptive payload claims page %d twice", pg)
		}
		seen[pg] = true
		claims = append(claims, homeClaim{pg: mem.PageID(pg), score: score})
	}
	return epoch, deltas, claims, nil
}

// encodeExitPlan packs the master's decision for the barrier exit: new
// epoch, re-route count, home-delta count, then the 12-byte (page,
// mode, class) triples and the 8-byte (page, home) pairs.
func encodeExitPlan(epoch uint32, routes []reroute, homes []homeDelta) []byte {
	buf := make([]byte, 0, 12+12*len(routes)+8*len(homes))
	buf = binary.LittleEndian.AppendUint32(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(routes)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(homes)))
	for _, rt := range routes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.pg))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.mode))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.cls))
	}
	for _, h := range homes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(h.pg))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(h.home))
	}
	return buf
}

// decodeExitPlan unpacks a barrier exit's plan payload. The exit comes
// from the barrier master this node already trusts for barrier
// sequencing, but the payload is still bounds-checked, with two failure
// severities:
//
//   - a structurally undecodable payload — or an invalid re-route set —
//     returns err and must fail the barrier loudly rather than
//     desynchronize the cluster's mode tables;
//   - an invalid HOME section (out-of-range page or node, overlapping
//     deltas naming one page twice) returns homeErr with the home
//     deltas dropped and the re-routes intact: homes are a placement
//     optimization, so a forged or corrupt home-delta section is
//     recorded and dropped, never applied and never fatal.
func decodeExitPlan(data []byte, numPages, procs int) (epoch uint32, routes []reroute, homes []homeDelta, homeErr, err error) {
	if len(data) < 12 {
		return 0, nil, nil, nil, fmt.Errorf("dsm: exit plan truncated at %d bytes", len(data))
	}
	epoch = binary.LittleEndian.Uint32(data)
	nRoutes := binary.LittleEndian.Uint32(data[4:])
	nHomes := binary.LittleEndian.Uint32(data[8:])
	if int(nRoutes) > numPages || int(nHomes) > numPages {
		return 0, nil, nil, nil, fmt.Errorf("dsm: exit plan claims %d re-routes + %d home deltas for %d pages", nRoutes, nHomes, numPages)
	}
	if want := 12 + 12*int(nRoutes) + 8*int(nHomes); len(data) != want {
		return 0, nil, nil, nil, fmt.Errorf("dsm: exit plan is %d bytes, want %d for %d re-routes + %d home deltas", len(data), want, nRoutes, nHomes)
	}
	off := 12
	routes = make([]reroute, 0, nRoutes)
	for i := 0; i < int(nRoutes); i++ {
		pg := binary.LittleEndian.Uint32(data[off:])
		mode := Mode(binary.LittleEndian.Uint32(data[off+4:]))
		cls := pageClass(binary.LittleEndian.Uint32(data[off+8:]))
		off += 12
		if int(pg) >= numPages {
			return 0, nil, nil, nil, fmt.Errorf("dsm: re-route entry %d names page %d of %d", i, pg, numPages)
		}
		if !mode.Valid() {
			return 0, nil, nil, nil, fmt.Errorf("dsm: re-route entry %d carries invalid mode %d", i, mode)
		}
		routes = append(routes, reroute{pg: mem.PageID(pg), mode: mode, cls: cls})
	}
	seen := make(map[uint32]bool, nHomes)
	for i := 0; i < int(nHomes); i++ {
		pg := binary.LittleEndian.Uint32(data[off:])
		home := binary.LittleEndian.Uint32(data[off+4:])
		off += 8
		switch {
		case int(pg) >= numPages:
			return epoch, routes, nil, fmt.Errorf("dsm: home delta %d names page %d of %d", i, pg, numPages), nil
		case int(home) >= procs:
			return epoch, routes, nil, fmt.Errorf("dsm: home delta %d homes page %d at node %d of %d", i, pg, home, procs), nil
		case seen[pg]:
			return epoch, routes, nil, fmt.Errorf("dsm: overlapping home deltas for page %d", pg), nil
		}
		seen[pg] = true
		homes = append(homes, homeDelta{pg: mem.PageID(pg), home: mem.ProcID(home)})
	}
	return epoch, routes, homes, nil, nil
}

// --- master-side classification and placement ---

// ftClaim is one aggregated first-touch claim at the master: which node
// claims which page, how strongly.
type ftClaim struct {
	pg    mem.PageID
	node  mem.ProcID
	score uint32
}

// adaptState accumulates the adaptive exchange on the barrier master
// across the arrival collection loop.
type adaptState struct {
	epoch    uint32
	nodes    []mem.ProcID     // contributing node per deltas entry
	deltas   [][]counterDelta // that node's per-page deltas
	claims   []ftClaim        // aggregated first-touch claims
	mismatch bool
}

// absorbPeerExchange decodes one peer arrival's exchange payload into
// the state (master only). wantDeltas is set on classification epochs,
// wantClaims on the first-touch exchange barrier.
func (n *Node) absorbPeerExchange(st *adaptState, m *wire.Msg, wantDeltas, wantClaims bool) {
	if len(m.Data) == 0 {
		// A peer with nothing to report still must agree on the epoch;
		// an empty payload only happens when a frame was forged or a
		// node skipped the exchange.
		n.noteErr("adaptive exchange", fmt.Errorf("node %d sent no exchange payload for epoch %d", m.B, st.epoch))
		st.mismatch = true
		return
	}
	epoch, deltas, claims, err := decodeExchange(m.Data, n.sys.layout.NumPages())
	if err != nil {
		n.noteErr("adaptive exchange", fmt.Errorf("node %d: %w", m.B, err))
		st.mismatch = true
		return
	}
	if epoch != st.epoch {
		n.noteErr("adaptive exchange", fmt.Errorf("node %d reports classification epoch %d, master is at %d", m.B, epoch, st.epoch))
		st.mismatch = true
		return
	}
	if wantDeltas {
		st.nodes = append(st.nodes, mem.ProcID(m.B))
		st.deltas = append(st.deltas, deltas)
	}
	if wantClaims {
		for _, c := range claims {
			st.claims = append(st.claims, ftClaim{pg: c.pg, node: mem.ProcID(m.B), score: c.score})
		}
	}
}

// classifyRoutes aggregates the exchange (the master's own deltas
// included) and returns the pages whose best protocol differs from their
// current route, plus the epoch the cluster moves to. On any epoch
// mismatch or undecodable peer payload the whole epoch is skipped —
// re-routing from partial counters could split the cluster's view of a
// page's sharing pattern.
func (r *router) classifyRoutes(st *adaptState) (uint32, []reroute) {
	if st.mismatch {
		return st.epoch, nil
	}
	numPages := len(r.ctr)
	agg := make([]counterDelta, numPages)
	readerMask := make([]uint64, numPages)
	for i, deltas := range st.deltas {
		bit := uint64(1) << uint(st.nodes[i])
		for pg := range deltas {
			d := &deltas[pg]
			a := &agg[pg]
			a.localReads += d.localReads
			a.localWrites += d.localWrites
			a.remoteWrites += d.remoteWrites
			a.diffs += d.diffs
			a.writers |= d.writers
			if d.localReads > 0 {
				readerMask[pg] |= bit
			}
		}
	}
	var routes []reroute
	for pg := 0; pg < numPages; pg++ {
		cls, mode, move := classify(agg[pg], readerMask[pg])
		if cls != classIdle {
			r.classTab[pg].Store(int32(cls))
		}
		if move && mode != r.modeOf(mem.PageID(pg)) {
			routes = append(routes, reroute{pg: mem.PageID(pg), mode: mode, cls: cls})
		}
	}
	if len(routes) == 0 {
		return st.epoch, nil
	}
	return st.epoch + 1, routes
}

// planHomeMoves decides the epoch's home migrations from the exchanged
// per-node write counters (master only, Config.MigrateHomes): a page
// moves to its dominant writer when that writer did real work
// (migrateMinWrites), wrote an outright majority of the epoch's writes,
// and wrote at least twice what the current home did. The 2x-the-home
// bar is the hysteresis: immediately after a migration the new home
// satisfies it and every other node has to out-write the new home
// two-to-one to move the page again, so homes don't ping-pong between
// nodes trading small leads.
func (r *router) planHomeMoves(st *adaptState) []homeDelta {
	if st.mismatch || len(st.deltas) == 0 {
		return nil
	}
	numPages := len(r.ctr)
	writes := make([][64]int64, numPages)
	for i, deltas := range st.deltas {
		node := st.nodes[i]
		for pg := range deltas {
			if w := deltas[pg].localWrites; w > 0 {
				writes[pg][node] += w
			}
		}
	}
	var moves []homeDelta
	for pg := 0; pg < numPages; pg++ {
		var total, wDom int64
		dom := mem.ProcID(0)
		for node := 0; node < r.n.sys.cfg.Procs; node++ {
			w := writes[pg][node]
			total += w
			if w > wDom {
				wDom, dom = w, mem.ProcID(node)
			}
		}
		home := r.homeOf(mem.PageID(pg))
		if dom == home || wDom < migrateMinWrites {
			continue
		}
		if 2*wDom <= total || wDom < 2*writes[pg][home] {
			continue
		}
		moves = append(moves, homeDelta{pg: mem.PageID(pg), home: dom})
	}
	return moves
}

// planFirstTouch resolves the exchanged first-touch claims into home
// deltas (master only, first barrier under PlaceFirstTouch): each
// claimed page goes to its strongest toucher, ties to the lowest node
// id; unclaimed pages keep their provisional block home.
func (r *router) planFirstTouch(st *adaptState) []homeDelta {
	if st.mismatch || len(st.claims) == 0 {
		return nil
	}
	type winner struct {
		node  mem.ProcID
		score uint32
		any   bool
	}
	best := make(map[mem.PageID]winner)
	for _, c := range st.claims {
		w := best[c.pg]
		if !w.any || c.score > w.score || (c.score == w.score && c.node < w.node) {
			best[c.pg] = winner{node: c.node, score: c.score, any: true}
		}
	}
	var moves []homeDelta
	for pg := 0; pg < len(r.ctr); pg++ {
		w, ok := best[mem.PageID(pg)]
		if !ok || w.node == r.homeOf(mem.PageID(pg)) {
			continue
		}
		moves = append(moves, homeDelta{pg: mem.PageID(pg), home: w.node})
	}
	return moves
}

// --- applying an epoch plan ---

// pageMove is one page's merged plan entry: an optional protocol change
// and an optional home change, applied atomically in round 2.
type pageMove struct {
	pg      mem.PageID
	reroute bool
	mode    Mode
	cls     pageClass
	rehome  bool
	home    mem.ProcID // the page's home AFTER the plan
}

// mergePlan folds a re-route set and a home-delta set into per-page
// moves. Every move records the page's post-plan home — that node is
// responsible for carrying the authoritative bytes through the flip.
func (n *Node) mergePlan(routes []reroute, homes []homeDelta) []pageMove {
	moves := make([]pageMove, 0, len(routes)+len(homes))
	idx := make(map[mem.PageID]int, len(routes)+len(homes))
	for _, rt := range routes {
		idx[rt.pg] = len(moves)
		moves = append(moves, pageMove{
			pg: rt.pg, reroute: true, mode: rt.mode, cls: rt.cls,
			home: n.homeOf(rt.pg),
		})
	}
	for _, h := range homes {
		if i, ok := idx[h.pg]; ok {
			moves[i].rehome = true
			moves[i].home = h.home
			continue
		}
		moves = append(moves, pageMove{pg: h.pg, rehome: true, home: h.home})
	}
	return moves
}

// applyReclass runs the two-round reclassification rendezvous for a
// non-empty epoch plan (re-routes, home moves, or both). Every node
// (master included) executes this after its barrier exit work, while
// all application goroutines are still parked in Barrier.
func (n *Node) applyReclass(b mem.BarrierID, routes []reroute, homes []homeDelta, newEpoch uint32) error {
	r := n.rt
	pageSize := n.sys.layout.PageSize()
	moves := n.mergePlan(routes, homes)

	// Round 1: bring every page this node homes AFTER the plan current
	// under its old engine. Peers' old engines (and old homes) are
	// still fully routable, so this can pull outstanding diffs or fetch
	// the owner copy over the network — for a migrating page the NEW
	// home does the fetch, pulling the authoritative copy across before
	// the old home surrenders its directory entry and cold-copy role.
	scratch := make([]byte, pageSize)
	for _, mv := range moves {
		if mv.home != n.id {
			continue
		}
		if err := r.engineFor(mv.pg).readPage(mv.pg, 0, scratch); err != nil {
			return fmt.Errorf("dsm: node %d: reclass fetch of page %d: %w", n.id, mv.pg, err)
		}
	}
	if err := n.reclassRendezvous(b); err != nil {
		return err
	}

	// Round 2: purely local — no page traffic is in flight anywhere in
	// the cluster now. Re-read the new home's copy (valid after round
	// 1, so this touches no socket), then flip home and mode tables and
	// drop/adopt per page. The home table flips before the drop so the
	// engines' directory resets (owner := home) land on the new home.
	migrated := 0
	for _, mv := range moves {
		old := r.engineFor(mv.pg)
		next := old
		if mv.reroute {
			next = r.engines[mv.mode]
		}
		var data []byte
		if mv.home == n.id {
			data = make([]byte, pageSize)
			if err := old.readPage(mv.pg, 0, data); err != nil {
				return fmt.Errorf("dsm: node %d: reclass local read of page %d: %w", n.id, mv.pg, err)
			}
		}
		if mv.rehome {
			r.homeTab[mv.pg].Store(int32(mv.home))
			if mv.home == n.id {
				n.stats.pageMigrations.Add(1)
				migrated++
			}
		}
		old.dropPage(mv.pg)
		if mv.reroute {
			r.modeTab[mv.pg].Store(int32(mv.mode))
			r.classTab[mv.pg].Store(int32(mv.cls))
		}
		next.adoptPage(mv.pg, data)
	}
	r.epoch.Store(newEpoch)
	if len(routes) > 0 {
		n.emit("adapt", "reclass", int64(len(routes)))
	}
	if migrated > 0 {
		n.emit("adapt", "migrate", int64(migrated))
	}
	if err := n.reclassRendezvous(b); err != nil {
		return err
	}
	return nil
}

// reclassRendezvous is one ready/go round over every node, shaped
// exactly like the GC rendezvous: non-masters send KReclassReady and
// block for the matching KReclassGo; the master collects Procs-1 readies
// off reclassCh and releases them. Per-sender FIFO delivery keeps a
// node's round-1 ready ahead of its round-2 ready, so the master never
// needs to label rounds.
func (n *Node) reclassRendezvous(b mem.BarrierID) error {
	const master = 0
	if n.id != master {
		ready := &wire.Msg{Kind: wire.KReclassReady, Seq: n.nextSeq(), A: int32(b), B: int32(n.id)}
		if _, err := n.rpc(mem.ProcID(master), ready); err != nil {
			return fmt.Errorf("dsm: node %d: reclass rendezvous: %w", n.id, err)
		}
		return nil
	}
	ready := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
	for len(ready) < n.sys.cfg.Procs-1 {
		m, err := n.collect(n.reclassCh, "master: reclass rendezvous")
		if err != nil {
			return err
		}
		if int(m.A) != int(b) || !n.validProc(mem.ProcID(m.B)) {
			n.noteErr("reclass rendezvous", fmt.Errorf("unexpected ready for barrier %d from %d", m.A, m.B))
			continue
		}
		ready = append(ready, m)
	}
	for _, m := range ready {
		go2 := &wire.Msg{Kind: wire.KReclassGo, Seq: m.Seq, A: int32(b)}
		n.send(mem.ProcID(m.B), go2)
	}
	return nil
}
