package dsm

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/wire"
)

// Adaptive per-page protocol selection.
//
// Every AdaptEveryBarriers-th cluster barrier doubles as a classification
// epoch: each node ships its per-page access counter deltas to the
// barrier master inside its KBarrierArrive payload (opaque bytes in
// Msg.Data — the consistency sections are untouched). The master checks
// every node reports the same classification epoch, aggregates the
// deltas, classifies each active page by its observed sharing pattern,
// and broadcasts the resulting re-route set in every KBarrierExit. Nodes
// then apply the re-routes in a dedicated two-round ready/go rendezvous
// (KReclassReady/KReclassGo, mirroring the GC rendezvous) before any
// application goroutine leaves the barrier:
//
//	round 1 — every node brings the re-routed pages it homes current
//	          under the OLD engine (a whole-page read pulls outstanding
//	          diffs or the owner copy while every peer's old engine is
//	          still routable);
//	round 2 — purely local: each node drops the page from the old
//	          engine, flips its mode table entry, and hands the home
//	          node's bytes to the new engine. The master releases the
//	          cluster only after all nodes confirm, so no node ever sees
//	          a page under two protocols at once.
//
// The rendezvous costs 4(Procs-1) small messages and runs only on epochs
// that actually re-route at least one page.

// adaptTargets are the protocols the classifier routes pages to; their
// engines are always resident when adaptation is enabled.
var adaptTargets = []Mode{LazyInvalidate, LazyUpdate, SeqConsistent}

// adaptMinAccesses is the minimum aggregate local activity (reads+writes
// cluster-wide) a page must show in an epoch before the classifier will
// move it; quieter pages keep their current protocol.
const adaptMinAccesses = 16

// pageClass is the classifier's verdict on a page's sharing pattern over
// one epoch.
type pageClass int32

const (
	classUnknown      pageClass = iota // not yet classified
	classIdle                          // no activity this epoch
	classReadOnly                      // read, never written
	classPrivate                       // one writer, no outside readers
	classSingleWriter                  // one writer, outside readers
	classMigratory                     // several writers taking turns
	classFalseShared                   // several writers, diff-heavy
)

var classNames = [...]string{"unknown", "idle", "readonly", "private", "single-writer", "migratory", "false-shared"}

func (c pageClass) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int32(c))
	}
	return classNames[c]
}

// classify maps one page's cluster-aggregated epoch counters to a
// sharing class and the protocol that serves it best. readerMask is the
// set of nodes that read the page locally this epoch.
//
// The heuristics follow the paper's taxonomy: a page written by exactly
// one node and read only by that node is private — sequential
// consistency serves it with zero messages once the writer owns it, and
// it stops contributing write notices to every lock grant and barrier.
// One writer with outside readers is the classic single-writer producer/
// consumer page: an update protocol pushes the producer's diffs to the
// consumers on the synchronization they already perform, where
// invalidate makes every consumer miss and re-fetch (§5.3's update
// advantage). Several writers — falsely shared (diff traffic well above
// the writer count) or migratory (writers taking turns under locks) —
// route to lazy update: its diffs ride lock grants the handoff already
// pays for, where invalidate costs the next holder a separate diff
// fetch round-trip per handoff. The migratory/false-shared split is
// reported in the per-page stats but routes identically; the classes
// differ in bytes (whole-page history vs disjoint diffs), not message
// count, and message count is what the classifier minimizes.
func classify(d counterDelta, readerMask uint64) (pageClass, Mode, bool) {
	writers := bits.OnesCount64(d.writers)
	if d.localReads+d.localWrites < adaptMinAccesses {
		if d.localReads+d.localWrites+d.remoteReads+d.remoteWrites == 0 {
			return classIdle, 0, false
		}
		return classUnknown, 0, false
	}
	switch {
	case writers == 0:
		return classReadOnly, 0, false
	case writers == 1:
		if readerMask&^d.writers == 0 {
			return classPrivate, SeqConsistent, true
		}
		return classSingleWriter, LazyUpdate, true
	case d.diffs >= int64(2*writers):
		return classFalseShared, LazyUpdate, true
	default:
		return classMigratory, LazyUpdate, true
	}
}

// reroute is one page's protocol change, as broadcast in the barrier
// exit.
type reroute struct {
	pg   mem.PageID
	mode Mode
	cls  pageClass
}

// --- counter snapshotting ---

// snapshotDeltas captures this node's per-page counter deltas since the
// last classification epoch and advances the snapshot. Called by the
// barrier leader goroutine only; concurrent remote-side ticks from shard
// workers at worst slide one epoch over, which the heuristics tolerate.
func (r *router) snapshotDeltas() []counterDelta {
	out := make([]counterDelta, len(r.ctr))
	for pg := range r.ctr {
		c, prev := &r.ctr[pg], &r.prevCtr[pg]
		d := counterDelta{
			localReads:   c.localReads.Load() - prev.localReads,
			localWrites:  c.localWrites.Load() - prev.localWrites,
			remoteReads:  c.remoteReads.Load() - prev.remoteReads,
			remoteWrites: c.remoteWrites.Load() - prev.remoteWrites,
			diffs:        c.diffs.Load() - prev.diffs,
			writers:      c.writers.Swap(0),
		}
		prev.localReads += d.localReads
		prev.localWrites += d.localWrites
		prev.remoteReads += d.remoteReads
		prev.remoteWrites += d.remoteWrites
		prev.diffs += d.diffs
		out[pg] = d
	}
	return out
}

// --- wire payloads (opaque Msg.Data blobs, defensively decoded) ---

// encodeCounterDeltas packs the non-zero page deltas for a barrier
// arrival: epoch, entry count, then 48-byte entries.
func encodeCounterDeltas(epoch uint32, deltas []counterDelta) []byte {
	active := 0
	for pg := range deltas {
		if deltas[pg] != (counterDelta{}) {
			active++
		}
	}
	buf := make([]byte, 0, 8+48*active)
	buf = binary.LittleEndian.AppendUint32(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(active))
	for pg := range deltas {
		d := &deltas[pg]
		if *d == (counterDelta{}) {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(pg))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.localReads))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.localWrites))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.remoteWrites))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.diffs))
		buf = binary.LittleEndian.AppendUint64(buf, d.writers)
	}
	return buf
}

// decodeCounterDeltas unpacks a peer's arrival payload into a full-size
// delta slice plus its reported epoch. Malformed payloads (truncated,
// hostile counts, out-of-range pages) return an error; the caller
// records it and treats the peer as reporting nothing.
func decodeCounterDeltas(data []byte, numPages int) (uint32, []counterDelta, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("dsm: adaptive payload truncated at %d bytes", len(data))
	}
	epoch := binary.LittleEndian.Uint32(data)
	count := binary.LittleEndian.Uint32(data[4:])
	if int(count) > numPages {
		return 0, nil, fmt.Errorf("dsm: adaptive payload claims %d entries for %d pages", count, numPages)
	}
	if len(data) != 8+48*int(count) {
		return 0, nil, fmt.Errorf("dsm: adaptive payload is %d bytes, want %d for %d entries", len(data), 8+48*int(count), count)
	}
	deltas := make([]counterDelta, numPages)
	off := 8
	for i := 0; i < int(count); i++ {
		pg := binary.LittleEndian.Uint64(data[off:])
		if pg >= uint64(numPages) {
			return 0, nil, fmt.Errorf("dsm: adaptive payload entry %d names page %d of %d", i, pg, numPages)
		}
		d := &deltas[pg]
		d.localReads = int64(binary.LittleEndian.Uint64(data[off+8:]))
		d.localWrites = int64(binary.LittleEndian.Uint64(data[off+16:]))
		d.remoteWrites = int64(binary.LittleEndian.Uint64(data[off+24:]))
		d.diffs = int64(binary.LittleEndian.Uint64(data[off+32:]))
		d.writers = binary.LittleEndian.Uint64(data[off+40:])
		off += 48
	}
	return epoch, deltas, nil
}

// encodeReroutes packs the master's re-route decision for the barrier
// exit: new epoch, count, then (page, mode, class) triples.
func encodeReroutes(epoch uint32, routes []reroute) []byte {
	buf := make([]byte, 0, 8+12*len(routes))
	buf = binary.LittleEndian.AppendUint32(buf, epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(routes)))
	for _, rt := range routes {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.pg))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.mode))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rt.cls))
	}
	return buf
}

// decodeReroutes unpacks a barrier exit's re-route payload. The exit
// comes from the barrier master this node already trusts for barrier
// sequencing, but the payload is still bounds-checked: an undecodable
// re-route set must fail the barrier loudly rather than desynchronize
// the cluster's mode tables.
func decodeReroutes(data []byte, numPages int) (uint32, []reroute, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("dsm: reroute payload truncated at %d bytes", len(data))
	}
	epoch := binary.LittleEndian.Uint32(data)
	count := binary.LittleEndian.Uint32(data[4:])
	if int(count) > numPages || len(data) != 8+12*int(count) {
		return 0, nil, fmt.Errorf("dsm: reroute payload is %d bytes claiming %d entries for %d pages", len(data), count, numPages)
	}
	routes := make([]reroute, 0, count)
	off := 8
	for i := 0; i < int(count); i++ {
		pg := binary.LittleEndian.Uint32(data[off:])
		mode := Mode(binary.LittleEndian.Uint32(data[off+4:]))
		cls := pageClass(binary.LittleEndian.Uint32(data[off+8:]))
		off += 12
		if int(pg) >= numPages {
			return 0, nil, fmt.Errorf("dsm: reroute entry %d names page %d of %d", i, pg, numPages)
		}
		if !mode.Valid() {
			return 0, nil, fmt.Errorf("dsm: reroute entry %d carries invalid mode %d", i, mode)
		}
		routes = append(routes, reroute{pg: mem.PageID(pg), mode: mode, cls: cls})
	}
	return epoch, routes, nil
}

// --- master-side classification ---

// adaptState accumulates the adaptive exchange on the barrier master
// across the arrival collection loop.
type adaptState struct {
	epoch    uint32
	nodes    []mem.ProcID     // contributing node per deltas entry
	deltas   [][]counterDelta // that node's per-page deltas
	mismatch bool
}

// absorbPeerCounters decodes one peer arrival's counter payload into the
// exchange (master only).
func (n *Node) absorbPeerCounters(st *adaptState, m *wire.Msg) {
	if len(m.Data) == 0 {
		// A peer with nothing to report still must agree on the epoch;
		// an empty payload only happens when a frame was forged or a
		// node skipped the exchange.
		n.noteErr("adaptive exchange", fmt.Errorf("node %d sent no counter payload for epoch %d", m.B, st.epoch))
		st.mismatch = true
		return
	}
	epoch, deltas, err := decodeCounterDeltas(m.Data, n.sys.layout.NumPages())
	if err != nil {
		n.noteErr("adaptive exchange", fmt.Errorf("node %d: %w", m.B, err))
		st.mismatch = true
		return
	}
	if epoch != st.epoch {
		n.noteErr("adaptive exchange", fmt.Errorf("node %d reports classification epoch %d, master is at %d", m.B, epoch, st.epoch))
		st.mismatch = true
		return
	}
	st.nodes = append(st.nodes, mem.ProcID(m.B))
	st.deltas = append(st.deltas, deltas)
}

// classifyRoutes aggregates the exchange (the master's own deltas
// included) and returns the pages whose best protocol differs from their
// current route, plus the epoch the cluster moves to. On any epoch
// mismatch or undecodable peer payload the whole epoch is skipped —
// re-routing from partial counters could split the cluster's view of a
// page's sharing pattern.
func (r *router) classifyRoutes(st *adaptState) (uint32, []reroute) {
	if st.mismatch {
		return st.epoch, nil
	}
	numPages := len(r.ctr)
	agg := make([]counterDelta, numPages)
	readerMask := make([]uint64, numPages)
	for i, deltas := range st.deltas {
		bit := uint64(1) << uint(st.nodes[i])
		for pg := range deltas {
			d := &deltas[pg]
			a := &agg[pg]
			a.localReads += d.localReads
			a.localWrites += d.localWrites
			a.remoteWrites += d.remoteWrites
			a.diffs += d.diffs
			a.writers |= d.writers
			if d.localReads > 0 {
				readerMask[pg] |= bit
			}
		}
	}
	var routes []reroute
	for pg := 0; pg < numPages; pg++ {
		cls, mode, move := classify(agg[pg], readerMask[pg])
		if cls != classIdle {
			r.classTab[pg].Store(int32(cls))
		}
		if move && mode != r.modeOf(mem.PageID(pg)) {
			routes = append(routes, reroute{pg: mem.PageID(pg), mode: mode, cls: cls})
		}
	}
	if len(routes) == 0 {
		return st.epoch, nil
	}
	return st.epoch + 1, routes
}

// --- applying a re-route set ---

// applyReclass runs the two-round reclassification rendezvous for a
// non-empty re-route set. Every node (master included) executes this
// after its barrier exit work, while all application goroutines are
// still parked in Barrier.
func (n *Node) applyReclass(b mem.BarrierID, routes []reroute, newEpoch uint32) error {
	r := n.rt
	pageSize := n.sys.layout.PageSize()

	// Round 1: bring every re-routed page we home current under its old
	// engine. Peers' old engines are still fully routable, so this can
	// pull outstanding diffs or fetch the owner copy over the network.
	scratch := make([]byte, pageSize)
	for _, rt := range routes {
		if n.sys.home(rt.pg) != n.id {
			continue
		}
		if err := r.engineFor(rt.pg).readPage(rt.pg, 0, scratch); err != nil {
			return fmt.Errorf("dsm: node %d: reclass fetch of page %d: %w", n.id, rt.pg, err)
		}
	}
	if err := n.reclassRendezvous(b); err != nil {
		return err
	}

	// Round 2: purely local — no page traffic is in flight anywhere in
	// the cluster now. Re-read the home copy (valid after round 1, so
	// this touches no socket), then drop/flip/adopt per page.
	for _, rt := range routes {
		old, next := r.engineFor(rt.pg), r.engines[rt.mode]
		var data []byte
		if n.sys.home(rt.pg) == n.id {
			data = make([]byte, pageSize)
			if err := old.readPage(rt.pg, 0, data); err != nil {
				return fmt.Errorf("dsm: node %d: reclass local read of page %d: %w", n.id, rt.pg, err)
			}
		}
		old.dropPage(rt.pg)
		r.modeTab[rt.pg].Store(int32(rt.mode))
		next.adoptPage(rt.pg, data)
		r.classTab[rt.pg].Store(int32(rt.cls))
	}
	r.epoch.Store(newEpoch)
	n.emit("adapt", "reclass", int64(len(routes)))
	if err := n.reclassRendezvous(b); err != nil {
		return err
	}
	return nil
}

// reclassRendezvous is one ready/go round over every node, shaped
// exactly like the GC rendezvous: non-masters send KReclassReady and
// block for the matching KReclassGo; the master collects Procs-1 readies
// off reclassCh and releases them. Per-sender FIFO delivery keeps a
// node's round-1 ready ahead of its round-2 ready, so the master never
// needs to label rounds.
func (n *Node) reclassRendezvous(b mem.BarrierID) error {
	const master = 0
	if n.id != master {
		ready := &wire.Msg{Kind: wire.KReclassReady, Seq: n.nextSeq(), A: int32(b), B: int32(n.id)}
		if _, err := n.rpc(mem.ProcID(master), ready); err != nil {
			return fmt.Errorf("dsm: node %d: reclass rendezvous: %w", n.id, err)
		}
		return nil
	}
	ready := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
	for len(ready) < n.sys.cfg.Procs-1 {
		m, err := n.collect(n.reclassCh, "master: reclass rendezvous")
		if err != nil {
			return err
		}
		if int(m.A) != int(b) || !n.validProc(mem.ProcID(m.B)) {
			n.noteErr("reclass rendezvous", fmt.Errorf("unexpected ready for barrier %d from %d", m.A, m.B))
			continue
		}
		ready = append(ready, m)
	}
	for _, m := range ready {
		go2 := &wire.Msg{Kind: wire.KReclassGo, Seq: m.Seq, A: int32(b)}
		n.send(mem.ProcID(m.B), go2)
	}
	return nil
}
