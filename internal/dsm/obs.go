package dsm

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/wire"
)

// This file is the runtime's observability surface: live metrics
// registration into an obs.Registry, the /statusz snapshot, and the
// node-side trace emit helpers. Everything here is pay-for-use — a nil
// registry or tracer costs one pointer check per site, and the
// registered metric series are scrape-time callbacks over the atomics
// the runtime already maintains, so publication adds nothing to the
// paths that tick the counters.

// trafficRingLen is how many per-second traffic samples Status retains.
const trafficRingLen = 120

// rpcBuckets lays out the rpc latency histogram: 50µs to ~6.5s.
var rpcBuckets = obs.ExpBuckets(50e-6, 4, 9)

// traceOn reports whether trace events are being recorded, for call
// sites that would otherwise build an event argument for nothing.
// Nil-safe for unit tests that build a bare Node without a System.
func (n *Node) traceOn() bool { return n.sys != nil && n.sys.cfg.Tracer.Enabled() }

// emit records one protocol event when tracing is configured.
func (n *Node) emit(cat, name string, arg int64) {
	if n.sys == nil {
		return
	}
	if t := n.sys.cfg.Tracer; t != nil {
		t.Emit(int32(n.id), cat, name, arg)
	}
}

// registerMetrics publishes the system's live counters into r:
// interconnect totals, per-node protocol counters, per-kind outbound
// traffic, and an rpc latency histogram per node (the one series that
// is observation-based rather than a callback; Node.rpc observes into
// it only when it exists).
func (s *System) registerMetrics(r *obs.Registry) {
	counter := func(name, help string, fn func() int64) {
		r.CounterFunc(name, help, func() float64 { return float64(fn()) })
	}
	// System-level series carry an instance label (lowest local node id)
	// so several systems sharing one process — a loopback TCP cluster —
	// can publish into the same registry without colliding.
	inst := "none"
	if len(s.local) > 0 {
		inst = fmt.Sprintf("%d", s.local[0].id)
	}
	sys := func(fam string) string { return fmt.Sprintf("%s{inst=%q}", fam, inst) }
	r.GaugeFunc(sys("dsm_procs"), "cluster size (nodes)", func() float64 { return float64(s.cfg.Procs) })
	r.GaugeFunc(sys("dsm_pages"), "shared pages", func() float64 { return float64(s.layout.NumPages()) })

	counter(sys("dsm_net_messages_total"), "logical messages sent by this instance's endpoints",
		func() int64 { return s.tr.Totals().Messages })
	counter(sys("dsm_net_frames_total"), "physical frames sent", func() int64 { return s.tr.Totals().Frames })
	counter(sys("dsm_net_batches_total"), "multi-message batch frames sent", func() int64 { return s.tr.Totals().Batches })
	counter(sys("dsm_net_bytes_total"), "wire bytes sent (post-compression)", func() int64 { return s.tr.Totals().Bytes })
	counter(sys("dsm_net_raw_bytes_total"), "logical bytes sent (pre-compression)", func() int64 { return s.tr.Totals().RawBytes })

	for _, n := range s.local {
		n := n
		node := fmt.Sprintf("%d", n.id)
		nodeCounter := func(fam, help string, fn func() int64) {
			counter(fmt.Sprintf("%s{node=%q}", fam, node), help, fn)
		}
		nodeCounter("dsm_node_access_misses_total", "page access misses", n.stats.accessMisses.Load)
		nodeCounter("dsm_node_cold_misses_total", "cold (first-touch) misses", n.stats.coldMisses.Load)
		nodeCounter("dsm_node_diffs_applied_total", "diffs applied to local copies", n.stats.diffsApplied.Load)
		nodeCounter("dsm_node_diffs_fetched_total", "diffs fetched from creators", n.stats.diffsFetched.Load)
		nodeCounter("dsm_node_intervals_created_total", "intervals created", n.stats.intervalsCreated.Load)
		nodeCounter("dsm_node_pages_fetched_total", "whole pages fetched", n.stats.pagesFetched.Load)
		nodeCounter("dsm_node_gc_runs_total", "garbage collection rounds", n.stats.gcRuns.Load)
		nodeCounter("dsm_node_diffs_discarded_total", "diffs discarded by GC", n.stats.diffsDiscarded.Load)
		nodeCounter("dsm_node_diffs_created_total", "diffs computed (MakeDiff executions)", n.stats.diffsCreated.Load)
		nodeCounter("dsm_node_diffs_deferred_total", "interval closes that deferred diff creation", n.stats.diffsDeferred.Load)
		nodeCounter("dsm_node_diff_cache_hits_total", "diff serves reusing a cached wire encoding", n.stats.diffCacheHits.Load)
		nodeCounter("dsm_node_diffs_flattened_total", "diffs elided by multi-interval flattening", n.stats.diffsFlattened.Load)
		r.GaugeFunc(fmt.Sprintf("dsm_node_twin_bytes_live{node=%q}", node),
			"bytes currently held in live twins", func() float64 { return float64(n.stats.twinBytesLive.Load()) })
		nodeCounter("dsm_node_flushed_pages_total", "dirty pages pushed at eager flush points", n.stats.flushedPages.Load)
		nodeCounter("dsm_node_invals_received_total", "invalidations applied", n.stats.invalsReceived.Load)
		nodeCounter("dsm_node_updates_received_total", "release-time updates applied", n.stats.updatesReceived.Load)
		nodeCounter("dsm_node_write_backs_total", "EI false-sharing write-backs recovered", n.stats.writeBacks.Load)
		nodeCounter("dsm_node_ownership_moves_total", "directory ownership transfers", n.stats.ownershipMoves.Load)
		nodeCounter("dsm_node_page_migrations_total", "pages re-homed to this node", n.stats.pageMigrations.Load)
		nodeCounter("dsm_node_sent_msgs_total", "outbound logical messages", n.stats.sentMsgs.Load)
		nodeCounter("dsm_node_sent_frames_total", "outbound physical frames", n.stats.sentFrames.Load)
		nodeCounter("dsm_node_sent_batches_total", "outbound batch frames", n.stats.sentBatches.Load)
		nodeCounter("dsm_node_sent_bytes_total", "outbound payload bytes", n.stats.sentBytes.Load)
		for k := wire.Kind(1); int(k) < wire.NumKinds; k++ {
			k := k
			counter(fmt.Sprintf("dsm_node_kind_msgs_total{node=%q,kind=%q}", node, k.String()),
				"outbound messages by wire kind", n.stats.kindMsgs[k].Load)
			counter(fmt.Sprintf("dsm_node_kind_bytes_total{node=%q,kind=%q}", node, k.String()),
				"outbound bytes by wire kind", n.stats.kindBytes[k].Load)
		}
		n.rpcHist = r.Histogram(fmt.Sprintf("dsm_node_rpc_seconds{node=%q}", node),
			"rpc round-trip wait", rpcBuckets)
	}
}

// NodeStatus is one node's entry in a Status snapshot.
type NodeStatus struct {
	ID    int   `json:"id"`
	Stats Stats `json:"stats"`
}

// Status is the /statusz snapshot: the live configuration, interconnect
// totals with their wire-time estimate, each local node's counters and
// per-page routing table, and the recent-traffic ring (present when
// Config.Metrics enabled the sampler).
type Status struct {
	Procs              int                 `json:"procs"`
	LocalNodes         []int               `json:"local_nodes"`
	Mode               string              `json:"mode"`
	PageSize           int                 `json:"page_size"`
	NumPages           int                 `json:"num_pages"`
	GoroutinesPerNode  int                 `json:"goroutines_per_node"`
	Placement          string              `json:"placement"`
	MigrateHomes       bool                `json:"migrate_homes"`
	HomeTable          string              `json:"home_table"`
	PageMigrations     int64               `json:"page_migrations"`
	AdaptEveryBarriers int                 `json:"adapt_every_barriers"`
	GCEveryBarriers    int                 `json:"gc_every_barriers"`
	RPCTimeout         string              `json:"rpc_timeout"`
	NoBatch            bool                `json:"no_batch"`
	Flush              FlushPolicy         `json:"flush"`
	CompressMin        int                 `json:"compress_min"`
	Net                TransportStats      `json:"net"`
	EstWireTime        string              `json:"est_wire_time"`
	Nodes              []NodeStatus        `json:"nodes"`
	Traffic            []obs.TrafficSample `json:"traffic,omitempty"`
}

// Status returns a live snapshot of the system for /statusz. Safe to
// call concurrently with a running workload: counters are atomic reads
// and the routing table is the router's lock-free mode table.
func (s *System) Status() Status {
	st := Status{
		Procs:              s.cfg.Procs,
		Mode:               s.cfg.Mode.String(),
		PageSize:           s.layout.PageSize(),
		NumPages:           s.layout.NumPages(),
		GoroutinesPerNode:  s.cfg.GoroutinesPerNode,
		Placement:          s.cfg.Placement.String(),
		MigrateHomes:       s.cfg.MigrateHomes,
		AdaptEveryBarriers: s.cfg.AdaptEveryBarriers,
		GCEveryBarriers:    s.cfg.GCEveryBarriers,
		RPCTimeout:         s.cfg.RPCTimeout.String(),
		NoBatch:            s.cfg.NoBatch,
		Flush:              s.cfg.Flush,
		CompressMin:        s.cfg.CompressMin,
		Net:                s.tr.Totals(),
		EstWireTime:        s.EstimateTime().String(),
	}
	for _, n := range s.local {
		st.LocalNodes = append(st.LocalNodes, int(n.id))
		ns := NodeStatus{ID: int(n.id), Stats: n.Stats()}
		st.Nodes = append(st.Nodes, ns)
		st.PageMigrations += ns.Stats.PageMigrations
	}
	if len(s.local) > 0 {
		// Home tables are cluster-agreed (they only change inside the
		// quiescent rendezvous), so any local node's snapshot serves.
		st.HomeTable = FormatHomeTable(s.local[0].rt.homes())
	}
	if s.ring != nil {
		st.Traffic = s.ring.Recent()
	}
	return st
}

// DumpTrace writes the configured tracer's event ring as Chrome
// trace_event JSON; a no-op without a tracer.
func (s *System) DumpTrace(w interface{ Write([]byte) (int, error) }) error {
	if s.cfg.Tracer == nil {
		return nil
	}
	return s.cfg.Tracer.WriteChromeJSON(w)
}
