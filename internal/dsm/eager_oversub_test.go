package dsm

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestFalseSharedLockedCountersOversubscribed is the distilled mp3d
// counter pattern that once broke EI at gpn>1: four locks guard four
// uint64 words on ONE page, every goroutine of every node randomly
// picks a lock and increments its word, with barrier rounds mixed in.
// Early-committed neighbor words riding flushes, invalidation
// write-backs and reconciliation bases all hit the same page while
// other local goroutines are mid-critical-section; every word must
// still count exactly.
func TestFalseSharedLockedCountersOversubscribed(t *testing.T) {
	const procs, gpn, locks = 2, 4, 4
	rounds := 3
	iters := tortureParams(t)
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSysGPN(t, procs, gpn, mode)
		slots := procs * gpn
		var want [locks]uint64
		got := make([][locks]uint64, slots)
		driveSlots(t, []*System{s}, gpn, func(n *Node, slot int) error {
			rng := rand.New(rand.NewSource(int64(slot)*7919 + 17))
			for r := 0; r < rounds; r++ {
				for k := 0; k < iters; k++ {
					l := mem.LockID(rng.Intn(locks))
					if err := n.Acquire(l); err != nil {
						return err
					}
					v, err := n.ReadUint64(mem.Addr(int(l) * 8))
					if err != nil {
						return err
					}
					if err := n.WriteUint64(mem.Addr(int(l)*8), v+1); err != nil {
						return err
					}
					if err := n.Release(l); err != nil {
						return err
					}
					got[slot][l]++
				}
				if err := n.Barrier(0); err != nil {
					return err
				}
			}
			return nil
		})
		for _, g := range got {
			for l := range want {
				want[l] += g[l]
			}
		}
		n0 := s.Node(0)
		for l := 0; l < locks; l++ {
			v, err := n0.ReadUint64(mem.Addr(l * 8))
			if err != nil {
				t.Fatal(err)
			}
			if v != want[l] {
				t.Errorf("%s: counter %d = %d, want %d (%+d)", mode, l, v, want[l], int64(v)-int64(want[l]))
			}
		}
	})
}
