package dsm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/transport"
	"repro/internal/vc"
	"repro/internal/wire"
)

// Stats counts a node's protocol events. Which counters move depends on
// the engine: the lazy protocols create intervals and move diffs, the
// eager ones flush at releases, SC ships whole pages and transfers
// ownership.
type Stats struct {
	AccessMisses     int64
	ColdMisses       int64
	DiffsApplied     int64
	DiffsFetched     int64
	IntervalsCreated int64
	PagesFetched     int64
	GCRuns           int64
	DiffsDiscarded   int64

	// FlushedPages counts dirty pages pushed at eager release/barrier
	// flush points.
	FlushedPages int64
	// InvalsReceived counts invalidations applied to this node's copies
	// (EI and SC).
	InvalsReceived int64
	// UpdatesReceived counts release-time diffs applied to this node's
	// copies (EU).
	UpdatesReceived int64
	// WriteBacks counts EI false-sharing diffs this node's flushes
	// recovered from invalidated cachers.
	WriteBacks int64
	// OwnershipMoves counts directory owner changes processed at this
	// node as a page home (eager and SC).
	OwnershipMoves int64
}

// lockLocal is a node's view of one lock.
type lockLocal struct {
	held      bool      // the application currently holds it
	acquiring bool      // a grant is in flight to us (we are next holder)
	cached    bool      // we were the last holder; reacquisition is local
	pending   *wire.Msg // a forwarded request awaiting our release
}

// Node is one DSM processor. All exported methods must be called from a
// single application goroutine; the node's handler goroutine serves
// incoming protocol requests concurrently.
type Node struct {
	sys *System
	id  mem.ProcID
	ep  transport.Endpoint
	e   engine

	mu      sync.Mutex
	locks   map[mem.LockID]*lockLocal
	mgrLast map[mem.LockID]mem.ProcID // manager-side last holder
	stats   Stats

	// Barrier master state: arrivals delivered by the handler.
	barCh chan *wire.Msg
	gcCh  chan *wire.Msg

	seqCtr   atomic.Uint64
	waiterMu sync.Mutex
	waiters  map[uint64]chan *wire.Msg

	errMu sync.Mutex
	errs  []error
}

func newNode(s *System, id mem.ProcID) *Node {
	n := &Node{
		sys:     s,
		id:      id,
		ep:      s.tr.Endpoint(int(id)),
		locks:   make(map[mem.LockID]*lockLocal),
		mgrLast: make(map[mem.LockID]mem.ProcID),
		barCh:   make(chan *wire.Msg, s.cfg.Procs),
		gcCh:    make(chan *wire.Msg, s.cfg.Procs),
		waiters: make(map[uint64]chan *wire.Msg),
	}
	switch s.cfg.Mode {
	case LazyInvalidate, LazyUpdate:
		n.e = newLazyEngine(n, s.cfg.Mode == LazyUpdate)
	case EagerInvalidate, EagerUpdate:
		n.e = newEagerEngine(n, s.cfg.Mode == EagerUpdate)
	case SeqConsistent:
		n.e = newSCEngine(n)
	default:
		panic(fmt.Sprintf("dsm: node %d: unvalidated mode %d", id, s.cfg.Mode))
	}
	return n
}

// ID returns the node's processor id.
func (n *Node) ID() mem.ProcID { return n.id }

// Stats returns a snapshot of the node's protocol counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Clock returns a copy of the node's current vector clock (all zero
// entries under the eager and SC engines, which do not track causality).
func (n *Node) Clock() vc.VC {
	return n.e.clock()
}

// noteErr records a handler-side protocol error so System.Close can
// surface it instead of letting it vanish (a dropped lock grant strands
// its requester). Expected shutdown errors are not recorded.
func (n *Node) noteErr(op string, err error) {
	if err == nil || errors.Is(err, ErrClosed) {
		return
	}
	n.errMu.Lock()
	n.errs = append(n.errs, fmt.Errorf("dsm: node %d: %s: %w", n.id, op, err))
	n.errMu.Unlock()
}

func (n *Node) takeErrs() []error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	errs := n.errs
	n.errs = nil
	return errs
}

// --- request/response plumbing ---

func (n *Node) nextSeq() uint64 { return n.seqCtr.Add(1) }

func (n *Node) register(seq uint64) chan *wire.Msg {
	ch := make(chan *wire.Msg, 1)
	n.waiterMu.Lock()
	n.waiters[seq] = ch
	n.waiterMu.Unlock()
	return ch
}

func (n *Node) await(seq uint64, ch chan *wire.Msg) (*wire.Msg, error) {
	m, ok := <-ch
	if !ok || m == nil {
		return nil, fmt.Errorf("dsm: node %d: awaiting seq %d: %w", n.id, seq, ErrClosed)
	}
	return m, nil
}

func (n *Node) send(dst mem.ProcID, m *wire.Msg) error {
	return n.ep.Send(int(dst), m.Encode())
}

// rpc sends m to dst and blocks for the response with the same Seq.
func (n *Node) rpc(dst mem.ProcID, m *wire.Msg) (*wire.Msg, error) {
	ch := n.register(m.Seq)
	if err := n.send(dst, m); err != nil {
		n.waiterMu.Lock()
		delete(n.waiters, m.Seq)
		n.waiterMu.Unlock()
		return nil, err
	}
	return n.await(m.Seq, ch)
}

// deliverResponse hands a response message to the requester parked in
// rpc. Engines that intercept their responses in handle (the eager
// engine applies flush results on the handler goroutine to keep the
// home's directory transaction ordering) call this after processing.
func (n *Node) deliverResponse(m *wire.Msg) {
	n.waiterMu.Lock()
	ch, ok := n.waiters[m.Seq]
	if ok {
		delete(n.waiters, m.Seq)
	}
	n.waiterMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("dsm: node %d: unexpected response seq %d kind %v", n.id, m.Seq, m.Kind))
	}
	ch <- m
}

// handlerLoop dispatches incoming frames until the network closes.
func (n *Node) handlerLoop() {
	for {
		src, payload, ok := n.ep.Recv()
		if !ok {
			// Unblock any waiters, including a master parked collecting
			// barrier arrivals or GC readiness (this loop is the only
			// sender on those channels).
			n.waiterMu.Lock()
			for seq, ch := range n.waiters {
				close(ch)
				delete(n.waiters, seq)
			}
			n.waiterMu.Unlock()
			close(n.barCh)
			close(n.gcCh)
			return
		}
		m, err := wire.Decode(payload)
		if err != nil {
			panic(fmt.Sprintf("dsm: node %d: undecodable frame from %d: %v", n.id, src, err))
		}
		switch {
		case n.e.handle(m, mem.ProcID(src)):
			// Engine-specific request (or an intercepted response).
		case m.Kind.IsResponse():
			n.deliverResponse(m)
		case m.Kind == wire.KLockReq:
			n.handleLockReq(m)
		case m.Kind == wire.KLockFwd:
			n.handleLockFwd(m)
		case m.Kind == wire.KBarrierArrive:
			n.barCh <- m
		case m.Kind == wire.KGCReady:
			n.gcCh <- m
		default:
			panic(fmt.Sprintf("dsm: node %d: unhandled message kind %v", n.id, m.Kind))
		}
	}
}

// --- application API: memory ---

// Write copies data into the shared address space at addr.
func (n *Node) Write(addr mem.Addr, data []byte) error {
	lay := n.sys.layout
	if addr < 0 || addr+mem.Addr(len(data)) > lay.SpaceSize() {
		return fmt.Errorf("dsm: write [%d,%d) outside space [0,%d)", addr, addr+mem.Addr(len(data)), lay.SpaceSize())
	}
	off := 0
	var err error
	lay.SplitRange(addr, len(data), func(pg mem.PageID, pgOff, count int) {
		if err != nil {
			return
		}
		err = n.e.writePage(pg, pgOff, data[off:off+count])
		off += count
	})
	return err
}

// Read copies len(buf) bytes of the shared address space at addr into buf.
func (n *Node) Read(buf []byte, addr mem.Addr) error {
	lay := n.sys.layout
	if addr < 0 || addr+mem.Addr(len(buf)) > lay.SpaceSize() {
		return fmt.Errorf("dsm: read [%d,%d) outside space [0,%d)", addr, addr+mem.Addr(len(buf)), lay.SpaceSize())
	}
	off := 0
	var err error
	lay.SplitRange(addr, len(buf), func(pg mem.PageID, pgOff, count int) {
		if err != nil {
			return
		}
		err = n.e.readPage(pg, pgOff, buf[off:off+count])
		off += count
	})
	return err
}

// WriteUint64 stores a little-endian uint64 at addr.
func (n *Node) WriteUint64(addr mem.Addr, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return n.Write(addr, b[:])
}

// ReadUint64 loads a little-endian uint64 from addr.
func (n *Node) ReadUint64(addr mem.Addr) (uint64, error) {
	var b [8]byte
	if err := n.Read(b[:], addr); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
