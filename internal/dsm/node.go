package dsm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/simnet"
	"repro/internal/vc"
	"repro/internal/wire"
)

// Stats counts a node's protocol events.
type Stats struct {
	AccessMisses     int64
	ColdMisses       int64
	DiffsApplied     int64
	DiffsFetched     int64
	IntervalsCreated int64
	PagesFetched     int64
	GCRuns           int64
	DiffsDiscarded   int64
}

// pageCopy is a node's local copy of one page.
type pageCopy struct {
	data    []byte
	valid   bool
	applied vc.VC // modifications reflected in data
}

// lockLocal is a node's view of one lock.
type lockLocal struct {
	held      bool      // the application currently holds it
	acquiring bool      // a grant is in flight to us (we are next holder)
	cached    bool      // we were the last holder; reacquisition is local
	pending   *wire.Msg // a forwarded request awaiting our release
}

// Node is one DSM processor. All exported methods must be called from a
// single application goroutine; the node's handler goroutine serves
// incoming protocol requests concurrently.
type Node struct {
	sys *System
	id  mem.ProcID
	ep  *simnet.Endpoint

	mu        sync.Mutex
	v         vc.VC
	log       *core.Log
	pages     []*pageCopy
	twins     map[mem.PageID]*page.Twin
	diffs     map[core.IntervalID]map[mem.PageID]*page.Diff
	lastEpoch vc.VC
	episodes  int
	locks     map[mem.LockID]*lockLocal
	mgrLast   map[mem.LockID]mem.ProcID // manager-side last holder

	// Barrier master state: arrivals delivered by the handler.
	barCh chan *wire.Msg
	gcCh  chan *wire.Msg

	seqCtr   atomic.Uint64
	waiterMu sync.Mutex
	waiters  map[uint64]chan *wire.Msg

	stats Stats
}

func newNode(s *System, id mem.ProcID) *Node {
	return &Node{
		sys:       s,
		id:        id,
		ep:        s.net.Endpoint(int(id)),
		v:         vc.New(s.cfg.Procs),
		log:       core.NewLog(s.cfg.Procs),
		pages:     make([]*pageCopy, s.layout.NumPages()),
		twins:     make(map[mem.PageID]*page.Twin),
		diffs:     make(map[core.IntervalID]map[mem.PageID]*page.Diff),
		lastEpoch: vc.New(s.cfg.Procs),
		locks:     make(map[mem.LockID]*lockLocal),
		mgrLast:   make(map[mem.LockID]mem.ProcID),
		barCh:     make(chan *wire.Msg, s.cfg.Procs),
		gcCh:      make(chan *wire.Msg, s.cfg.Procs),
		waiters:   make(map[uint64]chan *wire.Msg),
	}
}

// ID returns the node's processor id.
func (n *Node) ID() mem.ProcID { return n.id }

// Stats returns a snapshot of the node's protocol counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Clock returns a copy of the node's current vector clock.
func (n *Node) Clock() vc.VC {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.v.Clone()
}

// --- request/response plumbing ---

func (n *Node) nextSeq() uint64 { return n.seqCtr.Add(1) }

func (n *Node) register(seq uint64) chan *wire.Msg {
	ch := make(chan *wire.Msg, 1)
	n.waiterMu.Lock()
	n.waiters[seq] = ch
	n.waiterMu.Unlock()
	return ch
}

func (n *Node) await(seq uint64, ch chan *wire.Msg) (*wire.Msg, error) {
	m, ok := <-ch
	if !ok || m == nil {
		return nil, fmt.Errorf("dsm: node %d: awaiting seq %d: %w", n.id, seq, simnet.ErrClosed)
	}
	return m, nil
}

func (n *Node) send(dst mem.ProcID, m *wire.Msg) error {
	return n.ep.Send(int(dst), m.Encode())
}

// rpc sends m to dst and blocks for the response with the same Seq.
func (n *Node) rpc(dst mem.ProcID, m *wire.Msg) (*wire.Msg, error) {
	ch := n.register(m.Seq)
	if err := n.send(dst, m); err != nil {
		n.waiterMu.Lock()
		delete(n.waiters, m.Seq)
		n.waiterMu.Unlock()
		return nil, err
	}
	return n.await(m.Seq, ch)
}

// handlerLoop dispatches incoming frames until the network closes.
func (n *Node) handlerLoop() {
	for {
		f, ok := n.ep.Recv()
		if !ok {
			// Unblock any waiters, including a master parked collecting
			// barrier arrivals or GC readiness (this loop is the only
			// sender on those channels).
			n.waiterMu.Lock()
			for seq, ch := range n.waiters {
				close(ch)
				delete(n.waiters, seq)
			}
			n.waiterMu.Unlock()
			close(n.barCh)
			close(n.gcCh)
			return
		}
		m, err := wire.Decode(f.Payload)
		if err != nil {
			panic(fmt.Sprintf("dsm: node %d: undecodable frame from %d: %v", n.id, f.Src, err))
		}
		switch m.Kind {
		case wire.KLockGrant, wire.KDiffResp, wire.KPageResp, wire.KBarrierExit, wire.KGCDone:
			n.waiterMu.Lock()
			ch, ok := n.waiters[m.Seq]
			if ok {
				delete(n.waiters, m.Seq)
			}
			n.waiterMu.Unlock()
			if !ok {
				panic(fmt.Sprintf("dsm: node %d: unexpected response seq %d kind %v", n.id, m.Seq, m.Kind))
			}
			ch <- m
		case wire.KLockReq:
			n.handleLockReq(m)
		case wire.KLockFwd:
			n.handleLockFwd(m)
		case wire.KDiffReq:
			n.handleDiffReq(m, mem.ProcID(f.Src))
		case wire.KPageReq:
			n.handlePageReq(m)
		case wire.KBarrierArrive:
			n.barCh <- m
		case wire.KGCReady:
			n.gcCh <- m
		default:
			panic(fmt.Sprintf("dsm: node %d: unhandled message kind %v", n.id, m.Kind))
		}
	}
}

// --- interval management ---

// closeIntervalLocked ends the current interval: diffs are created from
// the twins (eager diffing) and retained in the diff store; the interval
// record with its write notices enters the log. Caller holds mu.
func (n *Node) closeIntervalLocked() {
	if len(n.twins) == 0 {
		return
	}
	pages := make([]mem.PageID, 0, len(n.twins))
	for pg := range n.twins {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	idx := n.v.Tick(int(n.id))
	id := core.IntervalID{Proc: n.id, Index: idx}
	byPage := make(map[mem.PageID]*page.Diff, len(pages))
	for _, pg := range pages {
		d, err := page.MakeDiff(n.twins[pg], n.pages[pg].data)
		if err != nil {
			panic(fmt.Sprintf("dsm: node %d: diffing page %d: %v", n.id, pg, err))
		}
		byPage[pg] = d
		// The local copy now reflects this interval: keep the applied
		// clock faithful so page-home responses advertise the right
		// coverage and GC validation sees own pages as current.
		n.pages[pg].applied[n.id] = idx
	}
	n.diffs[id] = byPage
	n.log.Append(&core.Interval{
		ID:    id,
		VC:    n.v.Clone(),
		Pages: pages,
		Mods:  make([]*page.RangeSet, len(pages)),
	})
	n.stats.IntervalsCreated++
	n.twins = make(map[mem.PageID]*page.Twin)
}

// absorbIntervalsLocked merges received interval records into the log,
// skipping already-known ones, and returns the genuinely new records.
// Caller holds mu.
func (n *Node) absorbIntervalsLocked(recs []wire.IntervalRec) []wire.IntervalRec {
	// Per-processor index order is required by the log.
	sorted := make([]wire.IntervalRec, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Proc != sorted[j].Proc {
			return sorted[i].Proc < sorted[j].Proc
		}
		return sorted[i].Index < sorted[j].Index
	})
	var fresh []wire.IntervalRec
	for _, rec := range sorted {
		if n.v.Covers(int(rec.Proc), rec.Index) {
			continue // already known
		}
		n.log.Append(&core.Interval{
			ID:    core.IntervalID{Proc: rec.Proc, Index: rec.Index},
			VC:    rec.VC.Clone(),
			Pages: rec.Pages,
			Mods:  make([]*page.RangeSet, len(rec.Pages)),
		})
		// Track per-processor high-water mark in our clock only after the
		// merge below; Covers uses n.v, so advance it per record to keep
		// the dedupe correct for consecutive indices.
		if n.v[rec.Proc] != rec.Index-1 {
			panic(fmt.Sprintf("dsm: node %d: interval gap for p%d: have %d, got %d",
				n.id, rec.Proc, n.v[rec.Proc], rec.Index))
		}
		n.v[rec.Proc] = rec.Index
		fresh = append(fresh, rec)
	}
	return fresh
}

// intervalsSinceLocked collects wire records for every known interval
// (r, k) with k > floor[r]. Caller holds mu.
func (n *Node) intervalsSinceLocked(floor vc.VC) []wire.IntervalRec {
	var recs []wire.IntervalRec
	n.log.NoticesBetween(floor, n.v, func(iv *core.Interval) {
		recs = append(recs, wire.IntervalRec{
			Proc:  iv.ID.Proc,
			Index: iv.ID.Index,
			VC:    iv.VC,
			Pages: iv.Pages,
		})
	})
	return recs
}

// invalidateForLocked applies LI semantics for freshly learned intervals:
// cached valid copies of noticed pages become invalid (data retained as
// the diff target). It returns the set of affected cached pages (used by
// LU to revalidate immediately). Caller holds mu.
func (n *Node) invalidateForLocked(fresh []wire.IntervalRec) []mem.PageID {
	var affected []mem.PageID
	seen := make(map[mem.PageID]bool)
	for _, rec := range fresh {
		for _, pg := range rec.Pages {
			if seen[pg] {
				continue
			}
			seen[pg] = true
			if pc := n.pages[pg]; pc != nil && pc.valid {
				pc.valid = false
				affected = append(affected, pg)
			}
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return affected
}

// --- data movement ---

// validate brings page pg's local copy up to date: a cold copy is fetched
// from the page's home, then every outstanding diff is collected (from the
// local store or its creator) and applied in happened-before order
// (§4.3.3). Callers must NOT hold mu.
func (n *Node) validate(pg mem.PageID) error {
	n.mu.Lock()
	pc := n.pages[pg]
	if pc != nil && pc.valid {
		n.mu.Unlock()
		return nil
	}
	n.stats.AccessMisses++
	if pc == nil {
		n.stats.ColdMisses++
		home := n.sys.home(pg)
		if home == n.id {
			pc = &pageCopy{data: make([]byte, n.sys.layout.PageSize()), applied: vc.New(n.sys.cfg.Procs)}
			n.pages[pg] = pc
		} else {
			n.mu.Unlock()
			resp, err := n.rpc(home, &wire.Msg{
				Kind: wire.KPageReq, Seq: n.nextSeq(), A: int32(pg), B: int32(n.id),
			})
			if err != nil {
				return err
			}
			n.mu.Lock()
			applied := resp.VC
			if applied == nil {
				applied = vc.New(n.sys.cfg.Procs)
			}
			pc = &pageCopy{data: resp.Data, applied: applied.Clone()}
			n.pages[pg] = pc
			n.stats.PagesFetched++
		}
	}

	// Outstanding modifications, grouped by creator for any diffs we do
	// not already retain.
	out := n.log.Outstanding(pg, pc.applied, n.v, n.id)
	missing := make(map[mem.ProcID][]wire.Want)
	for _, id := range out {
		if _, ok := n.diffs[id][pg]; ok {
			continue
		}
		missing[id.Proc] = append(missing[id.Proc], wire.Want{Page: pg, Proc: id.Proc, Index: id.Index})
	}
	n.mu.Unlock()

	if len(missing) > 0 {
		creators := make([]mem.ProcID, 0, len(missing))
		for c := range missing {
			creators = append(creators, c)
		}
		sort.Slice(creators, func(i, j int) bool { return creators[i] < creators[j] })
		for _, c := range creators {
			resp, err := n.rpc(c, &wire.Msg{
				Kind: wire.KDiffReq, Seq: n.nextSeq(), A: int32(n.id), Wants: missing[c],
			})
			if err != nil {
				return err
			}
			n.mu.Lock()
			for _, rec := range resp.Diffs {
				id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
				if n.diffs[id] == nil {
					n.diffs[id] = make(map[mem.PageID]*page.Diff)
				}
				n.diffs[id][rec.Page] = rec.Diff
				n.stats.DiffsFetched++
			}
			n.mu.Unlock()
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	// Apply in a linear extension of happened-before: interval clock sums
	// strictly increase along hb1 chains, and concurrent intervals touch
	// disjoint words in properly-labeled programs.
	sort.Slice(out, func(i, j int) bool {
		si, sj := clockSum(n.log.Get(out[i]).VC), clockSum(n.log.Get(out[j]).VC)
		if si != sj {
			return si < sj
		}
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Index < out[j].Index
	})
	for _, id := range out {
		d := n.diffs[id][pg]
		if d == nil {
			return fmt.Errorf("dsm: node %d: diff %v for page %d unavailable", n.id, id, pg)
		}
		if err := d.Apply(pc.data); err != nil {
			return err
		}
		n.stats.DiffsApplied++
	}
	pc.valid = true
	pc.applied = n.v.Clone()
	return nil
}

func clockSum(v vc.VC) int64 {
	var s int64
	for _, x := range v {
		s += int64(x)
	}
	return s
}

// revalidate runs validate over a list of pages (LU's acquire/barrier-time
// update step).
func (n *Node) revalidate(pages []mem.PageID) error {
	for _, pg := range pages {
		if err := n.validate(pg); err != nil {
			return err
		}
	}
	return nil
}

// --- application API: memory ---

// Write copies data into the shared address space at addr.
func (n *Node) Write(addr mem.Addr, data []byte) error {
	lay := n.sys.layout
	if addr < 0 || addr+mem.Addr(len(data)) > lay.SpaceSize() {
		return fmt.Errorf("dsm: write [%d,%d) outside space [0,%d)", addr, addr+mem.Addr(len(data)), lay.SpaceSize())
	}
	off := 0
	var err error
	lay.SplitRange(addr, len(data), func(pg mem.PageID, pgOff, count int) {
		if err != nil {
			return
		}
		if err = n.validate(pg); err != nil {
			return
		}
		n.mu.Lock()
		pc := n.pages[pg]
		if _, ok := n.twins[pg]; !ok {
			n.twins[pg] = page.NewTwin(pc.data)
		}
		copy(pc.data[pgOff:pgOff+count], data[off:off+count])
		n.mu.Unlock()
		off += count
	})
	return err
}

// Read copies len(buf) bytes of the shared address space at addr into buf.
func (n *Node) Read(buf []byte, addr mem.Addr) error {
	lay := n.sys.layout
	if addr < 0 || addr+mem.Addr(len(buf)) > lay.SpaceSize() {
		return fmt.Errorf("dsm: read [%d,%d) outside space [0,%d)", addr, addr+mem.Addr(len(buf)), lay.SpaceSize())
	}
	off := 0
	var err error
	lay.SplitRange(addr, len(buf), func(pg mem.PageID, pgOff, count int) {
		if err != nil {
			return
		}
		if err = n.validate(pg); err != nil {
			return
		}
		n.mu.Lock()
		copy(buf[off:off+count], n.pages[pg].data[pgOff:pgOff+count])
		n.mu.Unlock()
		off += count
	})
	return err
}

// WriteUint64 stores a little-endian uint64 at addr.
func (n *Node) WriteUint64(addr mem.Addr, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return n.Write(addr, b[:])
}

// ReadUint64 loads a little-endian uint64 from addr.
func (n *Node) ReadUint64(addr mem.Addr) (uint64, error) {
	var b [8]byte
	if err := n.Read(b[:], addr); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
