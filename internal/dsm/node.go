package dsm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/vc"
	"repro/internal/wire"
)

// Sharding parameters of the node core. Page state is striped across
// pageShards mutexes keyed by page id, so independent pages fault,
// install and diff in parallel; incoming frames are dispatched onto
// handlerWorkers serialized queues keyed the same way, so all protocol
// work for one page is processed in arrival order while different pages
// proceed concurrently.
const (
	// pageShards is the stripe count of the per-page state lock table.
	pageShards = 64
	// handlerWorkers is the size of the per-node handler worker pool;
	// each worker owns one FIFO queue of dispatched frames.
	handlerWorkers = 8
	// workerQueueCap bounds each worker queue; a full queue backpressures
	// the dispatch loop (and through it the transport), exactly like the
	// old single handler goroutine falling behind.
	workerQueueCap = 1024
)

// Stats counts a node's protocol events. Which counters move depends on
// the engine: the lazy protocols create intervals and move diffs, the
// eager ones flush at releases, SC ships whole pages and transfers
// ownership.
type Stats struct {
	AccessMisses     int64
	ColdMisses       int64
	DiffsApplied     int64
	DiffsFetched     int64
	IntervalsCreated int64
	PagesFetched     int64
	GCRuns           int64
	DiffsDiscarded   int64

	// Diff data plane (lazy engines): DiffsCreated counts MakeDiff
	// executions (eager engines tick it too, at their flush points),
	// DiffsDeferred counts interval closes that kept the twin instead of
	// diffing, DiffCacheHits counts serves satisfied by a previously
	// encoded wire body, DiffsFlattened counts diffs elided by merging a
	// multi-interval fetch into one flattened diff, and TwinBytesLive
	// gauges the bytes currently held in live twins (capture minus final
	// release).
	DiffsCreated   int64
	DiffsDeferred  int64
	DiffCacheHits  int64
	DiffsFlattened int64
	TwinBytesLive  int64

	// FlushedPages counts dirty pages pushed at eager release/barrier
	// flush points.
	FlushedPages int64
	// InvalsReceived counts invalidations applied to this node's copies
	// (EI and SC).
	InvalsReceived int64
	// UpdatesReceived counts release-time diffs applied to this node's
	// copies (EU).
	UpdatesReceived int64
	// WriteBacks counts EI false-sharing diffs this node's flushes
	// recovered from invalidated cachers.
	WriteBacks int64
	// OwnershipMoves counts directory owner changes processed at this
	// node as a page home (eager and SC).
	OwnershipMoves int64
	// PageMigrations counts home-table moves that landed a page HERE:
	// first-touch finalizations and dominant-writer migrations whose
	// new home is this node (so the cluster-wide sum is the total
	// number of re-homed pages).
	PageMigrations int64

	// Outbound traffic as the node's outbox handed it to the transport
	// (loopback excluded, matching the interconnect's accounting):
	// SentMsgs logical messages in SentFrames physical frames, of which
	// SentBatches carried more than one message, SentBytes of encoded
	// payload in total. SentMsgs - SentFrames is the fixed per-message
	// network cost the outbox's coalescing saved this node.
	SentMsgs    int64
	SentFrames  int64
	SentBatches int64
	SentBytes   int64
	// KindMsgs and KindBytes break the outbound traffic down by wire
	// message kind (indexed by wire.Kind): which protocol activity the
	// bytes actually are — diffs, page ships, invalidations, lock
	// grants.
	KindMsgs  [wire.NumKinds]int64
	KindBytes [wire.NumKinds]int64

	// Pages is the per-page routing and access-counter snapshot (pages
	// with no recorded activity are omitted): which protocol each page is
	// currently routed to, its last adaptive classification, and the
	// counters feeding the classifier.
	Pages []PageStat
}

// nodeStats is the node's live counter cell: every field is an atomic,
// so counters tick from any goroutine — application, shard worker or
// directory transaction — without touching any page shard lock, and a
// Stats snapshot never contends with (or tears against) an in-flight
// page transaction.
type nodeStats struct {
	accessMisses     atomic.Int64
	coldMisses       atomic.Int64
	diffsApplied     atomic.Int64
	diffsFetched     atomic.Int64
	intervalsCreated atomic.Int64
	pagesFetched     atomic.Int64
	gcRuns           atomic.Int64
	diffsDiscarded   atomic.Int64
	diffsCreated     atomic.Int64
	diffsDeferred    atomic.Int64
	diffCacheHits    atomic.Int64
	diffsFlattened   atomic.Int64
	twinBytesLive    atomic.Int64
	flushedPages     atomic.Int64
	invalsReceived   atomic.Int64
	updatesReceived  atomic.Int64
	writeBacks       atomic.Int64
	ownershipMoves   atomic.Int64
	pageMigrations   atomic.Int64

	sentMsgs    atomic.Int64
	sentFrames  atomic.Int64
	sentBatches atomic.Int64
	sentBytes   atomic.Int64
	kindMsgs    [wire.NumKinds]atomic.Int64
	kindBytes   [wire.NumKinds]atomic.Int64
}

// countSent ticks the per-kind and total outbound counters for one
// encoded message of the given payload size (called by the outbox for
// remote destinations only).
func (s *nodeStats) countSent(k wire.Kind, bytes int) {
	s.sentMsgs.Add(1)
	s.sentBytes.Add(int64(bytes))
	s.kindMsgs[k].Add(1)
	s.kindBytes[k].Add(int64(bytes))
}

func (s *nodeStats) snapshot() Stats {
	st := Stats{
		AccessMisses:     s.accessMisses.Load(),
		ColdMisses:       s.coldMisses.Load(),
		DiffsApplied:     s.diffsApplied.Load(),
		DiffsFetched:     s.diffsFetched.Load(),
		IntervalsCreated: s.intervalsCreated.Load(),
		PagesFetched:     s.pagesFetched.Load(),
		GCRuns:           s.gcRuns.Load(),
		DiffsDiscarded:   s.diffsDiscarded.Load(),
		DiffsCreated:     s.diffsCreated.Load(),
		DiffsDeferred:    s.diffsDeferred.Load(),
		DiffCacheHits:    s.diffCacheHits.Load(),
		DiffsFlattened:   s.diffsFlattened.Load(),
		TwinBytesLive:    s.twinBytesLive.Load(),
		FlushedPages:     s.flushedPages.Load(),
		InvalsReceived:   s.invalsReceived.Load(),
		UpdatesReceived:  s.updatesReceived.Load(),
		WriteBacks:       s.writeBacks.Load(),
		OwnershipMoves:   s.ownershipMoves.Load(),
		PageMigrations:   s.pageMigrations.Load(),
		SentMsgs:         s.sentMsgs.Load(),
		SentFrames:       s.sentFrames.Load(),
		SentBatches:      s.sentBatches.Load(),
		SentBytes:        s.sentBytes.Load(),
	}
	for k := range s.kindMsgs {
		st.KindMsgs[k] = s.kindMsgs[k].Load()
		st.KindBytes[k] = s.kindBytes[k].Load()
	}
	return st
}

// lockLocal is a node's view of one lock.
type lockLocal struct {
	held      bool      // some local goroutine currently holds it
	acquiring bool      // a grant is in flight to us (we are next holder)
	cached    bool      // we were the last holder; reacquisition is local
	pending   *wire.Msg // a forwarded request awaiting our release
	// waiters are local goroutines parked until the holder releases: a
	// node-level handoff queue over the single distributed lock identity,
	// so N application goroutines can contend for the same lock without
	// extra protocol traffic (a local handoff is the cached-reacquire
	// fast path of §4.2).
	waiters []chan struct{}
}

// barEpisode is one local barrier rendezvous: with GoroutinesPerNode=k,
// the k-th arriver becomes the leader, performs the cluster barrier
// (engine hooks, master exchange, post-barrier episode work) on behalf
// of the node, and releases the others.
type barEpisode struct {
	id      mem.BarrierID
	arrived int
	done    chan struct{}
	err     error
}

// inFrame is one decoded incoming frame queued for a handler worker.
type inFrame struct {
	m   *wire.Msg
	src mem.ProcID
}

// Node is one DSM processor. All exported methods are safe for
// concurrent use by multiple application goroutines (size the local
// rendezvous with Config.GoroutinesPerNode when more than one goroutine
// uses barriers); incoming protocol frames are served concurrently by a
// dispatch loop feeding a worker pool that serializes per-page work.
type Node struct {
	sys *System
	id  mem.ProcID
	ep  transport.Endpoint
	// e is the node's engine entry point — always the router, which owns
	// the per-page mode table and fans out to the resident protocol
	// engines; rt is the same object with its concrete type.
	e  engine
	rt *router
	// out is the unified outbound pipeline: every protocol send stages
	// through it, and flush points (immediate sends, grouped rpcAll
	// flushes, worker drain transitions) coalesce same-destination
	// messages into batch frames. See outbox.
	out *outbox

	// pageMu is the striped page-state lock table: pageLock(pg) guards
	// the engine's per-page state (copy bytes, validity, twin, applied
	// clock, generation) and is never held across a blocking operation.
	pageMu [pageShards]sync.Mutex
	// missMu serializes miss service per page stripe: the holder may
	// block in RPCs while bringing the page current, so concurrent
	// faulting goroutines on the same page coalesce onto one protocol
	// transaction instead of racing fetches. Handler-side work never
	// takes a miss lock.
	missMu [pageShards]sync.Mutex

	// lockMu guards the distributed-lock local state machine and the
	// manager-side last-holder table. Engine payload hooks called under
	// it take only engine sync state (lock order: lockMu before engine
	// mutexes, never the reverse).
	lockMu  sync.Mutex
	locks   map[mem.LockID]*lockLocal
	mgrLast map[mem.LockID]mem.ProcID // manager-side last holder

	stats nodeStats

	// Barrier master state: arrivals delivered by the dispatch loop.
	barCh chan *wire.Msg
	gcCh  chan *wire.Msg
	// reclassCh feeds the master's reclassification rendezvous
	// (adaptive.go), exactly like gcCh feeds the GC exchange.
	reclassCh chan *wire.Msg
	// barCount counts cluster barriers this node has entered (leader
	// goroutine only), to agree cluster-wide on which barriers double as
	// classification epochs.
	barCount int

	// barMu guards the local two-level barrier episode.
	barMu sync.Mutex
	bar   *barEpisode

	seqCtr   atomic.Uint64
	waiterMu sync.Mutex
	waiters  map[uint64]rpcWaiter
	// abandoned records seqs whose rpc gave up waiting (RPCTimeout), so
	// the late response — which may still arrive — classifies as an
	// expected race rather than a protocol error. Bounded; guarded by
	// waiterMu.
	abandoned map[uint64]struct{}
	// deadPeers records destinations whose sends failed (the outbox's
	// sticky poison), with the first cause: parked waiters on a dead
	// peer are failed immediately instead of waiting out the timeout.
	// Guarded by waiterMu.
	deadPeers map[mem.ProcID]error

	errMu   sync.Mutex
	errs    []error
	errSeen map[string]struct{}
	// races collects expected shutdown-race and late-response events,
	// classified away from System.Close's error (see noteRace).
	races []error

	// rpcHist, when metrics are configured, observes each rpc's
	// wall-clock wait (seconds). Nil otherwise — the nil check is the
	// entire hot-path cost.
	rpcHist *obs.Histogram

	// queues feed the handler worker pool; closed (by the dispatch loop)
	// on shutdown. closedCh unblocks local waiters — lock queues and
	// barrier rendezvous — when the transport goes away.
	queues   []chan inFrame
	workerWG sync.WaitGroup
	closedCh chan struct{}
}

func newNode(s *System, id mem.ProcID) *Node {
	n := &Node{
		sys:      s,
		id:       id,
		ep:       s.tr.Endpoint(int(id)),
		locks:    make(map[mem.LockID]*lockLocal),
		mgrLast:  make(map[mem.LockID]mem.ProcID),
		barCh:     make(chan *wire.Msg, s.cfg.Procs),
		gcCh:      make(chan *wire.Msg, s.cfg.Procs),
		reclassCh: make(chan *wire.Msg, s.cfg.Procs),
		waiters:   make(map[uint64]rpcWaiter),
		queues:    make([]chan inFrame, handlerWorkers),
		closedCh:  make(chan struct{}),
	}
	for i := range n.queues {
		n.queues[i] = make(chan inFrame, workerQueueCap)
	}
	n.out = newOutbox(n, !s.cfg.NoBatch)
	modes := s.cfg.ModeMap
	if modes == nil {
		modes = uniformModeMap(s.cfg.Mode, s.layout.NumPages())
	}
	n.rt = newRouter(n, modes, s.cfg.AdaptEveryBarriers > 0)
	n.e = n.rt
	return n
}

// pageLock returns the stripe guarding page pg's state.
func (n *Node) pageLock(pg mem.PageID) *sync.Mutex {
	return &n.pageMu[uint32(pg)%pageShards]
}

// homeOf returns page pg's current home node: the directory entry
// under the eager and SC engines, the cold-copy server under the lazy
// ones. A lock-free read of the router's home table — initialized by
// Config.Placement, re-written only inside the quiescent
// reclassification rendezvous, so every node consults the same table
// at a consistent epoch.
func (n *Node) homeOf(pg mem.PageID) mem.ProcID {
	return n.rt.homeOf(pg)
}

// missLock returns the stripe serializing miss service for page pg.
func (n *Node) missLock(pg mem.PageID) *sync.Mutex {
	return &n.missMu[uint32(pg)%pageShards]
}

// ID returns the node's processor id.
func (n *Node) ID() mem.ProcID { return n.id }

// Stats returns a snapshot of the node's protocol counters. Counters
// are atomics: the snapshot never blocks protocol work, and each field
// is internally consistent (the set as a whole is a moment-in-time read
// of monotone counters, not a transaction).
func (n *Node) Stats() Stats {
	st := n.stats.snapshot()
	n.rt.fillPageStats(&st)
	return st
}

// PageModes returns the node's current per-page protocol routing (a
// static configuration's map, or whatever the adaptive classifier has
// re-routed to).
func (n *Node) PageModes() []Mode { return n.rt.pageModes() }

// Clock returns a copy of the node's current vector clock (all zero
// entries under the eager and SC engines, which do not track causality).
func (n *Node) Clock() vc.VC {
	return n.e.clock()
}

// maxNotedErrs bounds each node's recorded error and race lists: under
// injected faults one dead stream can fail thousands of operations, and
// System.Close's joined error must stay readable (deduplication below
// already collapses repeats; the cap is the backstop for errors whose
// text varies).
const maxNotedErrs = 64

// noteErr records a handler-side protocol error so System.Close can
// surface it instead of letting it vanish (a dropped lock grant strands
// its requester). Expected shutdown errors are not recorded, and
// repeats of an already-recorded error text are collapsed (a poisoned
// destination fails every later flush with the same sticky cause).
func (n *Node) noteErr(op string, err error) {
	if err == nil || errors.Is(err, ErrClosed) {
		return
	}
	e := fmt.Errorf("dsm: node %d: %s: %w", n.id, op, err)
	n.errMu.Lock()
	if n.errSeen == nil {
		n.errSeen = make(map[string]struct{})
	}
	if _, dup := n.errSeen[e.Error()]; !dup && len(n.errs) < maxNotedErrs {
		n.errSeen[e.Error()] = struct{}{}
		n.errs = append(n.errs, e)
	}
	n.errMu.Unlock()
}

// noteRace records an expected shutdown-race or late-response event —
// a response whose waiter timed out, a message racing a teardown —
// classified separately from real faults: chaos tests assert on
// System.Close's error for fault causes, and these would be false
// positives there. They remain observable via System.ShutdownRaces.
func (n *Node) noteRace(op string, err error) {
	if err == nil {
		return
	}
	n.errMu.Lock()
	if len(n.races) < maxNotedErrs {
		n.races = append(n.races, fmt.Errorf("dsm: node %d: %s: %w", n.id, op, err))
	}
	n.errMu.Unlock()
}

func (n *Node) takeErrs() []error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	errs := n.errs
	n.errs = nil
	return errs
}

func (n *Node) takeRaces() []error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	races := n.races
	n.races = nil
	return races
}

// validPage and validProc bound-check ids arriving in remote messages
// before they index per-page or per-destination state: the engines'
// page tables and directories are slices, so a remote peer's id fields
// are never trusted as indices. Handlers that reject an id record the
// cause with noteErr and drop the message.
func (n *Node) validPage(pg mem.PageID) bool {
	return pg >= 0 && int(pg) < n.sys.layout.NumPages()
}

func (n *Node) validProc(p mem.ProcID) bool {
	return p >= 0 && int(p) < n.sys.cfg.Procs
}

// --- request/response plumbing ---

// rpcWaiter is one parked rpc: its response channel (buffered, so a
// delivery never blocks) and the destination the request went to, so a
// send failure to that destination can fail exactly the waiters parked
// on it.
type rpcWaiter struct {
	ch  chan *wire.Msg
	dst mem.ProcID
}

func (n *Node) nextSeq() uint64 { return n.seqCtr.Add(1) }

func (n *Node) register(seq uint64, dst mem.ProcID) chan *wire.Msg {
	ch := make(chan *wire.Msg, 1)
	n.waiterMu.Lock()
	n.waiters[seq] = rpcWaiter{ch: ch, dst: dst}
	n.waiterMu.Unlock()
	return ch
}

// await blocks for the response registered under seq, honoring the
// configured RPCTimeout. A closed channel means the waiter was failed:
// by shutdown (ErrClosed), or by dst's death (the recorded cause). On
// timeout the waiter is abandoned — a response that still arrives is
// classified as an expected race, not a protocol error — and the error
// wraps ErrRPCTimeout, never ErrClosed, so callers and tests can tell a
// hung peer from a clean teardown.
func (n *Node) await(dst mem.ProcID, seq uint64, ch chan *wire.Msg) (*wire.Msg, error) {
	var timeout <-chan time.Time
	if d := n.sys.cfg.RPCTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m, ok := <-ch:
		return n.awaited(dst, seq, m, ok)
	case <-timeout:
		if !n.abandon(seq) {
			// The response (or a failure) won the race: it is in the
			// buffered channel, or the send that follows the waiter's
			// removal is instants away.
			m, ok := <-ch
			return n.awaited(dst, seq, m, ok)
		}
		return nil, fmt.Errorf("dsm: node %d: rpc seq %d to node %d: no response within %v: %w",
			n.id, seq, dst, n.sys.cfg.RPCTimeout, ErrRPCTimeout)
	}
}

// awaited interprets a response channel read.
func (n *Node) awaited(dst mem.ProcID, seq uint64, m *wire.Msg, ok bool) (*wire.Msg, error) {
	if !ok || m == nil {
		if cause := n.peerErr(dst); cause != nil {
			return nil, fmt.Errorf("dsm: node %d: rpc seq %d to node %d: peer unreachable: %w",
				n.id, seq, dst, cause)
		}
		return nil, fmt.Errorf("dsm: node %d: awaiting seq %d: %w", n.id, seq, ErrClosed)
	}
	return m, nil
}

// abandon removes seq's waiter after a timeout, recording the seq so a
// late response classifies as benign. It reports false when the waiter
// was already gone — the response beat the timeout.
func (n *Node) abandon(seq uint64) bool {
	n.waiterMu.Lock()
	defer n.waiterMu.Unlock()
	if _, ok := n.waiters[seq]; !ok {
		return false
	}
	delete(n.waiters, seq)
	if n.abandoned == nil {
		n.abandoned = make(map[uint64]struct{})
	}
	if len(n.abandoned) < 1024 {
		n.abandoned[seq] = struct{}{}
	}
	return true
}

// peerFailed marks dst dead with its first send-failure cause and fails
// every waiter parked on it: the paper's fail-stop model, propagated —
// a node whose stream to a peer broke will never get its responses, so
// its parked rpcs learn immediately instead of waiting out the timeout.
// Shutdown errors are not peer deaths (every stream "fails" at Close).
func (n *Node) peerFailed(dst mem.ProcID, cause error) {
	if cause == nil || dst == n.id || errors.Is(cause, ErrClosed) {
		return
	}
	n.waiterMu.Lock()
	if n.deadPeers == nil {
		n.deadPeers = make(map[mem.ProcID]error)
	}
	_, known := n.deadPeers[dst]
	if !known {
		n.deadPeers[dst] = cause
	}
	var chs []chan *wire.Msg
	for seq, w := range n.waiters {
		if w.dst == dst {
			delete(n.waiters, seq)
			chs = append(chs, w.ch)
		}
	}
	n.waiterMu.Unlock()
	for _, ch := range chs {
		close(ch)
	}
	if !known {
		n.noteErr("peer liveness", fmt.Errorf("node %d unreachable: %v", dst, cause))
	}
}

// peerErr returns the recorded death cause for dst, or nil.
func (n *Node) peerErr(dst mem.ProcID) error {
	n.waiterMu.Lock()
	defer n.waiterMu.Unlock()
	return n.deadPeers[dst]
}

func (n *Node) deregister(seq uint64) {
	n.waiterMu.Lock()
	delete(n.waiters, seq)
	n.waiterMu.Unlock()
}

// failWaiter unblocks the rpc waiter parked on seq with a failure (its
// await returns an error) after the engine rejected the response it was
// waiting for; the detailed cause was recorded with noteErr for
// System.Close. Failing rather than stranding the waiter keeps the
// application live so the run can reach Close and surface the cause. A
// missing waiter is fine — the rejected response may not have matched
// any request to begin with.
func (n *Node) failWaiter(seq uint64) {
	n.waiterMu.Lock()
	w, ok := n.waiters[seq]
	if ok {
		delete(n.waiters, seq)
	}
	n.waiterMu.Unlock()
	if ok {
		close(w.ch)
	}
}

// send stages m for dst on the outbox and flushes immediately — the
// single-message path for anything latency-critical. Messages staged
// earlier for dst (a worker's deferred responses) ride the same flush,
// ahead of m in FIFO order.
func (n *Node) send(dst mem.ProcID, m *wire.Msg) error {
	return n.out.send(dst, m)
}

// stage defers m on the outbox without flushing. Only shard-worker
// inline handlers may use it: the worker's end-of-dispatch drain is the
// guaranteed flush point, so under load a burst of responses to one
// peer leaves as one batch frame, and at idle the flush is immediate.
func (n *Node) stage(dst mem.ProcID, m *wire.Msg) {
	n.out.stage(dst, m)
}

// rpc sends m to dst and blocks for the response with the same Seq.
// Any number of goroutines may have rpcs outstanding concurrently. The
// request goes out on the outbox's rpc path: under a Nagle flush policy
// the requester — about to park in await anyway — holds the destination
// open briefly so concurrent same-destination traffic shares its frame.
func (n *Node) rpc(dst mem.ProcID, m *wire.Msg) (*wire.Msg, error) {
	if h := n.rpcHist; h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start).Seconds()) }()
	}
	ch := n.register(m.Seq, dst)
	if err := n.out.sendRPC(dst, m); err != nil {
		n.deregister(m.Seq)
		return nil, err
	}
	return n.await(dst, m.Seq, ch)
}

// outMsg pairs a request with its destination for a grouped send.
type outMsg struct {
	dst mem.ProcID
	m   *wire.Msg
}

// rpcAll issues a group of requests as one staged burst — every request
// is staged before any flush, so requests to the same destination
// coalesce into one batch frame — then blocks for all responses,
// returned in request order. On a flush error the requests of the
// destinations that failed are deregistered (a failed stream sends
// nothing) and the first error is returned after the surviving
// destinations' responses arrive, so no response is ever orphaned.
func (n *Node) rpcAll(reqs []outMsg) ([]*wire.Msg, error) {
	chs := make([]chan *wire.Msg, len(reqs))
	for i, r := range reqs {
		chs[i] = n.register(r.m.Seq, r.dst)
		n.out.stage(r.dst, r.m)
	}
	// One Nagle hold covers the whole group (per-destination holds would
	// stack delays): any concurrent traffic that arrives during it joins
	// the flushes below.
	for _, r := range reqs {
		if r.dst != n.id {
			n.out.nagleWait(r.dst)
			break
		}
	}
	var flushErr error
	failed := make(map[mem.ProcID]bool)
	for _, r := range reqs {
		if failed[r.dst] {
			continue
		}
		if err := n.out.flushDst(r.dst); err != nil {
			failed[r.dst] = true
			if flushErr == nil {
				flushErr = err
			}
		}
	}
	resps := make([]*wire.Msg, len(reqs))
	var awaitErr error
	for i, r := range reqs {
		if failed[r.dst] {
			n.deregister(r.m.Seq)
			continue
		}
		m, err := n.await(r.dst, r.m.Seq, chs[i])
		if err != nil {
			if awaitErr == nil {
				awaitErr = err
			}
			continue
		}
		resps[i] = m
	}
	if flushErr != nil {
		return nil, flushErr
	}
	if awaitErr != nil {
		return nil, awaitErr
	}
	return resps, nil
}

// deliverResponse hands a response message to the requester parked in
// rpc. Engines that intercept their responses in handle (installs and
// flush reconciliations apply on the page's shard queue to stay in
// directory order) call this after processing. A response nobody waits
// for is a protocol error surfaced through System.Close — unless the
// node is shutting down, when a racing teardown legitimately abandons
// waiters.
func (n *Node) deliverResponse(m *wire.Msg) {
	n.waiterMu.Lock()
	w, ok := n.waiters[m.Seq]
	if ok {
		delete(n.waiters, m.Seq)
	}
	var late bool
	if !ok {
		if _, late = n.abandoned[m.Seq]; late {
			delete(n.abandoned, m.Seq)
		}
	}
	n.waiterMu.Unlock()
	if ok {
		w.ch <- m
		return
	}
	if late {
		// The waiter timed out (RPCTimeout) before this response landed:
		// an expected race under a slow or faulty interconnect, recorded
		// apart from real protocol errors.
		n.noteRace("response routing",
			fmt.Errorf("response seq %d kind %v arrived after its rpc timed out", m.Seq, m.Kind))
		return
	}
	select {
	case <-n.closedCh:
		return
	default:
	}
	n.noteErr("response routing",
		fmt.Errorf("unexpected response seq %d kind %v", m.Seq, m.Kind))
}

// collect receives one rendezvous message (a barrier arrival, a GC or
// reclassification ready) from ch, honoring the configured RPCTimeout:
// a master collecting from a dead peer must unblock and surface a
// descriptive error, exactly like a parked rpc.
func (n *Node) collect(ch chan *wire.Msg, what string) (*wire.Msg, error) {
	var timeout <-chan time.Time
	if d := n.sys.cfg.RPCTimeout; d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case m, ok := <-ch:
		if !ok || m == nil {
			return nil, fmt.Errorf("dsm: node %d: %s: %w", n.id, what, ErrClosed)
		}
		return m, nil
	case <-timeout:
		return nil, fmt.Errorf("dsm: node %d: %s: no arrival within %v: %w",
			n.id, what, n.sys.cfg.RPCTimeout, ErrRPCTimeout)
	}
}

// dispatchKey maps a frame to its serialization domain: page-keyed
// kinds serialize per page (the directory-order invariant: a page ship
// and the invalidation that follows it in transport FIFO order are
// processed in that order), lock kinds per lock, and diff traffic —
// immutable payloads with no ordering dependence — by sequence number
// for load spreading.
func dispatchKey(m *wire.Msg) uint32 {
	switch m.Kind {
	case wire.KLockReq, wire.KLockFwd, wire.KLockGrant:
		// Separate namespace from pages so lock i and page i do not
		// needlessly serialize.
		return uint32(m.A)*2 + 1
	case wire.KDiffReq, wire.KDiffResp:
		return uint32(m.Seq)
	default:
		return uint32(m.A) * 2
	}
}

// dispatchLoop receives frames until the transport closes, decoding and
// fanning them out to the worker pool. A compressed frame is expanded
// first; a batch frame is unpacked and its messages dispatched in
// order, so the per-page shard FIFO the directory invariants rely on is
// exactly the sender's staging order. Decoding copies everything out of
// the payload, so the frame buffer is recycled immediately — the
// receive half of the pooled zero-copy pipeline. Barrier arrivals and
// the collective-exchange responses are handled inline (they only park
// on rendezvous channels or wake rpc waiters).
//
// A frame that fails to expand or decode came off the wire from a
// remote peer, so it is not a local invariant violation: the error is
// recorded for System.Close and the frame dropped, rather than letting
// one corrupt or hostile peer panic the node.
func (n *Node) dispatchLoop() {
	for {
		src, payload, ok := n.ep.Recv()
		if !ok {
			n.shutdown()
			return
		}
		if wire.IsCompressed(payload) {
			inner, err := wire.Expand(payload)
			wire.PutBuf(payload)
			if err != nil {
				n.noteErr("inbound frame", fmt.Errorf("corrupt compressed frame from %d: %w", src, err))
				continue
			}
			payload = inner
		}
		if wire.IsBatch(payload) {
			msgs, err := wire.DecodeBatch(payload)
			wire.PutBuf(payload)
			if err != nil {
				n.noteErr("inbound frame", fmt.Errorf("undecodable batch frame from %d: %w", src, err))
				continue
			}
			for _, m := range msgs {
				n.dispatchMsg(m, mem.ProcID(src))
			}
			continue
		}
		m, err := wire.Decode(payload)
		wire.PutBuf(payload)
		if err != nil {
			n.noteErr("inbound frame", fmt.Errorf("undecodable frame from %d: %w", src, err))
			continue
		}
		n.dispatchMsg(m, mem.ProcID(src))
	}
}

// dispatchMsg routes one decoded message: rendezvous kinds inline,
// everything else onto its serialized shard queue.
func (n *Node) dispatchMsg(m *wire.Msg, src mem.ProcID) {
	if n.traceOn() {
		n.emit("recv", m.Kind.String(), int64(src))
	}
	switch m.Kind {
	case wire.KBarrierArrive:
		n.barCh <- m
	case wire.KGCReady:
		n.gcCh <- m
	case wire.KReclassReady:
		n.reclassCh <- m
	case wire.KBarrierExit, wire.KGCDone, wire.KReclassGo:
		n.deliverResponse(m)
	default:
		// Count the frame against its source's collector gate before it
		// can be processed, so the burst's replies flush as one frame when
		// the last of them completes (see outbox.noteDispatched).
		n.out.noteDispatched(src)
		n.queues[dispatchKey(m)%handlerWorkers] <- inFrame{m: m, src: src}
	}
}

// worker drains one serialized frame queue. The queue-empty transition
// is the worker's outbox flush point: responses its handlers staged
// while a burst of frames was queued leave together — coalesced per
// destination — and at idle every frame's responses flush before the
// worker blocks again, so deferral never delays a response the sender
// is waiting on.
func (n *Node) worker(q chan inFrame) {
	defer n.workerWG.Done()
	for f := range q {
		n.process(f.m, f.src)
		n.out.noteCompleted(f.src)
		for drained := false; !drained; {
			select {
			case f2, ok := <-q:
				if !ok {
					n.noteErr("outbox flush", n.out.flushAll())
					return
				}
				n.process(f2.m, f2.src)
				n.out.noteCompleted(f2.src)
			default:
				drained = true
			}
		}
		n.noteErr("outbox flush", n.out.flushAll())
	}
}

// process handles one dispatched frame on its shard worker.
func (n *Node) process(m *wire.Msg, src mem.ProcID) {
	switch {
	case n.e.handle(m, src):
		// Engine-specific request (or an intercepted response).
	case m.Kind.IsResponse():
		n.deliverResponse(m)
	case m.Kind == wire.KLockReq:
		n.handleLockReq(m)
	case m.Kind == wire.KLockFwd:
		n.handleLockFwd(m)
	default:
		// Remote peers choose the kind; an unhandled one is their bug (or
		// malice), not ours — record and drop instead of panicking.
		n.noteErr("dispatch", fmt.Errorf("unhandled message kind %v from %d", m.Kind, src))
	}
}

// start launches the node's worker pool (the dispatch loop is started
// by the System, which tracks it for Close).
func (n *Node) start() {
	for _, q := range n.queues {
		n.workerWG.Add(1)
		go n.worker(q)
	}
}

// shutdown runs on the dispatch loop when the transport closes: drain
// and stop the workers, then unblock every parked goroutine — rpc
// waiters, a master collecting arrivals, local lock and barrier queues.
func (n *Node) shutdown() {
	for _, q := range n.queues {
		close(q)
	}
	n.workerWG.Wait()
	close(n.closedCh)
	n.waiterMu.Lock()
	for seq, w := range n.waiters {
		close(w.ch)
		delete(n.waiters, seq)
	}
	n.waiterMu.Unlock()
	close(n.barCh)
	close(n.gcCh)
	close(n.reclassCh)
}

// --- application API: memory ---

// Write copies data into the shared address space at addr. Safe for
// concurrent use; writes to distinct pages proceed in parallel.
func (n *Node) Write(addr mem.Addr, data []byte) error {
	lay := n.sys.layout
	if addr < 0 || addr+mem.Addr(len(data)) > lay.SpaceSize() {
		return fmt.Errorf("dsm: write [%d,%d) outside space [0,%d)", addr, addr+mem.Addr(len(data)), lay.SpaceSize())
	}
	off := 0
	var err error
	lay.SplitRange(addr, len(data), func(pg mem.PageID, pgOff, count int) {
		if err != nil {
			return
		}
		err = n.e.writePage(pg, pgOff, data[off:off+count])
		off += count
	})
	return err
}

// Read copies len(buf) bytes of the shared address space at addr into
// buf. Safe for concurrent use; reads of distinct pages proceed in
// parallel.
func (n *Node) Read(buf []byte, addr mem.Addr) error {
	lay := n.sys.layout
	if addr < 0 || addr+mem.Addr(len(buf)) > lay.SpaceSize() {
		return fmt.Errorf("dsm: read [%d,%d) outside space [0,%d)", addr, addr+mem.Addr(len(buf)), lay.SpaceSize())
	}
	off := 0
	var err error
	lay.SplitRange(addr, len(buf), func(pg mem.PageID, pgOff, count int) {
		if err != nil {
			return
		}
		err = n.e.readPage(pg, pgOff, buf[off:off+count])
		off += count
	})
	return err
}

// WriteUint64 stores a little-endian uint64 at addr.
func (n *Node) WriteUint64(addr mem.Addr, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return n.Write(addr, b[:])
}

// ReadUint64 loads a little-endian uint64 from addr.
func (n *Node) ReadUint64(addr mem.Addr) (uint64, error) {
	var b [8]byte
	if err := n.Read(b[:], addr); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}
