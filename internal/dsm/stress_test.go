package dsm

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mem"
)

// TestRandomizedStress runs every node through a random mix of
// lock-protected shared-counter updates, owner-private writes, barrier
// rounds and cross-node reads, then checks every verifiable quantity:
// counter totals, each node's private region, and the interconnect's
// accounting.
func TestRandomizedStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	allModes(t, func(t *testing.T, mode Mode) {
		const (
			procs    = 6
			rounds   = 8
			counters = 3
		)
		s, err := New(Config{
			Procs: procs, SpaceSize: 256 * 1024, PageSize: 1024,
			Mode: mode, GCEveryBarriers: 3,
		})
		must(t, err)
		defer s.Close()

		// Layout: counters at page k (k < counters); private region for
		// node i at 64k + i*4k.
		counterAddr := func(k int) mem.Addr { return mem.Addr(k * 1024) }
		privAddr := func(i, slot int) mem.Addr { return mem.Addr(64*1024 + i*4096 + slot*8) }

		incs := make([][]int, procs) // per node, per counter
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			incs[i] = make([]int, counters)
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(i) + 100))
				n := s.Node(i)
				for round := 0; round < rounds; round++ {
					for op := 0; op < 10; op++ {
						switch rng.Intn(3) {
						case 0: // locked counter increment
							k := rng.Intn(counters)
							if err := n.Acquire(mem.LockID(k)); err != nil {
								errs[i] = err
								return
							}
							v, err := n.ReadUint64(counterAddr(k))
							if err != nil {
								errs[i] = err
								return
							}
							if err := n.WriteUint64(counterAddr(k), v+1); err != nil {
								errs[i] = err
								return
							}
							if err := n.Release(mem.LockID(k)); err != nil {
								errs[i] = err
								return
							}
							incs[i][k]++
						case 1: // private write
							slot := rng.Intn(16)
							if err := n.WriteUint64(privAddr(i, slot), uint64(i*1000+round*16+slot)); err != nil {
								errs[i] = err
								return
							}
						case 2: // cross-node read of the previous round's data
							j := rng.Intn(procs)
							if _, err := n.ReadUint64(privAddr(j, rng.Intn(16))); err != nil {
								errs[i] = err
								return
							}
						}
					}
					if err := n.Barrier(0); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}

		// Verify counters.
		n := s.Node(0)
		for k := 0; k < counters; k++ {
			want := uint64(0)
			for i := 0; i < procs; i++ {
				want += uint64(incs[i][k])
			}
			must(t, n.Acquire(mem.LockID(k)))
			got, err := n.ReadUint64(counterAddr(k))
			must(t, err)
			must(t, n.Release(mem.LockID(k)))
			if got != want {
				t.Errorf("counter %d = %d, want %d", k, got, want)
			}
		}
		if s.NetStats().Messages == 0 {
			t.Error("stress run produced no interconnect traffic")
		}
	})
}

// TestSequentialConsistencyForProperlyLabeled replays the same properly-
// labeled program on the live DSM and on a plain sequential in-memory
// model; per Gharachorloo et al. (paper §2), results must coincide.
func TestSequentialConsistencyForProperlyLabeled(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		const procs = 4
		s := newSys(t, procs, mode)

		// The program: round-robin token passing through locks; each node
		// appends its id to a shared log at the cursor, all protected by
		// one lock. The final log must equal the sequential order of
		// acquisitions, which the counter makes verifiable.
		total := 24
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				for {
					if err := n.Acquire(0); err != nil {
						errs[i] = err
						return
					}
					cur, err := n.ReadUint64(0)
					if err != nil {
						errs[i] = err
						return
					}
					if cur >= uint64(total) {
						errs[i] = n.Release(0)
						return
					}
					// Append our id at the cursor and advance.
					if err := n.WriteUint64(mem.Addr(8+8*cur), uint64(i)+1); err != nil {
						errs[i] = err
						return
					}
					if err := n.WriteUint64(0, cur+1); err != nil {
						errs[i] = err
						return
					}
					if err := n.Release(0); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
		// Every slot must hold exactly one node id (no lost or torn
		// appends), observed identically from every node.
		for obs := 0; obs < procs; obs++ {
			n := s.Node(obs)
			must(t, n.Acquire(0))
			for k := 0; k < total; k++ {
				v, err := n.ReadUint64(mem.Addr(8 + 8*k))
				must(t, err)
				if v < 1 || v > procs {
					t.Fatalf("observer %d: slot %d = %d, want a node id in [1,%d]", obs, k, v, procs)
				}
			}
			must(t, n.Release(0))
		}
	})
}

// TestTwoSystemsSideBySide checks complete isolation between DSM
// instances: writes and synchronization in one never leak into the other.
func TestTwoSystemsSideBySide(t *testing.T) {
	a := newSys(t, 2, LazyInvalidate)
	b := newSys(t, 2, LazyUpdate)
	runRound := func(s *System, val uint64) {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				if i == 0 {
					must(t, n.WriteUint64(0, val))
				}
				must(t, n.Barrier(0))
				v, err := n.ReadUint64(0)
				must(t, err)
				if v != val {
					t.Errorf("system with val %d: node %d read %d", val, i, v)
				}
			}(i)
		}
		wg.Wait()
	}
	runRound(a, 1)
	runRound(b, 2)
	if got := mustRead(t, a.Node(0), 0); got != 1 {
		t.Errorf("system a sees %d after system b's round", got)
	}
}

func mustRead(t *testing.T, n *Node, addr mem.Addr) uint64 {
	t.Helper()
	v, err := n.ReadUint64(addr)
	must(t, err)
	return v
}
