package dsm

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/transport/tcp"
	"repro/internal/wire"
)

// Hostile-peer hardening: anything a remote peer can put on the wire —
// an undecodable frame, a corrupt compressed stream, a forged message
// with out-of-range ids or an unknown sequence — must be recorded and
// dropped, surfacing through System.Close, never panicking the node.
// (A panic here would let one corrupt or malicious peer take down every
// process in the cluster.)

// waitNodeErr polls until node n has recorded an error containing want.
func waitNodeErr(t *testing.T, n *Node, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n.errMu.Lock()
		for _, err := range n.errs {
			if strings.Contains(err.Error(), want) {
				n.errMu.Unlock()
				return
			}
		}
		n.errMu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("node %d never recorded an error containing %q", n.id, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCorruptTCPFramesSurfaceOnClose: corrupt frames injected into a
// live loopback TCP cluster — garbage bytes, a damaged batch, a bogus
// compressed stream — are recorded and dropped; the run terminates with
// the causes in System.Close's error instead of a decoder panic.
func TestCorruptTCPFramesSurfaceOnClose(t *testing.T) {
	cluster, err := tcp.NewLoopbackCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	newSys := func(i int) *System {
		s, err := New(Config{
			Procs: 2, SpaceSize: 8192, PageSize: 1024, Mode: LazyUpdate,
			Transport: cluster[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1 := newSys(0), newSys(1)
	defer s1.Close()
	defer s0.Close()

	// A healthy lock-synchronized exchange first: the hostile frames
	// arrive at a node that is genuinely mid-protocol, not idle.
	lockedWrite := func(n *Node, addr mem.Addr, v uint64) error {
		if err := n.Acquire(0); err != nil {
			return err
		}
		if err := n.WriteUint64(addr, v); err != nil {
			return err
		}
		return n.Release(0)
	}
	lockedRead := func(n *Node, addr mem.Addr) (uint64, error) {
		if err := n.Acquire(0); err != nil {
			return 0, err
		}
		v, err := n.ReadUint64(addr)
		if err != nil {
			return 0, err
		}
		return v, n.Release(0)
	}
	if err := lockedWrite(s1.Node(1), 0, 7); err != nil {
		t.Fatal(err)
	}
	if v, err := lockedRead(s0.Node(0), 0); err != nil || v != 7 {
		t.Fatalf("warm-up read = %d, %v; want 7", v, err)
	}

	inject := s1.tr.Endpoint(1)
	// Garbage bytes in message position (unknown kind 0xffff).
	garbage := make([]byte, 24)
	for i := range garbage {
		garbage[i] = 0xff
	}
	// A batch header whose sub-frames are lies.
	badBatch := wire.AppendBatchHeader(nil, 2)
	badBatch = append(badBatch, 0xde, 0xad, 0xbe, 0xef)
	// A compressed header over bytes that are not a flate stream.
	badZ := make([]byte, 32)
	binary.LittleEndian.PutUint16(badZ[0:], uint16(wire.KCompressed))
	binary.LittleEndian.PutUint32(badZ[12:], 24)
	for i := 24; i < len(badZ); i++ {
		badZ[i] = 0xff
	}
	for _, frame := range [][]byte{garbage, badBatch, badZ} {
		if err := inject.Send(0, frame); err != nil {
			t.Fatal(err)
		}
	}
	n0 := s0.Node(0)
	waitNodeErr(t, n0, "undecodable frame from 1")
	waitNodeErr(t, n0, "undecodable batch frame from 1")
	waitNodeErr(t, n0, "corrupt compressed frame from 1")

	// The node is still alive: the healthy peer keeps working.
	if err := lockedWrite(s1.Node(1), 1024, 9); err != nil {
		t.Fatal(err)
	}
	if v, err := lockedRead(s0.Node(0), 1024); err != nil || v != 9 {
		t.Fatalf("post-corruption read = %d, %v; want 9", v, err)
	}

	cerr := s0.Close()
	if cerr == nil {
		t.Fatal("Close returned nil despite recorded hostile-frame errors")
	}
	for _, want := range []string{"undecodable frame", "undecodable batch frame", "corrupt compressed frame"} {
		if !strings.Contains(cerr.Error(), want) {
			t.Errorf("Close error %q lost the %q cause", cerr, want)
		}
	}
}

// TestHostileSectionsRecordedNotPanic: mode-tagged consistency sections
// are validated against the node's resident engines. A section claiming a
// protocol this node does not host (whether a plausible mode id or one
// far outside the engine table) and a duplicated mode tag are forgeries:
// each is recorded and dropped while the rest of the message still
// applies — the lock is still granted, the node stays alive.
func TestHostileSectionsRecordedNotPanic(t *testing.T) {
	cases := []struct {
		name     string
		sections []wire.Section
		want     string
	}{
		{"non-resident mode", []wire.Section{{Mode: uint16(EagerInvalidate)}},
			"section for non-resident mode"},
		{"mode beyond the engine table", []wire.Section{{Mode: 0x7f}},
			"section for non-resident mode"},
		{"duplicate mode sections", []wire.Section{{Mode: uint16(LazyUpdate)}, {Mode: uint16(LazyUpdate)}},
			"duplicate section for mode"},
		{"truncated section clock", []wire.Section{{Mode: uint16(LazyUpdate), VC: []int32{3}}},
			"carries a 1-entry clock"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A mixed-mode node hosting SC and LU: EI is a real protocol
			// but not resident here.
			modes, err := ParseModeMap("pg0-3=SC,rest=LU", 8)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{Procs: 2, SpaceSize: 8192, PageSize: 1024, ModeMap: modes})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// Prime the lock: after node 0 acquires and releases, the
			// manager knows a previous holder, so the next request is
			// forwarded there and answered with a payload-building grant —
			// which first validates the request's sections.
			if err := s.Node(0).Acquire(0); err != nil {
				t.Fatal(err)
			}
			if err := s.Node(0).Release(0); err != nil {
				t.Fatal(err)
			}
			msg := &wire.Msg{Kind: wire.KLockReq, Seq: 99, A: 0, B: 1, Sections: tc.sections}
			if err := s.tr.Endpoint(1).Send(0, msg.EncodeAppend(wire.GetBuf())); err != nil {
				t.Fatal(err)
			}
			waitNodeErr(t, s.Node(0), tc.want)
			if cerr := s.Close(); cerr == nil || !strings.Contains(cerr.Error(), tc.want) {
				t.Fatalf("Close = %v, want the recorded %q cause", cerr, tc.want)
			}
		})
	}
}

// TestForgedFramesRecordedNotPanic: well-formed frames carrying forged
// content — ids outside every table, sequences nobody asked about,
// kinds the engine does not speak — exercise each engine's handler-side
// validation: the cause is recorded for Close and the frame dropped.
func TestForgedFramesRecordedNotPanic(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
		msg  *wire.Msg
		want string
	}{
		{"unknown kind", SeqConsistent,
			&wire.Msg{Kind: wire.KDiffReq, Seq: 99, Wants: []wire.Want{{Page: 0}}},
			"unhandled message kind"},
		{"lock request from invalid requester", LazyInvalidate,
			&wire.Msg{Kind: wire.KLockReq, Seq: 99, A: 0, B: 77},
			"lock request"},
		{"page request beyond the space", LazyInvalidate,
			&wire.Msg{Kind: wire.KPageReq, Seq: 99, A: 1 << 20, B: 1},
			"page request"},
		{"eager page request beyond the space", EagerInvalidate,
			&wire.Msg{Kind: wire.KPageReq, Seq: 99, A: 1 << 20, B: 1},
			"page request"},
		{"sc read request from invalid requester", SeqConsistent,
			&wire.Msg{Kind: wire.KPageReq, Seq: 99, A: 0, B: 77},
			"read request"},
		{"page grant for impossible page", EagerInvalidate,
			&wire.Msg{Kind: wire.KPageResp, Seq: 99, A: 1 << 20, Data: make([]byte, 1024)},
			"page install"},
		{"flush reconciliation nobody asked for", EagerUpdate,
			&wire.Msg{Kind: wire.KFlushDone, Seq: 424242, A: 0},
			"flush reconcile"},
		{"invalidation beyond the space", EagerInvalidate,
			&wire.Msg{Kind: wire.KInval, Seq: 99, A: 1 << 20, B: 0},
			"invalidation"},
		{"response nobody awaits", LazyUpdate,
			&wire.Msg{Kind: wire.KDiffResp, Seq: 424242},
			"response routing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{Procs: 2, SpaceSize: 8192, PageSize: 1024, Mode: tc.mode})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.tr.Endpoint(1).Send(0, tc.msg.EncodeAppend(wire.GetBuf())); err != nil {
				t.Fatal(err)
			}
			waitNodeErr(t, s.Node(0), tc.want)
			if cerr := s.Close(); cerr == nil || !strings.Contains(cerr.Error(), tc.want) {
				t.Fatalf("Close = %v, want the recorded %q cause", cerr, tc.want)
			}
		})
	}
}
