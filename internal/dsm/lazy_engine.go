package dsm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
	"repro/internal/wire"
)

// lazyEngine implements lazy release consistency (§4): intervals, twins,
// diffs and vector clocks. Write notices ride lock grants and barrier
// messages; diffs are fetched from their creators at access misses (LI)
// or acquire time (LU).
//
// Concurrency: page copies and their twins are per-page state under the
// node's striped lock table, so independent pages are read, written and
// validated in parallel; the interval machinery — vector clock, interval
// log, retained-diff store — stays under one engine mutex (mu), taken
// only at synchronization points and when a validation plans or applies
// outstanding diffs. Which pages the current interval dirtied is
// tracked in a dirty set (twin creation registers the page) so closing
// an interval does not need to sweep every page. A per-page generation
// counter closes the plan/apply race: if fresh write notices for the
// page land while a validation is fetching diffs, the apply step
// observes the bumped generation and replans.
//
// Lock order: node.lockMu < e.mu < node.pageMu stripe < e.dirtyMu.
type lazyEngine struct {
	n      *Node
	update bool // LU: bring cached copies up to date at acquire time
	// eagerDiffs restores eager diff creation at interval close (the
	// pre-lazy behavior) for A/B measurement; deferral changes only when
	// diffs are computed, never which messages flow, so the two settings
	// are image- and message-identical.
	eagerDiffs bool

	// mu guards the interval machinery below.
	mu        sync.Mutex
	v         vc.VC
	log       *core.Log
	diffs     map[core.IntervalID]map[mem.PageID]*diffSlot
	lastEpoch vc.VC
	episodes  int
	// flat caches flattened diffs built by handleDiffReq, keyed by the
	// merged index range, so repeat requesters reuse one merge (and its
	// encoded wire body). Dropped wholesale when GC discards diffs.
	flat map[flatKey]*page.Diff
	// fresh accumulates the interval records learned during the current
	// barrier rendezvous, for postBarrier's invalidation step.
	fresh []wire.IntervalRec

	// dirtyMu guards the current interval's dirty-page set (pages with a
	// live twin). Leaf lock: taken with a page stripe or e.mu held,
	// never the other way around.
	dirtyMu sync.Mutex
	dirty   map[mem.PageID]struct{}

	// pages[i] is guarded by n.pageLock(i).
	pages []*lazyPage
}

// lazyPage is a node's local copy of one page, guarded by its stripe.
type lazyPage struct {
	data    []byte
	valid   bool
	applied vc.VC      // modifications reflected in data
	twin    *page.Twin // present while the current interval has writes
	gen     uint64     // bumped whenever fresh notices target this page
	// pending is the deferred diff slot of this node's latest closed
	// interval on the page, while its post-interval contents still live
	// in data (no snapshot taken yet). The next twin capture or any
	// mutation of data resolves it — see materializeSlot.
	pending *diffSlot
}

// diffSlot is one retained diff in the store: either materialized (d set)
// or deferred (base twin captured, diff not yet computed). A deferred
// slot's target contents are the target twin if set, else the live page
// data (the slot is then the page's pending slot). All fields are
// guarded by the slot's page stripe; the store map itself is under e.mu.
type diffSlot struct {
	d      *page.Diff
	base   *page.Twin
	target *page.Twin
	// flat marks a slot received as part of a flattened response group.
	// Its diff is positionally entangled with the rest of the group
	// (the head carries every member's bytes, the members are empty),
	// so it is applied locally but never forwarded: not piggybacked on
	// LU grants and never served to a peer.
	flat bool
}

// flatKey identifies a flattened serve group: this node's own intervals
// on one page with indices in [first, last]. FlattenSafe only passes
// when the group contains every own interval on the page in that range,
// so the range determines the members.
type flatKey struct {
	pg          mem.PageID
	first, last int32
}

// flatCacheMax caps e.flat: each entry pins a merged diff plus its
// encoded wire body (up to ~2 page-sizes), and runs whose barrier GC is
// disabled would otherwise grow the cache by one entry per distinct
// served range for the life of the process.
const flatCacheMax = 256

func newLazyEngine(n *Node, update bool) *lazyEngine {
	return &lazyEngine{
		n:          n,
		update:     update,
		eagerDiffs: n.sys.cfg.EagerDiffs,
		v:          vc.New(n.sys.cfg.Procs),
		log:        core.NewLog(n.sys.cfg.Procs),
		diffs:      make(map[core.IntervalID]map[mem.PageID]*diffSlot),
		lastEpoch:  vc.New(n.sys.cfg.Procs),
		flat:       make(map[flatKey]*page.Diff),
		dirty:      make(map[mem.PageID]struct{}),
		pages:      make([]*lazyPage, n.sys.layout.NumPages()),
	}
}

// newTwin and releaseTwin wrap twin capture and release with the
// TwinBytesLive gauge: the gauge rises at capture and falls at the last
// release, when the buffer returns to the page pool.
func (e *lazyEngine) newTwin(contents []byte) *page.Twin {
	t := page.NewTwin(contents)
	e.n.stats.twinBytesLive.Add(int64(t.Len()))
	return t
}

func (e *lazyEngine) releaseTwin(t *page.Twin) {
	size := int64(t.Len())
	if t.Release() {
		e.n.stats.twinBytesLive.Add(-size)
	}
}

// materializeSlot computes a deferred slot's diff. Caller holds the
// slot's page stripe; pc is the page's current copy (nil only if the
// page was dropped, which materializes first, so a deferred slot always
// still has its target contents). The base and any target twin are
// released once the diff exists.
func (e *lazyEngine) materializeSlot(pc *lazyPage, slot *diffSlot, pg mem.PageID) {
	if slot.d != nil {
		return
	}
	var cur []byte
	switch {
	case slot.target != nil:
		cur = slot.target.Data()
	case pc != nil:
		cur = pc.data
	default:
		panic(fmt.Sprintf("dsm: node %d: deferred diff for page %d lost its target contents", e.n.id, pg))
	}
	d, err := page.MakeDiff(slot.base, cur)
	if err != nil {
		panic(fmt.Sprintf("dsm: node %d: diffing page %d: %v", e.n.id, pg, err))
	}
	slot.d = d
	e.releaseTwin(slot.base)
	slot.base = nil
	if slot.target != nil {
		e.releaseTwin(slot.target)
		slot.target = nil
	} else if pc != nil && pc.pending == slot {
		pc.pending = nil
	}
	e.n.stats.diffsCreated.Add(1)
}

// serveDiff prepares a diff for the encoder: the wire body is built once
// (EnsureWireBody) and every reuse counts as a cache hit.
func (e *lazyEngine) serveDiff(d *page.Diff) *page.Diff {
	if d.WireBody() != nil {
		e.n.stats.diffCacheHits.Add(1)
	}
	d.EnsureWireBody()
	return d
}

// emptyDiff is the shared placeholder for the merged members of a
// flattened response (the head rec carries their bytes).
var emptyDiff = &page.Diff{}

func (e *lazyEngine) clock() vc.VC {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v.Clone()
}

// modeID is the engine's routing identity: a node can host LI and LU
// side by side, and diff requests carry this tag so each reaches the
// store that retains its diffs.
func (e *lazyEngine) modeID() Mode {
	if e.update {
		return LazyUpdate
	}
	return LazyInvalidate
}

// --- interval management ---

// closeIntervalLocked ends the current interval: each dirtied page's
// twin becomes a retained diff-store entry and the interval record with
// its write notices enters the log. By default the diff itself is not
// computed here — the slot keeps the twin as its base and the diff is
// materialized on the first serve (or at GC, or never: a covered slot
// whose diff nobody fetched is discarded twin and all, which is the
// lazy-creation win). With EagerDiffs the diff is computed immediately,
// the pre-lazy behavior kept for A/B measurement. Caller holds e.mu.
// With multiple application goroutines the node's interval contains
// every local goroutine's writes since the last synchronization point —
// the node is one processor to the protocol, exactly as a multi-threaded
// processor is to the paper's model.
func (e *lazyEngine) closeIntervalLocked() {
	n := e.n
	e.dirtyMu.Lock()
	if len(e.dirty) == 0 {
		e.dirtyMu.Unlock()
		return
	}
	cand := make([]mem.PageID, 0, len(e.dirty))
	for pg := range e.dirty {
		cand = append(cand, pg)
	}
	e.dirty = make(map[mem.PageID]struct{})
	e.dirtyMu.Unlock()
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })

	byPage := make(map[mem.PageID]*diffSlot, len(cand))
	pages := make([]mem.PageID, 0, len(cand))
	for _, pg := range cand {
		pmu := n.pageLock(pg)
		pmu.Lock()
		pc := e.pages[pg]
		if pc == nil || pc.twin == nil {
			pmu.Unlock()
			continue
		}
		var slot *diffSlot
		if e.eagerDiffs {
			d, err := page.MakeDiff(pc.twin, pc.data)
			if err != nil {
				pmu.Unlock()
				panic(fmt.Sprintf("dsm: node %d: diffing page %d: %v", n.id, pg, err))
			}
			e.releaseTwin(pc.twin)
			pc.twin = nil
			slot = &diffSlot{d: d}
			n.stats.diffsCreated.Add(1)
		} else {
			// The page table's twin reference transfers to the slot as the
			// diff base; the post-interval contents stay live in pc.data
			// until the next twin capture snapshots them (pending).
			slot = &diffSlot{base: pc.twin}
			pc.twin = nil
			pc.pending = slot
			n.stats.diffsDeferred.Add(1)
		}
		pmu.Unlock()
		byPage[pg] = slot
		pages = append(pages, pg)
	}
	if len(pages) == 0 {
		return
	}
	idx := e.v.Tick(int(n.id))
	id := core.IntervalID{Proc: n.id, Index: idx}
	for _, pg := range pages {
		// The local copy now reflects this interval: keep the applied
		// clock faithful so page-home responses advertise the right
		// coverage and GC validation sees own pages as current.
		pmu := n.pageLock(pg)
		pmu.Lock()
		if pc := e.pages[pg]; pc != nil && pc.applied[n.id] < idx {
			pc.applied[n.id] = idx
		}
		pmu.Unlock()
	}
	e.diffs[id] = byPage
	e.log.Append(&core.Interval{
		ID:    id,
		VC:    e.v.Clone(),
		Pages: pages,
		Mods:  make([]*page.RangeSet, len(pages)),
	})
	n.stats.intervalsCreated.Add(1)
}

// absorbIntervalsLocked merges received interval records into the log,
// skipping already-known ones, and returns the genuinely new records.
// Caller holds e.mu.
func (e *lazyEngine) absorbIntervalsLocked(recs []wire.IntervalRec) []wire.IntervalRec {
	// Per-processor index order is required by the log.
	sorted := make([]wire.IntervalRec, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Proc != sorted[j].Proc {
			return sorted[i].Proc < sorted[j].Proc
		}
		return sorted[i].Index < sorted[j].Index
	})
	var fresh []wire.IntervalRec
	for _, rec := range sorted {
		// The records came off the wire: validate before touching the log.
		// A processor id outside the cluster or an index that does not
		// extend our high-water mark contiguously is the sender's
		// corruption (the protocol always ships complete notice sets), so
		// record it and skip the record rather than panic — and crucially
		// before the log absorbs it, so a rejected record leaves no trace.
		if rec.Proc < 0 || int(rec.Proc) >= len(e.v) {
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval record for invalid processor %d", rec.Proc))
			continue
		}
		if len(rec.VC) != len(e.v) {
			// The record's clock is stored and later compared entrywise
			// (GC covers checks, diff ordering): a wrong-length clock
			// would panic there, so reject it at the wire boundary.
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval record p%d/%d carries a %d-entry clock (cluster has %d)",
					rec.Proc, rec.Index, len(rec.VC), len(e.v)))
			continue
		}
		if bad := invalidPageIn(e.n, rec.Pages); bad != nil {
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval record p%d/%d names invalid page %d", rec.Proc, rec.Index, *bad))
			continue
		}
		if e.v.Covers(int(rec.Proc), rec.Index) {
			continue // already known
		}
		if e.v[rec.Proc] != rec.Index-1 {
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval gap for p%d: have %d, got %d",
					rec.Proc, e.v[rec.Proc], rec.Index))
			continue
		}
		e.log.Append(&core.Interval{
			ID:    core.IntervalID{Proc: rec.Proc, Index: rec.Index},
			VC:    rec.VC.Clone(),
			Pages: rec.Pages,
			Mods:  make([]*page.RangeSet, len(rec.Pages)),
		})
		// Track per-processor high-water mark in our clock: Covers uses
		// e.v, so advance it per record to keep the dedupe correct for
		// consecutive indices.
		e.v[rec.Proc] = rec.Index
		fresh = append(fresh, rec)
		// A write notice is the classifier's view of remote writers under
		// the lazy protocols (no directory transaction ever reaches us).
		for _, pg := range rec.Pages {
			e.n.rt.noteRemoteWriter(pg, rec.Proc)
		}
	}
	return fresh
}

// invalidPageIn returns the first page id in pages that is not a valid
// index into the node's page tables, or nil when all are in range (the
// slices arrive in remote interval records, so they are never trusted
// as indices).
func invalidPageIn(n *Node, pages []mem.PageID) *mem.PageID {
	for i := range pages {
		if !n.validPage(pages[i]) {
			return &pages[i]
		}
	}
	return nil
}

// intervalsSinceLocked collects wire records for every known interval
// (r, k) with k > floor[r]. Caller holds e.mu.
func (e *lazyEngine) intervalsSinceLocked(floor vc.VC) []wire.IntervalRec {
	if len(floor) != len(e.v) {
		// A legitimate acquirer always stamps its full clock; a missing or
		// short one is a forged request. Treat the sender as knowing
		// nothing — over-granting is safe, indexing a short clock is not.
		floor = vc.New(len(e.v))
	}
	var recs []wire.IntervalRec
	e.log.NoticesBetween(floor, e.v, func(iv *core.Interval) {
		recs = append(recs, wire.IntervalRec{
			Proc:  iv.ID.Proc,
			Index: iv.ID.Index,
			VC:    iv.VC,
			Pages: iv.Pages,
		})
	})
	return recs
}

// invalidateForLocked applies LI semantics for freshly learned intervals:
// cached valid copies of noticed pages become invalid (data retained as
// the diff target), and every materialized copy's generation is bumped
// so an in-flight validation replans against the now-larger log. It
// returns the set of affected cached pages (used by LU to revalidate
// immediately). Caller holds e.mu.
func (e *lazyEngine) invalidateForLocked(fresh []wire.IntervalRec) []mem.PageID {
	var affected []mem.PageID
	seen := make(map[mem.PageID]bool)
	for _, rec := range fresh {
		for _, pg := range rec.Pages {
			if seen[pg] {
				continue
			}
			seen[pg] = true
			pmu := e.n.pageLock(pg)
			pmu.Lock()
			if pc := e.pages[pg]; pc != nil {
				pc.gen++
				if pc.valid {
					pc.valid = false
					affected = append(affected, pg)
				}
			}
			pmu.Unlock()
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return affected
}

// --- data movement ---

// validate brings page pg's local copy up to date: a cold copy is
// fetched from the page's home, then every outstanding diff is collected
// (from the local store or its creator) and applied in happened-before
// order (§4.3.3). Miss service serializes per page under the miss lock;
// concurrent faulting goroutines coalesce onto one transaction. Callers
// must hold no engine or stripe locks.
func (e *lazyEngine) validate(pg mem.PageID) error {
	n := e.n
	pmu := n.pageLock(pg)
	pmu.Lock()
	if pc := e.pages[pg]; pc != nil && pc.valid {
		pmu.Unlock()
		return nil
	}
	pmu.Unlock()

	mmu := n.missLock(pg)
	mmu.Lock()
	defer mmu.Unlock()

	pmu.Lock()
	if pc := e.pages[pg]; pc != nil && pc.valid {
		pmu.Unlock()
		return nil
	}
	pmu.Unlock()
	// One application access, one miss — the replan loop below may run
	// several plan/apply rounds for it.
	n.stats.accessMisses.Add(1)

	for {
		pmu.Lock()
		pc := e.pages[pg]
		if pc != nil && pc.valid {
			pmu.Unlock()
			return nil
		}
		cold := pc == nil
		pmu.Unlock()

		if cold {
			n.stats.coldMisses.Add(1)
			if home := n.homeOf(pg); home == n.id {
				pmu.Lock()
				if e.pages[pg] == nil {
					e.pages[pg] = &lazyPage{
						data:    make([]byte, n.sys.layout.PageSize()),
						applied: vc.New(n.sys.cfg.Procs),
					}
				}
				pmu.Unlock()
			} else {
				resp, err := n.rpc(home, &wire.Msg{
					Kind: wire.KPageReq, Seq: n.nextSeq(), A: int32(pg), B: int32(n.id),
				})
				if err != nil {
					return err
				}
				applied := resp.VC
				if applied == nil {
					applied = vc.New(n.sys.cfg.Procs)
				}
				pmu.Lock()
				if e.pages[pg] == nil {
					e.pages[pg] = &lazyPage{data: resp.Data, applied: applied.Clone()}
				}
				pmu.Unlock()
				n.stats.pagesFetched.Add(1)
			}
		}

		// Plan: what is outstanding between the copy's applied clock and
		// the node's current knowledge?
		e.mu.Lock()
		pmu.Lock()
		pc = e.pages[pg]
		appliedSnap := pc.applied.Clone()
		genSnap := pc.gen
		pmu.Unlock()
		vSnap := e.v.Clone()
		out := e.log.Outstanding(pg, appliedSnap, e.v, n.id)
		// Apply in a linear extension of happened-before: interval clock
		// sums strictly increase along hb1 chains, and concurrent
		// intervals touch disjoint words in properly-labeled programs.
		sort.Slice(out, func(i, j int) bool {
			si, sj := clockSum(e.log.Get(out[i]).VC), clockSum(e.log.Get(out[j]).VC)
			if si != sj {
				return si < sj
			}
			if out[i].Proc != out[j].Proc {
				return out[i].Proc < out[j].Proc
			}
			return out[i].Index < out[j].Index
		})
		missing := make(map[mem.ProcID][]wire.Want)
		for _, id := range out {
			if e.diffs[id][pg] != nil {
				continue
			}
			missing[id.Proc] = append(missing[id.Proc], wire.Want{Page: pg, Proc: id.Proc, Index: id.Index})
		}
		e.mu.Unlock()

		// Fetch missing diffs from their creators (no locks held).
		if len(missing) > 0 {
			creators := make([]mem.ProcID, 0, len(missing))
			for c := range missing {
				creators = append(creators, c)
			}
			sort.Slice(creators, func(i, j int) bool { return creators[i] < creators[j] })
			for _, c := range creators {
				resp, err := n.rpc(c, &wire.Msg{
					Kind: wire.KDiffReq, Seq: n.nextSeq(), A: int32(n.id), B: int32(e.modeID()), Wants: missing[c],
				})
				if err != nil {
					return err
				}
				e.mu.Lock()
				e.storeDiffRecsLocked(resp.Diffs, true)
				e.mu.Unlock()
			}
		}

		// Apply. If fresh notices for this page landed while we were
		// fetching (generation moved), the plan is stale: replan.
		// Outstanding excludes this node's own intervals, so every step
		// comes from a fetched or piggybacked slot — always materialized.
		e.mu.Lock()
		steps := make([]*page.Diff, len(out))
		for i, id := range out {
			if slot := e.diffs[id][pg]; slot != nil {
				steps[i] = slot.d
			}
			if steps[i] == nil {
				e.mu.Unlock()
				return fmt.Errorf("dsm: node %d: diff %v for page %d unavailable", n.id, id, pg)
			}
		}
		e.mu.Unlock()

		pmu.Lock()
		pc = e.pages[pg]
		if pc.gen != genSnap {
			pmu.Unlock()
			continue
		}
		// A deferred diff of the latest local interval still reads its
		// target contents out of pc.data; the remote diffs about to land
		// there would be misattributed to it. Snapshot it now.
		if pc.pending != nil && len(steps) > 0 {
			e.materializeSlot(pc, pc.pending, pg)
		}
		// A concurrent local critical section may hold a live twin for
		// this page (it kept writing through the invalidation, which is
		// impossible at one goroutine per node: acquireStart's
		// closeInterval would have consumed the twin first). The remote
		// diffs must land on the twin too, or the section's eventual
		// interval would re-register the remote words as its own — and a
		// concurrent re-write by their true owner (reacquiring its lock
		// through the cached local fast path, so it never learns of our
		// interval) could then be reverted by the mis-attributed copy.
		// The twin patch also keeps handlePageReq's committed view
		// consistent with the applied clock stamped below. Proper
		// programs guarantee the remote diffs and the section's own
		// uncommitted words are disjoint.
		var patched []byte
		if pc.twin != nil && len(steps) > 0 {
			patched = append([]byte(nil), pc.twin.Data()...)
		}
		for _, d := range steps {
			if err := d.Apply(pc.data); err != nil {
				pmu.Unlock()
				return err
			}
			if patched != nil {
				if err := d.Apply(patched); err != nil {
					pmu.Unlock()
					return err
				}
			}
			n.stats.diffsApplied.Add(1)
			n.rt.noteDiffApplied(pg)
		}
		if patched != nil {
			e.releaseTwin(pc.twin)
			pc.twin = e.newTwin(patched)
		}
		pc.valid = true
		pc.applied.Max(vSnap)
		pmu.Unlock()
		return nil
	}
}

func clockSum(v vc.VC) int64 {
	var s int64
	for _, x := range v {
		s += int64(x)
	}
	return s
}

// storeDiffRecsLocked enters received diff records into the retained
// store. Caller holds e.mu; fetched counts the records as wire fetches
// (false for LU piggybacks).
//
// Flattened response groups are detected here so their slots are marked
// unforwardable: a flattened serve is a run of records for one (page,
// creator) where the head carries the merged bytes and the members are
// empty. A legitimate unflattened response can also carry an empty diff
// (an interval whose writes restored the original bytes), so the
// heuristic can over-mark — that only costs a peer a direct fetch from
// the creator, never correctness.
//
// A record outside a detected group never replaces an existing slot
// (crucially not a local deferred one). A flattened group's records are
// different: the group is positionally entangled — the head carries
// every member's bytes — so if any of its slots already exists (the
// interval's plain diff landed via an LU piggyback between the
// requester's plan and this store), keeping the old slot would mix plain
// and flat records: a kept plain head drops the merged members' bytes, a
// kept plain member re-applies its stale bytes over the head's merge.
// Such slots are replaced wholesale, so the stored group is exactly the
// group served — sound whether the run is a true flattened serve or an
// over-marked plain one (plain records are individually correct).
// Records claiming this node's own intervals are exempt (the protocol
// never returns them; a forged group must not clobber deferred local
// slots). Remote slots are immutable after insertion and only ever read
// under e.mu, so the swap here is ordered with every reader.
func (e *lazyEngine) storeDiffRecsLocked(recs []wire.DiffRec, fetched bool) {
	flat := make([]bool, len(recs))
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].Page == recs[i].Page && recs[j].Proc == recs[i].Proc {
			j++
		}
		if j-i >= 2 {
			for k := i + 1; k < j; k++ {
				if recs[k].Diff.Empty() {
					for m := i; m < j; m++ {
						flat[m] = true
					}
					break
				}
			}
		}
		i = j
	}
	for i, rec := range recs {
		if !e.n.validPage(rec.Page) {
			// The page id indexes the stripe table when the slot is later
			// piggybacked; an out-of-range one is the sender's corruption.
			e.n.noteErr("diff store",
				fmt.Errorf("diff record for invalid page %d", rec.Page))
			continue
		}
		id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
		if e.diffs[id] == nil {
			e.diffs[id] = make(map[mem.PageID]*diffSlot)
		}
		existing, ok := e.diffs[id][rec.Page]
		switch {
		case !ok:
			e.diffs[id][rec.Page] = &diffSlot{d: rec.Diff, flat: flat[i]}
			if fetched {
				e.n.stats.diffsFetched.Add(1)
			}
		case flat[i] && rec.Proc != e.n.id && existing.d != nil:
			e.diffs[id][rec.Page] = &diffSlot{d: rec.Diff, flat: true}
		}
	}
}

// revalidate runs validate over a list of pages (LU's acquire/barrier-time
// update step and the GC epoch's bulk validation). With more than one
// page the outstanding diffs are prefetched first as one grouped burst,
// so the per-page requests to each creator leave in one batch frame
// instead of one frame per page.
func (e *lazyEngine) revalidate(pages []mem.PageID) error {
	if len(pages) > 1 {
		if err := e.prefetchDiffs(pages); err != nil {
			return err
		}
	}
	for _, pg := range pages {
		if err := e.validate(pg); err != nil {
			return err
		}
	}
	return nil
}

// prefetchDiffs batch-fetches the outstanding diffs for a set of pages
// about to be revalidated: one KDiffReq per (page, creator) — exactly
// the requests sequential validation would send, so message counts are
// unchanged — staged together through the outbox, so all requests to
// one creator coalesce into one frame and all creators answer
// concurrently. Fetched diffs enter the retained store; validate()
// then finds them locally and re-plans authoritatively (fresh notices
// landing meanwhile just make it fetch the remainder as usual). Cold
// pages are skipped: their plan depends on the applied clock the home's
// copy arrives with.
func (e *lazyEngine) prefetchDiffs(pages []mem.PageID) error {
	n := e.n
	var reqs []outMsg
	e.mu.Lock()
	for _, pg := range pages {
		pmu := n.pageLock(pg)
		pmu.Lock()
		pc := e.pages[pg]
		if pc == nil || pc.valid {
			pmu.Unlock()
			continue
		}
		appliedSnap := pc.applied.Clone()
		pmu.Unlock()
		out := e.log.Outstanding(pg, appliedSnap, e.v, n.id)
		missing := make(map[mem.ProcID][]wire.Want)
		for _, id := range out {
			if e.diffs[id][pg] != nil {
				continue
			}
			missing[id.Proc] = append(missing[id.Proc], wire.Want{Page: pg, Proc: id.Proc, Index: id.Index})
		}
		creators := make([]mem.ProcID, 0, len(missing))
		for c := range missing {
			creators = append(creators, c)
		}
		sort.Slice(creators, func(i, j int) bool { return creators[i] < creators[j] })
		for _, c := range creators {
			reqs = append(reqs, outMsg{dst: c, m: &wire.Msg{
				Kind: wire.KDiffReq, Seq: n.nextSeq(), A: int32(n.id), B: int32(e.modeID()), Wants: missing[c],
			}})
		}
	}
	e.mu.Unlock()
	if len(reqs) == 0 {
		return nil
	}
	resps, err := n.rpcAll(reqs)
	if err != nil {
		return err
	}
	e.mu.Lock()
	for _, resp := range resps {
		e.storeDiffRecsLocked(resp.Diffs, true)
	}
	e.mu.Unlock()
	return nil
}

// --- engine interface: accesses ---

func (e *lazyEngine) readPage(pg mem.PageID, off int, dst []byte) error {
	if err := e.validate(pg); err != nil {
		return err
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	copy(dst, e.pages[pg].data[off:off+len(dst)])
	pmu.Unlock()
	return nil
}

func (e *lazyEngine) writePage(pg mem.PageID, off int, src []byte) error {
	if err := e.validate(pg); err != nil {
		return err
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	pc := e.pages[pg]
	created := false
	if pc.twin == nil {
		pc.twin = e.newTwin(pc.data)
		if pc.pending != nil {
			// The fresh twin is a snapshot of the page exactly as the
			// pending interval left it: it becomes the deferred diff's
			// target (shared with the page table — twins are immutable),
			// deferring the diff past this new interval for free.
			pc.pending.target = pc.twin.Retain()
			pc.pending = nil
		}
		created = true
	}
	copy(pc.data[off:off+len(src)], src)
	pmu.Unlock()
	if created {
		e.dirtyMu.Lock()
		e.dirty[pg] = struct{}{}
		e.dirtyMu.Unlock()
	}
	return nil
}

// --- engine interface: locks ---

func (e *lazyEngine) acquireStart(req *wire.Msg) {
	e.mu.Lock()
	e.closeIntervalLocked()
	req.VC = e.v.Clone()
	e.mu.Unlock()
}

func (e *lazyEngine) grant(req, grant *wire.Msg) {
	e.mu.Lock()
	defer e.mu.Unlock()
	recs := e.intervalsSinceLocked(req.VC)
	grant.VC = e.v.Clone()
	grant.Intervals = recs
	if e.update {
		// Piggyback every retained diff for the noticed intervals — the
		// releaser supplies what it has (Figure 4's "l and x in a single
		// message"); the acquirer fetches any remainder from creators.
		// Deferred local diffs materialize here (the piggyback is their
		// first serve); flat slots are skipped — their contents are only
		// meaningful inside the response group they arrived in, so the
		// acquirer fetches those intervals from the creator instead.
		for _, rec := range recs {
			id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
			byPage := e.diffs[id]
			pages := make([]mem.PageID, 0, len(byPage))
			for pg := range byPage {
				pages = append(pages, pg)
			}
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			for _, pg := range pages {
				slot := byPage[pg]
				pmu := e.n.pageLock(pg)
				pmu.Lock()
				if slot.flat {
					pmu.Unlock()
					continue
				}
				if slot.d == nil {
					e.materializeSlot(e.pages[pg], slot, pg)
				}
				d := slot.d
				pmu.Unlock()
				grant.Diffs = append(grant.Diffs, wire.DiffRec{
					Page: pg, Proc: id.Proc, Index: id.Index, Diff: e.serveDiff(d),
				})
			}
		}
	}
}

func (e *lazyEngine) onGrant(grant *wire.Msg) error {
	e.mu.Lock()
	fresh := e.absorbIntervalsLocked(grant.Intervals)
	// Piggybacked diffs (LU grants) enter the retained-diff store; the
	// revalidation below then fetches only what is still missing.
	e.storeDiffRecsLocked(grant.Diffs, false)
	affected := e.invalidateForLocked(fresh)
	e.mu.Unlock()

	if e.update {
		return e.revalidate(affected)
	}
	return nil
}

func (e *lazyEngine) preRelease() error { return nil }

func (e *lazyEngine) release() {
	e.mu.Lock()
	e.closeIntervalLocked()
	e.mu.Unlock()
}

// --- engine interface: barriers ---

func (e *lazyEngine) preBarrier() error { return nil }

func (e *lazyEngine) barrierEntry() {
	e.mu.Lock()
	e.closeIntervalLocked()
	e.fresh = nil
	e.mu.Unlock()
}

func (e *lazyEngine) arrive(arrive *wire.Msg) {
	e.mu.Lock()
	arrive.VC = e.v.Clone()
	arrive.Intervals = e.intervalsSinceLocked(e.lastEpoch)
	e.mu.Unlock()
}

func (e *lazyEngine) masterAbsorb(m *wire.Msg) {
	e.mu.Lock()
	e.fresh = append(e.fresh, e.absorbIntervalsLocked(m.Intervals)...)
	e.mu.Unlock()
}

func (e *lazyEngine) exit(m, exit *wire.Msg) {
	e.mu.Lock()
	exit.VC = e.v.Clone()
	exit.Intervals = e.intervalsSinceLocked(m.VC)
	e.mu.Unlock()
}

func (e *lazyEngine) onExit(exit *wire.Msg) error {
	e.mu.Lock()
	e.fresh = e.absorbIntervalsLocked(exit.Intervals)
	e.mu.Unlock()
	return nil
}

func (e *lazyEngine) postBarrier(b mem.BarrierID) error {
	n := e.n
	e.mu.Lock()
	affected := e.invalidateForLocked(e.fresh)
	e.fresh = nil
	e.lastEpoch = e.v.Clone()
	e.episodes++
	gcDue := n.sys.cfg.GCEveryBarriers > 0 && e.episodes%n.sys.cfg.GCEveryBarriers == 0
	e.mu.Unlock()

	if e.update {
		if err := e.revalidate(affected); err != nil {
			return err
		}
	}
	if gcDue {
		return e.runGC(b)
	}
	return nil
}

// runGC is the barrier-time garbage collection epoch: every node brings
// each page it caches fully up to the epoch (and, as a page's home,
// materializes pages with modification history so later cold misses can
// be served without pre-epoch diffs), confirms readiness through the
// master, then discards the diffs of every interval the epoch clock
// covers. Interval records are retained (they are small); diff payloads
// are the memory that matters.
//
// runGC runs on the barrier leader while the node's other application
// goroutines are parked in the local barrier rendezvous, so the only
// concurrent page activity is handler-side serving.
//
// The barrier rendezvous that precedes runGC is what pushes every write
// notice to every node — the master absorbs all arrivals before building
// exits, so each home's log lists every pre-epoch modifier of its pages.
// Validation must therefore leave every copy this node serves — its own
// caches and its homed pages — with an applied clock that dominates the
// epoch: any copy served with a smaller clock would send a later
// requester to a creator for diffs the epoch discarded (the creator
// panics on such requests, by design). checkGCInvariant enforces
// this before any diff is dropped, turning a would-be remote panic into
// a local descriptive error.
func (e *lazyEngine) runGC(b mem.BarrierID) error {
	n := e.n
	e.mu.Lock()
	epoch := e.lastEpoch.Clone()
	var toValidate []mem.PageID
	for pg := range e.pages {
		pgid := mem.PageID(pg)
		if n.rt.modeOf(pgid) != e.modeID() {
			// Routed to another protocol: its history here is frozen (the
			// re-route brought the page current at its home and dropped
			// every copy), so GC neither validates nor materializes it.
			continue
		}
		pmu := n.pageLock(pgid)
		pmu.Lock()
		pc := e.pages[pg]
		switch {
		case pc != nil && !pc.valid:
			toValidate = append(toValidate, pgid)
		case pc == nil && n.homeOf(pgid) == n.id && len(e.log.ModifiersOf(pgid)) > 0:
			// A home that never touched its page materializes it now:
			// after the discard no one could reconstruct it from diffs.
			toValidate = append(toValidate, pgid)
		case pc != nil && pc.valid && !pc.applied.Dominates(epoch):
			// Valid but stamped before the epoch: force a refresh so the
			// advertised clock covers the epoch. Without the
			// invalidation validate would return immediately and leave
			// the stale stamp in place.
			pc.valid = false
			pc.gen++
			toValidate = append(toValidate, pgid)
		}
		pmu.Unlock()
	}
	e.mu.Unlock()

	if err := e.revalidate(toValidate); err != nil {
		return err
	}
	if err := e.checkGCInvariant(epoch); err != nil {
		return err
	}

	// Readiness round through the master, so no node truncates while
	// another still needs pre-epoch diffs.
	const master = mem.ProcID(0)
	if n.id == master {
		readies := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
		for len(readies) < n.sys.cfg.Procs-1 {
			m, err := n.collect(n.gcCh, "master: GC round")
			if err != nil {
				return err
			}
			if mem.BarrierID(m.A) != b {
				return fmt.Errorf("dsm: master: GC ready for barrier %d during %d", m.A, b)
			}
			readies = append(readies, m)
		}
		for _, m := range readies {
			done := &wire.Msg{Kind: wire.KGCDone, Seq: m.Seq, A: int32(b)}
			if err := n.send(mem.ProcID(m.B), done); err != nil {
				return err
			}
		}
	} else {
		ready := &wire.Msg{Kind: wire.KGCReady, Seq: n.nextSeq(), A: int32(b), B: int32(n.id)}
		if _, err := n.rpc(master, ready); err != nil {
			return err
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	for id := range e.diffs {
		if !epoch.Covers(int(id.Proc), id.Index) {
			continue
		}
		byPage := e.diffs[id]
		n.stats.diffsDiscarded.Add(int64(len(byPage)))
		for pg, slot := range byPage {
			pmu := n.pageLock(pg)
			pmu.Lock()
			if slot.d == nil {
				// A covered slot whose diff was never fetched: drop the
				// twins without ever computing it — the deferred work the
				// lazy pipeline saves outright.
				e.releaseTwin(slot.base)
				slot.base = nil
				if slot.target != nil {
					e.releaseTwin(slot.target)
					slot.target = nil
				} else if pc := e.pages[pg]; pc != nil && pc.pending == slot {
					pc.pending = nil
				}
			}
			pmu.Unlock()
		}
		delete(e.diffs, id)
	}
	// Flattened serves merge only pre-epoch intervals their requesters
	// still needed; the epoch retires them with the diffs they merged.
	e.flat = make(map[flatKey]*page.Diff)
	n.stats.gcRuns.Add(1)
	return nil
}

// checkGCInvariant verifies, before this node signals GC
// readiness, that every copy it can later be asked to serve covers the
// epoch: its cached copies are valid with dominating clocks, and every
// page it homes with modification history is materialized. A violation
// means a later cold miss would chase discarded diffs.
func (e *lazyEngine) checkGCInvariant(epoch vc.VC) error {
	n := e.n
	e.mu.Lock()
	defer e.mu.Unlock()
	for pg := range e.pages {
		pgid := mem.PageID(pg)
		if n.rt.modeOf(pgid) != e.modeID() {
			continue
		}
		pmu := n.pageLock(pgid)
		pmu.Lock()
		pc := e.pages[pg]
		if pc == nil {
			if n.homeOf(pgid) == n.id && len(e.log.ModifiersOf(pgid)) > 0 {
				pmu.Unlock()
				return fmt.Errorf("dsm: node %d: GC invariant: homed page %d has modification history but no materialized copy", n.id, pgid)
			}
			pmu.Unlock()
			continue
		}
		if !pc.valid || !pc.applied.Dominates(epoch) {
			err := fmt.Errorf("dsm: node %d: GC invariant: page %d copy not validated through the epoch (valid=%t applied=%v epoch=%v)",
				n.id, pgid, pc.valid, pc.applied, epoch)
			pmu.Unlock()
			return err
		}
		pmu.Unlock()
	}
	return nil
}

// --- engine interface: page migration ---

func (e *lazyEngine) dropPage(pg mem.PageID) {
	// The reclassification runs after barrierEntry closed the interval,
	// so no live twin exists; any retained diffs stay for GC to discard.
	// A deferred diff still reading its target out of this copy's data
	// must be materialized before the data goes away.
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	if pc := e.pages[pg]; pc != nil && pc.pending != nil {
		e.materializeSlot(pc, pc.pending, pg)
	}
	e.pages[pg] = nil
	pmu.Unlock()
	e.dirtyMu.Lock()
	delete(e.dirty, pg)
	e.dirtyMu.Unlock()
}

func (e *lazyEngine) adoptPage(pg mem.PageID, data []byte) {
	if data == nil {
		// Non-home: start cold and fault the page from its home on first
		// use, like any never-touched page.
		return
	}
	// The post-barrier clock covers every pre-reroute interval, so a
	// copy stamped with it has nothing outstanding.
	e.mu.Lock()
	applied := e.v.Clone()
	e.mu.Unlock()
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	if old := e.pages[pg]; old != nil && old.pending != nil {
		e.materializeSlot(old, old.pending, pg)
	}
	e.pages[pg] = &lazyPage{
		data:    append([]byte(nil), data...),
		valid:   true,
		applied: applied,
	}
	pmu.Unlock()
}

// --- engine interface: handler-side requests ---

func (e *lazyEngine) handle(m *wire.Msg, src mem.ProcID) bool {
	switch m.Kind {
	case wire.KDiffReq:
		e.handleDiffReq(m, src)
	case wire.KPageReq:
		e.handlePageReq(m)
	default:
		return false
	}
	return true
}

func (e *lazyEngine) handleDiffReq(m *wire.Msg, src mem.ProcID) {
	n := e.n
	e.mu.Lock()
	// Resolve every want before answering any: a request for a diff we
	// never made (or already garbage collected out from under a peer
	// that should have known), or for one we only hold as a flattened
	// fragment, is the requester's bug or malice: record it and drop the
	// whole request — a partial answer would install a torn page.
	// Deferred local slots materialize here, on first serve.
	diffs := make([]*page.Diff, len(m.Wants))
	for i, w := range m.Wants {
		id := core.IntervalID{Proc: w.Proc, Index: w.Index}
		if !n.validPage(w.Page) {
			e.mu.Unlock()
			n.noteErr("diff request",
				fmt.Errorf("asked for diff %v on invalid page %d", id, w.Page))
			return
		}
		slot := e.diffs[id][w.Page]
		if slot == nil {
			e.mu.Unlock()
			n.noteErr("diff request",
				fmt.Errorf("asked for diff %v page %d this node does not hold", id, w.Page))
			return
		}
		pmu := n.pageLock(w.Page)
		pmu.Lock()
		if slot.flat {
			pmu.Unlock()
			e.mu.Unlock()
			n.noteErr("diff request",
				fmt.Errorf("asked for diff %v page %d held only as a flattened fragment", id, w.Page))
			return
		}
		if slot.d == nil {
			e.materializeSlot(e.pages[w.Page], slot, w.Page)
		}
		diffs[i] = slot.d
		pmu.Unlock()
	}

	// Serve, flattening where sound: a run of wants for several of this
	// node's own intervals on one page merges into a single diff applied
	// at the first interval's plan position, when FlattenSafe proves no
	// interval the requester might order between the members writes the
	// same page. The head record carries the merged bytes; the merged
	// members ride along as empty records so the requester's plan stays
	// complete (and marks them unforwardable, see storeDiffRecsLocked).
	resp := &wire.Msg{Kind: wire.KDiffResp, Seq: m.Seq}
	for i := 0; i < len(m.Wants); {
		w := m.Wants[i]
		j := i + 1
		for j < len(m.Wants) && m.Wants[j].Page == w.Page && m.Wants[j].Proc == w.Proc &&
			m.Wants[j].Index > m.Wants[j-1].Index {
			j++
		}
		group := m.Wants[i:j]
		if len(group) >= 2 && w.Proc == n.id {
			if flat := e.flattenGroupLocked(group, diffs[i:j]); flat != nil {
				resp.Diffs = append(resp.Diffs, wire.DiffRec{
					Page: w.Page, Proc: w.Proc, Index: w.Index, Diff: e.serveDiff(flat),
				})
				for _, g := range group[1:] {
					resp.Diffs = append(resp.Diffs, wire.DiffRec{
						Page: g.Page, Proc: g.Proc, Index: g.Index, Diff: emptyDiff,
					})
				}
				n.stats.diffsFlattened.Add(int64(len(group) - 1))
				i = j
				continue
			}
		}
		for k := i; k < j; k++ {
			resp.Diffs = append(resp.Diffs, wire.DiffRec{
				Page: m.Wants[k].Page, Proc: m.Wants[k].Proc, Index: m.Wants[k].Index,
				Diff: e.serveDiff(diffs[k]),
			})
		}
		i = j
	}
	e.mu.Unlock()
	// Staged: the shard worker's drain point flushes it, so a burst of
	// diff requests from one prefetching peer answers in few frames.
	n.stage(src, resp)
}

// flattenGroupLocked merges the diffs of a same-page ascending run of
// this node's own intervals into one, or returns nil when the merge is
// unsound. Results are cached by index range so repeat requesters (and
// their encoded wire bodies) are served from one merge. Caller holds
// e.mu.
func (e *lazyEngine) flattenGroupLocked(group []wire.Want, diffs []*page.Diff) *page.Diff {
	first, last := group[0].Index, group[len(group)-1].Index
	member := make(map[int32]bool, len(group))
	for _, g := range group {
		member[g.Index] = true
	}
	// Soundness is per-request, so FlattenSafe runs before the cache is
	// consulted: the key is only the index range, and a want-group with a
	// gap (the requester already holds a middle interval's diff, say from
	// an LU piggyback) must not be handed the full-membership merge a
	// previous requester populated — applying its separately-held middle
	// diff after that head would overwrite the last interval's bytes. A
	// group that passes necessarily contains every own interval on the
	// page in (first, last], so the range does determine the members and
	// the cached entry fits. FlattenSafe is cheap next to the merge.
	if !e.log.FlattenSafe(group[0].Page, e.n.id, first, last, func(k int32) bool { return member[k] }) {
		return nil
	}
	key := flatKey{pg: group[0].Page, first: first, last: last}
	if flat, ok := e.flat[key]; ok {
		return flat
	}
	flat, err := page.FlattenDiffs(diffs, e.n.sys.layout.PageSize())
	if err != nil {
		// Own diffs are well-formed, so this cannot happen; serve the
		// group unflattened rather than fail the request.
		e.n.noteErr("diff flatten", err)
		return nil
	}
	if len(e.flat) >= flatCacheMax {
		// The wholesale drop in runGC never runs with barrier GC disabled
		// (GCEveryBarriers=0), so the cache bounds itself: evict an
		// arbitrary entry (map order) — a re-merge costs one FlattenDiffs.
		for k := range e.flat {
			delete(e.flat, k)
			break
		}
	}
	e.flat[key] = flat
	return flat
}

func (e *lazyEngine) handlePageReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	requester := mem.ProcID(m.B)
	if !n.validPage(pg) || !n.validProc(requester) {
		n.noteErr("page request",
			fmt.Errorf("bad ids in request: page %d requester %d", pg, requester))
		return
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	resp := &wire.Msg{Kind: wire.KPageResp, Seq: m.Seq, A: m.A}
	pc := e.pages[pg]
	switch {
	case pc == nil:
		// Never materialized here: the committed state is the zero page.
		resp.Data = make([]byte, n.sys.layout.PageSize())
		resp.VC = vc.New(n.sys.cfg.Procs)
	case pc.twin != nil:
		// Uncommitted writes in the current interval must not leak: the
		// twin holds the committed contents.
		resp.Data = append([]byte(nil), pc.twin.Data()...)
		resp.VC = pc.applied.Clone()
	default:
		resp.Data = append([]byte(nil), pc.data...)
		resp.VC = pc.applied.Clone()
	}
	pmu.Unlock()
	n.stage(requester, resp)
}
