package dsm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
	"repro/internal/wire"
)

// lazyEngine implements lazy release consistency (§4): intervals, twins,
// diffs and vector clocks. Write notices ride lock grants and barrier
// messages; diffs are fetched from their creators at access misses (LI)
// or acquire time (LU).
//
// Concurrency: page copies and their twins are per-page state under the
// node's striped lock table, so independent pages are read, written and
// validated in parallel; the interval machinery — vector clock, interval
// log, retained-diff store — stays under one engine mutex (mu), taken
// only at synchronization points and when a validation plans or applies
// outstanding diffs. Which pages the current interval dirtied is
// tracked in a dirty set (twin creation registers the page) so closing
// an interval does not need to sweep every page. A per-page generation
// counter closes the plan/apply race: if fresh write notices for the
// page land while a validation is fetching diffs, the apply step
// observes the bumped generation and replans.
//
// Lock order: node.lockMu < e.mu < node.pageMu stripe < e.dirtyMu.
type lazyEngine struct {
	n      *Node
	update bool // LU: bring cached copies up to date at acquire time

	// mu guards the interval machinery below.
	mu        sync.Mutex
	v         vc.VC
	log       *core.Log
	diffs     map[core.IntervalID]map[mem.PageID]*page.Diff
	lastEpoch vc.VC
	episodes  int
	// fresh accumulates the interval records learned during the current
	// barrier rendezvous, for postBarrier's invalidation step.
	fresh []wire.IntervalRec

	// dirtyMu guards the current interval's dirty-page set (pages with a
	// live twin). Leaf lock: taken with a page stripe or e.mu held,
	// never the other way around.
	dirtyMu sync.Mutex
	dirty   map[mem.PageID]struct{}

	// pages[i] is guarded by n.pageLock(i).
	pages []*lazyPage
}

// lazyPage is a node's local copy of one page, guarded by its stripe.
type lazyPage struct {
	data    []byte
	valid   bool
	applied vc.VC      // modifications reflected in data
	twin    *page.Twin // present while the current interval has writes
	gen     uint64     // bumped whenever fresh notices target this page
}

func newLazyEngine(n *Node, update bool) *lazyEngine {
	return &lazyEngine{
		n:         n,
		update:    update,
		v:         vc.New(n.sys.cfg.Procs),
		log:       core.NewLog(n.sys.cfg.Procs),
		diffs:     make(map[core.IntervalID]map[mem.PageID]*page.Diff),
		lastEpoch: vc.New(n.sys.cfg.Procs),
		dirty:     make(map[mem.PageID]struct{}),
		pages:     make([]*lazyPage, n.sys.layout.NumPages()),
	}
}

func (e *lazyEngine) clock() vc.VC {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.v.Clone()
}

// modeID is the engine's routing identity: a node can host LI and LU
// side by side, and diff requests carry this tag so each reaches the
// store that retains its diffs.
func (e *lazyEngine) modeID() Mode {
	if e.update {
		return LazyUpdate
	}
	return LazyInvalidate
}

// --- interval management ---

// closeIntervalLocked ends the current interval: diffs are created from
// the twins of every dirtied page (eager diffing) and retained in the
// diff store; the interval record with its write notices enters the
// log. Caller holds e.mu. With multiple application goroutines the
// node's interval contains every local goroutine's writes since the
// last synchronization point — the node is one processor to the
// protocol, exactly as a multi-threaded processor is to the paper's
// model.
func (e *lazyEngine) closeIntervalLocked() {
	n := e.n
	e.dirtyMu.Lock()
	if len(e.dirty) == 0 {
		e.dirtyMu.Unlock()
		return
	}
	cand := make([]mem.PageID, 0, len(e.dirty))
	for pg := range e.dirty {
		cand = append(cand, pg)
	}
	e.dirty = make(map[mem.PageID]struct{})
	e.dirtyMu.Unlock()
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })

	byPage := make(map[mem.PageID]*page.Diff, len(cand))
	pages := make([]mem.PageID, 0, len(cand))
	for _, pg := range cand {
		pmu := n.pageLock(pg)
		pmu.Lock()
		pc := e.pages[pg]
		if pc == nil || pc.twin == nil {
			pmu.Unlock()
			continue
		}
		d, err := page.MakeDiff(pc.twin, pc.data)
		pc.twin = nil
		pmu.Unlock()
		if err != nil {
			panic(fmt.Sprintf("dsm: node %d: diffing page %d: %v", n.id, pg, err))
		}
		byPage[pg] = d
		pages = append(pages, pg)
	}
	if len(pages) == 0 {
		return
	}
	idx := e.v.Tick(int(n.id))
	id := core.IntervalID{Proc: n.id, Index: idx}
	for _, pg := range pages {
		// The local copy now reflects this interval: keep the applied
		// clock faithful so page-home responses advertise the right
		// coverage and GC validation sees own pages as current.
		pmu := n.pageLock(pg)
		pmu.Lock()
		if pc := e.pages[pg]; pc != nil && pc.applied[n.id] < idx {
			pc.applied[n.id] = idx
		}
		pmu.Unlock()
	}
	e.diffs[id] = byPage
	e.log.Append(&core.Interval{
		ID:    id,
		VC:    e.v.Clone(),
		Pages: pages,
		Mods:  make([]*page.RangeSet, len(pages)),
	})
	n.stats.intervalsCreated.Add(1)
}

// absorbIntervalsLocked merges received interval records into the log,
// skipping already-known ones, and returns the genuinely new records.
// Caller holds e.mu.
func (e *lazyEngine) absorbIntervalsLocked(recs []wire.IntervalRec) []wire.IntervalRec {
	// Per-processor index order is required by the log.
	sorted := make([]wire.IntervalRec, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Proc != sorted[j].Proc {
			return sorted[i].Proc < sorted[j].Proc
		}
		return sorted[i].Index < sorted[j].Index
	})
	var fresh []wire.IntervalRec
	for _, rec := range sorted {
		// The records came off the wire: validate before touching the log.
		// A processor id outside the cluster or an index that does not
		// extend our high-water mark contiguously is the sender's
		// corruption (the protocol always ships complete notice sets), so
		// record it and skip the record rather than panic — and crucially
		// before the log absorbs it, so a rejected record leaves no trace.
		if rec.Proc < 0 || int(rec.Proc) >= len(e.v) {
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval record for invalid processor %d", rec.Proc))
			continue
		}
		if len(rec.VC) != len(e.v) {
			// The record's clock is stored and later compared entrywise
			// (GC covers checks, diff ordering): a wrong-length clock
			// would panic there, so reject it at the wire boundary.
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval record p%d/%d carries a %d-entry clock (cluster has %d)",
					rec.Proc, rec.Index, len(rec.VC), len(e.v)))
			continue
		}
		if bad := invalidPageIn(e.n, rec.Pages); bad != nil {
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval record p%d/%d names invalid page %d", rec.Proc, rec.Index, *bad))
			continue
		}
		if e.v.Covers(int(rec.Proc), rec.Index) {
			continue // already known
		}
		if e.v[rec.Proc] != rec.Index-1 {
			e.n.noteErr("interval absorb",
				fmt.Errorf("interval gap for p%d: have %d, got %d",
					rec.Proc, e.v[rec.Proc], rec.Index))
			continue
		}
		e.log.Append(&core.Interval{
			ID:    core.IntervalID{Proc: rec.Proc, Index: rec.Index},
			VC:    rec.VC.Clone(),
			Pages: rec.Pages,
			Mods:  make([]*page.RangeSet, len(rec.Pages)),
		})
		// Track per-processor high-water mark in our clock: Covers uses
		// e.v, so advance it per record to keep the dedupe correct for
		// consecutive indices.
		e.v[rec.Proc] = rec.Index
		fresh = append(fresh, rec)
		// A write notice is the classifier's view of remote writers under
		// the lazy protocols (no directory transaction ever reaches us).
		for _, pg := range rec.Pages {
			e.n.rt.noteRemoteWriter(pg, rec.Proc)
		}
	}
	return fresh
}

// invalidPageIn returns the first page id in pages that is not a valid
// index into the node's page tables, or nil when all are in range (the
// slices arrive in remote interval records, so they are never trusted
// as indices).
func invalidPageIn(n *Node, pages []mem.PageID) *mem.PageID {
	for i := range pages {
		if !n.validPage(pages[i]) {
			return &pages[i]
		}
	}
	return nil
}

// intervalsSinceLocked collects wire records for every known interval
// (r, k) with k > floor[r]. Caller holds e.mu.
func (e *lazyEngine) intervalsSinceLocked(floor vc.VC) []wire.IntervalRec {
	if len(floor) != len(e.v) {
		// A legitimate acquirer always stamps its full clock; a missing or
		// short one is a forged request. Treat the sender as knowing
		// nothing — over-granting is safe, indexing a short clock is not.
		floor = vc.New(len(e.v))
	}
	var recs []wire.IntervalRec
	e.log.NoticesBetween(floor, e.v, func(iv *core.Interval) {
		recs = append(recs, wire.IntervalRec{
			Proc:  iv.ID.Proc,
			Index: iv.ID.Index,
			VC:    iv.VC,
			Pages: iv.Pages,
		})
	})
	return recs
}

// invalidateForLocked applies LI semantics for freshly learned intervals:
// cached valid copies of noticed pages become invalid (data retained as
// the diff target), and every materialized copy's generation is bumped
// so an in-flight validation replans against the now-larger log. It
// returns the set of affected cached pages (used by LU to revalidate
// immediately). Caller holds e.mu.
func (e *lazyEngine) invalidateForLocked(fresh []wire.IntervalRec) []mem.PageID {
	var affected []mem.PageID
	seen := make(map[mem.PageID]bool)
	for _, rec := range fresh {
		for _, pg := range rec.Pages {
			if seen[pg] {
				continue
			}
			seen[pg] = true
			pmu := e.n.pageLock(pg)
			pmu.Lock()
			if pc := e.pages[pg]; pc != nil {
				pc.gen++
				if pc.valid {
					pc.valid = false
					affected = append(affected, pg)
				}
			}
			pmu.Unlock()
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })
	return affected
}

// --- data movement ---

// validate brings page pg's local copy up to date: a cold copy is
// fetched from the page's home, then every outstanding diff is collected
// (from the local store or its creator) and applied in happened-before
// order (§4.3.3). Miss service serializes per page under the miss lock;
// concurrent faulting goroutines coalesce onto one transaction. Callers
// must hold no engine or stripe locks.
func (e *lazyEngine) validate(pg mem.PageID) error {
	n := e.n
	pmu := n.pageLock(pg)
	pmu.Lock()
	if pc := e.pages[pg]; pc != nil && pc.valid {
		pmu.Unlock()
		return nil
	}
	pmu.Unlock()

	mmu := n.missLock(pg)
	mmu.Lock()
	defer mmu.Unlock()

	pmu.Lock()
	if pc := e.pages[pg]; pc != nil && pc.valid {
		pmu.Unlock()
		return nil
	}
	pmu.Unlock()
	// One application access, one miss — the replan loop below may run
	// several plan/apply rounds for it.
	n.stats.accessMisses.Add(1)

	for {
		pmu.Lock()
		pc := e.pages[pg]
		if pc != nil && pc.valid {
			pmu.Unlock()
			return nil
		}
		cold := pc == nil
		pmu.Unlock()

		if cold {
			n.stats.coldMisses.Add(1)
			if home := n.homeOf(pg); home == n.id {
				pmu.Lock()
				if e.pages[pg] == nil {
					e.pages[pg] = &lazyPage{
						data:    make([]byte, n.sys.layout.PageSize()),
						applied: vc.New(n.sys.cfg.Procs),
					}
				}
				pmu.Unlock()
			} else {
				resp, err := n.rpc(home, &wire.Msg{
					Kind: wire.KPageReq, Seq: n.nextSeq(), A: int32(pg), B: int32(n.id),
				})
				if err != nil {
					return err
				}
				applied := resp.VC
				if applied == nil {
					applied = vc.New(n.sys.cfg.Procs)
				}
				pmu.Lock()
				if e.pages[pg] == nil {
					e.pages[pg] = &lazyPage{data: resp.Data, applied: applied.Clone()}
				}
				pmu.Unlock()
				n.stats.pagesFetched.Add(1)
			}
		}

		// Plan: what is outstanding between the copy's applied clock and
		// the node's current knowledge?
		e.mu.Lock()
		pmu.Lock()
		pc = e.pages[pg]
		appliedSnap := pc.applied.Clone()
		genSnap := pc.gen
		pmu.Unlock()
		vSnap := e.v.Clone()
		out := e.log.Outstanding(pg, appliedSnap, e.v, n.id)
		// Apply in a linear extension of happened-before: interval clock
		// sums strictly increase along hb1 chains, and concurrent
		// intervals touch disjoint words in properly-labeled programs.
		sort.Slice(out, func(i, j int) bool {
			si, sj := clockSum(e.log.Get(out[i]).VC), clockSum(e.log.Get(out[j]).VC)
			if si != sj {
				return si < sj
			}
			if out[i].Proc != out[j].Proc {
				return out[i].Proc < out[j].Proc
			}
			return out[i].Index < out[j].Index
		})
		missing := make(map[mem.ProcID][]wire.Want)
		for _, id := range out {
			if _, ok := e.diffs[id][pg]; ok {
				continue
			}
			missing[id.Proc] = append(missing[id.Proc], wire.Want{Page: pg, Proc: id.Proc, Index: id.Index})
		}
		e.mu.Unlock()

		// Fetch missing diffs from their creators (no locks held).
		if len(missing) > 0 {
			creators := make([]mem.ProcID, 0, len(missing))
			for c := range missing {
				creators = append(creators, c)
			}
			sort.Slice(creators, func(i, j int) bool { return creators[i] < creators[j] })
			for _, c := range creators {
				resp, err := n.rpc(c, &wire.Msg{
					Kind: wire.KDiffReq, Seq: n.nextSeq(), A: int32(n.id), B: int32(e.modeID()), Wants: missing[c],
				})
				if err != nil {
					return err
				}
				e.mu.Lock()
				for _, rec := range resp.Diffs {
					id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
					if e.diffs[id] == nil {
						e.diffs[id] = make(map[mem.PageID]*page.Diff)
					}
					e.diffs[id][rec.Page] = rec.Diff
					n.stats.diffsFetched.Add(1)
				}
				e.mu.Unlock()
			}
		}

		// Apply. If fresh notices for this page landed while we were
		// fetching (generation moved), the plan is stale: replan.
		e.mu.Lock()
		steps := make([]*page.Diff, len(out))
		for i, id := range out {
			steps[i] = e.diffs[id][pg]
			if steps[i] == nil {
				e.mu.Unlock()
				return fmt.Errorf("dsm: node %d: diff %v for page %d unavailable", n.id, id, pg)
			}
		}
		e.mu.Unlock()

		pmu.Lock()
		pc = e.pages[pg]
		if pc.gen != genSnap {
			pmu.Unlock()
			continue
		}
		// A concurrent local critical section may hold a live twin for
		// this page (it kept writing through the invalidation, which is
		// impossible at one goroutine per node: acquireStart's
		// closeInterval would have consumed the twin first). The remote
		// diffs must land on the twin too, or the section's eventual
		// interval would re-register the remote words as its own — and a
		// concurrent re-write by their true owner (reacquiring its lock
		// through the cached local fast path, so it never learns of our
		// interval) could then be reverted by the mis-attributed copy.
		// The twin patch also keeps handlePageReq's committed view
		// consistent with the applied clock stamped below. Proper
		// programs guarantee the remote diffs and the section's own
		// uncommitted words are disjoint.
		var patched []byte
		if pc.twin != nil && len(steps) > 0 {
			patched = append([]byte(nil), pc.twin.Data()...)
		}
		for _, d := range steps {
			if err := d.Apply(pc.data); err != nil {
				pmu.Unlock()
				return err
			}
			if patched != nil {
				if err := d.Apply(patched); err != nil {
					pmu.Unlock()
					return err
				}
			}
			n.stats.diffsApplied.Add(1)
			n.rt.noteDiffApplied(pg)
		}
		if patched != nil {
			pc.twin = page.NewTwin(patched)
		}
		pc.valid = true
		pc.applied.Max(vSnap)
		pmu.Unlock()
		return nil
	}
}

func clockSum(v vc.VC) int64 {
	var s int64
	for _, x := range v {
		s += int64(x)
	}
	return s
}

// revalidate runs validate over a list of pages (LU's acquire/barrier-time
// update step and the GC epoch's bulk validation). With more than one
// page the outstanding diffs are prefetched first as one grouped burst,
// so the per-page requests to each creator leave in one batch frame
// instead of one frame per page.
func (e *lazyEngine) revalidate(pages []mem.PageID) error {
	if len(pages) > 1 {
		if err := e.prefetchDiffs(pages); err != nil {
			return err
		}
	}
	for _, pg := range pages {
		if err := e.validate(pg); err != nil {
			return err
		}
	}
	return nil
}

// prefetchDiffs batch-fetches the outstanding diffs for a set of pages
// about to be revalidated: one KDiffReq per (page, creator) — exactly
// the requests sequential validation would send, so message counts are
// unchanged — staged together through the outbox, so all requests to
// one creator coalesce into one frame and all creators answer
// concurrently. Fetched diffs enter the retained store; validate()
// then finds them locally and re-plans authoritatively (fresh notices
// landing meanwhile just make it fetch the remainder as usual). Cold
// pages are skipped: their plan depends on the applied clock the home's
// copy arrives with.
func (e *lazyEngine) prefetchDiffs(pages []mem.PageID) error {
	n := e.n
	var reqs []outMsg
	e.mu.Lock()
	for _, pg := range pages {
		pmu := n.pageLock(pg)
		pmu.Lock()
		pc := e.pages[pg]
		if pc == nil || pc.valid {
			pmu.Unlock()
			continue
		}
		appliedSnap := pc.applied.Clone()
		pmu.Unlock()
		out := e.log.Outstanding(pg, appliedSnap, e.v, n.id)
		missing := make(map[mem.ProcID][]wire.Want)
		for _, id := range out {
			if _, ok := e.diffs[id][pg]; ok {
				continue
			}
			missing[id.Proc] = append(missing[id.Proc], wire.Want{Page: pg, Proc: id.Proc, Index: id.Index})
		}
		creators := make([]mem.ProcID, 0, len(missing))
		for c := range missing {
			creators = append(creators, c)
		}
		sort.Slice(creators, func(i, j int) bool { return creators[i] < creators[j] })
		for _, c := range creators {
			reqs = append(reqs, outMsg{dst: c, m: &wire.Msg{
				Kind: wire.KDiffReq, Seq: n.nextSeq(), A: int32(n.id), B: int32(e.modeID()), Wants: missing[c],
			}})
		}
	}
	e.mu.Unlock()
	if len(reqs) == 0 {
		return nil
	}
	resps, err := n.rpcAll(reqs)
	if err != nil {
		return err
	}
	e.mu.Lock()
	for _, resp := range resps {
		for _, rec := range resp.Diffs {
			id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
			if e.diffs[id] == nil {
				e.diffs[id] = make(map[mem.PageID]*page.Diff)
			}
			if _, ok := e.diffs[id][rec.Page]; !ok {
				e.diffs[id][rec.Page] = rec.Diff
				n.stats.diffsFetched.Add(1)
			}
		}
	}
	e.mu.Unlock()
	return nil
}

// --- engine interface: accesses ---

func (e *lazyEngine) readPage(pg mem.PageID, off int, dst []byte) error {
	if err := e.validate(pg); err != nil {
		return err
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	copy(dst, e.pages[pg].data[off:off+len(dst)])
	pmu.Unlock()
	return nil
}

func (e *lazyEngine) writePage(pg mem.PageID, off int, src []byte) error {
	if err := e.validate(pg); err != nil {
		return err
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	pc := e.pages[pg]
	created := false
	if pc.twin == nil {
		pc.twin = page.NewTwin(pc.data)
		created = true
	}
	copy(pc.data[off:off+len(src)], src)
	pmu.Unlock()
	if created {
		e.dirtyMu.Lock()
		e.dirty[pg] = struct{}{}
		e.dirtyMu.Unlock()
	}
	return nil
}

// --- engine interface: locks ---

func (e *lazyEngine) acquireStart(req *wire.Msg) {
	e.mu.Lock()
	e.closeIntervalLocked()
	req.VC = e.v.Clone()
	e.mu.Unlock()
}

func (e *lazyEngine) grant(req, grant *wire.Msg) {
	e.mu.Lock()
	defer e.mu.Unlock()
	recs := e.intervalsSinceLocked(req.VC)
	grant.VC = e.v.Clone()
	grant.Intervals = recs
	if e.update {
		// Piggyback every retained diff for the noticed intervals — the
		// releaser supplies what it has (Figure 4's "l and x in a single
		// message"); the acquirer fetches any remainder from creators.
		for _, rec := range recs {
			id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
			byPage := e.diffs[id]
			pages := make([]mem.PageID, 0, len(byPage))
			for pg := range byPage {
				pages = append(pages, pg)
			}
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			for _, pg := range pages {
				grant.Diffs = append(grant.Diffs, wire.DiffRec{
					Page: pg, Proc: id.Proc, Index: id.Index, Diff: byPage[pg],
				})
			}
		}
	}
}

func (e *lazyEngine) onGrant(grant *wire.Msg) error {
	e.mu.Lock()
	fresh := e.absorbIntervalsLocked(grant.Intervals)
	// Piggybacked diffs (LU grants) enter the retained-diff store; the
	// revalidation below then fetches only what is still missing.
	for _, rec := range grant.Diffs {
		id := core.IntervalID{Proc: rec.Proc, Index: rec.Index}
		if e.diffs[id] == nil {
			e.diffs[id] = make(map[mem.PageID]*page.Diff)
		}
		if _, ok := e.diffs[id][rec.Page]; !ok {
			e.diffs[id][rec.Page] = rec.Diff
		}
	}
	affected := e.invalidateForLocked(fresh)
	e.mu.Unlock()

	if e.update {
		return e.revalidate(affected)
	}
	return nil
}

func (e *lazyEngine) preRelease() error { return nil }

func (e *lazyEngine) release() {
	e.mu.Lock()
	e.closeIntervalLocked()
	e.mu.Unlock()
}

// --- engine interface: barriers ---

func (e *lazyEngine) preBarrier() error { return nil }

func (e *lazyEngine) barrierEntry() {
	e.mu.Lock()
	e.closeIntervalLocked()
	e.fresh = nil
	e.mu.Unlock()
}

func (e *lazyEngine) arrive(arrive *wire.Msg) {
	e.mu.Lock()
	arrive.VC = e.v.Clone()
	arrive.Intervals = e.intervalsSinceLocked(e.lastEpoch)
	e.mu.Unlock()
}

func (e *lazyEngine) masterAbsorb(m *wire.Msg) {
	e.mu.Lock()
	e.fresh = append(e.fresh, e.absorbIntervalsLocked(m.Intervals)...)
	e.mu.Unlock()
}

func (e *lazyEngine) exit(m, exit *wire.Msg) {
	e.mu.Lock()
	exit.VC = e.v.Clone()
	exit.Intervals = e.intervalsSinceLocked(m.VC)
	e.mu.Unlock()
}

func (e *lazyEngine) onExit(exit *wire.Msg) error {
	e.mu.Lock()
	e.fresh = e.absorbIntervalsLocked(exit.Intervals)
	e.mu.Unlock()
	return nil
}

func (e *lazyEngine) postBarrier(b mem.BarrierID) error {
	n := e.n
	e.mu.Lock()
	affected := e.invalidateForLocked(e.fresh)
	e.fresh = nil
	e.lastEpoch = e.v.Clone()
	e.episodes++
	gcDue := n.sys.cfg.GCEveryBarriers > 0 && e.episodes%n.sys.cfg.GCEveryBarriers == 0
	e.mu.Unlock()

	if e.update {
		if err := e.revalidate(affected); err != nil {
			return err
		}
	}
	if gcDue {
		return e.runGC(b)
	}
	return nil
}

// runGC is the barrier-time garbage collection epoch: every node brings
// each page it caches fully up to the epoch (and, as a page's home,
// materializes pages with modification history so later cold misses can
// be served without pre-epoch diffs), confirms readiness through the
// master, then discards the diffs of every interval the epoch clock
// covers. Interval records are retained (they are small); diff payloads
// are the memory that matters.
//
// runGC runs on the barrier leader while the node's other application
// goroutines are parked in the local barrier rendezvous, so the only
// concurrent page activity is handler-side serving.
//
// The barrier rendezvous that precedes runGC is what pushes every write
// notice to every node — the master absorbs all arrivals before building
// exits, so each home's log lists every pre-epoch modifier of its pages.
// Validation must therefore leave every copy this node serves — its own
// caches and its homed pages — with an applied clock that dominates the
// epoch: any copy served with a smaller clock would send a later
// requester to a creator for diffs the epoch discarded (the creator
// panics on such requests, by design). checkGCInvariant enforces
// this before any diff is dropped, turning a would-be remote panic into
// a local descriptive error.
func (e *lazyEngine) runGC(b mem.BarrierID) error {
	n := e.n
	e.mu.Lock()
	epoch := e.lastEpoch.Clone()
	var toValidate []mem.PageID
	for pg := range e.pages {
		pgid := mem.PageID(pg)
		if n.rt.modeOf(pgid) != e.modeID() {
			// Routed to another protocol: its history here is frozen (the
			// re-route brought the page current at its home and dropped
			// every copy), so GC neither validates nor materializes it.
			continue
		}
		pmu := n.pageLock(pgid)
		pmu.Lock()
		pc := e.pages[pg]
		switch {
		case pc != nil && !pc.valid:
			toValidate = append(toValidate, pgid)
		case pc == nil && n.homeOf(pgid) == n.id && len(e.log.ModifiersOf(pgid)) > 0:
			// A home that never touched its page materializes it now:
			// after the discard no one could reconstruct it from diffs.
			toValidate = append(toValidate, pgid)
		case pc != nil && pc.valid && !pc.applied.Dominates(epoch):
			// Valid but stamped before the epoch: force a refresh so the
			// advertised clock covers the epoch. Without the
			// invalidation validate would return immediately and leave
			// the stale stamp in place.
			pc.valid = false
			pc.gen++
			toValidate = append(toValidate, pgid)
		}
		pmu.Unlock()
	}
	e.mu.Unlock()

	if err := e.revalidate(toValidate); err != nil {
		return err
	}
	if err := e.checkGCInvariant(epoch); err != nil {
		return err
	}

	// Readiness round through the master, so no node truncates while
	// another still needs pre-epoch diffs.
	const master = mem.ProcID(0)
	if n.id == master {
		readies := make([]*wire.Msg, 0, n.sys.cfg.Procs-1)
		for len(readies) < n.sys.cfg.Procs-1 {
			m, err := n.collect(n.gcCh, "master: GC round")
			if err != nil {
				return err
			}
			if mem.BarrierID(m.A) != b {
				return fmt.Errorf("dsm: master: GC ready for barrier %d during %d", m.A, b)
			}
			readies = append(readies, m)
		}
		for _, m := range readies {
			done := &wire.Msg{Kind: wire.KGCDone, Seq: m.Seq, A: int32(b)}
			if err := n.send(mem.ProcID(m.B), done); err != nil {
				return err
			}
		}
	} else {
		ready := &wire.Msg{Kind: wire.KGCReady, Seq: n.nextSeq(), A: int32(b), B: int32(n.id)}
		if _, err := n.rpc(master, ready); err != nil {
			return err
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	for id := range e.diffs {
		if epoch.Covers(int(id.Proc), id.Index) {
			n.stats.diffsDiscarded.Add(int64(len(e.diffs[id])))
			delete(e.diffs, id)
		}
	}
	n.stats.gcRuns.Add(1)
	return nil
}

// checkGCInvariant verifies, before this node signals GC
// readiness, that every copy it can later be asked to serve covers the
// epoch: its cached copies are valid with dominating clocks, and every
// page it homes with modification history is materialized. A violation
// means a later cold miss would chase discarded diffs.
func (e *lazyEngine) checkGCInvariant(epoch vc.VC) error {
	n := e.n
	e.mu.Lock()
	defer e.mu.Unlock()
	for pg := range e.pages {
		pgid := mem.PageID(pg)
		if n.rt.modeOf(pgid) != e.modeID() {
			continue
		}
		pmu := n.pageLock(pgid)
		pmu.Lock()
		pc := e.pages[pg]
		if pc == nil {
			if n.homeOf(pgid) == n.id && len(e.log.ModifiersOf(pgid)) > 0 {
				pmu.Unlock()
				return fmt.Errorf("dsm: node %d: GC invariant: homed page %d has modification history but no materialized copy", n.id, pgid)
			}
			pmu.Unlock()
			continue
		}
		if !pc.valid || !pc.applied.Dominates(epoch) {
			err := fmt.Errorf("dsm: node %d: GC invariant: page %d copy not validated through the epoch (valid=%t applied=%v epoch=%v)",
				n.id, pgid, pc.valid, pc.applied, epoch)
			pmu.Unlock()
			return err
		}
		pmu.Unlock()
	}
	return nil
}

// --- engine interface: page migration ---

func (e *lazyEngine) dropPage(pg mem.PageID) {
	// The reclassification runs after barrierEntry closed the interval,
	// so no live twin exists; any retained diffs stay for GC to discard.
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	e.pages[pg] = nil
	pmu.Unlock()
	e.dirtyMu.Lock()
	delete(e.dirty, pg)
	e.dirtyMu.Unlock()
}

func (e *lazyEngine) adoptPage(pg mem.PageID, data []byte) {
	if data == nil {
		// Non-home: start cold and fault the page from its home on first
		// use, like any never-touched page.
		return
	}
	// The post-barrier clock covers every pre-reroute interval, so a
	// copy stamped with it has nothing outstanding.
	e.mu.Lock()
	applied := e.v.Clone()
	e.mu.Unlock()
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	e.pages[pg] = &lazyPage{
		data:    append([]byte(nil), data...),
		valid:   true,
		applied: applied,
	}
	pmu.Unlock()
}

// --- engine interface: handler-side requests ---

func (e *lazyEngine) handle(m *wire.Msg, src mem.ProcID) bool {
	switch m.Kind {
	case wire.KDiffReq:
		e.handleDiffReq(m, src)
	case wire.KPageReq:
		e.handlePageReq(m)
	default:
		return false
	}
	return true
}

func (e *lazyEngine) handleDiffReq(m *wire.Msg, src mem.ProcID) {
	n := e.n
	e.mu.Lock()
	resp := &wire.Msg{Kind: wire.KDiffResp, Seq: m.Seq}
	for _, w := range m.Wants {
		id := core.IntervalID{Proc: w.Proc, Index: w.Index}
		d := e.diffs[id][w.Page]
		if d == nil {
			// A request for a diff we never made (or already garbage
			// collected out from under a peer that should have known) is
			// the requester's bug or malice: record it and drop the whole
			// request — a partial answer would install a torn page.
			e.mu.Unlock()
			n.noteErr("diff request",
				fmt.Errorf("asked for diff %v page %d this node does not hold", id, w.Page))
			return
		}
		resp.Diffs = append(resp.Diffs, wire.DiffRec{Page: w.Page, Proc: w.Proc, Index: w.Index, Diff: d})
	}
	e.mu.Unlock()
	// Staged: the shard worker's drain point flushes it, so a burst of
	// diff requests from one prefetching peer answers in few frames.
	n.stage(src, resp)
}

func (e *lazyEngine) handlePageReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	requester := mem.ProcID(m.B)
	if !n.validPage(pg) || !n.validProc(requester) {
		n.noteErr("page request",
			fmt.Errorf("bad ids in request: page %d requester %d", pg, requester))
		return
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	resp := &wire.Msg{Kind: wire.KPageResp, Seq: m.Seq, A: m.A}
	pc := e.pages[pg]
	switch {
	case pc == nil:
		// Never materialized here: the committed state is the zero page.
		resp.Data = make([]byte, n.sys.layout.PageSize())
		resp.VC = vc.New(n.sys.cfg.Procs)
	case pc.twin != nil:
		// Uncommitted writes in the current interval must not leak: the
		// twin holds the committed contents.
		resp.Data = append([]byte(nil), pc.twin.Data()...)
		resp.VC = pc.applied.Clone()
	default:
		resp.Data = append([]byte(nil), pc.data...)
		resp.VC = pc.applied.Clone()
	}
	pmu.Unlock()
	n.stage(requester, resp)
}
