package dsm

import (
	"repro/internal/mem"
	"repro/internal/vc"
	"repro/internal/wire"
)

// engine is a node's pluggable consistency policy. The Node owns the
// protocol-independent machinery — message plumbing, the distributed
// lock state machine, the barrier rendezvous — and delegates everything
// the paper varies between protocols to its engine: page state and data
// movement, the consistency payload of lock grants and barrier messages,
// and release/barrier-time propagation.
//
// Locking conventions: methods suffixed Locked are called with the
// node's mu held; all others are called without it and take it as
// needed. Methods without a goroutine note run on the node's single
// application goroutine; handle (and the work it spawns) runs on the
// handler goroutine.
type engine interface {
	// readPage copies len(dst) bytes out of page pg at off, first making
	// the local copy current enough for the protocol's guarantees.
	readPage(pg mem.PageID, off int, dst []byte) error
	// writePage copies src into page pg at off, first obtaining whatever
	// access the protocol requires (a twin under the multiple-writer
	// protocols, exclusive ownership under SC).
	writePage(pg mem.PageID, off int, src []byte) error

	// acquireStartLocked runs as an Acquire begins: the lazy engines
	// close the current interval and stamp the request with their vector
	// clock so the grant can carry exactly the missing write notices.
	acquireStartLocked(req *wire.Msg)
	// grantLocked fills the consistency payload of a lock grant built
	// for req (write notices and piggybacked diffs under the lazy
	// protocols; nothing under EI/EU/SC, §3: "no consistency-related
	// operations occur on an acquire"). Called from the application or
	// handler goroutine, whichever releases the lock to a waiter.
	grantLocked(req, grant *wire.Msg)
	// onGrant absorbs a received grant's consistency payload.
	onGrant(grant *wire.Msg) error
	// preRelease runs before a release takes effect: the eager engines
	// push buffered modifications to every other cacher and block for
	// acknowledgments here.
	preRelease() error
	// releaseLocked runs under mu as the release takes effect (the lazy
	// engines close the interval the critical section wrote).
	releaseLocked()

	// preBarrier runs before the barrier arrival (the eager flush
	// point, like preRelease).
	preBarrier() error
	// barrierEntryLocked runs under mu as the barrier begins on every
	// node, master included.
	barrierEntryLocked()
	// arriveLocked fills a non-master node's arrival payload.
	arriveLocked(arrive *wire.Msg)
	// masterAbsorbLocked absorbs one arrival's payload at the master.
	masterAbsorbLocked(m *wire.Msg)
	// exitLocked fills the exit payload answering arrival m.
	exitLocked(m, exit *wire.Msg)
	// onExit absorbs the exit payload at a non-master node.
	onExit(exit *wire.Msg) error
	// postBarrier completes the episode after the rendezvous: the lazy
	// engines invalidate or update noticed pages and run the configured
	// garbage-collection epoch.
	postBarrier(b mem.BarrierID) error

	// handle processes an engine-specific message, returning false if
	// the kind is not one of the engine's. It must not block the handler
	// loop: work that waits for responses (the home-side directory
	// transactions of the eager and SC engines) is spawned onto its own
	// goroutine.
	handle(m *wire.Msg, src mem.ProcID) bool

	// clock returns the node's vector time (zero for engines that do not
	// track causality).
	clock() vc.VC
}

// fetchFromOwner obtains a page's contents from its current owner on
// behalf of a home-directory transaction (the eager and SC engines; the
// caller holds the page's directory lock).
//
// The fetch always travels as a KFetch message, even when the home is
// itself the owner: a previous transaction's grant to this node may
// still be queued at its handler, and a direct in-memory read would
// jump ahead of it and serve pre-grant data. The loopback message
// queues behind every in-flight install, so the handler answers with
// the page in directory order (loopback costs no simulated traffic).
func (n *Node) fetchFromOwner(owner mem.ProcID, pg mem.PageID) ([]byte, error) {
	resp, err := n.rpc(owner, &wire.Msg{Kind: wire.KFetch, Seq: n.nextSeq(), A: int32(pg)})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}
