package dsm

import (
	"repro/internal/mem"
	"repro/internal/vc"
	"repro/internal/wire"
)

// engine is a node's pluggable consistency policy. The Node owns the
// protocol-independent machinery — message plumbing, the distributed
// lock state machine, the barrier rendezvous — and delegates everything
// the paper varies between protocols to its engine: page state and data
// movement, the consistency payload of lock grants and barrier messages,
// and release/barrier-time propagation.
//
// Since the per-page routing refactor a node hosts SEVERAL engines at
// once behind a router (router.go): each page is owned by exactly one
// resident engine, the router consults its atomic mode table on every
// access and handler dispatch, and the shared synchronization messages
// carry one mode-tagged wire.Section per resident. Engines never see
// each other — each receives only traffic for its own pages and only its
// own section of a grant or barrier payload — so they are written
// exactly as if they were the node's sole protocol.
//
// Concurrency contract (the shard-aware contract replacing the old
// single-mutex *Locked convention), extended for multi-engine residency:
//
//   - Per-page state lives under the node's striped lock table
//     (Node.pageLock); engines take the stripe for exactly the page they
//     touch and never hold it across a blocking operation, so
//     independent pages fault, install and diff in parallel. The stripe
//     tables are NODE-level: two resident engines touching the same
//     stripe index serialize against each other, which is safe (stripes
//     are leaf locks) and keeps a page's stripe identity stable across a
//     protocol re-route.
//   - Miss service — the blocking protocol transaction that brings a
//     page current — serializes per page under Node.missLock; handler
//     work never takes a miss lock, so it can always drain.
//   - Engine-global synchronization state (the lazy engine's vector
//     clock, interval log and diff store) lives under an engine-private
//     mutex ordered after lockMu and before the page stripes. Each
//     resident has its OWN engine mutex; no code path takes two engines'
//     mutexes at once (the router fans hooks out sequentially, in
//     canonical Mode order cluster-wide, so even hooks that rendezvous
//     internally — two lazy engines each running a GC exchange — cannot
//     cross-deadlock).
//   - Every method may be called from multiple application goroutines
//     concurrently. acquireStart, grant and release are called with the
//     node's lockMu held (grant also from a lock shard worker); barrier
//     hooks are called by the barrier leader goroutine only; handle runs
//     on a shard worker with per-page arrival order guaranteed.
//   - dropPage and adoptPage are called only from the barrier-time
//     reclassification rendezvous (adaptive.go), when every application
//     goroutine cluster-wide is parked and no page traffic is in
//     flight; they may mutate page state without coordination beyond
//     the page stripe.
//   - Statistics tick through the node's atomic counters from any
//     goroutine.
type engine interface {
	// readPage copies len(dst) bytes out of page pg at off, first making
	// the local copy current enough for the protocol's guarantees.
	readPage(pg mem.PageID, off int, dst []byte) error
	// writePage copies src into page pg at off, first obtaining whatever
	// access the protocol requires (a twin under the multiple-writer
	// protocols, exclusive ownership under SC).
	writePage(pg mem.PageID, off int, src []byte) error

	// acquireStart runs as an Acquire begins (lockMu held): the lazy
	// engines close the current interval and stamp the request with their
	// vector clock so the grant can carry exactly the missing write
	// notices.
	acquireStart(req *wire.Msg)
	// grant fills the consistency payload of a lock grant built for req
	// (write notices and piggybacked diffs under the lazy protocols;
	// nothing under EI/EU/SC, §3: "no consistency-related operations
	// occur on an acquire"). Called with lockMu held, from the
	// application goroutine or a lock shard worker, whichever releases
	// the lock to a waiter.
	grant(req, grant *wire.Msg)
	// onGrant absorbs a received grant's consistency payload.
	onGrant(grant *wire.Msg) error
	// preRelease runs before a release takes effect: the eager engines
	// push buffered modifications to every other cacher and block for
	// acknowledgments here.
	preRelease() error
	// release runs (lockMu held) as the release takes effect (the lazy
	// engines close the interval the critical section wrote).
	release()

	// preBarrier runs before the barrier arrival (the eager flush
	// point, like preRelease).
	preBarrier() error
	// barrierEntry runs as the node-level barrier begins on every node,
	// master included (called by the barrier leader goroutine).
	barrierEntry()
	// arrive fills a non-master node's arrival payload.
	arrive(arrive *wire.Msg)
	// masterAbsorb absorbs one arrival's payload at the master.
	masterAbsorb(m *wire.Msg)
	// exit fills the exit payload answering arrival m.
	exit(m, exit *wire.Msg)
	// onExit absorbs the exit payload at a non-master node.
	onExit(exit *wire.Msg) error
	// postBarrier completes the episode after the rendezvous: the lazy
	// engines invalidate or update noticed pages and run the configured
	// garbage-collection epoch. Runs once per node, on the barrier
	// leader, while the node's other application goroutines are still
	// parked in the local rendezvous.
	postBarrier(b mem.BarrierID) error

	// handle processes an engine-specific message, returning false if
	// the kind is not one of the engine's. It runs on the shard worker
	// serializing the message's page (directory-order installs happen
	// here) and must not block the worker: work that waits for responses
	// (the home-side directory transactions of the eager and SC engines)
	// is spawned onto its own goroutine. Responses produced inline defer
	// through Node.stage — the worker's drain point flushes them, so a
	// queued burst answers in coalesced frames — while spawned
	// goroutines use Node.send/rpcAll, which flush themselves.
	handle(m *wire.Msg, src mem.ProcID) bool

	// dropPage surrenders page pg to another protocol: the engine
	// forgets its copy, twin and ownership state for the page. Called
	// only during the quiescent reclassification rendezvous, after the
	// page was brought current at its home node.
	dropPage(pg mem.PageID)
	// adoptPage hands page pg to this engine. At the page's home node,
	// data is the page's authoritative contents (adopted as a valid
	// copy — owned, under the ownership protocols); elsewhere data is
	// nil and the engine starts cold, faulting the page from its home on
	// first use. Called only during the quiescent reclassification
	// rendezvous.
	adoptPage(pg mem.PageID, data []byte)

	// clock returns the node's vector time (zero for engines that do not
	// track causality).
	clock() vc.VC
}

// fetchFromOwner obtains a page's contents from its current owner on
// behalf of a home-directory transaction (the eager and SC engines; the
// caller holds the page's directory lock).
//
// The fetch always travels as a KFetch message, even when the home is
// itself the owner: a previous transaction's grant to this node may
// still be queued on the page's shard, and a direct in-memory read
// would jump ahead of it and serve pre-grant data. The loopback message
// queues behind every in-flight install, so the shard worker answers
// with the page in directory order (loopback costs no simulated
// traffic).
func (n *Node) fetchFromOwner(owner mem.ProcID, pg mem.PageID) ([]byte, error) {
	resp, err := n.rpc(owner, &wire.Msg{Kind: wire.KFetch, Seq: n.nextSeq(), A: int32(pg)})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}
