package dsm

import (
	"strings"
	"testing"
)

func TestParseMode(t *testing.T) {
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	for _, bad := range []string{"", "li", "XX", "LI ", "LazyInvalidate"} {
		_, err := ParseMode(bad)
		if err == nil {
			t.Errorf("ParseMode(%q) succeeded", bad)
			continue
		}
		if !strings.Contains(err.Error(), "unknown mode") || !strings.Contains(err.Error(), ModeNames()) {
			t.Errorf("ParseMode(%q) error %q does not name the supported modes", bad, err)
		}
	}
}

func TestModeNames(t *testing.T) {
	names := ModeNames()
	for _, want := range []string{"LI", "LU", "EI", "EU", "SC"} {
		if !strings.Contains(names, want) {
			t.Errorf("ModeNames() = %q, missing %s", names, want)
		}
	}
	if got := Mode(99).String(); got != "Mode(99)" {
		t.Errorf("Mode(99).String() = %q", got)
	}
	if Mode(99).Valid() {
		t.Error("Mode(99) reported valid")
	}
}

func TestParseModeMap(t *testing.T) {
	const numPages = 32
	cases := []struct {
		name    string
		spec    string
		wantErr string // empty means the spec must parse
	}{
		{name: "single-range", spec: "pg0-31=SC"},
		{name: "rest-only", spec: "rest=LU"},
		{name: "split", spec: "pg0-15=SC,rest=LU"},
		{name: "single-page", spec: "pg7=EI,rest=LI"},
		{name: "all-modes", spec: "pg0-3=LI,pg4-7=LU,pg8-11=EI,pg12-15=EU,rest=SC"},
		{name: "whitespace", spec: " pg0-15=SC , rest=LU "},

		{name: "empty-spec", spec: "", wantErr: "empty entry"},
		{name: "empty-entry", spec: "pg0-15=SC,,rest=LU", wantErr: "empty entry"},
		{name: "no-equals", spec: "pg0-15", wantErr: "is not range=MODE"},
		{name: "empty-mode", spec: "pg0-15=", wantErr: "is not range=MODE"},
		{name: "unknown-mode", spec: "pg0-15=ZZ,rest=LU", wantErr: "unknown mode"},
		{name: "no-pg-prefix", spec: "0-15=SC,rest=LU", wantErr: "does not start with pg"},
		{name: "bad-lo", spec: "pgx-15=SC,rest=LU", wantErr: "bad page number"},
		{name: "bad-hi", spec: "pg0-y=SC,rest=LU", wantErr: "bad page number"},
		{name: "inverted-range", spec: "pg15-3=SC,rest=LU", wantErr: "outside [0,32)"},
		{name: "negative-page", spec: "pg-1=SC,rest=LU", wantErr: "bad page number"},
		{name: "past-end", spec: "pg0-32=SC", wantErr: "outside [0,32)"},
		{name: "overlap", spec: "pg0-15=SC,pg10-20=LU,rest=EI", wantErr: "reassigns page 10"},
		{name: "self-overlap", spec: "pg5=SC,pg5=SC,rest=LU", wantErr: "reassigns page 5"},
		{name: "two-rests", spec: "pg0=SC,rest=LU,rest=EI", wantErr: "more than one rest entry"},
		{name: "empty-rest", spec: "pg0-31=SC,rest=LU", wantErr: "empty rest"},
		{name: "unassigned", spec: "pg0-15=SC", wantErr: "leaves 16 of 32 pages unassigned"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			modes, err := ParseModeMap(tc.spec, numPages)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("ParseModeMap(%q) succeeded, want error containing %q", tc.spec, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseModeMap(%q) error %q, want it to contain %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseModeMap(%q): %v", tc.spec, err)
			}
			if len(modes) != numPages {
				t.Fatalf("ParseModeMap(%q) covers %d pages, want %d", tc.spec, len(modes), numPages)
			}
			for pg, m := range modes {
				if !m.Valid() {
					t.Fatalf("ParseModeMap(%q) assigned page %d invalid mode %d", tc.spec, pg, int(m))
				}
			}
			// Round trip: the formatted map must parse back to the same
			// assignment.
			again, err := ParseModeMap(FormatModeMap(modes), numPages)
			if err != nil {
				t.Fatalf("re-parsing FormatModeMap(%q) = %q: %v", tc.spec, FormatModeMap(modes), err)
			}
			for pg := range modes {
				if again[pg] != modes[pg] {
					t.Fatalf("round trip of %q changed page %d: %s -> %s", tc.spec, pg, modes[pg], again[pg])
				}
			}
		})
	}

	if _, err := ParseModeMap("rest=LU", 0); err == nil {
		t.Error("ParseModeMap with zero pages succeeded")
	}
}

func TestFormatModeMap(t *testing.T) {
	cases := []struct {
		modes []Mode
		want  string
	}{
		{[]Mode{SeqConsistent}, "pg0=SC"},
		{[]Mode{LazyUpdate, LazyUpdate, LazyUpdate}, "pg0-2=LU"},
		{[]Mode{SeqConsistent, SeqConsistent, LazyUpdate, EagerInvalidate}, "pg0-1=SC,pg2=LU,pg3=EI"},
	}
	for _, tc := range cases {
		if got := FormatModeMap(tc.modes); got != tc.want {
			t.Errorf("FormatModeMap(%v) = %q, want %q", tc.modes, got, tc.want)
		}
	}
}

// TestConfigModeMapValidation: dsm.New rejects maps that do not match the
// layout instead of routing pages to a missing engine.
func TestConfigModeMapValidation(t *testing.T) {
	base := Config{Procs: 2, SpaceSize: 8192, PageSize: 1024} // 8 pages
	short := base
	short.ModeMap = []Mode{SeqConsistent, LazyUpdate} // 2 of 8 pages
	if _, err := New(short); err == nil || !strings.Contains(err.Error(), "covers 2 pages") {
		t.Errorf("short mode map: err = %v", err)
	}
	bad := base
	bad.ModeMap = uniformModeMap(LazyUpdate, 8)
	bad.ModeMap[3] = Mode(42)
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("invalid mode in map: err = %v", err)
	}
}
