package dsm

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// Page placement: which node homes each page.
//
// A page's home is its directory entry under the eager and SC engines
// and its cold-copy server (and GC materialization point) under the
// lazy ones. Placement decides the initial assignment; when
// Config.MigrateHomes is set the adaptive exchange additionally moves a
// page's home to its dominant writer (see adaptive.go), because a flush
// or directory transaction that lands on a local home is loopback —
// free in the paper's message accounting.
//
// The home table itself lives on the router (one atomic entry per
// page), read lock-free on every protocol operation and written only
// inside the barrier-time reclassification rendezvous while every
// application goroutine cluster-wide is parked — exactly the mode
// table's discipline, so a page never has traffic in flight under two
// homes at once.

// Placement selects the initial page→home assignment policy.
type Placement int

const (
	// PlaceBlock interleaves single pages across the nodes:
	// home(pg) = pg % Procs (the historical static assignment).
	PlaceBlock Placement = iota
	// PlaceRR deals contiguous rrRunPages-page runs to the nodes
	// round-robin — a coarser interleaving than PlaceBlock's per-page
	// modulo, so neighboring pages share a home.
	PlaceRR
	// PlaceFirstTouch starts from the block assignment and re-homes
	// each page to the node that touched it most before the first
	// cluster barrier (ties to the lowest node id). The claims are
	// exchanged on the first barrier's arrive/exit payloads and applied
	// in the quiescent reclassification rendezvous, so the whole
	// cluster swaps tables at once. Pages untouched before the first
	// barrier keep their block home.
	PlaceFirstTouch
)

// rrRunPages is the run length of the round-robin placement.
const rrRunPages = 4

var placementNames = map[Placement]string{
	PlaceBlock:      "block",
	PlaceRR:         "rr",
	PlaceFirstTouch: "first-touch",
}

// Placements lists every supported placement policy.
var Placements = []Placement{PlaceBlock, PlaceRR, PlaceFirstTouch}

// String returns the policy's flag name.
func (p Placement) String() string {
	if s, ok := placementNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// Valid reports whether p names a supported placement policy.
func (p Placement) Valid() bool {
	_, ok := placementNames[p]
	return ok
}

// PlacementNames returns the supported policy names, comma-separated,
// for error messages and flag help.
func PlacementNames() string {
	names := make([]string, len(Placements))
	for i, p := range Placements {
		names[i] = p.String()
	}
	return strings.Join(names, ", ")
}

// ParsePlacement maps a policy name ("block", "rr", "first-touch") to
// its Placement. The empty string is the default block policy.
func ParsePlacement(s string) (Placement, error) {
	if s == "" {
		return PlaceBlock, nil
	}
	for _, p := range Placements {
		if placementNames[p] == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("dsm: unknown placement %q (supported: %s)", s, PlacementNames())
}

// initialHomes builds the policy's static page→home table.
// PlaceFirstTouch starts from the block table; its exchange at the
// first barrier refines it.
func initialHomes(p Placement, numPages, procs int) []mem.ProcID {
	homes := make([]mem.ProcID, numPages)
	for pg := range homes {
		switch p {
		case PlaceRR:
			homes[pg] = mem.ProcID((pg / rrRunPages) % procs)
		default: // PlaceBlock, PlaceFirstTouch
			homes[pg] = mem.ProcID(pg % procs)
		}
	}
	return homes
}

// FormatHomeTable renders a home table in the mode map's run-length
// syntax ("pg0-3=0,pg4-7=1,..."), for /statusz and -statsjson.
func FormatHomeTable(homes []mem.ProcID) string {
	if len(homes) == 0 {
		return ""
	}
	var b strings.Builder
	start := 0
	flush := func(end int) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if end-start == 1 {
			fmt.Fprintf(&b, "pg%d=%d", start, homes[start])
		} else {
			fmt.Fprintf(&b, "pg%d-%d=%d", start, end-1, homes[start])
		}
	}
	for pg := 1; pg < len(homes); pg++ {
		if homes[pg] != homes[start] {
			flush(pg)
			start = pg
		}
	}
	flush(len(homes))
	return b.String()
}

// homeDelta is one page's home change, as decided by the barrier master
// and broadcast in the barrier exit beside the re-route set.
type homeDelta struct {
	pg   mem.PageID
	home mem.ProcID
}

// homeClaim is one node's first-touch claim on a page: how much it
// touched the page before the first cluster barrier.
type homeClaim struct {
	pg    mem.PageID
	score uint32
}
