package dsm

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// failingCloseTransport wraps a working transport but fails teardown,
// standing in for a TCP instance whose peer died mid-stream.
type failingCloseTransport struct {
	transport.Transport
	err error
}

func (f *failingCloseTransport) Close() error {
	f.Transport.Close()
	return f.err
}

// TestCloseFoldsTransportErrors: a transport teardown failure surfaces
// through System.Close alongside any recorded protocol errors, instead
// of vanishing.
func TestCloseFoldsTransportErrors(t *testing.T) {
	boom := errors.New("peer 1 stream truncated mid-frame")
	s, err := New(Config{
		Procs: 2, SpaceSize: 4096, PageSize: 512, Mode: LazyInvalidate,
		Transport: &failingCloseTransport{Transport: simnet.New(2), err: boom},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Node(0).noteErr("lock 3 grant to 1", errors.New("send failed"))
	cerr := s.Close()
	if cerr == nil {
		t.Fatal("Close returned nil despite transport and protocol errors")
	}
	if !errors.Is(cerr, boom) {
		t.Errorf("Close error %q does not fold the transport teardown error", cerr)
	}
	if !strings.Contains(cerr.Error(), "lock 3 grant to 1") {
		t.Errorf("Close error %q lost the recorded protocol error", cerr)
	}
	if again := s.Close(); !errors.Is(again, boom) {
		t.Errorf("second Close = %v, want the same folded error", again)
	}
}

// TestTransportEndpointCountValidated: a transport spanning the wrong
// cluster size is rejected at construction.
func TestTransportEndpointCountValidated(t *testing.T) {
	net := simnet.New(3)
	defer net.Close()
	_, err := New(Config{
		Procs: 2, SpaceSize: 4096, PageSize: 512, Mode: LazyInvalidate,
		Transport: net,
	})
	if err == nil || !strings.Contains(err.Error(), "transport spans 3 endpoints") {
		t.Fatalf("err = %v, want endpoint-count mismatch", err)
	}
}

// TestRemoteNodePanics: asking a System for a node another process hosts
// is a caller bug and panics with a message naming the local set.
func TestRemoteNodePanics(t *testing.T) {
	cluster, err := tcp.NewLoopbackCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := New(Config{
		Procs: 2, SpaceSize: 4096, PageSize: 512, Mode: LazyInvalidate,
		Transport: cluster[0],
	})
	if err != nil {
		cluster[0].Close()
		cluster[1].Close()
		t.Fatal(err)
	}
	defer s0.Close()
	defer cluster[1].Close()
	if !s0.IsLocal(0) || s0.IsLocal(1) {
		t.Errorf("locality wrong: IsLocal(0)=%v IsLocal(1)=%v", s0.IsLocal(0), s0.IsLocal(1))
	}
	if got := len(s0.Local()); got != 1 {
		t.Errorf("Local() has %d nodes, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("remote node handle handed out")
		}
	}()
	s0.Node(1)
}

// TestCounterOverTCPCluster runs the migratory counter across two
// Systems joined only by real TCP streams, under every protocol engine:
// the protocol-independent machinery (locks, barriers, rpc plumbing)
// must behave identically across transports.
func TestCounterOverTCPCluster(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		const procs, iters = 3, 10
		cluster, err := tcp.NewLoopbackCluster(procs)
		if err != nil {
			t.Fatal(err)
		}
		systems := make([]*System, procs)
		for i, tr := range cluster {
			systems[i], err = New(Config{
				Procs: procs, SpaceSize: 16 * 1024, PageSize: 1024, Mode: mode,
				Transport: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		defer func() {
			for _, s := range systems {
				if err := s.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}
		}()

		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := systems[i].Node(i)
				for k := 0; k < iters; k++ {
					if errs[i] = n.Acquire(0); errs[i] != nil {
						return
					}
					v, err := n.ReadUint64(0)
					if err != nil {
						errs[i] = err
						return
					}
					if errs[i] = n.WriteUint64(0, v+1); errs[i] != nil {
						return
					}
					if errs[i] = n.Release(0); errs[i] != nil {
						return
					}
				}
				errs[i] = n.Barrier(0)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}

		n := systems[0].Node(0)
		must(t, n.Acquire(0))
		v, err := n.ReadUint64(0)
		must(t, err)
		must(t, n.Release(0))
		if v != procs*iters {
			t.Fatalf("counter = %d, want %d", v, procs*iters)
		}
		// Real traffic crossed the sockets (loopback sends are free, and
		// the nodes live in different systems).
		var total int64
		for _, s := range systems {
			total += s.NetStats().Messages
		}
		if total == 0 {
			t.Error("no messages crossed the TCP cluster")
		}
	})
}
