package dsm

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The flush-policy engine is tested the way TestOutboxPreservesFIFO
// tests the structural pipeline: an outbox driven directly over a raw
// simnet pair, with the frames observed on the wire. What the policy
// may change is only how many frames the staged messages share — never
// their order, count or bytes.

func invalMsg(seq uint64) *wire.Msg { return &wire.Msg{Kind: wire.KInval, Seq: seq, A: 1} }

// recvFrames reads frames off the raw endpoint until n messages have
// arrived, returning each frame's message seqs in arrival order
// (expanding compressed frames first, exactly like the dispatch loop).
func recvFrames(t *testing.T, ep transport.Endpoint, n int) [][]uint64 {
	t.Helper()
	var frames [][]uint64
	total := 0
	for total < n {
		_, payload, ok := ep.Recv()
		if !ok {
			t.Fatal("raw recv failed")
		}
		if wire.IsCompressed(payload) {
			inner, err := wire.Expand(payload)
			if err != nil {
				t.Fatal(err)
			}
			payload = inner
		}
		var seqs []uint64
		if wire.IsBatch(payload) {
			msgs, err := wire.DecodeBatch(payload)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range msgs {
				seqs = append(seqs, m.Seq)
			}
		} else {
			m, err := wire.Decode(payload)
			if err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, m.Seq)
		}
		frames = append(frames, seqs)
		total += len(seqs)
	}
	return frames
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOutboxMsgThresholdSplitsBurst: crossing MaxMsgs flushes the
// destination mid-burst, bounding batch size — four staged messages
// leave as two frames of two, in staging order.
func TestOutboxMsgThresholdSplitsBurst(t *testing.T) {
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true,
		policy: FlushPolicy{MaxMsgs: 2}, dsts: make([]outDest, 2)}

	for seq := uint64(1); seq <= 4; seq++ {
		o.stage(1, invalMsg(seq))
	}
	// The thresholds already flushed everything: the structural flush
	// point finds an empty queue.
	if err := o.flushDst(1); err != nil {
		t.Fatal(err)
	}
	frames := recvFrames(t, b, 4)
	want := [][]uint64{{1, 2}, {3, 4}}
	if !reflect.DeepEqual(frames, want) {
		t.Errorf("frames = %v, want %v", frames, want)
	}
}

// TestOutboxZeroThresholdImmediate: MaxMsgs=1 degenerates the policy to
// immediate per-message flushing — every stage is its own plain frame,
// no batch frames at all.
func TestOutboxZeroThresholdImmediate(t *testing.T) {
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true,
		policy: FlushPolicy{MaxMsgs: 1}, dsts: make([]outDest, 2)}

	for seq := uint64(1); seq <= 3; seq++ {
		o.stage(1, invalMsg(seq))
	}
	frames := recvFrames(t, b, 3)
	want := [][]uint64{{1}, {2}, {3}}
	if !reflect.DeepEqual(frames, want) {
		t.Errorf("frames = %v, want %v", frames, want)
	}
	if tot := raw.Totals(); tot.Batches != 0 {
		t.Errorf("immediate policy sent %d batch frames", tot.Batches)
	}
}

// TestOutboxByteThresholdSplitsBurst: the MaxBytes threshold flushes on
// estimated encoded size, splitting the same burst at two messages.
func TestOutboxByteThresholdSplitsBurst(t *testing.T) {
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	hint := invalMsg(1).SizeHint()
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true,
		policy: FlushPolicy{MaxBytes: 2 * hint}, dsts: make([]outDest, 2)}

	for seq := uint64(1); seq <= 4; seq++ {
		o.stage(1, invalMsg(seq))
	}
	if err := o.flushDst(1); err != nil {
		t.Fatal(err)
	}
	frames := recvFrames(t, b, 4)
	want := [][]uint64{{1, 2}, {3, 4}}
	if !reflect.DeepEqual(frames, want) {
		t.Errorf("frames = %v, want %v", frames, want)
	}
}

// TestOutboxNagleKickedByThreshold: an rpc holding its destination open
// under a long Nagle delay is kicked awake the moment concurrent
// traffic trips a threshold — the hold coalesces both messages into one
// frame without ever paying the full delay.
func TestOutboxNagleKickedByThreshold(t *testing.T) {
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true,
		policy: FlushPolicy{Delay: 10 * time.Second, MaxMsgs: 2}, dsts: make([]outDest, 2)}

	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- o.sendRPC(1, invalMsg(1)) }()
	// Wait until the rpc is actually parked holding the destination
	// (its kick channel exists), so the second message finds a sleeper.
	d := &o.dsts[1]
	waitFor(t, "rpc to hold the destination", func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return len(d.pend) == 1 && d.kickCh != nil
	})
	o.stage(1, invalMsg(2)) // trips MaxMsgs: kick + inline flush
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rpc returned after %v: the threshold kick did not end the hold", elapsed)
	}
	frames := recvFrames(t, b, 2)
	want := [][]uint64{{1, 2}}
	if !reflect.DeepEqual(frames, want) {
		t.Errorf("frames = %v, want the held request and the kicker in one frame %v", frames, want)
	}
}

// TestOutboxNagleReleasedByDrainFlush: the timer-racing-drain case — a
// worker's drain-point flushAll empties the destination while an rpc is
// still holding it open. Taking the queue must wake the sleeper (its
// message is on the wire; waiting longer buys nothing), and the rpc's
// own empty-queue flush returns cleanly.
func TestOutboxNagleReleasedByDrainFlush(t *testing.T) {
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true,
		policy: FlushPolicy{Delay: 10 * time.Second}, dsts: make([]outDest, 2)}

	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- o.sendRPC(1, invalMsg(1)) }()
	d := &o.dsts[1]
	waitFor(t, "rpc to hold the destination", func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return len(d.pend) == 1 && d.kickCh != nil
	})
	if err := o.flushAll(); err != nil { // the racing drain flush
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rpc returned after %v: the drain flush did not end the hold", elapsed)
	}
	frames := recvFrames(t, b, 1)
	want := [][]uint64{{1}}
	if !reflect.DeepEqual(frames, want) {
		t.Errorf("frames = %v, want exactly one single-message frame", frames)
	}
}

// TestOutboxNagleTimerExpires: with no concurrent traffic the hold ends
// at the timer — the request still leaves, alone, after the delay.
func TestOutboxNagleTimerExpires(t *testing.T) {
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true,
		policy: FlushPolicy{Delay: 5 * time.Millisecond}, dsts: make([]outDest, 2)}

	start := time.Now()
	if err := o.sendRPC(1, invalMsg(1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("rpc flushed after %v, before the delay expired", elapsed)
	}
	frames := recvFrames(t, b, 1)
	want := [][]uint64{{1}}
	if !reflect.DeepEqual(frames, want) {
		t.Errorf("frames = %v, want %v", frames, want)
	}
}

// TestOutboxCompressionGate: the per-frame compression gate — a large
// compressible frame crosses the wire as a compressed frame that
// expands back to the identical bytes; incompressible payloads and
// frames below the size threshold ride unchanged. The interconnect
// accounts post-compression bytes with the logical size in RawBytes.
func TestOutboxCompressionGate(t *testing.T) {
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true,
		compressMin: 64, dsts: make([]outDest, 2)}

	// Compressible: a zero page compresses far below its logical size.
	zero := &wire.Msg{Kind: wire.KPageResp, Seq: 1, A: 0, Data: make([]byte, 1024)}
	if err := o.send(1, zero); err != nil {
		t.Fatal(err)
	}
	_, payload, ok := b.Recv()
	if !ok {
		t.Fatal("raw recv failed")
	}
	if !wire.IsCompressed(payload) {
		t.Fatal("compressible page frame was not compressed")
	}
	inner, err := wire.Expand(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := zero.EncodeAppend(nil); !reflect.DeepEqual(inner, got) {
		t.Error("compressed frame did not expand to the original encoding")
	}

	// Incompressible: random page data must ride uncompressed (the
	// strictly-smaller gate), and still decode to the same message.
	data := make([]byte, 1024)
	rand.New(rand.NewSource(7)).Read(data)
	noisy := &wire.Msg{Kind: wire.KPageResp, Seq: 2, A: 0, Data: data}
	if err := o.send(1, noisy); err != nil {
		t.Fatal(err)
	}
	_, payload, ok = b.Recv()
	if !ok {
		t.Fatal("raw recv failed")
	}
	if wire.IsCompressed(payload) {
		t.Fatal("incompressible frame was sent compressed")
	}
	m, err := wire.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Data, data) {
		t.Error("incompressible payload changed in flight")
	}

	// Below the threshold: compressible but too small to bother.
	small := invalMsg(3)
	if err := o.send(1, small); err != nil {
		t.Fatal(err)
	}
	_, payload, ok = b.Recv()
	if !ok {
		t.Fatal("raw recv failed")
	}
	if wire.IsCompressed(payload) {
		t.Fatal("frame below CompressMin was compressed")
	}

	// Accounting: the zero page saved wire bytes, so the logical size
	// exceeds the physical; the other frames count identically in both.
	if tot := raw.Totals(); tot.RawBytes <= tot.Bytes {
		t.Errorf("totals = %+v, want RawBytes > Bytes after a compressed frame", tot)
	}
}
