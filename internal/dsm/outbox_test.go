package dsm

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// runEagerMultiPageFlush drives the deterministic per-home flush
// aggregation pattern: node 1 dirties four pages all homed at node 0
// inside one critical section, so the release-time flush stages four
// KFlushReqs for one destination.
func runEagerMultiPageFlush(t *testing.T, noBatch bool) (Stats, TransportStats) {
	t.Helper()
	s, err := New(Config{
		Procs: 2, SpaceSize: 16 * 1024, PageSize: 1024,
		Mode: EagerUpdate, NoBatch: noBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := s.Node(1)
	if err := n.Acquire(0); err != nil {
		t.Fatal(err)
	}
	for _, pg := range []int{0, 2, 4, 6} { // even pages are homed at node 0
		if err := n.WriteUint64(mem.Addr(pg*1024), uint64(pg)+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Release(0); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	net := s.NetStats()
	// The values must be committed at the home regardless of batching.
	h := s.Node(0)
	for _, pg := range []int{0, 2, 4, 6} {
		v, err := h.ReadUint64(mem.Addr(pg * 1024))
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(pg)+1 {
			t.Errorf("page %d word = %d, want %d", pg, v, pg+1)
		}
	}
	return st, net
}

// TestOutboxBatchesFlushBurst: the eager release's four same-home flush
// requests leave as one batch frame with batching on, and as four
// plain frames with it off — with identical message counts and final
// memory either way.
func TestOutboxBatchesFlushBurst(t *testing.T) {
	batched, netB := runEagerMultiPageFlush(t, false)
	unbatched, netU := runEagerMultiPageFlush(t, true)

	if batched.KindMsgs[wire.KFlushReq] != 4 {
		t.Errorf("flusher sent %d KFlushReqs, want 4", batched.KindMsgs[wire.KFlushReq])
	}
	if batched.SentMsgs == batched.SentFrames {
		t.Errorf("batching coalesced nothing: %d msgs in %d frames", batched.SentMsgs, batched.SentFrames)
	}
	if batched.SentBatches == 0 {
		t.Error("no batch frames sent with batching on")
	}
	if unbatched.SentMsgs != unbatched.SentFrames {
		t.Errorf("NoBatch still coalesced: %d msgs in %d frames", unbatched.SentMsgs, unbatched.SentFrames)
	}
	if unbatched.SentBatches != 0 {
		t.Errorf("NoBatch sent %d batch frames", unbatched.SentBatches)
	}
	// Batching changes framing only: the protocol moves the same
	// messages and the same payload bytes either way.
	if netB.Messages != netU.Messages {
		t.Errorf("batched run moved %d messages, unbatched %d", netB.Messages, netU.Messages)
	}
	if netB.Frames >= netU.Frames {
		t.Errorf("batched run used %d frames, unbatched %d — expected fewer", netB.Frames, netU.Frames)
	}
	// The interconnect's view agrees with the node's outbox counters.
	if netB.Batches == 0 {
		t.Error("interconnect counted no batch frames")
	}
	// Per-kind byte accounting sums to the total outbound bytes.
	var kindTotal int64
	for _, b := range batched.KindBytes {
		kindTotal += b
	}
	if kindTotal != batched.SentBytes {
		t.Errorf("per-kind bytes sum to %d, SentBytes = %d", kindTotal, batched.SentBytes)
	}
}

// TestOutboxPreservesFIFO: staged (deferred) and immediate sends to one
// destination must leave in staging order. The protocol's directory
// invariants test this implicitly everywhere; here the outbox is driven
// directly so a regression points at the pipeline, not a protocol.
func TestOutboxPreservesFIFO(t *testing.T) {
	// Drive an outbox directly over a raw simnet pair, observing the
	// frames on the wire.
	raw := simnet.New(2)
	defer raw.Close()
	a, b := raw.Endpoint(0), raw.Endpoint(1)
	o := &outbox{n: &Node{id: 0, ep: a}, batch: true, dsts: make([]outDest, 2)}

	mk := func(seq uint64) *wire.Msg { return &wire.Msg{Kind: wire.KInval, Seq: seq, A: 1} }
	o.stage(1, mk(1))
	o.stage(1, mk(2))
	if err := o.send(1, mk(3)); err != nil { // flushes 1,2,3 as one batch
		t.Fatal(err)
	}
	if err := o.send(1, mk(4)); err != nil { // plain frame
		t.Fatal(err)
	}
	var seqs []uint64
	for len(seqs) < 4 {
		_, payload, ok := b.Recv()
		if !ok {
			t.Fatal("raw recv failed")
		}
		if wire.IsBatch(payload) {
			msgs, err := wire.DecodeBatch(payload)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range msgs {
				seqs = append(seqs, m.Seq)
			}
		} else {
			m, err := wire.Decode(payload)
			if err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, m.Seq)
		}
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("arrival order %v, want staging order 1..4", seqs)
		}
	}
	tot := raw.Totals()
	if tot.Messages != 4 || tot.Frames != 2 || tot.Batches != 1 {
		t.Errorf("raw totals = %+v, want 4 msgs in 2 frames (1 batch)", tot)
	}
}

// failEndpoint fails every remote send, like a poisoned TCP stream.
type failEndpoint struct{ err error }

func (f *failEndpoint) ID() int                   { return 0 }
func (f *failEndpoint) Send(int, []byte) error    { return f.err }
func (f *failEndpoint) Recv() (int, []byte, bool) { return 0, nil, false }

// TestOutboxStickyFlushError: a send failure must reach whoever staged
// for the destination, not just whoever happened to flush it. A shard
// worker's drain-point flushAll can race into the window between an
// rpc's stage and its own flush; if the worker's flush eats the error,
// the requester's empty-queue flush must still return the
// destination's sticky failure — otherwise the requester parks in
// await forever while the error sits in the worker's log.
func TestOutboxStickyFlushError(t *testing.T) {
	broken := errors.New("peer stream broken")
	o := &outbox{n: &Node{id: 0, ep: &failEndpoint{err: broken}}, batch: true, dsts: make([]outDest, 2)}

	// The rpc path stages its request...
	o.stage(1, &wire.Msg{Kind: wire.KLockReq, Seq: 1})
	// ...a concurrent worker drain flushes it and hits the dead stream.
	if err := o.flushAll(); !errors.Is(err, broken) {
		t.Fatalf("worker flush error = %v, want the send failure", err)
	}
	// The requester's own flush finds an empty queue — it must still
	// observe the sticky error instead of returning nil.
	if err := o.flushDst(1); !errors.Is(err, broken) {
		t.Fatalf("empty-queue flush error = %v, want sticky send failure", err)
	}
	// Later sends to the destination fail fast too.
	if err := o.send(1, &wire.Msg{Kind: wire.KLockReq, Seq: 2}); !errors.Is(err, broken) {
		t.Fatalf("send after break = %v, want sticky send failure", err)
	}
}
