package dsm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/transport/tcp"
)

// Concurrent-access torture tests for the sharded node core: N
// application goroutines per node hammer disjoint and false-shared
// pages under every protocol engine, over the in-process network and
// over loopback TCP, and the final shared-memory images must be exactly
// what the program's synchronization promises — run these under -race
// to sweep the striped page state, the shard queues and the two-level
// lock/barrier machinery.

// tortureParams scales the hammering to the test mode.
func tortureParams(t *testing.T) (iters int) {
	t.Helper()
	if testing.Short() {
		return 8
	}
	return 25
}

// newSysGPN builds a simnet system with gpn application goroutines per
// node declared for the barrier rendezvous.
func newSysGPN(t *testing.T, procs, gpn int, mode Mode) *System {
	t.Helper()
	s, err := New(Config{
		Procs: procs, SpaceSize: 256 * 1024, PageSize: 1024,
		Mode: mode, GoroutinesPerNode: gpn,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// driveSlots runs body once per (node, goroutine) slot across every
// local node of every system, genuinely concurrently, and fails the
// test on any error. slot = nodeID*gpn + g is a cluster-unique id.
func driveSlots(t *testing.T, systems []*System, gpn int, body func(n *Node, slot int) error) {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for _, s := range systems {
		for _, n := range s.Local() {
			for g := 0; g < gpn; g++ {
				wg.Add(1)
				go func(n *Node, slot int) {
					defer wg.Done()
					if err := body(n, slot); err != nil {
						mu.Lock()
						if first == nil {
							first = err
						}
						mu.Unlock()
					}
				}(n, int(n.ID())*gpn+g)
			}
		}
	}
	wg.Wait()
	if first != nil {
		t.Fatal(first)
	}
}

// TestConcurrentDisjointPages: every goroutine owns a private page and
// rewrites it each round; after each barrier every goroutine audits its
// right neighbor's page. Independent pages must fault, install and diff
// in parallel without bleeding into each other.
func TestConcurrentDisjointPages(t *testing.T) {
	const procs, gpn = 4, 4
	iters := tortureParams(t)
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSysGPN(t, procs, gpn, mode)
		slots := procs * gpn
		pageSz := s.Layout().PageSize()
		pattern := func(slot, round int) byte { return byte(slot*31 + round*7 + 1) }
		driveSlots(t, []*System{s}, gpn, func(n *Node, slot int) error {
			buf := make([]byte, pageSz)
			for k := 0; k < iters; k++ {
				for i := range buf {
					buf[i] = pattern(slot, k)
				}
				if err := n.Write(mem.Addr(slot*pageSz), buf); err != nil {
					return err
				}
				if err := n.Barrier(0); err != nil {
					return err
				}
				nb := (slot + 1) % slots
				if err := n.Read(buf, mem.Addr(nb*pageSz)); err != nil {
					return err
				}
				for i, b := range buf {
					if b != pattern(nb, k) {
						return fmt.Errorf("%s: slot %d round %d: neighbor %d byte %d = %#x, want %#x",
							mode, slot, k, nb, i, b, pattern(nb, k))
					}
				}
				if err := n.Barrier(1); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// TestConcurrentFalseSharedPage: every goroutine owns one uint64 word
// of a single shared page and bumps it each round — the multiple-writer
// protocols must merge the concurrent same-page writes (twins + diffs),
// SC must serialize them — and after each barrier every goroutine
// audits the whole word array.
func TestConcurrentFalseSharedPage(t *testing.T) {
	const procs, gpn = 4, 4
	iters := tortureParams(t)
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSysGPN(t, procs, gpn, mode)
		slots := procs * gpn
		driveSlots(t, []*System{s}, gpn, func(n *Node, slot int) error {
			for k := 0; k < iters; k++ {
				if err := n.WriteUint64(mem.Addr(slot*8), uint64(slot+1)*uint64(k+1)); err != nil {
					return err
				}
				if err := n.Barrier(0); err != nil {
					return err
				}
				for sl := 0; sl < slots; sl++ {
					v, err := n.ReadUint64(mem.Addr(sl * 8))
					if err != nil {
						return err
					}
					if want := uint64(sl+1) * uint64(k+1); v != want {
						return fmt.Errorf("%s: slot %d round %d: word %d = %d, want %d",
							mode, slot, k, sl, v, want)
					}
				}
				if err := n.Barrier(1); err != nil {
					return err
				}
			}
			return nil
		})
	})
}

// TestConcurrentLockedCounters: all goroutines of all nodes hammer a
// shared counter under one lock (pure migratory data, local handoffs
// interleaved with remote transfers) while also bumping a false-shared
// per-slot tally under a second lock; both must come out exact.
func TestConcurrentLockedCounters(t *testing.T) {
	const procs, gpn = 4, 4
	iters := tortureParams(t)
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSysGPN(t, procs, gpn, mode)
		slots := procs * gpn
		const counterAddr, tallyBase = 0, 4096
		driveSlots(t, []*System{s}, gpn, func(n *Node, slot int) error {
			for k := 0; k < iters; k++ {
				if err := n.Acquire(0); err != nil {
					return err
				}
				v, err := n.ReadUint64(counterAddr)
				if err != nil {
					return err
				}
				if err := n.WriteUint64(counterAddr, v+1); err != nil {
					return err
				}
				if err := n.Release(0); err != nil {
					return err
				}
				if err := n.Acquire(1); err != nil {
					return err
				}
				v, err = n.ReadUint64(mem.Addr(tallyBase + slot*8))
				if err != nil {
					return err
				}
				if err := n.WriteUint64(mem.Addr(tallyBase+slot*8), v+2); err != nil {
					return err
				}
				if err := n.Release(1); err != nil {
					return err
				}
			}
			return n.Barrier(0)
		})
		n0 := s.Node(0)
		v, err := n0.ReadUint64(counterAddr)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(slots * iters); v != want {
			t.Fatalf("%s: counter = %d, want %d", mode, v, want)
		}
		for sl := 0; sl < slots; sl++ {
			v, err := n0.ReadUint64(mem.Addr(tallyBase + sl*8))
			if err != nil {
				t.Fatal(err)
			}
			if want := uint64(2 * iters); v != want {
				t.Fatalf("%s: tally %d = %d, want %d", mode, sl, v, want)
			}
		}
	})
}

// TestConcurrentImageIdentical: the disjoint + false-shared mix, ending
// with a full-space read-out on node 0 that must be byte-identical to
// the locally computed expectation under every mode — the dsm-level
// analogue of the workload differential harness.
func TestConcurrentImageIdentical(t *testing.T) {
	const procs, gpn = 4, 2
	iters := tortureParams(t)
	var images [][]byte
	allModes(t, func(t *testing.T, mode Mode) {
		s := newSysGPN(t, procs, gpn, mode)
		slots := procs * gpn
		pageSz := s.Layout().PageSize()
		driveSlots(t, []*System{s}, gpn, func(n *Node, slot int) error {
			for k := 0; k < iters; k++ {
				// Private page, then a false-shared word on page 0.
				row := make([]byte, 64)
				for i := range row {
					row[i] = byte(slot ^ (k + i))
				}
				if err := n.Write(mem.Addr((1+slot)*pageSz), row); err != nil {
					return err
				}
				if err := n.WriteUint64(mem.Addr(slot*8), uint64(slot)<<8|uint64(k)); err != nil {
					return err
				}
				if err := n.Barrier(0); err != nil {
					return err
				}
			}
			return nil
		})
		img := make([]byte, s.Layout().SpaceSize())
		if err := s.Node(0).Read(img, 0); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, len(img))
		for slot := 0; slot < slots; slot++ {
			for i := 0; i < 64; i++ {
				want[(1+slot)*pageSz+i] = byte(slot ^ (iters - 1 + i))
			}
			v := uint64(slot)<<8 | uint64(iters-1)
			for i := 0; i < 8; i++ {
				want[slot*8+i] = byte(v >> (8 * i))
			}
		}
		if !bytes.Equal(img, want) {
			t.Fatalf("%s: final image diverges from expectation", mode)
		}
		images = append(images, img)
	})
	for i := 1; i < len(images); i++ {
		if !bytes.Equal(images[i], images[0]) {
			t.Fatalf("images diverge between modes %s and %s", Modes[0], Modes[i])
		}
	}
}

// TestConcurrentOverTCP: the locked-counter hammer across a real
// loopback TCP cluster — every node an independent System on its own
// listener, gpn goroutines each — under every protocol engine.
func TestConcurrentOverTCP(t *testing.T) {
	const procs, gpn = 2, 3
	iters := tortureParams(t)
	allModes(t, func(t *testing.T, mode Mode) {
		cluster, err := tcp.NewLoopbackCluster(procs)
		if err != nil {
			t.Fatal(err)
		}
		systems := make([]*System, procs)
		for i, tr := range cluster {
			systems[i], err = New(Config{
				Procs: procs, SpaceSize: 64 * 1024, PageSize: 1024,
				Mode: mode, GoroutinesPerNode: gpn, Transport: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer systems[i].Close()
		}
		slots := procs * gpn
		driveSlots(t, systems, gpn, func(n *Node, slot int) error {
			for k := 0; k < iters; k++ {
				if err := n.Acquire(0); err != nil {
					return err
				}
				v, err := n.ReadUint64(0)
				if err != nil {
					return err
				}
				if err := n.WriteUint64(0, v+1); err != nil {
					return err
				}
				if err := n.Release(0); err != nil {
					return err
				}
			}
			if err := n.Barrier(0); err != nil {
				return err
			}
			if slot == 0 {
				v, err := n.ReadUint64(0)
				if err != nil {
					return err
				}
				if want := uint64(slots * iters); v != want {
					return fmt.Errorf("%s over tcp: counter = %d, want %d", mode, v, want)
				}
			}
			// Hold every process alive until the audit read was served.
			return n.Barrier(1)
		})
	})
}
